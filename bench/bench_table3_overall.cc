/**
 * @file
 * Table 3 reproduction: overall throughput (KOPS) of the eight data
 * structures and the two transaction applications under every system
 * variant — Symmetric, Symmetric-B, AsymNVM-Naive, -R, -RC, -RCB.
 *
 * Setup mirrors the paper: one front-end to one back-end, 100% write
 * workload, 8-byte keys / 64-byte values, cache 10% of NVM size, batch
 * size 1024. Blank cells of the paper (hash-table/SmallBank batching,
 * queue/stack cache-only) are skipped the same way.
 */

#include "bench_common.h"

#include "apps/smallbank.h"
#include "apps/tatp.h"

namespace asymnvm::bench {
namespace {

constexpr uint64_t kPreload = 50000;
constexpr uint64_t kOps = 12000;
constexpr uint64_t kTxOps = 4000;

uint64_t session_counter = 1000;

std::unique_ptr<FrontendSession>
freshSession(Mode mode, BackendNode &be)
{
    auto s = std::make_unique<FrontendSession>(
        sessionFor(mode, ++session_counter));
    if (!ok(s->connect(&be)))
        return nullptr;
    return s;
}

template <typename DS>
double
kvCell(Mode mode, const char *name)
{
    BackendNode be(1, benchBackendConfig());
    auto s = std::make_unique<FrontendSession>(sessionFor(
        mode, ++session_counter,
        cacheBytesFor<DS>(0.10, kPreload + kOps)));
    if (!ok(s->connect(&be)))
        return -1;
    DS ds;
    Status st;
    if constexpr (std::is_same_v<DS, HashTable>)
        st = HashTable::create(*s, 1, name, kPreload * 2, &ds);
    else
        st = DS::create(*s, 1, name, &ds);
    if (!ok(st))
        return -1;
    WorkloadConfig wcfg;
    wcfg.key_space = kPreload;
    wcfg.put_ratio = 1.0;
    wcfg.seed = 42;
    preloadKeys(*s, ds, wcfg, kPreload);
    s->resetStats();
    // 100% write: fresh uniform keys over a wider space.
    WorkloadConfig mcfg = wcfg;
    mcfg.seed = 77;
    Workload w(mcfg);
    const auto ops = w.generate(kOps);
    const Throughput t = runKvWorkload(*s, ds, ops);
    return t.kops();
}

double
queueCell(Mode mode)
{
    BackendNode be(1, benchBackendConfig());
    auto s = freshSession(mode, be);
    Queue q;
    if (!ok(Queue::create(*s, 1, "q", &q)))
        return -1;
    Workload w(WorkloadConfig{});
    const uint64_t t0 = s->clock().now();
    for (uint64_t i = 0; i < kOps; ++i)
        (void)q.enqueue(w.next().value);
    (void)s->flushAll();
    return Throughput{kOps, s->clock().now() - t0}.kops();
}

double
stackCell(Mode mode)
{
    BackendNode be(1, benchBackendConfig());
    auto s = freshSession(mode, be);
    Stack st;
    if (!ok(Stack::create(*s, 1, "s", &st)))
        return -1;
    Workload w(WorkloadConfig{});
    const uint64_t t0 = s->clock().now();
    for (uint64_t i = 0; i < kOps; ++i)
        (void)st.push(w.next().value);
    (void)s->flushAll();
    return Throughput{kOps, s->clock().now() - t0}.kops();
}

double
smallBankCell(Mode mode)
{
    BackendNode be(1, benchBackendConfig());
    auto s = std::make_unique<FrontendSession>(
        sessionFor(mode, ++session_counter, /*cache=*/88ull << 10));
    if (!ok(s->connect(&be)))
        return -1;
    SmallBank bank;
    if (!ok(SmallBank::create(*s, 1, 10000, &bank)))
        return -1;
    s->resetStats();
    Rng rng(5);
    const uint64_t t0 = s->clock().now();
    for (uint64_t i = 0; i < kTxOps; ++i)
        (void)bank.runOne(rng);
    (void)s->flushAll();
    return Throughput{kTxOps, s->clock().now() - t0}.kops();
}

double
tatpCell(Mode mode)
{
    BackendNode be(1, benchBackendConfig());
    auto s = std::make_unique<FrontendSession>(
        sessionFor(mode, ++session_counter, /*cache=*/600ull << 10));
    if (!ok(s->connect(&be)))
        return -1;
    Tatp tatp;
    if (!ok(Tatp::create(*s, 1, 10000, &tatp)))
        return -1;
    s->resetStats();
    Rng rng(6);
    const uint64_t t0 = s->clock().now();
    for (uint64_t i = 0; i < kTxOps; ++i)
        (void)tatp.runOne(rng);
    (void)s->flushAll();
    return Throughput{kTxOps, s->clock().now() - t0}.kops();
}

void
printCell(double kops)
{
    if (kops < 0)
        std::printf("%9s", "-");
    else
        std::printf("%9.1f", kops);
}

void
run()
{
    const Mode modes[] = {Mode::Symmetric, Mode::SymmetricB, Mode::Naive,
                          Mode::R,         Mode::RC,         Mode::RCB};
    printHeader("Table 3: overall performance comparison (KOPS, 100% "
                "write, 1 front-end : 1 back-end)",
                "System         SmallBank      TATP     Queue     Stack"
                "  HashTbl  SkipList       BST       BPT    MV-BST"
                "    MV-BPT");
    for (Mode mode : modes) {
        std::printf("%-14s", modeName(mode));
        // Empty cells follow the paper's footnote: O(1) structures
        // (hash table, SmallBank) cannot apply batching, and the
        // queue/stack implementation combines batching with caching
        // (no cache-only cell).
        const bool batch_row =
            mode == Mode::RCB || mode == Mode::SymmetricB;
        printCell(batch_row ? -1 : smallBankCell(mode));
        printCell(tatpCell(mode));
        printCell(mode == Mode::RC ? -1 : queueCell(mode));
        printCell(mode == Mode::RC ? -1 : stackCell(mode));
        printCell(batch_row ? -1 : kvCell<HashTable>(mode, "h"));
        printCell(kvCell<SkipList>(mode, "sl"));
        printCell(kvCell<Bst>(mode, "bst"));
        printCell(kvCell<BpTree>(mode, "bpt"));
        printCell(kvCell<MvBst>(mode, "mvbst"));
        printCell(kvCell<MvBpTree>(mode, "mvbpt"));
        std::printf("\n");
    }
    std::printf(
        "\nPaper (Table 3) reference shape: RCB improves Naive by 5-12x;"
        "\nRCB is comparable to Symmetric overall and beats it on"
        "\nQueue/Stack/BST/MV-BST/MV-BPT; MV variants trail their"
        "\nlock-based counterparts under 100%% write.\n");
}

} // namespace
} // namespace asymnvm::bench

int
main()
{
    asymnvm::bench::run();
    return 0;
}
