/**
 * @file
 * Table 3 reproduction: overall throughput (KOPS) of the eight data
 * structures and the two transaction applications under every system
 * variant — Symmetric, Symmetric-B, AsymNVM-Naive, -R, -RC, -RCB.
 *
 * Setup mirrors the paper: one front-end to one back-end, 100% write
 * workload, 8-byte keys / 64-byte values, cache 10% of NVM size, batch
 * size 1024. Blank cells of the paper (hash-table/SmallBank batching,
 * queue/stack cache-only) are skipped the same way.
 */

#include "bench_common.h"

#include "apps/smallbank.h"
#include "apps/tatp.h"
#include "cluster/mirror.h"

namespace asymnvm::bench {
namespace {

// Full-size parameters reproduce the paper's shape; ASYMNVM_BENCH_TINY
// shrinks them so the bench_smoke ctest target exercises every cell in
// seconds (the numbers are then meaningless, only the plumbing counts).
uint64_t kPreload = 50000;
uint64_t kOps = 12000;
uint64_t kTxOps = 4000;

uint64_t session_counter = 1000;

std::unique_ptr<FrontendSession>
freshSession(Mode mode, BackendNode &be)
{
    auto s = std::make_unique<FrontendSession>(
        sessionFor(mode, ++session_counter));
    if (!ok(s->connect(&be)))
        return nullptr;
    return s;
}

/** Per-path latency + replication profile captured from one cell. */
struct PathProfile
{
    Histogram commit;
    Histogram replication;
    ReplicationStats repl;
};

template <typename DS>
double
kvCell(Mode mode, const char *name, VerbCounters *out = nullptr,
       RetryStats *retry_out = nullptr, PathProfile *paths = nullptr,
       OptimisticReadStats *reads_out = nullptr,
       PipelineStats *pipe_out = nullptr)
{
    BackendNode be(1, benchBackendConfig());
    // A mirror replica rides along when the cell is profiled: mirror
    // replication batches on back-end busy time only (never the session
    // clock), so the KOPS cell is unchanged while the replication
    // batch/persist counters become observable.
    std::unique_ptr<MirrorNode> mirror;
    if (paths != nullptr) {
        mirror = std::make_unique<MirrorNode>(
            200, benchBackendConfig().nvm_size);
        be.addMirror(mirror.get());
    }
    auto s = std::make_unique<FrontendSession>(sessionFor(
        mode, ++session_counter,
        cacheBytesFor<DS>(0.10, kPreload + kOps)));
    if (!ok(s->connect(&be)))
        return -1;
    DS ds;
    Status st;
    if constexpr (std::is_same_v<DS, HashTable>)
        st = HashTable::create(*s, 1, name, kPreload * 2, &ds);
    else
        st = DS::create(*s, 1, name, &ds);
    if (!ok(st))
        return -1;
    WorkloadConfig wcfg;
    wcfg.key_space = kPreload;
    wcfg.put_ratio = 1.0;
    wcfg.seed = 42;
    preloadKeys(*s, ds, wcfg, kPreload);
    s->resetStats();
    // 100% write: fresh uniform keys over a wider space.
    WorkloadConfig mcfg = wcfg;
    mcfg.seed = 77;
    Workload w(mcfg);
    const auto ops = w.generate(kOps);
    const Throughput t = runKvWorkload(*s, ds, ops);
    if (out != nullptr)
        *out = s->verbs().counters();
    if (retry_out != nullptr)
        *retry_out = s->stats().retry;
    if (paths != nullptr) {
        paths->commit = s->commitHistogram();
        paths->replication = be.replicationHistogram();
        paths->repl = be.replicationStats();
    }
    if (reads_out != nullptr)
        *reads_out = ds.readStats();
    if (pipe_out != nullptr)
        *pipe_out = s->stats().pipeline;
    return t.kops();
}

double
queueCell(Mode mode)
{
    BackendNode be(1, benchBackendConfig());
    auto s = freshSession(mode, be);
    Queue q;
    if (!ok(Queue::create(*s, 1, "q", &q)))
        return -1;
    Workload w(WorkloadConfig{});
    const uint64_t t0 = s->clock().now();
    for (uint64_t i = 0; i < kOps; ++i)
        (void)q.enqueue(w.next().value);
    (void)s->flushAll();
    return Throughput{kOps, s->clock().now() - t0}.kops();
}

double
stackCell(Mode mode)
{
    BackendNode be(1, benchBackendConfig());
    auto s = freshSession(mode, be);
    Stack st;
    if (!ok(Stack::create(*s, 1, "s", &st)))
        return -1;
    Workload w(WorkloadConfig{});
    const uint64_t t0 = s->clock().now();
    for (uint64_t i = 0; i < kOps; ++i)
        (void)st.push(w.next().value);
    (void)s->flushAll();
    return Throughput{kOps, s->clock().now() - t0}.kops();
}

double
smallBankCell(Mode mode)
{
    BackendNode be(1, benchBackendConfig());
    auto s = std::make_unique<FrontendSession>(
        sessionFor(mode, ++session_counter, /*cache=*/88ull << 10));
    if (!ok(s->connect(&be)))
        return -1;
    SmallBank bank;
    if (!ok(SmallBank::create(*s, 1, 10000, &bank)))
        return -1;
    s->resetStats();
    Rng rng(5);
    const uint64_t t0 = s->clock().now();
    for (uint64_t i = 0; i < kTxOps; ++i)
        (void)bank.runOne(rng);
    (void)s->flushAll();
    return Throughput{kTxOps, s->clock().now() - t0}.kops();
}

double
tatpCell(Mode mode)
{
    BackendNode be(1, benchBackendConfig());
    auto s = std::make_unique<FrontendSession>(
        sessionFor(mode, ++session_counter, /*cache=*/600ull << 10));
    if (!ok(s->connect(&be)))
        return -1;
    Tatp tatp;
    if (!ok(Tatp::create(*s, 1, 10000, &tatp)))
        return -1;
    s->resetStats();
    Rng rng(6);
    const uint64_t t0 = s->clock().now();
    for (uint64_t i = 0; i < kTxOps; ++i)
        (void)tatp.runOne(rng);
    (void)s->flushAll();
    return Throughput{kTxOps, s->clock().now() - t0}.kops();
}

void
printCell(double kops)
{
    if (kops < 0)
        std::printf("%9s", "-");
    else
        std::printf("%9.1f", kops);
}

constexpr const char *kColumns[] = {
    "SmallBank", "TATP",     "Queue", "Stack", "HashTbl",
    "SkipList",  "BST",      "BPT",   "MV-BST", "MV-BPT"};

/**
 * Machine-readable companion of the printed table: blank cells are JSON
 * null, everything else KOPS. Format documented in EXPERIMENTS.md.
 */
void
writeJson(const Mode *modes, size_t nmodes,
          const std::vector<std::vector<double>> &rows, const char *path)
{
    std::FILE *f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return;
    }
    std::fprintf(f, "{\n  \"bench\": \"table3_overall\",\n"
                    "  \"unit\": \"kops\",\n"
                    "  \"params\": {\"preload\": %" PRIu64
                    ", \"ops\": %" PRIu64 ", \"tx_ops\": %" PRIu64
                    ", \"tiny\": %s},\n",
                 kPreload, kOps, kTxOps, benchTiny() ? "true" : "false");
    std::fprintf(f, "  \"columns\": [");
    for (size_t i = 0; i < std::size(kColumns); ++i)
        std::fprintf(f, "%s\"%s\"", i == 0 ? "" : ", ", kColumns[i]);
    std::fprintf(f, "],\n  \"rows\": [\n");
    for (size_t m = 0; m < nmodes; ++m) {
        std::fprintf(f, "    {\"system\": \"%s\", \"cells\": [",
                     modeName(modes[m]));
        for (size_t i = 0; i < rows[m].size(); ++i) {
            if (rows[m][i] < 0)
                std::fprintf(f, "%snull", i == 0 ? "" : ", ");
            else
                std::fprintf(f, "%s%.1f", i == 0 ? "" : ", ", rows[m][i]);
        }
        std::fprintf(f, "]}%s\n", m + 1 == nmodes ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", path);
}

void
run()
{
    const Mode modes[] = {Mode::Symmetric, Mode::SymmetricB, Mode::Naive,
                          Mode::R,         Mode::RC,         Mode::RCB};
    if (benchTiny()) {
        kPreload = 2000;
        kOps = 600;
        kTxOps = 200;
    }
    std::vector<std::vector<double>> rows;
    std::vector<VerbCounters> profiles;
    std::vector<RetryStats> retry_profiles;
    std::vector<PathProfile> path_profiles;
    std::vector<OptimisticReadStats> read_profiles;
    std::vector<PipelineStats> pipe_profiles;
    printHeader("Table 3: overall performance comparison (KOPS, 100% "
                "write, 1 front-end : 1 back-end)",
                "System         SmallBank      TATP     Queue     Stack"
                "  HashTbl  SkipList       BST       BPT    MV-BST"
                "    MV-BPT");
    for (Mode mode : modes) {
        // Empty cells follow the paper's footnote: O(1) structures
        // (hash table, SmallBank) cannot apply batching, and the
        // queue/stack implementation combines batching with caching
        // (no cache-only cell).
        const bool batch_row =
            mode == Mode::RCB || mode == Mode::SymmetricB;
        VerbCounters profile;
        RetryStats retry_profile;
        PathProfile path_profile;
        OptimisticReadStats read_profile;
        PipelineStats pipe_profile;
        std::vector<double> cells;
        cells.push_back(batch_row ? -1 : smallBankCell(mode));
        cells.push_back(tatpCell(mode));
        cells.push_back(mode == Mode::RC ? -1 : queueCell(mode));
        cells.push_back(mode == Mode::RC ? -1 : stackCell(mode));
        cells.push_back(batch_row ? -1 : kvCell<HashTable>(mode, "h"));
        cells.push_back(kvCell<SkipList>(mode, "sl"));
        cells.push_back(kvCell<Bst>(mode, "bst"));
        cells.push_back(kvCell<BpTree>(mode, "bpt", &profile,
                                       &retry_profile, &path_profile,
                                       &read_profile, &pipe_profile));
        cells.push_back(kvCell<MvBst>(mode, "mvbst"));
        cells.push_back(kvCell<MvBpTree>(mode, "mvbpt"));
        std::printf("%-14s", modeName(mode));
        for (double c : cells)
            printCell(c);
        std::printf("\n");
        rows.push_back(std::move(cells));
        profiles.push_back(profile);
        retry_profiles.push_back(retry_profile);
        path_profiles.push_back(std::move(path_profile));
        read_profiles.push_back(read_profile);
        pipe_profiles.push_back(pipe_profile);
    }
    std::printf(
        "\nPaper (Table 3) reference shape: RCB improves Naive by 5-12x;"
        "\nRCB is comparable to Symmetric overall and beats it on"
        "\nQueue/Stack/BST/MV-BST/MV-BPT; MV variants trail their"
        "\nlock-based counterparts under 100%% write.\n");

    std::printf("\nPer-verb traffic of the BPT column (%" PRIu64
                " ops, measurement phase only):\n",
                kOps);
    for (size_t m = 0; m < std::size(modes); ++m)
        printVerbCounters(modeName(modes[m]), profiles[m]);

    std::printf("\nRetry/failover profile of the same runs (all-zero on "
                "a fault-free configuration; failed-reads is the §6.3 "
                "optimistic-read invalidation ratio — 0/0 here because "
                "the workload is 100%% write and unshared):\n");
    for (size_t m = 0; m < std::size(modes); ++m)
        printRetryCounters(modeName(modes[m]), retry_profiles[m],
                           &read_profiles[m]);

    std::printf("\nPipelined-execution profile of the same runs "
                "(all-zero at the default pipeline_depth = 1, which "
                "keeps every cell above bit-identical to a non-"
                "pipelined session; bench_ablation_pipeline sweeps the "
                "depth):\n");
    for (size_t m = 0; m < std::size(modes); ++m)
        printPipelineCounters(modeName(modes[m]), pipe_profiles[m]);

    std::printf("\nPer-path latency of the same runs (ns; commit = group"
                "-commit flush on the session clock, replication = "
                "modeled mirror batch ship+persist):\n");
    for (size_t m = 0; m < std::size(modes); ++m) {
        const PathProfile &p = path_profiles[m];
        std::printf("%-14s commit p50 %8" PRIu64 "  p99 %8" PRIu64
                    " (n=%" PRIu64 ")   repl p50 %8" PRIu64 "  p99 %8"
                    PRIu64 " (n=%" PRIu64 ")\n",
                    modeName(modes[m]), p.commit.percentile(50),
                    p.commit.percentile(99), p.commit.count(),
                    p.replication.percentile(50),
                    p.replication.percentile(99), p.replication.count());
    }

    std::printf("\nMirror replication batching of the same runs (one "
                "persist per commit boundary instead of per mutation):\n");
    for (size_t m = 0; m < std::size(modes); ++m) {
        const ReplicationStats &r = path_profiles[m].repl;
        std::printf("%-14s batches %7" PRIu64 "  persists %7" PRIu64
                    "  raw-writes %8" PRIu64 "  ranges %7" PRIu64
                    " (%.1fx coalesced)  bytes %8.1f KB  retries %4"
                    PRIu64 "\n",
                    modeName(modes[m]), r.batches, r.persists,
                    r.raw_writes, r.ranges,
                    r.ranges ? static_cast<double>(r.raw_writes) /
                                   static_cast<double>(r.ranges)
                             : 0.0,
                    r.bytes / 1024.0, r.retries);
    }

    writeJson(modes, std::size(modes), rows, "BENCH_table3.json");
}

} // namespace
} // namespace asymnvm::bench

int
main()
{
    asymnvm::bench::run();
    return 0;
}
