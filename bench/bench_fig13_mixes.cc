/**
 * @file
 * Figure 13 reproduction: throughput of every data structure across
 * read/write mixes (100% put, 50/50, 75% put / 25% get, 10% put / 90%
 * get, 100% get) under Naive, R and RC — the eight sub-figures 13a-13h.
 *
 * The workload stands in for the paper's Alibaba traces: power-law key
 * popularity with hashed keys (Section 9.6 reports the traces follow a
 * power-law distribution). Queue/stack use push/pop mixes instead.
 */

#include "bench_common.h"

namespace asymnvm::bench {
namespace {

constexpr uint64_t kPreload = 30000;
constexpr uint64_t kOps = 8000;

uint64_t session_counter = 10000;

struct Mix
{
    const char *label;
    double put_ratio;
};

const Mix kMixes[] = {{"100%put", 1.0},
                      {"50/50", 0.5},
                      {"75%put", 0.75},
                      {"10%put", 0.10},
                      {"100%get", 0.0}};

const Mode kModes[] = {Mode::Naive, Mode::R, Mode::RC};

template <typename DS>
double
runMix(Mode mode, double put_ratio)
{
    BackendNode be(1, benchBackendConfig());
    FrontendSession s(sessionFor(mode, ++session_counter,
                                 cacheBytesFor<DS>(0.10, kPreload)));
    if (!ok(s.connect(&be)))
        return -1;
    DS ds;
    Status st;
    if constexpr (std::is_same_v<DS, HashTable>)
        st = HashTable::create(s, 1, "m", kPreload * 2, &ds);
    else
        st = DS::create(s, 1, "m", &ds);
    if (!ok(st))
        return -1;
    WorkloadConfig wcfg;
    wcfg.key_space = kPreload;
    wcfg.seed = 42;
    preloadKeys(s, ds, wcfg, kPreload);
    s.resetStats();
    WorkloadConfig mcfg = wcfg;
    mcfg.put_ratio = put_ratio;
    mcfg.dist = KeyDist::Zipf; // industry traces are power-law
    mcfg.zipf_theta = 0.9;
    mcfg.seed = 99;
    Workload w(mcfg);
    const auto ops = w.generate(kOps);
    return runKvWorkload(s, ds, ops).kops();
}

/** Queue/stack mixes: push ratio instead of put ratio. */
template <typename DS>
double
runListMix(Mode mode, double push_ratio)
{
    BackendNode be(1, benchBackendConfig());
    FrontendSession s(sessionFor(mode, ++session_counter, 64 << 10));
    if (!ok(s.connect(&be)))
        return -1;
    DS ds;
    if (!ok(DS::create(s, 1, "l", &ds)))
        return -1;
    // Preload elements so pops have work to do.
    for (uint64_t i = 0; i < kOps; ++i) {
        if constexpr (std::is_same_v<DS, Queue>)
            (void)ds.enqueue(Value::ofU64(i));
        else
            (void)ds.push(Value::ofU64(i));
    }
    (void)s.flushAll();
    Rng rng(9);
    const uint64_t t0 = s.clock().now();
    for (uint64_t i = 0; i < kOps; ++i) {
        Value v = Value::ofU64(i);
        if (rng.nextDouble() < push_ratio) {
            if constexpr (std::is_same_v<DS, Queue>)
                (void)ds.enqueue(v);
            else
                (void)ds.push(v);
        } else {
            if constexpr (std::is_same_v<DS, Queue>)
                (void)ds.dequeue(&v);
            else
                (void)ds.pop(&v);
        }
    }
    (void)s.flushAll();
    return Throughput{kOps, s.clock().now() - t0}.kops();
}

template <typename DS>
void
kvPanel(const char *title)
{
    std::printf("\n(%s)\nMix        ", title);
    for (Mode m : kModes)
        std::printf("%14s", modeName(m));
    std::printf("\n");
    for (const Mix &mix : kMixes) {
        std::printf("%-10s ", mix.label);
        for (Mode m : kModes)
            std::printf("%14.1f", runMix<DS>(m, mix.put_ratio));
        std::printf("\n");
    }
}

template <typename DS>
void
listPanel(const char *title)
{
    const Mix mixes[] = {{"100%push", 1.0},
                         {"50/50", 0.5},
                         {"100%pop", 0.0}};
    std::printf("\n(%s)\nMix        ", title);
    for (Mode m : kModes)
        std::printf("%14s", modeName(m));
    std::printf("\n");
    for (const Mix &mix : mixes) {
        std::printf("%-10s ", mix.label);
        for (Mode m : kModes)
            std::printf("%14.1f", runListMix<DS>(m, mix.put_ratio));
        std::printf("\n");
    }
}

void
run()
{
    printHeader("Figure 13: throughput (KOPS) across read/write mixes, "
                "power-law workload",
                "");
    kvPanel<Bst>("a: BST");
    kvPanel<MvBst>("b: MV-BST");
    kvPanel<BpTree>("c: BPT");
    kvPanel<MvBpTree>("d: MV-BPT");
    kvPanel<SkipList>("e: SkipList");
    listPanel<Queue>("f: Queue");
    listPanel<Stack>("g: Stack");
    kvPanel<HashTable>("h: HashTable");
    std::printf(
        "\nPaper (Fig. 13) reference shape: throughput rises as the read"
        "\nshare grows; RC > R > Naive everywhere; MV variants trail"
        "\ntheir in-place counterparts at high write ratios (54-71%% gap"
        "\nat 100%% put) because path copying writes more data.\n");
}

} // namespace
} // namespace asymnvm::bench

int
main()
{
    asymnvm::bench::run();
    return 0;
}
