/**
 * @file
 * Figure 10 reproduction: one data structure partitioned across 1..7
 * back-end nodes (Section 8.3). The paper reports no significant
 * degradation because partitions are strictly isolated per back-end;
 * total throughput here even grows slightly as the NIC load spreads.
 *
 * The run also ablates the parallel multi-back-end fan-out (Section 4.3):
 * with `parallel_fanout` a group commit posts every back-end's WQE chain,
 * rings all doorbells, and awaits the completions together, so a k-way
 * commit costs ~max of k round trips instead of their sum. The serial
 * baseline fences each back-end in turn.
 */

#include "bench_common.h"

#include "ds/partitioned.h"

namespace asymnvm::bench {
namespace {

// Full-size parameters reproduce the paper's shape; ASYMNVM_BENCH_TINY
// shrinks them so the bench_smoke_fig10 ctest target exercises the
// partitioned fan-out plumbing in seconds.
uint64_t kPreload = 20000;
uint64_t kOps = 8000;
constexpr uint32_t kMaxBackends = 7;

uint64_t session_counter = 7000;

struct PartitionResult
{
    double kops = -1;
    Histogram fanout_hist;
};

template <typename DS>
PartitionResult
partitionedRun(uint32_t nbackends, bool parallel)
{
    PartitionResult res;
    std::vector<std::unique_ptr<BackendNode>> backends;
    std::vector<NodeId> ids;
    for (uint32_t b = 0; b < nbackends; ++b) {
        backends.push_back(std::make_unique<BackendNode>(
            static_cast<NodeId>(b + 1), benchBackendConfig(64)));
        ids.push_back(static_cast<NodeId>(b + 1));
    }
    SessionConfig cfg = sessionFor(Mode::RCB, ++session_counter,
                                   cacheBytesFor<DS>(0.10, kPreload), 64);
    cfg.parallel_fanout = parallel;
    FrontendSession s(cfg);
    for (auto &be : backends) {
        if (!ok(s.connect(be.get())))
            return res;
    }
    Partitioned<DS> part;
    const Status st = Partitioned<DS>::create(
        s, ids, "p", nbackends, &part,
        [](FrontendSession &sess, NodeId be, std::string_view name,
           DS *out) { return DS::create(sess, be, name, out); });
    if (!ok(st))
        return res;

    WorkloadConfig wcfg;
    wcfg.key_space = kPreload;
    wcfg.seed = 42;
    Workload loader(wcfg);
    for (uint64_t i = 0; i < kPreload; ++i) {
        const WorkItem item = loader.next();
        (void)part.insert(item.key, item.value);
    }
    (void)s.flushAll();

    WorkloadConfig mcfg = wcfg;
    mcfg.seed = 99;
    Workload w(mcfg);
    s.resetStats();
    const uint64_t t0 = s.clock().now();
    for (uint64_t i = 0; i < kOps; ++i) {
        const WorkItem item = w.next();
        (void)part.insert(item.key, item.value);
    }
    (void)s.flushAll();
    res.kops = Throughput{kOps, s.clock().now() - t0}.kops();
    res.fanout_hist = s.fanoutHistogram();
    return res;
}

template <typename DS>
double
partitionedKops(uint32_t nbackends)
{
    return partitionedRun<DS>(nbackends, /*parallel=*/true).kops;
}

/**
 * Machine-readable companion of the printed tables: per-structure KOPS
 * under the parallel fan-out, plus the serial-fence ablation series.
 * Format documented in EXPERIMENTS.md.
 */
void
writeJson(const std::vector<std::vector<double>> &main_rows,
          const std::vector<double> &par_series,
          const std::vector<double> &ser_series, const char *path)
{
    std::FILE *f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return;
    }
    std::fprintf(f, "{\n  \"bench\": \"fig10_partition\",\n"
                    "  \"unit\": \"kops\",\n"
                    "  \"params\": {\"preload\": %" PRIu64
                    ", \"ops\": %" PRIu64 ", \"tiny\": %s},\n",
                 kPreload, kOps, benchTiny() ? "true" : "false");
    static constexpr const char *kCols[] = {"SkipList", "BST", "BPT",
                                            "MV-BST", "MV-BPT"};
    std::fprintf(f, "  \"columns\": [");
    for (size_t i = 0; i < std::size(kCols); ++i)
        std::fprintf(f, "%s\"%s\"", i == 0 ? "" : ", ", kCols[i]);
    std::fprintf(f, "],\n  \"rows\": [\n");
    for (size_t n = 0; n < main_rows.size(); ++n) {
        std::fprintf(f, "    {\"backends\": %zu, \"cells\": [", n + 1);
        for (size_t i = 0; i < main_rows[n].size(); ++i)
            std::fprintf(f, "%s%.1f", i == 0 ? "" : ", ",
                         main_rows[n][i]);
        std::fprintf(f, "]}%s\n",
                     n + 1 == main_rows.size() ? "" : ",");
    }
    std::fprintf(f, "  ],\n  \"fanout_ablation\": {\"structure\": "
                    "\"BPT\", \"parallel\": [");
    for (size_t i = 0; i < par_series.size(); ++i)
        std::fprintf(f, "%s%.1f", i == 0 ? "" : ", ", par_series[i]);
    std::fprintf(f, "], \"serial\": [");
    for (size_t i = 0; i < ser_series.size(); ++i)
        std::fprintf(f, "%s%.1f", i == 0 ? "" : ", ", ser_series[i]);
    std::fprintf(f, "]}\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", path);
}

void
run()
{
    if (benchTiny()) {
        kPreload = 1500;
        kOps = 500;
    }
    printHeader("Figure 10: one structure partitioned over N back-ends "
                "(KOPS, single front-end, 100% write)",
                "Backends  SkipList        BST        BPT     MV-BST"
                "     MV-BPT");
    std::vector<std::vector<double>> main_rows;
    for (uint32_t n = 1; n <= kMaxBackends; ++n) {
        std::vector<double> row = {
            partitionedKops<SkipList>(n), partitionedKops<Bst>(n),
            partitionedKops<BpTree>(n), partitionedKops<MvBst>(n),
            partitionedKops<MvBpTree>(n)};
        std::printf("%8u  %9.1f  %9.1f  %9.1f  %9.1f  %9.1f\n", n,
                    row[0], row[1], row[2], row[3], row[4]);
        main_rows.push_back(std::move(row));
    }
    std::printf("\nPaper (Fig. 10) reference shape: flat — partitioning "
                "across back-ends causes no significant degradation.\n");

    printHeader(
        "Fan-out ablation (BPT): parallel doorbell fan-out vs one "
        "serial commit fence per back-end",
        "Backends   Parallel     Serial    Speedup");
    std::vector<double> par_series, ser_series;
    Histogram deepest_fanout;
    for (uint32_t n = 1; n <= kMaxBackends; ++n) {
        const PartitionResult par = partitionedRun<BpTree>(n, true);
        const PartitionResult ser = partitionedRun<BpTree>(n, false);
        par_series.push_back(par.kops);
        ser_series.push_back(ser.kops);
        std::printf("%8u  %9.1f  %9.1f  %8.2fx\n", n, par.kops,
                    ser.kops, ser.kops > 0 ? par.kops / ser.kops : 0.0);
        if (n == kMaxBackends)
            deepest_fanout = par.fanout_hist;
    }
    std::printf("\nExpected shape: identical at 1 back-end (the fan-out "
                "path only engages for k>1), widening win as k grows —\n"
                "the parallel flush awaits the slowest of k round trips "
                "instead of their sum.\n");
    if (deepest_fanout.count() > 0)
        std::printf("\nFan-out flush latency at %u back-ends: %s\n",
                    kMaxBackends, deepest_fanout.summary().c_str());

    writeJson(main_rows, par_series, ser_series,
              "BENCH_fig10_partition.json");
}

} // namespace
} // namespace asymnvm::bench

int
main()
{
    asymnvm::bench::run();
    return 0;
}
