/**
 * @file
 * Figure 10 reproduction: one data structure partitioned across 1..7
 * back-end nodes (Section 8.3). The paper reports no significant
 * degradation because partitions are strictly isolated per back-end;
 * total throughput here even grows slightly as the NIC load spreads.
 */

#include "bench_common.h"

#include "ds/partitioned.h"

namespace asymnvm::bench {
namespace {

constexpr uint64_t kPreload = 20000;
constexpr uint64_t kOps = 8000;

uint64_t session_counter = 7000;

template <typename DS>
double
partitionedKops(uint32_t nbackends)
{
    std::vector<std::unique_ptr<BackendNode>> backends;
    std::vector<NodeId> ids;
    for (uint32_t b = 0; b < nbackends; ++b) {
        backends.push_back(std::make_unique<BackendNode>(
            static_cast<NodeId>(b + 1), benchBackendConfig(64)));
        ids.push_back(static_cast<NodeId>(b + 1));
    }
    FrontendSession s(sessionFor(Mode::RCB, ++session_counter,
                                 cacheBytesFor<DS>(0.10, kPreload), 64));
    for (auto &be : backends) {
        if (!ok(s.connect(be.get())))
            return -1;
    }
    Partitioned<DS> part;
    const Status st = Partitioned<DS>::create(
        s, ids, "p", nbackends, &part,
        [](FrontendSession &sess, NodeId be, std::string_view name,
           DS *out) { return DS::create(sess, be, name, out); });
    if (!ok(st))
        return -1;

    WorkloadConfig wcfg;
    wcfg.key_space = kPreload;
    wcfg.seed = 42;
    Workload loader(wcfg);
    for (uint64_t i = 0; i < kPreload; ++i) {
        const WorkItem item = loader.next();
        (void)part.insert(item.key, item.value);
    }
    (void)s.flushAll();

    WorkloadConfig mcfg = wcfg;
    mcfg.seed = 99;
    Workload w(mcfg);
    const uint64_t t0 = s.clock().now();
    for (uint64_t i = 0; i < kOps; ++i) {
        const WorkItem item = w.next();
        (void)part.insert(item.key, item.value);
    }
    (void)s.flushAll();
    return Throughput{kOps, s.clock().now() - t0}.kops();
}

void
run()
{
    printHeader("Figure 10: one structure partitioned over N back-ends "
                "(KOPS, single front-end, 100% write)",
                "Backends  SkipList        BST        BPT     MV-BST"
                "     MV-BPT");
    for (uint32_t n = 1; n <= 7; ++n) {
        std::printf("%8u  %9.1f  %9.1f  %9.1f  %9.1f  %9.1f\n", n,
                    partitionedKops<SkipList>(n), partitionedKops<Bst>(n),
                    partitionedKops<BpTree>(n), partitionedKops<MvBst>(n),
                    partitionedKops<MvBpTree>(n));
    }
    std::printf("\nPaper (Fig. 10) reference shape: flat — partitioning "
                "across back-ends causes no significant degradation.\n");
}

} // namespace
} // namespace asymnvm::bench

int
main()
{
    asymnvm::bench::run();
    return 0;
}
