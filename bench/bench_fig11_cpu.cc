/**
 * @file
 * Figure 11 reproduction: CPU utilization of front-end and back-end
 * nodes over the run (workload: 10% put / 90% get on BST, as in the
 * paper). Front-end utilization is ~100% (it drives the workload);
 * back-end utilization stays in the single digits because its only work
 * is log replay and slab management — the core asymmetric-architecture
 * claim that back-ends need almost no compute.
 *
 * Utilization = busy virtual time / elapsed virtual time per interval.
 */

#include "bench_common.h"

namespace asymnvm::bench {
namespace {

constexpr uint64_t kPreload = 30000;
constexpr uint64_t kOpsPerInterval = 2000;
constexpr uint32_t kIntervals = 10;

void
run()
{
    BackendNode be(1, benchBackendConfig());
    FrontendSession s(sessionFor(Mode::RCB, 8101,
                                 cacheBytesFor<Bst>(0.10, kPreload), 64));
    if (!ok(s.connect(&be)))
        return;
    Bst tree;
    if (!ok(Bst::create(s, 1, "cpu", &tree)))
        return;
    WorkloadConfig wcfg;
    wcfg.key_space = kPreload;
    wcfg.seed = 42;
    preloadKeys(s, tree, wcfg, kPreload);

    printHeader("Figure 11: CPU utilization, BST with 10% put / 90% get",
                "Interval(ops)   Front-end%   Back-end%");
    WorkloadConfig mcfg = wcfg;
    mcfg.put_ratio = 0.10;
    mcfg.seed = 99;
    Workload w(mcfg);
    uint64_t total_ops = 0;
    for (uint32_t i = 0; i < kIntervals; ++i) {
        const uint64_t fe_t0 = s.clock().now();
        be.resetStats();
        for (uint64_t op = 0; op < kOpsPerInterval; ++op) {
            const WorkItem item = w.next();
            if (item.op == WorkOp::Put)
                (void)tree.insert(item.key, item.value);
            else {
                Value v;
                (void)tree.find(item.key, &v);
            }
        }
        (void)s.flushAll();
        const uint64_t elapsed = s.clock().now() - fe_t0;
        total_ops += kOpsPerInterval;
        // The front-end thread is saturated by the request loop; the
        // back-end is busy only for replay/RPC/replication work.
        const double fe_util = 100.0;
        const double be_util =
            elapsed == 0 ? 0
                         : 100.0 * static_cast<double>(be.busyNs()) /
                               static_cast<double>(elapsed);
        std::printf("%13" PRIu64 "   %9.1f%%   %8.1f%%\n", total_ops,
                    fe_util, be_util);
    }
    std::printf("\nPaper (Fig. 11) reference shape: front-end pinned at "
                "~100%%, back-end at 4-10%% —\nthe back-end's only work "
                "is replaying persisted logs and managing slabs.\n");
}

} // namespace
} // namespace asymnvm::bench

int
main()
{
    asymnvm::bench::run();
    return 0;
}
