/**
 * @file
 * Many-session scale-out at the shared back-end NIC.
 *
 * Section 3.2 pins the scaling bottleneck for fine-grained remote data
 * structure access on the RNIC's IOPS ceiling, not bandwidth; every
 * batching optimization so far coalesces ONE session's verb stream.
 * This bench measures what happens when 1→256 sessions share one
 * back-end, under three NIC models:
 *
 *   legacy   — the cumulative-utilization scalar (nic_cross_session_merge
 *              off): every pre-existing result reproduces bit-identically
 *              under it, but a session's wait ignores who else is live.
 *   noagg    — the per-QP contention model with cross-session doorbell
 *              aggregation disabled (merge_window_ns = 0): every doorbell
 *              pays its own NIC arrival processing and queues behind the
 *              other QPs' round-robin drain.
 *   merge    — the same model with aggregation on: doorbells landing
 *              within the merge window (or while same-class backlog
 *              drains) coalesce into one NIC arrival burst and skip the
 *              per-doorbell overhead.
 *
 * Reported per point: aggregate KOPS (total ops over the slowest
 * session's elapsed virtual time), per-session-latency p50/p99/p999
 * (per-session histograms merged; interpolated percentiles), the worst
 * single session's p99, and the share of doorbells that merged. The
 * merge column should pull ahead of noagg as the session count grows —
 * that delta is the cross-session aggregation win.
 *
 * The second table is the foreground-latency-vs-background-bandwidth
 * frontier: one foreground session runs while a background shipper QP
 * (replication/recovery-replay class) injects bursts at increasing
 * rates, with the QoS arbiter uncapped (bg share 100%) versus capped
 * (25%). Uncapped, foreground p99 collapses once the storm saturates
 * the NIC; capped, the arbiter bounds how much background backlog may
 * drain ahead of each foreground burst and paces the shipper, so
 * foreground p99 holds near its idle-background value while background
 * still moves at the configured share.
 *
 * Emits BENCH_multisession.json with both tables.
 */

#include <algorithm>
#include <memory>

#include "bench_common.h"
#include "ds/hash_table.h"

namespace asymnvm::bench {
namespace {

uint64_t kPreloadPerSession = 200;
uint64_t kOpsPerSession = 400;
uint64_t kFrontierOps = 4000;

/** NIC-model variants of the session sweep. */
enum class NicMode
{
    Legacy,
    NoAgg,
    Merge,
};

const char *
nicModeName(NicMode m)
{
    switch (m) {
      case NicMode::Legacy: return "legacy";
      case NicMode::NoAgg: return "noagg";
      case NicMode::Merge: return "merge";
    }
    return "?";
}

NicQosConfig
nicQosFor(NicMode m)
{
    NicQosConfig q; // defaults: legacy scalar model
    switch (m) {
      case NicMode::Legacy:
        break;
      case NicMode::NoAgg:
        q.cross_session_merge = true;
        q.merge_window_ns = 0;
        break;
      case NicMode::Merge:
        q.cross_session_merge = true;
        break;
    }
    return q;
}

BackendConfig
multiSessionBackend(uint32_t nsessions)
{
    BackendConfig cfg;
    cfg.nvm_size = (48ull << 20) + nsessions * (1ull << 20);
    cfg.max_frontends = std::max(8u, nsessions);
    cfg.max_names = std::max<uint32_t>(64, nsessions + 8);
    cfg.memlog_ring_size = 128ull << 10;
    cfg.oplog_ring_size = 128ull << 10;
    return cfg;
}

/** One row of the session-count sweep. */
struct SweepPoint
{
    NicMode mode = NicMode::Legacy;
    uint32_t sessions = 0;
    double agg_kops = -1;     //!< total ops / slowest session's vtime
    uint64_t p50_ns = 0;      //!< merged per-session op-latency p50
    uint64_t p99_ns = 0;
    uint64_t p999_ns = 0;
    uint64_t worst_p99_ns = 0; //!< max over sessions of per-session p99
    double merged_pct = 0;     //!< doorbells that coalesced (merge only)
    uint64_t nic_verbs = 0;
};

/**
 * k sessions, each with a private hash table on one shared back-end,
 * interleaved at operation granularity (round-robin) so their virtual
 * clocks stay in rough lockstep — the regime in which cross-session
 * timestamps at the NIC are comparable. Per-op latency is the issuing
 * session's clock delta, recorded into a per-session histogram.
 */
SweepPoint
runSweepPoint(NicMode mode, uint32_t nsessions)
{
    SweepPoint out;
    out.mode = mode;
    out.sessions = nsessions;

    BackendConfig bcfg = multiSessionBackend(nsessions);
    bcfg.nic_qos = nicQosFor(mode);
    BackendNode be(1, bcfg);

    struct Lane
    {
        std::unique_ptr<FrontendSession> s;
        HashTable ht;
        Workload w{WorkloadConfig{}};
        Histogram lat;
        uint64_t t0 = 0;
    };
    std::vector<Lane> lanes(nsessions);
    for (uint32_t j = 0; j < nsessions; ++j) {
        Lane &ln = lanes[j];
        ln.s = std::make_unique<FrontendSession>(
            SessionConfig::rcb(j + 1, 256ull << 10, 64));
        if (!ok(ln.s->connect(&be)))
            return out;
        if (!ok(HashTable::create(*ln.s, 1, "ms_" + std::to_string(j), 64,
                                  &ln.ht)))
            return out;
        WorkloadConfig wcfg;
        wcfg.key_space = kPreloadPerSession;
        wcfg.seed = 42 + j;
        preloadKeys(*ln.s, ln.ht, wcfg, kPreloadPerSession);
        WorkloadConfig mcfg = wcfg;
        mcfg.put_ratio = 0.5;
        mcfg.seed = 99 + j;
        ln.w = Workload(mcfg);
        ln.s->resetStats();
        ln.t0 = ln.s->clock().now();
    }
    be.nic().resetStats();

    const uint64_t total_ops = kOpsPerSession * nsessions;
    for (uint64_t i = 0; i < total_ops; ++i) {
        Lane &ln = lanes[i % nsessions];
        const uint64_t op_t0 = ln.s->clock().now();
        const WorkItem item = ln.w.next();
        if (item.op == WorkOp::Put)
            (void)ln.ht.put(item.key, item.value);
        else {
            Value v;
            (void)ln.ht.get(item.key, &v);
        }
        ln.lat.record(ln.s->clock().now() - op_t0);
    }
    for (Lane &ln : lanes)
        (void)ln.s->flushAll();

    uint64_t max_dt = 0;
    Histogram all;
    for (Lane &ln : lanes) {
        max_dt = std::max(max_dt, ln.s->clock().now() - ln.t0);
        out.worst_p99_ns =
            std::max(out.worst_p99_ns, ln.lat.percentileInterp(99));
        all.merge(ln.lat);
    }
    out.agg_kops = Throughput{total_ops, max_dt}.kops();
    out.p50_ns = all.percentileInterp(50);
    out.p99_ns = all.percentileInterp(99);
    out.p999_ns = all.percentileInterp(99.9);
    const uint64_t bursts = be.nic().classBursts(VerbClass::Foreground);
    if (bursts > 0)
        out.merged_pct = 100.0 *
                         be.nic().classMerged(VerbClass::Foreground) /
                         bursts;
    out.nic_verbs = be.nic().verbCount();
    return out;
}

/** One row of the foreground/background frontier. */
struct FrontierPoint
{
    uint32_t bg_share_pct = 100;
    uint64_t bg_wqes_per_round = 0; //!< storm intensity (0 = idle)
    uint64_t fg_p50_ns = 0;
    uint64_t fg_p99_ns = 0;
    double bg_mbps = 0;          //!< background goodput (virtual time)
    double bg_throttle_us = 0;   //!< pacing stall the arbiter charged
    double fg_kops = 0;
};

/**
 * One foreground RCB session against a storm on a background shipper
 * QP. Every 4 foreground ops the shipper rings one burst of
 * @p bg_wqes_per_round WQEs at the back-end NIC (Background class) —
 * the arrival pattern of mirror-replication shipping under load; the
 * burst's own queueing wait is the shipper's problem and is charged to
 * nobody here, but its backlog is what foreground verbs now contend
 * with. 64B per background WQE approximates coalesced log ranges.
 */
FrontierPoint
runFrontierPoint(uint32_t bg_share_pct, uint64_t bg_wqes_per_round)
{
    FrontierPoint out;
    out.bg_share_pct = bg_share_pct;
    out.bg_wqes_per_round = bg_wqes_per_round;

    BackendConfig bcfg = multiSessionBackend(1);
    bcfg.nic_qos.cross_session_merge = true;
    bcfg.nic_qos.bg_share_pct = bg_share_pct;
    BackendNode be(1, bcfg);

    FrontendSession s(SessionConfig::rcb(1, 256ull << 10, 64));
    if (!ok(s.connect(&be)))
        return out;
    HashTable ht;
    if (!ok(HashTable::create(s, 1, "frontier", 64, &ht)))
        return out;
    WorkloadConfig wcfg;
    wcfg.key_space = kPreloadPerSession * 4;
    wcfg.seed = 42;
    preloadKeys(s, ht, wcfg, kPreloadPerSession * 4);
    s.resetStats();
    be.nic().resetStats();

    WorkloadConfig mcfg = wcfg;
    mcfg.put_ratio = 0.5;
    mcfg.seed = 7;
    Workload w(mcfg);
    Histogram lat;
    uint64_t bg_busy_ns = 0;
    const uint64_t t0 = s.clock().now();
    for (uint64_t i = 0; i < kFrontierOps; ++i) {
        if (bg_wqes_per_round != 0 && i % 4 == 0) {
            // The shipper's clock rides the foreground session's (the
            // back-end batches on commit boundaries of live traffic).
            (void)be.nic().reserveBatch(bg_wqes_per_round,
                                        s.clock().now(),
                                        kShipperQpBase + 1,
                                        VerbClass::Background);
            bg_busy_ns += bg_wqes_per_round * be.nic().serviceNs();
        }
        const uint64_t op_t0 = s.clock().now();
        const WorkItem item = w.next();
        if (item.op == WorkOp::Put)
            (void)ht.put(item.key, item.value);
        else {
            Value v;
            (void)ht.get(item.key, &v);
        }
        lat.record(s.clock().now() - op_t0);
    }
    (void)s.flushAll();

    const uint64_t dt = s.clock().now() - t0;
    out.fg_p50_ns = lat.percentileInterp(50);
    out.fg_p99_ns = lat.percentileInterp(99);
    out.fg_kops = Throughput{kFrontierOps, dt}.kops();
    // Background goodput: 64B per WQE over the background stream's own
    // completion horizon — the run's span plus the pacing stall the
    // arbiter charged the shipper. A capped shipper delivers the same
    // bytes later; dividing by the foreground span alone would make the
    // cap look like a bandwidth win instead of the trade it is.
    const uint64_t bg_wqes = be.nic().classWqes(VerbClass::Background);
    const uint64_t bg_span = dt + be.nic().bgThrottleNs();
    out.bg_mbps =
        bg_span == 0 ? 0 : 64.0 * bg_wqes * 1e9 / (1u << 20) / bg_span;
    out.bg_throttle_us = be.nic().bgThrottleNs() / 1000.0;
    (void)bg_busy_ns;
    return out;
}

void
writeJson(const std::vector<SweepPoint> &sweep,
          const std::vector<FrontierPoint> &frontier, const char *path)
{
    std::FILE *f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return;
    }
    std::fprintf(f, "{\n  \"bench\": \"multisession\",\n"
                    "  \"unit\": \"kops\",\n  \"points\": [\n");
    for (size_t i = 0; i < sweep.size(); ++i) {
        const SweepPoint &p = sweep[i];
        std::fprintf(
            f,
            "    {\"mode\": \"%s\", \"sessions\": %u, "
            "\"agg_kops\": %.1f, \"p50_ns\": %" PRIu64 ", "
            "\"p99_ns\": %" PRIu64 ", \"p999_ns\": %" PRIu64 ", "
            "\"worst_session_p99_ns\": %" PRIu64 ", "
            "\"merged_pct\": %.1f}%s\n",
            nicModeName(p.mode), p.sessions, p.agg_kops, p.p50_ns,
            p.p99_ns, p.p999_ns, p.worst_p99_ns, p.merged_pct,
            i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"frontier\": [\n");
    for (size_t i = 0; i < frontier.size(); ++i) {
        const FrontierPoint &p = frontier[i];
        std::fprintf(
            f,
            "    {\"bg_share_pct\": %u, \"bg_wqes_per_round\": %" PRIu64
            ", \"fg_p50_ns\": %" PRIu64 ", \"fg_p99_ns\": %" PRIu64 ", "
            "\"fg_kops\": %.1f, \"bg_mbps\": %.2f, "
            "\"bg_throttle_us\": %.1f}%s\n",
            p.bg_share_pct, p.bg_wqes_per_round, p.fg_p50_ns, p.fg_p99_ns,
            p.fg_kops, p.bg_mbps, p.bg_throttle_us,
            i + 1 < frontier.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

void
run()
{
    if (benchTiny()) {
        kPreloadPerSession = 60;
        kOpsPerSession = 120;
        kFrontierOps = 600;
    }
    std::vector<uint32_t> fleet = {1, 2, 4, 8, 16, 32, 64, 128, 256};
    if (benchTiny())
        fleet = {1, 2, 4, 8};

    printHeader("Session-count sweep at the shared back-end NIC "
                "(HT, 50% put, RCB; per-op latency in ns)",
                "mode     sessions   agg KOPS      p50      p99     p999"
                "   worst-s-p99   merged%");
    std::vector<SweepPoint> sweep;
    for (const NicMode mode :
         {NicMode::Legacy, NicMode::NoAgg, NicMode::Merge}) {
        for (const uint32_t k : fleet) {
            const SweepPoint p = runSweepPoint(mode, k);
            std::printf("%-8s %8u %10.1f %8" PRIu64 " %8" PRIu64
                        " %8" PRIu64 " %13" PRIu64 " %8.1f\n",
                        nicModeName(p.mode), p.sessions, p.agg_kops,
                        p.p50_ns, p.p99_ns, p.p999_ns, p.worst_p99_ns,
                        p.merged_pct);
            sweep.push_back(p);
        }
    }

    printHeader("Foreground latency vs background bandwidth frontier "
                "(1 fg RCB session vs replication-storm QP)",
                "bg-share   bg-wqes/round   fg KOPS   fg-p50(ns)   "
                "fg-p99(ns)   bg MB/s   bg-throttle(us)");
    const uint64_t storms[] = {0, 16, 64, 256};
    std::vector<FrontierPoint> frontier;
    for (const uint32_t share : {100u, 25u}) {
        for (const uint64_t storm : storms) {
            const FrontierPoint p = runFrontierPoint(share, storm);
            std::printf("%8u %15" PRIu64 " %9.1f %12" PRIu64
                        " %12" PRIu64 " %9.2f %17.1f\n",
                        p.bg_share_pct, p.bg_wqes_per_round, p.fg_kops,
                        p.fg_p50_ns, p.fg_p99_ns, p.bg_mbps,
                        p.bg_throttle_us);
            frontier.push_back(p);
        }
    }

    std::printf(
        "\nReference shape: legacy and noagg agree at 1 session; as the"
        "\nfleet grows, noagg pays one NIC arrival processing per"
        "\ndoorbell while merge coalesces most of them (merged%% high at"
        "\nlarge k), so merge's aggregate KOPS pulls ahead. On the"
        "\nfrontier, bg-share 100 lets the storm's backlog drain ahead"
        "\nof foreground verbs (fg p99 collapses as the storm grows);"
        "\nbg-share 25 bounds that backlog per foreground burst and"
        "\npaces the shipper, holding fg p99 within 2x its idle value.\n");

    writeJson(sweep, frontier, "BENCH_multisession.json");
}

} // namespace
} // namespace asymnvm::bench

int
main()
{
    asymnvm::bench::run();
    return 0;
}
