/**
 * @file
 * Extension benchmark: variable-size values.
 *
 * Section 9.6 describes the industry traces as carrying values from
 * 64 bytes to 8 KB; the paper's own figures use the fixed 64-byte value.
 * This extension sweeps the value size on BlobStore (hash-table index +
 * out-of-line payloads) and reports throughput, effective bandwidth,
 * and per-operation latency percentiles — the RTT-dominated small-value
 * regime crossing over into the bandwidth-dominated large-value regime.
 */

#include "bench_common.h"

#include "ds/blob_store.h"

namespace asymnvm::bench {
namespace {

constexpr uint64_t kKeys = 2000;
constexpr uint64_t kOps = 4000;

uint64_t session_counter = 14000;

struct BlobResult
{
    double kops;
    double mb_per_s;
    uint64_t p50_us;
    uint64_t p99_us;
};

BlobResult
runBlobSize(uint32_t value_size, double put_ratio)
{
    BackendNode be(1, benchBackendConfig());
    FrontendSession s(sessionFor(Mode::RCB, ++session_counter,
                                 /*cache=*/kKeys * value_size / 10, 64));
    if (!ok(s.connect(&be)))
        return {-1, 0, 0, 0};
    BlobStore store;
    if (!ok(BlobStore::create(s, 1, "bl", kKeys * 2, &store)))
        return {-1, 0, 0, 0};

    std::vector<uint8_t> payload(value_size);
    Rng rng(7);
    for (auto &b : payload)
        b = static_cast<uint8_t>(rng.next());
    for (uint64_t k = 1; k <= kKeys; ++k) {
        if (!ok(store.put(k, payload.data(), value_size)))
            return {-1, 0, 0, 0};
    }
    (void)s.flushAll();
    s.resetStats();

    Histogram lat;
    const uint64_t t0 = s.clock().now();
    for (uint64_t i = 0; i < kOps; ++i) {
        const uint64_t op_t0 = s.clock().now();
        const Key k = 1 + rng.nextBounded(kKeys);
        if (rng.nextDouble() < put_ratio) {
            payload[0] = static_cast<uint8_t>(i);
            (void)store.put(k, payload.data(), value_size);
        } else {
            std::vector<uint8_t> out;
            (void)store.get(k, &out);
        }
        lat.record(s.clock().now() - op_t0);
    }
    (void)s.flushAll();
    const uint64_t elapsed = s.clock().now() - t0;
    const double kops = Throughput{kOps, elapsed}.kops();
    return {kops, kops * 1000 * value_size / 1e6,
            lat.percentile(50) / 1000, lat.percentile(99) / 1000};
}

void
run()
{
    printHeader("Extension: variable-size values on BlobStore "
                "(50% put / 50% get, the Section 9.6 trace sizes)",
                "ValueSize      KOPS      MB/s   p50(us)   p99(us)");
    for (uint32_t size : {64u, 256u, 1024u, 4096u, 8192u}) {
        const BlobResult r = runBlobSize(size, 0.5);
        std::printf("%6u B  %8.1f  %8.1f  %8" PRIu64 "  %8" PRIu64 "\n",
                    size, r.kops, r.mb_per_s, r.p50_us, r.p99_us);
    }
    std::printf(
        "\nExpected shape: small values are RTT/IOPS-bound (KOPS flat,"
        "\nbandwidth grows with size); large values shift toward the"
        "\n40 Gb/s wire bandwidth while per-op latency grows.\n");
}

} // namespace
} // namespace asymnvm::bench

int
main()
{
    asymnvm::bench::run();
    return 0;
}
