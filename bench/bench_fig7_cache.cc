/**
 * @file
 * Figure 7 reproduction: throughput as a function of the front-end cache
 * size (1%, 5%, 10%, 20% of the data set) for BPT, BST, SkipList, TATP,
 * MV-BPT, MV-BST, HashTable and SmallBank, plus the tree-aware caching
 * ablation (adaptive level admission vs native LRU) the figure's text
 * discusses (native LRU is ~38% below AsymNVM's policy on BPT).
 *
 * Workload: 50% put / 50% get so that the cache serves real read traffic.
 *
 * A second ablation isolates the read-gather prefetch (DESIGN.md §9) on
 * the cold-cache point-lookup path: same B+tree, cache dropped after the
 * preload, 100% gets, with `read_prefetch` on vs off.
 */

#include "bench_common.h"

#include "apps/smallbank.h"
#include "apps/tatp.h"

namespace asymnvm::bench {
namespace {

// Full-size parameters reproduce the paper's shape; ASYMNVM_BENCH_TINY
// shrinks them so the bench_smoke_fig7 ctest target exercises the cache
// and prefetch plumbing in seconds.
uint64_t kPreload = 30000;
uint64_t kOps = 8000;

uint64_t session_counter = 4000;

template <typename DS>
double
runAtCache(double pct)
{
    BackendNode be(1, benchBackendConfig());
    FrontendSession s(sessionFor(Mode::RCB, ++session_counter,
                                 cacheBytesFor<DS>(pct, kPreload), 64));
    if (!ok(s.connect(&be)))
        return -1;
    DS ds;
    Status st;
    if constexpr (std::is_same_v<DS, HashTable>)
        st = HashTable::create(s, 1, "c", kPreload * 2, &ds);
    else
        st = DS::create(s, 1, "c", &ds);
    if (!ok(st))
        return -1;
    WorkloadConfig wcfg;
    wcfg.key_space = kPreload;
    wcfg.seed = 42;
    preloadKeys(s, ds, wcfg, kPreload);
    s.resetStats();
    WorkloadConfig mcfg = wcfg;
    mcfg.put_ratio = 0.5;
    mcfg.dist = KeyDist::Zipf; // skew gives the cache hot data to keep
    mcfg.zipf_theta = 0.9;
    mcfg.seed = 99;
    Workload w(mcfg);
    const auto ops = w.generate(kOps);
    return runKvWorkload(s, ds, ops).kops();
}

double
runTatpAtCache(double pct)
{
    BackendNode be(1, benchBackendConfig());
    const uint64_t bytes = static_cast<uint64_t>(pct * 6.0 * 1024 * 1024);
    FrontendSession s(sessionFor(Mode::RCB, ++session_counter,
                                 std::max<uint64_t>(bytes, 16 << 10), 64));
    if (!ok(s.connect(&be)))
        return -1;
    Tatp tatp;
    if (!ok(Tatp::create(s, 1, 10000, &tatp)))
        return -1;
    s.resetStats();
    Rng rng(6);
    const uint64_t t0 = s.clock().now();
    const uint64_t n = kOps / 2;
    for (uint64_t i = 0; i < n; ++i)
        (void)tatp.runOne(rng);
    (void)s.flushAll();
    return Throughput{n, s.clock().now() - t0}.kops();
}

double
runSmallBankAtCache(double pct)
{
    BackendNode be(1, benchBackendConfig());
    const uint64_t bytes =
        static_cast<uint64_t>(pct * 10000 * 88);
    FrontendSession s(sessionFor(Mode::RC, ++session_counter,
                                 std::max<uint64_t>(bytes, 16 << 10)));
    if (!ok(s.connect(&be)))
        return -1;
    SmallBank bank;
    if (!ok(SmallBank::create(s, 1, 10000, &bank)))
        return -1;
    s.resetStats();
    Rng rng(5);
    const uint64_t t0 = s.clock().now();
    const uint64_t n = kOps / 2;
    for (uint64_t i = 0; i < n; ++i)
        (void)bank.runOne(rng);
    (void)s.flushAll();
    return Throughput{n, s.clock().now() - t0}.kops();
}

/** Tree-aware adaptive admission vs admitting everything (native LRU). */
double
runBptNativeLru(double pct)
{
    BackendNode be(1, benchBackendConfig());
    SessionConfig cfg = sessionFor(Mode::RCB, ++session_counter,
                                   cacheBytesFor<BpTree>(pct, kPreload),
                                   64);
    cfg.cache_policy = CachePolicy::Lru;
    FrontendSession s(cfg);
    if (!ok(s.connect(&be)))
        return -1;
    BpTree ds;
    if (!ok(BpTree::create(s, 1, "c", &ds)))
        return -1;
    // Disable the level threshold: every node goes through the cache,
    // the "native LRU strategy" of the figure's discussion.
    WorkloadConfig wcfg;
    wcfg.key_space = kPreload;
    wcfg.seed = 42;
    preloadKeys(s, ds, wcfg, kPreload);
    s.resetStats();
    WorkloadConfig mcfg = wcfg;
    mcfg.put_ratio = 0.5;
    mcfg.dist = KeyDist::Zipf;
    mcfg.zipf_theta = 0.9;
    mcfg.seed = 99;
    Workload w(mcfg);
    const uint64_t t0 = s.clock().now();
    for (const WorkItem &item : w.generate(kOps)) {
        if (item.op == WorkOp::Put) {
            (void)ds.insert(item.key, item.value);
        } else {
            Value v;
            (void)ds.find(item.key, &v);
        }
    }
    (void)s.flushAll();
    return Throughput{kOps, s.clock().now() - t0}.kops();
}

/** Outcome of one cold-cache lookup run of the prefetch ablation. */
struct PrefetchAblation
{
    double ns_per_op = -1;
    uint64_t doorbells = 0;
    uint64_t issued = 0;
    uint64_t hits = 0;
    uint64_t wasted = 0;
};

/**
 * Read-gather prefetch ablation: cold-cache B+tree point lookups with the
 * traversal prefetch on vs off. The cache is dropped after the preload so
 * every descent starts remote — the case the gather verb accelerates.
 *
 * Keys stay unhashed (range-local): a Zipf point-lookup stream over
 * adjacent keys is the access pattern the sibling gather targets, and the
 * cache gets 25% of the data so warm-up speed — not capacity churn — is
 * what the two runs compare.
 */
PrefetchAblation
runBptColdLookup(bool prefetch_on)
{
    PrefetchAblation out;
    BackendNode be(1, benchBackendConfig());
    SessionConfig cfg = sessionFor(Mode::RC, ++session_counter,
                                   cacheBytesFor<BpTree>(0.25, kPreload));
    cfg.read_prefetch = prefetch_on;
    FrontendSession s(cfg);
    if (!ok(s.connect(&be)))
        return out;
    BpTree ds;
    if (!ok(BpTree::create(s, 1, "c", &ds)))
        return out;
    WorkloadConfig wcfg;
    wcfg.key_space = kPreload;
    wcfg.seed = 42;
    wcfg.hashed_keys = false;
    preloadKeys(s, ds, wcfg, kPreload);
    s.cache().clear(); // start cold: every lookup descends remote
    s.resetStats();
    WorkloadConfig mcfg = wcfg;
    mcfg.put_ratio = 0.0;
    mcfg.dist = KeyDist::Zipf; // locality gives the prefetch hits to earn
    mcfg.zipf_theta = 0.9;
    mcfg.seed = 99;
    Workload w(mcfg);
    const uint64_t nops = kOps / 2;
    const uint64_t t0 = s.clock().now();
    for (uint64_t i = 0; i < nops; ++i) {
        Value v;
        (void)ds.find(w.next().key, &v);
    }
    const uint64_t dt = s.clock().now() - t0;
    const SessionStats st = s.stats();
    out.ns_per_op = static_cast<double>(dt) / static_cast<double>(nops);
    out.doorbells = st.verbs.doorbells;
    out.issued = st.prefetch.issued;
    out.hits = st.prefetch.hits;
    out.wasted = st.prefetch.wasted;
    return out;
}

/**
 * Machine-readable companion of the printed tables: per-structure KOPS
 * per cache fraction, the native-LRU ablation, and the cold-cache
 * prefetch ablation. Format documented in EXPERIMENTS.md.
 */
void
writeJson(const std::vector<std::vector<double>> &main_rows,
          const double *pcts, size_t npcts, double lru_adaptive,
          double lru_native, const PrefetchAblation &pf_on,
          const PrefetchAblation &pf_off, const char *path)
{
    std::FILE *f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return;
    }
    std::fprintf(f, "{\n  \"bench\": \"fig7_cache\",\n"
                    "  \"unit\": \"kops\",\n"
                    "  \"params\": {\"preload\": %" PRIu64
                    ", \"ops\": %" PRIu64 ", \"tiny\": %s},\n",
                 kPreload, kOps, benchTiny() ? "true" : "false");
    static constexpr const char *kCols[] = {
        "BPT", "BST", "SkipList", "TATP",
        "MV-BPT", "MV-BST", "HashTable", "SmallBank"};
    std::fprintf(f, "  \"columns\": [");
    for (size_t i = 0; i < std::size(kCols); ++i)
        std::fprintf(f, "%s\"%s\"", i == 0 ? "" : ", ", kCols[i]);
    std::fprintf(f, "],\n  \"rows\": [\n");
    for (size_t n = 0; n < main_rows.size(); ++n) {
        std::fprintf(f, "    {\"cache_pct\": %.0f, \"cells\": [",
                     pcts[n] * 100);
        for (size_t i = 0; i < main_rows[n].size(); ++i)
            std::fprintf(f, "%s%.1f", i == 0 ? "" : ", ",
                         main_rows[n][i]);
        std::fprintf(f, "]}%s\n",
                     n + 1 == main_rows.size() ? "" : ",");
    }
    (void)npcts;
    std::fprintf(f, "  ],\n  \"lru_ablation\": {\"structure\": \"BPT\", "
                    "\"adaptive\": %.1f, \"native_lru\": %.1f},\n",
                 lru_adaptive, lru_native);
    std::fprintf(f, "  \"prefetch_ablation\": {\"structure\": \"BPT\", "
                    "\"unit\": \"ns/op\", \"prefetch_on\": %.1f, "
                    "\"prefetch_off\": %.1f, \"doorbells_on\": %" PRIu64
                    ", \"doorbells_off\": %" PRIu64 ", \"issued\": %" PRIu64
                    ", \"hits\": %" PRIu64 ", \"wasted\": %" PRIu64 "}\n}\n",
                 pf_on.ns_per_op, pf_off.ns_per_op, pf_on.doorbells,
                 pf_off.doorbells, pf_on.issued, pf_on.hits, pf_on.wasted);
    std::fclose(f);
    std::printf("\nwrote %s\n", path);
}

void
run()
{
    if (benchTiny()) {
        kPreload = 1500;
        kOps = 400;
    }
    const double pcts[] = {0.01, 0.05, 0.10, 0.20};
    printHeader("Figure 7: throughput (KOPS) vs cache size (% of data)",
                "Cache%        BPT       BST  SkipList      TATP"
                "    MV-BPT    MV-BST   HashTbl SmallBank");
    std::vector<std::vector<double>> main_rows;
    for (double pct : pcts) {
        std::vector<double> row = {
            runAtCache<BpTree>(pct),     runAtCache<Bst>(pct),
            runAtCache<SkipList>(pct),   runTatpAtCache(pct),
            runAtCache<MvBpTree>(pct),   runAtCache<MvBst>(pct),
            runAtCache<HashTable>(pct),  runSmallBankAtCache(pct)};
        std::printf("%5.0f%%  %9.1f %9.1f %9.1f %9.1f %9.1f %9.1f"
                    " %9.1f %9.1f\n",
                    pct * 100, row[0], row[1], row[2], row[3], row[4],
                    row[5], row[6], row[7]);
        main_rows.push_back(std::move(row));
    }
    const double lru_adaptive = runAtCache<BpTree>(0.10);
    const double lru_native = runBptNativeLru(0.10);
    std::printf("\nTree-aware caching ablation (BPT, 10%% cache): "
                "adaptive level admission %.1f KOPS vs native LRU "
                "%.1f KOPS\n",
                lru_adaptive, lru_native);

    printHeader("Read-gather prefetch ablation (BPT, cold cache, "
                "100% point lookups)",
                "Prefetch      ns/op  doorbells     issued       hits"
                "     wasted");
    const PrefetchAblation pf_on = runBptColdLookup(true);
    const PrefetchAblation pf_off = runBptColdLookup(false);
    std::printf("%-8s  %9.1f  %9" PRIu64 "  %9" PRIu64 "  %9" PRIu64
                "  %9" PRIu64 "\n",
                "on", pf_on.ns_per_op, pf_on.doorbells, pf_on.issued,
                pf_on.hits, pf_on.wasted);
    std::printf("%-8s  %9.1f  %9" PRIu64 "  %9" PRIu64 "  %9" PRIu64
                "  %9" PRIu64 "\n",
                "off", pf_off.ns_per_op, pf_off.doorbells, pf_off.issued,
                pf_off.hits, pf_off.wasted);
    std::printf("\nExpected shape: prefetch-on finishes the same lookups "
                "in fewer virtual ns/op and\nfewer doorbells — sibling "
                "gathers turn the next lookup's descent into cache "
                "hits.\n");

    std::printf("\nPaper (Fig. 7) reference shape: throughput grows with "
                "cache size;\nMV variants barely improve (their modified "
                "data stays in front-end memory);\nnative LRU trails the "
                "level-aware policy by ~38%% on BPT.\n");

    writeJson(main_rows, pcts, std::size(pcts), lru_adaptive, lru_native,
              pf_on, pf_off, "BENCH_fig7_cache.json");
}

} // namespace
} // namespace asymnvm::bench

int
main()
{
    asymnvm::bench::run();
    return 0;
}
