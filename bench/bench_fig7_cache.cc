/**
 * @file
 * Figure 7 reproduction: throughput as a function of the front-end cache
 * size (1%, 5%, 10%, 20% of the data set) for BPT, BST, SkipList, TATP,
 * MV-BPT, MV-BST, HashTable and SmallBank, plus the tree-aware caching
 * ablation (adaptive level admission vs native LRU) the figure's text
 * discusses (native LRU is ~38% below AsymNVM's policy on BPT).
 *
 * Workload: 50% put / 50% get so that the cache serves real read traffic.
 */

#include "bench_common.h"

#include "apps/smallbank.h"
#include "apps/tatp.h"

namespace asymnvm::bench {
namespace {

constexpr uint64_t kPreload = 30000;
constexpr uint64_t kOps = 8000;

uint64_t session_counter = 4000;

template <typename DS>
double
runAtCache(double pct)
{
    BackendNode be(1, benchBackendConfig());
    FrontendSession s(sessionFor(Mode::RCB, ++session_counter,
                                 cacheBytesFor<DS>(pct, kPreload), 64));
    if (!ok(s.connect(&be)))
        return -1;
    DS ds;
    Status st;
    if constexpr (std::is_same_v<DS, HashTable>)
        st = HashTable::create(s, 1, "c", kPreload * 2, &ds);
    else
        st = DS::create(s, 1, "c", &ds);
    if (!ok(st))
        return -1;
    WorkloadConfig wcfg;
    wcfg.key_space = kPreload;
    wcfg.seed = 42;
    preloadKeys(s, ds, wcfg, kPreload);
    s.resetStats();
    WorkloadConfig mcfg = wcfg;
    mcfg.put_ratio = 0.5;
    mcfg.dist = KeyDist::Zipf; // skew gives the cache hot data to keep
    mcfg.zipf_theta = 0.9;
    mcfg.seed = 99;
    Workload w(mcfg);
    const auto ops = w.generate(kOps);
    return runKvWorkload(s, ds, ops).kops();
}

double
runTatpAtCache(double pct)
{
    BackendNode be(1, benchBackendConfig());
    const uint64_t bytes = static_cast<uint64_t>(pct * 6.0 * 1024 * 1024);
    FrontendSession s(sessionFor(Mode::RCB, ++session_counter,
                                 std::max<uint64_t>(bytes, 16 << 10), 64));
    if (!ok(s.connect(&be)))
        return -1;
    Tatp tatp;
    if (!ok(Tatp::create(s, 1, 10000, &tatp)))
        return -1;
    s.resetStats();
    Rng rng(6);
    const uint64_t t0 = s.clock().now();
    const uint64_t n = kOps / 2;
    for (uint64_t i = 0; i < n; ++i)
        (void)tatp.runOne(rng);
    (void)s.flushAll();
    return Throughput{n, s.clock().now() - t0}.kops();
}

double
runSmallBankAtCache(double pct)
{
    BackendNode be(1, benchBackendConfig());
    const uint64_t bytes =
        static_cast<uint64_t>(pct * 10000 * 88);
    FrontendSession s(sessionFor(Mode::RC, ++session_counter,
                                 std::max<uint64_t>(bytes, 16 << 10)));
    if (!ok(s.connect(&be)))
        return -1;
    SmallBank bank;
    if (!ok(SmallBank::create(s, 1, 10000, &bank)))
        return -1;
    s.resetStats();
    Rng rng(5);
    const uint64_t t0 = s.clock().now();
    const uint64_t n = kOps / 2;
    for (uint64_t i = 0; i < n; ++i)
        (void)bank.runOne(rng);
    (void)s.flushAll();
    return Throughput{n, s.clock().now() - t0}.kops();
}

/** Tree-aware adaptive admission vs admitting everything (native LRU). */
double
runBptNativeLru(double pct)
{
    BackendNode be(1, benchBackendConfig());
    SessionConfig cfg = sessionFor(Mode::RCB, ++session_counter,
                                   cacheBytesFor<BpTree>(pct, kPreload),
                                   64);
    cfg.cache_policy = CachePolicy::Lru;
    FrontendSession s(cfg);
    if (!ok(s.connect(&be)))
        return -1;
    BpTree ds;
    if (!ok(BpTree::create(s, 1, "c", &ds)))
        return -1;
    // Disable the level threshold: every node goes through the cache,
    // the "native LRU strategy" of the figure's discussion.
    WorkloadConfig wcfg;
    wcfg.key_space = kPreload;
    wcfg.seed = 42;
    preloadKeys(s, ds, wcfg, kPreload);
    s.resetStats();
    WorkloadConfig mcfg = wcfg;
    mcfg.put_ratio = 0.5;
    mcfg.dist = KeyDist::Zipf;
    mcfg.zipf_theta = 0.9;
    mcfg.seed = 99;
    Workload w(mcfg);
    const uint64_t t0 = s.clock().now();
    for (const WorkItem &item : w.generate(kOps)) {
        if (item.op == WorkOp::Put) {
            (void)ds.insert(item.key, item.value);
        } else {
            Value v;
            (void)ds.find(item.key, &v);
        }
    }
    (void)s.flushAll();
    return Throughput{kOps, s.clock().now() - t0}.kops();
}

void
run()
{
    const double pcts[] = {0.01, 0.05, 0.10, 0.20};
    printHeader("Figure 7: throughput (KOPS) vs cache size (% of data)",
                "Cache%        BPT       BST  SkipList      TATP"
                "    MV-BPT    MV-BST   HashTbl SmallBank");
    for (double pct : pcts) {
        std::printf("%5.0f%%  %9.1f %9.1f %9.1f %9.1f %9.1f %9.1f"
                    " %9.1f %9.1f\n",
                    pct * 100, runAtCache<BpTree>(pct),
                    runAtCache<Bst>(pct), runAtCache<SkipList>(pct),
                    runTatpAtCache(pct), runAtCache<MvBpTree>(pct),
                    runAtCache<MvBst>(pct), runAtCache<HashTable>(pct),
                    runSmallBankAtCache(pct));
    }
    std::printf("\nTree-aware caching ablation (BPT, 10%% cache): "
                "adaptive level admission %.1f KOPS vs native LRU "
                "%.1f KOPS\n",
                runAtCache<BpTree>(0.10), runBptNativeLru(0.10));
    std::printf("\nPaper (Fig. 7) reference shape: throughput grows with "
                "cache size;\nMV variants barely improve (their modified "
                "data stays in front-end memory);\nnative LRU trails the "
                "level-aware policy by ~38%% on BPT.\n");
}

} // namespace
} // namespace asymnvm::bench

int
main()
{
    asymnvm::bench::run();
    return 0;
}
