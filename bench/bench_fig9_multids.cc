/**
 * @file
 * Figure 9 reproduction: multiple front-ends sharing one back-end, each
 * operating its own data structure instance. The paper reports almost
 * linear scaling with 7-19% per-client degradation at 7 front-ends —
 * the shared cost is the back-end NIC's verb-service capacity.
 */

#include <atomic>
#include <thread>

#include "bench_common.h"

namespace asymnvm::bench {
namespace {

constexpr uint64_t kPreload = 10000;
constexpr uint64_t kOps = 6000;

uint64_t session_counter = 6000;

template <typename DS>
double
totalKops(uint32_t nclients)
{
    BackendNode be(1, benchBackendConfig());
    std::vector<std::unique_ptr<FrontendSession>> sessions;
    std::vector<std::unique_ptr<DS>> dss;
    for (uint32_t c = 0; c < nclients; ++c) {
        sessions.push_back(std::make_unique<FrontendSession>(
            sessionFor(Mode::RCB, ++session_counter,
                       cacheBytesFor<DS>(0.10, kPreload), 64)));
        if (!ok(sessions.back()->connect(&be)))
            return -1;
        dss.push_back(std::make_unique<DS>());
        const std::string name = "inst" + std::to_string(c);
        if (!ok(DS::create(*sessions.back(), 1, name, dss.back().get())))
            return -1;
        WorkloadConfig wcfg;
        wcfg.key_space = kPreload;
        wcfg.seed = 42 + c;
        preloadKeys(*sessions.back(), *dss.back(), wcfg, kPreload);
    }
    be.nic().resetStats();

    std::atomic<bool> go{false};
    std::vector<double> kops(nclients, 0);
    std::vector<std::thread> threads;
    for (uint32_t c = 0; c < nclients; ++c) {
        threads.emplace_back([&, c] {
            while (!go.load())
                std::this_thread::yield();
            FrontendSession &s = *sessions[c];
            WorkloadConfig wcfg;
            wcfg.key_space = kPreload;
            wcfg.seed = 1000 + c;
            Workload w(wcfg);
            const auto ops = w.generate(kOps);
            kops[c] = runKvWorkload(s, *dss[c], ops,
                                    /*interleave=*/true).kops();
        });
    }
    go.store(true);
    for (auto &t : threads)
        t.join();
    double total = 0;
    for (double k : kops)
        total += k;
    return total;
}

void
run()
{
    printHeader("Figure 9: multiple front-ends, one back-end, one DS "
                "instance per front-end (total KOPS)",
                "Clients   SkipList        BST        BPT     MV-BST"
                "     MV-BPT");
    double base[5] = {0, 0, 0, 0, 0};
    for (uint32_t n = 1; n <= 7; ++n) {
        const double v[5] = {totalKops<SkipList>(n), totalKops<Bst>(n),
                             totalKops<BpTree>(n), totalKops<MvBst>(n),
                             totalKops<MvBpTree>(n)};
        if (n == 1)
            for (int i = 0; i < 5; ++i)
                base[i] = v[i];
        std::printf("%7u  %9.1f  %9.1f  %9.1f  %9.1f  %9.1f\n", n, v[0],
                    v[1], v[2], v[3], v[4]);
        if (n == 7) {
            std::printf("per-client vs 1-client:");
            for (int i = 0; i < 5; ++i)
                std::printf("  %4.0f%%", 100.0 * (v[i] / 7.0) / base[i]);
            std::printf("\n");
        }
    }
    std::printf("\nPaper (Fig. 9) reference shape: near-linear scaling; "
                "7-19%% per-client degradation at 7 front-ends.\n");
}

} // namespace
} // namespace asymnvm::bench

int
main()
{
    asymnvm::bench::run();
    return 0;
}
