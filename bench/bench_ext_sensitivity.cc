/**
 * @file
 * Extension benchmark: sensitivity of the asymmetric-vs-symmetric
 * trade-off to hardware constants.
 *
 * The paper's conclusion — AsymNVM-RCB matches or beats the best
 * symmetric deployment — is evaluated on CX-3-class RDMA (~2 us RTT).
 * This extension sweeps the network round trip from 4 us down to 0.5 us
 * (CX-6/Gen-Z class) and the NVM read latency from 500 ns down to 100 ns,
 * locating where the asymmetric design's crossover moves: faster networks
 * strengthen the disaggregation argument, faster NVM strengthens the
 * symmetric baseline.
 */

#include "bench_common.h"

namespace asymnvm::bench {
namespace {

constexpr uint64_t kPreload = 20000;
constexpr uint64_t kOps = 8000;

uint64_t session_counter = 15000;

double
runBpt(Mode mode, const LatencyModel &lat)
{
    BackendNode be(1, benchBackendConfig(), lat);
    FrontendSession s(sessionFor(mode, ++session_counter,
                                 cacheBytesFor<BpTree>(0.10, kPreload),
                                 1024),
                      lat);
    if (!ok(s.connect(&be)))
        return -1;
    BpTree tree;
    if (!ok(BpTree::create(s, 1, "sens", &tree)))
        return -1;
    WorkloadConfig wcfg;
    wcfg.key_space = kPreload;
    wcfg.seed = 42;
    preloadKeys(s, tree, wcfg, kPreload);
    s.resetStats();
    WorkloadConfig mcfg = wcfg;
    mcfg.put_ratio = 0.5;
    mcfg.seed = 99;
    Workload w(mcfg);
    return runKvWorkload(s, tree, w.generate(kOps)).kops();
}

void
run()
{
    printHeader("Extension: sensitivity to network RTT "
                "(BPT, 50% put, NVM read 300 ns)",
                "RTT(us)   AsymNVM-RCB   Symmetric-B   Asym/Sym");
    for (uint64_t rtt : {4000u, 2000u, 1000u, 500u}) {
        LatencyModel lat;
        lat.rdma_read_rtt_ns = rtt;
        lat.rdma_write_rtt_ns = rtt * 19 / 20;
        lat.rdma_atomic_rtt_ns = rtt * 21 / 20;
        const double asym = runBpt(Mode::RCB, lat);
        const double sym = runBpt(Mode::SymmetricB, lat);
        std::printf("%7.1f   %11.1f   %11.1f   %8.2f\n", rtt / 1000.0,
                    asym, sym, asym / sym);
    }

    printHeader("Extension: sensitivity to NVM read latency "
                "(BPT, 50% put, RTT 2 us)",
                "NVMread(ns)   AsymNVM-RCB   Symmetric-B   Asym/Sym");
    for (uint64_t nvm : {500u, 300u, 200u, 100u}) {
        LatencyModel lat;
        lat.nvm_read_ns = nvm;
        const double asym = runBpt(Mode::RCB, lat);
        const double sym = runBpt(Mode::SymmetricB, lat);
        std::printf("%11" PRIu64 "   %11.1f   %11.1f   %8.2f\n", nvm,
                    asym, sym, asym / sym);
    }
    std::printf(
        "\nExpected shape: the Asym/Sym ratio rises as the network gets"
        "\nfaster (disaggregation wins more) and falls as NVM reads get"
        "\nfaster (the symmetric baseline's local reads speed up while"
        "\nAsymNVM's remote path is RTT-bound).\n");
}

} // namespace
} // namespace asymnvm::bench

int
main()
{
    asymnvm::bench::run();
    return 0;
}
