/**
 * @file
 * Section 6.3 reproduction: the "ping-point" lock benchmark (after
 * Frangipani). Six reader front-ends and one writer hammer the same
 * record under the write-preferred reader lock. The paper reports, at
 * 10% write: ~260 KOPS per reader (1.56 MOPS total), 539 KOPS writer,
 * 3% failed reads; at 50% write: 165 KOPS per reader, 26% fail ratio,
 * writer ~510 KOPS — the write-preferred design keeps writer throughput
 * stable while reader retries absorb the conflicts.
 */

#include <atomic>
#include <thread>

#include "bench_common.h"

namespace asymnvm::bench {
namespace {

constexpr uint64_t kReaderOps = 20000;
constexpr uint64_t kWriterOps = 20000;
constexpr uint32_t kReaders = 6;

uint64_t session_counter = 12000;

struct PingResult
{
    double reader_each_kops;
    double reader_total_kops;
    double writer_kops;
    double fail_ratio;
};

PingResult
runPingPoint(double write_share)
{
    BackendNode be(1, benchBackendConfig());
    DsOptions shared;
    shared.shared = true;
    shared.max_read_retries = 1024;

    FrontendSession writer(sessionFor(Mode::R, ++session_counter));
    if (!ok(writer.connect(&be)))
        return {};
    HashTable wht;
    if (!ok(HashTable::create(writer, 1, "ping", 16, &wht, shared)))
        return {};
    (void)wht.put(1, Value::ofU64(0));
    (void)writer.flushAll();

    std::vector<std::unique_ptr<FrontendSession>> rsessions;
    std::vector<std::unique_ptr<HashTable>> rhts;
    for (uint32_t r = 0; r < kReaders; ++r) {
        // No cache: every read really touches the shared record.
        rsessions.push_back(std::make_unique<FrontendSession>(
            sessionFor(Mode::R, ++session_counter)));
        if (!ok(rsessions.back()->connect(&be)))
            return {};
        rhts.push_back(std::make_unique<HashTable>());
        if (!ok(HashTable::open(*rsessions.back(), 1, "ping",
                                rhts.back().get(), shared)))
            return {};
    }

    std::atomic<bool> go{false};
    std::atomic<bool> writer_done{false};
    std::vector<double> reader_kops(kReaders, 0);
    std::vector<double> fail_ratios(kReaders, 0);
    std::vector<std::thread> threads;
    for (uint32_t r = 0; r < kReaders; ++r) {
        threads.emplace_back([&, r] {
            while (!go.load())
                std::this_thread::yield();
            FrontendSession &s = *rsessions[r];
            HashTable &ht = *rhts[r];
            const uint64_t t0 = s.clock().now();
            for (uint64_t i = 0; i < kReaderOps; ++i) {
                Value v;
                (void)ht.get(1, &v);
            }
            reader_kops[r] =
                Throughput{kReaderOps, s.clock().now() - t0}.kops();
            fail_ratios[r] = ht.readFailRatio();
        });
    }
    double writer_kops = 0;
    std::thread wt([&] {
        while (!go.load())
            std::this_thread::yield();
        Rng rng(3);
        const uint64_t t0 = writer.clock().now();
        uint64_t done = 0;
        for (uint64_t i = 0; done < kWriterOps; ++i) {
            // The writer's share of ops are writes; the rest are reads
            // (the workload's 10%/50% write mix from the writer's side).
            if (rng.nextDouble() < write_share) {
                (void)wht.put(1, Value::ofU64(i));
            } else {
                Value v;
                (void)wht.get(1, &v);
            }
            ++done;
        }
        (void)writer.flushAll();
        writer_kops =
            Throughput{kWriterOps, writer.clock().now() - t0}.kops();
        writer_done.store(true);
    });
    go.store(true);
    wt.join();
    for (auto &t : threads)
        t.join();

    PingResult res{};
    for (uint32_t r = 0; r < kReaders; ++r) {
        res.reader_total_kops += reader_kops[r];
        res.fail_ratio += fail_ratios[r];
    }
    res.reader_each_kops = res.reader_total_kops / kReaders;
    res.fail_ratio /= kReaders;
    res.writer_kops = writer_kops;
    return res;
}

void
run()
{
    printHeader("Section 6.3: ping-point lock benchmark, 6 readers + 1 "
                "writer on one record",
                "WriteShare  Reader-each  Reader-total     Writer"
                "   FailRatio");
    for (double share : {0.10, 0.50}) {
        const PingResult r = runPingPoint(share);
        std::printf("%9.0f%%  %11.1f  %12.1f  %9.1f  %9.1f%%\n",
                    share * 100, r.reader_each_kops, r.reader_total_kops,
                    r.writer_kops, r.fail_ratio * 100);
    }
    std::printf(
        "\nPaper (Sec. 6.3) reference: 10%% write -> reader 260 KOPS "
        "each (1.56 MOPS total),\nwriter 539 KOPS, 3%% fail; 50%% write "
        "-> reader 165 KOPS, 26%% fail, writer ~510 KOPS.\nShape: "
        "write-preferred lock keeps the writer fast; reader retries "
        "grow with write share.\n");
}

} // namespace
} // namespace asymnvm::bench

int
main()
{
    asymnvm::bench::run();
    return 0;
}
