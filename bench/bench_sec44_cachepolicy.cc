/**
 * @file
 * Section 4.4 reproduction: cache replacement policy comparison under a
 * Zipf workload. The paper reports, with a sample set of 32: hybrid
 * 29.2% miss ratio vs RR 62.7% (a 33.5-point reduction), a miss ratio
 * similar to LRU, and ~27.5% higher throughput than LRU (which pays
 * list maintenance on every hit).
 */

#include "bench_common.h"

namespace asymnvm::bench {
namespace {

constexpr uint64_t kPreload = 40000;
constexpr uint64_t kOps = 50000;

uint64_t session_counter = 11000;

struct PolicyResult
{
    double miss_ratio;
    double kops;
};

PolicyResult
runPolicy(CachePolicy policy, uint32_t sample_k)
{
    BackendNode be(1, benchBackendConfig());
    SessionConfig cfg = sessionFor(Mode::RC, ++session_counter,
                                   cacheBytesFor<HashTable>(0.10,
                                                            kPreload));
    cfg.cache_policy = policy;
    cfg.cache_sample_k = sample_k;
    FrontendSession s(cfg);
    if (!ok(s.connect(&be)))
        return {-1, -1};
    HashTable ht;
    if (!ok(HashTable::create(s, 1, "p", kPreload * 2, &ht)))
        return {-1, -1};
    WorkloadConfig wcfg;
    wcfg.key_space = kPreload;
    wcfg.seed = 42;
    preloadKeys(s, ht, wcfg, kPreload);
    s.resetStats();

    WorkloadConfig mcfg = wcfg;
    mcfg.put_ratio = 0.0; // read-only: isolate the cache policy
    mcfg.dist = KeyDist::Zipf;
    mcfg.zipf_theta = 0.99;
    mcfg.seed = 99;
    Workload w(mcfg);
    const uint64_t t0 = s.clock().now();
    for (uint64_t i = 0; i < kOps; ++i) {
        Value v;
        (void)ht.get(w.next().key, &v);
    }
    return {s.cache().missRatio(),
            Throughput{kOps, s.clock().now() - t0}.kops()};
}

void
run()
{
    printHeader("Section 4.4: cache replacement policies, Zipf(0.9) "
                "reads, cache = 10% of data",
                "Policy             MissRatio      KOPS");
    const PolicyResult rr = runPolicy(CachePolicy::Random, 0);
    const PolicyResult lru = runPolicy(CachePolicy::Lru, 0);
    const PolicyResult hybrid = runPolicy(CachePolicy::Hybrid, 32);
    std::printf("%-18s %8.1f%% %9.1f\n", "Random (RR)",
                rr.miss_ratio * 100, rr.kops);
    std::printf("%-18s %8.1f%% %9.1f\n", "LRU", lru.miss_ratio * 100,
                lru.kops);
    std::printf("%-18s %8.1f%% %9.1f\n", "Hybrid (sample 32)",
                hybrid.miss_ratio * 100, hybrid.kops);
    std::printf("\nSample-set sweep (hybrid policy):\nK     MissRatio\n");
    for (uint32_t k : {2u, 4u, 8u, 16u, 32u, 64u}) {
        const PolicyResult r = runPolicy(CachePolicy::Hybrid, k);
        std::printf("%-5u %8.1f%%\n", k, r.miss_ratio * 100);
    }
    std::printf("\nPaper (Sec. 4.4) reference: hybrid(32) 29.2%% miss vs "
                "RR 62.7%%, miss ratio similar\nto LRU with ~27.5%% "
                "higher throughput (LRU pays bookkeeping per access).\n");
}

} // namespace
} // namespace asymnvm::bench

int
main()
{
    asymnvm::bench::run();
    return 0;
}
