/**
 * @file
 * Pipeline-depth ablation (DESIGN.md §11 and §14), three sections:
 *
 * 1. Reads — cold-cache B+tree point lookups through BpTree::findMany
 *    with `pipeline_depth` swept 1 → 16. Depth 1 runs the serial
 *    protocol bit-for-bit (the reactor never engages); deeper windows
 *    keep that many descents in flight and multiplex their remote reads
 *    onto shared doorbell-batched gather rounds.
 *
 * 2. Write-ratio × depth — the same cold-cache B+tree under mixed
 *    windows of native write (insertAsync) and read (findAsync)
 *    coroutines at 0/50/100% writes. Write descents join the shared
 *    gather rounds; their op-log appends ride one batched WQE chain per
 *    round and their commit fences coalesce to the window drain.
 *
 * 3. Write-heavy fan-out — the Stack RCB cell: eight stacks' pops (a
 *    pop writes the head/count shadows and frees the node) issued one
 *    per stack per window. Each stack's pops form a dependent pointer
 *    chain, so depth 1 pays one head-read RTT per op; at depth 8 the
 *    eight chains advance in lockstep through single-gather rounds.
 *
 * Same cold-cache setup as the Figure 7 prefetch ablation: cache sized
 * to 25% of the data and dropped after the preload, Zipf theta 0.9 over
 * unhashed (range-local) keys.
 *
 * ASYMNVM_BENCH_PIPE_SECTION=reads|writes runs one section (the smoke
 * tests split them); unset runs everything.
 */

#include <cstring>

#include "bench_common.h"

namespace asymnvm::bench {
namespace {

// Full-size parameters reproduce the paper-scale shape;
// ASYMNVM_BENCH_TINY shrinks them so the bench_smoke_pipeline ctest
// target exercises the reactor plumbing in seconds.
uint64_t kPreload = 30000;
uint64_t kOps = 8000;

/** Keys handed to one findMany call (the application batch size). */
constexpr size_t kBatch = 32;

uint64_t session_counter = 7000;

/** Outcome of one depth point of the sweep. */
struct DepthPoint
{
    uint64_t depth = 0;
    double ns_per_op = -1;
    double kops = 0;
    uint64_t doorbells = 0;
    uint64_t reads = 0;
    PipelineStats pipe;
};

/**
 * Cold-cache B+tree lookups at one pipeline depth. Every run replays
 * the same Zipf key stream through the same batch boundaries, so the
 * only variable across depth points is how many descents overlap.
 */
DepthPoint
runBptColdLookupAtDepth(uint64_t depth)
{
    DepthPoint out;
    out.depth = depth;
    BackendNode be(1, benchBackendConfig());
    SessionConfig cfg = sessionFor(Mode::RC, ++session_counter,
                                   cacheBytesFor<BpTree>(0.25, kPreload));
    cfg.pipeline_depth = static_cast<uint32_t>(depth);
    FrontendSession s(cfg);
    if (!ok(s.connect(&be)))
        return out;
    BpTree ds;
    if (!ok(BpTree::create(s, 1, "c", &ds)))
        return out;
    WorkloadConfig wcfg;
    wcfg.key_space = kPreload;
    wcfg.seed = 42;
    wcfg.hashed_keys = false;
    preloadKeys(s, ds, wcfg, kPreload);
    s.cache().clear(); // start cold: every lookup descends remote
    s.resetStats();
    WorkloadConfig mcfg = wcfg;
    mcfg.put_ratio = 0.0;
    mcfg.dist = KeyDist::Zipf;
    mcfg.zipf_theta = 0.9;
    mcfg.seed = 99;
    Workload w(mcfg);
    const uint64_t nops = kOps / 2;
    std::vector<Key> keys(nops);
    for (uint64_t i = 0; i < nops; ++i)
        keys[i] = w.next().key;
    std::vector<Value> vals(kBatch);
    std::vector<Status> results(kBatch);
    const uint64_t t0 = s.clock().now();
    for (size_t base = 0; base < keys.size(); base += kBatch) {
        const size_t n = std::min(kBatch, keys.size() - base);
        (void)ds.findMany({keys.data() + base, n}, vals.data(),
                          results.data());
    }
    const uint64_t dt = s.clock().now() - t0;
    const SessionStats st = s.stats();
    out.ns_per_op = static_cast<double>(dt) / static_cast<double>(nops);
    out.kops = Throughput{nops, dt}.kops();
    out.doorbells = st.verbs.doorbells;
    out.reads = st.verbs.reads;
    out.pipe = st.pipeline;
    return out;
}

/**
 * Mixed read/write windows at one depth: the same cold-cache Zipf
 * stream, with @p put_ratio of the ops issued as native insertAsync
 * coroutines (updates and fresh keys alike) and the rest as findAsync,
 * all through one heterogeneous executePipelined window per batch.
 */
DepthPoint
runBptMixedAtDepth(uint64_t depth, double put_ratio)
{
    DepthPoint out;
    out.depth = depth;
    BackendNode be(1, benchBackendConfig());
    SessionConfig cfg = sessionFor(Mode::RC, ++session_counter,
                                   cacheBytesFor<BpTree>(0.25, kPreload));
    cfg.pipeline_depth = static_cast<uint32_t>(depth);
    FrontendSession s(cfg);
    if (!ok(s.connect(&be)))
        return out;
    BpTree ds;
    if (!ok(BpTree::create(s, 1, "c", &ds)))
        return out;
    WorkloadConfig wcfg;
    wcfg.key_space = kPreload;
    wcfg.seed = 42;
    wcfg.hashed_keys = false;
    preloadKeys(s, ds, wcfg, kPreload);
    s.cache().clear();
    s.resetStats();
    WorkloadConfig mcfg = wcfg;
    mcfg.put_ratio = put_ratio;
    mcfg.dist = KeyDist::Zipf;
    mcfg.zipf_theta = 0.9;
    mcfg.seed = 99;
    Workload w(mcfg);
    const uint64_t nops = kOps / 2;
    std::vector<WorkItem> items;
    items.reserve(nops);
    for (uint64_t i = 0; i < nops; ++i)
        items.push_back(w.next());
    std::vector<Value> vals(kBatch);
    std::vector<Status> results(kBatch);
    const uint64_t t0 = s.clock().now();
    for (size_t base = 0; base < items.size(); base += kBatch) {
        const size_t n = std::min(kBatch, items.size() - base);
        std::vector<OpTask> ops;
        ops.reserve(n);
        for (size_t j = 0; j < n; ++j) {
            const WorkItem &item = items[base + j];
            if (item.op == WorkOp::Put)
                ops.push_back(ds.insertAsync(item.key, item.value));
            else
                ops.push_back(ds.findAsync(item.key, &vals[j]));
        }
        s.executePipelined(std::span<OpTask>(ops),
                           std::span<Status>(results.data(), n));
    }
    const uint64_t dt = s.clock().now() - t0;
    const SessionStats st = s.stats();
    out.ns_per_op = static_cast<double>(dt) / static_cast<double>(nops);
    out.kops = Throughput{nops, dt}.kops();
    out.doorbells = st.verbs.doorbells;
    out.reads = st.verbs.reads;
    out.pipe = st.pipeline;
    return out;
}

/** Stacks popped one-per-structure per window (the Stack RCB cell). */
constexpr size_t kStacks = 8;

/**
 * Write-heavy fan-out at one depth: every window pops all eight stacks
 * once. A pop writes shadows/memlogs and frees the node, but its wire
 * cost is the dependent head-node read — eight independent chains, so
 * the window turns eight serial RTTs into one gather round.
 */
DepthPoint
runStackPopFanoutAtDepth(uint64_t depth)
{
    DepthPoint out;
    out.depth = depth;
    BackendNode be(1, benchBackendConfig());
    SessionConfig cfg = sessionFor(Mode::RCB, ++session_counter,
                                   64ull << 10);
    cfg.pipeline_depth = static_cast<uint32_t>(depth);
    FrontendSession s(cfg);
    if (!ok(s.connect(&be)))
        return out;
    std::vector<Stack> stacks(kStacks);
    const uint64_t per = std::max<uint64_t>(kOps / (2 * kStacks), 8);
    char name[16];
    for (size_t i = 0; i < kStacks; ++i) {
        std::snprintf(name, sizeof name, "s%zu", i);
        if (!ok(Stack::create(s, 1, name, &stacks[i])))
            return out;
        for (uint64_t j = 0; j < per; ++j)
            (void)stacks[i].push(Value::ofU64(j));
    }
    (void)s.flushAll(); // materialize every pending push
    s.cache().clear();  // pops chase cold head chains
    s.resetStats();
    const uint64_t nops = per * kStacks;
    std::vector<Value> outs(kStacks);
    std::vector<Status> results(kStacks);
    const uint64_t t0 = s.clock().now();
    for (uint64_t round = 0; round < per; ++round) {
        std::vector<OpTask> ops;
        ops.reserve(kStacks);
        for (size_t i = 0; i < kStacks; ++i)
            ops.push_back(stacks[i].popAsync(&outs[i]));
        s.executePipelined(std::span<OpTask>(ops),
                           std::span<Status>(results.data(), kStacks));
    }
    const uint64_t dt = s.clock().now() - t0;
    const SessionStats st = s.stats();
    out.ns_per_op = static_cast<double>(dt) / static_cast<double>(nops);
    out.kops = Throughput{nops, dt}.kops();
    out.doorbells = st.verbs.doorbells;
    out.reads = st.verbs.reads;
    out.pipe = st.pipeline;
    return out;
}

void
printDepthRow(const DepthPoint &p, double base)
{
    std::printf("%5" PRIu64 "  %9.1f  %9.1f  %8.2fx  %9" PRIu64
                "  %9" PRIu64 "\n",
                p.depth, p.kops, p.ns_per_op,
                p.ns_per_op > 0 ? base / p.ns_per_op : 0.0,
                p.doorbells, p.reads);
}

void
fprintDepthRows(std::FILE *f, const std::vector<DepthPoint> &points,
                const char *extra_key, double extra_val,
                bool trailing_comma = false)
{
    const double base = points.empty() ? 0.0 : points[0].ns_per_op;
    for (size_t i = 0; i < points.size(); ++i) {
        const DepthPoint &p = points[i];
        std::fprintf(f, "    {");
        if (extra_key != nullptr)
            std::fprintf(f, "\"%s\": %.2f, ", extra_key, extra_val);
        const bool last = i + 1 == points.size();
        std::fprintf(f,
                     "\"depth\": %" PRIu64 ", \"kops\": %.1f, "
                     "\"ns_per_op\": %.1f, \"speedup\": %.2f, "
                     "\"doorbells\": %" PRIu64 ", \"reads\": %" PRIu64
                     ", \"rounds\": %" PRIu64 ", \"batched_reads\": %"
                     PRIu64 ", \"overlap\": %.2f, \"max_in_flight\": %"
                     PRIu64 ", \"batched_appends\": %" PRIu64
                     ", \"coalesced_fences\": %" PRIu64
                     ", \"dep_stalls\": %" PRIu64 "}%s\n",
                     p.depth, p.kops, p.ns_per_op,
                     p.ns_per_op > 0 ? base / p.ns_per_op : 0.0,
                     p.doorbells, p.reads, p.pipe.rounds,
                     p.pipe.batched_reads, p.pipe.overlap(),
                     p.pipe.max_in_flight, p.pipe.batched_appends,
                     p.pipe.coalesced_fences, p.pipe.dep_stalls,
                     last ? (trailing_comma ? "," : "") : ",");
    }
}

/**
 * Machine-readable companion of the printed tables: per-depth rows for
 * whichever sections ran (reads / write-ratio mix / stack fan-out).
 * Format documented in EXPERIMENTS.md.
 */
void
writeJson(const std::vector<DepthPoint> &reads,
          const std::vector<std::pair<double, std::vector<DepthPoint>>>
              &mixes,
          const std::vector<DepthPoint> &stack_points, const char *path)
{
    std::FILE *f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return;
    }
    std::fprintf(f, "{\n  \"bench\": \"ablation_pipeline\",\n"
                    "  \"params\": {\"preload\": %" PRIu64
                    ", \"ops\": %" PRIu64 ", \"batch\": %zu"
                    ", \"stacks\": %zu, \"tiny\": %s},\n"
                    "  \"rows\": [\n",
                 kPreload, kOps / 2, kBatch, kStacks,
                 benchTiny() ? "true" : "false");
    fprintDepthRows(f, reads, nullptr, 0.0);
    std::fprintf(f, "  ],\n  \"write_rows\": [\n");
    for (size_t m = 0; m < mixes.size(); ++m)
        fprintDepthRows(f, mixes[m].second, "write_ratio",
                        mixes[m].first,
                        /*trailing_comma=*/m + 1 != mixes.size());
    std::fprintf(f, "  ],\n  \"stack_rows\": [\n");
    fprintDepthRows(f, stack_points, nullptr, 0.0);
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", path);
}

void
run()
{
    if (benchTiny()) {
        kPreload = 1500;
        kOps = 400;
    }
    const char *sec = std::getenv("ASYMNVM_BENCH_PIPE_SECTION");
    const bool do_reads =
        sec == nullptr || std::strcmp(sec, "reads") == 0;
    const bool do_writes =
        sec == nullptr || std::strcmp(sec, "writes") == 0;
    const uint64_t depths[] = {1, 2, 4, 8, 16};
    char label[64];

    std::vector<DepthPoint> points;
    if (do_reads) {
        printHeader("Pipeline-depth ablation (BPT, cold cache, 100% "
                    "point lookups via findMany)",
                    "Depth       KOPS      ns/op    speedup  doorbells"
                    "      reads");
        for (uint64_t d : depths)
            points.push_back(runBptColdLookupAtDepth(d));
        const double base = points[0].ns_per_op;
        for (const DepthPoint &p : points)
            printDepthRow(p, base);

        std::printf("\nReactor profile per depth (depth 1 runs the "
                    "serial protocol — all zeros):\n");
        for (const DepthPoint &p : points) {
            std::snprintf(label, sizeof label, "depth %" PRIu64,
                          p.depth);
            printPipelineCounters(label, p.pipe);
        }

        std::printf(
            "\nExpected shape: ns/op drops as the window widens — "
            "each gather round retires\nreads for several in-flight "
            "descents, so the per-op RTT cost falls toward\n"
            "RTT/overlap — with diminishing returns once the window "
            "covers the tree's\nindependent descents (speedup "
            "saturates by depth 8-16).\n");
    }

    std::vector<std::pair<double, std::vector<DepthPoint>>> mixes;
    std::vector<DepthPoint> stack_points;
    if (do_writes) {
        const double ratios[] = {0.0, 0.5, 1.0};
        for (const double r : ratios) {
            std::snprintf(label, sizeof label,
                          "Write-ratio sweep (BPT, %.0f%% insertAsync "
                          "per window)",
                          100.0 * r);
            printHeader(label,
                        "Depth       KOPS      ns/op    speedup  "
                        "doorbells      reads");
            std::vector<DepthPoint> row;
            for (uint64_t d : depths)
                row.push_back(runBptMixedAtDepth(d, r));
            const double base = row[0].ns_per_op;
            for (const DepthPoint &p : row)
                printDepthRow(p, base);
            for (const DepthPoint &p : row) {
                std::snprintf(label, sizeof label, "depth %" PRIu64,
                              p.depth);
                printPipelineCounters(label, p.pipe);
            }
            mixes.emplace_back(r, std::move(row));
        }

        printHeader("Write-heavy fan-out (8 Stack RCB pop chains, one "
                    "pop per stack per window)",
                    "Depth       KOPS      ns/op    speedup  doorbells"
                    "      reads");
        for (uint64_t d : depths)
            stack_points.push_back(runStackPopFanoutAtDepth(d));
        const double base = stack_points[0].ns_per_op;
        for (const DepthPoint &p : stack_points)
            printDepthRow(p, base);
        for (const DepthPoint &p : stack_points) {
            std::snprintf(label, sizeof label, "depth %" PRIu64,
                          p.depth);
            printPipelineCounters(label, p.pipe);
        }
        std::printf(
            "\nExpected shape: write windows keep the read-side "
            "overlap (descents gather)\nand add log-side wins — "
            "appends ride one WQE chain per round, fences\ncoalesce "
            "to the drain — so the 100%%-write column scales with "
            "depth too.\nThe stack cell turns eight dependent pop "
            "chains into lockstep gather\nrounds: >= 1.3x at depth 8 "
            "with doorbells well below the depth-1 count.\n");
    }

    writeJson(points, mixes, stack_points,
              "BENCH_ablation_pipeline.json");
}

} // namespace
} // namespace asymnvm::bench

int
main()
{
    asymnvm::bench::run();
    return 0;
}
