/**
 * @file
 * Pipeline-depth ablation (DESIGN.md §11): cold-cache B+tree point
 * lookups issued through the coroutine-pipelined batch API
 * (BpTree::findMany) with `pipeline_depth` swept 1 → 16. Depth 1 runs
 * the serial protocol bit-for-bit (the reactor never engages); deeper
 * windows keep that many descents in flight and multiplex their remote
 * reads onto shared doorbell-batched gather rounds, amortizing the RDMA
 * RTT across in-flight ops.
 *
 * Same cold-cache setup as the Figure 7 prefetch ablation: cache sized
 * to 25% of the data and dropped after the preload, 100% gets, Zipf
 * theta 0.9 over unhashed (range-local) keys.
 */

#include "bench_common.h"

namespace asymnvm::bench {
namespace {

// Full-size parameters reproduce the paper-scale shape;
// ASYMNVM_BENCH_TINY shrinks them so the bench_smoke_pipeline ctest
// target exercises the reactor plumbing in seconds.
uint64_t kPreload = 30000;
uint64_t kOps = 8000;

/** Keys handed to one findMany call (the application batch size). */
constexpr size_t kBatch = 32;

uint64_t session_counter = 7000;

/** Outcome of one depth point of the sweep. */
struct DepthPoint
{
    uint64_t depth = 0;
    double ns_per_op = -1;
    double kops = 0;
    uint64_t doorbells = 0;
    uint64_t reads = 0;
    PipelineStats pipe;
};

/**
 * Cold-cache B+tree lookups at one pipeline depth. Every run replays
 * the same Zipf key stream through the same batch boundaries, so the
 * only variable across depth points is how many descents overlap.
 */
DepthPoint
runBptColdLookupAtDepth(uint64_t depth)
{
    DepthPoint out;
    out.depth = depth;
    BackendNode be(1, benchBackendConfig());
    SessionConfig cfg = sessionFor(Mode::RC, ++session_counter,
                                   cacheBytesFor<BpTree>(0.25, kPreload));
    cfg.pipeline_depth = static_cast<uint32_t>(depth);
    FrontendSession s(cfg);
    if (!ok(s.connect(&be)))
        return out;
    BpTree ds;
    if (!ok(BpTree::create(s, 1, "c", &ds)))
        return out;
    WorkloadConfig wcfg;
    wcfg.key_space = kPreload;
    wcfg.seed = 42;
    wcfg.hashed_keys = false;
    preloadKeys(s, ds, wcfg, kPreload);
    s.cache().clear(); // start cold: every lookup descends remote
    s.resetStats();
    WorkloadConfig mcfg = wcfg;
    mcfg.put_ratio = 0.0;
    mcfg.dist = KeyDist::Zipf;
    mcfg.zipf_theta = 0.9;
    mcfg.seed = 99;
    Workload w(mcfg);
    const uint64_t nops = kOps / 2;
    std::vector<Key> keys(nops);
    for (uint64_t i = 0; i < nops; ++i)
        keys[i] = w.next().key;
    std::vector<Value> vals(kBatch);
    std::vector<Status> results(kBatch);
    const uint64_t t0 = s.clock().now();
    for (size_t base = 0; base < keys.size(); base += kBatch) {
        const size_t n = std::min(kBatch, keys.size() - base);
        (void)ds.findMany({keys.data() + base, n}, vals.data(),
                          results.data());
    }
    const uint64_t dt = s.clock().now() - t0;
    const SessionStats st = s.stats();
    out.ns_per_op = static_cast<double>(dt) / static_cast<double>(nops);
    out.kops = Throughput{nops, dt}.kops();
    out.doorbells = st.verbs.doorbells;
    out.reads = st.verbs.reads;
    out.pipe = st.pipeline;
    return out;
}

/**
 * Machine-readable companion of the printed table: one row per depth
 * with throughput, latency, verb traffic and the reactor's pipeline
 * counters. Format documented in EXPERIMENTS.md.
 */
void
writeJson(const std::vector<DepthPoint> &points, const char *path)
{
    std::FILE *f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return;
    }
    std::fprintf(f, "{\n  \"bench\": \"ablation_pipeline\",\n"
                    "  \"structure\": \"BPT\",\n"
                    "  \"workload\": \"cold-cache point lookups\",\n"
                    "  \"params\": {\"preload\": %" PRIu64
                    ", \"ops\": %" PRIu64 ", \"batch\": %zu"
                    ", \"tiny\": %s},\n  \"rows\": [\n",
                 kPreload, kOps / 2, kBatch,
                 benchTiny() ? "true" : "false");
    const double base = points.empty() ? 0.0 : points[0].ns_per_op;
    for (size_t i = 0; i < points.size(); ++i) {
        const DepthPoint &p = points[i];
        std::fprintf(f,
                     "    {\"depth\": %" PRIu64 ", \"kops\": %.1f, "
                     "\"ns_per_op\": %.1f, \"speedup\": %.2f, "
                     "\"doorbells\": %" PRIu64 ", \"reads\": %" PRIu64
                     ", \"rounds\": %" PRIu64 ", \"batched_reads\": %"
                     PRIu64 ", \"overlap\": %.2f, \"max_in_flight\": %"
                     PRIu64 "}%s\n",
                     p.depth, p.kops, p.ns_per_op,
                     p.ns_per_op > 0 ? base / p.ns_per_op : 0.0,
                     p.doorbells, p.reads, p.pipe.rounds,
                     p.pipe.batched_reads, p.pipe.overlap(),
                     p.pipe.max_in_flight,
                     i + 1 == points.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", path);
}

void
run()
{
    if (benchTiny()) {
        kPreload = 1500;
        kOps = 400;
    }
    printHeader("Pipeline-depth ablation (BPT, cold cache, 100% point "
                "lookups via findMany)",
                "Depth       KOPS      ns/op    speedup  doorbells"
                "      reads");
    const uint64_t depths[] = {1, 2, 4, 8, 16};
    std::vector<DepthPoint> points;
    for (uint64_t d : depths)
        points.push_back(runBptColdLookupAtDepth(d));
    const double base = points[0].ns_per_op;
    for (const DepthPoint &p : points)
        std::printf("%5" PRIu64 "  %9.1f  %9.1f  %8.2fx  %9" PRIu64
                    "  %9" PRIu64 "\n",
                    p.depth, p.kops, p.ns_per_op,
                    p.ns_per_op > 0 ? base / p.ns_per_op : 0.0,
                    p.doorbells, p.reads);

    std::printf("\nReactor profile per depth (depth 1 runs the serial "
                "protocol — all zeros):\n");
    char label[32];
    for (const DepthPoint &p : points) {
        std::snprintf(label, sizeof label, "depth %" PRIu64, p.depth);
        printPipelineCounters(label, p.pipe);
    }

    std::printf("\nExpected shape: ns/op drops as the window widens — "
                "each gather round retires\nreads for several in-flight "
                "descents, so the per-op RTT cost falls toward\n"
                "RTT/overlap — with diminishing returns once the window "
                "covers the tree's\nindependent descents (speedup "
                "saturates by depth 8-16).\n");

    writeJson(points, "BENCH_ablation_pipeline.json");
}

} // namespace
} // namespace asymnvm::bench

int
main()
{
    asymnvm::bench::run();
    return 0;
}
