/**
 * @file
 * Figure 6 reproduction: throughput as a function of the batch size
 * (1..4096), for the lock-free structures (MV-BST, MV-BPT, SkipList —
 * Fig. 6a) and the lock-based ones (BST, BPT, TATP — Fig. 6b).
 *
 * The paper reports MV-BST improving 2.76x and MV-BPT 3.91x from batch 1
 * to 4096, with BST/BPT/SkipList gaining 131%/102%/88%: multi-version
 * path copying benefits most because coalescing compacts the repeated
 * root-path copies into single NVM writes.
 */

#include "bench_common.h"

#include "apps/tatp.h"

namespace asymnvm::bench {
namespace {

constexpr uint64_t kPreload = 30000;
constexpr uint64_t kOps = 8000;

uint64_t session_counter = 3000;

template <typename DS>
double
runAtBatch(uint32_t batch)
{
    BackendNode be(1, benchBackendConfig());
    FrontendSession s(sessionFor(Mode::RCB, ++session_counter,
                                 cacheBytesFor<DS>(0.10, kPreload + kOps),
                                 batch));
    if (!ok(s.connect(&be)))
        return -1;
    DS ds;
    if (!ok(DS::create(s, 1, "b", &ds)))
        return -1;
    WorkloadConfig wcfg;
    wcfg.key_space = kPreload;
    wcfg.seed = 42;
    preloadKeys(s, ds, wcfg, kPreload);
    s.resetStats();
    WorkloadConfig mcfg = wcfg;
    mcfg.seed = 99;
    Workload w(mcfg);
    const auto ops = w.generate(kOps);
    // Vector operations (Algorithm 3): the measured batch goes through
    // insertBatch, which sorts the keys and pins shared path reads.
    const uint64_t t0 = s.clock().now();
    std::vector<std::pair<Key, Value>> chunk;
    chunk.reserve(batch);
    for (const WorkItem &item : ops) {
        chunk.emplace_back(item.key, item.value);
        if (chunk.size() >= batch) {
            (void)ds.insertBatch(chunk);
            chunk.clear();
        }
    }
    if (!chunk.empty())
        (void)ds.insertBatch(chunk);
    (void)s.flushAll();
    return Throughput{ops.size(), s.clock().now() - t0}.kops();
}

double
runTatpAtBatch(uint32_t batch)
{
    BackendNode be(1, benchBackendConfig());
    FrontendSession s(sessionFor(Mode::RCB, ++session_counter,
                                 600ull << 10, batch));
    if (!ok(s.connect(&be)))
        return -1;
    Tatp tatp;
    if (!ok(Tatp::create(s, 1, 10000, &tatp)))
        return -1;
    s.resetStats();
    Rng rng(6);
    const uint64_t t0 = s.clock().now();
    const uint64_t n = kOps / 2;
    for (uint64_t i = 0; i < n; ++i)
        (void)tatp.runOne(rng);
    (void)s.flushAll();
    return Throughput{n, s.clock().now() - t0}.kops();
}

void
run()
{
    const uint32_t batches[] = {1, 4, 16, 64, 256, 1024, 4096};
    printHeader("Figure 6a: lock-free structures, throughput (KOPS) vs "
                "batch size",
                "Batch       MV-BST    MV-BPT  SkipList");
    for (uint32_t b : batches) {
        std::printf("%5u    %9.1f %9.1f %9.1f\n", b, runAtBatch<MvBst>(b),
                    runAtBatch<MvBpTree>(b), runAtBatch<SkipList>(b));
    }
    printHeader("Figure 6b: lock-based structures, throughput (KOPS) vs "
                "batch size",
                "Batch          BST       BPT      TATP");
    for (uint32_t b : batches) {
        std::printf("%5u    %9.1f %9.1f %9.1f\n", b, runAtBatch<Bst>(b),
                    runAtBatch<BpTree>(b), runTatpAtBatch(b));
    }
    std::printf("\nPaper (Fig. 6) reference shape: monotonic growth with "
                "batch size;\nMV-BST ~2.8x and MV-BPT ~3.9x from 1 to "
                "4096; BST +131%%, BPT +102%%, SkipList +88%%.\n");
}

} // namespace
} // namespace asymnvm::bench

int
main()
{
    asymnvm::bench::run();
    return 0;
}
