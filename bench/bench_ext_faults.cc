/**
 * @file
 * Extension benchmark: throughput cost of transient-fault absorption.
 *
 * The paper evaluates on a healthy fabric; this extension asks what the
 * retry/backoff machinery (DESIGN.md §7) costs when the fabric is not.
 * It sweeps the per-verb completion-loss probability from 0 to 1% (RoCE
 * deployments observe loss well below 1e-3; 1e-2 is a pathological
 * fabric) and reports the virtual-time KOPS plus the retry counters for
 * each point, for both a drop storm alone and drops combined with QP
 * errors. The expected shape: throughput degrades smoothly with the
 * injected rate — the jittered-backoff retries absorb every fault
 * without an availability cliff — and the retry profile accounts for
 * exactly where the lost time went.
 */

#include "bench_common.h"

namespace asymnvm::bench {
namespace {

uint64_t kPreload = 20000;
uint64_t kOps = 8000;

uint64_t session_counter = 21000;

struct FaultPoint
{
    double kops = -1;
    RetryStats retry;
};

FaultPoint
runBpt(Mode mode, const FaultConfig &fc)
{
    BackendNode be(1, benchBackendConfig());
    FrontendSession s(sessionFor(mode, ++session_counter,
                                 cacheBytesFor<BpTree>(0.10, kPreload),
                                 1024));
    FaultPoint out;
    if (!ok(s.connect(&be)))
        return out;
    BpTree tree;
    if (!ok(BpTree::create(s, 1, "faults", &tree)))
        return out;
    WorkloadConfig wcfg;
    wcfg.key_space = kPreload;
    wcfg.seed = 42;
    preloadKeys(s, tree, wcfg, kPreload);
    s.resetStats();
    // Faults start with the measurement phase: the preload runs clean so
    // every point degrades the same committed working set.
    be.faults().configure(fc, /*seed=*/1337);
    WorkloadConfig mcfg = wcfg;
    mcfg.put_ratio = 0.5;
    mcfg.seed = 99;
    Workload w(mcfg);
    out.kops = runKvWorkload(s, tree, w.generate(kOps)).kops();
    out.retry = s.stats().retry;
    return out;
}

void
run()
{
    if (benchTiny()) {
        kPreload = 2000;
        kOps = 600;
    }
    const double rates[] = {0.0, 1e-4, 1e-3, 1e-2};
    for (const bool with_qp : {false, true}) {
        printHeader(with_qp
                        ? "Extension: drop-rate sweep + QP errors at "
                          "drop/10 (BPT, 50% put, RCB vs Naive)"
                        : "Extension: completion drop-rate sweep "
                          "(BPT, 50% put, RCB vs Naive)",
                    "drop_rate   AsymNVM-RCB   AsymNVM-Naive   "
                    "RCB/clean");
        double clean_rcb = -1;
        std::vector<std::pair<double, FaultPoint>> profile_rows;
        for (double rate : rates) {
            FaultConfig fc;
            fc.drop_rate = rate;
            if (with_qp)
                fc.qp_error_rate = rate / 10.0;
            const FaultPoint rcb = runBpt(Mode::RCB, fc);
            const FaultPoint naive = runBpt(Mode::Naive, fc);
            if (rate == 0.0)
                clean_rcb = rcb.kops;
            std::printf("%9.0e %13.1f %15.1f %11.2f\n", rate, rcb.kops,
                        naive.kops,
                        clean_rcb > 0 ? rcb.kops / clean_rcb : 1.0);
            profile_rows.emplace_back(rate, rcb);
        }
        std::printf("\nRetry profile of the RCB rows:\n");
        for (const auto &[rate, p] : profile_rows) {
            char label[32];
            std::snprintf(label, sizeof(label), "drop %g", rate);
            printRetryCounters(label, p.retry);
        }
    }
    std::printf("\nReference shape: no availability cliff — every point"
                "\ncompletes all operations; KOPS falls roughly with the"
                "\ninjected timeout+backoff time, and the retry counters"
                "\naccount for the difference.\n");
}

} // namespace
} // namespace asymnvm::bench

int
main()
{
    asymnvm::bench::run();
    return 0;
}
