/**
 * @file
 * Extension benchmark: throughput cost of transient-fault absorption.
 *
 * The paper evaluates on a healthy fabric; this extension asks what the
 * retry/backoff machinery (DESIGN.md §7) costs when the fabric is not.
 * It sweeps the per-verb completion-loss probability from 0 to 1% (RoCE
 * deployments observe loss well below 1e-3; 1e-2 is a pathological
 * fabric) and reports the virtual-time KOPS plus the retry counters for
 * each point, for both a drop storm alone and drops combined with QP
 * errors. The expected shape: throughput degrades smoothly with the
 * injected rate — the jittered-backoff retries absorb every fault
 * without an availability cliff — and the retry profile accounts for
 * exactly where the lost time went.
 */

#include <algorithm>

#include "bench_common.h"
#include "cluster/cluster.h"
#include "ds/hash_table.h"

namespace asymnvm::bench {
namespace {

uint64_t kPreload = 20000;
uint64_t kOps = 8000;

// Multi-session sweep sizing (per session, so the aggregate work grows
// with the fleet but each session's structure stays small).
uint64_t kMsPreload = 400;
uint64_t kMsOpsPerSession = 1200;

uint64_t session_counter = 21000;

struct FaultPoint
{
    double kops = -1;
    RetryStats retry;
};

FaultPoint
runBpt(Mode mode, const FaultConfig &fc)
{
    BackendNode be(1, benchBackendConfig());
    FrontendSession s(sessionFor(mode, ++session_counter,
                                 cacheBytesFor<BpTree>(0.10, kPreload),
                                 1024));
    FaultPoint out;
    if (!ok(s.connect(&be)))
        return out;
    BpTree tree;
    if (!ok(BpTree::create(s, 1, "faults", &tree)))
        return out;
    WorkloadConfig wcfg;
    wcfg.key_space = kPreload;
    wcfg.seed = 42;
    preloadKeys(s, tree, wcfg, kPreload);
    s.resetStats();
    // Faults start with the measurement phase: the preload runs clean so
    // every point degrades the same committed working set.
    be.faults().configure(fc, /*seed=*/1337);
    WorkloadConfig mcfg = wcfg;
    mcfg.put_ratio = 0.5;
    mcfg.seed = 99;
    Workload w(mcfg);
    out.kops = runKvWorkload(s, tree, w.generate(kOps)).kops();
    out.retry = s.stats().retry;
    return out;
}

/** One point of the session-count sweep under a mid-run promotion. */
struct MsPoint
{
    uint32_t sessions = 0;
    double agg_kops = -1;       //!< total ops / max per-session vtime
    double mean_stall_us = 0;   //!< mean per-session failover wait
    double max_stall_us = 0;    //!< worst per-session failover wait
    uint64_t promotions = 0;
    uint64_t promo_won = 0;
    uint64_t promo_lost = 0;
    uint64_t stale_fenced = 0;
    RetryStats retry;           //!< summed across sessions
};

/**
 * k sessions hammer one back-end; halfway through, the back-end is
 * condemned (permanent failure, Section 7.2 Case 4) and every session
 * rides through the epoch-fenced mirror promotion transparently —
 * exactly one of them wins the claim. Virtual time runs per session, so
 * the aggregate rate divides total ops by the *slowest* session's
 * elapsed virtual time (the fleet is done when its laggard is).
 */
MsPoint
runMultiSession(uint32_t nsessions)
{
    MsPoint out;
    out.sessions = nsessions;

    ClusterConfig ccfg;
    ccfg.num_backends = 1;
    ccfg.mirrors_per_backend = 2;
    ccfg.backend.nvm_size = (32ull << 20) + nsessions * (2ull << 20);
    ccfg.backend.max_frontends = std::max(8u, nsessions);
    ccfg.backend.max_names = std::max(16u, nsessions + 8);
    ccfg.backend.memlog_ring_size = 256ull << 10;
    ccfg.backend.oplog_ring_size = 256ull << 10;
    ccfg.transparent_failover = true;
    Cluster cluster(ccfg);

    struct Lane
    {
        std::unique_ptr<FrontendSession> s;
        HashTable ht;
        Workload w{WorkloadConfig{}};
        uint64_t t0 = 0;
    };
    std::vector<Lane> lanes(nsessions);
    for (uint32_t j = 0; j < nsessions; ++j) {
        Lane &ln = lanes[j];
        ln.s = cluster.makeSession(
            SessionConfig::rcb(1, 256ull << 10, 64));
        if (ln.s == nullptr)
            return out;
        if (!ok(HashTable::create(*ln.s, 1,
                                  "ms_" + std::to_string(j), 64,
                                  &ln.ht)))
            return out;
        WorkloadConfig wcfg;
        wcfg.key_space = kMsPreload;
        wcfg.seed = 42 + j;
        preloadKeys(*ln.s, ln.ht, wcfg, kMsPreload);
        WorkloadConfig mcfg = wcfg;
        mcfg.put_ratio = 0.5;
        mcfg.seed = 99 + j;
        ln.w = Workload(mcfg);
        ln.s->resetStats();
        ln.t0 = ln.s->clock().now();
    }

    auto renewAll = [&](bool primary) {
        uint64_t mx = 0;
        for (Lane &ln : lanes)
            mx = std::max(mx, ln.s->clock().now());
        if (primary)
            cluster.keepAlive().renew(1, mx);
        for (MirrorNode *m : cluster.mirrorsOf(1))
            cluster.keepAlive().renew(m->id(), mx);
        return mx;
    };

    const uint64_t total_ops = kMsOpsPerSession * nsessions;
    const uint64_t fail_at = total_ops / 2;
    bool condemned = false;
    for (uint64_t i = 0; i < total_ops; ++i) {
        renewAll(/*primary=*/!condemned);
        if (i == fail_at) {
            cluster.condemnBackend(1);
            condemned = true;
            // Detection delay: jump every clock past the lease so the
            // next op of each session finds the group's verdict in,
            // keeping the surviving mirrors renewed along the way.
            const uint64_t lease = cluster.keepAlive().leaseNs();
            for (int step = 0; step < 3; ++step) {
                for (uint32_t j = 0; j < nsessions; ++j)
                    lanes[j].s->clock().advance(lease / 2 + j * 1000);
                renewAll(false);
            }
        }
        Lane &ln = lanes[i % nsessions];
        const WorkItem item = ln.w.next();
        if (item.op == WorkOp::Put)
            (void)ln.ht.put(item.key, item.value);
        else {
            Value v;
            (void)ln.ht.get(item.key, &v);
        }
    }
    for (Lane &ln : lanes)
        (void)ln.s->flushAll();

    uint64_t max_dt = 0;
    double stall_sum = 0;
    for (Lane &ln : lanes) {
        max_dt = std::max(max_dt, ln.s->clock().now() - ln.t0);
        const SessionStats st = ln.s->stats();
        out.retry.merge(st.retry);
        const double stall_us = st.retry.failover_wait_ns / 1000.0;
        stall_sum += stall_us;
        out.max_stall_us = std::max(out.max_stall_us, stall_us);
    }
    out.mean_stall_us = stall_sum / nsessions;
    out.agg_kops =
        Throughput{total_ops, max_dt}.kops();
    out.promotions = cluster.failoverEpochs().history().size();
    out.promo_won = out.retry.promotions_won;
    out.promo_lost = out.retry.promotions_lost;
    out.stale_fenced = out.retry.stale_epoch_fenced;
    return out;
}

void
writeMultiSessionJson(const std::vector<MsPoint> &points,
                      const char *path)
{
    std::FILE *f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return;
    }
    std::fprintf(f, "{\n  \"bench\": \"ext_faults_multisession\",\n"
                    "  \"unit\": \"kops\",\n  \"points\": [\n");
    for (size_t i = 0; i < points.size(); ++i) {
        const MsPoint &p = points[i];
        std::fprintf(
            f,
            "    {\"sessions\": %u, \"agg_kops\": %.1f, "
            "\"mean_stall_us\": %.1f, \"max_stall_us\": %.1f, "
            "\"promotions\": %" PRIu64 ", \"promo_won\": %" PRIu64 ", "
            "\"promo_lost\": %" PRIu64 ", \"stale_fenced\": %" PRIu64
            "}%s\n",
            p.sessions, p.agg_kops, p.mean_stall_us, p.max_stall_us,
            p.promotions, p.promo_won, p.promo_lost, p.stale_fenced,
            i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

void
runMultiSessionSweep()
{
    std::vector<uint32_t> fleet = {1, 2, 4, 8, 16, 32, 64};
    if (benchTiny())
        fleet = {1, 2, 4, 8};
    printHeader("Extension: session-count sweep across one mid-run "
                "promotion (HT, 50% put, RCB)",
                "sessions   agg KOPS   mean-stall(us)   max-stall(us)"
                "   promotions   won/lost/fenced");
    std::vector<MsPoint> points;
    for (const uint32_t k : fleet) {
        const MsPoint p = runMultiSession(k);
        std::printf("%8u %10.1f %16.1f %15.1f %12" PRIu64
                    " %6" PRIu64 "/%" PRIu64 "/%" PRIu64 "\n",
                    p.sessions, p.agg_kops, p.mean_stall_us,
                    p.max_stall_us, p.promotions, p.promo_won,
                    p.promo_lost, p.stale_fenced);
        points.push_back(p);
    }
    std::printf("\nRetry profile of the sweep rows:\n");
    for (const MsPoint &p : points) {
        char label[32];
        std::snprintf(label, sizeof(label), "k=%u", p.sessions);
        printRetryCounters(label, p.retry);
    }
    std::printf("\nReference shape: exactly one promotion per point, one"
                "\nwinner; losers and late sessions re-resolve via the"
                "\nepoch fence. The failover stall is one lease wait and"
                "\ndoes not grow with the session count; aggregate KOPS"
                "\nis flat-ish (virtual clocks advance per session).\n");
    writeMultiSessionJson(points, "BENCH_ext_faults_multisession.json");
}

void
run()
{
    if (benchTiny()) {
        kPreload = 2000;
        kOps = 600;
        kMsPreload = 120;
        kMsOpsPerSession = 300;
    }
    const double rates[] = {0.0, 1e-4, 1e-3, 1e-2};
    for (const bool with_qp : {false, true}) {
        printHeader(with_qp
                        ? "Extension: drop-rate sweep + QP errors at "
                          "drop/10 (BPT, 50% put, RCB vs Naive)"
                        : "Extension: completion drop-rate sweep "
                          "(BPT, 50% put, RCB vs Naive)",
                    "drop_rate   AsymNVM-RCB   AsymNVM-Naive   "
                    "RCB/clean");
        double clean_rcb = -1;
        std::vector<std::pair<double, FaultPoint>> profile_rows;
        for (double rate : rates) {
            FaultConfig fc;
            fc.drop_rate = rate;
            if (with_qp)
                fc.qp_error_rate = rate / 10.0;
            const FaultPoint rcb = runBpt(Mode::RCB, fc);
            const FaultPoint naive = runBpt(Mode::Naive, fc);
            if (rate == 0.0)
                clean_rcb = rcb.kops;
            std::printf("%9.0e %13.1f %15.1f %11.2f\n", rate, rcb.kops,
                        naive.kops,
                        clean_rcb > 0 ? rcb.kops / clean_rcb : 1.0);
            profile_rows.emplace_back(rate, rcb);
        }
        std::printf("\nRetry profile of the RCB rows:\n");
        for (const auto &[rate, p] : profile_rows) {
            char label[32];
            std::snprintf(label, sizeof(label), "drop %g", rate);
            printRetryCounters(label, p.retry);
        }
    }
    std::printf("\nReference shape: no availability cliff — every point"
                "\ncompletes all operations; KOPS falls roughly with the"
                "\ninjected timeout+backoff time, and the retry counters"
                "\naccount for the difference.\n");

    runMultiSessionSweep();
}

} // namespace
} // namespace asymnvm::bench

int
main()
{
    asymnvm::bench::run();
    return 0;
}
