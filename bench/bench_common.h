#ifndef ASYMNVM_BENCH_BENCH_COMMON_H_
#define ASYMNVM_BENCH_BENCH_COMMON_H_

/**
 * @file
 * Shared scaffolding for the table/figure reproduction benchmarks.
 *
 * Throughput is measured against *virtual time* (see DESIGN.md §2): the
 * per-session SimClock accumulates the modeled cost of every NVM access,
 * RDMA verb and CPU step, so `ops / virtual seconds` reproduces the
 * paper's performance shape deterministically. Because of that, the
 * google-benchmark wall-clock loop is not the measurement instrument
 * here; each binary is a self-contained harness that prints the same
 * rows/series the paper's table or figure reports.
 */

#include <cinttypes>
#include <cstdlib>
#include <thread>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "backend/backend_node.h"
#include "common/stats.h"
#include "ds/bptree.h"
#include "ds/bst.h"
#include "ds/hash_table.h"
#include "ds/mv_bptree.h"
#include "ds/mv_bst.h"
#include "ds/queue.h"
#include "ds/skiplist.h"
#include "ds/stack.h"
#include "frontend/session.h"
#include "workload/workload.h"

namespace asymnvm::bench {

/** The system variants of Table 3. */
enum class Mode
{
    Symmetric,
    SymmetricB,
    Naive,
    R,
    RC,
    RCB,
};

inline const char *
modeName(Mode m)
{
    switch (m) {
      case Mode::Symmetric: return "Symmetric";
      case Mode::SymmetricB: return "Symmetric-B";
      case Mode::Naive: return "AsymNVM-Naive";
      case Mode::R: return "AsymNVM-R";
      case Mode::RC: return "AsymNVM-RC";
      case Mode::RCB: return "AsymNVM-RCB";
    }
    return "?";
}

/** Default back-end sizing used by the benchmarks. */
inline BackendConfig
benchBackendConfig(uint64_t nvm_mb = 128, uint32_t max_frontends = 8)
{
    BackendConfig cfg;
    cfg.nvm_size = nvm_mb << 20;
    cfg.max_frontends = max_frontends;
    cfg.max_names = 64;
    cfg.memlog_ring_size = 4ull << 20;
    cfg.oplog_ring_size = 2ull << 20;
    return cfg;
}

/**
 * Session configuration for a mode. @p cache_bytes applies to the C/B
 * variants (Table 3 runs with 10% of the NVM size); @p batch to B.
 */
inline SessionConfig
sessionFor(Mode mode, uint64_t id, uint64_t cache_bytes = 12ull << 20,
           uint32_t batch = 1024)
{
    switch (mode) {
      case Mode::Symmetric:
        return SessionConfig::symmetricBase(id, false);
      case Mode::SymmetricB:
        return SessionConfig::symmetricBase(id, true);
      case Mode::Naive:
        return SessionConfig::naive(id);
      case Mode::R:
        return SessionConfig::r(id);
      case Mode::RC:
        return SessionConfig::rc(id, cache_bytes);
      case Mode::RCB:
        return SessionConfig::rcb(id, cache_bytes, batch);
    }
    return SessionConfig::naive(id);
}

/**
 * Approximate NVM footprint per key of each structure, used to size the
 * front-end cache at a *fraction of the data set* (the paper's "caching
 * 10% NVM size" with terabyte-class data; at simulation scale the cache
 * must scale with the structure or it would trivially hold everything).
 */
template <typename DS>
constexpr uint64_t
bytesPerKey()
{
    if constexpr (std::is_same_v<DS, SkipList>)
        return 208;
    else if constexpr (std::is_same_v<DS, BpTree> ||
                       std::is_same_v<DS, MvBpTree>)
        return 100; // ~528B node / 16 keys + 64B value cell + slack
    else
        return 88; // BST/MV-BST nodes, hash-table chain nodes
}

/** Cache capacity for @p pct (0..1) of an @p nkeys data set. */
template <typename DS>
uint64_t
cacheBytesFor(double pct, uint64_t nkeys)
{
    const double bytes = pct * static_cast<double>(nkeys) *
                         static_cast<double>(bytesPerKey<DS>());
    return std::max<uint64_t>(static_cast<uint64_t>(bytes), 16 << 10);
}

/** Keyed-structure driver: put/get via whichever interface the DS has. */
template <typename DS>
Status
dsPut(DS &ds, Key key, const Value &v)
{
    if constexpr (requires { ds.put(key, v); })
        return ds.put(key, v);
    else
        return ds.insert(key, v);
}

template <typename DS>
Status
dsGet(DS &ds, Key key, Value *out)
{
    if constexpr (requires { ds.get(key, out); })
        return ds.get(key, out);
    else
        return ds.find(key, out);
}

/**
 * Run a pre-generated workload against a keyed structure.
 *
 * @p interleave yields the host thread after every operation so that
 * concurrent sessions interleave at operation granularity — on a host
 * with few cores, timeslice-granularity scheduling would otherwise let
 * each session run alone and hide the shared-NIC contention the
 * multi-front-end figures measure.
 */
template <typename DS>
Throughput
runKvWorkload(FrontendSession &s, DS &ds,
              const std::vector<WorkItem> &ops, bool interleave = false)
{
    const uint64_t t0 = s.clock().now();
    for (const WorkItem &item : ops) {
        if (item.op == WorkOp::Put) {
            (void)dsPut(ds, item.key, item.value);
        } else {
            Value v;
            (void)dsGet(ds, item.key, &v);
        }
        if (interleave)
            std::this_thread::yield();
    }
    (void)s.flushAll();
    return Throughput{ops.size(), s.clock().now() - t0};
}

/** Preload a keyed structure with the workload's key space. */
template <typename DS>
void
preloadKeys(FrontendSession &s, DS &ds, const WorkloadConfig &wcfg,
            uint64_t n)
{
    WorkloadConfig load_cfg = wcfg;
    load_cfg.put_ratio = 1.0;
    load_cfg.dist = KeyDist::Uniform; // cover the space evenly
    Workload loader(load_cfg);
    for (uint64_t i = 0; i < n; ++i) {
        const WorkItem item = loader.next();
        (void)dsPut(ds, item.key, item.value);
    }
    (void)s.flushAll();
}

/** Print a table header. */
inline void
printHeader(const std::string &title, const std::string &columns)
{
    std::printf("\n=== %s ===\n%s\n", title.c_str(), columns.c_str());
}

/**
 * One line of the per-verb traffic profile (reads/writes/posted/atomics
 * with byte volumes, plus WQE and doorbell counts). The doorbell column
 * is the one the coalescing work optimizes: batched modes should show
 * doorbells far below the posted-verb count.
 */
inline void
printVerbCounters(const char *label, const VerbCounters &c)
{
    std::printf("%-14s reads %8" PRIu64 " (%6.1f KB)  writes %8" PRIu64
                " (%6.1f KB)  posted %8" PRIu64 " (%6.1f KB)  atomics %6" PRIu64
                "  wqes %8" PRIu64 "  doorbells %8" PRIu64 "\n",
                label, c.reads, c.read_bytes / 1024.0, c.writes,
                c.write_bytes / 1024.0, c.posted, c.posted_bytes / 1024.0,
                c.atomics, c.wqes, c.doorbells);
}

/**
 * One line of the retry/failover profile that accompanies the verb
 * counters: how much transient-fault absorption (re-issued verbs,
 * timeouts, QP resets, backoff time) and failover work a run performed.
 * A fault-free run prints all zeros — any other value on a clean
 * configuration is a silent retry storm worth investigating.
 */
inline void
printRetryCounters(const char *label, const RetryStats &r,
                   const OptimisticReadStats *reads = nullptr)
{
    std::printf("%-14s retries %6" PRIu64 " (r %4" PRIu64 " w %4" PRIu64
                " p %4" PRIu64 " a %4" PRIu64 ")  timeouts %5" PRIu64
                "  qp-resets %3" PRIu64 "  backoff %7.1f us  resends %4"
                PRIu64 "  failovers %2" PRIu64,
                label, r.totalRetries(), r.retries_read, r.retries_write,
                r.retries_posted, r.retries_atomic, r.timeouts,
                r.qp_resets, r.backoff_ns / 1000.0, r.rpc_resends,
                r.failovers);
    if (r.promotions_won + r.promotions_lost + r.stale_epoch_fenced > 0)
        // Multi-session failover only: how this session fared in the
        // promotion races (epoch-claim CAS) and how often the epoch
        // fence forced it to re-resolve a condemned back-end.
        std::printf("  promo-won %2" PRIu64 "  promo-lost %3" PRIu64
                    "  stale-fenced %3" PRIu64,
                    r.promotions_won, r.promotions_lost,
                    r.stale_epoch_fenced);
    if (reads != nullptr)
        // §6.3 failed-read ratio: optimistic-read attempts invalidated by
        // a concurrent writer and re-run. 0/0 on unshared runs.
        std::printf("  failed-reads %" PRIu64 "/%" PRIu64 " (%.2f%%)",
                    reads->retries, reads->attempts,
                    100.0 * reads->failRatio());
    std::printf("\n");
}

/**
 * One line of the pipelined-execution profile: configured depth, ops run
 * through the reactor, gather rounds and the demanded reads they served
 * (overlap = reads per round — the RTT amortization factor), stall
 * rounds (<= 1 read pending), peak in-flight ops, and commit fences
 * coalesced to window drains. Write-pipelining adds op-log appends that
 * rode a batched WQE chain instead of a solo fenced write, per-op
 * commit fences absorbed into the drain flushAll, and dependency
 * stalls (same-key ordering waits + read-set validation restarts).
 * All zeros on a non-pipelined run.
 */
inline void
printPipelineCounters(const char *label, const PipelineStats &p)
{
    std::printf("%-14s depth %2" PRIu64 "  ops %8" PRIu64 "  rounds %7"
                PRIu64 "  batched-reads %8" PRIu64 " (overlap %.2f)"
                "  stalls %6" PRIu64 "  max-in-flight %2" PRIu64
                "  coalesced-commits %5" PRIu64 "\n",
                label, p.depth, p.ops, p.rounds, p.batched_reads,
                p.overlap(), p.solo_rounds, p.max_in_flight,
                p.deferred_commits);
    if (p.batched_appends + p.coalesced_fences + p.dep_stalls > 0)
        // Write-side profile: only printed when write ops actually ran
        // through a pipelined window.
        std::printf("%-14s   batched-appends %6" PRIu64
                    "  coalesced-fences %6" PRIu64
                    "  dep-stalls %6" PRIu64 "\n",
                    "", p.batched_appends, p.coalesced_fences,
                    p.dep_stalls);
}

/** True when ASYMNVM_BENCH_TINY requests smoke-test parameters. */
inline bool
benchTiny()
{
    const char *v = std::getenv("ASYMNVM_BENCH_TINY");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
}

} // namespace asymnvm::bench

#endif // ASYMNVM_BENCH_BENCH_COMMON_H_
