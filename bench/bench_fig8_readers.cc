/**
 * @file
 * Figure 8 reproduction: scalability with multiple reader front-ends.
 *
 * One writer session runs 100% inserts while 1..6 reader sessions run
 * 100% finds against the same structure, each on its own thread with its
 * own virtual clock, all sharing the back-end NIC. Figure 8a covers the
 * lock-free (multi-version) trees, Figure 8b the lock-based ones where
 * readers use the retry-based reader lock of Section 6.3; the paper
 * reports lock-free readers 2.0-2.8x faster, lock-based writer dropping
 * ~39% at 6 readers vs ~10% for MV, and 8-21% read retries.
 */

#include <atomic>
#include <thread>

#include "bench_common.h"

namespace asymnvm::bench {
namespace {

// Full-size parameters reproduce the paper's shape; ASYMNVM_BENCH_TINY
// shrinks them so the bench_smoke_fig8 ctest target exercises the shared
// reader/writer plumbing in seconds.
uint64_t kPreload = 20000;
uint64_t kWriterOps = 6000;
uint64_t kReaderOps = 6000;
constexpr uint32_t kMaxReaders = 6;

uint64_t session_counter = 5000;

struct RunResult
{
    double writer_kops;
    double reader_total_kops;
    double retry_ratio;
};

template <typename DS>
RunResult
runWithReaders(uint32_t nreaders, bool reader_prefetch = true)
{
    BackendNode be(1, benchBackendConfig());
    DsOptions shared;
    shared.shared = true;
    shared.max_read_retries = 256;

    // Writer populates first.
    FrontendSession writer(sessionFor(Mode::RCB, ++session_counter,
                                      cacheBytesFor<DS>(0.10, kPreload),
                                      64));
    if (!ok(writer.connect(&be)))
        return {-1, -1, 0};
    DS wds;
    if (!ok(DS::create(writer, 1, "shared", &wds, shared)))
        return {-1, -1, 0};
    WorkloadConfig wcfg;
    wcfg.key_space = kPreload;
    wcfg.seed = 42;
    preloadKeys(writer, wds, wcfg, kPreload);
    be.nic().resetStats();

    std::vector<std::unique_ptr<FrontendSession>> rsessions;
    std::vector<std::unique_ptr<DS>> rds;
    for (uint32_t r = 0; r < nreaders; ++r) {
        SessionConfig rconf =
            sessionFor(Mode::RC, ++session_counter,
                       cacheBytesFor<DS>(0.10, kPreload));
        rconf.read_prefetch = reader_prefetch;
        rsessions.push_back(std::make_unique<FrontendSession>(rconf));
        if (!ok(rsessions.back()->connect(&be)))
            return {-1, -1, 0};
        rds.push_back(std::make_unique<DS>());
        if (!ok(DS::open(*rsessions.back(), 1, "shared", rds.back().get(),
                         shared)))
            return {-1, -1, 0};
    }

    std::atomic<bool> go{false};
    std::vector<double> reader_kops(nreaders, 0);
    std::vector<double> retry_ratios(nreaders, 0);
    std::vector<std::thread> threads;
    for (uint32_t r = 0; r < nreaders; ++r) {
        threads.emplace_back([&, r] {
            while (!go.load())
                std::this_thread::yield();
            FrontendSession &s = *rsessions[r];
            DS &ds = *rds[r];
            WorkloadConfig rcfg;
            rcfg.key_space = kPreload;
            rcfg.seed = 100 + r;
            Workload w(rcfg);
            const uint64_t t0 = s.clock().now();
            for (uint64_t i = 0; i < kReaderOps; ++i) {
                Value v;
                (void)dsGet(ds, w.next().key, &v);
                std::this_thread::yield(); // op-granular interleaving
            }
            reader_kops[r] =
                Throughput{kReaderOps, s.clock().now() - t0}.kops();
            retry_ratios[r] = ds.readFailRatio();
        });
    }

    double writer_kops = 0;
    std::thread writer_thread([&] {
        while (!go.load())
            std::this_thread::yield();
        WorkloadConfig icfg;
        icfg.key_space = kPreload;
        icfg.seed = 7;
        Workload w(icfg);
        const uint64_t t0 = writer.clock().now();
        for (uint64_t i = 0; i < kWriterOps; ++i) {
            const WorkItem item = w.next();
            (void)dsPut(wds, item.key, item.value);
            std::this_thread::yield(); // op-granular interleaving
        }
        (void)writer.flushAll();
        writer_kops =
            Throughput{kWriterOps, writer.clock().now() - t0}.kops();
    });

    go.store(true);
    writer_thread.join();
    for (auto &t : threads)
        t.join();

    double total = 0, retries = 0;
    for (uint32_t r = 0; r < nreaders; ++r) {
        total += reader_kops[r];
        retries += retry_ratios[r];
    }
    return {writer_kops, total,
            nreaders == 0 ? 0 : retries / nreaders};
}

template <typename DS>
std::vector<RunResult>
series(const char *label)
{
    std::printf("%s\n", label);
    std::printf("Readers   Writer-KOPS  Readers-KOPS(total)  RetryRatio\n");
    std::vector<RunResult> rows;
    for (uint32_t n = 1; n <= kMaxReaders; ++n) {
        const RunResult r = runWithReaders<DS>(n);
        std::printf("%7u   %11.1f  %19.1f  %9.1f%%\n", n, r.writer_kops,
                    r.reader_total_kops, r.retry_ratio * 100);
        rows.push_back(r);
    }
    return rows;
}

/**
 * Machine-readable companion of the printed tables: one series per
 * structure plus the reader-prefetch ablation. Format documented in
 * EXPERIMENTS.md.
 */
void
writeJson(const std::vector<const char *> &names,
          const std::vector<std::vector<RunResult>> &series_rows,
          const std::vector<RunResult> &pf_on,
          const std::vector<RunResult> &pf_off, const char *path)
{
    std::FILE *f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return;
    }
    std::fprintf(f, "{\n  \"bench\": \"fig8_readers\",\n"
                    "  \"unit\": \"kops\",\n"
                    "  \"params\": {\"preload\": %" PRIu64
                    ", \"writer_ops\": %" PRIu64 ", \"reader_ops\": %" PRIu64
                    ", \"tiny\": %s},\n",
                 kPreload, kWriterOps, kReaderOps,
                 benchTiny() ? "true" : "false");
    std::fprintf(f, "  \"series\": [\n");
    for (size_t s = 0; s < names.size(); ++s) {
        std::fprintf(f, "    {\"structure\": \"%s\", \"rows\": [\n",
                     names[s]);
        for (size_t n = 0; n < series_rows[s].size(); ++n) {
            const RunResult &r = series_rows[s][n];
            std::fprintf(f,
                         "      {\"readers\": %zu, \"writer\": %.1f, "
                         "\"readers_total\": %.1f, \"retry_ratio\": "
                         "%.4f}%s\n",
                         n + 1, r.writer_kops, r.reader_total_kops,
                         r.retry_ratio,
                         n + 1 == series_rows[s].size() ? "" : ",");
        }
        std::fprintf(f, "    ]}%s\n",
                     s + 1 == names.size() ? "" : ",");
    }
    std::fprintf(f, "  ],\n  \"prefetch_ablation\": {\"structure\": "
                    "\"BPT\", \"rows\": [\n");
    for (size_t n = 0; n < pf_on.size(); ++n) {
        std::fprintf(f,
                     "    {\"readers\": %zu, \"readers_total_on\": %.1f, "
                     "\"readers_total_off\": %.1f}%s\n",
                     n + 1, pf_on[n].reader_total_kops,
                     pf_off[n].reader_total_kops,
                     n + 1 == pf_on.size() ? "" : ",");
    }
    std::fprintf(f, "  ]}\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", path);
}

void
run()
{
    if (benchTiny()) {
        kPreload = 1200;
        kWriterOps = 300;
        kReaderOps = 300;
    }
    std::vector<const char *> names;
    std::vector<std::vector<RunResult>> series_rows;
    printHeader("Figure 8a: lock-free (multi-version) structures, "
                "1 writer + N readers",
                "");
    names.push_back("MV-BPT");
    series_rows.push_back(series<MvBpTree>("MV-BPT:"));
    names.push_back("MV-BST");
    series_rows.push_back(series<MvBst>("MV-BST:"));
    printHeader("Figure 8b: lock-based structures, 1 writer + N readers",
                "");
    names.push_back("BPT");
    series_rows.push_back(series<BpTree>("BPT:"));
    names.push_back("BST");
    series_rows.push_back(series<Bst>("BST:"));
    names.push_back("SkipList");
    series_rows.push_back(series<SkipList>("SkipList:"));
    std::printf(
        "\nPaper (Fig. 8) reference shape: reader throughput scales with"
        "\nreader count; lock-free readers outpace lock-based ~2.0-2.8x;"
        "\nlock-based writer degrades more with readers (-39%% at 6) than"
        "\nmulti-version (-10%%); lock-based retry ratio 8-21%%.\n");

    printHeader("Reader-prefetch ablation (BPT, 1 writer + N readers)",
                "Readers   Readers-KOPS(on)  Readers-KOPS(off)");
    std::vector<RunResult> pf_on, pf_off;
    for (uint32_t n = 1; n <= kMaxReaders; ++n) {
        pf_on.push_back(runWithReaders<BpTree>(n, true));
        pf_off.push_back(runWithReaders<BpTree>(n, false));
        std::printf("%7u   %16.1f  %17.1f\n", n,
                    pf_on.back().reader_total_kops,
                    pf_off.back().reader_total_kops);
    }
    std::printf("\nExpected shape: prefetch-on readers keep or extend "
                "their lead — sibling gathers\namortize doorbells even as "
                "writer invalidations discard some speculation.\n");

    writeJson(names, series_rows, pf_on, pf_off,
              "BENCH_fig8_readers.json");
}

} // namespace
} // namespace asymnvm::bench

int
main()
{
    asymnvm::bench::run();
    return 0;
}
