/**
 * @file
 * Figure 12 reproduction: throughput under uniform and skewed (Zipf 0.5,
 * 0.9, 0.99) YCSB-style workloads for the five index structures. The
 * paper's point: AsymNVM adapts well to skew — throughput stays
 * comparable (skew even helps the cache) all the way to theta = 0.99.
 */

#include "bench_common.h"

namespace asymnvm::bench {
namespace {

constexpr uint64_t kPreload = 30000;
constexpr uint64_t kOps = 8000;

uint64_t session_counter = 9000;

template <typename DS>
double
runAtSkew(KeyDist dist, double theta)
{
    BackendNode be(1, benchBackendConfig());
    FrontendSession s(sessionFor(Mode::RCB, ++session_counter,
                                 cacheBytesFor<DS>(0.10, kPreload), 64));
    if (!ok(s.connect(&be)))
        return -1;
    DS ds;
    if (!ok(DS::create(s, 1, "z", &ds)))
        return -1;
    WorkloadConfig wcfg;
    wcfg.key_space = kPreload;
    wcfg.seed = 42;
    preloadKeys(s, ds, wcfg, kPreload);
    s.resetStats();
    WorkloadConfig mcfg = wcfg;
    mcfg.put_ratio = 0.5;
    mcfg.dist = dist;
    mcfg.zipf_theta = theta;
    mcfg.seed = 99;
    Workload w(mcfg);
    const auto ops = w.generate(kOps);
    return runKvWorkload(s, ds, ops).kops();
}

void
run()
{
    struct Row
    {
        const char *label;
        KeyDist dist;
        double theta;
    };
    const Row rows[] = {{"Uniform", KeyDist::Uniform, 0},
                        {"Skewed(.5)", KeyDist::Zipf, 0.5},
                        {"Skewed(.9)", KeyDist::Zipf, 0.9},
                        {"Skewed(.99)", KeyDist::Zipf, 0.99}};
    printHeader("Figure 12: throughput (KOPS) under uniform vs Zipf "
                "workloads (50% put / 50% get)",
                "Workload          BPT       BST  SkipList    MV-BPT"
                "    MV-BST");
    for (const Row &row : rows) {
        std::printf("%-12s %9.1f %9.1f %9.1f %9.1f %9.1f\n", row.label,
                    runAtSkew<BpTree>(row.dist, row.theta),
                    runAtSkew<Bst>(row.dist, row.theta),
                    runAtSkew<SkipList>(row.dist, row.theta),
                    runAtSkew<MvBpTree>(row.dist, row.theta),
                    runAtSkew<MvBst>(row.dist, row.theta));
    }
    std::printf("\nPaper (Fig. 12) reference shape: stable (or slightly "
                "improving) throughput as skew\nincreases — hot keys "
                "concentrate in the front-end cache.\n");
}

} // namespace
} // namespace asymnvm::bench

int
main()
{
    asymnvm::bench::run();
    return 0;
}
