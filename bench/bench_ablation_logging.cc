/**
 * @file
 * Ablation of the logging-pipeline design choices DESIGN.md §5 calls
 * out, beyond the Naive/R/RC/RCB ladder of Table 3:
 *
 *  - op-ref memory logs (Figure 3's Flag byte) vs inline values:
 *    transaction wire bytes and throughput;
 *  - memory-log coalescing within a batch vs none: replayed entries and
 *    throughput (the "compacted to one NVM write" claim of Section 8.3);
 *  - posted (asynchronous) memory-log writes vs a synchronous
 *    rnvm_tx_write per operation: the decoupled-persistency claim of
 *    Section 4.2;
 *  - the pluggable log encodings (DESIGN.md "Log formats"): classic
 *    Figure-3 framing vs header-dancing vs zero-based, compared on the
 *    Table 3 RCB cell and on the per-op commit point where the framing
 *    overhead is paid once per operation. LogB/op is the persisted log
 *    bytes (tx + op records) per completed operation — the column the
 *    cache-line-conscious encodings are built to shrink.
 *
 * ASYMNVM_BENCH_TINY=1 switches to smoke-test sizes; the run always
 * emits BENCH_ablation_logging.json next to the binary's cwd.
 */

#include "bench_common.h"

namespace asymnvm::bench {
namespace {

uint64_t kPreload = 20000;
uint64_t kOps = 8000;

uint64_t session_counter = 13000;

struct AblationRow
{
    const char *label;
    LogFormatKind fmt;
    bool opref;
    bool coalesce;
    uint32_t batch;
};

struct AblationResult
{
    double kops;
    double wire_mb;
    double log_bytes_per_op;
    uint64_t replayed;
};

AblationResult
runBpt(const AblationRow &row)
{
    BackendNode be(1, benchBackendConfig());
    SessionConfig cfg =
        sessionFor(Mode::RCB, ++session_counter,
                   cacheBytesFor<BpTree>(0.10, kPreload + kOps),
                   row.batch);
    cfg.use_opref = row.opref;
    cfg.coalesce_memlogs = row.coalesce;
    cfg.log_format = row.fmt;
    FrontendSession s(cfg);
    if (!ok(s.connect(&be)))
        return {-1, 0, 0, 0};
    BpTree tree;
    if (!ok(BpTree::create(s, 1, "a", &tree)))
        return {-1, 0, 0, 0};
    WorkloadConfig wcfg;
    wcfg.key_space = kPreload;
    wcfg.seed = 42;
    preloadKeys(s, tree, wcfg, kPreload);
    s.resetStats();
    be.resetStats();

    WorkloadConfig mcfg = wcfg;
    mcfg.seed = 99;
    Workload w(mcfg);
    const auto ops = w.generate(kOps);
    const uint64_t bytes0 = s.verbs().bytesMoved();
    const Throughput t = runKvWorkload(s, tree, ops);
    const LogFormatStats lf = s.stats().logfmt;
    return {t.kops(),
            static_cast<double>(s.verbs().bytesMoved() - bytes0) / 1e6,
            static_cast<double>(lf.tx_wire_bytes + lf.op_wire_bytes) /
                static_cast<double>(kOps),
            be.replayedEntries()};
}

void
writeJson(const AblationRow *rows, const AblationResult *results,
          size_t n, const char *path)
{
    std::FILE *f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return;
    }
    std::fprintf(f, "{\n  \"bench\": \"ablation_logging\",\n"
                    "  \"params\": {\"preload\": %" PRIu64
                    ", \"ops\": %" PRIu64 ", \"tiny\": %s},\n"
                    "  \"columns\": [\"kops\", \"wire_mb\", "
                    "\"log_bytes_per_op\", \"replayed_logs\"],\n"
                    "  \"rows\": [\n",
                 kPreload, kOps, benchTiny() ? "true" : "false");
    for (size_t i = 0; i < n; ++i) {
        std::fprintf(f,
                     "    {\"label\": \"%s\", \"format\": \"%s\", "
                     "\"kops\": %.1f, \"wire_mb\": %.3f, "
                     "\"log_bytes_per_op\": %.1f, \"replayed_logs\": %"
                     PRIu64 "}%s\n",
                     rows[i].label, logFormatName(rows[i].fmt),
                     results[i].kops, results[i].wire_mb,
                     results[i].log_bytes_per_op, results[i].replayed,
                     i + 1 == n ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", path);
}

void
run()
{
    if (benchTiny()) {
        kPreload = 2000;
        kOps = 800;
    }
    printHeader("Ablation: logging pipeline design choices "
                "(BPT, 100% write)",
                "Configuration                           KOPS   WireMB"
                "   LogB/op   ReplayedLogs");
    const AblationRow rows[] = {
        {"RCB (op-ref + coalescing)", LogFormatKind::Classic, true, true,
         1024},
        {"RCB, header-dancing logs", LogFormatKind::HeaderDancing, true,
         true, 1024},
        {"RCB, zero-based logs", LogFormatKind::ZeroBased, true, true,
         1024},
        {"RCB, inline values (no op-ref)", LogFormatKind::Classic, false,
         true, 1024},
        {"RCB, no coalescing", LogFormatKind::Classic, true, false, 1024},
        {"RCB, inline + no coalescing", LogFormatKind::Classic, false,
         false, 1024},
        {"per-op commit (batch 1)", LogFormatKind::Classic, true, true, 1},
        {"per-op, header-dancing logs", LogFormatKind::HeaderDancing,
         true, true, 1},
        {"per-op, zero-based logs", LogFormatKind::ZeroBased, true, true,
         1},
    };
    AblationResult results[std::size(rows)];
    for (size_t i = 0; i < std::size(rows); ++i) {
        results[i] = runBpt(rows[i]);
        std::printf("%-38s %7.1f  %7.2f  %8.1f  %13" PRIu64 "\n",
                    rows[i].label, results[i].kops, results[i].wire_mb,
                    results[i].log_bytes_per_op, results[i].replayed);
    }
    std::printf(
        "\nExpected shape: op-refs shrink wire bytes at equal"
        "\nthroughput; coalescing cuts replayed log count; the per-op"
        "\ncommit rows show what group commit buys (Section 4.2/4.3);"
        "\nunder group commit the header-dancing and zero-based rows"
        "\npersist fewer log bytes per op than the classic framing at"
        "\nequal throughput (header-dancing pads each record to 64 B,"
        "\nso tiny per-op transactions can instead inflate it).\n");
    writeJson(rows, results, std::size(rows),
              "BENCH_ablation_logging.json");
}

} // namespace
} // namespace asymnvm::bench

int
main()
{
    asymnvm::bench::run();
    return 0;
}
