/**
 * @file
 * Ablation of the logging-pipeline design choices DESIGN.md §5 calls
 * out, beyond the Naive/R/RC/RCB ladder of Table 3:
 *
 *  - op-ref memory logs (Figure 3's Flag byte) vs inline values:
 *    transaction wire bytes and throughput;
 *  - memory-log coalescing within a batch vs none: replayed entries and
 *    throughput (the "compacted to one NVM write" claim of Section 8.3);
 *  - posted (asynchronous) memory-log writes vs a synchronous
 *    rnvm_tx_write per operation: the decoupled-persistency claim of
 *    Section 4.2.
 */

#include "bench_common.h"

namespace asymnvm::bench {
namespace {

constexpr uint64_t kPreload = 20000;
constexpr uint64_t kOps = 8000;

uint64_t session_counter = 13000;

struct AblationResult
{
    double kops;
    double wire_mb;
    uint64_t replayed;
};

AblationResult
runBpt(bool opref, bool coalesce, uint32_t batch)
{
    BackendNode be(1, benchBackendConfig());
    SessionConfig cfg =
        sessionFor(Mode::RCB, ++session_counter,
                   cacheBytesFor<BpTree>(0.10, kPreload + kOps), batch);
    cfg.use_opref = opref;
    cfg.coalesce_memlogs = coalesce;
    FrontendSession s(cfg);
    if (!ok(s.connect(&be)))
        return {-1, 0, 0};
    BpTree tree;
    if (!ok(BpTree::create(s, 1, "a", &tree)))
        return {-1, 0, 0};
    WorkloadConfig wcfg;
    wcfg.key_space = kPreload;
    wcfg.seed = 42;
    preloadKeys(s, tree, wcfg, kPreload);
    s.resetStats();
    be.resetStats();

    WorkloadConfig mcfg = wcfg;
    mcfg.seed = 99;
    Workload w(mcfg);
    const auto ops = w.generate(kOps);
    const uint64_t bytes0 = s.verbs().bytesMoved();
    const Throughput t = runKvWorkload(s, tree, ops);
    return {t.kops(),
            static_cast<double>(s.verbs().bytesMoved() - bytes0) / 1e6,
            be.replayedEntries()};
}

void
run()
{
    printHeader("Ablation: logging pipeline design choices "
                "(BPT, 100% write)",
                "Configuration                         KOPS   WireMB"
                "   ReplayedLogs");
    struct Row
    {
        const char *label;
        bool opref;
        bool coalesce;
        uint32_t batch;
    };
    const Row rows[] = {
        {"RCB (op-ref + coalescing)", true, true, 1024},
        {"RCB, inline values (no op-ref)", false, true, 1024},
        {"RCB, no coalescing", true, false, 1024},
        {"RCB, inline + no coalescing", false, false, 1024},
        {"per-op commit (batch 1)", true, true, 1},
    };
    for (const Row &row : rows) {
        const AblationResult r =
            runBpt(row.opref, row.coalesce, row.batch);
        std::printf("%-36s %7.1f  %7.2f  %13" PRIu64 "\n", row.label,
                    r.kops, r.wire_mb, r.replayed);
    }
    std::printf(
        "\nExpected shape: op-refs shrink wire bytes at equal"
        "\nthroughput; coalescing cuts replayed log count; the per-op"
        "\ncommit row shows what group commit buys (Section 4.2/4.3).\n");
}

} // namespace
} // namespace asymnvm::bench

int
main()
{
    asymnvm::bench::run();
    return 0;
}
