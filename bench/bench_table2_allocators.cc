/**
 * @file
 * Table 2 reproduction: allocator throughput comparison (MOPS).
 *
 *   Glibc                     — volatile malloc/free (no persistence)
 *   Pmem                      — single-node persistent allocator (the
 *                               back-end slab allocator accessed locally
 *                               at NVM cost, standing in for NVML/pmem)
 *   RPC allocator             — every allocation crosses the network
 *   Two-tier (slab 128 B)     — paper's design, small slabs
 *   Two-tier (slab 1024 B)    — paper's design, default slabs
 *
 * Allocation sizes vary 32..128 bytes as in Section 5.2. Throughput is
 * ops per virtual second.
 */

#include <cstdlib>

#include "bench_common.h"

#include "frontend/allocator.h"
#include "rdma/rpc.h"

namespace asymnvm::bench {
namespace {

constexpr uint64_t kOps = 20000;

struct Result
{
    double alloc_mops;
    double free_mops;
};

/** Host malloc as the Glibc row; measured against virtual DRAM cost. */
Result
glibcRow()
{
    // Model: an allocation is a handful of DRAM accesses (~50 ns).
    SimClock clock;
    LatencyModel lat;
    std::vector<void *> ptrs(kOps);
    Rng rng(1);
    uint64_t t0 = clock.now();
    for (uint64_t i = 0; i < kOps; ++i) {
        ptrs[i] = std::malloc(32 + rng.nextBounded(97));
        clock.advance(lat.dram_access_ns);
    }
    const uint64_t alloc_ns = clock.now() - t0;
    t0 = clock.now();
    for (uint64_t i = 0; i < kOps; ++i) {
        std::free(ptrs[i]);
        clock.advance(lat.dram_access_ns / 2);
    }
    const uint64_t free_ns = clock.now() - t0;
    return {Throughput{kOps, alloc_ns}.mops(),
            Throughput{kOps, free_ns}.mops()};
}

/** Back-end slab allocator at local NVM cost: the "Pmem" row. */
Result
pmemRow()
{
    BackendConfig cfg = benchBackendConfig();
    cfg.block_size = 128; // fine-grained local persistent allocator
    BackendNode be(1, cfg);
    SimClock clock;
    LatencyModel lat;
    std::vector<uint64_t> offs(kOps);
    uint64_t t0 = clock.now();
    for (uint64_t i = 0; i < kOps; ++i) {
        be.rpcAllocBlocks(1, &offs[i]);
        // Local persistent allocation: bitmap write + persist fence.
        clock.advance(lat.nvm_write_ns + lat.persist_fence_ns +
                      lat.cpu_op_overhead_ns * 2);
    }
    const uint64_t alloc_ns = clock.now() - t0;
    t0 = clock.now();
    for (uint64_t i = 0; i < kOps; ++i) {
        be.rpcFreeBlocks(offs[i], 1);
        clock.advance(lat.nvm_write_ns + lat.persist_fence_ns +
                      lat.cpu_op_overhead_ns);
    }
    const uint64_t free_ns = clock.now() - t0;
    return {Throughput{kOps, alloc_ns}.mops(),
            Throughput{kOps, free_ns}.mops()};
}

/** Every allocation is one RPC round trip: the strawman row. */
Result
rpcRow()
{
    BackendConfig cfg = benchBackendConfig();
    cfg.block_size = 128;
    BackendNode be(1, cfg);
    FrontendSession s(SessionConfig::r(71));
    if (!ok(s.connect(&be)))
        return {-1, -1};
    // Direct RfpRpc usage, no front-end tier.
    RfpRpc rpc(&s.verbs(), &be, 0);
    std::vector<uint64_t> offs(kOps);
    uint64_t t0 = s.clock().now();
    for (uint64_t i = 0; i < kOps; ++i) {
        uint64_t args[1] = {1};
        uint64_t rets[4] = {};
        rpc.call(RpcOp::AllocBlocks, args, {}, rets);
        offs[i] = rets[0];
    }
    const uint64_t alloc_ns = s.clock().now() - t0;
    t0 = s.clock().now();
    for (uint64_t i = 0; i < kOps; ++i) {
        uint64_t args[2] = {offs[i], 1};
        rpc.call(RpcOp::FreeBlocks, args, {}, nullptr);
    }
    const uint64_t free_ns = s.clock().now() - t0;
    return {Throughput{kOps, alloc_ns}.mops(),
            Throughput{kOps, free_ns}.mops()};
}

/** The paper's two-tier allocator with the given slab size. */
Result
twoTierRow(uint64_t slab_size)
{
    BackendConfig cfg = benchBackendConfig();
    cfg.block_size = slab_size;
    BackendNode be(1, cfg);
    FrontendSession s(SessionConfig::r(72 + slab_size));
    if (!ok(s.connect(&be)))
        return {-1, -1};
    Rng rng(3);
    std::vector<std::pair<RemotePtr, uint64_t>> ptrs(kOps);
    uint64_t t0 = s.clock().now();
    for (uint64_t i = 0; i < kOps; ++i) {
        const uint64_t size = 32 + rng.nextBounded(97);
        RemotePtr p;
        s.alloc(1, size, &p);
        ptrs[i] = {p, size};
    }
    const uint64_t alloc_ns = s.clock().now() - t0;
    t0 = s.clock().now();
    for (uint64_t i = 0; i < kOps; ++i)
        s.free(ptrs[i].first, ptrs[i].second);
    const uint64_t free_ns = s.clock().now() - t0;
    return {Throughput{kOps, alloc_ns}.mops(),
            Throughput{kOps, free_ns}.mops()};
}

void
printRow(const char *name, const Result &r)
{
    std::printf("%-36s %8.2f %8.2f\n", name, r.alloc_mops, r.free_mops);
}

void
run()
{
    printHeader("Table 2: comparison of different allocators "
                "(MOPS, alloc sizes 32-128 B)",
                "Allocator                               Alloc     Free");
    printRow("Glibc", glibcRow());
    printRow("Pmem (local persistent)", pmemRow());
    printRow("RPC allocator", rpcRow());
    printRow("Two-tier allocator (slab 128 B)", twoTierRow(128));
    printRow("Two-tier allocator (slab 1024 B)", twoTierRow(1024));
    std::printf("\nPaper (Table 2) reference: Glibc 21.0/57.0, Pmem "
                "1.42/1.38, RPC 0.33/0.88,\ntwo-tier(128B) 1.33/2.41, "
                "two-tier(1024B) 6.42/13.90 — the shape to match:\n"
                "Glibc >> two-tier(1KB) > Pmem ~ two-tier(128B) >> RPC.\n");
}

} // namespace
} // namespace asymnvm::bench

int
main()
{
    asymnvm::bench::run();
    return 0;
}
