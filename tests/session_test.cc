/**
 * @file
 * Integration tests for FrontendSession: the Table 1 API end to end —
 * read paths (overlay/cache/remote), the memory/operation log pipeline,
 * group commit, the writer lock and seqlock, naming, allocation, and the
 * front-end crash recovery protocol (Cases 1/2) plus back-end failover
 * (Cases 3/4).
 */

#include <gtest/gtest.h>

#include <cstring>

#include "backend/backend_node.h"
#include "frontend/session.h"

namespace asymnvm {
namespace {

BackendConfig
testConfig()
{
    BackendConfig cfg;
    cfg.nvm_size = 16ull << 20;
    cfg.max_frontends = 4;
    cfg.max_names = 16;
    cfg.memlog_ring_size = 256ull << 10;
    cfg.oplog_ring_size = 128ull << 10;
    cfg.block_size = 1024;
    return cfg;
}

class SessionTest : public ::testing::Test
{
  protected:
    SessionTest() : be(1, testConfig()) {}

    BackendNode be;

    std::unique_ptr<FrontendSession> makeSession(const SessionConfig &cfg)
    {
        auto s = std::make_unique<FrontendSession>(cfg);
        EXPECT_EQ(s->connect(&be), Status::Ok);
        return s;
    }
};

TEST_F(SessionTest, NaiveWriteIsImmediatelyDurable)
{
    auto s = makeSession(SessionConfig::naive(10));
    RemotePtr p;
    ASSERT_EQ(s->alloc(1, 64, &p), Status::Ok);
    const uint64_t v = 0x1234;
    ASSERT_EQ(s->logWrite(0, p, &v, 8), Status::Ok);
    // Durable without any flush: direct RDMA_Write.
    EXPECT_EQ(be.nvm().read64(p.offset), 0x1234u);
}

TEST_F(SessionTest, BufferedWriteVisibleThroughOverlayBeforeFlush)
{
    auto s = makeSession(SessionConfig::rcb(11, 1 << 20, 64));
    RemotePtr p;
    ASSERT_EQ(s->alloc(1, 64, &p), Status::Ok);
    ASSERT_EQ(s->opBegin(0, 1, OpType::Update, 1, nullptr, 0), Status::Ok);
    const uint64_t v = 0x77;
    ASSERT_EQ(s->logWrite(0, p, &v, 8), Status::Ok);
    // Not yet in the back-end data area...
    EXPECT_EQ(be.nvm().read64(p.offset), 0u);
    // ...but read-your-writes sees it.
    uint64_t got = 0;
    ASSERT_EQ(s->read(p, &got, 8), Status::Ok);
    EXPECT_EQ(got, 0x77u);
    // After the flush the back-end replayed it.
    ASSERT_EQ(s->opEnd(), Status::Ok);
    ASSERT_EQ(s->flushAll(), Status::Ok);
    EXPECT_EQ(be.nvm().read64(p.offset), 0x77u);
}

TEST_F(SessionTest, BatchBoundaryTriggersGroupCommit)
{
    auto s = makeSession(SessionConfig::rcb(12, 1 << 20, /*batch=*/4));
    RemotePtr p;
    ASSERT_EQ(s->alloc(1, 256, &p), Status::Ok);
    for (uint64_t i = 0; i < 4; ++i) {
        ASSERT_EQ(s->opBegin(0, 1, OpType::Update, i, nullptr, 0),
                  Status::Ok);
        const uint64_t v = i + 1;
        ASSERT_EQ(s->logWrite(0, p + i * 8, &v, 8), Status::Ok);
        ASSERT_EQ(s->opEnd(), Status::Ok);
    }
    // The 4th opEnd crossed the batch boundary: everything replayed.
    EXPECT_EQ(s->opsInBatch(), 0u);
    for (uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(be.nvm().read64(p.offset + i * 8), i + 1);
}

TEST_F(SessionTest, CoalescingMergesWritesToSameAddress)
{
    auto s = makeSession(SessionConfig::rcb(13, 1 << 20, 1024));
    RemotePtr p;
    ASSERT_EQ(s->alloc(1, 64, &p), Status::Ok);
    for (uint64_t i = 0; i < 10; ++i) {
        ASSERT_EQ(s->opBegin(0, 1, OpType::Update, i, nullptr, 0),
                  Status::Ok);
        ASSERT_EQ(s->logWrite(0, p, &i, 8), Status::Ok);
        ASSERT_EQ(s->opEnd(), Status::Ok);
    }
    ASSERT_EQ(s->flushAll(), Status::Ok);
    EXPECT_EQ(be.nvm().read64(p.offset), 9u);
    // Ten writes to one address coalesce into a single memory log.
    EXPECT_EQ(be.replayedEntries(), 1u);
}

TEST_F(SessionTest, CacheServesRepeatedReads)
{
    auto s = makeSession(SessionConfig::rc(14, 1 << 20));
    RemotePtr p;
    ASSERT_EQ(s->alloc(1, 64, &p), Status::Ok);
    const uint64_t v = 5;
    be.nvm().write(p.offset, &v, 8);
    be.nvm().persist();

    ReadHint hint;
    hint.cacheable = true;
    uint64_t got = 0;
    ASSERT_EQ(s->read(p, &got, 8, hint), Status::Ok);
    const uint64_t verbs_after_first = s->verbs().verbsIssued();
    for (int i = 0; i < 5; ++i)
        ASSERT_EQ(s->read(p, &got, 8, hint), Status::Ok);
    EXPECT_EQ(s->verbs().verbsIssued(), verbs_after_first)
        << "cached reads must not issue verbs";
    EXPECT_EQ(got, 5u);
}

TEST_F(SessionTest, WriteUpdatesCachedCopy)
{
    auto s = makeSession(SessionConfig::rcb(15, 1 << 20, 8));
    RemotePtr p;
    ASSERT_EQ(s->alloc(1, 64, &p), Status::Ok);
    uint64_t v = 1;
    be.nvm().write(p.offset, &v, 8);
    be.nvm().persist();

    ReadHint hint;
    hint.cacheable = true;
    uint64_t got = 0;
    ASSERT_EQ(s->read(p, &got, 8, hint), Status::Ok); // cached now
    ASSERT_EQ(s->opBegin(0, 1, OpType::Update, 0, nullptr, 0), Status::Ok);
    v = 2;
    ASSERT_EQ(s->logWrite(0, p, &v, 8), Status::Ok);
    ASSERT_EQ(s->opEnd(), Status::Ok);
    ASSERT_EQ(s->flushAll(), Status::Ok); // overlay gone; cache must serve
    ASSERT_EQ(s->read(p, &got, 8, hint), Status::Ok);
    EXPECT_EQ(got, 2u);
}

TEST_F(SessionTest, OpLogPersistedPerOpWithoutBatching)
{
    auto s = makeSession(SessionConfig::r(16));
    const Value val = Value::ofU64(9);
    ASSERT_EQ(s->opBegin(0, 1, OpType::Insert, 42, val.bytes.data(),
                         Value::kSize),
              Status::Ok);
    const auto ops = be.uncoveredOps(0);
    ASSERT_EQ(ops.size(), 1u);
    EXPECT_EQ(ops[0].key, 42u);
    EXPECT_EQ(ops[0].op, OpType::Insert);
}

TEST_F(SessionTest, WriterLockExcludesSecondSession)
{
    auto s1 = makeSession(SessionConfig::rcb(17, 1 << 20, 8));
    auto s2 = makeSession(SessionConfig::rcb(18, 1 << 20, 8));
    DsId ds = 0;
    ASSERT_EQ(s1->createDs(1, "locked", DsType::Bst, &ds), Status::Ok);

    ASSERT_EQ(s1->writerLock(ds, 1), Status::Ok);
    EXPECT_TRUE(s1->holdsWriterLock(ds, 1));
    // The lock word in NVM names session 1's slot.
    const uint64_t lock = be.namingEntry(ds).writer_lock;
    EXPECT_NE(lock, 0u);
    // Release through unlock (flushes and resets the word).
    ASSERT_EQ(s1->writerUnlock(ds, 1), Status::Ok);
    EXPECT_FALSE(s1->holdsWriterLock(ds, 1));
    ASSERT_EQ(s2->writerLock(ds, 1), Status::Ok);
    ASSERT_EQ(s2->writerUnlock(ds, 1), Status::Ok);
}

TEST_F(SessionTest, SeqlockDetectsConcurrentReplay)
{
    auto writer = makeSession(SessionConfig::rcb(19, 1 << 20, 1));
    auto reader = makeSession(SessionConfig::r(20));
    DsId ds = 0;
    ASSERT_EQ(writer->createDs(1, "seq", DsType::Bst, &ds), Status::Ok);
    RemotePtr p;
    ASSERT_EQ(writer->alloc(1, 64, &p), Status::Ok);

    uint64_t sn = 0;
    ASSERT_EQ(reader->readerLock(ds, 1, &sn), Status::Ok);
    EXPECT_TRUE(reader->readerValidate(ds, 1, sn))
        << "no concurrent write: validation succeeds";

    ASSERT_EQ(reader->readerLock(ds, 1, &sn), Status::Ok);
    // Writer commits while the reader is mid-critical-section.
    ASSERT_EQ(writer->writerLock(ds, 1), Status::Ok);
    ASSERT_EQ(writer->opBegin(ds, 1, OpType::Update, 1, nullptr, 0),
              Status::Ok);
    const uint64_t v = 3;
    ASSERT_EQ(writer->logWrite(ds, p, &v, 8), Status::Ok);
    ASSERT_EQ(writer->opEnd(), Status::Ok);
    EXPECT_FALSE(reader->readerValidate(ds, 1, sn))
        << "SN changed: the reader must retry";
}

TEST_F(SessionTest, NamingRoundTripAcrossSessions)
{
    auto s1 = makeSession(SessionConfig::rcb(21, 1 << 20, 8));
    auto s2 = makeSession(SessionConfig::rcb(22, 1 << 20, 8));
    DsId id1 = 0;
    ASSERT_EQ(s1->createDs(1, "shared-tree", DsType::BpTree, &id1),
              Status::Ok);
    DsId id2 = 99;
    DsType type = DsType::None;
    ASSERT_EQ(s2->openDs(1, "shared-tree", &id2, &type), Status::Ok);
    EXPECT_EQ(id2, id1);
    EXPECT_EQ(type, DsType::BpTree);
    EXPECT_EQ(s2->openDs(1, "absent", &id2, &type), Status::NotFound);
}

TEST_F(SessionTest, AuxFieldsRoundTripThroughLogPath)
{
    auto s = makeSession(SessionConfig::rcb(23, 1 << 20, 8));
    DsId ds = 0;
    ASSERT_EQ(s->createDs(1, "aux", DsType::Queue, &ds), Status::Ok);
    ASSERT_EQ(s->opBegin(ds, 1, OpType::Update, 0, nullptr, 0), Status::Ok);
    ASSERT_EQ(s->writeAux(ds, 1, 0, 0xabcd), Status::Ok);
    uint64_t v = 0;
    ASSERT_EQ(s->readAux(ds, 1, 0, &v), Status::Ok);
    EXPECT_EQ(v, 0xabcdu) << "overlay read before flush";
    ASSERT_EQ(s->opEnd(), Status::Ok);
    ASSERT_EQ(s->flushAll(), Status::Ok);
    v = 0;
    ASSERT_EQ(s->readAux(ds, 1, 0, &v), Status::Ok);
    EXPECT_EQ(v, 0xabcdu) << "NVM read after flush";
}

TEST_F(SessionTest, CasRootSwapsAtomically)
{
    auto s = makeSession(SessionConfig::rcb(24, 1 << 20, 8));
    DsId ds = 0;
    ASSERT_EQ(s->createDs(1, "mv", DsType::MvBst, &ds), Status::Ok);
    uint64_t old_raw = 1;
    ASSERT_EQ(s->casRoot(ds, 1, 0, RemotePtr(1, 4096).raw(), &old_raw),
              Status::Ok);
    EXPECT_EQ(old_raw, 0u);
    DsMeta meta{};
    ASSERT_EQ(s->readDsMeta(ds, 1, &meta), Status::Ok);
    EXPECT_EQ(RemotePtr::fromRaw(meta.root_raw), RemotePtr(1, 4096));
}

TEST_F(SessionTest, GcEpochAdvanceInvalidatesDsCache)
{
    auto s = makeSession(SessionConfig::rc(25, 1 << 20));
    DsId ds = 0;
    ASSERT_EQ(s->createDs(1, "gc", DsType::MvBst, &ds), Status::Ok);
    RemotePtr p;
    ASSERT_EQ(s->alloc(1, 64, &p), Status::Ok);
    const uint64_t v = 8;
    be.nvm().write(p.offset, &v, 8);
    be.nvm().persist();

    ReadHint hint;
    hint.ds = ds;
    hint.cacheable = true;
    uint64_t got;
    DsMeta meta{};
    ASSERT_EQ(s->readDsMeta(ds, 1, &meta), Status::Ok); // epoch baseline
    ASSERT_EQ(s->read(p, &got, 8, hint), Status::Ok);   // now cached
    EXPECT_GT(s->cache().entryCount(), 0u);

    // Retire something and force GC: the epoch bump must flush the cache.
    s->retire(ds, p, 64);
    ASSERT_EQ(s->flushAll(), Status::Ok);
    be.processGc(0, /*force=*/true);
    ASSERT_EQ(s->readDsMeta(ds, 1, &meta), Status::Ok);
    // Invalidation is lazy (epoch-based): the next probe must miss.
    EXPECT_FALSE(s->cache().lookup(p, &got, 8));
}

TEST_F(SessionTest, FrontendCrashRecoveryReexecutesUncoveredOps)
{
    auto s = makeSession(SessionConfig::rcb(26, 1 << 20, /*batch=*/64));
    DsId ds = 0;
    ASSERT_EQ(s->createDs(1, "recover-me", DsType::Stack, &ds), Status::Ok);
    RemotePtr cell;
    ASSERT_EQ(s->alloc(1, 64, &cell), Status::Ok);
    ASSERT_EQ(s->flushAll(), Status::Ok);

    // Three ops: op logs persisted, memory logs still buffered.
    for (uint64_t i = 1; i <= 3; ++i) {
        const Value v = Value::ofU64(i * 100);
        ASSERT_EQ(s->opBegin(ds, 1, OpType::Push, i, v.bytes.data(),
                             Value::kSize),
                  Status::Ok);
        ASSERT_EQ(s->logWrite(ds, cell, &i, 8), Status::Ok);
        ASSERT_EQ(s->opEnd(), Status::Ok);
    }
    EXPECT_EQ(be.nvm().read64(cell.offset), 0u) << "nothing flushed yet";

    s->simulateCrash();
    // The structure is "re-opened" and registers its replayer.
    uint64_t replayed = 0;
    uint64_t last_key = 0;
    s->setReplayer(ds, 1, [&](const ParsedOpLog &op) {
        ++replayed;
        last_key = op.key;
        // Re-execute through the normal write path.
        EXPECT_EQ(s->opBegin(ds, 1, op.op, op.key, op.value.data(),
                             static_cast<uint32_t>(op.value.size())),
                  Status::Ok);
        EXPECT_EQ(s->logWrite(ds, cell, &op.key, 8), Status::Ok);
        return s->opEnd();
    });
    ASSERT_EQ(s->recover(), Status::Ok);
    EXPECT_EQ(replayed, 3u);
    EXPECT_EQ(last_key, 3u);
    EXPECT_EQ(be.nvm().read64(cell.offset), 3u)
        << "re-executed ops must be applied and durable";
    // A second recovery finds nothing left to redo.
    replayed = 0;
    ASSERT_EQ(s->recover(), Status::Ok);
    EXPECT_EQ(replayed, 0u);
}

TEST_F(SessionTest, CrashWhileHoldingLockIsReleasedByRecovery)
{
    auto s = makeSession(SessionConfig::rcb(27, 1 << 20, 64));
    DsId ds = 0;
    ASSERT_EQ(s->createDs(1, "locked-crash", DsType::Bst, &ds), Status::Ok);
    ASSERT_EQ(s->writerLock(ds, 1), Status::Ok);
    EXPECT_NE(be.namingEntry(ds).writer_lock, 0u);

    s->simulateCrash();
    ASSERT_EQ(s->recover(), Status::Ok);
    EXPECT_EQ(be.nvm().read64(be.layout().namingEntryOff(ds) +
                              naming_field::kWriterLock),
              0u)
        << "the lock-ahead record must release the orphaned lock";
}

TEST_F(SessionTest, BackendCrashSurfacesThroughVerbs)
{
    auto s = makeSession(SessionConfig::r(28));
    RemotePtr p;
    ASSERT_EQ(s->alloc(1, 64, &p), Status::Ok);
    be.failure().armCrashAfterVerbs(0);
    uint64_t got;
    EXPECT_EQ(s->read(p, &got, 8), Status::BackendCrashed);
}

TEST_F(SessionTest, SymmetricModeAppliesWritesLocally)
{
    auto s = std::make_unique<FrontendSession>(
        SessionConfig::symmetricBase(29, false));
    ASSERT_EQ(s->connect(&be), Status::Ok);
    RemotePtr p;
    ASSERT_EQ(s->alloc(1, 64, &p), Status::Ok);
    ASSERT_EQ(s->opBegin(0, 1, OpType::Update, 0, nullptr, 0), Status::Ok);
    const uint64_t v = 0x5eed;
    ASSERT_EQ(s->logWrite(0, p, &v, 8), Status::Ok);
    ASSERT_EQ(s->opEnd(), Status::Ok);
    EXPECT_EQ(be.nvm().read64(p.offset), 0x5eedu);
    EXPECT_EQ(s->verbs().counters().reads, 0u)
        << "symmetric mode must not touch the network for data";
    EXPECT_EQ(s->verbs().counters().writes, 0u)
        << "symmetric mode must not touch the network for data";
    // Log *shipping* does use the wire: the op's log bytes ride the
    // posted chain to the replica and launch with opEnd's doorbell.
    EXPECT_GT(s->verbs().counters().posted, 0u)
        << "symmetric log shipping must ride the posted-WQE chain";
    EXPECT_GT(s->verbs().counters().doorbells, 0u);
    uint64_t got = 0;
    ASSERT_EQ(s->read(p, &got, 8), Status::Ok);
    EXPECT_EQ(got, 0x5eedu);
}

TEST_F(SessionTest, ModesOrderedByPerOpCost)
{
    // The whole point of the paper: Naive > R > RCB in per-op virtual
    // cost for a simple write workload.
    auto run = [&](const SessionConfig &cfg, uint64_t session_base) {
        auto s = std::make_unique<FrontendSession>(cfg);
        BackendNode local(1, testConfig());
        EXPECT_EQ(s->connect(&local), Status::Ok);
        RemotePtr p;
        EXPECT_EQ(s->alloc(1, 1024, &p), Status::Ok);
        const uint64_t t0 = s->clock().now();
        for (uint64_t i = 0; i < 256; ++i) {
            EXPECT_EQ(s->opBegin(0, 1, OpType::Update, i, nullptr, 0),
                      Status::Ok);
            // A realistic write op touches several locations (new node,
            // predecessor link, metadata), which is where decoupled log
            // persistency wins over per-location RDMA writes.
            for (uint64_t w = 0; w < 3; ++w) {
                const uint64_t v = i;
                EXPECT_EQ(s->logWrite(0, p + ((3 * i + w) % 48) * 8, &v, 8),
                          Status::Ok);
            }
            EXPECT_EQ(s->opEnd(), Status::Ok);
        }
        s->flushAll();
        (void)session_base;
        return s->clock().now() - t0;
    };
    const uint64_t naive = run(SessionConfig::naive(30), 0);
    const uint64_t r = run(SessionConfig::r(31), 0);
    const uint64_t rcb = run(SessionConfig::rcb(32, 1 << 20, 256), 0);
    EXPECT_GT(naive, r);
    EXPECT_GT(r, rcb);
    EXPECT_GT(naive, 2 * rcb) << "batching should win big";
}

TEST_F(SessionTest, RingWrapsAreHandledAcrossManyFlushes)
{
    // Push enough transactions through a small ring to wrap it several
    // times; every write must stay replayable.
    BackendConfig cfg = testConfig();
    cfg.memlog_ring_size = 8ull << 10;
    cfg.oplog_ring_size = 8ull << 10;
    BackendNode small(2, cfg);
    auto s = std::make_unique<FrontendSession>(
        SessionConfig::rcb(33, 1 << 20, 4));
    ASSERT_EQ(s->connect(&small), Status::Ok);
    RemotePtr p;
    ASSERT_EQ(s->alloc(2, 1024, &p), Status::Ok);
    for (uint64_t i = 0; i < 2000; ++i) {
        ASSERT_EQ(s->opBegin(0, 2, OpType::Update, i, nullptr, 0),
                  Status::Ok);
        const uint64_t v = i;
        ASSERT_EQ(s->logWrite(0, p + (i % 128) * 8, &v, 8), Status::Ok);
        ASSERT_EQ(s->opEnd(), Status::Ok);
    }
    ASSERT_EQ(s->flushAll(), Status::Ok);
    // Slot 79 was last written at i = 1999, slot 127 at i = 1919.
    EXPECT_EQ(small.nvm().read64(p.offset + 79 * 8), 1999u);
    EXPECT_EQ(small.nvm().read64(p.offset + 127 * 8), 1919u);
}

} // namespace
} // namespace asymnvm
