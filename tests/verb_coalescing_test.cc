/**
 * @file
 * Doorbell-batched verb coalescing: WQE merging in the post-list layer,
 * the batched NIC reservation, and the end-to-end verb budget of an RCB
 * group commit. The budget assertions are regression guards — before
 * coalescing, every op-log append rang its own doorbell, so a batch of N
 * ops cost N+O(1) doorbells instead of O(1).
 */

#include <gtest/gtest.h>

#include <cstring>

#include "backend/backend_node.h"
#include "frontend/session.h"
#include "nvm/nvm_device.h"
#include "rdma/verbs.h"
#include "sim/clock.h"
#include "sim/failure.h"
#include "sim/latency.h"
#include "sim/nic.h"

namespace asymnvm {
namespace {

TEST(NicModelBatchTest, ReserveBatchChargesNVerbsAsOneArrival)
{
    NicModel nic(100);
    EXPECT_EQ(nic.reserveBatch(0, 0), 0u);
    EXPECT_EQ(nic.verbCount(), 0u);

    nic.reserveBatch(5, 1000);
    EXPECT_EQ(nic.verbCount(), 5u);
    EXPECT_EQ(nic.busyNs(), 500u) << "a chain still occupies the NIC "
                                     "for n service times";
}

TEST(NicModelBatchTest, BatchedArrivalQueuesNoWorseThanSingles)
{
    // Same aggregate load, two accounting schemes: the batched NIC sees
    // one arrival per chain, the single NIC one per verb. The per-verb
    // scheme compounds its own queueing (each verb raises the
    // utilization the next one pays for), so the summed delay of the
    // singles must be at least the chain's single delay.
    NicModel batched(100);
    NicModel singles(100);
    // Warm both past the signal threshold with identical history.
    batched.reserveBatch(50, 5000);
    for (int i = 0; i < 50; ++i)
        singles.reserve(5000);

    const uint64_t chain_delay = batched.reserveBatch(10, 6000);
    uint64_t singles_delay = 0;
    for (int i = 0; i < 10; ++i)
        singles_delay += singles.reserve(6000);
    EXPECT_GE(singles_delay, chain_delay);
    EXPECT_GT(singles_delay, 0u);
    EXPECT_EQ(batched.verbCount(), singles.verbCount());
}

class PostListTest : public ::testing::Test
{
  protected:
    PostListTest() : dev(1 << 20), nic(120), verbs(&clock, &lat)
    {
        verbs.attach(1, RdmaTarget{&dev, &nic, &fail});
    }

    NvmDevice dev;
    NicModel nic;
    FailureInjector fail;
    SimClock clock;
    LatencyModel lat;
    Verbs verbs;
};

TEST_F(PostListTest, ContiguousPostsMergeIntoOneWqe)
{
    const uint64_t v = 7;
    for (int i = 0; i < 4; ++i)
        ASSERT_EQ(verbs.postWrite(RemotePtr(1, 4096 + i * 8), &v, 8),
                  Status::Ok);
    EXPECT_EQ(verbs.pendingWqes(), 1u)
        << "consecutive destinations are one WQE's scatter-gather list";
    EXPECT_EQ(verbs.counters().posted, 4u);
    EXPECT_EQ(verbs.counters().posted_bytes, 32u);

    // A destination gap starts a second WQE.
    ASSERT_EQ(verbs.postWrite(RemotePtr(1, 8192), &v, 8), Status::Ok);
    EXPECT_EQ(verbs.pendingWqes(), 2u);

    ASSERT_EQ(verbs.ringDoorbell(), Status::Ok);
    EXPECT_EQ(verbs.pendingWqes(), 0u);
    EXPECT_EQ(verbs.counters().doorbells, 1u)
        << "the whole chain costs one doorbell";
    EXPECT_EQ(nic.verbCount(), 2u) << "the NIC still services every WQE";
}

TEST_F(PostListTest, DoorbellChargesPostingOncePlusPerWqeCost)
{
    const uint64_t v = 1;
    ASSERT_EQ(verbs.postWrite(RemotePtr(1, 0), &v, 8), Status::Ok);
    ASSERT_EQ(verbs.postWrite(RemotePtr(1, 1024), &v, 8), Status::Ok);
    ASSERT_EQ(verbs.postWrite(RemotePtr(1, 2048), &v, 8), Status::Ok);
    EXPECT_EQ(clock.now(), 0u) << "posting defers all cost to the flush";

    ASSERT_EQ(verbs.ringDoorbell(), Status::Ok);
    // One posting overhead for the chain plus the amortized per-WQE
    // cost; the NIC queueing delay is zero this early in virtual time.
    EXPECT_EQ(clock.now(),
              lat.post_overhead_ns + 3 * lat.doorbell_batch_wqe_ns);
}

TEST_F(PostListTest, BenchSessionBatchStaysWithinDoorbellBudget)
{
    // End-to-end budget for one RCB group commit of kBatch ops. Before
    // coalescing this cost kBatch posted doorbells plus the commit; now
    // the op logs ride one chain that the synchronous commit write
    // drains, so the whole batch is O(1) doorbells and WQEs.
    constexpr uint32_t kBatch = 32;
    BackendConfig cfg;
    cfg.nvm_size = 16ull << 20;
    cfg.max_frontends = 4;
    cfg.max_names = 16;
    cfg.memlog_ring_size = 256ull << 10;
    cfg.oplog_ring_size = 128ull << 10;
    cfg.block_size = 1024;
    BackendNode be(1, cfg);

    FrontendSession s(SessionConfig::rcb(21, 1 << 20, kBatch));
    ASSERT_EQ(s.connect(&be), Status::Ok);
    RemotePtr region;
    ASSERT_EQ(s.alloc(1, kBatch * 8, &region), Status::Ok);
    s.resetStats();

    for (uint32_t i = 0; i < kBatch; ++i) {
        const uint64_t v = 0xAB00 + i;
        ASSERT_EQ(s.opBegin(0, 1, OpType::Update, i, &v, 8), Status::Ok);
        ASSERT_EQ(s.logWriteFromOp(0, RemotePtr(1, region.offset + i * 8),
                                   &v, 8),
                  Status::Ok);
        ASSERT_EQ(s.opEnd(), Status::Ok);
    }
    ASSERT_EQ(s.flushAll(), Status::Ok);

    const VerbCounters &c = s.verbs().counters();
    EXPECT_EQ(c.posted, kBatch) << "every op log is a posted append";
    EXPECT_LE(c.doorbells, 2u + 1u)
        << "budget: two doorbells plus one per back-end touched";
    EXPECT_LE(c.wqes, 4u)
        << "contiguous ring appends must merge into O(1) WQEs";
    EXPECT_LE(s.verbs().verbsIssued(), 8u)
        << "pre-coalescing cost was kBatch+O(1) verbs";

    // The batch is durable: the back-end replayed every memory log.
    for (uint32_t i = 0; i < kBatch; ++i)
        EXPECT_EQ(be.nvm().read64(region.offset + i * 8), 0xAB00u + i);
}

} // namespace
} // namespace asymnvm
