/**
 * @file
 * Systematic crash-point sweep (Section 7 recovery matrix) plus the
 * op-log ring-wrap hygiene regressions.
 *
 * The sweep test drives every workload kind through all four front-end
 * presets, crashing the back-end at a budgeted sample of RDMA verb
 * indices (and, for logged modes, at interior 64-byte tear prefixes of
 * the in-flight write), then recovering and auditing the durable image
 * with InvariantChecker. Any violation string is a real recovery bug.
 *
 * ASYMNVM_SWEEP_BUDGET=<n> shrinks the per-preset verb sample (useful
 * under sanitizers); the >= 200 distinct-crash-point floor is only
 * asserted at the default budget.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "backend/backend_node.h"
#include "backend/log_format.h"
#include "check/crash_explorer.h"
#include "cluster/cluster.h"
#include "ds/bptree.h"
#include "ds/stack.h"
#include "frontend/session.h"

namespace asymnvm {
namespace {

uint32_t
sweepBudget()
{
    if (const char *env = std::getenv("ASYMNVM_SWEEP_BUDGET")) {
        const long v = std::atol(env);
        if (v > 0)
            return static_cast<uint32_t>(v);
    }
    return 56;
}

bool
budgetOverridden()
{
    return std::getenv("ASYMNVM_SWEEP_BUDGET") != nullptr;
}

struct PresetParam
{
    const char *name;
    SessionConfig (*make)();
};

SessionConfig
presetNaive()
{
    return SessionConfig::naive(1);
}
SessionConfig
presetR()
{
    return SessionConfig::r(1);
}
SessionConfig
presetRc()
{
    return SessionConfig::rc(1, 256ull << 10);
}
SessionConfig
presetRcb()
{
    return SessionConfig::rcb(1, 256ull << 10, 13);
}

constexpr PresetParam kPresets[] = {
    {"naive", presetNaive},
    {"r", presetR},
    {"rc", presetRc},
    {"rcb", presetRcb},
};

class CrashSweepTest : public ::testing::TestWithParam<WorkloadKind>
{};

TEST_P(CrashSweepTest, RecoversAtEverySampledCrashPoint)
{
    uint64_t total_points = 0;
    for (const PresetParam &preset : kPresets) {
        SCOPED_TRACE(preset.name);
        ExplorerOptions opt;
        opt.kind = GetParam();
        opt.session = preset.make();
        opt.max_points = sweepBudget();
        const ExplorerResult res = exploreCrashPoints(opt);

        EXPECT_GT(res.workload_verbs, 0u);
        EXPECT_GT(res.points_run, 0u);
        // Every sampled point must actually crash the back-end and
        // complete the recovery protocol.
        EXPECT_EQ(res.crashes_fired, res.points_run);
        EXPECT_EQ(res.recoveries, res.points_run);
        EXPECT_TRUE(res.violations.empty()) << res.violationText();
        total_points += res.points_run;
    }
    if (!budgetOverridden()) {
        EXPECT_GE(total_points, 200u)
            << "sweep breadth regressed below the acceptance floor";
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, CrashSweepTest,
    ::testing::Values(WorkloadKind::Stack, WorkloadKind::Queue,
                      WorkloadKind::HashTable, WorkloadKind::SkipList),
    [](const ::testing::TestParamInfo<WorkloadKind> &info) {
        return workloadName(info.param);
    });

/**
 * Tear-prefix fan-out: with a generous per-point tear budget a logged
 * session must enumerate interior 64-byte prefixes of large writes, so
 * the number of executed (verb, tear) points exceeds the number of
 * sampled verb indices.
 */
TEST(CrashTearTest, InteriorPrefixesEnumeratedForLoggedModes)
{
    ExplorerOptions opt;
    opt.kind = WorkloadKind::Stack;
    opt.session = presetRcb();
    opt.max_points = 16;
    opt.max_tears_per_point = 64;
    const ExplorerResult res = exploreCrashPoints(opt);
    EXPECT_TRUE(res.violations.empty()) << res.violationText();
    // 16 indices, each contributing keep-0 and keep-all plus interior
    // prefixes for any multi-chunk write: strictly more points than
    // indices proves the tear enumeration is live.
    EXPECT_GT(res.points_run, 16u);
}

// ---------------------------------------------------------------------
// Log-format recovery matrix: the default sweep above exercises the
// classic encoding; this one re-runs crash + torn-write injection under
// the header-dancing and zero-based encodings, whose commit marks work
// completely differently (rotating in-line mark / presence bytes over a
// pre-zeroed ring). The per-run budget honors ASYMNVM_SWEEP_BUDGET.
// ---------------------------------------------------------------------

class CrashFormatSweepTest
    : public ::testing::TestWithParam<
          std::tuple<LogFormatKind, WorkloadKind>>
{};

TEST_P(CrashFormatSweepTest, RecoversUnderEveryEncoding)
{
    const LogFormatKind fmt = std::get<0>(GetParam());
    for (const PresetParam *preset : {&kPresets[1], &kPresets[3]}) {
        SCOPED_TRACE(preset->name);
        ExplorerOptions opt;
        opt.kind = std::get<1>(GetParam());
        opt.session = preset->make();
        opt.session.log_format = fmt;
        // Half the classic budget per cell: the matrix adds 8 cells on
        // top of the 16 classic ones, so this keeps total sweep time in
        // the same ballpark while still firing torn-write injections.
        opt.max_points = std::max(8u, sweepBudget() / 2);
        const ExplorerResult res = exploreCrashPoints(opt);
        EXPECT_GT(res.points_run, 0u);
        EXPECT_EQ(res.crashes_fired, res.points_run);
        EXPECT_EQ(res.recoveries, res.points_run);
        EXPECT_TRUE(res.violations.empty()) << res.violationText();
    }
}

INSTANTIATE_TEST_SUITE_P(
    NonClassicFormats, CrashFormatSweepTest,
    ::testing::Combine(::testing::Values(LogFormatKind::HeaderDancing,
                                         LogFormatKind::ZeroBased),
                       ::testing::Values(WorkloadKind::Stack,
                                         WorkloadKind::HashTable)),
    [](const ::testing::TestParamInfo<
        std::tuple<LogFormatKind, WorkloadKind>> &info) {
        const char *f =
            std::get<0>(info.param) == LogFormatKind::HeaderDancing
                ? "hd"
                : "zb";
        return std::string(f) + "_" +
               workloadName(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------
// Crash with a WRITE pipeline in flight, swept across verb indices
// (DESIGN.md §14). Each sampled point crashes the back-end somewhere
// inside a stream of pipelined insert/erase windows, then recovers and
// audits per window: every window acknowledged at its drain fence must
// survive in full, unacknowledged ops may fail back to the caller but
// must never corrupt sibling ops or the structure. The point count
// honors ASYMNVM_SWEEP_BUDGET like the serial sweep above.
// ---------------------------------------------------------------------

TEST(PipelineCrashSweepTest, WriteWindowsRecoverAtSampledCrashPoints)
{
    const uint32_t points = std::max(4u, sweepBudget() / 8);
    for (uint32_t pt = 0; pt < points; ++pt) {
        SCOPED_TRACE("crash point " + std::to_string(pt));
        ClusterConfig ccfg;
        ccfg.num_backends = 1;
        ccfg.mirrors_per_backend = 1;
        ccfg.backend.nvm_size = 64ull << 20;
        ccfg.backend.max_frontends = 4;
        ccfg.backend.max_names = 8;
        ccfg.backend.memlog_ring_size = 1ull << 20;
        ccfg.backend.oplog_ring_size = 512ull << 10;
        Cluster cluster(ccfg);
        SessionConfig scfg = SessionConfig::rc(1, 256ull << 10);
        scfg.pipeline_depth = 4;
        auto s = cluster.makeSession(scfg);
        ASSERT_NE(s, nullptr);
        BpTree ds;
        ASSERT_EQ(BpTree::create(*s, 1, "t", &ds), Status::Ok);
        Value v{};
        for (uint64_t k = 1; k <= 240; ++k)
            ASSERT_EQ(ds.insert(k, Value::ofU64(k)), Status::Ok);
        ASSERT_EQ(s->flushAll(), Status::Ok);

        // Spread the sampled crash indices across the window stream so
        // points land in descents, phase-B write-outs and drain fences.
        // The stream below runs until the crash fires, so any index is
        // reachable — every window appends to the op log, which always
        // costs wire verbs even when the whole tree is cached.
        cluster.backend(1)->failure().armCrashAfterVerbs(
            60 + pt * 61, /*seed=*/pt);

        // Windows alternate between native pipelined inserts (fresh
        // keys) and erases (preloaded keys, until they run out),
        // tracking what each drain acknowledged.
        std::map<Key, uint64_t> committed_ins;
        std::vector<Key> committed_del;
        bool crashed = false;
        uint64_t windows_run = 0;
        for (uint64_t w = 0; w < 4096 && !crashed; ++w) {
            windows_run = w + 1;
            std::vector<Status> sts(8);
            std::vector<Key> keys;
            Status batch_st = Status::Ok;
            const bool do_erase = (w % 2 == 1) && (w / 2) * 8 + 8 <= 240;
            if (!do_erase) {
                std::vector<std::pair<Key, Value>> kvs;
                for (uint64_t i = 0; i < 8; ++i) {
                    const Key k = 1000 + w * 8 + i;
                    keys.push_back(k);
                    kvs.emplace_back(k, Value::ofU64(k * 3));
                }
                batch_st = ds.insertMany(kvs, sts.data());
            } else {
                for (uint64_t i = 0; i < 8; ++i)
                    keys.push_back(1 + (w / 2) * 8 + i);
                batch_st = ds.eraseMany(keys, sts.data());
            }
            bool window_ok = ok(batch_st);
            for (const Status st : sts)
                window_ok = window_ok && ok(st);
            // The drain's flush is the window's durability point; an
            // explicit fence confirms it landed before the window is
            // counted as committed.
            if (window_ok && ok(s->flushAll())) {
                if (!do_erase) {
                    for (const Key k : keys)
                        committed_ins[k] = k * 3;
                } else {
                    for (const Key k : keys)
                        committed_del.push_back(k);
                }
            } else {
                crashed = true;
            }
        }
        ASSERT_TRUE(crashed)
            << "crash never fired; raise the verb budget";

        cluster.backend(1)->nvm().crash();
        ASSERT_EQ(cluster.restartBackend(1), Status::Ok);
        s->simulateCrash();
        ASSERT_EQ(s->failover(1, cluster.backend(1)), Status::Ok);
        BpTree reopened;
        ASSERT_EQ(BpTree::open(*s, 1, "t", &reopened), Status::Ok);
        ASSERT_EQ(s->recover(), Status::Ok);

        BpTree audit;
        ASSERT_EQ(BpTree::open(*s, 1, "t", &audit), Status::Ok);
        // Acknowledged windows survive in full.
        for (const auto &[k, val] : committed_ins) {
            ASSERT_EQ(audit.find(k, &v), Status::Ok)
                << "committed insert " << k << " lost";
            EXPECT_EQ(v.asU64(), val) << "committed insert " << k
                                      << " torn";
        }
        for (const Key k : committed_del) {
            EXPECT_EQ(audit.find(k, &v), Status::NotFound)
                << "committed erase of " << k << " resurrected";
        }
        // In-flight inserts are whole-or-absent; in-flight erases leave
        // the key either gone or with its original value.
        for (uint64_t k = 1000; k < 1000 + windows_run * 8; ++k) {
            if (committed_ins.count(k) != 0)
                continue;
            const Status got = audit.find(k, &v);
            if (got == Status::Ok)
                EXPECT_EQ(v.asU64(), k * 3)
                    << "in-flight insert " << k << " torn";
            else
                EXPECT_EQ(got, Status::NotFound);
        }
        for (uint64_t k = 1; k <= 240; ++k) {
            if (std::find(committed_del.begin(), committed_del.end(),
                          k) != committed_del.end())
                continue;
            const Status got = audit.find(k, &v);
            if (got == Status::Ok)
                EXPECT_EQ(v.asU64(), k)
                    << "in-flight erase tore key " << k;
            else
                EXPECT_EQ(got, Status::NotFound);
        }
        // The structure stays usable after the mid-window crash.
        ASSERT_EQ(audit.insert(99999, Value::ofU64(7)), Status::Ok);
        ASSERT_EQ(s->flushAll(), Status::Ok);
        ASSERT_EQ(audit.find(99999, &v), Status::Ok);
        EXPECT_EQ(v.asU64(), 7u);
    }
}

// ---------------------------------------------------------------------
// Op-log ring-wrap hygiene (satellite regression).
// ---------------------------------------------------------------------

BackendConfig
wrapConfig(uint64_t oplog_ring)
{
    BackendConfig cfg;
    cfg.nvm_size = 32ull << 20;
    cfg.max_frontends = 4;
    cfg.max_names = 16;
    cfg.memlog_ring_size = 256ull << 10;
    cfg.oplog_ring_size = oplog_ring;
    cfg.block_size = 1024;
    return cfg;
}

// One stack-push op-log record: OpLogHeader(40) + Value(64) + CRC(4).
constexpr uint64_t kPushRecLen = 108;

/**
 * When the lap tail is smaller than a skip marker (< 4 bytes), the
 * wrap must still overwrite the stale bytes (with zeroes) so a
 * recovery scan cannot misparse leftovers from the previous lap.
 */
TEST(OpLogRingWrapTest, SubMarkerTailIsZeroFilled)
{
    // 9 pushes end at offset 972; a 975-byte ring leaves a 3-byte tail.
    BackendNode be(1, wrapConfig(975));
    FrontendSession s(SessionConfig::r(1));
    ASSERT_EQ(s.connect(&be), Status::Ok);
    Stack st;
    ASSERT_EQ(Stack::create(s, 1, "wrap", &st), Status::Ok);

    // Poison the ring to stand in for stale records of a previous lap.
    const uint64_t base = be.layout().oplogRingOff(0);
    std::vector<uint8_t> junk(975, 0xAA);
    be.nvm().write(base, junk.data(), junk.size());
    be.nvm().persist();

    for (uint64_t i = 0; i < 10; ++i)
        ASSERT_EQ(st.push(Value::ofU64(i)), Status::Ok);
    ASSERT_EQ(s.persistentFence(), Status::Ok);

    uint8_t tail[3] = {0xFF, 0xFF, 0xFF};
    be.nvm().read(base + 9 * kPushRecLen, tail, sizeof(tail));
    EXPECT_EQ(tail[0], 0u);
    EXPECT_EQ(tail[1], 0u);
    EXPECT_EQ(tail[2], 0u);
}

/** A tail with room for a marker gets kSkipMagic, not stale bytes. */
TEST(OpLogRingWrapTest, MarkerWrittenWhenTailFitsOne)
{
    // 9 pushes end at offset 972; a 976-byte ring leaves a 4-byte tail.
    BackendNode be(1, wrapConfig(976));
    FrontendSession s(SessionConfig::r(1));
    ASSERT_EQ(s.connect(&be), Status::Ok);
    Stack st;
    ASSERT_EQ(Stack::create(s, 1, "wrap", &st), Status::Ok);

    const uint64_t base = be.layout().oplogRingOff(0);
    std::vector<uint8_t> junk(976, 0xAA);
    be.nvm().write(base, junk.data(), junk.size());
    be.nvm().persist();

    for (uint64_t i = 0; i < 10; ++i)
        ASSERT_EQ(st.push(Value::ofU64(i)), Status::Ok);
    ASSERT_EQ(s.persistentFence(), Status::Ok);

    uint32_t marker = 0;
    be.nvm().read(base + 9 * kPushRecLen, &marker, sizeof(marker));
    EXPECT_EQ(marker, kSkipMagic);
}

} // namespace
} // namespace asymnvm
