/**
 * @file
 * Robustness tests beyond the per-module suites:
 *  - SWMR thread stress: concurrent writer + readers on shared
 *    structures never observe garbage values;
 *  - replication property: after arbitrary traffic, the mirror replica
 *    is byte-identical to the back-end in every recovery-relevant
 *    region (naming space, bitmap, control blocks, data area);
 *  - operation-log ring wrap-around across crash recovery;
 *  - RPC layer edge cases;
 *  - application-level (SmallBank) randomized crash recovery.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "apps/smallbank.h"
#include "cluster/cluster.h"
#include "common/rand.h"
#include "ds/bptree.h"
#include "ds/hash_table.h"
#include "ds/partitioned.h"
#include "frontend/session.h"
#include "rdma/rpc.h"

namespace asymnvm {
namespace {

BackendConfig
testConfig()
{
    BackendConfig cfg;
    cfg.nvm_size = 32ull << 20;
    cfg.max_frontends = 8;
    cfg.max_names = 16;
    cfg.memlog_ring_size = 512ull << 10;
    cfg.oplog_ring_size = 256ull << 10;
    return cfg;
}

TEST(SwmrStressTest, ReadersNeverObserveGarbage)
{
    BackendNode be(1, testConfig());
    DsOptions shared;
    shared.shared = true;
    shared.max_read_retries = 4096;

    FrontendSession writer(SessionConfig::rcb(1, 256 << 10, 8));
    ASSERT_EQ(writer.connect(&be), Status::Ok);
    HashTable wht;
    ASSERT_EQ(HashTable::create(writer, 1, "stress", 64, &wht, shared),
              Status::Ok);
    // Invariant: table[k] is always k * f for some generation f >= 1.
    for (uint64_t k = 1; k <= 32; ++k)
        ASSERT_EQ(wht.put(k, Value::ofU64(k)), Status::Ok);
    ASSERT_EQ(writer.flushAll(), Status::Ok);

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> bad_reads{0};
    std::vector<std::thread> readers;
    std::vector<std::unique_ptr<FrontendSession>> sessions;
    std::vector<std::unique_ptr<HashTable>> tables;
    for (int r = 0; r < 3; ++r) {
        sessions.push_back(std::make_unique<FrontendSession>(
            SessionConfig::rc(10 + r, 256 << 10)));
        ASSERT_EQ(sessions.back()->connect(&be), Status::Ok);
        tables.push_back(std::make_unique<HashTable>());
        ASSERT_EQ(HashTable::open(*sessions.back(), 1, "stress",
                                  tables.back().get(), shared),
                  Status::Ok);
    }
    for (int r = 0; r < 3; ++r) {
        readers.emplace_back([&, r] {
            Rng rng(100 + r);
            while (!stop.load(std::memory_order_relaxed)) {
                const uint64_t k = 1 + rng.nextBounded(32);
                Value v;
                const Status st = tables[r]->get(k, &v);
                if (st == Status::Conflict)
                    continue; // writer too hot; retry later
                if (st != Status::Ok || v.asU64() % k != 0 ||
                    v.asU64() == 0) {
                    bad_reads.fetch_add(1);
                }
            }
        });
    }
    // Writer: bump every key through generations k, 2k, 3k, ...
    for (uint64_t gen = 2; gen <= 40; ++gen) {
        for (uint64_t k = 1; k <= 32; ++k)
            ASSERT_EQ(wht.put(k, Value::ofU64(k * gen)), Status::Ok);
    }
    ASSERT_EQ(writer.flushAll(), Status::Ok);
    stop.store(true);
    for (auto &t : readers)
        t.join();
    EXPECT_EQ(bad_reads.load(), 0u)
        << "a reader saw a value violating the generation invariant";
}

TEST(ReplicationPropertyTest, MirrorMatchesBackendRecoveryRegions)
{
    BackendConfig cfg = testConfig();
    BackendNode be(1, cfg);
    MirrorNode mirror(50, cfg.nvm_size);
    be.addMirror(&mirror);

    FrontendSession s(SessionConfig::rcb(1, 256 << 10, 16));
    ASSERT_EQ(s.connect(&be), Status::Ok);
    BpTree tree;
    ASSERT_EQ(BpTree::create(s, 1, "rep", &tree), Status::Ok);
    Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
        const Key k = 1 + rng.nextBounded(500);
        if (rng.nextBool(0.75))
            ASSERT_EQ(tree.insert(k, Value::ofU64(rng.next())),
                      Status::Ok);
        else
            (void)tree.erase(k);
    }
    ASSERT_EQ(s.flushAll(), Status::Ok);

    // Every recovery-relevant region must be byte-identical. (The RPC
    // response rings are volatile scratch; ring skip-padding markers are
    // not shipped. Data, naming, bitmap and control state must match.)
    const Layout &lay = be.layout();
    auto compareRegion = [&](uint64_t off, uint64_t len,
                             const char *what) {
        std::vector<uint8_t> a(len), b(len);
        be.nvm().read(off, a.data(), len);
        mirror.device().read(off, b.data(), len);
        EXPECT_EQ(a, b) << what << " diverged";
    };
    compareRegion(lay.super.naming_off,
                  cfg.max_names * sizeof(NamingEntry), "naming space");
    compareRegion(lay.super.bitmap_off, lay.super.bitmap_bytes,
                  "allocation bitmap");
    compareRegion(lay.dataOff(), lay.dataEnd() - lay.dataOff(),
                  "data area");
    for (uint32_t slot = 0; slot < cfg.max_frontends; ++slot)
        compareRegion(lay.logControlOff(slot), sizeof(LogControl),
                      "log control block");
}

TEST(RingWrapTest, OpLogWrapSurvivesBackendRestart)
{
    BackendConfig cfg = testConfig();
    cfg.oplog_ring_size = 8ull << 10; // wraps every ~70 records
    cfg.memlog_ring_size = 64ull << 10;
    auto be = std::make_unique<BackendNode>(1, cfg);
    FrontendSession s(SessionConfig::rcb(1, 256 << 10, /*batch=*/512));
    ASSERT_EQ(s.connect(be.get()), Status::Ok);
    HashTable ht;
    ASSERT_EQ(HashTable::create(s, 1, "wrap", 64, &ht), Status::Ok);
    ASSERT_EQ(s.flushAll(), Status::Ok);
    // Enough un-flushed ops to wrap the op-log ring several times is NOT
    // allowed (the window must fit); instead wrap it across multiple
    // committed batches, then leave a modest uncovered tail.
    for (int round = 0; round < 10; ++round) {
        for (uint64_t k = 0; k < 40; ++k)
            ASSERT_EQ(ht.put(round * 100 + k, Value::ofU64(k)),
                      Status::Ok);
        ASSERT_EQ(s.flushAll(), Status::Ok);
    }
    for (uint64_t k = 0; k < 30; ++k)
        ASSERT_EQ(ht.put(5000 + k, Value::ofU64(k + 1)), Status::Ok);
    // Back-end restarts; the wrapped ring must rescan cleanly.
    auto device = be->device();
    be = std::make_unique<BackendNode>(1, cfg, device);
    s.simulateCrash();
    ASSERT_EQ(s.failover(1, be.get()), Status::Ok);
    HashTable re;
    ASSERT_EQ(HashTable::open(s, 1, "wrap", &re), Status::Ok);
    ASSERT_EQ(s.recover(), Status::Ok);
    HashTable audit;
    ASSERT_EQ(HashTable::open(s, 1, "wrap", &audit), Status::Ok);
    for (uint64_t k = 0; k < 30; ++k) {
        Value v;
        ASSERT_EQ(audit.get(5000 + k, &v), Status::Ok)
            << "uncovered op " << k << " lost across the wrap";
        EXPECT_EQ(v.asU64(), k + 1);
    }
}

TEST(RpcEdgeTest, OversizedPayloadRejected)
{
    BackendNode be(1, testConfig());
    FrontendSession s(SessionConfig::r(1));
    ASSERT_EQ(s.connect(&be), Status::Ok);
    RfpRpc rpc(&s.verbs(), &be, 0);
    std::vector<uint8_t> huge(be.layout().super.rpc_ring_size + 1);
    uint64_t args[1] = {0};
    EXPECT_EQ(rpc.call(RpcOp::Retire, args, huge, nullptr),
              Status::InvalidArgument);
}

TEST(RpcEdgeTest, UnknownOpReturnsInvalidArgument)
{
    BackendNode be(1, testConfig());
    FrontendSession s(SessionConfig::r(1));
    ASSERT_EQ(s.connect(&be), Status::Ok);
    RfpRpc rpc(&s.verbs(), &be, 0);
    uint64_t args[1] = {0};
    uint64_t rets[4];
    EXPECT_EQ(rpc.call(static_cast<RpcOp>(77), args, {}, rets),
              Status::InvalidArgument);
}

TEST(RpcEdgeTest, GarbageRequestRingDetected)
{
    BackendNode be(1, testConfig());
    uint32_t slot = 0;
    ASSERT_EQ(be.registerFrontend(9, &slot), Status::Ok);
    uint8_t junk[64];
    std::memset(junk, 0xee, sizeof(junk));
    be.nvm().write(be.layout().rpcReqRingOff(slot), junk, sizeof(junk));
    be.nvm().persist();
    EXPECT_EQ(be.handleRpc(slot), Status::Corruption);
}

TEST(PartitionedFailoverTest, OneBackendOfSeveralFailsOver)
{
    ClusterConfig ccfg;
    ccfg.num_backends = 3;
    ccfg.mirrors_per_backend = 1;
    ccfg.backend = testConfig();
    Cluster cluster(ccfg);
    auto s = cluster.makeSession(SessionConfig::rcb(1, 256 << 10, 8));
    ASSERT_NE(s, nullptr);

    const auto ids = cluster.backendIds();
    Partitioned<BpTree> part;
    ASSERT_EQ(Partitioned<BpTree>::create(
                  *s, ids, "pf", 3, &part,
                  [](FrontendSession &sess, NodeId be,
                     std::string_view name, BpTree *out) {
                      return BpTree::create(sess, be, name, out);
                  }),
              Status::Ok);
    for (uint64_t k = 1; k <= 300; ++k)
        ASSERT_EQ(part.insert(k, Value::ofU64(k)), Status::Ok);
    ASSERT_EQ(s->flushAll(), Status::Ok);

    // Kill back-end 2 permanently; its mirror takes over.
    cluster.crashBackendTransient(2);
    ASSERT_EQ(cluster.failBackendPermanently(2, s->clock().now()),
              Status::Ok);
    ASSERT_EQ(s->failover(2, cluster.backend(2)), Status::Ok);

    // Partitions must be re-opened (handles bind to the new node).
    Partitioned<BpTree> reopened;
    ASSERT_EQ(Partitioned<BpTree>::open(
                  *s, ids, "pf", &reopened,
                  [](FrontendSession &sess, NodeId be,
                     std::string_view name, BpTree *out) {
                      return BpTree::open(sess, be, name, out);
                  }),
              Status::Ok);
    for (uint64_t k = 1; k <= 300; ++k) {
        Value v;
        ASSERT_EQ(reopened.find(k, &v), Status::Ok) << "key " << k;
        EXPECT_EQ(v.asU64(), k);
    }
}

TEST(AppCrashTest, SmallBankConservesMoneyAcrossRandomCrash)
{
    for (uint64_t seed = 1; seed <= 4; ++seed) {
        Cluster cluster([&] {
            ClusterConfig c;
            c.num_backends = 1;
            c.mirrors_per_backend = 1;
            c.backend = testConfig();
            return c;
        }());
        auto s = cluster.makeSession(
            SessionConfig::rcb(20 + seed, 256 << 10, 32));
        ASSERT_NE(s, nullptr);
        SmallBank bank;
        ASSERT_EQ(SmallBank::create(*s, 1, 200, &bank), Status::Ok);
        int64_t opening = 0;
        ASSERT_EQ(bank.totalAssets(&opening), Status::Ok);

        Rng rng(seed);
        cluster.backend(1)->failure().armCrashAfterVerbs(
            300 + rng.nextBounded(1500), seed);
        // Transfer-only traffic (fixed amount 2): assets are invariant
        // up to the framework's atomicity granularity — recovery is
        // per *operation* (per op log), so the single transaction in
        // flight at the crash may be half-applied: at most one debit
        // of 2 can go missing.
        bool crashed = false;
        for (int i = 0; i < 20000 && !crashed; ++i) {
            const uint64_t a = 1 + rng.nextBounded(200);
            uint64_t b = 1 + rng.nextBounded(200);
            if (a == b)
                b = b % 200 + 1;
            crashed = bank.sendPayment(a, b, 2) == Status::BackendCrashed;
        }
        ASSERT_TRUE(crashed) << "seed " << seed;

        cluster.backend(1)->nvm().crash();
        ASSERT_EQ(cluster.restartBackend(1), Status::Ok);
        s->simulateCrash();
        ASSERT_EQ(s->failover(1, cluster.backend(1)), Status::Ok);
        SmallBank re;
        ASSERT_EQ(SmallBank::open(*s, 1, &re), Status::Ok);
        ASSERT_EQ(s->recover(), Status::Ok);
        SmallBank audit;
        ASSERT_EQ(SmallBank::open(*s, 1, &audit), Status::Ok);
        int64_t closing = 0;
        ASSERT_EQ(audit.totalAssets(&closing), Status::Ok);
        EXPECT_GE(closing, opening - 2)
            << "lost more than the in-flight debit (seed " << seed << ")";
        EXPECT_LE(closing, opening)
            << "money invented across crash (seed " << seed << ")";
    }
}

} // namespace
} // namespace asymnvm
