/**
 * @file
 * Resource-limit and exhaustion tests: naming-table and NVM exhaustion
 * surface as clean status codes (not corruption), front-end slots run
 * out gracefully, memory cycles through erase/insert without leaking,
 * and promotion without a mirror is refused.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "ds/bptree.h"
#include "ds/hash_table.h"
#include "frontend/session.h"

namespace asymnvm {
namespace {

BackendConfig
tinyConfig()
{
    BackendConfig cfg;
    cfg.nvm_size = 8ull << 20;
    cfg.max_frontends = 2;
    cfg.max_names = 4;
    cfg.memlog_ring_size = 256ull << 10;
    cfg.oplog_ring_size = 128ull << 10;
    return cfg;
}

TEST(LimitsTest, NamingTableExhaustion)
{
    BackendNode be(1, tinyConfig());
    FrontendSession s(SessionConfig::rcb(1, 64 << 10, 8));
    ASSERT_EQ(s.connect(&be), Status::Ok);
    DsId id;
    for (int i = 0; i < 4; ++i)
        ASSERT_EQ(s.createDs(1, "name" + std::to_string(i), DsType::Bst,
                             &id),
                  Status::Ok);
    EXPECT_EQ(s.createDs(1, "one-too-many", DsType::Bst, &id),
              Status::OutOfMemory);
    // Existing names still resolve.
    DsType type;
    EXPECT_EQ(s.openDs(1, "name2", &id, &type), Status::Ok);
}

TEST(LimitsTest, FrontendSlotsExhaustGracefully)
{
    BackendNode be(1, tinyConfig());
    FrontendSession a(SessionConfig::r(1)), b(SessionConfig::r(2)),
        c(SessionConfig::r(3));
    ASSERT_EQ(a.connect(&be), Status::Ok);
    ASSERT_EQ(b.connect(&be), Status::Ok);
    EXPECT_EQ(c.connect(&be), Status::Unavailable);
    // Releasing a slot admits the waiting session.
    a.disconnect(&be);
    EXPECT_EQ(c.connect(&be), Status::Ok);
}

TEST(LimitsTest, DataAreaExhaustionIsCleanAndRecoverable)
{
    BackendNode be(1, tinyConfig());
    FrontendSession s(SessionConfig::rcb(1, 64 << 10, 16));
    ASSERT_EQ(s.connect(&be), Status::Ok);
    BpTree tree;
    ASSERT_EQ(BpTree::create(s, 1, "fill", &tree), Status::Ok);
    // Fill until the device runs out.
    uint64_t inserted = 0;
    Status st = Status::Ok;
    for (uint64_t k = 1; k <= 1000000; ++k) {
        st = tree.insert(k, Value::ofU64(k));
        if (!ok(st))
            break;
        ++inserted;
    }
    EXPECT_EQ(st, Status::OutOfMemory);
    EXPECT_GT(inserted, 1000u);
    // Everything inserted before the exhaustion is intact and readable.
    (void)s.flushAll();
    for (uint64_t k = 1; k <= inserted; k += inserted / 50 + 1) {
        Value v;
        ASSERT_EQ(tree.find(k, &v), Status::Ok) << "key " << k;
    }
    // Freeing makes room again.
    for (uint64_t k = 1; k <= inserted / 2; ++k)
        ASSERT_EQ(tree.erase(k), Status::Ok);
    ASSERT_EQ(s.flushAll(), Status::Ok);
    EXPECT_EQ(tree.insert(2000000, Value::ofU64(1)), Status::Ok);
    ASSERT_EQ(s.flushAll(), Status::Ok);
}

TEST(LimitsTest, EraseInsertCyclesDoNotLeak)
{
    BackendNode be(1, tinyConfig());
    FrontendSession s(SessionConfig::rcb(1, 64 << 10, 16));
    ASSERT_EQ(s.connect(&be), Status::Ok);
    HashTable ht;
    ASSERT_EQ(HashTable::create(s, 1, "cycle", 128, &ht), Status::Ok);
    ASSERT_EQ(s.flushAll(), Status::Ok);
    const uint64_t free_before = be.allocator().freeBlocks();
    for (int cycle = 0; cycle < 20; ++cycle) {
        for (uint64_t k = 1; k <= 200; ++k)
            ASSERT_EQ(ht.put(k, Value::ofU64(k)), Status::Ok);
        for (uint64_t k = 1; k <= 200; ++k)
            ASSERT_EQ(ht.erase(k), Status::Ok);
        ASSERT_EQ(s.flushAll(), Status::Ok);
    }
    const uint64_t free_after = be.allocator().freeBlocks();
    // Steady state may hold a few slabs (reclaim threshold); no drift.
    EXPECT_GE(free_after + 64, free_before)
        << "blocks leaked across erase/insert cycles";
}

TEST(LimitsTest, PromotionWithoutMirrorRefused)
{
    ClusterConfig ccfg;
    ccfg.num_backends = 1;
    ccfg.mirrors_per_backend = 0;
    ccfg.backend = tinyConfig();
    Cluster cluster(ccfg);
    cluster.crashBackendTransient(1);
    EXPECT_EQ(cluster.failBackendPermanently(1, 0), Status::Unavailable);
}

TEST(LimitsTest, MaxOffsetKeysRoundTripThroughLogs)
{
    // RemotePtr offsets are 48-bit; keys are full 64-bit. Exercise the
    // extremes through the whole pipeline.
    BackendNode be(1, tinyConfig());
    FrontendSession s(SessionConfig::rcb(1, 64 << 10, 4));
    ASSERT_EQ(s.connect(&be), Status::Ok);
    HashTable ht;
    ASSERT_EQ(HashTable::create(s, 1, "extreme", 16, &ht), Status::Ok);
    const Key extremes[] = {1, UINT64_MAX, UINT64_MAX - 1,
                            1ull << 63, 0x8000000000000001ull};
    for (Key k : extremes)
        ASSERT_EQ(ht.put(k, Value::ofU64(~k)), Status::Ok);
    ASSERT_EQ(s.flushAll(), Status::Ok);
    for (Key k : extremes) {
        Value v;
        ASSERT_EQ(ht.get(k, &v), Status::Ok);
        EXPECT_EQ(v.asU64(), ~k);
    }
}

TEST(LimitsTest, SessionSurvivesDoubleConnectAndDisconnect)
{
    BackendNode be(1, tinyConfig());
    FrontendSession s(SessionConfig::r(9));
    ASSERT_EQ(s.connect(&be), Status::Ok);
    // Reconnecting the same session id reattaches the same slot.
    ASSERT_EQ(s.connect(&be), Status::Ok);
    s.disconnect(&be);
    s.disconnect(&be); // idempotent
    // After disconnect, operations fail cleanly.
    RemotePtr p;
    EXPECT_EQ(s.alloc(1, 64, &p), Status::Unavailable);
}

} // namespace
} // namespace asymnvm
