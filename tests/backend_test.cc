/**
 * @file
 * Integration tests for the back-end node: layout, the persistent-bitmap
 * slab allocator, the naming space, log append + replay, tail validation,
 * restart recovery (Case 3), mirror replication and promotion (Case 4),
 * and lazy GC epoch bumps.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "backend/backend_node.h"
#include "backend/log_format.h"
#include "rdma/rpc.h"

namespace asymnvm {
namespace {

BackendConfig
smallConfig()
{
    BackendConfig cfg;
    cfg.nvm_size = 16ull << 20;
    cfg.max_frontends = 4;
    cfg.max_names = 16;
    cfg.memlog_ring_size = 64ull << 10;
    cfg.oplog_ring_size = 32ull << 10;
    cfg.block_size = 1024;
    return cfg;
}

TEST(LayoutTest, RegionsAreDisjointAndOrdered)
{
    const Layout lay = Layout::compute(smallConfig());
    const SuperBlock &sb = lay.super;
    EXPECT_LT(sizeof(SuperBlock), sb.naming_off);
    EXPECT_LT(sb.naming_off, sb.felog_off);
    EXPECT_LT(sb.felog_off, sb.bitmap_off);
    EXPECT_LT(sb.bitmap_off, sb.data_off);
    EXPECT_LE(lay.dataEnd(), smallConfig().nvm_size);
    EXPECT_GT(sb.data_blocks, 1000u);
}

TEST(LayoutTest, TooSmallDeviceRejected)
{
    BackendConfig cfg = smallConfig();
    cfg.nvm_size = 300ull << 10; // smaller than the metadata needs
    EXPECT_THROW(Layout::compute(cfg), std::invalid_argument);
}

TEST(BackendAllocTest, AllocFreeRoundTrip)
{
    BackendNode be(1, smallConfig());
    uint64_t off = 0;
    ASSERT_EQ(be.rpcAllocBlocks(4, &off), Status::Ok);
    EXPECT_GE(off, be.layout().dataOff());
    EXPECT_TRUE(be.allocator().isAllocated(off));
    ASSERT_EQ(be.rpcFreeBlocks(off, 4), Status::Ok);
    EXPECT_FALSE(be.allocator().isAllocated(off));
}

TEST(BackendAllocTest, DistinctAllocationsDoNotOverlap)
{
    BackendNode be(1, smallConfig());
    uint64_t a = 0, b = 0;
    ASSERT_EQ(be.rpcAllocBlocks(2, &a), Status::Ok);
    ASSERT_EQ(be.rpcAllocBlocks(2, &b), Status::Ok);
    const uint64_t bs = be.config().block_size;
    EXPECT_TRUE(a + 2 * bs <= b || b + 2 * bs <= a);
}

TEST(BackendAllocTest, DoubleFreeRejected)
{
    BackendNode be(1, smallConfig());
    uint64_t off = 0;
    ASSERT_EQ(be.rpcAllocBlocks(1, &off), Status::Ok);
    ASSERT_EQ(be.rpcFreeBlocks(off, 1), Status::Ok);
    EXPECT_EQ(be.rpcFreeBlocks(off, 1), Status::InvalidArgument);
}

TEST(BackendAllocTest, ExhaustionReturnsOutOfMemory)
{
    BackendNode be(1, smallConfig());
    uint64_t off = 0;
    EXPECT_EQ(be.rpcAllocBlocks(be.allocator().totalBlocks() + 1, &off),
              Status::OutOfMemory);
}

TEST(BackendAllocTest, BitmapSurvivesRestart)
{
    auto cfg = smallConfig();
    uint64_t off = 0;
    std::shared_ptr<NvmDevice> dev;
    {
        BackendNode be(1, cfg);
        ASSERT_EQ(be.rpcAllocBlocks(3, &off), Status::Ok);
        dev = be.device();
    }
    BackendNode be2(1, cfg, dev);
    EXPECT_TRUE(be2.allocator().isAllocated(off));
    // The recovered allocator must not hand the same blocks out again.
    uint64_t off2 = 0;
    ASSERT_EQ(be2.rpcAllocBlocks(3, &off2), Status::Ok);
    EXPECT_NE(off, off2);
}

TEST(NamingTest, CreateLookupRoundTrip)
{
    BackendNode be(1, smallConfig());
    DsId id = 0;
    ASSERT_EQ(be.rpcCreateName(0x1234, DsType::BpTree, &id), Status::Ok);
    DsId found = 99;
    DsType type = DsType::None;
    ASSERT_EQ(be.rpcLookupName(0x1234, &found, &type), Status::Ok);
    EXPECT_EQ(found, id);
    EXPECT_EQ(type, DsType::BpTree);
}

TEST(NamingTest, DuplicateNameRejected)
{
    BackendNode be(1, smallConfig());
    DsId id = 0;
    ASSERT_EQ(be.rpcCreateName(0x77, DsType::Stack, &id), Status::Ok);
    EXPECT_EQ(be.rpcCreateName(0x77, DsType::Queue, &id), Status::Exists);
}

TEST(NamingTest, UnknownNameNotFound)
{
    BackendNode be(1, smallConfig());
    DsId id = 0;
    EXPECT_EQ(be.rpcLookupName(0x9999, &id, nullptr), Status::NotFound);
}

TEST(NamingTest, NamesSurviveRestart)
{
    auto cfg = smallConfig();
    std::shared_ptr<NvmDevice> dev;
    DsId id = 0;
    {
        BackendNode be(1, cfg);
        ASSERT_EQ(be.rpcCreateName(0xabc, DsType::SkipList, &id),
                  Status::Ok);
        dev = be.device();
    }
    BackendNode be2(1, cfg, dev);
    DsId found = 0;
    DsType type = DsType::None;
    ASSERT_EQ(be2.rpcLookupName(0xabc, &found, &type), Status::Ok);
    EXPECT_EQ(found, id);
    EXPECT_EQ(type, DsType::SkipList);
    EXPECT_EQ(be2.nameCount(), 1u);
}

TEST(RegistrationTest, SlotsAreStablePerSession)
{
    BackendNode be(1, smallConfig());
    uint32_t s1 = 99, s2 = 99, s1again = 99;
    ASSERT_EQ(be.registerFrontend(111, &s1), Status::Ok);
    ASSERT_EQ(be.registerFrontend(222, &s2), Status::Ok);
    EXPECT_NE(s1, s2);
    ASSERT_EQ(be.registerFrontend(111, &s1again), Status::Ok);
    EXPECT_EQ(s1, s1again) << "reconnect must reattach the same slot";
}

TEST(RegistrationTest, SlotsExhaust)
{
    BackendNode be(1, smallConfig());
    uint32_t s = 0;
    for (uint64_t i = 1; i <= smallConfig().max_frontends; ++i)
        ASSERT_EQ(be.registerFrontend(i, &s), Status::Ok);
    EXPECT_EQ(be.registerFrontend(1000, &s), Status::Unavailable);
}

// Helper: append a tx directly into the ring like a front-end would.
struct RawAppender
{
    BackendNode *be;
    uint32_t slot;
    uint64_t memlog_head = 0;
    uint64_t oplog_head = 0;

    Status appendTx(DsId ds, uint64_t lpn, uint64_t covered_opn,
                    std::vector<std::pair<uint64_t, uint64_t>> writes)
    {
        TxBuilder b;
        b.reset(lpn, ds, covered_opn);
        for (auto &[addr, val] : writes)
            b.addInline(RemotePtr(be->id(), addr), &val, 8);
        const auto bytes = b.finish();
        const Layout &lay = be->layout();
        const uint64_t base = lay.memlogRingOff(slot);
        const uint64_t pos = memlog_head;
        be->nvm().write(base + pos % lay.super.memlog_ring_size,
                        bytes.data(), bytes.size());
        be->nvm().persist();
        memlog_head += bytes.size();
        return be->onTxAppended(slot, pos,
                                static_cast<uint32_t>(bytes.size()), 0);
    }

    Status appendOp(DsId ds, uint64_t opn, OpType op, Key key,
                    uint64_t value)
    {
        const auto rec = encodeOpLog(op, ds, opn, key, &value, 8);
        const Layout &lay = be->layout();
        const uint64_t base = lay.oplogRingOff(slot);
        const uint64_t pos = oplog_head;
        be->nvm().write(base + pos % lay.super.oplog_ring_size,
                        rec.data(), rec.size());
        be->nvm().persist();
        oplog_head += rec.size();
        return be->onOpLogAppended(slot, pos,
                                   static_cast<uint32_t>(rec.size()), 0);
    }
};

TEST(ReplayTest, TxUpdatesDataArea)
{
    BackendNode be(1, smallConfig());
    uint32_t slot = 0;
    ASSERT_EQ(be.registerFrontend(5, &slot), Status::Ok);
    uint64_t dst = 0;
    ASSERT_EQ(be.rpcAllocBlocks(1, &dst), Status::Ok);

    RawAppender app{&be, slot};
    ASSERT_EQ(app.appendTx(0, 0, 0, {{dst, 0xfeed}, {dst + 8, 0xface}}),
              Status::Ok);
    EXPECT_EQ(be.nvm().read64(dst), 0xfeedu);
    EXPECT_EQ(be.nvm().read64(dst + 8), 0xfaceu);
    EXPECT_EQ(be.replayedTxs(), 1u);
    EXPECT_EQ(be.replayedEntries(), 2u);
}

TEST(ReplayTest, SeqNumBracketsLockBasedReplay)
{
    BackendNode be(1, smallConfig());
    uint32_t slot = 0;
    ASSERT_EQ(be.registerFrontend(5, &slot), Status::Ok);
    DsId ds = 0;
    ASSERT_EQ(be.rpcCreateName(0x1, DsType::Bst, &ds), Status::Ok);
    uint64_t dst = 0;
    ASSERT_EQ(be.rpcAllocBlocks(1, &dst), Status::Ok);

    EXPECT_EQ(be.namingEntry(ds).seq_num, 0u);
    RawAppender app{&be, slot};
    ASSERT_EQ(app.appendTx(ds, 0, 0, {{dst, 1}}), Status::Ok);
    // SN went odd during replay and even after: net +2, and it is even.
    EXPECT_EQ(be.namingEntry(ds).seq_num, 2u);
}

TEST(ReplayTest, MultiVersionTypesDoNotBumpSeqNum)
{
    BackendNode be(1, smallConfig());
    uint32_t slot = 0;
    ASSERT_EQ(be.registerFrontend(5, &slot), Status::Ok);
    DsId ds = 0;
    ASSERT_EQ(be.rpcCreateName(0x2, DsType::MvBst, &ds), Status::Ok);
    uint64_t dst = 0;
    ASSERT_EQ(be.rpcAllocBlocks(1, &dst), Status::Ok);

    RawAppender app{&be, slot};
    ASSERT_EQ(app.appendTx(ds, 0, 0, {{dst, 1}}), Status::Ok);
    EXPECT_EQ(be.namingEntry(ds).seq_num, 0u);
}

TEST(ReplayTest, TornTxRejectedAndNotReplayed)
{
    BackendNode be(1, smallConfig());
    uint32_t slot = 0;
    ASSERT_EQ(be.registerFrontend(5, &slot), Status::Ok);
    uint64_t dst = 0;
    ASSERT_EQ(be.rpcAllocBlocks(1, &dst), Status::Ok);

    TxBuilder b;
    b.reset(0, 0, 0);
    const uint64_t v = 0xbad;
    b.addInline(RemotePtr(1, dst), &v, 8);
    const auto bytes = b.finish();
    // Write only a prefix (torn RDMA_Write).
    const Layout &lay = be.layout();
    be.nvm().write(lay.memlogRingOff(slot), bytes.data(),
                   bytes.size() - 5);
    be.nvm().persist();
    EXPECT_EQ(be.onTxAppended(slot, 0,
                              static_cast<uint32_t>(bytes.size()), 0),
              Status::Corruption);
    EXPECT_EQ(be.nvm().read64(dst), 0u) << "torn tx must not replay";
    EXPECT_EQ(be.validateTail(slot), TxValidation::Torn);
}

TEST(ReplayTest, OpLogWindowShrinksWhenCovered)
{
    BackendNode be(1, smallConfig());
    uint32_t slot = 0;
    ASSERT_EQ(be.registerFrontend(5, &slot), Status::Ok);
    uint64_t dst = 0;
    ASSERT_EQ(be.rpcAllocBlocks(1, &dst), Status::Ok);

    RawAppender app{&be, slot};
    ASSERT_EQ(app.appendOp(0, 0, OpType::Insert, 1, 10), Status::Ok);
    ASSERT_EQ(app.appendOp(0, 1, OpType::Insert, 2, 20), Status::Ok);
    EXPECT_EQ(be.uncoveredOps(slot).size(), 2u);

    ASSERT_EQ(app.appendTx(0, 0, /*covered_opn=*/2, {{dst, 1}}),
              Status::Ok);
    EXPECT_EQ(be.uncoveredOps(slot).size(), 0u);
}

TEST(RecoveryTest, CleanTailRollsForwardOnRestart)
{
    auto cfg = smallConfig();
    std::shared_ptr<NvmDevice> dev;
    uint64_t dst = 0;
    {
        BackendNode be(1, cfg);
        uint32_t slot = 0;
        ASSERT_EQ(be.registerFrontend(5, &slot), Status::Ok);
        ASSERT_EQ(be.rpcAllocBlocks(1, &dst), Status::Ok);
        // Append tx bytes WITHOUT notifying the backend: simulates a
        // crash between the RDMA_Write and the ack (Case 3.a).
        TxBuilder b;
        b.reset(0, 0, 0);
        const uint64_t v = 0x11aa;
        b.addInline(RemotePtr(1, dst), &v, 8);
        const auto bytes = b.finish();
        be.nvm().write(be.layout().memlogRingOff(slot), bytes.data(),
                       bytes.size());
        be.nvm().persist();
        dev = be.device();
    }
    BackendNode be2(1, cfg, dev);
    EXPECT_EQ(be2.nvm().read64(dst), 0x11aau)
        << "restart must roll the persisted tail transaction forward";
    EXPECT_EQ(be2.readControl(0).lpn, 1u);
}

TEST(RecoveryTest, TornTailIgnoredOnRestart)
{
    auto cfg = smallConfig();
    std::shared_ptr<NvmDevice> dev;
    uint64_t dst = 0;
    {
        BackendNode be(1, cfg);
        uint32_t slot = 0;
        ASSERT_EQ(be.registerFrontend(5, &slot), Status::Ok);
        ASSERT_EQ(be.rpcAllocBlocks(1, &dst), Status::Ok);
        TxBuilder b;
        b.reset(0, 0, 0);
        const uint64_t v = 0x22bb;
        b.addInline(RemotePtr(1, dst), &v, 8);
        const auto bytes = b.finish();
        be.nvm().write(be.layout().memlogRingOff(slot), bytes.data(),
                       bytes.size() - 3); // torn
        be.nvm().persist();
        dev = be.device();
    }
    BackendNode be2(1, cfg, dev);
    EXPECT_EQ(be2.nvm().read64(dst), 0u);
    EXPECT_EQ(be2.readControl(0).lpn, 0u);
}

TEST(RecoveryTest, OpLogTailRollsForwardOnRestart)
{
    auto cfg = smallConfig();
    std::shared_ptr<NvmDevice> dev;
    {
        BackendNode be(1, cfg);
        uint32_t slot = 0;
        ASSERT_EQ(be.registerFrontend(5, &slot), Status::Ok);
        // Op log lands, ack lost.
        const uint64_t val = 42;
        const auto rec = encodeOpLog(OpType::Insert, 0, 0, 7, &val, 8);
        be.nvm().write(be.layout().oplogRingOff(slot), rec.data(),
                       rec.size());
        be.nvm().persist();
        dev = be.device();
    }
    BackendNode be2(1, cfg, dev);
    const auto ops = be2.uncoveredOps(0);
    ASSERT_EQ(ops.size(), 1u);
    EXPECT_EQ(ops[0].key, 7u);
    EXPECT_EQ(be2.readControl(0).opn, 1u);
}

TEST(RecoveryTest, EpochAdvancesOnEveryRestart)
{
    auto cfg = smallConfig();
    std::shared_ptr<NvmDevice> dev;
    uint64_t epoch1 = 0;
    {
        BackendNode be(1, cfg);
        epoch1 = be.epoch();
        dev = be.device();
    }
    BackendNode be2(1, cfg, dev);
    EXPECT_GT(be2.epoch(), epoch1);
}

TEST(StaleLockTest, ReleasedViaLockAheadRecord)
{
    BackendNode be(1, smallConfig());
    uint32_t slot = 0;
    ASSERT_EQ(be.registerFrontend(5, &slot), Status::Ok);
    DsId ds = 0;
    ASSERT_EQ(be.rpcCreateName(0x3, DsType::Bst, &ds), Status::Ok);

    // Simulate the crashed front-end: lock word set, lock-ahead written.
    const uint64_t lock_off =
        be.layout().namingEntryOff(ds) + naming_field::kWriterLock;
    be.nvm().write64Atomic(lock_off, slot + 1);
    be.nvm().write64Atomic(be.layout().logControlOff(slot) +
                               offsetof(LogControl, lock_ahead),
                           ds + 1);
    be.releaseStaleLocks(slot);
    EXPECT_EQ(be.nvm().read64(lock_off), 0u);
}

TEST(StaleLockTest, ForeignLockNotTouched)
{
    BackendNode be(1, smallConfig());
    uint32_t s1 = 0, s2 = 0;
    ASSERT_EQ(be.registerFrontend(5, &s1), Status::Ok);
    ASSERT_EQ(be.registerFrontend(6, &s2), Status::Ok);
    DsId ds = 0;
    ASSERT_EQ(be.rpcCreateName(0x4, DsType::Bst, &ds), Status::Ok);

    const uint64_t lock_off =
        be.layout().namingEntryOff(ds) + naming_field::kWriterLock;
    be.nvm().write64Atomic(lock_off, s2 + 1); // held by session 6
    be.nvm().write64Atomic(be.layout().logControlOff(s1) +
                               offsetof(LogControl, lock_ahead),
                           ds + 1); // stale record from session 5
    be.releaseStaleLocks(s1);
    EXPECT_EQ(be.nvm().read64(lock_off), s2 + 1u)
        << "a lock now held by another session must survive";
}

TEST(GcTest, EpochBumpsAfterDelay)
{
    BackendNode be(1, smallConfig());
    DsId ds = 0;
    ASSERT_EQ(be.rpcCreateName(0x5, DsType::MvBst, &ds), Status::Ok);
    std::vector<std::pair<uint64_t, uint64_t>> regions = {{4096, 1}};
    ASSERT_EQ(be.rpcRetire(ds, regions, /*now=*/1000), Status::Ok);
    EXPECT_EQ(be.namingEntry(ds).gc_epoch, 0u);

    be.processGc(1000 + be.config().gc_delay_ns - 1);
    EXPECT_EQ(be.namingEntry(ds).gc_epoch, 0u) << "GC must respect n+l";
    be.processGc(1000 + be.config().gc_delay_ns + 1);
    EXPECT_EQ(be.namingEntry(ds).gc_epoch, 1u);
}

TEST(MirrorTest, ReplicaTracksBackendWrites)
{
    BackendNode be(1, smallConfig());
    MirrorNode mirror(50, smallConfig().nvm_size);
    be.addMirror(&mirror);

    uint32_t slot = 0;
    ASSERT_EQ(be.registerFrontend(5, &slot), Status::Ok);
    uint64_t dst = 0;
    ASSERT_EQ(be.rpcAllocBlocks(1, &dst), Status::Ok);
    RawAppender app{&be, slot};
    // The mirror is notified through onTxAppended replication.
    ASSERT_EQ(app.appendTx(0, 0, 0, {{dst, 0x5151}}), Status::Ok);
    EXPECT_EQ(mirror.device().read64(dst), 0x5151u);
    EXPECT_GT(mirror.bytesReplicated(), 0u);
}

TEST(MirrorTest, PromotionYieldsWorkingBackend)
{
    auto cfg = smallConfig();
    BackendNode be(1, cfg);
    MirrorNode mirror(50, cfg.nvm_size);
    be.addMirror(&mirror);

    uint32_t slot = 0;
    ASSERT_EQ(be.registerFrontend(5, &slot), Status::Ok);
    DsId ds = 0;
    ASSERT_EQ(be.rpcCreateName(0x6, DsType::Queue, &ds), Status::Ok);
    uint64_t dst = 0;
    ASSERT_EQ(be.rpcAllocBlocks(1, &dst), Status::Ok);
    RawAppender app{&be, slot};
    ASSERT_EQ(app.appendTx(ds, 0, 0, {{dst, 0x7777}}), Status::Ok);

    // Case 4: promote the mirror — same node id, replica device.
    BackendNode promoted(1, cfg, mirror.releaseDevice());
    EXPECT_EQ(promoted.nvm().read64(dst), 0x7777u);
    DsId found = 0;
    EXPECT_EQ(promoted.rpcLookupName(0x6, &found, nullptr), Status::Ok);
    EXPECT_EQ(found, ds);
    EXPECT_TRUE(promoted.allocator().isAllocated(dst));
}

TEST(RpcRingTest, HandleRpcServesAllocationViaRings)
{
    BackendNode be(1, smallConfig());
    uint32_t slot = 0;
    ASSERT_EQ(be.registerFrontend(5, &slot), Status::Ok);

    RpcRequest req{};
    req.magic = kRpcReqMagic;
    req.op = static_cast<uint32_t>(RpcOp::AllocBlocks);
    req.seq = 1;
    req.args[0] = 2;
    req.checksum = rpcRequestChecksum(req, {});
    be.nvm().write(be.layout().rpcReqRingOff(slot), &req, sizeof(req));
    be.nvm().persist();
    ASSERT_EQ(be.handleRpc(slot), Status::Ok);

    RpcResponse resp{};
    be.nvm().read(be.layout().rpcRespRingOff(slot), &resp, sizeof(resp));
    EXPECT_EQ(resp.magic, kRpcRespMagic);
    EXPECT_EQ(resp.seq, 1u);
    EXPECT_EQ(static_cast<Status>(resp.status), Status::Ok);
    EXPECT_TRUE(be.allocator().isAllocated(resp.rets[0]));
}

} // namespace
} // namespace asymnvm
