/**
 * @file
 * Edge-case tests across the data structures and the session API that
 * the main suites do not reach: duplicate keys in vector inserts,
 * annulment interacting with crash recovery, GC-epoch races against MV
 * readers, allocator fragmentation endurance, TATP recovery, and the
 * persistent-fence read semantics of Section 4.1.
 */

#include <gtest/gtest.h>

#include <map>

#include "apps/tatp.h"
#include "backend/backend_node.h"
#include "common/rand.h"
#include "ds/bptree.h"
#include "ds/mv_bst.h"
#include "ds/queue.h"
#include "ds/stack.h"
#include "frontend/session.h"

namespace asymnvm {
namespace {

BackendConfig
testConfig()
{
    BackendConfig cfg;
    cfg.nvm_size = 32ull << 20;
    cfg.max_frontends = 4;
    cfg.max_names = 32;
    cfg.memlog_ring_size = 1ull << 20;
    cfg.oplog_ring_size = 1ull << 20;
    return cfg;
}

TEST(DsEdgeTest, VectorInsertWithDuplicateKeysLastWins)
{
    BackendNode be(1, testConfig());
    FrontendSession s(SessionConfig::rcb(1, 1 << 20, 64));
    ASSERT_EQ(s.connect(&be), Status::Ok);
    BpTree tree;
    ASSERT_EQ(BpTree::create(s, 1, "dup", &tree), Status::Ok);

    std::vector<std::pair<Key, Value>> batch;
    for (uint64_t i = 0; i < 50; ++i)
        batch.emplace_back(7, Value::ofU64(i)); // same key, 50 times
    batch.emplace_back(9, Value::ofU64(100));
    ASSERT_EQ(tree.insertBatch(batch), Status::Ok);
    ASSERT_EQ(s.flushAll(), Status::Ok);
    EXPECT_EQ(tree.size(), 2u);
    Value v;
    ASSERT_EQ(tree.find(7, &v), Status::Ok);
    // std::sort is not stable, but every duplicate carries a distinct
    // value; whichever landed last must be one of the batch's values.
    EXPECT_LT(v.asU64(), 50u);
}

TEST(DsEdgeTest, AnnulledOpsReplayToSameState)
{
    BackendNode be(1, testConfig());
    FrontendSession s(SessionConfig::rcb(1, 1 << 20, 1024));
    ASSERT_EQ(s.connect(&be), Status::Ok);
    Stack stack;
    ASSERT_EQ(Stack::create(s, 1, "annul", &stack), Status::Ok);
    ASSERT_EQ(s.flushAll(), Status::Ok);

    // Interleaved pushes and pops, some annulled, crash mid-batch.
    Value v;
    ASSERT_EQ(stack.push(Value::ofU64(1)), Status::Ok);
    ASSERT_EQ(stack.push(Value::ofU64(2)), Status::Ok);
    ASSERT_EQ(stack.pop(&v), Status::Ok); // annuls push(2)
    EXPECT_EQ(v.asU64(), 2u);
    ASSERT_EQ(stack.push(Value::ofU64(3)), Status::Ok);
    // State should be [1, 3]; nothing flushed yet.
    s.simulateCrash();
    Stack re;
    ASSERT_EQ(Stack::open(s, 1, "annul", &re), Status::Ok);
    ASSERT_EQ(s.recover(), Status::Ok);
    Stack audit;
    ASSERT_EQ(Stack::open(s, 1, "annul", &audit), Status::Ok);
    EXPECT_EQ(audit.size(), 2u);
    ASSERT_EQ(audit.pop(&v), Status::Ok);
    EXPECT_EQ(v.asU64(), 3u);
    ASSERT_EQ(audit.pop(&v), Status::Ok);
    EXPECT_EQ(v.asU64(), 1u);
}

TEST(DsEdgeTest, QueueCrashRecoveryPreservesFifo)
{
    BackendNode be(1, testConfig());
    FrontendSession s(SessionConfig::rcb(1, 1 << 20, 1024));
    ASSERT_EQ(s.connect(&be), Status::Ok);
    Queue q;
    ASSERT_EQ(Queue::create(s, 1, "fifo", &q), Status::Ok);
    for (uint64_t i = 1; i <= 5; ++i)
        ASSERT_EQ(q.enqueue(Value::ofU64(i)), Status::Ok);
    ASSERT_EQ(s.flushAll(), Status::Ok);
    Value v;
    ASSERT_EQ(q.dequeue(&v), Status::Ok); // removes 1 (committed later?)
    for (uint64_t i = 6; i <= 8; ++i)
        ASSERT_EQ(q.enqueue(Value::ofU64(i)), Status::Ok);
    // Crash with the dequeue + 3 enqueues un-flushed.
    s.simulateCrash();
    Queue re;
    ASSERT_EQ(Queue::open(s, 1, "fifo", &re), Status::Ok);
    ASSERT_EQ(s.recover(), Status::Ok);
    Queue audit;
    ASSERT_EQ(Queue::open(s, 1, "fifo", &audit), Status::Ok);
    EXPECT_EQ(audit.size(), 7u);
    for (uint64_t expect = 2; expect <= 8; ++expect) {
        ASSERT_EQ(audit.dequeue(&v), Status::Ok);
        EXPECT_EQ(v.asU64(), expect) << "FIFO broken after recovery";
    }
}

TEST(DsEdgeTest, MvReaderSurvivesGcEpochBumpMidStream)
{
    BackendNode be(1, testConfig());
    FrontendSession writer(SessionConfig::rcb(1, 1 << 20, 4));
    ASSERT_EQ(writer.connect(&be), Status::Ok);
    MvBst wtree;
    ASSERT_EQ(MvBst::create(writer, 1, "gcmv", &wtree), Status::Ok);
    for (uint64_t k = 1; k <= 64; ++k)
        ASSERT_EQ(wtree.insert(k, Value::ofU64(k)), Status::Ok);
    ASSERT_EQ(writer.flushAll(), Status::Ok);

    FrontendSession reader(SessionConfig::rc(2, 1 << 20));
    ASSERT_EQ(reader.connect(&be), Status::Ok);
    MvBst rtree;
    ASSERT_EQ(MvBst::open(reader, 1, "gcmv", &rtree), Status::Ok);
    Value v;
    for (uint64_t k = 1; k <= 64; ++k)
        ASSERT_EQ(rtree.find(k, &v), Status::Ok);

    // Writer churns versions; force GC so the epoch bumps and reclaimed
    // node addresses get reused under the reader's cache.
    for (int round = 0; round < 5; ++round) {
        for (uint64_t k = 1; k <= 64; ++k)
            ASSERT_EQ(wtree.insert(k, Value::ofU64(k * 100 + round)),
                      Status::Ok);
        ASSERT_EQ(writer.flushAll(), Status::Ok);
        be.processGc(0, /*force=*/true);
        // Reader must converge to the latest published version.
        for (uint64_t k = 1; k <= 64; k += 13) {
            ASSERT_EQ(rtree.find(k, &v), Status::Ok) << "key " << k;
            EXPECT_EQ(v.asU64(), k * 100 + round)
                << "stale read after epoch bump";
        }
    }
}

TEST(DsEdgeTest, AllocatorEnduranceUnderFragmentingChurn)
{
    BackendNode be(1, testConfig());
    FrontendSession s(SessionConfig::rcb(1, 1 << 20, 16));
    ASSERT_EQ(s.connect(&be), Status::Ok);
    // Random alloc/free of mixed sizes with bounded live bytes must
    // never exhaust a device an order of magnitude larger.
    Rng rng(3);
    std::vector<std::pair<RemotePtr, uint64_t>> live;
    uint64_t live_bytes = 0;
    constexpr uint64_t kLiveCap = 2ull << 20; // 2 MB live, 8 MB+ device
    for (int i = 0; i < 20000; ++i) {
        if (live_bytes < kLiveCap && rng.nextBool(0.6)) {
            const uint64_t size = 16 + rng.nextBounded(900);
            RemotePtr p;
            ASSERT_EQ(s.alloc(1, size, &p), Status::Ok)
                << "exhausted at iteration " << i;
            live.emplace_back(p, size);
            live_bytes += size;
        } else if (!live.empty()) {
            const size_t idx = rng.nextBounded(live.size());
            ASSERT_EQ(s.free(live[idx].first, live[idx].second),
                      Status::Ok);
            live_bytes -= live[idx].second;
            live[idx] = live.back();
            live.pop_back();
        }
    }
}

TEST(DsEdgeTest, TatpRecoversMidMix)
{
    BackendNode be(1, testConfig());
    FrontendSession s(SessionConfig::rcb(1, 1 << 20, 64));
    ASSERT_EQ(s.connect(&be), Status::Ok);
    Tatp tatp;
    ASSERT_EQ(Tatp::create(s, 1, 500, &tatp), Status::Ok);
    Rng rng(4);
    for (int i = 0; i < 500; ++i)
        ASSERT_EQ(tatp.runOne(rng), Status::Ok);
    // Crash with a partial batch of transactions.
    s.simulateCrash();
    Tatp re;
    ASSERT_EQ(Tatp::open(s, 1, &re), Status::Ok);
    ASSERT_EQ(s.recover(), Status::Ok);
    Tatp audit;
    ASSERT_EQ(Tatp::open(s, 1, &audit), Status::Ok);
    EXPECT_EQ(audit.subscriberCount(), 500u);
    Value v;
    ASSERT_EQ(audit.getSubscriberData(1, &v), Status::Ok);
    // The mix keeps running after recovery.
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(audit.runOne(rng), Status::Ok);
    ASSERT_EQ(s.flushAll(), Status::Ok);
}

TEST(DsEdgeTest, PersistentFenceMakesReadsSeePersistedData)
{
    BackendNode be(1, testConfig());
    FrontendSession s(SessionConfig::rcb(1, 1 << 20, 1024));
    ASSERT_EQ(s.connect(&be), Status::Ok);
    RemotePtr p;
    ASSERT_EQ(s.alloc(1, 64, &p), Status::Ok);
    ASSERT_EQ(s.opBegin(0, 1, OpType::Update, 1, nullptr, 0), Status::Ok);
    const uint64_t v = 0xfe;
    ASSERT_EQ(s.logWrite(0, p, &v, 8), Status::Ok);
    ASSERT_EQ(s.opEnd(), Status::Ok);
    // Before the fence: durable only as an op log; after: in the data
    // area, visible to any other session's direct read.
    EXPECT_EQ(be.nvm().read64(p.offset), 0u);
    ASSERT_EQ(s.persistentFence(), Status::Ok);
    EXPECT_EQ(be.nvm().read64(p.offset), 0xfeu);
}

TEST(DsEdgeTest, ValueOfStringEmbeddedNulRoundTrip)
{
    const std::string with_nul = std::string("ab\0cd", 5);
    const Value v = Value::ofString(with_nul);
    EXPECT_EQ(v.asString(), "ab") << "asString stops at the first NUL";
    EXPECT_EQ(std::memcmp(v.bytes.data(), with_nul.data(), 5), 0);
}

} // namespace
} // namespace asymnvm
