/**
 * @file
 * Remaining verb-layer and session edge cases: RNIC bounds checking
 * (a torn pointer must fail the verb, not crash the process), atomic
 * write durability, posted-write failure surfacing, and the symmetric
 * session's seqlock code path.
 */

#include <gtest/gtest.h>

#include "backend/backend_node.h"
#include "frontend/session.h"
#include "nvm/nvm_device.h"
#include "rdma/verbs.h"
#include "sim/clock.h"

namespace asymnvm {
namespace {

BackendConfig
testConfig()
{
    BackendConfig cfg;
    cfg.nvm_size = 16ull << 20;
    cfg.max_frontends = 4;
    cfg.max_names = 8;
    cfg.memlog_ring_size = 256ull << 10;
    cfg.oplog_ring_size = 128ull << 10;
    return cfg;
}

class VerbsEdgeTest : public ::testing::Test
{
  protected:
    VerbsEdgeTest() : dev(1 << 20), nic(120), verbs(&clock, &lat)
    {
        verbs.attach(1, RdmaTarget{&dev, &nic, &fail});
    }

    NvmDevice dev;
    NicModel nic;
    FailureInjector fail;
    SimClock clock;
    LatencyModel lat;
    Verbs verbs;
};

TEST_F(VerbsEdgeTest, OutOfBoundsReadRejected)
{
    uint8_t buf[64];
    EXPECT_EQ(verbs.read(RemotePtr(1, dev.size() - 32), buf, 64),
              Status::InvalidArgument);
    EXPECT_EQ(verbs.read(RemotePtr(1, UINT64_MAX - 100), buf, 64),
              Status::InvalidArgument);
}

TEST_F(VerbsEdgeTest, OutOfBoundsWriteRejected)
{
    const uint64_t v = 1;
    EXPECT_EQ(verbs.write(RemotePtr(1, dev.size()), &v, 8),
              Status::InvalidArgument);
    EXPECT_EQ(verbs.writeAsync(RemotePtr(1, dev.size()), &v, 8),
              Status::InvalidArgument);
    uint64_t out;
    EXPECT_EQ(verbs.read64(RemotePtr(1, dev.size() - 4), &out),
              Status::InvalidArgument);
}

TEST_F(VerbsEdgeTest, BoundaryAccessAllowed)
{
    const uint64_t v = 7;
    EXPECT_EQ(verbs.write(RemotePtr(1, dev.size() - 8), &v, 8),
              Status::Ok);
    uint64_t out = 0;
    EXPECT_EQ(verbs.read64(RemotePtr(1, dev.size() - 8), &out),
              Status::Ok);
    EXPECT_EQ(out, 7u);
}

TEST_F(VerbsEdgeTest, Write64IsImmediatelyDurable)
{
    verbs.write64(RemotePtr(1, 512), 0xabc);
    dev.crash();
    EXPECT_EQ(dev.read64(512), 0xabcu);
}

TEST_F(VerbsEdgeTest, AsyncWriteSurfacesCrash)
{
    fail.armCrashAfterVerbs(0);
    const uint64_t v = 1;
    EXPECT_EQ(verbs.writeAsync(RemotePtr(1, 64), &v, 8),
              Status::BackendCrashed);
}

// ---------------------------------------------------------------------
// readGather all-or-nothing guarantees under transient faults.
// ---------------------------------------------------------------------

/**
 * A queue-pair error injected in the MIDDLE of a gather chain (a clean
 * WQE completes its fault consult first) must retry the WHOLE chain:
 * eventual success with correct bytes, counters moving in whole-batch
 * increments, and at least one QP reset performed.
 */
TEST_F(VerbsEdgeTest, ReadGatherRetriesWholeChainOnMidBatchQpError)
{
    constexpr uint64_t kN = 4;
    for (uint64_t i = 0; i < kN; ++i) {
        const uint64_t v = 0x1000 + i;
        ASSERT_EQ(verbs.write(RemotePtr(1, 256 + 64 * i), &v, 8),
                  Status::Ok);
    }
    FaultConfig fc;
    fc.qp_error_rate = 0.5;
    bool proved = false;
    for (uint64_t seed = 1; seed < 400 && !proved; ++seed) {
        // Only seeds whose first two decisions are clean-then-error put
        // the fault mid-batch on the first attempt.
        FaultModel probe;
        probe.configure(fc, seed);
        if (probe.onVerb(FaultVerb::Read, 0).qp_error)
            continue;
        if (!probe.onVerb(FaultVerb::Read, 0).qp_error)
            continue;
        SimClock c;
        Verbs v(&c, &lat);
        FaultModel fm;
        fm.configure(fc, seed);
        v.attach(1, RdmaTarget{&dev, &nic, &fail, &fm});
        uint64_t out[kN];
        for (uint64_t i = 0; i < kN; ++i) {
            out[i] = 0xeeeeeeeeeeeeeeee;
            ASSERT_EQ(v.postRead(RemotePtr(1, 256 + 64 * i), &out[i], 8),
                      Status::Ok);
        }
        if (v.readGather() != Status::Ok)
            continue; // this seed's storm outlived the retry budget
        proved = true;
        for (uint64_t i = 0; i < kN; ++i)
            EXPECT_EQ(out[i], 0x1000 + i);
        EXPECT_GE(v.retryStats().qp_errors, 1u);
        EXPECT_GE(v.retryStats().qp_resets, 1u);
        EXPECT_GE(v.retryStats().retries_read, 1u);
        // Whole-batch re-posts only: never a partial chain.
        EXPECT_EQ(v.counters().reads % kN, 0u);
        EXPECT_GE(v.counters().reads, 2 * kN);
        EXPECT_FALSE(v.qpInError(1));
    }
    EXPECT_TRUE(proved);
}

/**
 * When the QP error storm outlives every retry, the gather fails as a
 * unit: no destination buffer holds fetched bytes (reads deliver nothing
 * until the whole chain validates and completes).
 */
TEST_F(VerbsEdgeTest, ReadGatherExhaustionDeliversNothing)
{
    constexpr uint64_t kN = 3;
    for (uint64_t i = 0; i < kN; ++i) {
        const uint64_t v = 0x2000 + i;
        ASSERT_EQ(verbs.write(RemotePtr(1, 512 + 64 * i), &v, 8),
                  Status::Ok);
    }
    FaultConfig fc;
    fc.qp_error_rate = 1.0;
    FaultModel fm;
    fm.configure(fc, 7);
    SimClock c;
    Verbs v(&c, &lat);
    v.attach(1, RdmaTarget{&dev, &nic, &fail, &fm});
    uint64_t out[kN];
    for (uint64_t i = 0; i < kN; ++i) {
        out[i] = 0xeeeeeeeeeeeeeeee;
        ASSERT_EQ(v.postRead(RemotePtr(1, 512 + 64 * i), &out[i], 8),
                  Status::Ok);
    }
    EXPECT_EQ(v.readGather(), Status::QpError);
    for (uint64_t i = 0; i < kN; ++i)
        EXPECT_EQ(out[i], 0xeeeeeeeeeeeeeeee);
    EXPECT_EQ(v.counters().reads % kN, 0u);
    EXPECT_EQ(v.retryStats().retries_read,
              v.retryPolicy().max_attempts - 1);
    // The chain was consumed (failed as a unit, not left half-pending).
    EXPECT_EQ(v.pendingReadWqes(), 0u);
}

/** Dropped completions fail the batch the same way: nothing delivered. */
TEST_F(VerbsEdgeTest, ReadGatherDropFailsWholeBatch)
{
    const uint64_t v0 = 0x77;
    ASSERT_EQ(verbs.write(RemotePtr(1, 1024), &v0, 8), Status::Ok);
    FaultConfig fc;
    fc.drop_rate = 1.0;
    fc.drop_after_frac = 0.0; // reads never land before the loss
    FaultModel fm;
    fm.configure(fc, 11);
    SimClock c;
    Verbs v(&c, &lat);
    v.attach(1, RdmaTarget{&dev, &nic, &fail, &fm});
    uint64_t a = 0xeeeeeeeeeeeeeeee, b = 0xeeeeeeeeeeeeeeee;
    ASSERT_EQ(v.postRead(RemotePtr(1, 1024), &a, 8), Status::Ok);
    ASSERT_EQ(v.postRead(RemotePtr(1, 1032), &b, 8), Status::Ok);
    EXPECT_EQ(v.readGather(), Status::Timeout);
    EXPECT_EQ(a, 0xeeeeeeeeeeeeeeee);
    EXPECT_EQ(b, 0xeeeeeeeeeeeeeeee);
    EXPECT_GE(v.retryStats().timeouts, 1u);
}

/**
 * Chain validation precedes delivery: one bad address fails the batch
 * and the valid WQE's buffer stays untouched (never a prefix delivery).
 */
TEST_F(VerbsEdgeTest, ReadGatherValidatesWholeChainBeforeDelivery)
{
    const uint64_t v0 = 0x88;
    ASSERT_EQ(verbs.write(RemotePtr(1, 2048), &v0, 8), Status::Ok);
    uint64_t good = 0xeeeeeeeeeeeeeeee, bad = 0;
    ASSERT_EQ(verbs.postRead(RemotePtr(1, 2048), &good, 8), Status::Ok);
    ASSERT_EQ(verbs.postRead(RemotePtr(1, dev.size() - 4), &bad, 8),
              Status::Ok);
    EXPECT_EQ(verbs.readGather(), Status::InvalidArgument);
    EXPECT_EQ(good, 0xeeeeeeeeeeeeeeee);
}

TEST(SymmetricSeqlockTest, ReaderProtocolWorksLocally)
{
    BackendNode be(1, testConfig());
    FrontendSession s(SessionConfig::symmetricBase(1, false));
    ASSERT_EQ(s.connect(&be), Status::Ok);
    DsId ds = 0;
    ASSERT_EQ(s.createDs(1, "symlock", DsType::Bst, &ds), Status::Ok);
    uint64_t sn = 0;
    ASSERT_EQ(s.readerLock(ds, 1, &sn), Status::Ok);
    EXPECT_TRUE(s.readerValidate(ds, 1, sn));
    // A local writer lock is a cheap no-op flag in symmetric mode.
    ASSERT_EQ(s.writerLock(ds, 1), Status::Ok);
    EXPECT_TRUE(s.holdsWriterLock(ds, 1));
    ASSERT_EQ(s.writerUnlock(ds, 1), Status::Ok);
    EXPECT_FALSE(s.holdsWriterLock(ds, 1));
}

TEST(SessionEdgeTest, ReadUnknownBackendUnavailable)
{
    FrontendSession s(SessionConfig::r(5));
    uint64_t v;
    EXPECT_EQ(s.read(RemotePtr(9, 64), &v, 8), Status::Unavailable);
    EXPECT_EQ(s.logWrite(0, RemotePtr(9, 64), &v, 8),
              Status::Unavailable);
    RemotePtr p;
    EXPECT_EQ(s.alloc(9, 8, &p), Status::Unavailable);
}

TEST(SessionEdgeTest, NaiveModeReadsBypassOverlayAndCache)
{
    BackendNode be(1, testConfig());
    FrontendSession s(SessionConfig::naive(6));
    ASSERT_EQ(s.connect(&be), Status::Ok);
    RemotePtr p;
    ASSERT_EQ(s.alloc(1, 64, &p), Status::Ok);
    const uint64_t v = 0x44;
    ASSERT_EQ(s.logWrite(0, p, &v, 8), Status::Ok);
    // Every read issues a verb in naive mode.
    const uint64_t verbs_before = s.verbs().verbsIssued();
    uint64_t got = 0;
    ReadHint hint;
    hint.cacheable = true; // must be ignored (no cache in naive)
    ASSERT_EQ(s.read(p, &got, 8, hint), Status::Ok);
    ASSERT_EQ(s.read(p, &got, 8, hint), Status::Ok);
    EXPECT_EQ(s.verbs().verbsIssued(), verbs_before + 2);
    EXPECT_EQ(got, 0x44u);
}

TEST(SessionEdgeTest, ZeroValuePayloadOpLog)
{
    BackendNode be(1, testConfig());
    FrontendSession s(SessionConfig::r(7));
    ASSERT_EQ(s.connect(&be), Status::Ok);
    // Pop/Dequeue-style ops carry no payload; the record must survive
    // the ring and recovery scan.
    ASSERT_EQ(s.opBegin(0, 1, OpType::Pop, 0, nullptr, 0), Status::Ok);
    const auto ops = be.uncoveredOps(0);
    ASSERT_EQ(ops.size(), 1u);
    EXPECT_EQ(ops[0].op, OpType::Pop);
    EXPECT_TRUE(ops[0].value.empty());
}

} // namespace
} // namespace asymnvm
