/**
 * @file
 * Remaining verb-layer and session edge cases: RNIC bounds checking
 * (a torn pointer must fail the verb, not crash the process), atomic
 * write durability, posted-write failure surfacing, and the symmetric
 * session's seqlock code path.
 */

#include <gtest/gtest.h>

#include "backend/backend_node.h"
#include "frontend/session.h"
#include "nvm/nvm_device.h"
#include "rdma/verbs.h"
#include "sim/clock.h"

namespace asymnvm {
namespace {

BackendConfig
testConfig()
{
    BackendConfig cfg;
    cfg.nvm_size = 16ull << 20;
    cfg.max_frontends = 4;
    cfg.max_names = 8;
    cfg.memlog_ring_size = 256ull << 10;
    cfg.oplog_ring_size = 128ull << 10;
    return cfg;
}

class VerbsEdgeTest : public ::testing::Test
{
  protected:
    VerbsEdgeTest() : dev(1 << 20), nic(120), verbs(&clock, &lat)
    {
        verbs.attach(1, RdmaTarget{&dev, &nic, &fail});
    }

    NvmDevice dev;
    NicModel nic;
    FailureInjector fail;
    SimClock clock;
    LatencyModel lat;
    Verbs verbs;
};

TEST_F(VerbsEdgeTest, OutOfBoundsReadRejected)
{
    uint8_t buf[64];
    EXPECT_EQ(verbs.read(RemotePtr(1, dev.size() - 32), buf, 64),
              Status::InvalidArgument);
    EXPECT_EQ(verbs.read(RemotePtr(1, UINT64_MAX - 100), buf, 64),
              Status::InvalidArgument);
}

TEST_F(VerbsEdgeTest, OutOfBoundsWriteRejected)
{
    const uint64_t v = 1;
    EXPECT_EQ(verbs.write(RemotePtr(1, dev.size()), &v, 8),
              Status::InvalidArgument);
    EXPECT_EQ(verbs.writeAsync(RemotePtr(1, dev.size()), &v, 8),
              Status::InvalidArgument);
    uint64_t out;
    EXPECT_EQ(verbs.read64(RemotePtr(1, dev.size() - 4), &out),
              Status::InvalidArgument);
}

TEST_F(VerbsEdgeTest, BoundaryAccessAllowed)
{
    const uint64_t v = 7;
    EXPECT_EQ(verbs.write(RemotePtr(1, dev.size() - 8), &v, 8),
              Status::Ok);
    uint64_t out = 0;
    EXPECT_EQ(verbs.read64(RemotePtr(1, dev.size() - 8), &out),
              Status::Ok);
    EXPECT_EQ(out, 7u);
}

TEST_F(VerbsEdgeTest, Write64IsImmediatelyDurable)
{
    verbs.write64(RemotePtr(1, 512), 0xabc);
    dev.crash();
    EXPECT_EQ(dev.read64(512), 0xabcu);
}

TEST_F(VerbsEdgeTest, AsyncWriteSurfacesCrash)
{
    fail.armCrashAfterVerbs(0);
    const uint64_t v = 1;
    EXPECT_EQ(verbs.writeAsync(RemotePtr(1, 64), &v, 8),
              Status::BackendCrashed);
}

TEST(SymmetricSeqlockTest, ReaderProtocolWorksLocally)
{
    BackendNode be(1, testConfig());
    FrontendSession s(SessionConfig::symmetricBase(1, false));
    ASSERT_EQ(s.connect(&be), Status::Ok);
    DsId ds = 0;
    ASSERT_EQ(s.createDs(1, "symlock", DsType::Bst, &ds), Status::Ok);
    uint64_t sn = 0;
    ASSERT_EQ(s.readerLock(ds, 1, &sn), Status::Ok);
    EXPECT_TRUE(s.readerValidate(ds, 1, sn));
    // A local writer lock is a cheap no-op flag in symmetric mode.
    ASSERT_EQ(s.writerLock(ds, 1), Status::Ok);
    EXPECT_TRUE(s.holdsWriterLock(ds, 1));
    ASSERT_EQ(s.writerUnlock(ds, 1), Status::Ok);
    EXPECT_FALSE(s.holdsWriterLock(ds, 1));
}

TEST(SessionEdgeTest, ReadUnknownBackendUnavailable)
{
    FrontendSession s(SessionConfig::r(5));
    uint64_t v;
    EXPECT_EQ(s.read(RemotePtr(9, 64), &v, 8), Status::Unavailable);
    EXPECT_EQ(s.logWrite(0, RemotePtr(9, 64), &v, 8),
              Status::Unavailable);
    RemotePtr p;
    EXPECT_EQ(s.alloc(9, 8, &p), Status::Unavailable);
}

TEST(SessionEdgeTest, NaiveModeReadsBypassOverlayAndCache)
{
    BackendNode be(1, testConfig());
    FrontendSession s(SessionConfig::naive(6));
    ASSERT_EQ(s.connect(&be), Status::Ok);
    RemotePtr p;
    ASSERT_EQ(s.alloc(1, 64, &p), Status::Ok);
    const uint64_t v = 0x44;
    ASSERT_EQ(s.logWrite(0, p, &v, 8), Status::Ok);
    // Every read issues a verb in naive mode.
    const uint64_t verbs_before = s.verbs().verbsIssued();
    uint64_t got = 0;
    ReadHint hint;
    hint.cacheable = true; // must be ignored (no cache in naive)
    ASSERT_EQ(s.read(p, &got, 8, hint), Status::Ok);
    ASSERT_EQ(s.read(p, &got, 8, hint), Status::Ok);
    EXPECT_EQ(s.verbs().verbsIssued(), verbs_before + 2);
    EXPECT_EQ(got, 0x44u);
}

TEST(SessionEdgeTest, ZeroValuePayloadOpLog)
{
    BackendNode be(1, testConfig());
    FrontendSession s(SessionConfig::r(7));
    ASSERT_EQ(s.connect(&be), Status::Ok);
    // Pop/Dequeue-style ops carry no payload; the record must survive
    // the ring and recovery scan.
    ASSERT_EQ(s.opBegin(0, 1, OpType::Pop, 0, nullptr, 0), Status::Ok);
    const auto ops = be.uncoveredOps(0);
    ASSERT_EQ(ops.size(), 1u);
    EXPECT_EQ(ops[0].op, OpType::Pop);
    EXPECT_TRUE(ops[0].value.empty());
}

} // namespace
} // namespace asymnvm
