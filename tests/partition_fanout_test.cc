/**
 * @file
 * Parallel multi-back-end fan-out (Figure 10): a group commit spanning k
 * back-ends posts every back-end's WQE chain, rings all doorbells, and
 * awaits the completions together — the session's clock advances by the
 * slowest target's completion time instead of the sum of k round trips.
 * The doorbell-budget assertions are regression guards in the style of
 * verb_coalescing_test: a k-way batch must stay O(k) doorbells, not
 * O(ops).
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "backend/backend_node.h"
#include "ds/hash_table.h"
#include "ds/partitioned.h"
#include "frontend/session.h"

namespace asymnvm {
namespace {

constexpr uint32_t kBackends = 4;
constexpr uint32_t kBatch = 32;

BackendConfig
testConfig()
{
    BackendConfig cfg;
    cfg.nvm_size = 16ull << 20;
    cfg.max_frontends = 4;
    cfg.max_names = 16;
    cfg.memlog_ring_size = 256ull << 10;
    cfg.oplog_ring_size = 256ull << 10;
    cfg.block_size = 1024;
    return cfg;
}

struct Fixture
{
    std::vector<std::unique_ptr<BackendNode>> nodes;
    std::vector<NodeId> ids;
    std::unique_ptr<FrontendSession> s;
    Partitioned<HashTable> part;

    explicit Fixture(bool parallel, uint64_t session_id)
    {
        for (uint32_t b = 0; b < kBackends; ++b) {
            nodes.push_back(std::make_unique<BackendNode>(
                static_cast<NodeId>(b + 1), testConfig()));
            ids.push_back(static_cast<NodeId>(b + 1));
        }
        SessionConfig cfg = SessionConfig::rcb(session_id, 1 << 20,
                                               kBatch);
        cfg.parallel_fanout = parallel;
        s = std::make_unique<FrontendSession>(cfg);
        for (auto &be : nodes)
            EXPECT_EQ(s->connect(be.get()), Status::Ok);
        EXPECT_EQ(Partitioned<HashTable>::create(
                      *s, ids, "pf", kBackends, &part,
                      [](FrontendSession &sess, NodeId be,
                         std::string_view name, HashTable *out) {
                          return HashTable::create(sess, be, name, 64,
                                                   out);
                      }),
                  Status::Ok);
    }

    /** Keys chosen so every batch touches all kBackends partitions. */
    void runBatches(uint32_t nbatches, uint64_t base)
    {
        for (uint32_t i = 0; i < nbatches * kBatch; ++i)
            ASSERT_EQ(part.insert(base + i, Value::ofU64(base + i)),
                      Status::Ok);
        ASSERT_EQ(s->flushAll(), Status::Ok);
    }
};

TEST(PartitionFanoutTest, ParallelFanoutOverlapsRoundTrips)
{
    Fixture par(/*parallel=*/true, 61);
    Fixture ser(/*parallel=*/false, 62);

    par.s->resetStats();
    ser.s->resetStats();
    const uint64_t pt0 = par.s->clock().now();
    const uint64_t st0 = ser.s->clock().now();
    par.runBatches(8, 10000);
    ser.runBatches(8, 10000);
    const uint64_t par_ns = par.s->clock().now() - pt0;
    const uint64_t ser_ns = ser.s->clock().now() - st0;

    EXPECT_LT(par_ns, ser_ns)
        << "awaiting all completions together must beat k serialized "
           "commit round trips";
    EXPECT_GT(par.s->fanoutHistogram().count(), 0u)
        << "every multi-back-end commit records a fan-out sample";
    EXPECT_EQ(ser.s->fanoutHistogram().count(), 0u)
        << "the serial baseline never takes the fan-out path";

    // Both drivers committed the same data.
    for (uint64_t k = 10000; k < 10000 + 8 * kBatch; ++k) {
        Value a, b;
        ASSERT_EQ(par.part.find(k, &a), Status::Ok);
        ASSERT_EQ(ser.part.find(k, &b), Status::Ok);
        EXPECT_EQ(a.asU64(), b.asU64());
    }
}

TEST(PartitionFanoutTest, FanoutBatchStaysWithinDoorbellBudget)
{
    Fixture f(/*parallel=*/true, 63);
    f.runBatches(1, 500); // settle locks and allocator traffic

    f.s->resetStats();
    const VerbCounters c0 = f.s->verbs().counters();
    f.runBatches(1, 20000);
    const VerbCounters &c = f.s->verbs().counters();

    const uint64_t doorbells = c.doorbells - c0.doorbells;
    const uint64_t sync_verbs = c.reads + c.writes + c.atomics -
                                (c0.reads + c0.writes + c0.atomics);
    const uint64_t explicit_bells = doorbells - sync_verbs;
    // Every synchronous verb counts one implicit doorbell; the batch
    // itself must add only O(k) explicit ones (the fan-out launch plus
    // the trailing lock-release chain), never one per op.
    EXPECT_LE(explicit_bells, 2ull * kBackends)
        << "fan-out flush must ring O(k) doorbells for a k-way batch";
    EXPECT_LT(explicit_bells, kBatch)
        << "a k-way batch of " << kBatch
        << " ops must not pay per-op doorbells";
    EXPECT_GT(c.posted - c0.posted, explicit_bells)
        << "many posted WQEs must share each explicit doorbell";
}

TEST(PartitionFanoutTest, FanoutCommitIsDurableOnEveryBackend)
{
    Fixture f(/*parallel=*/true, 64);
    f.runBatches(4, 900);
    for (uint64_t k = 900; k < 900 + 4 * kBatch; ++k) {
        Value v;
        ASSERT_EQ(f.part.find(k, &v), Status::Ok) << "key " << k;
        EXPECT_EQ(v.asU64(), k);
    }
    // The fan-out fence replaced per-back-end serial commits; each
    // back-end still replayed its partition's transactions.
    for (auto &be : f.nodes)
        EXPECT_GT(be->replayedTxs(), 0u);
}

} // namespace
} // namespace asymnvm
