/**
 * @file
 * Unit tests for front-end components: the page cache (all three
 * replacement policies, write-through updates, DS-scoped invalidation),
 * adaptive level admission, and the two-tier allocator's front tier.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "backend/backend_node.h"
#include "common/rand.h"
#include "common/zipf.h"
#include "ds/hash_table.h"
#include "frontend/allocator.h"
#include "frontend/cache.h"
#include "frontend/session.h"
#include "rdma/rpc.h"
#include "sim/clock.h"
#include "sim/latency.h"

namespace asymnvm {
namespace {

class CacheTest : public ::testing::Test
{
  protected:
    SimClock clock;
    LatencyModel lat;

    PageCache makeCache(CachePolicy policy, uint64_t capacity)
    {
        return PageCache(policy, capacity, &clock, &lat);
    }

    static std::vector<uint8_t> blob(uint8_t fill, size_t n = 64)
    {
        return std::vector<uint8_t>(n, fill);
    }
};

TEST_F(CacheTest, HitAfterInsert)
{
    auto cache = makeCache(CachePolicy::Hybrid, 4096);
    const auto data = blob(0x42);
    cache.insert(0, RemotePtr(1, 100), data.data(), 64);
    uint8_t out[64] = {};
    EXPECT_TRUE(cache.lookup(RemotePtr(1, 100), out, 64));
    EXPECT_EQ(out[0], 0x42);
    EXPECT_EQ(cache.hits(), 1u);
}

TEST_F(CacheTest, MissOnAbsentAndWrongLength)
{
    auto cache = makeCache(CachePolicy::Hybrid, 4096);
    uint8_t out[64];
    EXPECT_FALSE(cache.lookup(RemotePtr(1, 100), out, 64));
    const auto data = blob(1);
    cache.insert(0, RemotePtr(1, 100), data.data(), 64);
    EXPECT_FALSE(cache.lookup(RemotePtr(1, 100), out, 32))
        << "length mismatch must miss (object-granularity cache)";
}

TEST_F(CacheTest, CapacityEnforcedByEviction)
{
    auto cache = makeCache(CachePolicy::Hybrid, 64 * 10);
    for (uint64_t i = 0; i < 20; ++i) {
        const auto data = blob(static_cast<uint8_t>(i));
        cache.insert(0, RemotePtr(1, 1000 + i * 64), data.data(), 64);
    }
    EXPECT_LE(cache.sizeBytes(), 64u * 10);
    EXPECT_EQ(cache.entryCount(), 10u);
    EXPECT_GT(cache.evictions(), 0u);
}

TEST_F(CacheTest, UpdatePatchesCachedBytes)
{
    auto cache = makeCache(CachePolicy::Lru, 4096);
    const auto v1 = blob(0x01);
    cache.insert(0, RemotePtr(1, 64), v1.data(), 64);
    const auto v2 = blob(0x02);
    cache.update(RemotePtr(1, 64), v2.data(), 64);
    uint8_t out[64];
    ASSERT_TRUE(cache.lookup(RemotePtr(1, 64), out, 64));
    EXPECT_EQ(out[0], 0x02);
}

TEST_F(CacheTest, UpdateWithDifferentLengthInvalidates)
{
    auto cache = makeCache(CachePolicy::Lru, 4096);
    const auto v1 = blob(0x01);
    cache.insert(0, RemotePtr(1, 64), v1.data(), 64);
    const auto v2 = blob(0x02, 32);
    cache.update(RemotePtr(1, 64), v2.data(), 32);
    uint8_t out[64];
    EXPECT_FALSE(cache.lookup(RemotePtr(1, 64), out, 64));
}

TEST_F(CacheTest, OverwriteWithNewLengthRespectsCapacity)
{
    const uint64_t capacity = 64 * 10;
    auto cache = makeCache(CachePolicy::Lru, capacity);
    for (uint64_t i = 0; i < 10; ++i) {
        const auto data = blob(static_cast<uint8_t>(i));
        cache.insert(0, RemotePtr(1, 1000 + i * 64), data.data(), 64);
    }
    ASSERT_EQ(cache.sizeBytes(), capacity);
    // Re-inserting the same key with a larger object must evict to make
    // room, not silently grow the footprint past the configured budget.
    for (uint64_t rep = 0; rep < 8; ++rep) {
        const auto grown = blob(static_cast<uint8_t>(0xE0 + rep), 128);
        cache.insert(0, RemotePtr(1, 1000), grown.data(), 128);
        EXPECT_LE(cache.sizeBytes(), capacity)
            << "overwrite " << rep << " blew the capacity";
    }
    uint8_t out[128];
    EXPECT_TRUE(cache.lookup(RemotePtr(1, 1000), out, 128));
}

TEST_F(CacheTest, SameLengthOverwriteIsStable)
{
    auto cache = makeCache(CachePolicy::Lru, 4096);
    for (uint64_t rep = 0; rep < 50; ++rep) {
        const auto data = blob(static_cast<uint8_t>(rep));
        cache.insert(0, RemotePtr(1, 64), data.data(), 64);
        EXPECT_EQ(cache.entryCount(), 1u);
        EXPECT_EQ(cache.sizeBytes(), 64u);
    }
    uint8_t out[64];
    ASSERT_TRUE(cache.lookup(RemotePtr(1, 64), out, 64));
    EXPECT_EQ(out[0], 49);
}

TEST_F(CacheTest, InvalidateDsDropsOnlyThatStructure)
{
    auto cache = makeCache(CachePolicy::Hybrid, 1 << 20);
    const auto data = blob(9);
    cache.insert(/*ds=*/1, RemotePtr(1, 64), data.data(), 64);
    cache.insert(/*ds=*/2, RemotePtr(1, 128), data.data(), 64);
    cache.invalidateDs(1);
    uint8_t out[64];
    EXPECT_FALSE(cache.lookup(RemotePtr(1, 64), out, 64));
    EXPECT_TRUE(cache.lookup(RemotePtr(1, 128), out, 64));
}

TEST_F(CacheTest, LruKeepsRecentlyUsedUnderEviction)
{
    auto cache = makeCache(CachePolicy::Lru, 64 * 4);
    const auto data = blob(1);
    for (uint64_t i = 0; i < 4; ++i)
        cache.insert(0, RemotePtr(1, i * 64), data.data(), 64);
    uint8_t out[64];
    // Touch entry 0 so it is MRU, then overflow by one.
    ASSERT_TRUE(cache.lookup(RemotePtr(1, 0), out, 64));
    cache.insert(0, RemotePtr(1, 4 * 64), data.data(), 64);
    EXPECT_TRUE(cache.lookup(RemotePtr(1, 0), out, 64))
        << "MRU entry must survive";
    EXPECT_FALSE(cache.lookup(RemotePtr(1, 64), out, 64))
        << "LRU entry must be the victim";
}

/**
 * The Section 4.4 experiment in miniature: under a Zipf workload the
 * hybrid policy's miss ratio should be far below random replacement and
 * close to exact LRU.
 */
TEST_F(CacheTest, HybridPolicyApproachesLruMissRatio)
{
    const uint64_t items = 4000;
    const uint64_t capacity = 64 * 400; // 10% of the working set
    auto run = [&](CachePolicy policy) {
        auto cache = makeCache(policy, capacity);
        ZipfGenerator zipf(items, 0.9, 77);
        const auto data = blob(5);
        uint8_t out[64];
        for (int i = 0; i < 60000; ++i) {
            const RemotePtr p(1, 4096 + zipf.next() * 64);
            if (!cache.lookup(p, out, 64))
                cache.insert(0, p, data.data(), 64);
        }
        return cache.missRatio();
    };
    const double lru = run(CachePolicy::Lru);
    const double rr = run(CachePolicy::Random);
    const double hybrid = run(CachePolicy::Hybrid);
    EXPECT_LT(lru, rr);
    EXPECT_LT(hybrid, rr - 0.03) << "hybrid must beat random clearly";
    EXPECT_LT(hybrid - lru, 0.08) << "hybrid must be close to LRU";
}

TEST_F(CacheTest, LruChargesMorePerHitThanHybrid)
{
    auto lru = makeCache(CachePolicy::Lru, 1 << 20);
    auto hybrid = makeCache(CachePolicy::Hybrid, 1 << 20);
    const auto data = blob(1);
    lru.insert(0, RemotePtr(1, 0), data.data(), 64);
    hybrid.insert(0, RemotePtr(1, 0), data.data(), 64);
    uint8_t out[64];

    SimClock before = clock;
    (void)before;
    const uint64_t t0 = clock.now();
    lru.lookup(RemotePtr(1, 0), out, 64);
    const uint64_t lru_cost = clock.now() - t0;
    const uint64_t t1 = clock.now();
    hybrid.lookup(RemotePtr(1, 0), out, 64);
    const uint64_t hybrid_cost = clock.now() - t1;
    EXPECT_GT(lru_cost, hybrid_cost);
}

TEST(LevelAdmissionTest, StartsPermissiveAndTightensOnMisses)
{
    LevelAdmission adm(/*initial_n=*/4, /*window=*/16);
    EXPECT_TRUE(adm.admit(4));
    EXPECT_FALSE(adm.admit(5));
    for (int i = 0; i < 16; ++i)
        adm.record(false); // all misses
    EXPECT_EQ(adm.level(), 3u) << "miss ratio > 50% lowers N";
}

TEST(LevelAdmissionTest, LoosensWhenHitsDominate)
{
    LevelAdmission adm(4, 16);
    for (int i = 0; i < 16; ++i)
        adm.record(true);
    EXPECT_EQ(adm.level(), 5u) << "miss ratio < 25% raises N";
}

TEST(LevelAdmissionTest, StableInTheMiddleBand)
{
    LevelAdmission adm(4, 10);
    for (int i = 0; i < 10; ++i)
        adm.record(i < 6); // 40% misses
    EXPECT_EQ(adm.level(), 4u);
}

// ---------------------------------------------------------------------
// Front-end allocator tier
// ---------------------------------------------------------------------

class FrontAllocTest : public ::testing::Test
{
  protected:
    FrontAllocTest() : be(1, makeConfig())
    {
        alloc = std::make_unique<FrontendAllocator>(
            1, be.config().block_size,
            [this](RpcOp op, std::span<const uint64_t> args,
                   std::span<const uint8_t>, uint64_t rets[4]) {
                ++rpc_calls;
                switch (op) {
                  case RpcOp::AllocBlocks:
                    return be.rpcAllocBlocks(args[0], &rets[0]);
                  case RpcOp::FreeBlocks:
                    return be.rpcFreeBlocks(args[0], args[1]);
                  default:
                    return Status::InvalidArgument;
                }
            },
            /*reclaim_threshold=*/2);
    }

    static BackendConfig makeConfig()
    {
        BackendConfig cfg;
        cfg.nvm_size = 8ull << 20;
        cfg.memlog_ring_size = 64ull << 10;
        cfg.oplog_ring_size = 32ull << 10;
        cfg.block_size = 1024;
        return cfg;
    }

    BackendNode be;
    std::unique_ptr<FrontendAllocator> alloc;
    uint64_t rpc_calls = 0;
};

TEST_F(FrontAllocTest, SmallAllocationsShareOneSlab)
{
    RemotePtr a, b;
    ASSERT_EQ(alloc->alloc(100, &a), Status::Ok);
    ASSERT_EQ(alloc->alloc(100, &b), Status::Ok);
    EXPECT_EQ(rpc_calls, 1u) << "second allocation must be slab-local";
    EXPECT_NE(a, b);
    EXPECT_LT(b.offset - a.offset, 1024u) << "same slab expected";
}

TEST_F(FrontAllocTest, AllocationsDoNotOverlap)
{
    std::vector<std::pair<uint64_t, uint64_t>> spans;
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
        const uint64_t size = 16 + rng.nextBounded(200);
        RemotePtr p;
        ASSERT_EQ(alloc->alloc(size, &p), Status::Ok);
        for (const auto &[off, len] : spans) {
            EXPECT_TRUE(p.offset + size <= off || off + len <= p.offset)
                << "overlap at " << p.offset;
        }
        spans.emplace_back(p.offset, size);
    }
}

TEST_F(FrontAllocTest, LargeAllocationGoesStraightToBackend)
{
    RemotePtr p;
    ASSERT_EQ(alloc->alloc(5000, &p), Status::Ok);
    EXPECT_TRUE(be.allocator().isAllocated(p.offset));
    EXPECT_TRUE(be.allocator().isAllocated(p.offset + 4096));
    ASSERT_EQ(alloc->free(p, 5000), Status::Ok);
    EXPECT_FALSE(be.allocator().isAllocated(p.offset));
}

TEST_F(FrontAllocTest, FreeCoalescesAndAllowsReuse)
{
    RemotePtr a, b, c;
    ASSERT_EQ(alloc->alloc(256, &a), Status::Ok);
    ASSERT_EQ(alloc->alloc(256, &b), Status::Ok);
    ASSERT_EQ(alloc->alloc(256, &c), Status::Ok);
    ASSERT_EQ(alloc->free(a, 256), Status::Ok);
    ASSERT_EQ(alloc->free(b, 256), Status::Ok);
    // a+b coalesced into 512 contiguous bytes; a 512B alloc must fit
    // without a new slab.
    const uint64_t rpcs_before = rpc_calls;
    RemotePtr d;
    ASSERT_EQ(alloc->alloc(512, &d), Status::Ok);
    EXPECT_EQ(rpc_calls, rpcs_before);
    EXPECT_EQ(d.offset, a.offset);
}

TEST_F(FrontAllocTest, SteadyAllocFreeCycleStaysRpcFree)
{
    // Burst-alloc / burst-free (the shape group-commit retirement
    // produces): after warm-up, the adaptive hysteresis must hold the
    // empty slabs locally instead of ping-ponging them through
    // FreeBlocks/AllocBlocks round trips every cycle.
    auto cycle = [&](int n) {
        std::vector<RemotePtr> ptrs;
        for (int i = 0; i < n; ++i) {
            RemotePtr p;
            ASSERT_EQ(alloc->alloc(512, &p), Status::Ok);
            ptrs.push_back(p);
        }
        for (const RemotePtr &p : ptrs)
            ASSERT_EQ(alloc->free(p, 512), Status::Ok);
    };
    cycle(40);
    cycle(40);
    const uint64_t rpcs_before = rpc_calls;
    cycle(40);
    cycle(40);
    EXPECT_EQ(rpc_calls, rpcs_before)
        << "steady-state cycles must be slab-local";
    EXPECT_GE(alloc->emptySlabsHeld(), 20u);
}

TEST_F(FrontAllocTest, SurplusDrainsWhenDemandCollapses)
{
    // Big cycles establish a high keep level; once demand shrinks, the
    // measured-demand hysteresis follows it down and the surplus slabs
    // return to the back-end within a couple of cycles.
    auto cycle = [&](int n) {
        std::vector<RemotePtr> ptrs;
        for (int i = 0; i < n; ++i) {
            RemotePtr p;
            ASSERT_EQ(alloc->alloc(512, &p), Status::Ok);
            ptrs.push_back(p);
        }
        for (const RemotePtr &p : ptrs)
            ASSERT_EQ(alloc->free(p, 512), Status::Ok);
    };
    cycle(40);
    cycle(40);
    EXPECT_GE(alloc->slabsHeld(), 20u);
    cycle(2);
    cycle(2);
    cycle(2);
    EXPECT_LE(alloc->slabsHeld(), 4u)
        << "keep level must track collapsed demand";
}

TEST_F(FrontAllocTest, ZeroSizeRejected)
{
    RemotePtr p;
    EXPECT_EQ(alloc->alloc(0, &p), Status::InvalidArgument);
}

TEST_F(FrontAllocTest, VolatileStateLossKeepsBackendBlocksAllocated)
{
    RemotePtr p;
    ASSERT_EQ(alloc->alloc(100, &p), Status::Ok);
    alloc->loseVolatileState();
    // Section 5.2: recovery is slab-granularity only; the slab stays
    // allocated at the back-end (no use-after-free of live data).
    EXPECT_TRUE(be.allocator().isAllocated(p.offset));
}

/**
 * Coalescing can flip a buffered memory log from an op-ref (16 B on
 * the wire) to an inline entry (len B). The spill accounting must see
 * the flip: a batch of flipped entries whose true wire size crosses
 * memlog_buffer_cap has to spill (visible as a tx flush) even though
 * the op-ref sizes alone would fit.
 */
TEST(SpillThresholdTest, OpRefToInlineCoalesceCountsTowardSpill)
{
    BackendConfig bc;
    bc.nvm_size = 8ull << 20;
    bc.max_frontends = 2;
    bc.max_names = 8;
    bc.memlog_ring_size = 64ull << 10;
    bc.oplog_ring_size = 32ull << 10;
    BackendNode be(1, bc);

    SessionConfig sc = SessionConfig::rcb(1, 256ull << 10, 1000);
    // Four flipped entries at 16 (header) + 64 (inline) = 80 B cross
    // the cap; their op-ref encodings (4 x 32 B) would not.
    sc.memlog_buffer_cap = 300;
    FrontendSession s(sc);
    ASSERT_EQ(s.connect(&be), Status::Ok);

    HashTable ht;
    ASSERT_EQ(HashTable::create(s, 1, "spill", 16, &ht), Status::Ok);
    ASSERT_EQ(s.persistentFence(), Status::Ok);
    const uint64_t base_flushes = s.txFlushes();

    uint8_t val[64];
    std::memset(val, 0x5a, sizeof(val));
    for (uint64_t i = 0; i < 4; ++i) {
        RemotePtr buf;
        ASSERT_EQ(s.alloc(1, sizeof(val), &buf), Status::Ok);
        ASSERT_EQ(s.opBegin(ht.id(), 1, OpType::Update, i, val,
                            sizeof(val)),
                  Status::Ok);
        ASSERT_EQ(s.logWriteFromOp(ht.id(), buf, val, sizeof(val)),
                  Status::Ok);
        // A second write to the same address coalesces and flips the
        // entry to inline (the value no longer matches the op log).
        ASSERT_EQ(s.logWrite(ht.id(), buf, val, sizeof(val)), Status::Ok);
        ASSERT_EQ(s.opEnd(), Status::Ok);
    }
    EXPECT_GT(s.txFlushes(), base_flushes)
        << "coalesced op-ref->inline flips never crossed the spill "
           "threshold";
}

} // namespace
} // namespace asymnvm
