/**
 * @file
 * FailoverEpochDirectory under real threads: the promotion claim is a
 * CAS — when k racers claim the same observed epoch concurrently,
 * exactly one wins, the epoch bumps exactly once, and the promotion
 * ledger stays contiguous with one record per epoch. Runs under the
 * ASYMNVM_TSAN build to prove the directory is data-race-free (the rest
 * of the simulation is single-threaded per session; the directory is
 * the one piece multiple sessions genuinely share).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "cluster/epoch.h"

namespace asymnvm {
namespace {

constexpr NodeId kSlot = 1;

TEST(EpochRaceTest, ExactlyOneWinnerPerEpochUnderThreads)
{
    FailoverEpochDirectory dir;
    constexpr int kThreads = 8;
    constexpr int kRounds = 64;

    for (int round = 0; round < kRounds; ++round) {
        const uint64_t base = dir.epoch(kSlot);
        std::atomic<int> wins{0};
        std::atomic<uint64_t> winner{0};
        std::vector<std::thread> racers;
        racers.reserve(kThreads);
        for (int t = 0; t < kThreads; ++t) {
            racers.emplace_back([&, t] {
                const uint64_t session = 100 + t;
                if (dir.tryClaim(kSlot, base, session) ==
                    FailoverEpochDirectory::Claim::Won) {
                    wins.fetch_add(1);
                    winner.store(session);
                }
            });
        }
        for (std::thread &t : racers)
            t.join();
        ASSERT_EQ(wins.load(), 1) << "round " << round;
        ASSERT_EQ(dir.claimWinner(kSlot), winner.load());
        // The winner completes; the epoch advances exactly once.
        ASSERT_EQ(dir.completeClaim(kSlot, winner.load()), base + 1);
        ASSERT_EQ(dir.epoch(kSlot), base + 1);
    }

    const auto hist = dir.history();
    ASSERT_EQ(hist.size(), static_cast<size_t>(kRounds));
    uint64_t expect = 2; // slots are born at epoch 1
    for (const auto &rec : hist) {
        EXPECT_EQ(rec.node, kSlot);
        EXPECT_EQ(rec.epoch, expect++);
        EXPECT_GE(rec.winner_session, 100u);
    }
    EXPECT_EQ(dir.stats(kSlot).promotions,
              static_cast<uint64_t>(kRounds));
    EXPECT_EQ(dir.stats(kSlot).claims_won,
              static_cast<uint64_t>(kRounds));
}

TEST(EpochRaceTest, ConcurrentCompleteAndTakeoverStaySingleBump)
{
    FailoverEpochDirectory dir;
    constexpr int kRounds = 32;
    for (int round = 0; round < kRounds; ++round) {
        const uint64_t base = dir.epoch(kSlot);
        ASSERT_EQ(dir.tryClaim(kSlot, base, /*session=*/1),
                  FailoverEpochDirectory::Claim::Won);
        // Push the claim into takeover territory, then race the stalled
        // winner's completion against the usurper's.
        while (dir.noteClaimStall(kSlot) < 8) {
        }
        std::atomic<uint64_t> bumps{0};
        std::thread usurper([&] {
            if (dir.takeOverClaim(kSlot, /*session=*/2) &&
                dir.completeClaim(kSlot, 2) != 0)
                bumps.fetch_add(1);
        });
        std::thread stalled([&] {
            if (dir.completeClaim(kSlot, 1) != 0)
                bumps.fetch_add(1);
        });
        usurper.join();
        stalled.join();
        // Ownership arbitration: whoever held the claim at completion
        // time bumped; the other observed 0 and re-resolved.
        ASSERT_EQ(bumps.load(), 1u) << "round " << round;
        ASSERT_EQ(dir.epoch(kSlot), base + 1);
        ASSERT_FALSE(dir.promotionInFlight(kSlot));
    }
    ASSERT_EQ(dir.history().size(), static_cast<size_t>(kRounds));
}

TEST(EpochRaceTest, StaleObservedEpochLosesTheClaim)
{
    FailoverEpochDirectory dir;
    ASSERT_EQ(dir.tryClaim(kSlot, 1, 7),
              FailoverEpochDirectory::Claim::Won);
    ASSERT_EQ(dir.completeClaim(kSlot, 7), 2u);
    // A racer still holding epoch 1 must lose outright — its world view
    // predates the promotion it is trying to start.
    EXPECT_EQ(dir.tryClaim(kSlot, 1, 8),
              FailoverEpochDirectory::Claim::Lost);
    // And a claimant at the current epoch wins while the slot is free.
    EXPECT_EQ(dir.tryClaim(kSlot, 2, 8),
              FailoverEpochDirectory::Claim::Won);
    EXPECT_EQ(dir.tryClaim(kSlot, 2, 9),
              FailoverEpochDirectory::Claim::InFlight);
    dir.abortClaim(kSlot, 8);
    EXPECT_FALSE(dir.promotionInFlight(kSlot));
}

} // namespace
} // namespace asymnvm
