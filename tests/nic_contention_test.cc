/**
 * @file
 * Shared-NIC contention model: per-QP accounting, cross-session doorbell
 * aggregation, the two-class QoS arbiter, and the resetStats seqlock.
 *
 * The single-threaded cases pin the model's arithmetic exactly — the
 * legacy scalar path because existing benchmark cells must reproduce
 * bit-identically with the ablation flag off, the per-QP path because
 * the multisession sweep's shape depends on it. The threaded cases are
 * the real-thread coverage for cross-session accounting (exactly-once
 * burst/WQE accounting, monotone counters) and the regression test for
 * the resetStats coherence race; run them under -DASYMNVM_TSAN=ON
 * alongside epoch_race_test.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "sim/nic.h"

namespace asymnvm {
namespace {

constexpr uint64_t kService = 150;

NicQosConfig
perQpConfig(uint64_t merge_window_ns = 600, uint32_t bg_share_pct = 100)
{
    NicQosConfig q;
    q.cross_session_merge = true;
    q.merge_window_ns = merge_window_ns;
    q.bg_share_pct = bg_share_pct;
    return q;
}

// ---------------------------------------------------------------------
// Legacy scalar model: exact values (bit-identity with the flag off)
// ---------------------------------------------------------------------

TEST(NicLegacyTest, ScalarDelayMathUnchanged)
{
    NicModel nic(kService);
    // Not enough signal yet: span below 10 service times.
    EXPECT_EQ(nic.reserveBatch(1, 0), 0u);
    // busy=1500ns over span=3000ns: rho=0.500 -> W = s*500/(2*500) = 75.
    EXPECT_EQ(nic.reserveBatch(9, 3000), 75u);
    // busy=3000ns over span=4500ns: ppk=666 -> 150*666/668 = 149 (integer).
    EXPECT_EQ(nic.reserveBatch(10, 4500), 149u);
    EXPECT_EQ(nic.verbCount(), 20u);
    EXPECT_EQ(nic.busyNs(), 20 * kService);
    // The per-QP machinery stays dormant: no class/QP accounting.
    EXPECT_EQ(nic.classBursts(VerbClass::Foreground), 0u);
    EXPECT_TRUE(nic.qpSnapshot().empty());
}

TEST(NicLegacyTest, ResetRebasesUtilizationAtCurrentTime)
{
    NicModel nic(kService);
    for (int i = 1; i <= 20; ++i)
        (void)nic.reserve(i * 10 * kService);
    EXPECT_NEAR(nic.utilization(), 0.1, 0.01);
    nic.resetStats();
    EXPECT_DOUBLE_EQ(nic.utilization(), 0.0);
    // Post-reset the model behaves like a fresh one anchored at the
    // reset time: the first arrival is inside the warm-up span again,
    // and utilization measures only post-reset busy time over the
    // post-reset span (150ns busy over the 100ns span).
    EXPECT_EQ(nic.reserveBatch(1, 20 * 10 * kService + 100), 0u);
    EXPECT_DOUBLE_EQ(nic.utilization(), 1.5);
}

// ---------------------------------------------------------------------
// Per-QP contention: deterministic delay math
// ---------------------------------------------------------------------

TEST(NicPerQpTest, RoundRobinDrainAndOwnFifoBacklog)
{
    NicModel nic(kService);
    nic.setQos(perQpConfig());
    // First burst on an idle NIC: only the arrival processing.
    EXPECT_EQ(nic.reserveBatch(4, 10000, /*qp=*/1), 240u);
    // QP1's horizon: 10000 + 4*150 + 240 = 10840 (backlog of 6 slots).
    // QP2 arrives while that drains: round-robin caps QP1's share at
    // n=4 slots, and the draining backlog means the doorbell merges
    // (no arrival overhead): wait = 4*150 = 600.
    EXPECT_EQ(nic.reserveBatch(4, 10000, /*qp=*/2), 600u);
    // QP1 again at the same instant: queues behind its OWN 6 undrained
    // slots in full (FIFO) plus min(4,4) of QP2's; merged again.
    EXPECT_EQ(nic.reserveBatch(4, 10000, /*qp=*/1), 1500u);
    EXPECT_EQ(nic.classBursts(VerbClass::Foreground), 3u);
    EXPECT_EQ(nic.classWqes(VerbClass::Foreground), 12u);
    EXPECT_EQ(nic.classMerged(VerbClass::Foreground), 2u);
    // Queue-wait excludes arrival overheads: 0 + 600 + 1500.
    EXPECT_EQ(nic.classQueueWaitNs(VerbClass::Foreground), 2100u);
}

TEST(NicPerQpTest, MergeWindowCoalescesIdleNicArrivals)
{
    NicModel nic(kService);
    nic.setQos(perQpConfig(/*merge_window_ns=*/600));
    // QP1 arrives; its backlog fully drains long before QP2's arrival,
    // so only the timestamp window can merge the second doorbell.
    EXPECT_EQ(nic.reserveBatch(2, 100000, 1), 240u);
    // 400ns later from another QP: inside the window, merged, and the
    // earlier backlog has drained (horizon 100540 < 100400? no — still
    // draining: 100000+300+240 = 100540 > 100400, backlog 1 slot).
    EXPECT_EQ(nic.reserveBatch(2, 100400, 2), 150u);
    EXPECT_EQ(nic.classMerged(VerbClass::Foreground), 1u);
    // Far outside the window on an idle NIC: full arrival overhead.
    EXPECT_EQ(nic.reserveBatch(2, 200000, 1), 240u);
    EXPECT_EQ(nic.classMerged(VerbClass::Foreground), 1u);
    // Same QP re-ringing within the window does NOT merge (aggregation
    // is a cross-session effect; a QP's own chain already batched).
    NicModel own(kService);
    own.setQos(perQpConfig(600));
    (void)own.reserveBatch(1, 50000, 7);
    (void)own.reserveBatch(1, 50000 + 390 + 240, 7); // own drain is over
    EXPECT_EQ(own.classMerged(VerbClass::Foreground), 0u);
}

TEST(NicPerQpTest, MergeWindowZeroDisablesAggregation)
{
    NicModel nic(kService);
    nic.setQos(perQpConfig(/*merge_window_ns=*/0));
    EXPECT_EQ(nic.reserveBatch(4, 10000, 1), 240u);
    // Same instant, other QP: still pays its own arrival processing on
    // top of the round-robin drain (no-merge ablation baseline).
    EXPECT_EQ(nic.reserveBatch(4, 10000, 2), 600u + 240u);
    EXPECT_EQ(nic.classMerged(VerbClass::Foreground), 0u);
}

TEST(NicPerQpTest, GatherReservationsLandOnTheQpTrack)
{
    NicModel nic(kService);
    nic.setQos(perQpConfig());
    EXPECT_EQ(nic.reserveGather(8, 10000, /*ops=*/2, /*qp=*/3), 240u);
    EXPECT_EQ(nic.gatherBatches(), 1u);
    EXPECT_EQ(nic.gatherWqes(), 8u);
    EXPECT_EQ(nic.multiOpBatches(), 1u);
    const auto qps = nic.qpSnapshot();
    ASSERT_EQ(qps.size(), 1u);
    EXPECT_EQ(qps[0].first, 3u);
    EXPECT_EQ(qps[0].second.bursts, 1u);
    EXPECT_EQ(qps[0].second.wqes, 8u);
}

// ---------------------------------------------------------------------
// QoS arbiter: background rate cap and foreground protection
// ---------------------------------------------------------------------

TEST(NicQosTest, UncappedBackgroundBacklogDrainsAheadOfForeground)
{
    NicModel nic(kService);
    nic.setQos(perQpConfig(600, /*bg_share_pct=*/100));
    // A replication storm parks 100 WQEs of background backlog.
    EXPECT_EQ(nic.reserveBatch(100, 0, 99, VerbClass::Background), 240u);
    // Horizon 100*150+240 = 15240 -> 102 backlog slots. Uncapped, a
    // foreground burst waits out ALL of it (cross-class arrivals do not
    // merge; the foreground class is idle so no window match either).
    EXPECT_EQ(nic.reserveBatch(4, 0, 1, VerbClass::Foreground),
              102 * kService + 240);
}

TEST(NicQosTest, CapBoundsBackgroundSlotsAheadOfForeground)
{
    NicModel nic(kService);
    nic.setQos(perQpConfig(600, /*bg_share_pct=*/25));
    // Background pays its pacing up front: 100 WQEs at 25% of line rate
    // stall 100*150*75/25 = 45000ns beyond the service itself.
    EXPECT_EQ(nic.reserveBatch(100, 0, 99, VerbClass::Background),
              45000u + 240u);
    EXPECT_EQ(nic.bgThrottleNs(), 45000u);
    // Foreground now sees at most n*25/75 = 1 background slot ahead of
    // its 4-WQE burst, not the full 102-slot backlog.
    EXPECT_EQ(nic.reserveBatch(4, 0, 1, VerbClass::Foreground),
              1 * kService + 240);
}

TEST(NicQosTest, BackgroundAlwaysWaitsOutForegroundBacklog)
{
    NicModel nic(kService);
    nic.setQos(perQpConfig(600, /*bg_share_pct=*/25));
    EXPECT_EQ(nic.reserveBatch(4, 0, 1, VerbClass::Foreground), 240u);
    // fg horizon 840 -> 6 slots. Background waits the full foreground
    // backlog plus its own pacing: 6*150 + 2*150*3 + arrival.
    EXPECT_EQ(nic.reserveBatch(2, 0, 99, VerbClass::Background),
              6 * kService + 900 + 240);
}

// ---------------------------------------------------------------------
// Real threads: exactly-once accounting and the reset seqlock
// ---------------------------------------------------------------------

TEST(NicThreadedTest, ExactlyOnceBurstAccountingMergeOnAndOff)
{
    for (const uint64_t window : {uint64_t{0}, uint64_t{600}}) {
        NicModel nic(kService);
        nic.setQos(perQpConfig(window));
        constexpr int kThreads = 8;
        constexpr uint64_t kCalls = 200;
        constexpr uint64_t kWqes = 3;
        std::vector<std::thread> workers;
        workers.reserve(kThreads);
        for (int t = 0; t < kThreads; ++t) {
            workers.emplace_back([&nic, t] {
                uint64_t now = 1000 + static_cast<uint64_t>(t) * 37;
                for (uint64_t i = 0; i < kCalls; ++i) {
                    if (i % 2 == 0)
                        (void)nic.reserveBatch(kWqes, now, t + 1);
                    else
                        (void)nic.reserveGather(kWqes, now, 2, t + 1);
                    now += 5 * kService;
                }
            });
        }
        // A racing reader must only ever observe monotone counters.
        std::atomic<bool> done{false};
        std::thread reader([&nic, &done] {
            uint64_t last_bursts = 0, last_wqes = 0, last_verbs = 0;
            while (!done.load(std::memory_order_acquire)) {
                const uint64_t b = nic.classBursts(VerbClass::Foreground);
                const uint64_t w = nic.classWqes(VerbClass::Foreground);
                const uint64_t v = nic.verbCount();
                EXPECT_GE(b, last_bursts);
                EXPECT_GE(w, last_wqes);
                EXPECT_GE(v, last_verbs);
                last_bursts = b;
                last_wqes = w;
                last_verbs = v;
            }
        });
        for (std::thread &w : workers)
            w.join();
        done.store(true, std::memory_order_release);
        reader.join();

        const uint64_t bursts = kThreads * kCalls;
        EXPECT_EQ(nic.classBursts(VerbClass::Foreground), bursts);
        EXPECT_EQ(nic.classWqes(VerbClass::Foreground), bursts * kWqes);
        EXPECT_EQ(nic.verbCount(), bursts * kWqes);
        EXPECT_EQ(nic.busyNs(), bursts * kWqes * kService);
        EXPECT_EQ(nic.gatherBatches(), bursts / 2);
        if (window == 0)
            EXPECT_EQ(nic.classMerged(VerbClass::Foreground), 0u);
        else
            EXPECT_LE(nic.classMerged(VerbClass::Foreground), bursts);
        const auto qps = nic.qpSnapshot();
        ASSERT_EQ(qps.size(), static_cast<size_t>(kThreads));
        for (const auto &[id, c] : qps) {
            EXPECT_EQ(c.bursts, kCalls);
            EXPECT_EQ(c.wqes, kCalls * kWqes);
        }
    }
}

TEST(NicThreadedTest, ResetStatsSeqlockRegression)
{
    // Regression for the resetStats coherence race: the busy counter
    // used to be zeroed separately from the time rebase, so a reader
    // could pair pre-reset busy time with a post-reset (near-zero) span
    // and see utilization orders of magnitude above reality. Writers
    // keep ~10% duty; readers sample while a resetter storms: every
    // observation must stay near that, never above full line rate.
    NicModel nic(kService);
    std::atomic<uint64_t> shared_now{0};
    std::atomic<bool> stop{false};
    constexpr int kWriters = 4;
    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (int t = 0; t < kWriters; ++t) {
        writers.emplace_back([&nic, &shared_now, &stop] {
            while (!stop.load(std::memory_order_acquire)) {
                const uint64_t now =
                    shared_now.fetch_add(10 * kService,
                                         std::memory_order_relaxed) +
                    10 * kService;
                (void)nic.reserve(now);
            }
        });
    }
    std::thread resetter([&nic, &stop] {
        while (!stop.load(std::memory_order_acquire))
            nic.resetStats();
    });
    for (int i = 0; i < 200000; ++i) {
        const double u = nic.utilization();
        ASSERT_LE(u, 1.0) << "utilization over-report after reset race";
    }
    stop.store(true, std::memory_order_release);
    for (std::thread &w : writers)
        w.join();
    resetter.join();
}

} // namespace
} // namespace asymnvm
