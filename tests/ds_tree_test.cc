/**
 * @file
 * Correctness tests for the ordered structures — SkipList, Bst, BpTree,
 * MvBst, MvBpTree — shared through typed tests: functional behaviour,
 * randomized differential testing against std::map, vector insertion,
 * persistence across re-open, multi-version snapshot semantics, lazy GC,
 * and the partitioning wrapper.
 */

#include <gtest/gtest.h>

#include <map>

#include "backend/backend_node.h"
#include "common/rand.h"
#include "ds/bptree.h"
#include "ds/bst.h"
#include "ds/mv_bptree.h"
#include "ds/mv_bst.h"
#include "ds/partitioned.h"
#include "ds/skiplist.h"
#include "frontend/session.h"

namespace asymnvm {
namespace {

BackendConfig
testConfig()
{
    BackendConfig cfg;
    cfg.nvm_size = 64ull << 20;
    cfg.max_frontends = 4;
    cfg.max_names = 32;
    cfg.memlog_ring_size = 1ull << 20;
    cfg.oplog_ring_size = 1ull << 20;
    cfg.block_size = 1024;
    return cfg;
}

template <typename DS>
class TreeTest : public ::testing::Test
{
  protected:
    TreeTest()
        : be(1, testConfig()),
          session(SessionConfig::rcb(7, 2 << 20, 32))
    {
        EXPECT_EQ(session.connect(&be), Status::Ok);
    }

    Status createTree(std::string_view name, DS *out)
    {
        return DS::create(session, 1, name, out);
    }

    BackendNode be;
    FrontendSession session;
};

using TreeTypes =
    ::testing::Types<SkipList, Bst, BpTree, MvBst, MvBpTree>;

class TreeNames
{
  public:
    template <typename T>
    static std::string GetName(int)
    {
        if (std::is_same_v<T, SkipList>)
            return "SkipList";
        if (std::is_same_v<T, Bst>)
            return "Bst";
        if (std::is_same_v<T, BpTree>)
            return "BpTree";
        if (std::is_same_v<T, MvBst>)
            return "MvBst";
        if (std::is_same_v<T, MvBpTree>)
            return "MvBpTree";
        return "Unknown";
    }
};

TYPED_TEST_SUITE(TreeTest, TreeTypes, TreeNames);

TYPED_TEST(TreeTest, InsertFindBasics)
{
    TypeParam tree;
    ASSERT_EQ(this->createTree("t", &tree), Status::Ok);
    for (uint64_t k = 1; k <= 300; ++k)
        ASSERT_EQ(tree.insert(k * 3, Value::ofU64(k)), Status::Ok);
    EXPECT_EQ(tree.size(), 300u);
    for (uint64_t k = 1; k <= 300; ++k) {
        Value v;
        ASSERT_EQ(tree.find(k * 3, &v), Status::Ok) << "key " << k * 3;
        EXPECT_EQ(v.asU64(), k);
    }
    Value v;
    EXPECT_EQ(tree.find(1, &v), Status::NotFound);
    EXPECT_EQ(tree.find(4, &v), Status::NotFound);
}

TYPED_TEST(TreeTest, UpdateOverwritesValue)
{
    TypeParam tree;
    ASSERT_EQ(this->createTree("t", &tree), Status::Ok);
    ASSERT_EQ(tree.insert(42, Value::ofU64(1)), Status::Ok);
    ASSERT_EQ(tree.insert(42, Value::ofU64(2)), Status::Ok);
    EXPECT_EQ(tree.size(), 1u);
    Value v;
    ASSERT_EQ(tree.find(42, &v), Status::Ok);
    EXPECT_EQ(v.asU64(), 2u);
}

TYPED_TEST(TreeTest, EraseRemovesOnlyTarget)
{
    TypeParam tree;
    ASSERT_EQ(this->createTree("t", &tree), Status::Ok);
    for (uint64_t k = 1; k <= 100; ++k)
        ASSERT_EQ(tree.insert(k, Value::ofU64(k)), Status::Ok);
    for (uint64_t k = 2; k <= 100; k += 2)
        ASSERT_EQ(tree.erase(k), Status::Ok) << "erase " << k;
    EXPECT_EQ(tree.size(), 50u);
    for (uint64_t k = 1; k <= 100; ++k)
        EXPECT_EQ(tree.contains(k), k % 2 == 1) << "key " << k;
    EXPECT_EQ(tree.erase(2), Status::NotFound);
}

TYPED_TEST(TreeTest, RandomizedDifferentialAgainstStdMap)
{
    TypeParam tree;
    ASSERT_EQ(this->createTree("t", &tree), Status::Ok);
    std::map<Key, uint64_t> model;
    Rng rng(101);
    for (int i = 0; i < 1200; ++i) {
        const Key key = 1 + rng.nextBounded(400);
        const double dice = rng.nextDouble();
        if (dice < 0.55) {
            const uint64_t val = rng.next();
            ASSERT_EQ(tree.insert(key, Value::ofU64(val)), Status::Ok);
            model[key] = val;
        } else if (dice < 0.75) {
            const Status st = tree.erase(key);
            EXPECT_EQ(st, model.count(key) ? Status::Ok
                                           : Status::NotFound)
                << "erase key " << key << " at step " << i;
            model.erase(key);
        } else {
            Value v;
            const Status st = tree.find(key, &v);
            if (model.count(key)) {
                ASSERT_EQ(st, Status::Ok)
                    << "find key " << key << " at step " << i;
                EXPECT_EQ(v.asU64(), model[key]);
            } else {
                EXPECT_EQ(st, Status::NotFound)
                    << "find key " << key << " at step " << i;
            }
        }
    }
    EXPECT_EQ(tree.size(), model.size());
    ASSERT_EQ(this->session.flushAll(), Status::Ok);
    for (const auto &[key, val] : model) {
        Value v;
        ASSERT_EQ(tree.find(key, &v), Status::Ok);
        EXPECT_EQ(v.asU64(), val);
    }
}

TYPED_TEST(TreeTest, VectorInsertMatchesSingleInserts)
{
    TypeParam tree;
    ASSERT_EQ(this->createTree("t", &tree), Status::Ok);
    std::vector<std::pair<Key, Value>> batch;
    Rng rng(55);
    for (int i = 0; i < 200; ++i)
        batch.emplace_back(1 + rng.nextBounded(100000),
                           Value::ofU64(rng.next()));
    ASSERT_EQ(tree.insertBatch(batch), Status::Ok);
    ASSERT_EQ(this->session.flushAll(), Status::Ok);
    for (const auto &[key, val] : batch) {
        Value v;
        ASSERT_EQ(tree.find(key, &v), Status::Ok) << "key " << key;
    }
}

TYPED_TEST(TreeTest, PersistsAcrossReopen)
{
    {
        TypeParam tree;
        ASSERT_EQ(this->createTree("persist", &tree), Status::Ok);
        for (uint64_t k = 1; k <= 500; ++k)
            ASSERT_EQ(tree.insert(k * 11, Value::ofU64(k)), Status::Ok);
        ASSERT_EQ(this->session.flushAll(), Status::Ok);
        this->session.disconnect(&this->be);
    }
    FrontendSession s2(SessionConfig::rc(8, 2 << 20));
    ASSERT_EQ(s2.connect(&this->be), Status::Ok);
    TypeParam tree;
    ASSERT_EQ(TypeParam::open(s2, 1, "persist", &tree), Status::Ok);
    EXPECT_EQ(tree.size(), 500u);
    for (uint64_t k = 1; k <= 500; ++k) {
        Value v;
        ASSERT_EQ(tree.find(k * 11, &v), Status::Ok) << "key " << k * 11;
        EXPECT_EQ(v.asU64(), k);
    }
}

TYPED_TEST(TreeTest, LargeSequentialInsertion)
{
    TypeParam tree;
    ASSERT_EQ(this->createTree("seq", &tree), Status::Ok);
    // Sequential keys stress B+tree splits and BST worst-case depth.
    const uint64_t n = std::is_same_v<TypeParam, Bst> ||
                               std::is_same_v<TypeParam, MvBst>
                           ? 400   // unbalanced trees degrade to a list
                           : 3000; // plenty of splits for B+trees
    for (uint64_t k = 1; k <= n; ++k)
        ASSERT_EQ(tree.insert(k, Value::ofU64(k)), Status::Ok);
    ASSERT_EQ(this->session.flushAll(), Status::Ok);
    EXPECT_EQ(tree.size(), n);
    for (uint64_t k = 1; k <= n; k += 7) {
        Value v;
        ASSERT_EQ(tree.find(k, &v), Status::Ok) << "key " << k;
        EXPECT_EQ(v.asU64(), k);
    }
}

TYPED_TEST(TreeTest, RecoveryReexecutesUncoveredOps)
{
    TypeParam tree;
    ASSERT_EQ(this->createTree("rec", &tree), Status::Ok);
    for (uint64_t k = 1; k <= 10; ++k)
        ASSERT_EQ(tree.insert(k, Value::ofU64(k)), Status::Ok);
    ASSERT_EQ(this->session.flushAll(), Status::Ok);
    // More inserts whose memory logs never flush (mid-batch crash).
    for (uint64_t k = 11; k <= 20; ++k)
        ASSERT_EQ(tree.insert(k, Value::ofU64(k)), Status::Ok);
    this->session.simulateCrash();
    TypeParam reopened;
    ASSERT_EQ(TypeParam::open(this->session, 1, "rec", &reopened),
              Status::Ok);
    ASSERT_EQ(this->session.recover(), Status::Ok);
    TypeParam verify;
    ASSERT_EQ(TypeParam::open(this->session, 1, "rec", &verify),
              Status::Ok);
    for (uint64_t k = 1; k <= 20; ++k) {
        Value v;
        EXPECT_EQ(verify.find(k, &v), Status::Ok)
            << "key " << k << " lost across the crash";
    }
}

// ---------------------------------------------------------------------
// Multi-version specifics
// ---------------------------------------------------------------------

class MvTest : public ::testing::Test
{
  protected:
    MvTest() : be(1, testConfig()) {}
    BackendNode be;
};

TEST_F(MvTest, ReaderSeesPublishedVersionOnly)
{
    FrontendSession writer(SessionConfig::rcb(1, 2 << 20, /*batch=*/64));
    ASSERT_EQ(writer.connect(&be), Status::Ok);
    MvBst wtree;
    ASSERT_EQ(MvBst::create(writer, 1, "mv", &wtree), Status::Ok);
    ASSERT_EQ(wtree.insert(1, Value::ofU64(100)), Status::Ok);
    ASSERT_EQ(writer.flushAll(), Status::Ok); // publish version 1

    FrontendSession reader(SessionConfig::rc(2, 2 << 20));
    ASSERT_EQ(reader.connect(&be), Status::Ok);
    MvBst rtree;
    ASSERT_EQ(MvBst::open(reader, 1, "mv", &rtree), Status::Ok);
    Value v;
    ASSERT_EQ(rtree.find(1, &v), Status::Ok);
    EXPECT_EQ(v.asU64(), 100u);

    // Unpublished write: the writer sees it, the reader must not.
    ASSERT_EQ(wtree.insert(2, Value::ofU64(200)), Status::Ok);
    ASSERT_EQ(wtree.find(2, &v), Status::Ok);
    EXPECT_EQ(rtree.find(2, &v), Status::NotFound)
        << "reader saw an unpublished version";
    // After publication the reader converges.
    ASSERT_EQ(writer.flushAll(), Status::Ok);
    ASSERT_EQ(rtree.find(2, &v), Status::Ok);
    EXPECT_EQ(v.asU64(), 200u);
}

TEST_F(MvTest, OldVersionNodesRetireThroughLazyGc)
{
    FrontendSession writer(SessionConfig::rcb(1, 2 << 20, 1));
    ASSERT_EQ(writer.connect(&be), Status::Ok);
    MvBst tree;
    ASSERT_EQ(MvBst::create(writer, 1, "gc", &tree), Status::Ok);
    for (uint64_t k = 1; k <= 32; ++k)
        ASSERT_EQ(tree.insert(k, Value::ofU64(k)), Status::Ok);
    // Updates supersede path nodes; retirements are queued at the
    // back-end but must not bump gc_epoch before the n+l delay.
    for (uint64_t k = 1; k <= 32; ++k)
        ASSERT_EQ(tree.insert(k, Value::ofU64(k + 1)), Status::Ok);
    EXPECT_GT(be.gcPending(), 0u);
    EXPECT_EQ(be.namingEntry(tree.id()).gc_epoch, 0u);
    be.processGc(writer.clock().now() + be.config().gc_delay_ns + 1);
    EXPECT_EQ(be.gcPending(), 0u);
    EXPECT_GT(be.namingEntry(tree.id()).gc_epoch, 0u);
}

TEST_F(MvTest, RootSwapIsAllOrNothingUnderCrash)
{
    FrontendSession writer(SessionConfig::rcb(1, 2 << 20, /*batch=*/64));
    ASSERT_EQ(writer.connect(&be), Status::Ok);
    MvBpTree tree;
    ASSERT_EQ(MvBpTree::create(writer, 1, "atomic", &tree), Status::Ok);
    for (uint64_t k = 1; k <= 50; ++k)
        ASSERT_EQ(tree.insert(k, Value::ofU64(k)), Status::Ok);
    ASSERT_EQ(writer.flushAll(), Status::Ok);
    const uint64_t root_before =
        be.namingEntry(tree.id()).root_raw;

    // A second batch crashes before its flush: the published root must
    // be unchanged (old version intact).
    for (uint64_t k = 51; k <= 60; ++k)
        ASSERT_EQ(tree.insert(k, Value::ofU64(k)), Status::Ok);
    writer.simulateCrash();
    EXPECT_EQ(be.namingEntry(tree.id()).root_raw, root_before)
        << "unpublished batch must not move the root";

    // Recovery re-executes the ops and publishes them.
    MvBpTree reopened;
    ASSERT_EQ(MvBpTree::open(writer, 1, "atomic", &reopened), Status::Ok);
    ASSERT_EQ(writer.recover(), Status::Ok);
    for (uint64_t k = 1; k <= 60; ++k) {
        Value v;
        EXPECT_EQ(reopened.find(k, &v), Status::Ok) << "key " << k;
    }
}

// ---------------------------------------------------------------------
// Partitioning
// ---------------------------------------------------------------------

TEST(PartitionedTest, RoutesAcrossMultipleBackends)
{
    BackendNode be1(1, testConfig());
    BackendNode be2(2, testConfig());
    FrontendSession s(SessionConfig::rcb(1, 2 << 20, 16));
    ASSERT_EQ(s.connect(&be1), Status::Ok);
    ASSERT_EQ(s.connect(&be2), Status::Ok);

    const NodeId backends[] = {1, 2};
    Partitioned<BpTree> part;
    ASSERT_EQ(Partitioned<BpTree>::create(
                  s, backends, "ptree", 4, &part,
                  [](FrontendSession &sess, NodeId be,
                     std::string_view name, BpTree *out) {
                      return BpTree::create(sess, be, name, out);
                  }),
              Status::Ok);
    EXPECT_EQ(part.partitionCount(), 4u);

    for (uint64_t k = 1; k <= 400; ++k)
        ASSERT_EQ(part.insert(k, Value::ofU64(k * 2)), Status::Ok);
    ASSERT_EQ(s.flushAll(), Status::Ok);
    EXPECT_EQ(part.size(), 400u);
    for (uint64_t k = 1; k <= 400; ++k) {
        Value v;
        ASSERT_EQ(part.find(k, &v), Status::Ok);
        EXPECT_EQ(v.asU64(), k * 2);
    }
    // Both back-ends actually hold partitions.
    EXPECT_GE(be1.nameCount(), 2u);
    EXPECT_GE(be2.nameCount(), 2u);

    for (uint64_t k = 1; k <= 400; k += 2)
        ASSERT_EQ(part.erase(k), Status::Ok);
    EXPECT_EQ(part.size(), 200u);
}

TEST(PartitionedTest, ReopenRestoresPartitionMap)
{
    BackendNode be1(1, testConfig());
    const NodeId backends[] = {1};
    {
        FrontendSession s(SessionConfig::rcb(1, 2 << 20, 16));
        ASSERT_EQ(s.connect(&be1), Status::Ok);
        Partitioned<BpTree> part;
        ASSERT_EQ(Partitioned<BpTree>::create(
                      s, backends, "pp", 3, &part,
                      [](FrontendSession &sess, NodeId be,
                         std::string_view name, BpTree *out) {
                          return BpTree::create(sess, be, name, out);
                      }),
                  Status::Ok);
        for (uint64_t k = 1; k <= 100; ++k)
            ASSERT_EQ(part.insert(k, Value::ofU64(k)), Status::Ok);
        ASSERT_EQ(s.flushAll(), Status::Ok);
        s.disconnect(&be1);
    }
    FrontendSession s2(SessionConfig::rcb(2, 2 << 20, 16));
    ASSERT_EQ(s2.connect(&be1), Status::Ok);
    Partitioned<BpTree> part;
    ASSERT_EQ(Partitioned<BpTree>::open(
                  s2, backends, "pp", &part,
                  [](FrontendSession &sess, NodeId be,
                     std::string_view name, BpTree *out) {
                      return BpTree::open(sess, be, name, out);
                  }),
              Status::Ok);
    EXPECT_EQ(part.partitionCount(), 3u);
    for (uint64_t k = 1; k <= 100; ++k) {
        Value v;
        ASSERT_EQ(part.find(k, &v), Status::Ok);
        EXPECT_EQ(v.asU64(), k);
    }
}

} // namespace
} // namespace asymnvm
