/**
 * @file
 * Whole-deployment integration test mirroring the paper's Section 9.1
 * cluster: seven front-end sessions, one back-end, two mirror nodes —
 * all active concurrently. Four sessions write their own structures
 * (one per kind), three read a shared tree, then the back-end fails
 * permanently mid-life and every session fails over to the promoted
 * mirror. Everything written before the failure must survive; every
 * session must keep working after it.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "asymnvm.h"

namespace asymnvm {
namespace {

ClusterConfig
paperDeployment()
{
    ClusterConfig cfg;
    cfg.num_backends = 1;
    cfg.mirrors_per_backend = 2;
    cfg.backend.nvm_size = 64ull << 20;
    cfg.backend.max_frontends = 8;
    cfg.backend.max_names = 32;
    cfg.backend.memlog_ring_size = 2ull << 20;
    cfg.backend.oplog_ring_size = 1ull << 20;
    return cfg;
}

TEST(DeploymentTest, TenNodeClusterLifecycle)
{
    Cluster cluster(paperDeployment());
    DsOptions shared;
    shared.shared = true;
    shared.max_read_retries = 4096;

    // --- Phase 1: set up seven front-ends. ---
    std::vector<std::unique_ptr<FrontendSession>> sessions;
    for (uint64_t i = 0; i < 7; ++i) {
        sessions.push_back(cluster.makeSession(
            SessionConfig::rcb(100 + i, 1 << 20, 16)));
        ASSERT_NE(sessions.back(), nullptr) << "session " << i;
    }

    // Session 0 owns the shared tree the readers will hammer.
    BpTree shared_tree;
    ASSERT_EQ(BpTree::create(*sessions[0], 1, "shared", &shared_tree,
                             shared),
              Status::Ok);
    for (uint64_t k = 1; k <= 1000; ++k)
        ASSERT_EQ(shared_tree.insert(k, Value::ofU64(k)), Status::Ok);
    ASSERT_EQ(sessions[0]->flushAll(), Status::Ok);

    // Sessions 1..3 own private structures of different kinds.
    HashTable ht;
    ASSERT_EQ(HashTable::create(*sessions[1], 1, "private/ht", 256, &ht),
              Status::Ok);
    SkipList sl;
    ASSERT_EQ(SkipList::create(*sessions[2], 1, "private/sl", &sl),
              Status::Ok);
    Queue q;
    ASSERT_EQ(Queue::create(*sessions[3], 1, "private/q", &q), Status::Ok);

    // Readers 4..6 open the shared tree.
    BpTree readers[3];
    for (int r = 0; r < 3; ++r) {
        ASSERT_EQ(BpTree::open(*sessions[4 + r], 1, "shared", &readers[r],
                               shared),
                  Status::Ok);
    }

    // --- Phase 2: everyone runs concurrently. ---
    std::atomic<bool> go{false};
    std::atomic<uint64_t> reader_errors{0};
    std::vector<std::thread> threads;
    threads.emplace_back([&] {
        while (!go.load())
            std::this_thread::yield();
        for (uint64_t k = 1001; k <= 1500; ++k) {
            ASSERT_EQ(shared_tree.insert(k, Value::ofU64(k)), Status::Ok);
            std::this_thread::yield();
        }
        ASSERT_EQ(sessions[0]->flushAll(), Status::Ok);
    });
    threads.emplace_back([&] {
        while (!go.load())
            std::this_thread::yield();
        for (uint64_t k = 1; k <= 500; ++k)
            ASSERT_EQ(ht.put(k, Value::ofU64(k * 3)), Status::Ok);
        ASSERT_EQ(sessions[1]->flushAll(), Status::Ok);
    });
    threads.emplace_back([&] {
        while (!go.load())
            std::this_thread::yield();
        for (uint64_t k = 1; k <= 500; ++k)
            ASSERT_EQ(sl.insert(k * 2, Value::ofU64(k)), Status::Ok);
        ASSERT_EQ(sessions[2]->flushAll(), Status::Ok);
    });
    threads.emplace_back([&] {
        while (!go.load())
            std::this_thread::yield();
        for (uint64_t k = 1; k <= 500; ++k)
            ASSERT_EQ(q.enqueue(Value::ofU64(k)), Status::Ok);
        ASSERT_EQ(sessions[3]->flushAll(), Status::Ok);
    });
    for (int r = 0; r < 3; ++r) {
        threads.emplace_back([&, r] {
            while (!go.load())
                std::this_thread::yield();
            Rng rng(500 + r);
            for (int i = 0; i < 1500; ++i) {
                const Key k = 1 + rng.nextBounded(1000); // preloaded range
                Value v;
                const Status st = readers[r].find(k, &v);
                if (st == Status::Conflict)
                    continue;
                if (st != Status::Ok || v.asU64() != k)
                    reader_errors.fetch_add(1);
            }
        });
    }
    go.store(true);
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(reader_errors.load(), 0u);

    // --- Phase 3: the back-end dies permanently; mirror promotion. ---
    cluster.crashBackendTransient(1);
    ASSERT_EQ(cluster.failBackendPermanently(1, 1000000), Status::Ok);
    for (auto &s : sessions)
        ASSERT_EQ(s->failover(1, cluster.backend(1)), Status::Ok);

    // --- Phase 4: everything survived; everyone keeps working. ---
    BpTree shared2;
    ASSERT_EQ(BpTree::open(*sessions[0], 1, "shared", &shared2, shared),
              Status::Ok);
    EXPECT_EQ(shared2.size(), 1500u);
    Value v;
    ASSERT_EQ(shared2.find(1500, &v), Status::Ok);

    HashTable ht2;
    ASSERT_EQ(HashTable::open(*sessions[1], 1, "private/ht", &ht2),
              Status::Ok);
    EXPECT_EQ(ht2.size(), 500u);
    ASSERT_EQ(ht2.get(250, &v), Status::Ok);
    EXPECT_EQ(v.asU64(), 750u);

    SkipList sl2;
    ASSERT_EQ(SkipList::open(*sessions[2], 1, "private/sl", &sl2),
              Status::Ok);
    EXPECT_EQ(sl2.size(), 500u);

    Queue q2;
    ASSERT_EQ(Queue::open(*sessions[3], 1, "private/q", &q2), Status::Ok);
    EXPECT_EQ(q2.size(), 500u);
    ASSERT_EQ(q2.dequeue(&v), Status::Ok);
    EXPECT_EQ(v.asU64(), 1u);

    // Fresh writes on the promoted back-end replicate to the surviving
    // mirror — which can itself be promoted (second failover).
    ASSERT_EQ(ht2.put(9999, Value::ofU64(1)), Status::Ok);
    ASSERT_EQ(sessions[1]->flushAll(), Status::Ok);
    cluster.crashBackendTransient(1);
    ASSERT_EQ(cluster.failBackendPermanently(1, 2000000), Status::Ok);
    ASSERT_EQ(sessions[1]->failover(1, cluster.backend(1)), Status::Ok);
    HashTable ht3;
    ASSERT_EQ(HashTable::open(*sessions[1], 1, "private/ht", &ht3),
              Status::Ok);
    ASSERT_EQ(ht3.get(9999, &v), Status::Ok);
    // A third failure has no mirror left.
    cluster.crashBackendTransient(1);
    EXPECT_EQ(cluster.failBackendPermanently(1, 3000000),
              Status::Unavailable);
}

} // namespace
} // namespace asymnvm
