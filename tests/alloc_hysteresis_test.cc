/**
 * @file
 * Allocator reclaim hysteresis window (SessionConfig::
 * alloc_hysteresis_cycles): a workload oscillating with a period longer
 * than the window ping-pongs slabs through FreeBlocks/AllocBlocks RPCs,
 * while a window covering the period holds the empties across the quiet
 * cycles — and a permanent demand collapse still drains the surplus.
 */

#include <gtest/gtest.h>

#include <vector>

#include "frontend/allocator.h"
#include "rdma/rpc.h"

namespace asymnvm {
namespace {

constexpr uint64_t kSlab = 1024;

/** Counting mock of the back-end allocator RPC. */
struct MockBackendAlloc
{
    uint64_t next_off = 1 << 20;
    uint64_t alloc_calls = 0;
    uint64_t free_calls = 0;
    uint64_t freed_blocks = 0;

    FrontendAllocator::RpcFn fn()
    {
        return [this](RpcOp op, std::span<const uint64_t> args,
                      std::span<const uint8_t>, uint64_t rets[4]) {
            if (op == RpcOp::AllocBlocks) {
                ++alloc_calls;
                rets[0] = next_off;
                next_off += args[0] * kSlab;
                return Status::Ok;
            }
            if (op == RpcOp::FreeBlocks) {
                ++free_calls;
                freed_blocks += args[1];
                return Status::Ok;
            }
            return Status::InvalidArgument;
        };
    }
};

/**
 * One oscillation period: a heavy cycle drawing @p heavy slabs from the
 * empty list, then @p quiet light cycles drawing @p light each. Every
 * alloc is slab-sized so one alloc consumes exactly one empty slab.
 */
void
runPeriod(FrontendAllocator &a, uint32_t heavy, uint32_t light,
          uint32_t quiet)
{
    std::vector<RemotePtr> held;
    for (uint32_t i = 0; i < heavy; ++i) {
        RemotePtr p;
        ASSERT_EQ(a.alloc(kSlab, &p), Status::Ok);
        held.push_back(p);
    }
    for (const RemotePtr p : held)
        ASSERT_EQ(a.free(p, kSlab), Status::Ok);
    for (uint32_t q = 0; q < quiet; ++q) {
        held.clear();
        for (uint32_t i = 0; i < light; ++i) {
            RemotePtr p;
            ASSERT_EQ(a.alloc(kSlab, &p), Status::Ok);
            held.push_back(p);
        }
        for (const RemotePtr p : held)
            ASSERT_EQ(a.free(p, kSlab), Status::Ok);
    }
}

TEST(AllocHysteresisTest, WindowCoveringPeriodStopsRpcPingPong)
{
    // Period 3 (heavy, light, light). A window of 4 keeps the heavy
    // cycle's demand visible through both light cycles.
    MockBackendAlloc mock;
    FrontendAllocator a(1, kSlab, mock.fn(), /*reclaim_threshold=*/4,
                        /*hysteresis_cycles=*/4);
    runPeriod(a, 16, 2, 2); // warm-up: builds the empty list
    const uint64_t allocs_after_warmup = mock.alloc_calls;
    const uint64_t frees_after_warmup = mock.free_calls;
    for (int period = 0; period < 6; ++period)
        runPeriod(a, 16, 2, 2);
    // Steady state: the held empties absorb every heavy burst — no
    // FreeBlocks during the light cycles, no AllocBlocks re-fetch.
    EXPECT_EQ(mock.free_calls, frees_after_warmup);
    EXPECT_EQ(mock.alloc_calls, allocs_after_warmup);
}

TEST(AllocHysteresisTest, WindowShorterThanPeriodOscillates)
{
    // Same period-3 workload, window 2 (the pre-configurable default):
    // the heavy demand rotates out during the second light cycle, the
    // surplus reclaims, and the next heavy cycle re-fetches — the RPC
    // oscillation this knob exists to kill.
    MockBackendAlloc mock;
    FrontendAllocator a(1, kSlab, mock.fn(), /*reclaim_threshold=*/4,
                        /*hysteresis_cycles=*/2);
    runPeriod(a, 16, 2, 2);
    const uint64_t allocs_after_warmup = mock.alloc_calls;
    const uint64_t frees_after_warmup = mock.free_calls;
    for (int period = 0; period < 6; ++period)
        runPeriod(a, 16, 2, 2);
    EXPECT_GT(mock.free_calls, frees_after_warmup);
    EXPECT_GT(mock.alloc_calls, allocs_after_warmup);
}

TEST(AllocHysteresisTest, DemandCollapseStillDrainsSurplus)
{
    // A long window must not pin surplus forever: when demand collapses
    // for good, the peak rotates out after window-many quiet cycles and
    // the empties drain to the static threshold.
    MockBackendAlloc mock;
    FrontendAllocator a(1, kSlab, mock.fn(), /*reclaim_threshold=*/4,
                        /*hysteresis_cycles=*/4);
    runPeriod(a, 32, 0, 0); // one big burst, then nothing but trickle
    EXPECT_GT(a.emptySlabsHeld(), 4u);
    for (int cycle = 0; cycle < 8; ++cycle)
        runPeriod(a, 1, 0, 0);
    EXPECT_LE(a.emptySlabsHeld(), 4u + 1u);
    EXPECT_GT(mock.free_calls, 0u);
}

TEST(AllocHysteresisTest, WindowClampsToOne)
{
    MockBackendAlloc mock;
    FrontendAllocator a(1, kSlab, mock.fn(), /*reclaim_threshold=*/4,
                        /*hysteresis_cycles=*/0);
    EXPECT_EQ(a.hysteresisCycles(), 1u);
    // Window 1 tracks only the current cycle — still correct, maximally
    // eager to reclaim.
    runPeriod(a, 8, 1, 1);
    RemotePtr p;
    ASSERT_EQ(a.alloc(kSlab, &p), Status::Ok);
    ASSERT_EQ(a.free(p, kSlab), Status::Ok);
    EXPECT_GT(mock.free_calls, 0u);
}

} // namespace
} // namespace asymnvm
