/**
 * @file
 * Parameterized configuration sweeps: the framework must behave
 * identically across ring sizes (many wraps vs none), block sizes,
 * cache policies and batch sizes. Each sweep runs a fixed randomized
 * workload plus a crash/recovery cycle and checks the same final state.
 */

#include <gtest/gtest.h>

#include <map>

#include "backend/backend_node.h"
#include "common/rand.h"
#include "ds/bptree.h"
#include "frontend/session.h"

namespace asymnvm {
namespace {

struct SweepParam
{
    uint64_t memlog_ring;
    uint64_t oplog_ring;
    uint64_t block_size;
    uint32_t batch;
    CachePolicy policy;
};

class ConfigSweepTest : public ::testing::TestWithParam<SweepParam>
{
};

TEST_P(ConfigSweepTest, SameWorkloadSameState)
{
    const SweepParam &p = GetParam();
    BackendConfig cfg;
    cfg.nvm_size = 32ull << 20;
    cfg.max_frontends = 4;
    cfg.max_names = 8;
    cfg.memlog_ring_size = p.memlog_ring;
    cfg.oplog_ring_size = p.oplog_ring;
    cfg.block_size = p.block_size;
    auto be = std::make_unique<BackendNode>(1, cfg);

    SessionConfig scfg = SessionConfig::rcb(77, 512 << 10, p.batch);
    scfg.cache_policy = p.policy;
    FrontendSession s(scfg);
    ASSERT_EQ(s.connect(be.get()), Status::Ok);
    BpTree tree;
    ASSERT_EQ(BpTree::create(s, 1, "sweep", &tree), Status::Ok);

    // Identical randomized workload for every configuration.
    std::map<Key, uint64_t> model;
    Rng rng(4242);
    for (int i = 0; i < 3000; ++i) {
        const Key k = 1 + rng.nextBounded(600);
        if (rng.nextBool(0.7)) {
            const uint64_t val = rng.next();
            ASSERT_EQ(tree.insert(k, Value::ofU64(val)), Status::Ok);
            model[k] = val;
        } else {
            const Status st = tree.erase(k);
            ASSERT_EQ(st, model.count(k) ? Status::Ok : Status::NotFound);
            model.erase(k);
        }
    }
    ASSERT_EQ(s.flushAll(), Status::Ok);

    // Uncommitted tail + full crash/recovery cycle.
    for (Key k = 10000; k < 10050; ++k) {
        ASSERT_EQ(tree.insert(k, Value::ofU64(k)), Status::Ok);
        model[k] = k;
    }
    auto device = be->device();
    be = std::make_unique<BackendNode>(1, cfg, device);
    s.simulateCrash();
    ASSERT_EQ(s.failover(1, be.get()), Status::Ok);
    BpTree re;
    ASSERT_EQ(BpTree::open(s, 1, "sweep", &re), Status::Ok);
    ASSERT_EQ(s.recover(), Status::Ok);

    BpTree audit;
    ASSERT_EQ(BpTree::open(s, 1, "sweep", &audit), Status::Ok);
    EXPECT_EQ(audit.size(), model.size());
    for (const auto &[k, val] : model) {
        Value v;
        ASSERT_EQ(audit.find(k, &v), Status::Ok) << "key " << k;
        EXPECT_EQ(v.asU64(), val) << "key " << k;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ConfigSweepTest,
    ::testing::Values(
        // Tiny rings: constant wrap-around.
        SweepParam{16ull << 10, 8ull << 10, 1024, 16, CachePolicy::Hybrid},
        // Large rings: no wraps at all.
        SweepParam{4ull << 20, 2ull << 20, 1024, 16, CachePolicy::Hybrid},
        // Small slabs stress the two-tier allocator.
        SweepParam{1ull << 20, 512ull << 10, 256, 16, CachePolicy::Hybrid},
        // Big slabs waste space but must still work.
        SweepParam{1ull << 20, 512ull << 10, 4096, 16,
                   CachePolicy::Hybrid},
        // Per-op commits vs huge batches.
        SweepParam{1ull << 20, 512ull << 10, 1024, 1, CachePolicy::Hybrid},
        SweepParam{1ull << 20, 512ull << 10, 1024, 2048,
                   CachePolicy::Hybrid},
        // Every cache policy.
        SweepParam{1ull << 20, 512ull << 10, 1024, 16, CachePolicy::Lru},
        SweepParam{1ull << 20, 512ull << 10, 1024, 16,
                   CachePolicy::Random}),
    [](const auto &info) {
        const SweepParam &p = info.param;
        std::string name = "ring" + std::to_string(p.memlog_ring >> 10) +
                           "k_blk" + std::to_string(p.block_size) +
                           "_batch" + std::to_string(p.batch);
        name += p.policy == CachePolicy::Lru      ? "_lru"
                : p.policy == CachePolicy::Random ? "_rr"
                                                  : "_hybrid";
        return name;
    });

} // namespace
} // namespace asymnvm
