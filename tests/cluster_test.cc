/**
 * @file
 * End-to-end tests of the recovery and replication protocol (Section 7):
 * the keepAlive lease service, and crash scenarios Cases 1-5 — front-end
 * reader/writer crashes, back-end transient restart, back-end permanent
 * failure with mirror promotion, and mirror crashes — driven through the
 * Cluster harness with real data structures on top.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "ds/bptree.h"
#include "ds/hash_table.h"
#include "frontend/session.h"

namespace asymnvm {
namespace {

ClusterConfig
smallCluster(uint32_t backends = 1, uint32_t mirrors = 2)
{
    ClusterConfig cfg;
    cfg.num_backends = backends;
    cfg.mirrors_per_backend = mirrors;
    cfg.backend.nvm_size = 16ull << 20;
    cfg.backend.max_frontends = 4;
    cfg.backend.max_names = 16;
    cfg.backend.memlog_ring_size = 256ull << 10;
    cfg.backend.oplog_ring_size = 256ull << 10;
    return cfg;
}

// ---------------------------------------------------------------------
// KeepAlive service
// ---------------------------------------------------------------------

TEST(KeepAliveTest, LeaseExpiryDetectsCrash)
{
    KeepAliveService ka(1000);
    ka.join(1, NodeRole::BackEnd, 0);
    EXPECT_TRUE(ka.isAlive(1, 500));
    EXPECT_TRUE(ka.renew(1, 900));
    EXPECT_TRUE(ka.isAlive(1, 1500));
    EXPECT_FALSE(ka.isAlive(1, 2500));
}

TEST(KeepAliveTest, LapsedNodeCannotResurrect)
{
    KeepAliveService ka(1000);
    ka.join(2, NodeRole::FrontEnd, 0);
    EXPECT_FALSE(ka.renew(2, 5000)) << "expired lease cannot renew";
    EXPECT_FALSE(ka.isAlive(2, 5001));
}

TEST(KeepAliveTest, ExpiredListsOnlyDeadNodes)
{
    KeepAliveService ka(1000);
    ka.join(1, NodeRole::BackEnd, 0);
    ka.join(2, NodeRole::Mirror, 0);
    ka.renew(1, 800);
    const auto dead = ka.expired(1500);
    ASSERT_EQ(dead.size(), 1u);
    EXPECT_EQ(dead[0], 2);
}

TEST(KeepAliveTest, VotePrefersLiveNvmMirror)
{
    KeepAliveService ka(1000);
    ka.join(1, NodeRole::BackEnd, 0);
    ka.join(100, NodeRole::Mirror, 0, /*has_nvm=*/false, /*of=*/1);
    ka.join(101, NodeRole::Mirror, 0, /*has_nvm=*/true, /*of=*/1);
    const auto winner = ka.voteReplacement(1, 500);
    ASSERT_TRUE(winner.has_value());
    EXPECT_EQ(*winner, 101) << "only NVM mirrors are promotable";
}

TEST(KeepAliveTest, NoCandidateNoWinner)
{
    KeepAliveService ka(1000);
    ka.join(1, NodeRole::BackEnd, 0);
    EXPECT_FALSE(ka.voteReplacement(1, 0).has_value());
}

TEST(KeepAliveTest, RenewExactlyAtExpirySucceeds)
{
    // The lease is inclusive of its deadline: renewing at now ==
    // lease_until is still in time; one tick later it is not.
    KeepAliveService ka(1000);
    ka.join(1, NodeRole::BackEnd, 0);
    EXPECT_TRUE(ka.isAlive(1, 1000));
    EXPECT_TRUE(ka.renew(1, 1000)) << "deadline itself is still alive";
    EXPECT_TRUE(ka.isAlive(1, 2000));
    EXPECT_FALSE(ka.renew(1, 2001)) << "one tick past the lease is dead";
}

TEST(KeepAliveTest, RejoinAfterEvictionRestoresLease)
{
    KeepAliveService ka(1000);
    ka.join(3, NodeRole::BackEnd, 0);
    EXPECT_FALSE(ka.renew(3, 5000)) << "lapses and is evicted";
    EXPECT_FALSE(ka.isAlive(3, 5000));
    // A restarted node re-registers: join overwrites the evicted member
    // with a fresh lease (Case 3 restart path).
    ka.join(3, NodeRole::BackEnd, 6000);
    EXPECT_TRUE(ka.isAlive(3, 6500));
    EXPECT_TRUE(ka.renew(3, 6500));
}

TEST(KeepAliveTest, VoteIgnoresDramOnlyMirrors)
{
    KeepAliveService ka(1000);
    ka.join(1, NodeRole::BackEnd, 0);
    ka.join(100, NodeRole::Mirror, 0, /*has_nvm=*/false, /*of=*/1);
    ka.join(101, NodeRole::Mirror, 0, /*has_nvm=*/false, /*of=*/1);
    EXPECT_FALSE(ka.voteReplacement(1, 500).has_value())
        << "DRAM-only mirrors cannot become the back-end";
}

TEST(KeepAliveTest, LeaveThenRejoinSameIdGetsFreshLease)
{
    KeepAliveService ka(1000);
    ka.join(7, NodeRole::Mirror, 0, /*has_nvm=*/true, /*of=*/1);
    ka.leave(7);
    EXPECT_FALSE(ka.isAlive(7, 100));
    EXPECT_EQ(ka.memberCount(), 0u);
    ka.join(7, NodeRole::Mirror, 4000, /*has_nvm=*/true, /*of=*/1);
    EXPECT_TRUE(ka.isAlive(7, 4500));
    ka.join(1, NodeRole::BackEnd, 4000);
    const auto winner = ka.voteReplacement(1, 4500);
    ASSERT_TRUE(winner.has_value());
    EXPECT_EQ(*winner, 7u) << "a re-joined mirror is promotable again";
}

// ---------------------------------------------------------------------
// Full-cluster crash scenarios
// ---------------------------------------------------------------------

TEST(ClusterTest, Case1FrontendReaderCrashResumesViaNaming)
{
    Cluster cluster(smallCluster());
    auto s = cluster.makeSession(SessionConfig::rcb(1, 1 << 20, 16));
    ASSERT_NE(s, nullptr);
    BpTree tree;
    ASSERT_EQ(BpTree::create(*s, 1, "t", &tree), Status::Ok);
    for (uint64_t k = 1; k <= 50; ++k)
        ASSERT_EQ(tree.insert(k, Value::ofU64(k)), Status::Ok);
    ASSERT_EQ(s->flushAll(), Status::Ok);

    // Reader crash: nothing in flight; re-open via naming and resume.
    s->simulateCrash();
    ASSERT_EQ(s->recover(), Status::Ok);
    BpTree reopened;
    ASSERT_EQ(BpTree::open(*s, 1, "t", &reopened), Status::Ok);
    Value v;
    ASSERT_EQ(reopened.find(25, &v), Status::Ok);
    EXPECT_EQ(v.asU64(), 25u);
}

TEST(ClusterTest, Case2FrontendWriterCrashMidBatch)
{
    Cluster cluster(smallCluster());
    auto s = cluster.makeSession(SessionConfig::rcb(1, 1 << 20, 64));
    ASSERT_NE(s, nullptr);
    HashTable ht;
    ASSERT_EQ(HashTable::create(*s, 1, "h", 64, &ht), Status::Ok);
    for (uint64_t k = 1; k <= 30; ++k)
        ASSERT_EQ(ht.put(k, Value::ofU64(k * 5)), Status::Ok);
    // Crash with 30 ops durable only as operation logs (Case 2.c).
    s->simulateCrash();
    HashTable recovered;
    ASSERT_EQ(HashTable::open(*s, 1, "h", &recovered), Status::Ok);
    ASSERT_EQ(s->recover(), Status::Ok);
    HashTable verify;
    ASSERT_EQ(HashTable::open(*s, 1, "h", &verify), Status::Ok);
    for (uint64_t k = 1; k <= 30; ++k) {
        Value v;
        ASSERT_EQ(verify.get(k, &v), Status::Ok) << "key " << k;
        EXPECT_EQ(v.asU64(), k * 5);
    }
}

TEST(ClusterTest, Case3BackendTransientRestart)
{
    Cluster cluster(smallCluster());
    auto s = cluster.makeSession(SessionConfig::rcb(1, 1 << 20, 8));
    ASSERT_NE(s, nullptr);
    BpTree tree;
    ASSERT_EQ(BpTree::create(*s, 1, "t", &tree), Status::Ok);
    for (uint64_t k = 1; k <= 40; ++k)
        ASSERT_EQ(tree.insert(k, Value::ofU64(k)), Status::Ok);
    ASSERT_EQ(s->flushAll(), Status::Ok);

    // The back-end dies; verbs fail through the RNIC feedback.
    cluster.crashBackendTransient(1);
    Value v;
    EXPECT_EQ(tree.find(1, &v), Status::BackendCrashed);

    // It restarts from its own NVM; the session fails over to the new
    // incarnation (same node id) and resumes.
    ASSERT_EQ(cluster.restartBackend(1), Status::Ok);
    ASSERT_EQ(s->failover(1, cluster.backend(1)), Status::Ok);
    BpTree reopened;
    ASSERT_EQ(BpTree::open(*s, 1, "t", &reopened), Status::Ok);
    for (uint64_t k = 1; k <= 40; ++k) {
        ASSERT_EQ(reopened.find(k, &v), Status::Ok) << "key " << k;
        EXPECT_EQ(v.asU64(), k);
    }
    // And it keeps serving writes.
    ASSERT_EQ(reopened.insert(41, Value::ofU64(41)), Status::Ok);
    ASSERT_EQ(s->flushAll(), Status::Ok);
    ASSERT_EQ(reopened.find(41, &v), Status::Ok);
}

TEST(ClusterTest, Case4PermanentFailurePromotesMirror)
{
    Cluster cluster(smallCluster());
    auto s = cluster.makeSession(SessionConfig::rcb(1, 1 << 20, 8));
    ASSERT_NE(s, nullptr);
    BpTree tree;
    ASSERT_EQ(BpTree::create(*s, 1, "t", &tree), Status::Ok);
    for (uint64_t k = 1; k <= 60; ++k)
        ASSERT_EQ(tree.insert(k, Value::ofU64(k * 2)), Status::Ok);
    ASSERT_EQ(s->flushAll(), Status::Ok);

    BackendNode *old = cluster.backend(1);
    cluster.crashBackendTransient(1);
    ASSERT_EQ(cluster.failBackendPermanently(1, /*now=*/1000),
              Status::Ok);
    BackendNode *promoted = cluster.backend(1);
    ASSERT_NE(promoted, old);
    EXPECT_EQ(promoted->id(), 1) << "promotion keeps the node id";

    ASSERT_EQ(s->failover(1, promoted), Status::Ok);
    BpTree reopened;
    ASSERT_EQ(BpTree::open(*s, 1, "t", &reopened), Status::Ok);
    EXPECT_EQ(reopened.size(), 60u);
    for (uint64_t k = 1; k <= 60; ++k) {
        Value v;
        ASSERT_EQ(reopened.find(k, &v), Status::Ok) << "key " << k;
        EXPECT_EQ(v.asU64(), k * 2);
    }
    // The promoted back-end accepts new writes and replicates onward.
    ASSERT_EQ(reopened.insert(61, Value::ofU64(122)), Status::Ok);
    ASSERT_EQ(s->flushAll(), Status::Ok);
}

TEST(ClusterTest, Case4WithUnflushedOpsReexecutesThem)
{
    Cluster cluster(smallCluster());
    auto s = cluster.makeSession(SessionConfig::rcb(1, 1 << 20, 128));
    ASSERT_NE(s, nullptr);
    HashTable ht;
    ASSERT_EQ(HashTable::create(*s, 1, "h", 64, &ht), Status::Ok);
    for (uint64_t k = 1; k <= 20; ++k)
        ASSERT_EQ(ht.put(k, Value::ofU64(k)), Status::Ok);
    ASSERT_EQ(s->flushAll(), Status::Ok);
    // These ops reach the op log (replicated) but not the data area.
    for (uint64_t k = 21; k <= 40; ++k)
        ASSERT_EQ(ht.put(k, Value::ofU64(k)), Status::Ok);

    cluster.crashBackendTransient(1);
    ASSERT_EQ(cluster.failBackendPermanently(1, 1000), Status::Ok);
    s->simulateCrash(); // the writer also loses its buffers
    ASSERT_EQ(s->failover(1, cluster.backend(1)), Status::Ok);

    HashTable recovered;
    ASSERT_EQ(HashTable::open(*s, 1, "h", &recovered), Status::Ok);
    ASSERT_EQ(s->recover(), Status::Ok);
    HashTable verify;
    ASSERT_EQ(HashTable::open(*s, 1, "h", &verify), Status::Ok);
    for (uint64_t k = 1; k <= 40; ++k) {
        Value v;
        ASSERT_EQ(verify.get(k, &v), Status::Ok)
            << "key " << k << " lost across promotion";
    }
}

TEST(ClusterTest, Case5MirrorCrashLeavesServiceIntact)
{
    Cluster cluster(smallCluster(1, 2));
    auto s = cluster.makeSession(SessionConfig::rcb(1, 1 << 20, 8));
    ASSERT_NE(s, nullptr);
    BpTree tree;
    ASSERT_EQ(BpTree::create(*s, 1, "t", &tree), Status::Ok);
    ASSERT_EQ(tree.insert(1, Value::ofU64(1)), Status::Ok);
    ASSERT_EQ(s->flushAll(), Status::Ok);

    cluster.crashMirror(1, 0, 500);
    ASSERT_EQ(cluster.mirrorsOf(1).size(), 1u);
    // Service continues; the surviving mirror still replicates.
    ASSERT_EQ(tree.insert(2, Value::ofU64(2)), Status::Ok);
    ASSERT_EQ(s->flushAll(), Status::Ok);
    // And the surviving mirror can still take over (Case 4).
    cluster.crashBackendTransient(1);
    ASSERT_EQ(cluster.failBackendPermanently(1, 1000), Status::Ok);
    ASSERT_EQ(s->failover(1, cluster.backend(1)), Status::Ok);
    BpTree reopened;
    ASSERT_EQ(BpTree::open(*s, 1, "t", &reopened), Status::Ok);
    Value v;
    ASSERT_EQ(reopened.find(2, &v), Status::Ok);
}

TEST(ClusterTest, TornCommitDetectedAfterCrashMidFlush)
{
    Cluster cluster(smallCluster());
    auto s = cluster.makeSession(SessionConfig::rcb(1, 1 << 20, 512));
    ASSERT_NE(s, nullptr);
    BackendNode *be = cluster.backend(1);
    HashTable ht;
    ASSERT_EQ(HashTable::create(*s, 1, "h", 64, &ht), Status::Ok);
    for (uint64_t k = 1; k <= 25; ++k)
        ASSERT_EQ(ht.put(k, Value::ofU64(k)), Status::Ok);

    // Crash the back-end on the very next verb: the flush's transaction
    // write tears mid-flight; the checksum end mark must catch it.
    be->failure().armCrashAfterVerbs(0, /*seed=*/5);
    EXPECT_NE(s->flushAll(), Status::Ok);
    be->nvm().crash();

    ASSERT_EQ(cluster.restartBackend(1), Status::Ok);
    s->simulateCrash();
    ASSERT_EQ(s->failover(1, cluster.backend(1)), Status::Ok);
    HashTable recovered;
    ASSERT_EQ(HashTable::open(*s, 1, "h", &recovered), Status::Ok);
    ASSERT_EQ(s->recover(), Status::Ok);
    HashTable verify;
    ASSERT_EQ(HashTable::open(*s, 1, "h", &verify), Status::Ok);
    for (uint64_t k = 1; k <= 25; ++k) {
        Value v;
        ASSERT_EQ(verify.get(k, &v), Status::Ok)
            << "key " << k << " lost to the torn transaction";
        EXPECT_EQ(v.asU64(), k);
    }
}

TEST(ClusterTest, MultiBackendClusterServesPartitions)
{
    Cluster cluster(smallCluster(3, 1));
    auto s = cluster.makeSession(SessionConfig::rcb(1, 1 << 20, 8));
    ASSERT_NE(s, nullptr);
    ASSERT_EQ(cluster.backendIds().size(), 3u);
    // One structure per back-end, all reachable from one session.
    for (NodeId id : cluster.backendIds()) {
        BpTree tree;
        ASSERT_EQ(BpTree::create(*s, id, "t", &tree), Status::Ok);
        ASSERT_EQ(tree.insert(id, Value::ofU64(id * 10)), Status::Ok);
        ASSERT_EQ(s->flushAll(), Status::Ok);
        Value v;
        ASSERT_EQ(tree.find(id, &v), Status::Ok);
        EXPECT_EQ(v.asU64(), id * 10u);
    }
}

} // namespace
} // namespace asymnvm
