/**
 * @file
 * Concurrency stress for the FailureInjector: multiple "NIC" threads
 * drive onVerb while an observer polls firedAtVerb()/crashed(). The
 * fired index is published with a release store that the acquire load in
 * firedAtVerb() pairs with, so an observer that sees the index must also
 * see the crashed state. Built to run clean under ThreadSanitizer
 * (-DASYMNVM_TSAN=ON).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "sim/failure.h"

namespace asymnvm {
namespace {

TEST(FailureRaceTest, ConcurrentOnVerbAndFiredAtPolling)
{
    constexpr int kThreads = 4;
    constexpr int kVerbsPerThread = 250;
    FailureInjector fi;
    for (int round = 0; round < 20; ++round) {
        fi.recover();
        fi.armCrashAfterVerbs(/*nth=*/100, /*seed=*/round + 1);

        std::atomic<bool> stop{false};
        std::atomic<int> violations{0};
        std::thread poller([&] {
            while (!stop.load(std::memory_order_relaxed)) {
                const auto fired = fi.firedAtVerb();
                // Release/acquire pairing: a visible fired index implies
                // a visible crashed flag.
                if (fired.has_value() && !fi.crashed())
                    violations.fetch_add(1, std::memory_order_relaxed);
            }
        });
        std::vector<std::thread> nics;
        for (int t = 0; t < kThreads; ++t) {
            nics.emplace_back([&fi] {
                for (int i = 0; i < kVerbsPerThread; ++i)
                    fi.onVerb(/*write_len=*/64);
            });
        }
        for (auto &n : nics)
            n.join();
        stop.store(true, std::memory_order_relaxed);
        poller.join();

        EXPECT_EQ(violations.load(), 0)
            << "round " << round
            << ": fired index visible before crashed flag";
        const auto fired = fi.firedAtVerb();
        ASSERT_TRUE(fired.has_value());
        EXPECT_LT(*fired, static_cast<uint64_t>(kThreads) *
                              kVerbsPerThread);
        EXPECT_TRUE(fi.crashed());
    }
}

TEST(FailureRaceTest, UnfiredInjectorReportsNothing)
{
    FailureInjector fi;
    std::vector<std::thread> nics;
    for (int t = 0; t < 4; ++t) {
        nics.emplace_back([&fi] {
            for (int i = 0; i < 1000; ++i)
                fi.onVerb(0);
        });
    }
    for (auto &n : nics)
        n.join();
    EXPECT_FALSE(fi.firedAtVerb().has_value());
    EXPECT_FALSE(fi.crashed());
}

} // namespace
} // namespace asymnvm
