/**
 * @file
 * Unit tests for transient-fault injection (sim/fault.h), the verb
 * retry/backoff policy (rdma/verbs), and session-level transparent
 * failover (Section 7.2 Cases 3/4 without application help).
 */

#include <gtest/gtest.h>

#include "check/chaos.h"
#include "cluster/cluster.h"
#include "ds/hash_table.h"
#include "frontend/session.h"
#include "nvm/nvm_device.h"
#include "rdma/verbs.h"
#include "sim/fault.h"

namespace asymnvm {
namespace {

class FaultVerbsTest : public ::testing::Test
{
  protected:
    FaultVerbsTest() : dev(1 << 20), nic(120), verbs(&clock, &lat)
    {
        verbs.attach(1, RdmaTarget{&dev, &nic, &fail, &faults});
    }

    NvmDevice dev;
    NicModel nic;
    FailureInjector fail;
    FaultModel faults;
    SimClock clock;
    LatencyModel lat;
    Verbs verbs;
};

TEST_F(FaultVerbsTest, DroppedCompletionsAreRetriedTransparently)
{
    FaultConfig fc;
    fc.drop_rate = 0.3;
    faults.configure(fc, /*seed=*/42);
    for (uint64_t i = 0; i < 200; ++i) {
        const uint64_t v = i * 3 + 1;
        ASSERT_EQ(verbs.write(RemotePtr(1, 64 + i * 8), &v, 8),
                  Status::Ok);
    }
    for (uint64_t i = 0; i < 200; ++i) {
        uint64_t v = 0;
        ASSERT_EQ(verbs.read(RemotePtr(1, 64 + i * 8), &v, 8), Status::Ok)
            << "read " << i;
        EXPECT_EQ(v, i * 3 + 1);
    }
    const RetryStats &rs = verbs.retryStats();
    EXPECT_GT(rs.timeouts, 0u) << "drops should have been injected";
    EXPECT_GT(rs.totalRetries(), 0u);
    EXPECT_GT(rs.backoff_ns, 0u) << "retries charge jittered backoff";
}

TEST_F(FaultVerbsTest, QpErrorIsResetAndVerbsRecover)
{
    FaultConfig fc;
    fc.qp_error_rate = 0.1;
    faults.configure(fc, /*seed=*/7);
    for (uint64_t i = 0; i < 300; ++i) {
        const uint64_t v = i;
        ASSERT_EQ(verbs.write64(RemotePtr(1, 1024), v), Status::Ok);
    }
    const RetryStats &rs = verbs.retryStats();
    EXPECT_GT(rs.qp_errors, 0u);
    EXPECT_EQ(rs.qp_errors, rs.qp_resets)
        << "every QP error transition is followed by a reset";
    EXPECT_FALSE(verbs.qpInError(1));
}

TEST_F(FaultVerbsTest, RetryExhaustionSurfacesTimeout)
{
    FaultConfig fc;
    fc.drop_rate = 1.0;     // every completion is lost
    fc.drop_after_frac = 0; // and no payload lands
    faults.configure(fc, /*seed=*/3);
    uint64_t v = 0;
    EXPECT_EQ(verbs.read(RemotePtr(1, 64), &v, 8), Status::Timeout);
    EXPECT_EQ(verbs.retryStats().timeouts, verbs.retryPolicy().max_attempts);
}

TEST_F(FaultVerbsTest, DropAfterLandsPayloadDespiteTimeout)
{
    FaultConfig fc;
    fc.drop_rate = 1.0;
    fc.drop_after_frac = 1.0; // payload always lands, completion lost
    faults.configure(fc, /*seed=*/11);
    const uint64_t v = 0xabcdef;
    EXPECT_EQ(verbs.write(RemotePtr(1, 2048), &v, 8), Status::Timeout);
    faults.disarm();
    uint64_t got = 0;
    ASSERT_EQ(verbs.read64(RemotePtr(1, 2048), &got), Status::Ok);
    EXPECT_EQ(got, v) << "duplicated payloads must still land (idempotent)";
}

TEST_F(FaultVerbsTest, DelaysChargeTimeWithoutRetries)
{
    FaultConfig fc;
    fc.delay_rate = 1.0;
    fc.delay_ns = 9000;
    faults.configure(fc, /*seed=*/5);
    const uint64_t before = clock.now();
    uint64_t v = 0;
    ASSERT_EQ(verbs.read(RemotePtr(1, 64), &v, 8), Status::Ok);
    EXPECT_GE(clock.now() - before, 9000u);
    EXPECT_EQ(verbs.retryStats().totalRetries(), 0u);
    EXPECT_EQ(verbs.retryStats().delayed, 1u);
}

TEST_F(FaultVerbsTest, GraySlowdownChargesExtraServiceTime)
{
    faults.slowDownUntil(/*until_ns=*/1ull << 40, /*extra_ns=*/7777);
    const uint64_t before = clock.now();
    uint64_t v = 0;
    ASSERT_EQ(verbs.read(RemotePtr(1, 64), &v, 8), Status::Ok);
    const uint64_t gray = clock.now() - before;
    faults.disarm();
    const uint64_t before2 = clock.now();
    ASSERT_EQ(verbs.read(RemotePtr(1, 64), &v, 8), Status::Ok);
    // The NIC bandwidth reservation rounds against virtual time, so the
    // two service times can differ by a nanosecond; only the injected
    // penalty's order of magnitude matters.
    EXPECT_GE(gray + 1000, (clock.now() - before2) + 7777);
}

TEST_F(FaultVerbsTest, DeterministicUnderSeed)
{
    FaultConfig fc;
    fc.drop_rate = 0.2;
    fc.delay_rate = 0.2;
    fc.qp_error_rate = 0.05;
    uint64_t clocks[2];
    uint64_t retries[2];
    for (int run = 0; run < 2; ++run) {
        NvmDevice d(1 << 20);
        NicModel n(120);
        FailureInjector fi;
        FaultModel fm;
        SimClock ck;
        Verbs vb(&ck, &lat);
        vb.attach(1, RdmaTarget{&d, &n, &fi, &fm});
        fm.configure(fc, /*seed=*/1234);
        for (uint64_t i = 0; i < 100; ++i) {
            const uint64_t v = i;
            ASSERT_EQ(vb.write64(RemotePtr(1, 64 + i * 8), v), Status::Ok);
        }
        clocks[run] = ck.now();
        retries[run] = vb.retryStats().totalRetries();
    }
    EXPECT_EQ(clocks[0], clocks[1]);
    EXPECT_EQ(retries[0], retries[1]);
}

// ---------------------------------------------------------------------
// Transparent failover end-to-end
// ---------------------------------------------------------------------

ClusterConfig
failoverCluster(uint32_t mirrors = 2)
{
    ClusterConfig cfg;
    cfg.num_backends = 1;
    cfg.mirrors_per_backend = mirrors;
    cfg.backend.nvm_size = 16ull << 20;
    cfg.backend.max_frontends = 4;
    cfg.backend.max_names = 16;
    cfg.backend.memlog_ring_size = 256ull << 10;
    cfg.backend.oplog_ring_size = 256ull << 10;
    cfg.transparent_failover = true;
    return cfg;
}

TEST(TransparentFailoverTest, TransientCrashHealsWithoutAppHelp)
{
    Cluster cluster(failoverCluster());
    auto s = cluster.makeSession(SessionConfig::rcb(1, 1 << 20, 16));
    ASSERT_NE(s, nullptr);
    HashTable ht;
    ASSERT_EQ(HashTable::create(*s, 1, "h", 64, &ht), Status::Ok);
    for (uint64_t k = 1; k <= 20; ++k)
        ASSERT_EQ(ht.put(k, Value::ofU64(k * 7)), Status::Ok);

    cluster.keepAlive().renew(1, s->clock().now());
    cluster.crashBackendTransient(1);

    // The very next operation heals the session: Case 3 restart, shadow
    // replay, and a transparent re-issue at the op boundary.
    ASSERT_EQ(ht.put(21, Value::ofU64(21 * 7)), Status::Ok);
    EXPECT_EQ(s->failoversCompleted(), 1u);
    ASSERT_EQ(s->flushAll(), Status::Ok);
    for (uint64_t k = 1; k <= 21; ++k) {
        Value v;
        ASSERT_EQ(ht.get(k, &v), Status::Ok) << "key " << k;
        EXPECT_EQ(v.asU64(), k * 7);
    }
}

TEST(TransparentFailoverTest, CondemnedNodeWaitsOutLeaseThenPromotes)
{
    Cluster cluster(failoverCluster());
    auto s = cluster.makeSession(SessionConfig::rcb(1, 1 << 20, 16));
    ASSERT_NE(s, nullptr);
    HashTable ht;
    ASSERT_EQ(HashTable::create(*s, 1, "h", 64, &ht), Status::Ok);
    for (uint64_t k = 1; k <= 20; ++k)
        ASSERT_EQ(ht.put(k, Value::ofU64(k)), Status::Ok);
    ASSERT_EQ(s->flushAll(), Status::Ok);

    cluster.keepAlive().renew(1, s->clock().now());
    BackendNode *old = cluster.backend(1);
    cluster.condemnBackend(1);
    // Restart is impossible now; only promotion can heal.
    EXPECT_EQ(cluster.restartBackend(1), Status::Unavailable);

    const uint64_t t0 = s->clock().now();
    ASSERT_EQ(ht.put(21, Value::ofU64(21)), Status::Ok);
    EXPECT_EQ(s->failoversCompleted(), 1u);
    EXPECT_NE(cluster.backend(1), old) << "a mirror was promoted";
    EXPECT_EQ(cluster.backend(1)->id(), 1u);
    EXPECT_EQ(cluster.mirrorsOf(1).size(), 1u)
        << "the promoted mirror left the replica roster";
    EXPECT_GE(s->clock().now() - t0, cluster.keepAlive().leaseNs())
        << "promotion must wait out the condemned node's lease";

    ASSERT_EQ(s->flushAll(), Status::Ok);
    for (uint64_t k = 1; k <= 21; ++k) {
        Value v;
        ASSERT_EQ(ht.get(k, &v), Status::Ok) << "key " << k;
    }
    // The promoted primary is a full citizen: it can fail over again.
    cluster.keepAlive().renew(1, s->clock().now());
    cluster.condemnBackend(1);
    ASSERT_EQ(ht.put(22, Value::ofU64(22)), Status::Ok);
    EXPECT_EQ(s->failoversCompleted(), 2u);
    EXPECT_TRUE(cluster.mirrorsOf(1).empty());
}

TEST(TransparentFailoverTest, StatsExposeRetryAndFailoverWork)
{
    Cluster cluster(failoverCluster());
    auto s = cluster.makeSession(SessionConfig::rcb(1, 1 << 20, 16));
    ASSERT_NE(s, nullptr);
    HashTable ht;
    ASSERT_EQ(HashTable::create(*s, 1, "h", 64, &ht), Status::Ok);
    FaultConfig fc;
    fc.drop_rate = 0.05;
    cluster.backend(1)->faults().configure(fc, /*seed=*/9);
    for (uint64_t k = 1; k <= 60; ++k)
        ASSERT_EQ(ht.put(k, Value::ofU64(k)), Status::Ok);
    ASSERT_EQ(s->flushAll(), Status::Ok);
    const SessionStats stats = s->stats();
    EXPECT_GT(stats.ops_started, 0u);
    EXPECT_GT(stats.verbs.writes + stats.verbs.posted, 0u);
    EXPECT_GT(stats.retry.totalRetries(), 0u);
}

// A short deterministic chaos run doubles as the harness's smoke test.
TEST(ChaosSmokeTest, TwoSeedsSurviveMixedChaos)
{
    for (uint64_t seed : {1ull, 2ull}) {
        ChaosConfig cfg;
        cfg.seed = seed;
        cfg.num_ops = 120;
        const ChaosResult r = runChaosSoak(cfg);
        EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.error;
        EXPECT_EQ(r.ops_done, cfg.num_ops);
        EXPECT_GT(r.audits, 0u);
    }
}

} // namespace
} // namespace asymnvm
