/**
 * @file
 * Tests for the transaction applications (SmallBank, TATP) and the
 * workload generators: functional transaction semantics, money
 * conservation invariants, recovery of application state, mix sanity,
 * and workload distribution properties.
 */

#include <gtest/gtest.h>

#include "apps/smallbank.h"
#include "apps/tatp.h"
#include "backend/backend_node.h"
#include "frontend/session.h"
#include "workload/workload.h"

namespace asymnvm {
namespace {

BackendConfig
testConfig()
{
    BackendConfig cfg;
    cfg.nvm_size = 64ull << 20;
    cfg.max_frontends = 4;
    cfg.max_names = 16;
    cfg.memlog_ring_size = 1ull << 20;
    cfg.oplog_ring_size = 1ull << 20;
    return cfg;
}

class SmallBankTest : public ::testing::Test
{
  protected:
    SmallBankTest()
        : be(1, testConfig()), s(SessionConfig::rcb(1, 2 << 20, 16))
    {
        EXPECT_EQ(s.connect(&be), Status::Ok);
        EXPECT_EQ(SmallBank::create(s, 1, 50, &bank), Status::Ok);
    }

    BackendNode be;
    FrontendSession s;
    SmallBank bank;
};

TEST_F(SmallBankTest, InitialBalances)
{
    int64_t total = 0;
    ASSERT_EQ(bank.balance(1, &total), Status::Ok);
    EXPECT_EQ(total, 200);
    ASSERT_EQ(bank.totalAssets(&total), Status::Ok);
    EXPECT_EQ(total, 50 * 200);
}

TEST_F(SmallBankTest, DepositAndWriteCheck)
{
    ASSERT_EQ(bank.depositChecking(3, 40), Status::Ok);
    int64_t total = 0;
    ASSERT_EQ(bank.balance(3, &total), Status::Ok);
    EXPECT_EQ(total, 240);
    ASSERT_EQ(bank.writeCheck(3, 100), Status::Ok);
    ASSERT_EQ(bank.balance(3, &total), Status::Ok);
    EXPECT_EQ(total, 140);
}

TEST_F(SmallBankTest, WriteCheckOverdraftPenalty)
{
    ASSERT_EQ(bank.writeCheck(4, 500), Status::Ok); // over the 200 total
    int64_t total = 0;
    ASSERT_EQ(bank.balance(4, &total), Status::Ok);
    EXPECT_EQ(total, 200 - 500 - 1) << "penalty applies on overdraft";
}

TEST_F(SmallBankTest, SendPaymentConservesMoney)
{
    ASSERT_EQ(bank.sendPayment(1, 2, 50), Status::Ok);
    int64_t t1 = 0, t2 = 0;
    ASSERT_EQ(bank.balance(1, &t1), Status::Ok);
    ASSERT_EQ(bank.balance(2, &t2), Status::Ok);
    EXPECT_EQ(t1, 150);
    EXPECT_EQ(t2, 250);
    EXPECT_EQ(bank.sendPayment(1, 2, 10000), Status::InvalidArgument)
        << "insufficient checking must reject";
}

TEST_F(SmallBankTest, AmalgamateMovesEverything)
{
    ASSERT_EQ(bank.amalgamate(5, 6), Status::Ok);
    int64_t t5 = 0, t6 = 0;
    ASSERT_EQ(bank.balance(5, &t5), Status::Ok);
    ASSERT_EQ(bank.balance(6, &t6), Status::Ok);
    EXPECT_EQ(t5, 0);
    EXPECT_EQ(t6, 400);
}

TEST_F(SmallBankTest, ConservationUnderTransferOnlyMix)
{
    // Only money-moving transactions: total assets must be invariant.
    Rng rng(3);
    for (int i = 0; i < 300; ++i) {
        const uint64_t a = 1 + rng.nextBounded(50);
        uint64_t b = 1 + rng.nextBounded(50);
        if (a == b)
            b = (b % 50) + 1;
        if (rng.nextBool())
            (void)bank.sendPayment(a, b, 1 +
                                   static_cast<int64_t>(rng.nextBounded(30)));
        else
            (void)bank.amalgamate(a, b);
    }
    ASSERT_EQ(s.flushAll(), Status::Ok);
    int64_t total = 0;
    ASSERT_EQ(bank.totalAssets(&total), Status::Ok);
    EXPECT_EQ(total, 50 * 200) << "money leaked or was invented";
}

TEST_F(SmallBankTest, StandardMixRuns)
{
    Rng rng(9);
    for (int i = 0; i < 500; ++i)
        ASSERT_EQ(bank.runOne(rng), Status::Ok) << "txn " << i;
    ASSERT_EQ(s.flushAll(), Status::Ok);
}

TEST_F(SmallBankTest, SurvivesCrashAndRecovery)
{
    ASSERT_EQ(bank.depositChecking(7, 123), Status::Ok);
    // Crash with the deposit only in the operation log.
    s.simulateCrash();
    SmallBank reopened;
    ASSERT_EQ(SmallBank::open(s, 1, &reopened), Status::Ok);
    ASSERT_EQ(s.recover(), Status::Ok);
    SmallBank verify;
    ASSERT_EQ(SmallBank::open(s, 1, &verify), Status::Ok);
    int64_t total = 0;
    ASSERT_EQ(verify.balance(7, &total), Status::Ok);
    EXPECT_EQ(total, 323);
}

class TatpTest : public ::testing::Test
{
  protected:
    TatpTest()
        : be(1, testConfig()), s(SessionConfig::rcb(1, 2 << 20, 16))
    {
        EXPECT_EQ(s.connect(&be), Status::Ok);
        EXPECT_EQ(Tatp::create(s, 1, 100, &tatp), Status::Ok);
    }

    BackendNode be;
    FrontendSession s;
    Tatp tatp;
};

TEST_F(TatpTest, SubscriberDataReadable)
{
    Value v;
    ASSERT_EQ(tatp.getSubscriberData(1, &v), Status::Ok);
    EXPECT_EQ(v.asU64(), 131u);
    EXPECT_EQ(tatp.getSubscriberData(5000, &v), Status::NotFound);
}

TEST_F(TatpTest, AccessDataPresentForEverySubscriber)
{
    // Every subscriber has at least ai_type 1.
    for (uint64_t id = 1; id <= 100; ++id) {
        Value v;
        ASSERT_EQ(tatp.getAccessData(id, 1, &v), Status::Ok)
            << "subscriber " << id;
    }
}

TEST_F(TatpTest, UpdateLocationVisible)
{
    ASSERT_EQ(tatp.updateLocation(42, 0xfeed), Status::Ok);
    ASSERT_EQ(s.flushAll(), Status::Ok);
    Value v;
    ASSERT_EQ(tatp.getSubscriberData(42, &v), Status::Ok);
    EXPECT_EQ(v.asU64(), 0xfeedu);
}

TEST_F(TatpTest, CallForwardingInsertDelete)
{
    const Value num = Value::ofString("555-7777");
    ASSERT_EQ(tatp.insertCallForwarding(10, 1, 16, num), Status::Ok);
    Value v;
    ASSERT_EQ(tatp.getNewDestination(10, 1, 16, &v), Status::Ok);
    EXPECT_EQ(v.asString(), "555-7777");
    ASSERT_EQ(tatp.deleteCallForwarding(10, 1, 16), Status::Ok);
    EXPECT_EQ(tatp.getNewDestination(10, 1, 16, &v), Status::NotFound);
}

TEST_F(TatpTest, StandardMixRuns)
{
    Rng rng(21);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(tatp.runOne(rng), Status::Ok) << "txn " << i;
    ASSERT_EQ(s.flushAll(), Status::Ok);
    EXPECT_GT(tatp.stats().committed, 500u);
}

TEST_F(TatpTest, SurvivesReopen)
{
    ASSERT_EQ(tatp.updateLocation(3, 777), Status::Ok);
    ASSERT_EQ(s.flushAll(), Status::Ok);
    s.disconnect(&be);

    FrontendSession s2(SessionConfig::rc(2, 2 << 20));
    ASSERT_EQ(s2.connect(&be), Status::Ok);
    Tatp reopened;
    ASSERT_EQ(Tatp::open(s2, 1, &reopened), Status::Ok);
    EXPECT_EQ(reopened.subscriberCount(), 100u);
    Value v;
    ASSERT_EQ(reopened.getSubscriberData(3, &v), Status::Ok);
    EXPECT_EQ(v.asU64(), 777u);
}

// ---------------------------------------------------------------------
// Workload generators
// ---------------------------------------------------------------------

TEST(WorkloadTest, PutRatioRespected)
{
    WorkloadConfig cfg;
    cfg.put_ratio = 0.25;
    Workload w(cfg);
    uint64_t puts = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        puts += w.next().op == WorkOp::Put ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(puts) / n, 0.25, 0.02);
}

TEST(WorkloadTest, DeterministicForSeed)
{
    WorkloadConfig cfg;
    cfg.seed = 77;
    Workload a(cfg), b(cfg);
    for (int i = 0; i < 100; ++i) {
        const WorkItem x = a.next(), y = b.next();
        EXPECT_EQ(x.key, y.key);
        EXPECT_EQ(x.op, y.op);
    }
}

TEST(WorkloadTest, ZipfSkewsTowardsHotKeys)
{
    WorkloadConfig uni;
    uni.dist = KeyDist::Uniform;
    WorkloadConfig zip = uni;
    zip.dist = KeyDist::Zipf;
    zip.zipf_theta = 0.99;

    auto top_key_share = [](Workload &w) {
        std::map<Key, uint64_t> freq;
        const int n = 20000;
        for (int i = 0; i < n; ++i)
            ++freq[w.next().key];
        uint64_t max_freq = 0;
        for (const auto &[k, f] : freq)
            max_freq = std::max(max_freq, f);
        return static_cast<double>(max_freq) / n;
    };
    Workload wu(uni), wz(zip);
    EXPECT_GT(top_key_share(wz), 10 * top_key_share(wu));
}

TEST(WorkloadTest, SameRankMapsToSameHashedKey)
{
    WorkloadConfig cfg;
    cfg.dist = KeyDist::Zipf;
    cfg.key_space = 100;
    Workload w(cfg);
    std::map<Key, int> seen;
    for (int i = 0; i < 5000; ++i)
        ++seen[w.next().key];
    // 100 ranks -> at most 100 distinct hashed keys.
    EXPECT_LE(seen.size(), 100u);
}

} // namespace
} // namespace asymnvm
