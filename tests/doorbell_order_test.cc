/**
 * @file
 * Ordering and crash semantics of the posted-write chain.
 *
 * The durability contract of doorbell batching is queue-pair ordering: a
 * posted write is guaranteed durable no later than the completion of the
 * next synchronous verb on the same queue pair (DESIGN.md §2). These
 * tests pin that contract — the chain drains before any later sync verb
 * returns, payloads survive a power crash once posted, and a back-end
 * crash mid-chain tears the chain at the failing WQE with everything
 * before it durable and everything after it refused.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "check/crash_explorer.h"
#include "nvm/nvm_device.h"
#include "rdma/verbs.h"
#include "sim/clock.h"
#include "sim/failure.h"
#include "sim/latency.h"
#include "sim/nic.h"

namespace asymnvm {
namespace {

class DoorbellOrderTest : public ::testing::Test
{
  protected:
    DoorbellOrderTest() : dev(1 << 20), nic(120), verbs(&clock, &lat)
    {
        verbs.attach(1, RdmaTarget{&dev, &nic, &fail});
    }

    NvmDevice dev;
    NicModel nic;
    FailureInjector fail;
    SimClock clock;
    LatencyModel lat;
    Verbs verbs;
};

TEST_F(DoorbellOrderTest, PostedChainDurableBeforeNextSyncVerbReturns)
{
    // Scattered destinations: three posts, three WQEs on the chain.
    const uint64_t a = 0x11, b = 0x22, c = 0x33;
    ASSERT_EQ(verbs.postWrite(RemotePtr(1, 0), &a, 8), Status::Ok);
    ASSERT_EQ(verbs.postWrite(RemotePtr(1, 4096), &b, 8), Status::Ok);
    ASSERT_EQ(verbs.postWrite(RemotePtr(1, 8192), &c, 8), Status::Ok);
    ASSERT_EQ(verbs.pendingWqes(), 3u);

    // A later synchronous verb on the same queue pair executes in order
    // behind the chain, so its completion implies the chain completed.
    uint64_t got = 0;
    ASSERT_EQ(verbs.read64(RemotePtr(1, 0), &got), Status::Ok);
    EXPECT_EQ(got, a);
    EXPECT_EQ(verbs.pendingWqes(), 0u)
        << "sync completion must drain the pending chain";
    EXPECT_EQ(verbs.counters().doorbells, 1u)
        << "the chain rides the sync verb's doorbell, not its own";

    // Power loss now: everything the chain carried must already be in
    // the persistence domain (DMA into the NVM DIMM).
    dev.crash();
    EXPECT_EQ(dev.read64(0), a);
    EXPECT_EQ(dev.read64(4096), b);
    EXPECT_EQ(dev.read64(8192), c);
}

TEST_F(DoorbellOrderTest, CrashMidChainTearsTailOnly)
{
    // Back-end dies on the third posted verb. Queue-pair ordering makes
    // the first two WQEs durable; the failing one keeps 0 bytes and the
    // queue pair is dead afterwards.
    fail.armCrashAtVerb(2, /*keep_bytes=*/0);

    const uint64_t a = 0xAA, b = 0xBB, c = 0xCC;
    ASSERT_EQ(verbs.postWrite(RemotePtr(1, 0), &a, 8), Status::Ok);
    ASSERT_EQ(verbs.postWrite(RemotePtr(1, 256), &b, 8), Status::Ok);
    ASSERT_EQ(verbs.postWrite(RemotePtr(1, 512), &c, 8),
              Status::BackendCrashed);
    EXPECT_TRUE(fail.crashed());

    EXPECT_EQ(dev.read64(0), a);
    EXPECT_EQ(dev.read64(256), b);
    EXPECT_EQ(dev.read64(512), 0u) << "torn WQE kept 0 bytes";

    // Every later verb on the dead queue pair reports the crash.
    uint64_t got = 0;
    EXPECT_EQ(verbs.read64(RemotePtr(1, 0), &got), Status::BackendCrashed);
    EXPECT_EQ(verbs.postWrite(RemotePtr(1, 768), &c, 8),
              Status::BackendCrashed);

    // The recovery path discards un-rung work; nothing may linger.
    verbs.dropPosted();
    EXPECT_EQ(verbs.pendingWqes(), 0u);
}

TEST_F(DoorbellOrderTest, TornWqeKeepsAlignedPrefix)
{
    // A multi-line posted payload tears at a 64-byte boundary, exactly
    // like a synchronous RDMA write (Section 4.2's torn-log scenario).
    unsigned char buf[256];
    for (size_t i = 0; i < sizeof(buf); ++i)
        buf[i] = static_cast<unsigned char>(i + 1);
    fail.armCrashAtVerb(0, /*keep_bytes=*/128);
    ASSERT_EQ(verbs.postWrite(RemotePtr(1, 1024), buf, sizeof(buf)),
              Status::BackendCrashed);

    unsigned char got[256] = {};
    dev.read(1024, got, sizeof(got));
    EXPECT_EQ(std::memcmp(got, buf, 128), 0) << "kept prefix landed";
    for (size_t i = 128; i < 256; ++i)
        ASSERT_EQ(got[i], 0u) << "byte past the tear at " << i;
}

// Crash-point sweep over the batched hot path: the explorer records the
// coalesced verb stream of an RCB session (posted op-log chains + sync
// commits), then crashes at sampled verb indices — including inside
// chains — and audits recovery. Violations here would mean doorbell
// batching broke the op-granular durability contract.
TEST(DoorbellOrderSweep, RcbChainsRecoverAtSampledCrashPoints)
{
    for (WorkloadKind kind : {WorkloadKind::Queue, WorkloadKind::Stack}) {
        SCOPED_TRACE(workloadName(kind));
        ExplorerOptions opt;
        opt.kind = kind;
        opt.session = SessionConfig::rcb(1, 256ull << 10, 13);
        opt.ops = 60;
        opt.flush_every = 13;
        opt.max_points = 24;
        const ExplorerResult res = exploreCrashPoints(opt);
        EXPECT_GT(res.workload_verbs, 0u);
        EXPECT_EQ(res.crashes_fired, res.points_run);
        EXPECT_EQ(res.recoveries, res.points_run);
        EXPECT_TRUE(res.violations.empty()) << res.violationText();
    }
}

} // namespace
} // namespace asymnvm
