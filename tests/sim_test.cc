/**
 * @file
 * Unit tests for the simulation substrate: virtual clocks, the shared NIC
 * contention model, and the failure injector.
 */

#include <gtest/gtest.h>

#include "sim/clock.h"
#include "sim/failure.h"
#include "sim/latency.h"
#include "sim/nic.h"

namespace asymnvm {
namespace {

TEST(SimClockTest, AdvanceAccumulates)
{
    SimClock c;
    EXPECT_EQ(c.now(), 0u);
    c.advance(100);
    c.advance(50);
    EXPECT_EQ(c.now(), 150u);
}

TEST(SimClockTest, AdvanceToNeverGoesBackwards)
{
    SimClock c;
    c.advance(500);
    c.advanceTo(300);
    EXPECT_EQ(c.now(), 500u);
    c.advanceTo(700);
    EXPECT_EQ(c.now(), 700u);
}

TEST(LatencyModelTest, WireBytesScalesWithSize)
{
    LatencyModel lat;
    EXPECT_EQ(lat.wireBytes(0), 0u);
    EXPECT_GT(lat.wireBytes(4096), lat.wireBytes(64));
}

TEST(NicModelTest, IdleNicHasNoQueueing)
{
    NicModel nic(100);
    EXPECT_EQ(nic.reserve(10000), 0u);
    EXPECT_EQ(nic.verbCount(), 1u);
}

TEST(NicModelTest, SaturationProducesQueueingDelay)
{
    NicModel nic(100);
    // Issue verbs at twice the NIC's capacity for several windows; once
    // the utilization estimate converges the M/D/1 wait becomes visible.
    uint64_t now = 0;
    uint64_t last_delay = 0;
    for (int i = 0; i < 20000; ++i) {
        last_delay = nic.reserve(now);
        now += 50; // inter-arrival 50ns << 100ns service
    }
    EXPECT_GT(last_delay, 0u);
    EXPECT_GT(nic.utilization(), 0.5);
}

TEST(NicModelTest, LightLoadStaysDelayFree)
{
    NicModel nic(100);
    uint64_t now = 0;
    uint64_t max_delay = 0;
    for (int i = 0; i < 20000; ++i) {
        max_delay = std::max(max_delay, nic.reserve(now));
        now += 2000; // 5% utilization
    }
    EXPECT_LE(max_delay, 10u);
}

TEST(NicModelTest, SkewedClocksDoNotExplodeDelays)
{
    // Two sessions with drifted clocks: delays must stay bounded by the
    // utilization, not by the absolute clock difference.
    NicModel nic(100);
    uint64_t fast = 10'000'000, slow = 0;
    uint64_t max_delay = 0;
    for (int i = 0; i < 5000; ++i) {
        max_delay = std::max(max_delay, nic.reserve(fast));
        max_delay = std::max(max_delay, nic.reserve(slow));
        fast += 4000;
        slow += 4000;
    }
    EXPECT_LT(max_delay, 1000u) << "drift must not look like queueing";
}

TEST(NicModelTest, BusyTimeAccounted)
{
    NicModel nic(100);
    nic.reserve(0);
    nic.reserve(0);
    EXPECT_EQ(nic.busyNs(), 200u);
    nic.resetStats();
    EXPECT_EQ(nic.busyNs(), 0u);
}

TEST(FailureInjectorTest, DisarmedPassesVerbs)
{
    FailureInjector f;
    EXPECT_FALSE(f.onVerb(0).has_value());
    EXPECT_FALSE(f.crashed());
}

TEST(FailureInjectorTest, FiresOnNthVerb)
{
    FailureInjector f;
    f.armCrashAfterVerbs(2);
    EXPECT_FALSE(f.onVerb(0).has_value()); // verb 0
    EXPECT_FALSE(f.onVerb(0).has_value()); // verb 1
    EXPECT_TRUE(f.onVerb(0).has_value());  // verb 2: crash
    EXPECT_TRUE(f.crashed());
}

TEST(FailureInjectorTest, TornWriteKeepsAlignedPrefix)
{
    FailureInjector f;
    f.armCrashAfterVerbs(0);
    const auto kept = f.onVerb(1000);
    ASSERT_TRUE(kept.has_value());
    EXPECT_LE(*kept, 1000u);
    EXPECT_EQ(*kept % 64, 0u) << "tear must land on a cache line";
}

TEST(FailureInjectorTest, CrashedDeviceRejectsAllVerbs)
{
    FailureInjector f;
    f.armCrashAfterVerbs(0);
    f.onVerb(0);
    const auto r = f.onVerb(512);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(*r, 0u) << "no bytes land after the crash";
}

TEST(FailureInjectorTest, RecoverClearsCrashState)
{
    FailureInjector f;
    f.armCrashAfterVerbs(0);
    f.onVerb(0);
    EXPECT_TRUE(f.crashed());
    f.recover();
    EXPECT_FALSE(f.crashed());
    EXPECT_FALSE(f.onVerb(0).has_value());
}

} // namespace
} // namespace asymnvm
