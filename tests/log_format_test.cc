/**
 * @file
 * Unit tests for the log wire formats (Figure 3): transaction building
 * and parsing, torn-log detection via the checksum end mark, op-ref
 * entries, and operation-log records.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>

#include "backend/log_format.h"

namespace asymnvm {
namespace {

std::vector<uint8_t>
toVec(std::span<const uint8_t> s)
{
    return {s.begin(), s.end()};
}

TEST(TxFormatTest, BuildAndParseRoundTrip)
{
    TxBuilder b;
    b.reset(/*lpn=*/5, /*ds=*/2, /*covered_opn=*/9);
    const uint64_t v1 = 0xaabb, v2 = 0xccdd;
    b.addInline(RemotePtr(1, 0x1000), &v1, 8);
    b.addInline(RemotePtr(1, 0x2000), &v2, 8);
    const auto bytes = toVec(b.finish());

    auto tx = TxParser::parse(bytes);
    ASSERT_TRUE(tx.has_value());
    EXPECT_EQ(tx->header().lpn, 5u);
    EXPECT_EQ(tx->header().ds_id, 2u);
    EXPECT_EQ(tx->header().covered_opn, 9u);
    ASSERT_EQ(tx->entries().size(), 2u);
    EXPECT_EQ(tx->entries()[0].addr, RemotePtr(1, 0x1000));
    uint64_t got;
    std::memcpy(&got, tx->entries()[0].inline_value, 8);
    EXPECT_EQ(got, v1);
    std::memcpy(&got, tx->entries()[1].inline_value, 8);
    EXPECT_EQ(got, v2);
}

TEST(TxFormatTest, EmptyTransactionParses)
{
    TxBuilder b;
    b.reset(0, 0, 0);
    const auto bytes = toVec(b.finish()); // parse() aliases the buffer
    auto tx = TxParser::parse(bytes);
    ASSERT_TRUE(tx.has_value());
    EXPECT_EQ(tx->entries().size(), 0u);
}

TEST(TxFormatTest, TruncatedTailDetected)
{
    TxBuilder b;
    b.reset(1, 0, 0);
    const uint64_t v = 7;
    b.addInline(RemotePtr(0, 64), &v, 8);
    auto bytes = toVec(b.finish());
    for (size_t cut = 1; cut < sizeof(TxFooter) + 8; ++cut) {
        std::vector<uint8_t> torn(bytes.begin(), bytes.end() - cut);
        EXPECT_FALSE(TxParser::parse(torn).has_value())
            << "cut of " << cut << " bytes went undetected";
    }
}

TEST(TxFormatTest, CorruptedPayloadFailsChecksum)
{
    TxBuilder b;
    b.reset(1, 0, 0);
    uint8_t blob[100];
    std::memset(blob, 0x5a, sizeof(blob));
    b.addInline(RemotePtr(0, 256), blob, sizeof(blob));
    auto bytes = toVec(b.finish());
    bytes[sizeof(TxHeader) + sizeof(MemLogEntryHeader) + 50] ^= 0xff;
    EXPECT_FALSE(TxParser::parse(bytes).has_value());
}

TEST(TxFormatTest, MissingCommitFlagDetected)
{
    TxBuilder b;
    b.reset(1, 0, 0);
    const uint64_t v = 7;
    b.addInline(RemotePtr(0, 64), &v, 8);
    auto bytes = toVec(b.finish());
    // Zero the commit flag but keep everything else.
    std::memset(bytes.data() + bytes.size() - sizeof(TxFooter), 0, 4);
    EXPECT_FALSE(TxParser::parse(bytes).has_value());
}

TEST(TxFormatTest, BadMagicRejected)
{
    std::vector<uint8_t> junk(sizeof(TxHeader) + sizeof(TxFooter), 0xab);
    EXPECT_FALSE(TxParser::parse(junk).has_value());
}

TEST(TxFormatTest, OpRefEntryRoundTrip)
{
    TxBuilder b;
    b.reset(3, 1, 4);
    b.addOpRef(RemotePtr(1, 0x3000), /*oplog_off=*/0x40, /*val_off=*/8,
               /*len=*/64);
    const auto bytes = toVec(b.finish()); // parse() aliases the buffer
    auto tx = TxParser::parse(bytes);
    ASSERT_TRUE(tx.has_value());
    ASSERT_EQ(tx->entries().size(), 1u);
    const ParsedMemLog &m = tx->entries()[0];
    EXPECT_EQ(m.flag, MemLogFlag::kOpRef);
    EXPECT_EQ(m.oplog_off, 0x40u);
    EXPECT_EQ(m.val_off, 8u);
    EXPECT_EQ(m.len, 64u);
}

TEST(TxFormatTest, ManyEntriesSurvive)
{
    TxBuilder b;
    b.reset(10, 7, 100);
    for (uint64_t i = 0; i < 500; ++i) {
        const uint64_t v = i * 3;
        b.addInline(RemotePtr(0, 4096 + i * 8), &v, 8);
    }
    const auto bytes = toVec(b.finish()); // parse() aliases the buffer
    auto tx = TxParser::parse(bytes);
    ASSERT_TRUE(tx.has_value());
    ASSERT_EQ(tx->entries().size(), 500u);
    uint64_t got;
    std::memcpy(&got, tx->entries()[499].inline_value, 8);
    EXPECT_EQ(got, 499u * 3);
}

/**
 * An entry header whose len field is near UINT32_MAX must be rejected
 * by a length comparison, not by `p + eh.len` pointer arithmetic — the
 * latter overflows past one-past-the-end (undefined behaviour, and a
 * wild read wherever it happens to wrap). The footer checksum is
 * recomputed after patching so the parser actually reaches the bounds
 * check instead of bailing at the end mark.
 */
TEST(TxFormatTest, HugeEntryLenRejectedWithoutOverflow)
{
    TxBuilder b;
    b.reset(1, 0, 0);
    const uint64_t v = 7;
    b.addInline(RemotePtr(0, 64), &v, 8);
    auto bytes = toVec(b.finish());

    for (const uint32_t evil :
         {UINT32_MAX, UINT32_MAX - 7, UINT32_MAX - 15, 1u << 31}) {
        auto patched = bytes;
        auto *eh = reinterpret_cast<MemLogEntryHeader *>(
            patched.data() + sizeof(TxHeader));
        eh->len = evil;
        auto *foot = reinterpret_cast<TxFooter *>(
            patched.data() + patched.size() - sizeof(TxFooter));
        foot->checksum = crc32c(patched.data(),
                                patched.size() - sizeof(TxFooter));
        EXPECT_FALSE(TxParser::parse(patched).has_value())
            << "len=" << evil;
    }
}

/** Same hazard on the op-log side: val_len near UINT32_MAX. */
TEST(OpLogTest, HugeValLenRejectedWithoutOverflow)
{
    const char val[] = "tiny";
    auto rec = encodeOpLog(OpType::Insert, 1, 2, 3, val, sizeof(val));
    for (const uint32_t evil : {UINT32_MAX, UINT32_MAX - 3, 1u << 31}) {
        auto patched = rec;
        auto *hdr = reinterpret_cast<OpLogHeader *>(patched.data());
        hdr->val_len = evil;
        EXPECT_FALSE(decodeOpLog(patched).has_value()) << "len=" << evil;
    }
}

/**
 * Deterministic structured fuzz: every single-byte corruption and every
 * truncation of a valid transaction must parse cleanly (to a value or
 * to nullopt) without touching memory outside the buffer. Run under
 * ASYMNVM_SANITIZE=ON this is the torn-header safety net.
 */
TEST(TxFormatTest, ByteFlipAndTruncationFuzz)
{
    TxBuilder b;
    b.reset(2, 3, 4);
    uint8_t blob[48];
    std::memset(blob, 0x11, sizeof(blob));
    b.addInline(RemotePtr(1, 0x100), blob, sizeof(blob));
    b.addOpRef(RemotePtr(1, 0x200), 0x80, 8, 64);
    const auto bytes = toVec(b.finish());

    for (size_t i = 0; i < bytes.size(); ++i) {
        for (const uint8_t delta : {0x01, 0x80, 0xff}) {
            auto mut = bytes;
            mut[i] ^= delta;
            (void)TxParser::parse(mut); // must not crash
        }
    }
    for (size_t cut = 1; cut <= bytes.size(); ++cut) {
        std::vector<uint8_t> torn(bytes.begin(), bytes.end() - cut);
        EXPECT_FALSE(TxParser::parse(torn).has_value())
            << "truncation of " << cut << " bytes went undetected";
    }
}

TEST(OpLogTest, EncodeDecodeRoundTrip)
{
    const char val[] = "value-bytes";
    const auto rec =
        encodeOpLog(OpType::Insert, 4, 17, 0xbeef, val, sizeof(val));
    auto parsed = decodeOpLog(rec);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->op, OpType::Insert);
    EXPECT_EQ(parsed->ds_id, 4u);
    EXPECT_EQ(parsed->opn, 17u);
    EXPECT_EQ(parsed->key, 0xbeefu);
    EXPECT_EQ(parsed->wire_len, rec.size());
    ASSERT_EQ(parsed->value.size(), sizeof(val));
    EXPECT_EQ(std::memcmp(parsed->value.data(), val, sizeof(val)), 0);
}

TEST(OpLogTest, EmptyValueAllowed)
{
    const auto rec = encodeOpLog(OpType::Pop, 1, 2, 0, nullptr, 0);
    auto parsed = decodeOpLog(rec);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(parsed->value.empty());
}

TEST(OpLogTest, TornRecordDetected)
{
    const char val[] = "torn";
    auto rec = encodeOpLog(OpType::Update, 0, 1, 2, val, sizeof(val));
    rec.pop_back();
    EXPECT_FALSE(decodeOpLog(rec).has_value());
}

TEST(OpLogTest, CorruptValueDetected)
{
    const char val[] = "corrupt-me";
    auto rec = encodeOpLog(OpType::Insert, 0, 1, 2, val, sizeof(val));
    rec[sizeof(OpLogHeader) + 3] ^= 0x80;
    EXPECT_FALSE(decodeOpLog(rec).has_value());
}

TEST(OpLogTest, DecodeFromLargerBufferUsesWireLen)
{
    const char val[] = "x";
    auto rec = encodeOpLog(OpType::Erase, 9, 3, 4, val, sizeof(val));
    const size_t wire = rec.size();
    rec.resize(rec.size() + 100, 0xcd); // trailing garbage in the ring
    auto parsed = decodeOpLog(rec);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->wire_len, wire);
}

// ---------------------------------------------------------------------
// Satellite regressions: finishedSize() in both states, strict flag and
// OpType validation.
// ---------------------------------------------------------------------

constexpr LogFormatKind kAllFormats[] = {LogFormatKind::Classic,
                                         LogFormatKind::HeaderDancing,
                                         LogFormatKind::ZeroBased};

TEST(TxFormatTest, FinishedSizeExactBeforeAndAfterFinish)
{
    for (const LogFormatKind fmt : kAllFormats) {
        SCOPED_TRACE(logFormatName(fmt));
        TxBuilder b(fmt);
        b.reset(5, 1, 2);
        const uint64_t v = 11;
        b.addInline(RemotePtr(0, 128), &v, 8);
        b.addOpRef(RemotePtr(0, 512), 0x80, 0, 64);
        const size_t predicted = b.finishedSize();
        const auto bytes = b.finish();
        EXPECT_EQ(predicted, bytes.size())
            << "pre-finish prediction must match the wire size";
        EXPECT_EQ(b.finishedSize(), bytes.size())
            << "post-finish size must not add a phantom footer";
    }
}

TEST(TxFormatTest, UnknownEntryFlagRejected)
{
    TxBuilder b;
    b.reset(1, 0, 0);
    const uint64_t v = 7;
    b.addInline(RemotePtr(0, 64), &v, 8);
    const auto bytes = toVec(b.finish());
    for (const int bad : {2, 3, 0x80, 0xff}) {
        auto patched = bytes;
        patched[sizeof(TxHeader)] = static_cast<uint8_t>(bad);
        auto *foot = reinterpret_cast<TxFooter *>(
            patched.data() + patched.size() - sizeof(TxFooter));
        foot->checksum =
            crc32c(patched.data(), patched.size() - sizeof(TxFooter));
        EXPECT_FALSE(TxParser::parse(patched).has_value())
            << "flag byte " << bad << " misparsed instead of rejected";
    }
}

TEST(OpLogTest, OutOfRangeOpTypeRejected)
{
    const char val[] = "x";
    auto rec = encodeOpLog(OpType::Insert, 1, 2, 3, val, sizeof(val));
    auto *hdr = reinterpret_cast<OpLogHeader *>(rec.data());
    hdr->op = kMaxOpTypeByte + 1;
    const size_t body = rec.size() - sizeof(uint32_t);
    const uint32_t crc = crc32c(rec.data(), body);
    std::memcpy(rec.data() + body, &crc, sizeof(crc));
    EXPECT_FALSE(decodeOpLog(rec).has_value());
}

// ---------------------------------------------------------------------
// Header-dancing encoding.
// ---------------------------------------------------------------------

TEST(HdFormatTest, TxRoundTripIsCacheLineAligned)
{
    TxBuilder b(LogFormatKind::HeaderDancing);
    b.reset(/*lpn=*/7, /*ds=*/3, /*covered_opn=*/11);
    const uint64_t v1 = 0x1111, v2 = 0x2222;
    b.addInline(RemotePtr(1, 0x1000), &v1, 8);
    b.addInline(RemotePtr(1, 0x2000), &v2, 8);
    b.addOpRef(RemotePtr(1, 0x3000), 0x40, 8, 64);
    const auto bytes = toVec(b.finish());
    EXPECT_EQ(bytes.size() % 64, 0u) << "record must fill cache lines";

    auto tx = TxParser::parse(bytes);
    ASSERT_TRUE(tx.has_value());
    EXPECT_EQ(tx->format(), LogFormatKind::HeaderDancing);
    EXPECT_EQ(tx->header().lpn, 7u);
    EXPECT_EQ(tx->header().covered_opn, 11u);
    ASSERT_EQ(tx->entries().size(), 3u);
    uint64_t got;
    std::memcpy(&got, tx->entries()[0].inline_value, 8);
    EXPECT_EQ(got, v1);
    EXPECT_EQ(tx->entries()[2].flag, MemLogFlag::kOpRef);
    EXPECT_EQ(tx->entries()[2].oplog_off, 0x40u);
}

TEST(HdFormatTest, MarkSlotDancesWithLpn)
{
    // body = 40 B header + 16 B entry header + 8 B value = 64 B, so the
    // tail line has (128 - 64) / 8 = 8 slots to rotate through.
    const size_t body = sizeof(TxHeader) + sizeof(MemLogEntryHeader) + 8;
    bool moved = false;
    const size_t first = hdMarkSlot(body, 0);
    for (uint64_t lpn = 1; lpn < 8; ++lpn)
        moved |= hdMarkSlot(body, lpn) != first;
    EXPECT_TRUE(moved) << "commit mark never rotates across LPNs";
    // And the dancing slot never overlaps the record body.
    for (uint64_t lpn = 0; lpn < 64; ++lpn) {
        EXPECT_GE(hdMarkSlot(body, lpn), body);
        EXPECT_LE(hdMarkSlot(body, lpn) + sizeof(TxFooter),
                  hdTxWireLen(body));
    }
}

TEST(HdFormatTest, TruncationAndBodyCorruptionDetected)
{
    TxBuilder b(LogFormatKind::HeaderDancing);
    b.reset(9, 1, 0);
    uint8_t blob[48];
    std::memset(blob, 0x3c, sizeof(blob));
    b.addInline(RemotePtr(0, 0x100), blob, sizeof(blob));
    const auto bytes = toVec(b.finish());

    for (size_t cut = 1; cut <= bytes.size(); ++cut) {
        std::vector<uint8_t> torn(bytes.begin(), bytes.end() - cut);
        EXPECT_FALSE(TxParser::parse(torn).has_value())
            << "truncation of " << cut << " bytes went undetected";
    }
    // Flips inside the payload (header untouched) must fail the mark CRC.
    const size_t body =
        sizeof(TxHeader) + sizeof(MemLogEntryHeader) + sizeof(blob);
    for (size_t i = sizeof(TxHeader); i < body; ++i) {
        auto mut = bytes;
        mut[i] ^= 0x01;
        EXPECT_FALSE(TxParser::parse(mut).has_value()) << "byte " << i;
    }
    // Header flips (including the dancing-slot inputs) must never crash
    // or read out of bounds; rejection is checked where deterministic.
    for (size_t i = 0; i < sizeof(TxHeader); ++i) {
        for (const int delta : {0x01, 0x80, 0xff}) {
            auto mut = bytes;
            mut[i] ^= static_cast<uint8_t>(delta);
            (void)TxParser::parse(mut);
        }
    }
}

TEST(HdFormatTest, OpRecordRoundTripAndTearing)
{
    uint8_t val[64];
    for (size_t i = 0; i < sizeof(val); ++i)
        val[i] = static_cast<uint8_t>(i * 3);
    const auto rec = encodeOpLog(LogFormatKind::HeaderDancing,
                                 OpType::Push, 5, 21, 0xfeed, val,
                                 sizeof(val));
    EXPECT_EQ(rec.size(), sizeof(OpLogHeaderC) + sizeof(val));

    auto parsed = decodeOpLog(rec);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->op, OpType::Push);
    EXPECT_EQ(parsed->ds_id, 5u);
    EXPECT_EQ(parsed->opn, 21u);
    EXPECT_EQ(parsed->key, 0xfeedu);
    EXPECT_EQ(parsed->wire_len, rec.size());
    ASSERT_EQ(parsed->value.size(), sizeof(val));
    EXPECT_EQ(std::memcmp(parsed->value.data(), val, sizeof(val)), 0);

    auto torn = rec;
    torn.pop_back();
    EXPECT_FALSE(decodeOpLog(torn).has_value());
    auto flipped = rec;
    flipped[sizeof(OpLogHeaderC) + 10] ^= 0x40;
    EXPECT_FALSE(decodeOpLog(flipped).has_value());
}

// ---------------------------------------------------------------------
// Zero-based encoding.
// ---------------------------------------------------------------------

TEST(ZbFormatTest, TxRoundTrip)
{
    TxBuilder b(LogFormatKind::ZeroBased);
    b.reset(/*lpn=*/13, /*ds=*/2, /*covered_opn=*/6);
    uint8_t blob[100];
    for (size_t i = 0; i < sizeof(blob); ++i)
        blob[i] = static_cast<uint8_t>(i);
    b.addInline(RemotePtr(1, 0x4000), blob, sizeof(blob));
    b.addOpRef(RemotePtr(1, 0x5000), 0x6c, 4, 32);
    const auto bytes = toVec(b.finish());

    auto tx = TxParser::parse(bytes);
    ASSERT_TRUE(tx.has_value());
    EXPECT_EQ(tx->format(), LogFormatKind::ZeroBased);
    EXPECT_EQ(tx->header().lpn, 13u);
    ASSERT_EQ(tx->entries().size(), 2u);
    EXPECT_EQ(tx->entries()[0].len, sizeof(blob));
    EXPECT_EQ(std::memcmp(tx->entries()[0].inline_value, blob,
                          sizeof(blob)),
              0)
        << "de-stuffing must reproduce the logical payload";
    EXPECT_EQ(tx->entries()[1].oplog_off, 0x6cu);
}

/**
 * The zero-based contract: a torn record leaves its un-written suffix
 * at the ring's pre-zeroed state, and any such prefix must fail the
 * presence check — that is the commit mark.
 */
TEST(ZbFormatTest, ZeroSuffixPrefixTearsDetected)
{
    TxBuilder b(LogFormatKind::ZeroBased);
    b.reset(3, 1, 0);
    uint8_t blob[150];
    std::memset(blob, 0x77, sizeof(blob));
    b.addInline(RemotePtr(0, 0x200), blob, sizeof(blob));
    const auto bytes = toVec(b.finish());

    for (size_t keep = 0; keep < bytes.size(); ++keep) {
        std::vector<uint8_t> torn(bytes.begin(), bytes.end());
        std::fill(torn.begin() + keep, torn.end(), 0);
        EXPECT_FALSE(TxParser::parse(torn).has_value())
            << "keep of " << keep << " bytes went undetected";
    }
    for (size_t cut = 1; cut <= bytes.size(); ++cut) {
        std::vector<uint8_t> torn(bytes.begin(), bytes.end() - cut);
        EXPECT_FALSE(TxParser::parse(torn).has_value())
            << "truncation of " << cut << " bytes went undetected";
    }
    EXPECT_TRUE(TxParser::parse(bytes).has_value());
}

TEST(ZbFormatTest, OpRecordRoundTripAndTearing)
{
    uint8_t val[64];
    for (size_t i = 0; i < sizeof(val); ++i)
        val[i] = static_cast<uint8_t>(255 - i);
    const auto rec = encodeOpLog(LogFormatKind::ZeroBased, OpType::Insert,
                                 3, 44, 0xabcd, val, sizeof(val));
    EXPECT_EQ(rec.size(), zbWireLen(sizeof(OpLogHeaderC) + sizeof(val)));

    auto parsed = decodeOpLog(rec);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->op, OpType::Insert);
    EXPECT_EQ(parsed->ds_id, 3u);
    EXPECT_EQ(parsed->opn, 44u);
    EXPECT_EQ(parsed->key, 0xabcdu);
    EXPECT_EQ(parsed->wire_len, rec.size());
    ASSERT_EQ(parsed->value.size(), sizeof(val));
    EXPECT_EQ(std::memcmp(parsed->value.data(), val, sizeof(val)), 0);

    for (size_t keep = 4; keep < rec.size(); ++keep) {
        auto torn = rec;
        std::fill(torn.begin() + keep, torn.end(), 0);
        EXPECT_FALSE(decodeOpLog(torn).has_value()) << "keep " << keep;
    }
    // Out-of-range OpType in the raw header byte (satellite: strict
    // OpType validation applies to every encoding).
    auto bad_op = rec;
    bad_op[offsetof(OpLogHeaderC, op)] = kMaxOpTypeByte + 1;
    EXPECT_FALSE(decodeOpLog(bad_op).has_value());
}

TEST(ZbFormatTest, CompactFormatsShrinkOpRecords)
{
    // One 64 B stack-push value: classic pays 40 B header + 4 B CRC,
    // header-dancing pays the 32 B compact header, zero-based pays the
    // compact header plus presence bytes — both beat classic.
    uint8_t val[64] = {};
    const auto classic = encodeOpLog(LogFormatKind::Classic, OpType::Push,
                                     1, 2, 3, val, sizeof(val));
    const auto hd = encodeOpLog(LogFormatKind::HeaderDancing, OpType::Push,
                                1, 2, 3, val, sizeof(val));
    const auto zb = encodeOpLog(LogFormatKind::ZeroBased, OpType::Push, 1,
                                2, 3, val, sizeof(val));
    EXPECT_EQ(classic.size(), 108u); // seed wire size, bit-compatible
    EXPECT_LT(hd.size(), classic.size());
    EXPECT_LT(zb.size(), classic.size());
}

TEST(OpLogTest, ExtractOpLogValueWorksAcrossFormats)
{
    uint8_t val[64];
    for (size_t i = 0; i < sizeof(val); ++i)
        val[i] = static_cast<uint8_t>(i + 1);
    for (const LogFormatKind fmt : kAllFormats) {
        SCOPED_TRACE(logFormatName(fmt));
        const auto rec =
            encodeOpLog(fmt, OpType::Update, 2, 9, 77, val, sizeof(val));
        uint8_t out[32] = {};
        ASSERT_TRUE(extractOpLogValue(rec, /*val_off=*/16, sizeof(out),
                                      out));
        EXPECT_EQ(std::memcmp(out, val + 16, sizeof(out)), 0);
        // A slice reaching past the record must be refused, not read.
        uint8_t big[80];
        EXPECT_FALSE(extractOpLogValue(rec, 40, sizeof(big), big));
    }
}

TEST(TxFormatTest, ParserSniffsFormatPerRecord)
{
    // The back-end never registers a format per slot: every record
    // identifies itself. Interleave the three encodings through one
    // parser to prove sniffing is stateless.
    for (const LogFormatKind fmt :
         {LogFormatKind::ZeroBased, LogFormatKind::Classic,
          LogFormatKind::HeaderDancing, LogFormatKind::Classic}) {
        TxBuilder b(fmt);
        b.reset(1, 0, 0);
        const uint64_t v = 42;
        b.addInline(RemotePtr(0, 64), &v, 8);
        const auto bytes = toVec(b.finish());
        auto tx = TxParser::parse(bytes);
        ASSERT_TRUE(tx.has_value()) << logFormatName(fmt);
        EXPECT_EQ(tx->format(), fmt);
        ASSERT_EQ(tx->entries().size(), 1u);
        uint64_t got;
        std::memcpy(&got, tx->entries()[0].inline_value, 8);
        EXPECT_EQ(got, 42u);
    }
}

} // namespace
} // namespace asymnvm
