/**
 * @file
 * Unit tests for the log wire formats (Figure 3): transaction building
 * and parsing, torn-log detection via the checksum end mark, op-ref
 * entries, and operation-log records.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "backend/log_format.h"

namespace asymnvm {
namespace {

std::vector<uint8_t>
toVec(std::span<const uint8_t> s)
{
    return {s.begin(), s.end()};
}

TEST(TxFormatTest, BuildAndParseRoundTrip)
{
    TxBuilder b;
    b.reset(/*lpn=*/5, /*ds=*/2, /*covered_opn=*/9);
    const uint64_t v1 = 0xaabb, v2 = 0xccdd;
    b.addInline(RemotePtr(1, 0x1000), &v1, 8);
    b.addInline(RemotePtr(1, 0x2000), &v2, 8);
    const auto bytes = toVec(b.finish());

    auto tx = TxParser::parse(bytes);
    ASSERT_TRUE(tx.has_value());
    EXPECT_EQ(tx->header().lpn, 5u);
    EXPECT_EQ(tx->header().ds_id, 2u);
    EXPECT_EQ(tx->header().covered_opn, 9u);
    ASSERT_EQ(tx->entries().size(), 2u);
    EXPECT_EQ(tx->entries()[0].addr, RemotePtr(1, 0x1000));
    uint64_t got;
    std::memcpy(&got, tx->entries()[0].inline_value, 8);
    EXPECT_EQ(got, v1);
    std::memcpy(&got, tx->entries()[1].inline_value, 8);
    EXPECT_EQ(got, v2);
}

TEST(TxFormatTest, EmptyTransactionParses)
{
    TxBuilder b;
    b.reset(0, 0, 0);
    const auto bytes = toVec(b.finish()); // parse() aliases the buffer
    auto tx = TxParser::parse(bytes);
    ASSERT_TRUE(tx.has_value());
    EXPECT_EQ(tx->entries().size(), 0u);
}

TEST(TxFormatTest, TruncatedTailDetected)
{
    TxBuilder b;
    b.reset(1, 0, 0);
    const uint64_t v = 7;
    b.addInline(RemotePtr(0, 64), &v, 8);
    auto bytes = toVec(b.finish());
    for (size_t cut = 1; cut < sizeof(TxFooter) + 8; ++cut) {
        std::vector<uint8_t> torn(bytes.begin(), bytes.end() - cut);
        EXPECT_FALSE(TxParser::parse(torn).has_value())
            << "cut of " << cut << " bytes went undetected";
    }
}

TEST(TxFormatTest, CorruptedPayloadFailsChecksum)
{
    TxBuilder b;
    b.reset(1, 0, 0);
    uint8_t blob[100];
    std::memset(blob, 0x5a, sizeof(blob));
    b.addInline(RemotePtr(0, 256), blob, sizeof(blob));
    auto bytes = toVec(b.finish());
    bytes[sizeof(TxHeader) + sizeof(MemLogEntryHeader) + 50] ^= 0xff;
    EXPECT_FALSE(TxParser::parse(bytes).has_value());
}

TEST(TxFormatTest, MissingCommitFlagDetected)
{
    TxBuilder b;
    b.reset(1, 0, 0);
    const uint64_t v = 7;
    b.addInline(RemotePtr(0, 64), &v, 8);
    auto bytes = toVec(b.finish());
    // Zero the commit flag but keep everything else.
    std::memset(bytes.data() + bytes.size() - sizeof(TxFooter), 0, 4);
    EXPECT_FALSE(TxParser::parse(bytes).has_value());
}

TEST(TxFormatTest, BadMagicRejected)
{
    std::vector<uint8_t> junk(sizeof(TxHeader) + sizeof(TxFooter), 0xab);
    EXPECT_FALSE(TxParser::parse(junk).has_value());
}

TEST(TxFormatTest, OpRefEntryRoundTrip)
{
    TxBuilder b;
    b.reset(3, 1, 4);
    b.addOpRef(RemotePtr(1, 0x3000), /*oplog_off=*/0x40, /*val_off=*/8,
               /*len=*/64);
    const auto bytes = toVec(b.finish()); // parse() aliases the buffer
    auto tx = TxParser::parse(bytes);
    ASSERT_TRUE(tx.has_value());
    ASSERT_EQ(tx->entries().size(), 1u);
    const ParsedMemLog &m = tx->entries()[0];
    EXPECT_EQ(m.flag, MemLogFlag::kOpRef);
    EXPECT_EQ(m.oplog_off, 0x40u);
    EXPECT_EQ(m.val_off, 8u);
    EXPECT_EQ(m.len, 64u);
}

TEST(TxFormatTest, ManyEntriesSurvive)
{
    TxBuilder b;
    b.reset(10, 7, 100);
    for (uint64_t i = 0; i < 500; ++i) {
        const uint64_t v = i * 3;
        b.addInline(RemotePtr(0, 4096 + i * 8), &v, 8);
    }
    const auto bytes = toVec(b.finish()); // parse() aliases the buffer
    auto tx = TxParser::parse(bytes);
    ASSERT_TRUE(tx.has_value());
    ASSERT_EQ(tx->entries().size(), 500u);
    uint64_t got;
    std::memcpy(&got, tx->entries()[499].inline_value, 8);
    EXPECT_EQ(got, 499u * 3);
}

/**
 * An entry header whose len field is near UINT32_MAX must be rejected
 * by a length comparison, not by `p + eh.len` pointer arithmetic — the
 * latter overflows past one-past-the-end (undefined behaviour, and a
 * wild read wherever it happens to wrap). The footer checksum is
 * recomputed after patching so the parser actually reaches the bounds
 * check instead of bailing at the end mark.
 */
TEST(TxFormatTest, HugeEntryLenRejectedWithoutOverflow)
{
    TxBuilder b;
    b.reset(1, 0, 0);
    const uint64_t v = 7;
    b.addInline(RemotePtr(0, 64), &v, 8);
    auto bytes = toVec(b.finish());

    for (const uint32_t evil :
         {UINT32_MAX, UINT32_MAX - 7, UINT32_MAX - 15, 1u << 31}) {
        auto patched = bytes;
        auto *eh = reinterpret_cast<MemLogEntryHeader *>(
            patched.data() + sizeof(TxHeader));
        eh->len = evil;
        auto *foot = reinterpret_cast<TxFooter *>(
            patched.data() + patched.size() - sizeof(TxFooter));
        foot->checksum = crc32c(patched.data(),
                                patched.size() - sizeof(TxFooter));
        EXPECT_FALSE(TxParser::parse(patched).has_value())
            << "len=" << evil;
    }
}

/** Same hazard on the op-log side: val_len near UINT32_MAX. */
TEST(OpLogTest, HugeValLenRejectedWithoutOverflow)
{
    const char val[] = "tiny";
    auto rec = encodeOpLog(OpType::Insert, 1, 2, 3, val, sizeof(val));
    for (const uint32_t evil : {UINT32_MAX, UINT32_MAX - 3, 1u << 31}) {
        auto patched = rec;
        auto *hdr = reinterpret_cast<OpLogHeader *>(patched.data());
        hdr->val_len = evil;
        EXPECT_FALSE(decodeOpLog(patched).has_value()) << "len=" << evil;
    }
}

/**
 * Deterministic structured fuzz: every single-byte corruption and every
 * truncation of a valid transaction must parse cleanly (to a value or
 * to nullopt) without touching memory outside the buffer. Run under
 * ASYMNVM_SANITIZE=ON this is the torn-header safety net.
 */
TEST(TxFormatTest, ByteFlipAndTruncationFuzz)
{
    TxBuilder b;
    b.reset(2, 3, 4);
    uint8_t blob[48];
    std::memset(blob, 0x11, sizeof(blob));
    b.addInline(RemotePtr(1, 0x100), blob, sizeof(blob));
    b.addOpRef(RemotePtr(1, 0x200), 0x80, 8, 64);
    const auto bytes = toVec(b.finish());

    for (size_t i = 0; i < bytes.size(); ++i) {
        for (const uint8_t delta : {0x01, 0x80, 0xff}) {
            auto mut = bytes;
            mut[i] ^= delta;
            (void)TxParser::parse(mut); // must not crash
        }
    }
    for (size_t cut = 1; cut <= bytes.size(); ++cut) {
        std::vector<uint8_t> torn(bytes.begin(), bytes.end() - cut);
        EXPECT_FALSE(TxParser::parse(torn).has_value())
            << "truncation of " << cut << " bytes went undetected";
    }
}

TEST(OpLogTest, EncodeDecodeRoundTrip)
{
    const char val[] = "value-bytes";
    const auto rec =
        encodeOpLog(OpType::Insert, 4, 17, 0xbeef, val, sizeof(val));
    auto parsed = decodeOpLog(rec);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->op, OpType::Insert);
    EXPECT_EQ(parsed->ds_id, 4u);
    EXPECT_EQ(parsed->opn, 17u);
    EXPECT_EQ(parsed->key, 0xbeefu);
    EXPECT_EQ(parsed->wire_len, rec.size());
    ASSERT_EQ(parsed->value.size(), sizeof(val));
    EXPECT_EQ(std::memcmp(parsed->value.data(), val, sizeof(val)), 0);
}

TEST(OpLogTest, EmptyValueAllowed)
{
    const auto rec = encodeOpLog(OpType::Pop, 1, 2, 0, nullptr, 0);
    auto parsed = decodeOpLog(rec);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(parsed->value.empty());
}

TEST(OpLogTest, TornRecordDetected)
{
    const char val[] = "torn";
    auto rec = encodeOpLog(OpType::Update, 0, 1, 2, val, sizeof(val));
    rec.pop_back();
    EXPECT_FALSE(decodeOpLog(rec).has_value());
}

TEST(OpLogTest, CorruptValueDetected)
{
    const char val[] = "corrupt-me";
    auto rec = encodeOpLog(OpType::Insert, 0, 1, 2, val, sizeof(val));
    rec[sizeof(OpLogHeader) + 3] ^= 0x80;
    EXPECT_FALSE(decodeOpLog(rec).has_value());
}

TEST(OpLogTest, DecodeFromLargerBufferUsesWireLen)
{
    const char val[] = "x";
    auto rec = encodeOpLog(OpType::Erase, 9, 3, 4, val, sizeof(val));
    const size_t wire = rec.size();
    rec.resize(rec.size() + 100, 0xcd); // trailing garbage in the ring
    auto parsed = decodeOpLog(rec);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->wire_len, wire);
}

} // namespace
} // namespace asymnvm
