/**
 * @file
 * Coroutine-pipelined session operations (DESIGN.md §11): correctness of
 * out-of-order completion, the depth-1 bit-identity guarantee, round-trip
 * overlap at depth > 1, commit coalescing at window drain, and crash
 * recovery with a pipeline in flight.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <random>
#include <vector>

#include "backend/backend_node.h"
#include "cluster/cluster.h"
#include "common/rand.h"
#include "ds/bptree.h"
#include "ds/hash_table.h"
#include "ds/mv_bptree.h"
#include "ds/queue.h"
#include "ds/skiplist.h"
#include "ds/stack.h"
#include "frontend/session.h"

namespace asymnvm {
namespace {

BackendConfig
testConfig()
{
    BackendConfig cfg;
    cfg.nvm_size = 64ull << 20;
    cfg.max_frontends = 4;
    cfg.max_names = 8;
    cfg.memlog_ring_size = 1ull << 20;
    cfg.oplog_ring_size = 512ull << 10;
    return cfg;
}

/** One back-end + one RC session with a given pipeline depth. */
struct PipeRig
{
    std::unique_ptr<BackendNode> be;
    std::unique_ptr<FrontendSession> s;

    PipeRig(uint64_t id, uint32_t depth, uint64_t cache_bytes = 256 << 10)
    {
        be = std::make_unique<BackendNode>(1, testConfig());
        SessionConfig cfg = SessionConfig::rc(id, cache_bytes);
        cfg.pipeline_depth = depth;
        s = std::make_unique<FrontendSession>(cfg);
        EXPECT_EQ(s->connect(be.get()), Status::Ok);
    }
};

template <typename DS>
void
preload(DS &ds, uint64_t nkeys)
{
    Value v{};
    for (uint64_t k = 1; k <= nkeys; ++k) {
        v = Value::ofU64(k * 31);
        ASSERT_EQ(ds.insert(k, v), Status::Ok);
    }
    ASSERT_EQ(ds.session().flushAll(), Status::Ok);
    ds.session().cache().clear();
    ds.session().resetStats();
}

// ---------------------------------------------------------------------
// Correctness: pipelined lookups return the same results as serial ones,
// with out-of-order completion landing each status in its own slot.
// ---------------------------------------------------------------------

TEST(PipelineTest, BpTreeFindManyMatchesSerial)
{
    constexpr uint64_t kKeys = 2000;
    PipeRig rig(11, /*depth=*/8);
    BpTree ds;
    ASSERT_EQ(BpTree::create(*rig.s, 1, "t", &ds), Status::Ok);
    preload(ds, kKeys);

    // Shuffled present keys plus interleaved absent ones: ops traverse
    // different depths and complete out of issue order, but results[i]
    // must still describe keys[i].
    std::vector<Key> keys;
    Rng rng(7);
    for (uint64_t i = 0; i < 64; ++i)
        keys.push_back(1 + rng.nextBounded(kKeys));
    keys.push_back(kKeys + 100); // absent
    keys.insert(keys.begin() + 10, kKeys + 200); // absent, mid-window
    std::vector<Value> vals(keys.size());
    std::vector<Status> sts(keys.size());
    ASSERT_EQ(ds.findMany(keys, vals.data(), sts.data()), Status::Ok);
    for (size_t i = 0; i < keys.size(); ++i) {
        if (keys[i] > kKeys) {
            EXPECT_EQ(sts[i], Status::NotFound) << "slot " << i;
        } else {
            ASSERT_EQ(sts[i], Status::Ok) << "slot " << i;
            EXPECT_EQ(vals[i].asU64(), keys[i] * 31) << "slot " << i;
        }
    }
    const SessionStats st = rig.s->stats();
    EXPECT_EQ(st.pipeline.depth, 8u);
    EXPECT_EQ(st.pipeline.runs, 1u);
    EXPECT_EQ(st.pipeline.ops, keys.size());
    EXPECT_GT(st.pipeline.max_in_flight, 1u);
    // Overlap is the point: rounds serve several ops' reads at once.
    EXPECT_GT(st.pipeline.overlap(), 1.5);
    // The NIC observed multi-op gather arrivals.
    EXPECT_GT(rig.be->nic().multiOpBatches(), 0u);
}

TEST(PipelineTest, HashTableGetManyOutOfOrderSlots)
{
    PipeRig rig(12, /*depth=*/6);
    HashTable ds;
    ASSERT_EQ(HashTable::create(*rig.s, 1, "h", 64, &ds), Status::Ok);
    Value v{};
    for (uint64_t k = 1; k <= 300; ++k) {
        v = Value::ofU64(k ^ 0xabcd);
        ASSERT_EQ(ds.put(k, v), Status::Ok);
    }
    ASSERT_EQ(rig.s->flushAll(), Status::Ok);
    rig.s->cache().clear();
    rig.s->resetStats();

    // Warm one key so its op completes on round one while the rest are
    // still suspended — maximal completion-order skew.
    ASSERT_EQ(ds.get(7, &v), Status::Ok);

    std::vector<Key> keys = {3, 7, 999, 150, 7, 42, 1000, 280, 1};
    std::vector<Value> vals(keys.size());
    std::vector<Status> sts(keys.size());
    ASSERT_EQ(ds.getMany(keys, vals.data(), sts.data()), Status::Ok);
    for (size_t i = 0; i < keys.size(); ++i) {
        if (keys[i] > 300) {
            EXPECT_EQ(sts[i], Status::NotFound) << "slot " << i;
        } else {
            ASSERT_EQ(sts[i], Status::Ok) << "slot " << i;
            EXPECT_EQ(vals[i].asU64(), keys[i] ^ 0xabcd) << "slot " << i;
        }
    }
}

TEST(PipelineTest, SkipListAndMvBpTreeFindMany)
{
    PipeRig rig(13, /*depth=*/4);
    SkipList sl;
    ASSERT_EQ(SkipList::create(*rig.s, 1, "sl", &sl), Status::Ok);
    preload(sl, 400);
    std::vector<Key> keys = {5, 399, 77, 401, 200};
    std::vector<Value> vals(keys.size());
    std::vector<Status> sts(keys.size());
    ASSERT_EQ(sl.findMany(keys, vals.data(), sts.data()), Status::Ok);
    for (size_t i = 0; i < keys.size(); ++i) {
        if (keys[i] > 400) {
            EXPECT_EQ(sts[i], Status::NotFound);
        } else {
            ASSERT_EQ(sts[i], Status::Ok) << "slot " << i;
            EXPECT_EQ(vals[i].asU64(), keys[i] * 31);
        }
    }

    MvBpTree mv;
    ASSERT_EQ(MvBpTree::create(*rig.s, 1, "mv", &mv), Status::Ok);
    preload(mv, 400);
    ASSERT_EQ(mv.findMany(keys, vals.data(), sts.data()), Status::Ok);
    for (size_t i = 0; i < keys.size(); ++i) {
        if (keys[i] > 400) {
            EXPECT_EQ(sts[i], Status::NotFound);
        } else {
            ASSERT_EQ(sts[i], Status::Ok) << "slot " << i;
            EXPECT_EQ(vals[i].asU64(), keys[i] * 31);
        }
    }
}

// ---------------------------------------------------------------------
// Depth 1 is the ablation baseline: executePipelined must be
// bit-identical to the serial loop — same verbs, same bytes, same clock.
// ---------------------------------------------------------------------

TEST(PipelineTest, DepthOneIsBitIdenticalToSerialFinds)
{
    constexpr uint64_t kKeys = 1200;
    PipeRig piped(14, /*depth=*/1);
    PipeRig serial(15, /*depth=*/1);
    BpTree dp, ds;
    ASSERT_EQ(BpTree::create(*piped.s, 1, "t", &dp), Status::Ok);
    ASSERT_EQ(BpTree::create(*serial.s, 1, "t", &ds), Status::Ok);
    preload(dp, kKeys);
    preload(ds, kKeys);

    std::vector<Key> keys;
    Rng rng(21);
    for (uint64_t i = 0; i < 48; ++i)
        keys.push_back(1 + rng.nextBounded(kKeys));

    const uint64_t p0 = piped.s->clock().now();
    std::vector<Value> vals(keys.size());
    std::vector<Status> sts(keys.size());
    ASSERT_EQ(dp.findMany(keys, vals.data(), sts.data()), Status::Ok);
    const uint64_t piped_ns = piped.s->clock().now() - p0;

    const uint64_t s0 = serial.s->clock().now();
    for (size_t i = 0; i < keys.size(); ++i) {
        Value v;
        ASSERT_EQ(ds.find(keys[i], &v), Status::Ok);
        EXPECT_EQ(v.asU64(), vals[i].asU64());
    }
    const uint64_t serial_ns = serial.s->clock().now() - s0;

    EXPECT_EQ(piped_ns, serial_ns);
    const VerbCounters a = piped.s->verbs().counters();
    const VerbCounters b = serial.s->verbs().counters();
    EXPECT_EQ(a.reads, b.reads);
    EXPECT_EQ(a.writes, b.writes);
    EXPECT_EQ(a.posted, b.posted);
    EXPECT_EQ(a.read_gathers, b.read_gathers);
    EXPECT_EQ(a.doorbells, b.doorbells);
    EXPECT_EQ(a.atomics, b.atomics);
    EXPECT_EQ(a.read_bytes, b.read_bytes);
    EXPECT_EQ(piped.s->verbs().verbsIssued(), serial.s->verbs().verbsIssued());
    EXPECT_EQ(piped.s->verbs().bytesMoved(), serial.s->verbs().bytesMoved());
    // And no reactor involvement at all.
    EXPECT_EQ(piped.s->stats().pipeline.runs, 0u);
    EXPECT_EQ(piped.s->stats().pipeline.rounds, 0u);
}

// ---------------------------------------------------------------------
// The perf claim: depth 8 overlaps cold-cache traversals' round trips.
// ---------------------------------------------------------------------

TEST(PipelineTest, DepthEightOverlapsColdLookupRtts)
{
    constexpr uint64_t kKeys = 3000;
    PipeRig deep(16, /*depth=*/8, 64 << 10);
    PipeRig flat(17, /*depth=*/1, 64 << 10);
    BpTree dd, df;
    ASSERT_EQ(BpTree::create(*deep.s, 1, "t", &dd), Status::Ok);
    ASSERT_EQ(BpTree::create(*flat.s, 1, "t", &df), Status::Ok);
    preload(dd, kKeys);
    preload(df, kKeys);

    std::vector<Key> keys;
    Rng rng(33);
    for (uint64_t i = 0; i < 96; ++i)
        keys.push_back(1 + rng.nextBounded(kKeys));
    std::vector<Value> vals(keys.size());
    std::vector<Status> sts(keys.size());

    const uint64_t d0 = deep.s->clock().now();
    ASSERT_EQ(dd.findMany(keys, vals.data(), sts.data()), Status::Ok);
    const uint64_t deep_ns = deep.s->clock().now() - d0;
    const uint64_t f0 = flat.s->clock().now();
    ASSERT_EQ(df.findMany(keys, vals.data(), sts.data()), Status::Ok);
    const uint64_t flat_ns = flat.s->clock().now() - f0;
    for (const Status st : sts)
        ASSERT_EQ(st, Status::Ok);

    // Acceptance bar: >= 1.5x cold-cache lookup throughput at depth 8.
    EXPECT_GE(static_cast<double>(flat_ns),
              1.5 * static_cast<double>(deep_ns))
        << "depth-8 " << deep_ns << " ns vs depth-1 " << flat_ns << " ns";
}

// ---------------------------------------------------------------------
// Commit coalescing: write ops inside a pipeline window defer their
// group-commit fence to window drain, and the drain makes them durable.
// ---------------------------------------------------------------------

TEST(PipelineTest, PipelinedWritesCoalesceCommitToDrain)
{
    PipeRig rig(18, /*depth=*/4);
    BpTree ds;
    ASSERT_EQ(BpTree::create(*rig.s, 1, "t", &ds), Status::Ok);
    Value v{};
    for (uint64_t k = 1; k <= 200; ++k)
        ASSERT_EQ(ds.insert(k, Value::ofU64(k)), Status::Ok);
    ASSERT_EQ(rig.s->flushAll(), Status::Ok);
    rig.s->resetStats();

    // Insert wrappers: the writes themselves run synchronously inside
    // their coroutines; what the pipeline adds is the commit path — each
    // opEnd defers its fence, one flushAll covers the window.
    std::vector<OpTask> ops;
    auto wrap = [&](Key k) -> OpTask {
        co_return ds.insert(k, Value::ofU64(k * 7));
    };
    for (uint64_t k = 500; k < 516; ++k)
        ops.push_back(wrap(k));
    std::vector<Status> sts(ops.size());
    rig.s->executePipelined(ops, sts);
    for (const Status st : sts)
        ASSERT_EQ(st, Status::Ok);
    const SessionStats st = rig.s->stats();
    EXPECT_EQ(st.pipeline.deferred_commits, 1u);
    EXPECT_EQ(rig.s->opsInBatch(), 0u); // drained: nothing left open

    // Durable at drain: a front-end reboot plus recovery loses nothing.
    rig.s->simulateCrash();
    ASSERT_EQ(rig.s->recover(), Status::Ok);
    BpTree audit;
    ASSERT_EQ(BpTree::open(*rig.s, 1, "t", &audit), Status::Ok);
    for (uint64_t k = 500; k < 516; ++k) {
        ASSERT_EQ(audit.find(k, &v), Status::Ok) << "key " << k;
        EXPECT_EQ(v.asU64(), k * 7);
    }
}

// ---------------------------------------------------------------------
// Crash with a pipeline in flight: whatever survives is value-correct,
// and every op from windows acknowledged at drain is present.
// ---------------------------------------------------------------------

TEST(PipelineTest, CrashMidPipelineRecoversCommittedWindows)
{
    ClusterConfig ccfg;
    ccfg.num_backends = 1;
    ccfg.mirrors_per_backend = 1;
    ccfg.backend = testConfig();
    Cluster cluster(ccfg);
    SessionConfig scfg = SessionConfig::rc(19, 256 << 10);
    scfg.pipeline_depth = 4;
    auto s = cluster.makeSession(scfg);
    ASSERT_NE(s, nullptr);
    BpTree ds;
    ASSERT_EQ(BpTree::create(*s, 1, "t", &ds), Status::Ok);
    Value v{};
    for (uint64_t k = 1; k <= 100; ++k)
        ASSERT_EQ(ds.insert(k, Value::ofU64(k)), Status::Ok);
    ASSERT_EQ(s->flushAll(), Status::Ok);

    // Pipelined insert windows until the armed crash fires mid-window.
    cluster.backend(1)->failure().armCrashAfterVerbs(400, /*seed=*/5);
    std::map<Key, uint64_t> committed; // windows whose drain returned Ok
    bool crashed = false;
    for (uint64_t w = 0; w < 64 && !crashed; ++w) {
        std::vector<OpTask> ops;
        std::vector<Key> keys;
        auto wrap = [&](Key k) -> OpTask {
            co_return ds.insert(k, Value::ofU64(k * 3));
        };
        for (uint64_t i = 0; i < 8; ++i) {
            const Key k = 1000 + w * 8 + i;
            keys.push_back(k);
            ops.push_back(wrap(k));
        }
        std::vector<Status> sts(ops.size());
        s->executePipelined(ops, sts);
        bool window_ok = true;
        for (const Status st : sts)
            window_ok = window_ok && ok(st);
        // The drain's flushAll is the durability point of the window; a
        // failed flush surfaces in the NEXT op's status, so confirm with
        // an explicit fence before counting the window as committed.
        if (window_ok && ok(s->flushAll())) {
            for (const Key k : keys)
                committed[k] = k * 3;
        } else {
            crashed = true;
        }
    }
    ASSERT_TRUE(crashed) << "crash never fired; raise the verb budget";

    cluster.backend(1)->nvm().crash();
    ASSERT_EQ(cluster.restartBackend(1), Status::Ok);
    s->simulateCrash();
    ASSERT_EQ(s->failover(1, cluster.backend(1)), Status::Ok);
    BpTree reopened;
    ASSERT_EQ(BpTree::open(*s, 1, "t", &reopened), Status::Ok);
    ASSERT_EQ(s->recover(), Status::Ok);

    BpTree audit;
    ASSERT_EQ(BpTree::open(*s, 1, "t", &audit), Status::Ok);
    // Every acknowledged window survives in full.
    for (const auto &[k, val] : committed) {
        ASSERT_EQ(audit.find(k, &v), Status::Ok)
            << "committed key " << k << " lost";
        EXPECT_EQ(v.asU64(), val) << "committed key " << k << " torn";
    }
    // Unacknowledged keys may or may not survive (their op logs may have
    // persisted), but anything present must be whole and value-correct.
    for (uint64_t k = 1000; k < 1000 + 64 * 8; ++k) {
        if (committed.count(k) != 0)
            continue;
        const Status got = audit.find(k, &v);
        if (got == Status::Ok)
            EXPECT_EQ(v.asU64(), k * 3) << "in-flight key " << k << " torn";
        else
            EXPECT_EQ(got, Status::NotFound);
    }
    // The structure stays usable.
    ASSERT_EQ(audit.insert(9999, Value::ofU64(42)), Status::Ok);
    ASSERT_EQ(s->flushAll(), Status::Ok);
    ASSERT_EQ(audit.find(9999, &v), Status::Ok);
    EXPECT_EQ(v.asU64(), 42u);
}

// ---------------------------------------------------------------------
// Reactor edge cases.
// ---------------------------------------------------------------------

TEST(PipelineTest, EmptyAndSingleOpWindows)
{
    PipeRig rig(20, /*depth=*/8);
    BpTree ds;
    ASSERT_EQ(BpTree::create(*rig.s, 1, "t", &ds), Status::Ok);
    preload(ds, 100);

    std::vector<Key> none;
    ASSERT_EQ(ds.findMany(none, nullptr, nullptr), Status::Ok);

    Key one = 50;
    Value v{};
    Status st = Status::Ok;
    ASSERT_EQ(ds.findMany(std::span<const Key>(&one, 1), &v, &st),
              Status::Ok);
    EXPECT_EQ(st, Status::Ok);
    EXPECT_EQ(v.asU64(), 50u * 31);
    // A single op never enters the reactor — serial fall-through.
    EXPECT_EQ(rig.s->stats().pipeline.runs, 0u);
}

TEST(PipelineTest, SharedHandleFallsBackToSerialProtocol)
{
    auto be = std::make_unique<BackendNode>(1, testConfig());
    FrontendSession writer(SessionConfig::rc(21, 256 << 10));
    SessionConfig rcfg = SessionConfig::rc(22, 256 << 10);
    rcfg.pipeline_depth = 8;
    FrontendSession reader(rcfg);
    ASSERT_EQ(writer.connect(be.get()), Status::Ok);
    ASSERT_EQ(reader.connect(be.get()), Status::Ok);
    DsOptions opt;
    opt.shared = true;
    BpTree wds;
    ASSERT_EQ(BpTree::create(writer, 1, "t", &wds, opt), Status::Ok);
    Value v{};
    for (uint64_t k = 1; k <= 200; ++k)
        ASSERT_EQ(wds.insert(k, Value::ofU64(k)), Status::Ok);
    ASSERT_EQ(writer.flushAll(), Status::Ok);

    BpTree rds;
    ASSERT_EQ(BpTree::open(reader, 1, "t", &rds, opt), Status::Ok);
    reader.resetStats();
    std::vector<Key> keys = {3, 50, 199, 250};
    std::vector<Value> vals(keys.size());
    std::vector<Status> sts(keys.size());
    ASSERT_EQ(rds.findMany(keys, vals.data(), sts.data()), Status::Ok);
    EXPECT_EQ(sts[0], Status::Ok);
    EXPECT_EQ(vals[0].asU64(), 3u);
    EXPECT_EQ(sts[3], Status::NotFound);
    // Seqlock-protected reads never pipeline: the session-global read
    // tracking would be trampled by interleaved coroutines.
    EXPECT_EQ(reader.stats().pipeline.runs, 0u);
    EXPECT_EQ(reader.stats().pipeline.ops, 0u);
}

// ---------------------------------------------------------------------
// Write pipelining (DESIGN.md §14): depth 1 must run the native write
// coroutines bit-identically to the serial protocol — same virtual
// clock, same per-field verb counters, no reactor involvement.
// ---------------------------------------------------------------------

/** Compare clock delta and cumulative verb counters of two rigs. */
void
expectRigsIdentical(PipeRig &piped, PipeRig &serial, uint64_t piped_ns,
                    uint64_t serial_ns, const char *tag)
{
    EXPECT_EQ(piped_ns, serial_ns) << tag;
    const VerbCounters a = piped.s->verbs().counters();
    const VerbCounters b = serial.s->verbs().counters();
    EXPECT_EQ(a.reads, b.reads) << tag;
    EXPECT_EQ(a.writes, b.writes) << tag;
    EXPECT_EQ(a.posted, b.posted) << tag;
    EXPECT_EQ(a.read_gathers, b.read_gathers) << tag;
    EXPECT_EQ(a.doorbells, b.doorbells) << tag;
    EXPECT_EQ(a.atomics, b.atomics) << tag;
    EXPECT_EQ(a.read_bytes, b.read_bytes) << tag;
    EXPECT_EQ(a.write_bytes, b.write_bytes) << tag;
    EXPECT_EQ(a.wqes, b.wqes) << tag;
    EXPECT_EQ(piped.s->verbs().verbsIssued(),
              serial.s->verbs().verbsIssued())
        << tag;
    EXPECT_EQ(piped.s->verbs().bytesMoved(), serial.s->verbs().bytesMoved())
        << tag;
}

TEST(PipelineTest, DepthOneWritePipelineBitIdenticalToSerial)
{
    constexpr uint64_t kKeys = 800;
    PipeRig piped(30, /*depth=*/1);
    PipeRig serial(31, /*depth=*/1);
    BpTree dp, ds;
    ASSERT_EQ(BpTree::create(*piped.s, 1, "t", &dp), Status::Ok);
    ASSERT_EQ(BpTree::create(*serial.s, 1, "t", &ds), Status::Ok);
    preload(dp, kKeys);
    preload(ds, kKeys);

    // Mixed batch: updates of cold existing keys plus fresh inserts,
    // split-triggering runs included.
    std::vector<std::pair<Key, Value>> kvs;
    Rng rng(5);
    for (uint64_t i = 0; i < 24; ++i) {
        const Key k = 1 + rng.nextBounded(2 * kKeys);
        kvs.emplace_back(k, Value::ofU64(k * 13));
    }
    std::vector<Status> psts(kvs.size()), ssts(kvs.size());
    uint64_t p0 = piped.s->clock().now();
    ASSERT_EQ(dp.insertMany(kvs, psts.data()), Status::Ok);
    const uint64_t piped_ins = piped.s->clock().now() - p0;
    uint64_t s0 = serial.s->clock().now();
    for (size_t i = 0; i < kvs.size(); ++i)
        ssts[i] = ds.insert(kvs[i].first, kvs[i].second);
    const uint64_t serial_ins = serial.s->clock().now() - s0;
    for (size_t i = 0; i < kvs.size(); ++i)
        EXPECT_EQ(psts[i], ssts[i]) << "slot " << i;
    expectRigsIdentical(piped, serial, piped_ins, serial_ins, "insert");

    // Erase a present/absent mix through the same comparison.
    std::vector<Key> dead;
    for (uint64_t i = 0; i < 16; ++i)
        dead.push_back(1 + rng.nextBounded(3 * kKeys));
    p0 = piped.s->clock().now();
    ASSERT_EQ(dp.eraseMany(dead, psts.data()), Status::Ok);
    const uint64_t piped_del = piped.s->clock().now() - p0;
    s0 = serial.s->clock().now();
    for (size_t i = 0; i < dead.size(); ++i)
        ssts[i] = ds.erase(dead[i]);
    const uint64_t serial_del = serial.s->clock().now() - s0;
    for (size_t i = 0; i < dead.size(); ++i)
        EXPECT_EQ(psts[i], ssts[i]) << "slot " << i;
    expectRigsIdentical(piped, serial, piped_del, serial_del, "erase");

    // No reactor, no write-window machinery at depth 1.
    const PipelineStats p = piped.s->stats().pipeline;
    EXPECT_EQ(p.runs, 0u);
    EXPECT_EQ(p.rounds, 0u);
    EXPECT_EQ(p.deferred_commits, 0u);
    EXPECT_EQ(p.batched_appends, 0u);
    EXPECT_EQ(p.coalesced_fences, 0u);
    EXPECT_EQ(p.dep_stalls, 0u);
}

TEST(PipelineTest, DepthOneWritesBitIdenticalAcrossStructures)
{
    PipeRig piped(32, /*depth=*/1);
    PipeRig serial(33, /*depth=*/1);

    SkipList sp, ss;
    ASSERT_EQ(SkipList::create(*piped.s, 1, "sl", &sp), Status::Ok);
    ASSERT_EQ(SkipList::create(*serial.s, 1, "sl", &ss), Status::Ok);
    preload(sp, 300);
    preload(ss, 300);
    std::vector<std::pair<Key, Value>> kvs;
    Rng rng(9);
    for (uint64_t i = 0; i < 12; ++i) {
        const Key k = 1 + rng.nextBounded(600);
        kvs.emplace_back(k, Value::ofU64(k * 17));
    }
    std::vector<Status> psts(16), ssts(16);
    uint64_t p0 = piped.s->clock().now();
    ASSERT_EQ(sp.insertMany(kvs, psts.data()), Status::Ok);
    uint64_t s0 = serial.s->clock().now();
    for (size_t i = 0; i < kvs.size(); ++i)
        ssts[i] = ss.insert(kvs[i].first, kvs[i].second);
    expectRigsIdentical(piped, serial, piped.s->clock().now() - p0,
                        serial.s->clock().now() - s0, "skiplist insert");
    std::vector<Key> dead = {3, 299, 550, 1000};
    p0 = piped.s->clock().now();
    ASSERT_EQ(sp.eraseMany(dead, psts.data()), Status::Ok);
    s0 = serial.s->clock().now();
    for (size_t i = 0; i < dead.size(); ++i)
        ssts[i] = ss.erase(dead[i]);
    expectRigsIdentical(piped, serial, piped.s->clock().now() - p0,
                        serial.s->clock().now() - s0, "skiplist erase");

    HashTable hp, hs;
    ASSERT_EQ(HashTable::create(*piped.s, 1, "h", 64, &hp), Status::Ok);
    ASSERT_EQ(HashTable::create(*serial.s, 1, "h", 64, &hs), Status::Ok);
    for (uint64_t k = 1; k <= 200; ++k) {
        ASSERT_EQ(hp.put(k, Value::ofU64(k)), Status::Ok);
        ASSERT_EQ(hs.put(k, Value::ofU64(k)), Status::Ok);
    }
    ASSERT_EQ(piped.s->flushAll(), Status::Ok);
    ASSERT_EQ(serial.s->flushAll(), Status::Ok);
    piped.s->cache().clear();
    serial.s->cache().clear();
    p0 = piped.s->clock().now();
    ASSERT_EQ(hp.putMany(kvs, psts.data()), Status::Ok);
    s0 = serial.s->clock().now();
    for (size_t i = 0; i < kvs.size(); ++i)
        ssts[i] = hs.put(kvs[i].first, kvs[i].second);
    expectRigsIdentical(piped, serial, piped.s->clock().now() - p0,
                        serial.s->clock().now() - s0, "hash put");
    p0 = piped.s->clock().now();
    ASSERT_EQ(hp.eraseMany(dead, psts.data()), Status::Ok);
    s0 = serial.s->clock().now();
    for (size_t i = 0; i < dead.size(); ++i)
        ssts[i] = hs.erase(dead[i]);
    expectRigsIdentical(piped, serial, piped.s->clock().now() - p0,
                        serial.s->clock().now() - s0, "hash erase");

    MvBpTree mp, ms;
    ASSERT_EQ(MvBpTree::create(*piped.s, 1, "mv", &mp), Status::Ok);
    ASSERT_EQ(MvBpTree::create(*serial.s, 1, "mv", &ms), Status::Ok);
    preload(mp, 300);
    preload(ms, 300);
    p0 = piped.s->clock().now();
    ASSERT_EQ(mp.insertMany(kvs, psts.data()), Status::Ok);
    s0 = serial.s->clock().now();
    for (size_t i = 0; i < kvs.size(); ++i)
        ssts[i] = ms.insert(kvs[i].first, kvs[i].second);
    expectRigsIdentical(piped, serial, piped.s->clock().now() - p0,
                        serial.s->clock().now() - s0, "mv insert");
    p0 = piped.s->clock().now();
    ASSERT_EQ(mp.eraseMany(dead, psts.data()), Status::Ok);
    s0 = serial.s->clock().now();
    for (size_t i = 0; i < dead.size(); ++i)
        ssts[i] = ms.erase(dead[i]);
    expectRigsIdentical(piped, serial, piped.s->clock().now() - p0,
                        serial.s->clock().now() - s0, "mv erase");
}

// ---------------------------------------------------------------------
// Read-your-writes inside one window (satellite 1): a read admitted
// after a same-key write must observe that write even when both parked
// on the same cold leaf in the same service round.
// ---------------------------------------------------------------------

TEST(PipelineTest, ReadYourWritesWithinPipelinedWindow)
{
    constexpr uint64_t kKeys = 2000;
    PipeRig rig(34, /*depth=*/8, 64 << 10);
    BpTree ds;
    ASSERT_EQ(BpTree::create(*rig.s, 1, "t", &ds), Status::Ok);
    preload(ds, kKeys);

    // Updates of cold existing keys and brand-new inserts, each chased
    // by a findAsync of the same key in the same window; plus erases
    // chased by a find that must miss.
    std::vector<Key> upd = {17, 911, 1500, 333};
    std::vector<Key> fresh = {kKeys + 5, kKeys + 60, kKeys + 7};
    std::vector<Key> gone = {250, 1999};
    std::vector<OpTask> ops;
    std::vector<Value> got(upd.size() + fresh.size());
    std::vector<Value> miss(gone.size());
    size_t slot = 0;
    for (const Key k : upd) {
        ops.push_back(ds.insertAsync(k, Value::ofU64(k * 1000 + 1)));
        ops.push_back(ds.findAsync(k, &got[slot++]));
    }
    for (const Key k : fresh) {
        ops.push_back(ds.insertAsync(k, Value::ofU64(k * 1000 + 2)));
        ops.push_back(ds.findAsync(k, &got[slot++]));
    }
    for (size_t i = 0; i < gone.size(); ++i) {
        ops.push_back(ds.eraseAsync(gone[i]));
        ops.push_back(ds.findAsync(gone[i], &miss[i]));
    }
    std::vector<Status> sts(ops.size());
    rig.s->executePipelined(ops, sts);

    size_t at = 0;
    for (const Key k : upd) {
        ASSERT_EQ(sts[2 * at], Status::Ok) << "write of key " << k;
        ASSERT_EQ(sts[2 * at + 1], Status::Ok) << "read of key " << k;
        EXPECT_EQ(got[at].asU64(), k * 1000 + 1)
            << "stale read-after-update of key " << k;
        ++at;
    }
    for (const Key k : fresh) {
        ASSERT_EQ(sts[2 * at], Status::Ok) << "write of key " << k;
        ASSERT_EQ(sts[2 * at + 1], Status::Ok) << "read of key " << k;
        EXPECT_EQ(got[at].asU64(), k * 1000 + 2)
            << "stale read-after-insert of key " << k;
        ++at;
    }
    for (size_t i = 0; i < gone.size(); ++i) {
        ASSERT_EQ(sts[2 * (at + i)], Status::Ok) << "erase " << gone[i];
        EXPECT_EQ(sts[2 * (at + i) + 1], Status::NotFound)
            << "read-after-erase of key " << gone[i] << " saw a ghost";
    }
    EXPECT_EQ(rig.s->stats().pipeline.runs, 1u);

    // The window's effects are the ones a serial replay would leave.
    Value v;
    for (const Key k : upd) {
        ASSERT_EQ(ds.find(k, &v), Status::Ok);
        EXPECT_EQ(v.asU64(), k * 1000 + 1);
    }
    for (const Key k : gone)
        EXPECT_EQ(ds.find(k, &v), Status::NotFound);
}

// ---------------------------------------------------------------------
// Window fence accounting (satellites 2 and 6): one deferred commit per
// drained window — never double-charged by the per-op serial fallback —
// with every op's append batched and every fence coalesced.
// ---------------------------------------------------------------------

TEST(PipelineTest, WriteWindowCoalescesFencesWithoutDoubleCharge)
{
    PipeRig rig(35, /*depth=*/4);
    BpTree ds;
    ASSERT_EQ(BpTree::create(*rig.s, 1, "t", &ds), Status::Ok);
    preload(ds, 300);

    std::vector<std::pair<Key, Value>> kvs;
    for (uint64_t i = 0; i < 12; ++i)
        kvs.emplace_back(900 + i, Value::ofU64(i));
    std::vector<Status> sts(kvs.size());
    ASSERT_EQ(ds.insertMany(kvs, sts.data()), Status::Ok);
    for (const Status st : sts)
        ASSERT_EQ(st, Status::Ok);
    const PipelineStats p = rig.s->stats().pipeline;
    // Exactly ONE group commit fenced the whole window at drain; the
    // twelve per-op fences were absorbed, twelve op-log appends rode
    // posted WQE chains instead of solo fenced writes.
    EXPECT_EQ(p.deferred_commits, 1u);
    EXPECT_EQ(p.coalesced_fences, kvs.size());
    EXPECT_EQ(p.batched_appends, kvs.size());
    EXPECT_EQ(rig.s->opsInBatch(), 0u) << "window left ops uncommitted";

    // The per-op serial fallback (depth 1) must not touch any window
    // counter — especially not deferred_commits, which would mean a
    // second commit charge on top of the op's own serial fence.
    PipeRig flat(36, /*depth=*/1);
    BpTree fds;
    ASSERT_EQ(BpTree::create(*flat.s, 1, "t", &fds), Status::Ok);
    preload(fds, 300);
    ASSERT_EQ(fds.insertMany(kvs, sts.data()), Status::Ok);
    const PipelineStats f = flat.s->stats().pipeline;
    EXPECT_EQ(f.deferred_commits, 0u);
    EXPECT_EQ(f.coalesced_fences, 0u);
    EXPECT_EQ(f.batched_appends, 0u);
    EXPECT_EQ(f.runs, 0u);
    EXPECT_EQ(flat.s->opsInBatch(), 0u);
}

// ---------------------------------------------------------------------
// Mixed read/write windows (satellite 3): shuffled inserts, erases and
// finds over disjoint key sets complete out of order into the right
// slots, and the drained image equals a serial replay's.
// ---------------------------------------------------------------------

TEST(PipelineTest, MixedReadWriteWindowOutOfOrderSlots)
{
    constexpr uint64_t kKeys = 3000;
    PipeRig rig(37, /*depth=*/8, 64 << 10);
    BpTree ds;
    ASSERT_EQ(BpTree::create(*rig.s, 1, "t", &ds), Status::Ok);
    preload(ds, kKeys);

    enum class K
    {
        Ins,
        Del,
        Get
    };
    struct Slot
    {
        K kind;
        Key key;
    };
    std::vector<Slot> plan;
    Rng rng(77);
    for (uint64_t i = 0; i < 48; ++i) {
        switch (i % 3) {
          case 0: // fresh insert
            plan.push_back({K::Ins, kKeys + 1 + i});
            break;
          case 1: // erase an existing key (disjoint from the gets)
            plan.push_back({K::Del, 1 + 2 * (i / 3)});
            break;
          default: // read an untouched existing key
            plan.push_back({K::Get, 100 + 2 * (i / 3) + 1});
            break;
        }
    }
    std::shuffle(plan.begin(), plan.end(),
                 std::mt19937_64(rng.next()));
    std::vector<OpTask> ops;
    std::vector<Value> vals(plan.size());
    for (size_t i = 0; i < plan.size(); ++i) {
        switch (plan[i].kind) {
          case K::Ins:
            ops.push_back(
                ds.insertAsync(plan[i].key, Value::ofU64(plan[i].key * 7)));
            break;
          case K::Del:
            ops.push_back(ds.eraseAsync(plan[i].key));
            break;
          case K::Get:
            ops.push_back(ds.findAsync(plan[i].key, &vals[i]));
            break;
        }
    }
    std::vector<Status> sts(ops.size());
    rig.s->executePipelined(ops, sts);
    for (size_t i = 0; i < plan.size(); ++i) {
        ASSERT_EQ(sts[i], Status::Ok)
            << "slot " << i << " key " << plan[i].key;
        if (plan[i].kind == K::Get) {
            EXPECT_EQ(vals[i].asU64(), plan[i].key * 31)
                << "slot " << i;
        }
    }
    const SessionStats st = rig.s->stats();
    EXPECT_EQ(st.pipeline.ops, plan.size());
    EXPECT_GT(st.pipeline.max_in_flight, 1u);
    EXPECT_GT(rig.be->nic().multiOpBatches(), 0u);

    // Post-drain audit: the image equals a serial replay of the plan.
    Value v;
    for (const Slot &sl : plan) {
        switch (sl.kind) {
          case K::Ins:
            ASSERT_EQ(ds.find(sl.key, &v), Status::Ok) << sl.key;
            EXPECT_EQ(v.asU64(), sl.key * 7);
            break;
          case K::Del:
            EXPECT_EQ(ds.find(sl.key, &v), Status::NotFound) << sl.key;
            break;
          case K::Get:
            break;
        }
    }
}

// ---------------------------------------------------------------------
// Heterogeneous windows: one executePipelined batch spanning four
// structures; per-structure gates never serialize across structures.
// ---------------------------------------------------------------------

TEST(PipelineTest, HeterogeneousStructuresShareOneWindow)
{
    PipeRig rig(38, /*depth=*/8);
    BpTree bt;
    Stack stk;
    Queue q;
    HashTable ht;
    ASSERT_EQ(BpTree::create(*rig.s, 1, "bt", &bt), Status::Ok);
    ASSERT_EQ(Stack::create(*rig.s, 1, "st", &stk), Status::Ok);
    ASSERT_EQ(Queue::create(*rig.s, 1, "q", &q), Status::Ok);
    ASSERT_EQ(HashTable::create(*rig.s, 1, "ht", 64, &ht), Status::Ok);
    preload(bt, 500);
    Value v{};
    for (uint64_t k = 1; k <= 200; ++k)
        ASSERT_EQ(ht.put(k, Value::ofU64(k + 7)), Status::Ok);
    ASSERT_EQ(rig.s->flushAll(), Status::Ok);
    rig.s->cache().clear();
    rig.s->resetStats();

    Value sv{}, qv{}, bv{}, hv{};
    std::vector<OpTask> ops;
    ops.push_back(stk.pushAsync(Value::ofU64(111)));
    ops.push_back(q.enqueueAsync(Value::ofU64(222)));
    ops.push_back(bt.insertAsync(600, Value::ofU64(600 * 9)));
    ops.push_back(ht.putAsync(300, Value::ofU64(300 + 7)));
    ops.push_back(bt.findAsync(42, &bv));
    ops.push_back(ht.getAsync(150, &hv));
    ops.push_back(stk.popAsync(&sv));
    ops.push_back(q.dequeueAsync(&qv));
    std::vector<Status> sts(ops.size());
    rig.s->executePipelined(ops, sts);
    for (size_t i = 0; i < sts.size(); ++i)
        ASSERT_EQ(sts[i], Status::Ok) << "slot " << i;
    EXPECT_EQ(sv.asU64(), 111u) << "stack pop missed its window push";
    EXPECT_EQ(qv.asU64(), 222u) << "queue dequeue missed its enqueue";
    EXPECT_EQ(bv.asU64(), 42u * 31);
    EXPECT_EQ(hv.asU64(), 150u + 7);
    EXPECT_EQ(rig.s->stats().pipeline.ops, ops.size());
    EXPECT_EQ(rig.s->stats().pipeline.runs, 1u);

    // Drained state: the tree and table kept the window's writes, the
    // stack and queue are back to empty (push/pop annulled).
    ASSERT_EQ(bt.find(600, &v), Status::Ok);
    EXPECT_EQ(v.asU64(), 600u * 9);
    ASSERT_EQ(ht.get(300, &v), Status::Ok);
    EXPECT_EQ(v.asU64(), 300u + 7);
    EXPECT_EQ(stk.size(), 0u);
    EXPECT_EQ(q.size(), 0u);
}

// ---------------------------------------------------------------------
// The write-side perf claim: eight dependent pop chains (the Stack RCB
// bench cell) run >= 1.3x faster at depth 8 than depth 1, with fewer
// doorbells — the windows turn eight serial head-read RTTs into one
// gather round each.
// ---------------------------------------------------------------------

TEST(PipelineTest, DepthEightOverlapsStackPopChains)
{
    constexpr size_t kStacks = 8;
    constexpr uint64_t kPer = 40; // pops per stack
    auto runAtDepth = [&](uint64_t id, uint32_t depth, uint64_t *ns,
                          uint64_t *doorbells) {
        PipeRig rig(id, depth, 64 << 10);
        std::vector<Stack> stacks(kStacks);
        char name[16];
        for (size_t i = 0; i < kStacks; ++i) {
            std::snprintf(name, sizeof name, "s%zu", i);
            ASSERT_EQ(Stack::create(*rig.s, 1, name, &stacks[i]),
                      Status::Ok);
            for (uint64_t j = 0; j < kPer; ++j)
                ASSERT_EQ(stacks[i].push(Value::ofU64(j)), Status::Ok);
        }
        ASSERT_EQ(rig.s->flushAll(), Status::Ok);
        rig.s->cache().clear();
        rig.s->resetStats();
        std::vector<Value> outs(kStacks);
        std::vector<Status> sts(kStacks);
        const uint64_t t0 = rig.s->clock().now();
        for (uint64_t round = 0; round < kPer; ++round) {
            std::vector<OpTask> ops;
            ops.reserve(kStacks);
            for (size_t i = 0; i < kStacks; ++i)
                ops.push_back(stacks[i].popAsync(&outs[i]));
            rig.s->executePipelined(ops, sts);
            for (size_t i = 0; i < kStacks; ++i) {
                ASSERT_EQ(sts[i], Status::Ok)
                    << "round " << round << " stack " << i;
                EXPECT_EQ(outs[i].asU64(), kPer - 1 - round)
                    << "round " << round << " stack " << i;
            }
        }
        *ns = rig.s->clock().now() - t0;
        *doorbells = rig.s->verbs().counters().doorbells;
    };
    uint64_t deep_ns = 0, deep_db = 0, flat_ns = 0, flat_db = 0;
    runAtDepth(40, /*depth=*/8, &deep_ns, &deep_db);
    runAtDepth(41, /*depth=*/1, &flat_ns, &flat_db);
    EXPECT_GE(static_cast<double>(flat_ns), 1.3 *
              static_cast<double>(deep_ns))
        << "depth-8 " << deep_ns << " ns vs depth-1 " << flat_ns
        << " ns";
    EXPECT_LT(deep_db, flat_db)
        << "pipelined windows should batch doorbells";
}

} // namespace
} // namespace asymnvm
