/**
 * @file
 * Coroutine-pipelined session operations (DESIGN.md §11): correctness of
 * out-of-order completion, the depth-1 bit-identity guarantee, round-trip
 * overlap at depth > 1, commit coalescing at window drain, and crash
 * recovery with a pipeline in flight.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "backend/backend_node.h"
#include "cluster/cluster.h"
#include "common/rand.h"
#include "ds/bptree.h"
#include "ds/hash_table.h"
#include "ds/mv_bptree.h"
#include "ds/skiplist.h"
#include "frontend/session.h"

namespace asymnvm {
namespace {

BackendConfig
testConfig()
{
    BackendConfig cfg;
    cfg.nvm_size = 64ull << 20;
    cfg.max_frontends = 4;
    cfg.max_names = 8;
    cfg.memlog_ring_size = 1ull << 20;
    cfg.oplog_ring_size = 512ull << 10;
    return cfg;
}

/** One back-end + one RC session with a given pipeline depth. */
struct PipeRig
{
    std::unique_ptr<BackendNode> be;
    std::unique_ptr<FrontendSession> s;

    PipeRig(uint64_t id, uint32_t depth, uint64_t cache_bytes = 256 << 10)
    {
        be = std::make_unique<BackendNode>(1, testConfig());
        SessionConfig cfg = SessionConfig::rc(id, cache_bytes);
        cfg.pipeline_depth = depth;
        s = std::make_unique<FrontendSession>(cfg);
        EXPECT_EQ(s->connect(be.get()), Status::Ok);
    }
};

template <typename DS>
void
preload(DS &ds, uint64_t nkeys)
{
    Value v{};
    for (uint64_t k = 1; k <= nkeys; ++k) {
        v = Value::ofU64(k * 31);
        ASSERT_EQ(ds.insert(k, v), Status::Ok);
    }
    ASSERT_EQ(ds.session().flushAll(), Status::Ok);
    ds.session().cache().clear();
    ds.session().resetStats();
}

// ---------------------------------------------------------------------
// Correctness: pipelined lookups return the same results as serial ones,
// with out-of-order completion landing each status in its own slot.
// ---------------------------------------------------------------------

TEST(PipelineTest, BpTreeFindManyMatchesSerial)
{
    constexpr uint64_t kKeys = 2000;
    PipeRig rig(11, /*depth=*/8);
    BpTree ds;
    ASSERT_EQ(BpTree::create(*rig.s, 1, "t", &ds), Status::Ok);
    preload(ds, kKeys);

    // Shuffled present keys plus interleaved absent ones: ops traverse
    // different depths and complete out of issue order, but results[i]
    // must still describe keys[i].
    std::vector<Key> keys;
    Rng rng(7);
    for (uint64_t i = 0; i < 64; ++i)
        keys.push_back(1 + rng.nextBounded(kKeys));
    keys.push_back(kKeys + 100); // absent
    keys.insert(keys.begin() + 10, kKeys + 200); // absent, mid-window
    std::vector<Value> vals(keys.size());
    std::vector<Status> sts(keys.size());
    ASSERT_EQ(ds.findMany(keys, vals.data(), sts.data()), Status::Ok);
    for (size_t i = 0; i < keys.size(); ++i) {
        if (keys[i] > kKeys) {
            EXPECT_EQ(sts[i], Status::NotFound) << "slot " << i;
        } else {
            ASSERT_EQ(sts[i], Status::Ok) << "slot " << i;
            EXPECT_EQ(vals[i].asU64(), keys[i] * 31) << "slot " << i;
        }
    }
    const SessionStats st = rig.s->stats();
    EXPECT_EQ(st.pipeline.depth, 8u);
    EXPECT_EQ(st.pipeline.runs, 1u);
    EXPECT_EQ(st.pipeline.ops, keys.size());
    EXPECT_GT(st.pipeline.max_in_flight, 1u);
    // Overlap is the point: rounds serve several ops' reads at once.
    EXPECT_GT(st.pipeline.overlap(), 1.5);
    // The NIC observed multi-op gather arrivals.
    EXPECT_GT(rig.be->nic().multiOpBatches(), 0u);
}

TEST(PipelineTest, HashTableGetManyOutOfOrderSlots)
{
    PipeRig rig(12, /*depth=*/6);
    HashTable ds;
    ASSERT_EQ(HashTable::create(*rig.s, 1, "h", 64, &ds), Status::Ok);
    Value v{};
    for (uint64_t k = 1; k <= 300; ++k) {
        v = Value::ofU64(k ^ 0xabcd);
        ASSERT_EQ(ds.put(k, v), Status::Ok);
    }
    ASSERT_EQ(rig.s->flushAll(), Status::Ok);
    rig.s->cache().clear();
    rig.s->resetStats();

    // Warm one key so its op completes on round one while the rest are
    // still suspended — maximal completion-order skew.
    ASSERT_EQ(ds.get(7, &v), Status::Ok);

    std::vector<Key> keys = {3, 7, 999, 150, 7, 42, 1000, 280, 1};
    std::vector<Value> vals(keys.size());
    std::vector<Status> sts(keys.size());
    ASSERT_EQ(ds.getMany(keys, vals.data(), sts.data()), Status::Ok);
    for (size_t i = 0; i < keys.size(); ++i) {
        if (keys[i] > 300) {
            EXPECT_EQ(sts[i], Status::NotFound) << "slot " << i;
        } else {
            ASSERT_EQ(sts[i], Status::Ok) << "slot " << i;
            EXPECT_EQ(vals[i].asU64(), keys[i] ^ 0xabcd) << "slot " << i;
        }
    }
}

TEST(PipelineTest, SkipListAndMvBpTreeFindMany)
{
    PipeRig rig(13, /*depth=*/4);
    SkipList sl;
    ASSERT_EQ(SkipList::create(*rig.s, 1, "sl", &sl), Status::Ok);
    preload(sl, 400);
    std::vector<Key> keys = {5, 399, 77, 401, 200};
    std::vector<Value> vals(keys.size());
    std::vector<Status> sts(keys.size());
    ASSERT_EQ(sl.findMany(keys, vals.data(), sts.data()), Status::Ok);
    for (size_t i = 0; i < keys.size(); ++i) {
        if (keys[i] > 400) {
            EXPECT_EQ(sts[i], Status::NotFound);
        } else {
            ASSERT_EQ(sts[i], Status::Ok) << "slot " << i;
            EXPECT_EQ(vals[i].asU64(), keys[i] * 31);
        }
    }

    MvBpTree mv;
    ASSERT_EQ(MvBpTree::create(*rig.s, 1, "mv", &mv), Status::Ok);
    preload(mv, 400);
    ASSERT_EQ(mv.findMany(keys, vals.data(), sts.data()), Status::Ok);
    for (size_t i = 0; i < keys.size(); ++i) {
        if (keys[i] > 400) {
            EXPECT_EQ(sts[i], Status::NotFound);
        } else {
            ASSERT_EQ(sts[i], Status::Ok) << "slot " << i;
            EXPECT_EQ(vals[i].asU64(), keys[i] * 31);
        }
    }
}

// ---------------------------------------------------------------------
// Depth 1 is the ablation baseline: executePipelined must be
// bit-identical to the serial loop — same verbs, same bytes, same clock.
// ---------------------------------------------------------------------

TEST(PipelineTest, DepthOneIsBitIdenticalToSerialFinds)
{
    constexpr uint64_t kKeys = 1200;
    PipeRig piped(14, /*depth=*/1);
    PipeRig serial(15, /*depth=*/1);
    BpTree dp, ds;
    ASSERT_EQ(BpTree::create(*piped.s, 1, "t", &dp), Status::Ok);
    ASSERT_EQ(BpTree::create(*serial.s, 1, "t", &ds), Status::Ok);
    preload(dp, kKeys);
    preload(ds, kKeys);

    std::vector<Key> keys;
    Rng rng(21);
    for (uint64_t i = 0; i < 48; ++i)
        keys.push_back(1 + rng.nextBounded(kKeys));

    const uint64_t p0 = piped.s->clock().now();
    std::vector<Value> vals(keys.size());
    std::vector<Status> sts(keys.size());
    ASSERT_EQ(dp.findMany(keys, vals.data(), sts.data()), Status::Ok);
    const uint64_t piped_ns = piped.s->clock().now() - p0;

    const uint64_t s0 = serial.s->clock().now();
    for (size_t i = 0; i < keys.size(); ++i) {
        Value v;
        ASSERT_EQ(ds.find(keys[i], &v), Status::Ok);
        EXPECT_EQ(v.asU64(), vals[i].asU64());
    }
    const uint64_t serial_ns = serial.s->clock().now() - s0;

    EXPECT_EQ(piped_ns, serial_ns);
    const VerbCounters a = piped.s->verbs().counters();
    const VerbCounters b = serial.s->verbs().counters();
    EXPECT_EQ(a.reads, b.reads);
    EXPECT_EQ(a.writes, b.writes);
    EXPECT_EQ(a.posted, b.posted);
    EXPECT_EQ(a.read_gathers, b.read_gathers);
    EXPECT_EQ(a.doorbells, b.doorbells);
    EXPECT_EQ(a.atomics, b.atomics);
    EXPECT_EQ(a.read_bytes, b.read_bytes);
    EXPECT_EQ(piped.s->verbs().verbsIssued(), serial.s->verbs().verbsIssued());
    EXPECT_EQ(piped.s->verbs().bytesMoved(), serial.s->verbs().bytesMoved());
    // And no reactor involvement at all.
    EXPECT_EQ(piped.s->stats().pipeline.runs, 0u);
    EXPECT_EQ(piped.s->stats().pipeline.rounds, 0u);
}

// ---------------------------------------------------------------------
// The perf claim: depth 8 overlaps cold-cache traversals' round trips.
// ---------------------------------------------------------------------

TEST(PipelineTest, DepthEightOverlapsColdLookupRtts)
{
    constexpr uint64_t kKeys = 3000;
    PipeRig deep(16, /*depth=*/8, 64 << 10);
    PipeRig flat(17, /*depth=*/1, 64 << 10);
    BpTree dd, df;
    ASSERT_EQ(BpTree::create(*deep.s, 1, "t", &dd), Status::Ok);
    ASSERT_EQ(BpTree::create(*flat.s, 1, "t", &df), Status::Ok);
    preload(dd, kKeys);
    preload(df, kKeys);

    std::vector<Key> keys;
    Rng rng(33);
    for (uint64_t i = 0; i < 96; ++i)
        keys.push_back(1 + rng.nextBounded(kKeys));
    std::vector<Value> vals(keys.size());
    std::vector<Status> sts(keys.size());

    const uint64_t d0 = deep.s->clock().now();
    ASSERT_EQ(dd.findMany(keys, vals.data(), sts.data()), Status::Ok);
    const uint64_t deep_ns = deep.s->clock().now() - d0;
    const uint64_t f0 = flat.s->clock().now();
    ASSERT_EQ(df.findMany(keys, vals.data(), sts.data()), Status::Ok);
    const uint64_t flat_ns = flat.s->clock().now() - f0;
    for (const Status st : sts)
        ASSERT_EQ(st, Status::Ok);

    // Acceptance bar: >= 1.5x cold-cache lookup throughput at depth 8.
    EXPECT_GE(static_cast<double>(flat_ns),
              1.5 * static_cast<double>(deep_ns))
        << "depth-8 " << deep_ns << " ns vs depth-1 " << flat_ns << " ns";
}

// ---------------------------------------------------------------------
// Commit coalescing: write ops inside a pipeline window defer their
// group-commit fence to window drain, and the drain makes them durable.
// ---------------------------------------------------------------------

TEST(PipelineTest, PipelinedWritesCoalesceCommitToDrain)
{
    PipeRig rig(18, /*depth=*/4);
    BpTree ds;
    ASSERT_EQ(BpTree::create(*rig.s, 1, "t", &ds), Status::Ok);
    Value v{};
    for (uint64_t k = 1; k <= 200; ++k)
        ASSERT_EQ(ds.insert(k, Value::ofU64(k)), Status::Ok);
    ASSERT_EQ(rig.s->flushAll(), Status::Ok);
    rig.s->resetStats();

    // Insert wrappers: the writes themselves run synchronously inside
    // their coroutines; what the pipeline adds is the commit path — each
    // opEnd defers its fence, one flushAll covers the window.
    std::vector<OpTask> ops;
    auto wrap = [&](Key k) -> OpTask {
        co_return ds.insert(k, Value::ofU64(k * 7));
    };
    for (uint64_t k = 500; k < 516; ++k)
        ops.push_back(wrap(k));
    std::vector<Status> sts(ops.size());
    rig.s->executePipelined(ops, sts);
    for (const Status st : sts)
        ASSERT_EQ(st, Status::Ok);
    const SessionStats st = rig.s->stats();
    EXPECT_EQ(st.pipeline.deferred_commits, 1u);
    EXPECT_EQ(rig.s->opsInBatch(), 0u); // drained: nothing left open

    // Durable at drain: a front-end reboot plus recovery loses nothing.
    rig.s->simulateCrash();
    ASSERT_EQ(rig.s->recover(), Status::Ok);
    BpTree audit;
    ASSERT_EQ(BpTree::open(*rig.s, 1, "t", &audit), Status::Ok);
    for (uint64_t k = 500; k < 516; ++k) {
        ASSERT_EQ(audit.find(k, &v), Status::Ok) << "key " << k;
        EXPECT_EQ(v.asU64(), k * 7);
    }
}

// ---------------------------------------------------------------------
// Crash with a pipeline in flight: whatever survives is value-correct,
// and every op from windows acknowledged at drain is present.
// ---------------------------------------------------------------------

TEST(PipelineTest, CrashMidPipelineRecoversCommittedWindows)
{
    ClusterConfig ccfg;
    ccfg.num_backends = 1;
    ccfg.mirrors_per_backend = 1;
    ccfg.backend = testConfig();
    Cluster cluster(ccfg);
    SessionConfig scfg = SessionConfig::rc(19, 256 << 10);
    scfg.pipeline_depth = 4;
    auto s = cluster.makeSession(scfg);
    ASSERT_NE(s, nullptr);
    BpTree ds;
    ASSERT_EQ(BpTree::create(*s, 1, "t", &ds), Status::Ok);
    Value v{};
    for (uint64_t k = 1; k <= 100; ++k)
        ASSERT_EQ(ds.insert(k, Value::ofU64(k)), Status::Ok);
    ASSERT_EQ(s->flushAll(), Status::Ok);

    // Pipelined insert windows until the armed crash fires mid-window.
    cluster.backend(1)->failure().armCrashAfterVerbs(400, /*seed=*/5);
    std::map<Key, uint64_t> committed; // windows whose drain returned Ok
    bool crashed = false;
    for (uint64_t w = 0; w < 64 && !crashed; ++w) {
        std::vector<OpTask> ops;
        std::vector<Key> keys;
        auto wrap = [&](Key k) -> OpTask {
            co_return ds.insert(k, Value::ofU64(k * 3));
        };
        for (uint64_t i = 0; i < 8; ++i) {
            const Key k = 1000 + w * 8 + i;
            keys.push_back(k);
            ops.push_back(wrap(k));
        }
        std::vector<Status> sts(ops.size());
        s->executePipelined(ops, sts);
        bool window_ok = true;
        for (const Status st : sts)
            window_ok = window_ok && ok(st);
        // The drain's flushAll is the durability point of the window; a
        // failed flush surfaces in the NEXT op's status, so confirm with
        // an explicit fence before counting the window as committed.
        if (window_ok && ok(s->flushAll())) {
            for (const Key k : keys)
                committed[k] = k * 3;
        } else {
            crashed = true;
        }
    }
    ASSERT_TRUE(crashed) << "crash never fired; raise the verb budget";

    cluster.backend(1)->nvm().crash();
    ASSERT_EQ(cluster.restartBackend(1), Status::Ok);
    s->simulateCrash();
    ASSERT_EQ(s->failover(1, cluster.backend(1)), Status::Ok);
    BpTree reopened;
    ASSERT_EQ(BpTree::open(*s, 1, "t", &reopened), Status::Ok);
    ASSERT_EQ(s->recover(), Status::Ok);

    BpTree audit;
    ASSERT_EQ(BpTree::open(*s, 1, "t", &audit), Status::Ok);
    // Every acknowledged window survives in full.
    for (const auto &[k, val] : committed) {
        ASSERT_EQ(audit.find(k, &v), Status::Ok)
            << "committed key " << k << " lost";
        EXPECT_EQ(v.asU64(), val) << "committed key " << k << " torn";
    }
    // Unacknowledged keys may or may not survive (their op logs may have
    // persisted), but anything present must be whole and value-correct.
    for (uint64_t k = 1000; k < 1000 + 64 * 8; ++k) {
        if (committed.count(k) != 0)
            continue;
        const Status got = audit.find(k, &v);
        if (got == Status::Ok)
            EXPECT_EQ(v.asU64(), k * 3) << "in-flight key " << k << " torn";
        else
            EXPECT_EQ(got, Status::NotFound);
    }
    // The structure stays usable.
    ASSERT_EQ(audit.insert(9999, Value::ofU64(42)), Status::Ok);
    ASSERT_EQ(s->flushAll(), Status::Ok);
    ASSERT_EQ(audit.find(9999, &v), Status::Ok);
    EXPECT_EQ(v.asU64(), 42u);
}

// ---------------------------------------------------------------------
// Reactor edge cases.
// ---------------------------------------------------------------------

TEST(PipelineTest, EmptyAndSingleOpWindows)
{
    PipeRig rig(20, /*depth=*/8);
    BpTree ds;
    ASSERT_EQ(BpTree::create(*rig.s, 1, "t", &ds), Status::Ok);
    preload(ds, 100);

    std::vector<Key> none;
    ASSERT_EQ(ds.findMany(none, nullptr, nullptr), Status::Ok);

    Key one = 50;
    Value v{};
    Status st = Status::Ok;
    ASSERT_EQ(ds.findMany(std::span<const Key>(&one, 1), &v, &st),
              Status::Ok);
    EXPECT_EQ(st, Status::Ok);
    EXPECT_EQ(v.asU64(), 50u * 31);
    // A single op never enters the reactor — serial fall-through.
    EXPECT_EQ(rig.s->stats().pipeline.runs, 0u);
}

TEST(PipelineTest, SharedHandleFallsBackToSerialProtocol)
{
    auto be = std::make_unique<BackendNode>(1, testConfig());
    FrontendSession writer(SessionConfig::rc(21, 256 << 10));
    SessionConfig rcfg = SessionConfig::rc(22, 256 << 10);
    rcfg.pipeline_depth = 8;
    FrontendSession reader(rcfg);
    ASSERT_EQ(writer.connect(be.get()), Status::Ok);
    ASSERT_EQ(reader.connect(be.get()), Status::Ok);
    DsOptions opt;
    opt.shared = true;
    BpTree wds;
    ASSERT_EQ(BpTree::create(writer, 1, "t", &wds, opt), Status::Ok);
    Value v{};
    for (uint64_t k = 1; k <= 200; ++k)
        ASSERT_EQ(wds.insert(k, Value::ofU64(k)), Status::Ok);
    ASSERT_EQ(writer.flushAll(), Status::Ok);

    BpTree rds;
    ASSERT_EQ(BpTree::open(reader, 1, "t", &rds, opt), Status::Ok);
    reader.resetStats();
    std::vector<Key> keys = {3, 50, 199, 250};
    std::vector<Value> vals(keys.size());
    std::vector<Status> sts(keys.size());
    ASSERT_EQ(rds.findMany(keys, vals.data(), sts.data()), Status::Ok);
    EXPECT_EQ(sts[0], Status::Ok);
    EXPECT_EQ(vals[0].asU64(), 3u);
    EXPECT_EQ(sts[3], Status::NotFound);
    // Seqlock-protected reads never pipeline: the session-global read
    // tracking would be trampled by interleaved coroutines.
    EXPECT_EQ(reader.stats().pipeline.runs, 0u);
    EXPECT_EQ(reader.stats().pipeline.ops, 0u);
}

} // namespace
} // namespace asymnvm
