/**
 * @file
 * PrefetchEngine stream-table tests: learned-run commit/collect
 * semantics and the overflow policy. The table caps at 4096 streams;
 * overflow must evict only the lowest-scoring stream under
 * hit-rate-weighted LRU — recency plus a credit per served prediction —
 * never wipe the table: a stream whose predictions actually fired has
 * to survive bursts of newer cold streams (scan anchors, dying
 * buckets), but only until the table churns past its credit.
 */

#include <gtest/gtest.h>

#include "frontend/prefetch.h"

namespace asymnvm {
namespace {

constexpr size_t kCap = 4096; // PrefetchEngine::kMaxStreams

/** Walk the hot stream's 4-address chain once and wrap to its head,
 *  committing the run as the stream's prediction. */
void
walkHotChain(PrefetchEngine &eng, DsId ds, uint64_t stream)
{
    for (uint64_t a = 1; a <= 4; ++a)
        eng.onAccess(ds, stream, 0x1000 * a, 64);
    eng.onAccess(ds, stream, 0x1000, 64); // back to the head: commit
}

TEST(PrefetchEngineTest, HotStreamSurvivesOverflowBurst)
{
    PrefetchEngine eng;
    const uint64_t kHot = 0xbeef;
    walkHotChain(eng, 1, kHot);
    std::vector<PrefetchCandidate> out;
    eng.collect(1, kHot, 0x1000, &out);
    ASSERT_EQ(out.size(), 3u) << "run must be committed before the burst";

    // Fill the table to its cap with cold one-shot streams.
    for (uint64_t i = 0; eng.streamCount() < kCap; ++i)
        eng.onAccess(2, 0x10000 + i, 0x200000 + i * 64, 64);
    EXPECT_EQ(eng.streamCount(), kCap);

    // Touch the hot stream so it is recent, then keep overflowing.
    walkHotChain(eng, 1, kHot);
    for (uint64_t i = 0; i < 500; ++i)
        eng.onAccess(2, 0x900000 + i, 0x400000 + i * 64, 64);

    EXPECT_EQ(eng.streamCount(), kCap)
        << "overflow must evict one stream per arrival, not clear()";
    out.clear();
    eng.collect(1, kHot, 0x1000, &out);
    EXPECT_EQ(out.size(), 3u)
        << "hot stream's prediction was lost to a cold-stream burst";
}

TEST(PrefetchEngineTest, OverflowEvictsTheColdestStreamFirst)
{
    PrefetchEngine eng;
    // Two committed streams, touched in a known order...
    walkHotChain(eng, 1, /*stream=*/100); // older
    walkHotChain(eng, 1, /*stream=*/200); // newer
    for (uint64_t i = 0; eng.streamCount() < kCap; ++i)
        eng.onAccess(3, 0x50000 + i, 0x300000 + i * 64, 64);
    // ...then exactly one arrival past the cap: stream 100 is the LRU
    // victim among the committed pair only if every cold filler is
    // newer, so re-touch 200 and overflow once.
    walkHotChain(eng, 1, 200);
    eng.onAccess(4, 0x77777, 0x500000, 64);
    EXPECT_EQ(eng.streamCount(), kCap);

    std::vector<PrefetchCandidate> out;
    eng.collect(1, 200, 0x1000, &out);
    EXPECT_FALSE(out.empty()) << "recently touched stream evicted";
}

TEST(PrefetchEngineTest, ServedPredictionOutlivesColdNewerStreams)
{
    PrefetchEngine eng;
    const uint64_t kHit = 0xaaaa;
    walkHotChain(eng, 1, kHit);
    std::vector<PrefetchCandidate> out;
    eng.collect(1, kHit, 0x1000, &out); // prediction served: one hit
    ASSERT_EQ(out.size(), 3u);

    // Fill to the cap with cold streams, every one of them touched more
    // recently than the hit stream.
    for (uint64_t i = 0; eng.streamCount() < kCap; ++i)
        eng.onAccess(2, 0x10000 + i, 0x200000 + i * 64, 64);

    // Overflow once. Plain LRU-of-streams would evict the hit stream —
    // it has the oldest touch in the table; the hit credit must make a
    // cold filler the victim instead.
    eng.onAccess(3, 0x4242, 0x600000, 64);
    EXPECT_EQ(eng.streamCount(), kCap);
    out.clear();
    eng.collect(1, kHit, 0x1000, &out);
    EXPECT_EQ(out.size(), 3u)
        << "stream with a served prediction lost to cold newer streams";

    // The credit is one table turnover per served hit (two by now), not
    // immortality: once the table churns past it, the stale hit stream
    // goes too.
    for (uint64_t i = 0; i < 3 * kCap + 256; ++i)
        eng.onAccess(4, 0x800000 + i, 0x900000 + i * 64, 64);
    out.clear();
    eng.collect(1, kHit, 0x1000, &out);
    EXPECT_TRUE(out.empty())
        << "stale hit stream must age out after a full table turnover";
}

} // namespace
} // namespace asymnvm
