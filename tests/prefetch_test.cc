/**
 * @file
 * PrefetchEngine stream-table tests: learned-run commit/collect
 * semantics and the overflow policy. The table caps at 4096 streams;
 * overflow must evict only the least-recently-hit stream, never wipe
 * the table — a hot stream's committed prediction has to survive a
 * burst of one-shot cold streams (scan anchors, dying buckets).
 */

#include <gtest/gtest.h>

#include "frontend/prefetch.h"

namespace asymnvm {
namespace {

constexpr size_t kCap = 4096; // PrefetchEngine::kMaxStreams

/** Walk the hot stream's 4-address chain once and wrap to its head,
 *  committing the run as the stream's prediction. */
void
walkHotChain(PrefetchEngine &eng, DsId ds, uint64_t stream)
{
    for (uint64_t a = 1; a <= 4; ++a)
        eng.onAccess(ds, stream, 0x1000 * a, 64);
    eng.onAccess(ds, stream, 0x1000, 64); // back to the head: commit
}

TEST(PrefetchEngineTest, HotStreamSurvivesOverflowBurst)
{
    PrefetchEngine eng;
    const uint64_t kHot = 0xbeef;
    walkHotChain(eng, 1, kHot);
    std::vector<PrefetchCandidate> out;
    eng.collect(1, kHot, 0x1000, &out);
    ASSERT_EQ(out.size(), 3u) << "run must be committed before the burst";

    // Fill the table to its cap with cold one-shot streams.
    for (uint64_t i = 0; eng.streamCount() < kCap; ++i)
        eng.onAccess(2, 0x10000 + i, 0x200000 + i * 64, 64);
    EXPECT_EQ(eng.streamCount(), kCap);

    // Touch the hot stream so it is recent, then keep overflowing.
    walkHotChain(eng, 1, kHot);
    for (uint64_t i = 0; i < 500; ++i)
        eng.onAccess(2, 0x900000 + i, 0x400000 + i * 64, 64);

    EXPECT_EQ(eng.streamCount(), kCap)
        << "overflow must evict one stream per arrival, not clear()";
    out.clear();
    eng.collect(1, kHot, 0x1000, &out);
    EXPECT_EQ(out.size(), 3u)
        << "hot stream's prediction was lost to a cold-stream burst";
}

TEST(PrefetchEngineTest, OverflowEvictsTheColdestStreamFirst)
{
    PrefetchEngine eng;
    // Two committed streams, touched in a known order...
    walkHotChain(eng, 1, /*stream=*/100); // older
    walkHotChain(eng, 1, /*stream=*/200); // newer
    for (uint64_t i = 0; eng.streamCount() < kCap; ++i)
        eng.onAccess(3, 0x50000 + i, 0x300000 + i * 64, 64);
    // ...then exactly one arrival past the cap: stream 100 is the LRU
    // victim among the committed pair only if every cold filler is
    // newer, so re-touch 200 and overflow once.
    walkHotChain(eng, 1, 200);
    eng.onAccess(4, 0x77777, 0x500000, 64);
    EXPECT_EQ(eng.streamCount(), kCap);

    std::vector<PrefetchCandidate> out;
    eng.collect(1, 200, 0x1000, &out);
    EXPECT_FALSE(out.empty()) << "recently touched stream evicted";
}

} // namespace
} // namespace asymnvm
