/**
 * @file
 * Unit tests for the NVM device emulation: read/write, atomics, and the
 * durability journal semantics (persist / crash / partial crash) the
 * crash-consistency machinery relies on.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "nvm/nvm_device.h"

namespace asymnvm {
namespace {

TEST(NvmDeviceTest, ReadBackWrite)
{
    NvmDevice dev(1 << 16);
    const char msg[] = "persistent bytes";
    dev.write(128, msg, sizeof(msg));
    char buf[sizeof(msg)] = {};
    dev.read(128, buf, sizeof(msg));
    EXPECT_STREQ(buf, msg);
}

TEST(NvmDeviceTest, FreshDeviceIsZeroed)
{
    NvmDevice dev(4096);
    uint64_t word = 1;
    dev.read(1024, &word, sizeof(word));
    EXPECT_EQ(word, 0u);
}

TEST(NvmDeviceTest, CrashRollsBackUnpersistedWrites)
{
    NvmDevice dev(1 << 16);
    const uint64_t a = 0x1111, b = 0x2222;
    dev.write(0x100, &a, 8);
    dev.persist();
    dev.write(0x100, &b, 8);
    EXPECT_EQ(dev.read64(0x100), b); // visible before the crash
    dev.crash();
    EXPECT_EQ(dev.read64(0x100), a); // rolled back to the durable image
}

TEST(NvmDeviceTest, PersistMakesWritesDurable)
{
    NvmDevice dev(1 << 16);
    const uint64_t v = 42;
    dev.write(0x80, &v, 8);
    dev.persist();
    dev.crash();
    EXPECT_EQ(dev.read64(0x80), 42u);
}

TEST(NvmDeviceTest, PartialCrashKeepsWritePrefix)
{
    NvmDevice dev(1 << 16);
    for (uint64_t i = 0; i < 8; ++i) {
        const uint64_t v = 100 + i;
        dev.write(0x200 + i * 8, &v, 8);
    }
    dev.crashPartial(3); // only the first three writes reached the media
    for (uint64_t i = 0; i < 8; ++i) {
        const uint64_t expect = i < 3 ? 100 + i : 0;
        EXPECT_EQ(dev.read64(0x200 + i * 8), expect) << "slot " << i;
    }
}

TEST(NvmDeviceTest, OverlappingWritesRollBackInOrder)
{
    NvmDevice dev(1 << 16);
    const uint64_t base = 7;
    dev.write(0x300, &base, 8);
    dev.persist();
    const uint64_t x = 8, y = 9;
    dev.write(0x300, &x, 8);
    dev.write(0x300, &y, 8);
    dev.crash();
    EXPECT_EQ(dev.read64(0x300), 7u);
}

TEST(NvmDeviceTest, AtomicsAreImmediatelyDurable)
{
    NvmDevice dev(1 << 16);
    dev.write64Atomic(0x400, 77);
    dev.crash(); // no staged writes to roll back
    EXPECT_EQ(dev.read64(0x400), 77u);
}

TEST(NvmDeviceTest, CompareAndSwapSemantics)
{
    NvmDevice dev(1 << 16);
    dev.write64Atomic(0x500, 5);
    EXPECT_EQ(dev.compareAndSwap64(0x500, 5, 6), 5u); // success
    EXPECT_EQ(dev.read64(0x500), 6u);
    EXPECT_EQ(dev.compareAndSwap64(0x500, 5, 7), 6u); // failure
    EXPECT_EQ(dev.read64(0x500), 6u);
}

TEST(NvmDeviceTest, FetchAddReturnsPrevious)
{
    NvmDevice dev(1 << 16);
    dev.write64Atomic(0x600, 10);
    EXPECT_EQ(dev.fetchAdd64(0x600, 5), 10u);
    EXPECT_EQ(dev.read64(0x600), 15u);
}

TEST(NvmDeviceTest, PendingWriteCountTracksJournal)
{
    NvmDevice dev(1 << 16);
    EXPECT_EQ(dev.pendingWrites(), 0u);
    const uint64_t v = 1;
    dev.write(0, &v, 8);
    dev.write(8, &v, 8);
    EXPECT_EQ(dev.pendingWrites(), 2u);
    dev.persist();
    EXPECT_EQ(dev.pendingWrites(), 0u);
}

TEST(NvmDeviceTest, BytesWrittenAccumulates)
{
    NvmDevice dev(1 << 16);
    const uint64_t v = 1;
    dev.write(0, &v, 8);
    dev.write64Atomic(8, 2);
    EXPECT_EQ(dev.bytesWritten(), 16u);
}

TEST(NvmDeviceTest, TooSmallDeviceRejected)
{
    EXPECT_THROW(NvmDevice dev(16), std::invalid_argument);
}

TEST(NvmDeviceTest, ConcurrentReadersAndWriterAreSafe)
{
    NvmDevice dev(1 << 16);
    std::atomic<bool> stop{false};
    std::thread writer([&] {
        for (uint64_t i = 0; !stop.load(); ++i) {
            dev.write64Atomic(0x700, i);
        }
    });
    uint64_t last = 0;
    for (int i = 0; i < 10000; ++i) {
        const uint64_t v = dev.read64(0x700);
        EXPECT_GE(v, last); // monotonic writer, atomic reads
        last = v;
    }
    stop.store(true);
    writer.join();
}

} // namespace
} // namespace asymnvm
