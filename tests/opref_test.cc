/**
 * @file
 * Tests for the op-ref memory-log optimization (Figure 3's "Flag" byte):
 * a memory log whose value duplicates the operation log's payload
 * carries a 16-byte reference instead of the bytes, and the back-end
 * replayer fetches the value from the op-log ring.
 */

#include <gtest/gtest.h>

#include "backend/backend_node.h"
#include "ds/bptree.h"
#include "frontend/session.h"

namespace asymnvm {
namespace {

BackendConfig
testConfig()
{
    BackendConfig cfg;
    cfg.nvm_size = 32ull << 20;
    cfg.max_frontends = 4;
    cfg.max_names = 16;
    cfg.memlog_ring_size = 1ull << 20;
    cfg.oplog_ring_size = 1ull << 20;
    return cfg;
}

TEST(OpRefTest, ReplayFetchesValueFromOpLogRing)
{
    BackendNode be(1, testConfig());
    FrontendSession s(SessionConfig::rcb(1, 1 << 20, 8));
    ASSERT_EQ(s.connect(&be), Status::Ok);
    RemotePtr cell;
    ASSERT_EQ(s.alloc(1, Value::kSize, &cell), Status::Ok);

    const Value v = Value::ofString("op-ref payload");
    ASSERT_EQ(s.opBegin(0, 1, OpType::Insert, 7, v.bytes.data(),
                        Value::kSize),
              Status::Ok);
    ASSERT_EQ(s.logWriteFromOp(0, cell, v.bytes.data(), Value::kSize),
              Status::Ok);
    ASSERT_EQ(s.opEnd(), Status::Ok);
    ASSERT_EQ(s.flushAll(), Status::Ok);

    Value got;
    be.nvm().read(cell.offset, got.bytes.data(), Value::kSize);
    EXPECT_EQ(got.asString(), "op-ref payload")
        << "replay must dereference the op-log ring";
}

TEST(OpRefTest, PartialSliceUsesValOff)
{
    BackendNode be(1, testConfig());
    FrontendSession s(SessionConfig::rcb(1, 1 << 20, 8));
    ASSERT_EQ(s.connect(&be), Status::Ok);
    RemotePtr cell;
    ASSERT_EQ(s.alloc(1, 32, &cell), Status::Ok);

    uint8_t payload[64];
    for (int i = 0; i < 64; ++i)
        payload[i] = static_cast<uint8_t>(i);
    ASSERT_EQ(s.opBegin(0, 1, OpType::Insert, 8, payload, sizeof(payload)),
              Status::Ok);
    // Write bytes 16..47 of the op payload to the cell.
    ASSERT_EQ(s.logWriteFromOp(0, cell, payload + 16, 32, /*val_off=*/16),
              Status::Ok);
    ASSERT_EQ(s.opEnd(), Status::Ok);
    ASSERT_EQ(s.flushAll(), Status::Ok);

    uint8_t got[32];
    be.nvm().read(cell.offset, got, sizeof(got));
    for (int i = 0; i < 32; ++i)
        ASSERT_EQ(got[i], 16 + i) << "byte " << i;
}

TEST(OpRefTest, ShrinksWireBytes)
{
    auto run = [&](bool opref) {
        BackendNode be(1, testConfig());
        SessionConfig cfg = SessionConfig::rcb(1, 1 << 20, 64);
        cfg.use_opref = opref;
        FrontendSession s(cfg);
        EXPECT_EQ(s.connect(&be), Status::Ok);
        BpTree tree;
        EXPECT_EQ(BpTree::create(s, 1, "t", &tree), Status::Ok);
        for (uint64_t k = 1; k <= 500; ++k)
            EXPECT_EQ(tree.insert(k * 5, Value::ofU64(k)), Status::Ok);
        EXPECT_EQ(s.flushAll(), Status::Ok);
        // Verify correctness too.
        Value v;
        EXPECT_EQ(tree.find(2500, &v), Status::Ok);
        EXPECT_EQ(v.asU64(), 500u);
        return s.verbs().bytesMoved();
    };
    const uint64_t with_ref = run(true);
    const uint64_t without = run(false);
    EXPECT_LT(with_ref, without)
        << "op-refs must shrink the transaction wire size";
}

TEST(OpRefTest, FallsBackToInlineWhenOpLogDisabled)
{
    BackendNode be(1, testConfig());
    SessionConfig cfg = SessionConfig::rcb(1, 1 << 20, 8);
    cfg.use_oplog = false; // no op logs to reference
    FrontendSession s(cfg);
    ASSERT_EQ(s.connect(&be), Status::Ok);
    RemotePtr cell;
    ASSERT_EQ(s.alloc(1, Value::kSize, &cell), Status::Ok);
    const Value v = Value::ofU64(99);
    ASSERT_EQ(s.opBegin(0, 1, OpType::Insert, 1, v.bytes.data(),
                        Value::kSize),
              Status::Ok);
    ASSERT_EQ(s.logWriteFromOp(0, cell, v.bytes.data(), Value::kSize),
              Status::Ok);
    ASSERT_EQ(s.opEnd(), Status::Ok);
    ASSERT_EQ(s.flushAll(), Status::Ok);
    EXPECT_EQ(be.nvm().read64(cell.offset), 99u);
}

/**
 * The flushGroup op-ref guard (`c.oplog_head - e.oplog_pos < oplog_ring`)
 * must fall back to inline values exactly when the referenced record has
 * aged out of the ring. A 216-byte ring holds precisely two 108-byte
 * push-style records, so after three appends (head = 324):
 *  - op 1 at pos 0:   324 - 0   = 324 >= 216 — lapped, bytes overwritten
 *  - op 2 at pos 108: 324 - 108 = 216, the exact boundary; the strict
 *    `<` keeps the guard conservative and falls back to inline
 *  - op 3 at pos 216: 324 - 216 = 108 < 216 — a valid op-ref
 * Every cell must replay its correct value regardless of which side of
 * the boundary its record landed on.
 */
TEST(OpRefTest, RingAgeOutAtExactWrapBoundaryFallsBackToInline)
{
    // One classic op record: OpLogHeader(40) + 64 B value + CRC(4).
    constexpr uint64_t kRecLen = 108;
    BackendConfig bcfg = testConfig();
    bcfg.oplog_ring_size = 2 * kRecLen;

    BackendNode be(1, bcfg);
    FrontendSession s(SessionConfig::rcb(1, 1 << 20, 8));
    ASSERT_EQ(s.connect(&be), Status::Ok);

    RemotePtr cells[3];
    Value vals[3];
    for (int i = 0; i < 3; ++i) {
        ASSERT_EQ(s.alloc(1, Value::kSize, &cells[i]), Status::Ok);
        vals[i] = Value::ofU64(0xa0a0 + i);
        ASSERT_EQ(s.opBegin(0, 1, OpType::Insert, 100 + i,
                            vals[i].bytes.data(), Value::kSize),
                  Status::Ok);
        ASSERT_EQ(s.logWriteFromOp(0, cells[i], vals[i].bytes.data(),
                                   Value::kSize),
                  Status::Ok);
        ASSERT_EQ(s.opEnd(), Status::Ok);
    }
    ASSERT_EQ(s.flushAll(), Status::Ok);

    for (int i = 0; i < 3; ++i) {
        Value got;
        be.nvm().read(cells[i].offset, got.bytes.data(), Value::kSize);
        EXPECT_EQ(got.asU64(), 0xa0a0u + i)
            << "cell " << i << " lost its value across the age-out";
    }
}

TEST(OpRefTest, CoalescingKnobChangesReplayCount)
{
    auto run = [&](bool coalesce) {
        BackendNode be(1, testConfig());
        SessionConfig cfg = SessionConfig::rcb(1, 1 << 20, 64);
        cfg.coalesce_memlogs = coalesce;
        FrontendSession s(cfg);
        EXPECT_EQ(s.connect(&be), Status::Ok);
        RemotePtr p;
        EXPECT_EQ(s.alloc(1, 64, &p), Status::Ok);
        for (uint64_t i = 0; i < 32; ++i) {
            EXPECT_EQ(s.opBegin(0, 1, OpType::Update, i, nullptr, 0),
                      Status::Ok);
            EXPECT_EQ(s.logWrite(0, p, &i, 8), Status::Ok);
            EXPECT_EQ(s.opEnd(), Status::Ok);
        }
        EXPECT_EQ(s.flushAll(), Status::Ok);
        EXPECT_EQ(be.nvm().read64(p.offset), 31u); // last write wins
        return be.replayedEntries();
    };
    EXPECT_EQ(run(true), 1u) << "32 writes to one address coalesce";
    EXPECT_EQ(run(false), 32u) << "without coalescing each replays";
}

} // namespace
} // namespace asymnvm
