/**
 * @file
 * Multi-session chaos soak: k front-end sessions interleave on one
 * transparent-failover cluster while the chaos schedule kills the
 * back-end mid-run. Every seed must finish with zero durability/SWMR
 * violations, zero availability violations, and a clean promotion
 * ledger — epochs contiguous, exactly one promotion record per epoch,
 * every record won by a known session (or orchestrated by the harness).
 *
 * Seed count per session-count defaults to 200 and is overridable via
 * ASYMNVM_CHAOS_SEEDS (the `chaos_multisession_smoke` ctest target runs
 * a short configuration).
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "check/chaos.h"

namespace asymnvm {
namespace {

uint32_t
seedCount()
{
    const char *env = std::getenv("ASYMNVM_CHAOS_SEEDS");
    if (env != nullptr) {
        const long v = std::atol(env);
        if (v > 0)
            return static_cast<uint32_t>(v);
    }
    return 200;
}

TEST(ChaosMultiSessionTest, AllSeedsHoldInvariantsAcrossSessionCounts)
{
    const uint32_t seeds = seedCount();
    for (const uint32_t k : {2u, 4u, 8u}) {
        uint64_t promotions = 0;
        uint64_t won = 0;
        uint64_t lost = 0;
        uint64_t fenced = 0;
        uint64_t failovers = 0;
        uint64_t audits = 0;
        for (uint32_t seed = 1; seed <= seeds; ++seed) {
            ChaosConfig cfg;
            cfg.seed = seed;
            cfg.sessions = k;
            cfg.num_ops = 60 * k; // same per-session depth at every k
            // Condemn more often than the single-session soak: the
            // promotion race is the property under test here.
            cfg.p_permanent = 0.02;
            const ChaosResult r = runChaosSoak(cfg);
            ASSERT_TRUE(r.ok)
                << "k=" << k << " seed " << seed << ": " << r.error;
            ASSERT_EQ(r.ops_done, cfg.num_ops)
                << "k=" << k << " seed " << seed
                << " stopped early: " << r.error;
            // Exactly-once promotion: the epoch ledger (audited for
            // contiguity inside the run) can never fall behind the
            // sessions' combined claim wins.
            ASSERT_EQ(r.promotions_won, r.promotions)
                << "k=" << k << " seed " << seed
                << ": claim wins != promotions";
            promotions += r.promotions;
            won += r.promotions_won;
            lost += r.promotions_lost;
            fenced += r.stale_fenced;
            failovers += r.failovers;
            audits += r.audits;
        }
        // The soak must actually exercise the race it exists to check.
        EXPECT_GT(promotions, 0u) << "k=" << k;
        EXPECT_EQ(won, promotions) << "k=" << k;
        EXPECT_GT(lost, 0u)
            << "k=" << k << ": no session ever lost a claim race";
        EXPECT_GT(fenced, 0u)
            << "k=" << k << ": no zombie session was ever fenced";
        EXPECT_GT(failovers, 0u) << "k=" << k;
        EXPECT_GT(audits, static_cast<uint64_t>(seeds)) << "k=" << k;
        std::printf(
            "multi-session chaos k=%u: %u seeds, %llu promotions "
            "(%llu won / %llu lost claims), %llu stale fences, %llu "
            "failovers, %llu audits\n",
            k, seeds, static_cast<unsigned long long>(promotions),
            static_cast<unsigned long long>(won),
            static_cast<unsigned long long>(lost),
            static_cast<unsigned long long>(fenced),
            static_cast<unsigned long long>(failovers),
            static_cast<unsigned long long>(audits));
    }
}

TEST(ChaosMultiSessionTest, RunsAreDeterministicPerSeed)
{
    ChaosConfig cfg;
    cfg.seed = 23;
    cfg.sessions = 4;
    cfg.num_ops = 240;
    cfg.p_permanent = 0.02;
    const ChaosResult a = runChaosSoak(cfg);
    const ChaosResult b = runChaosSoak(cfg);
    ASSERT_TRUE(a.ok) << a.error;
    EXPECT_EQ(a.ops_done, b.ops_done);
    EXPECT_EQ(a.failovers, b.failovers);
    EXPECT_EQ(a.promotions, b.promotions);
    EXPECT_EQ(a.promotions_won, b.promotions_won);
    EXPECT_EQ(a.promotions_lost, b.promotions_lost);
    EXPECT_EQ(a.stale_fenced, b.stale_fenced);
    EXPECT_EQ(a.verb_retries, b.verb_retries);
}

} // namespace
} // namespace asymnvm
