/**
 * @file
 * Group-commit replication batching (Section 7.1): the back-end ships one
 * coalesced byte-range batch — with ONE mirror persist — per committed
 * transaction instead of persisting every mutation individually; the
 * batch travels strictly before the commit ack; a mirror crash mid-batch
 * rolls the partial batch back to the last transaction boundary, keeping
 * the replica promotable; and transient-faulted transfers retry under the
 * replication RetryPolicy instead of wedging the commit (retry exhaustion
 * detaches the mirror, Case 5).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "backend/backend_node.h"
#include "cluster/mirror.h"
#include "ds/hash_table.h"
#include "frontend/session.h"

namespace asymnvm {
namespace {

BackendConfig
testConfig()
{
    BackendConfig cfg;
    cfg.nvm_size = 16ull << 20;
    cfg.max_frontends = 4;
    cfg.max_names = 16;
    cfg.memlog_ring_size = 256ull << 10;
    cfg.oplog_ring_size = 256ull << 10;
    cfg.block_size = 1024;
    return cfg;
}

/** Full byte-level comparison of the back-end device and a replica. */
bool
devicesIdentical(const NvmDevice &a, const NvmDevice &b)
{
    if (a.size() != b.size())
        return false;
    std::vector<uint8_t> ba(a.size()), bb(b.size());
    a.read(0, ba.data(), ba.size());
    b.read(0, bb.data(), bb.size());
    return std::memcmp(ba.data(), bb.data(), ba.size()) == 0;
}

// ---------------------------------------------------------------------
// Mirror-side batch mechanics
// ---------------------------------------------------------------------

TEST(MirrorBatchTest, StagedBatchRollsBackOnCrash)
{
    MirrorNode m(100, 1 << 20);
    const uint64_t a = 0x1111, b = 0x2222;
    m.stageWrite(0, &a, 8);
    m.stageWrite(64, &b, 8);
    m.persistBatch();
    EXPECT_EQ(m.persistCount(), 1u);

    // A second batch stages but the mirror loses power before the fence:
    // the whole partial batch must vanish, restoring the image as of the
    // last persisted batch — a transaction boundary.
    const uint64_t c = 0x3333;
    m.stageWrite(0, &c, 8);
    m.stageWrite(128, &c, 8);
    m.crash();
    EXPECT_EQ(m.device().read64(0), a) << "partial batch must roll back";
    EXPECT_EQ(m.device().read64(64), b);
    EXPECT_EQ(m.device().read64(128), 0u);
    EXPECT_EQ(m.persistCount(), 1u);
}

// ---------------------------------------------------------------------
// One persist per committed transaction
// ---------------------------------------------------------------------

TEST(ReplicationBatchTest, OnePersistPerCommitBoundary)
{
    constexpr uint32_t kBatch = 8;
    BackendNode be(1, testConfig());
    MirrorNode m(100, testConfig().nvm_size);
    be.addMirror(&m);

    FrontendSession s(SessionConfig::rcb(41, 1 << 20, kBatch));
    ASSERT_EQ(s.connect(&be), Status::Ok);
    RemotePtr region;
    ASSERT_EQ(s.alloc(1, kBatch * 16, &region), Status::Ok);

    // Warm one batch so lock state and allocator traffic settle.
    for (uint32_t i = 0; i < kBatch; ++i) {
        const uint64_t v = i;
        ASSERT_EQ(s.opBegin(0, 1, OpType::Update, i, &v, 8), Status::Ok);
        ASSERT_EQ(s.logWrite(0, RemotePtr(1, region.offset + i * 16), &v,
                             8),
                  Status::Ok);
        ASSERT_EQ(s.opEnd(), Status::Ok);
    }
    ASSERT_EQ(s.flushAll(), Status::Ok);

    const uint64_t p0 = m.persistCount();
    const ReplicationStats s0 = be.replicationStats();
    for (uint32_t i = 0; i < kBatch; ++i) {
        const uint64_t v = 0xBEE0 + i;
        ASSERT_EQ(s.opBegin(0, 1, OpType::Update, i, &v, 8), Status::Ok);
        // Two modifications per op: replay writes both, yet the whole
        // transaction still costs one replication persist.
        ASSERT_EQ(s.logWrite(0, RemotePtr(1, region.offset + i * 16), &v,
                             8),
                  Status::Ok);
        ASSERT_EQ(s.logWrite(0,
                             RemotePtr(1, region.offset + i * 16 + 8), &v,
                             8),
                  Status::Ok);
        ASSERT_EQ(s.opEnd(), Status::Ok);
    }
    ASSERT_EQ(s.flushAll(), Status::Ok);

    // Each op-log record is its own durability point (it is individually
    // recoverable after a crash), so it ships as one batch; the group
    // commit transaction — tx bytes, control block, every replayed
    // modification, SN bumps — ships as ONE more. Pre-batching, the same
    // commit cost one persist per mutation: >= kBatch op logs + 2*kBatch
    // replayed writes + 2 control writes + 2 SN writes.
    const uint64_t delta = m.persistCount() - p0;
    EXPECT_LE(delta, kBatch + 3)
        << "one persist per op-log record plus O(1) for the transaction";
    EXPECT_GE(delta, kBatch + 1);

    const ReplicationStats &rs = be.replicationStats();
    EXPECT_EQ(rs.persists - s0.persists, delta);
    EXPECT_GT(rs.raw_writes - s0.raw_writes, rs.ranges - s0.ranges)
        << "adjacent/duplicate ranges must coalesce";
    EXPECT_EQ(rs.mirrors_dropped, 0u);
    EXPECT_GT(be.replicationHistogram().count(), 0u);
}

// ---------------------------------------------------------------------
// Byte-identity audit: replica bytes == back-end bytes at every commit
// ---------------------------------------------------------------------

TEST(ReplicationBatchTest, MirrorByteIdenticalAfterEveryCommit)
{
    BackendNode be(1, testConfig());
    MirrorNode m(100, testConfig().nvm_size);
    be.addMirror(&m);

    FrontendSession s(SessionConfig::rcb(42, 1 << 20, 16));
    ASSERT_EQ(s.connect(&be), Status::Ok);
    HashTable ht;
    ASSERT_EQ(HashTable::create(s, 1, "audit", 64, &ht), Status::Ok);

    uint64_t rng = 0x9E3779B97F4A7C15ull;
    auto next = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };
    for (int commit = 0; commit < 8; ++commit) {
        for (int i = 0; i < 40; ++i) {
            const Key k = next() % 97; // overwrites exercise coalescing
            ASSERT_EQ(ht.put(k, Value::ofU64(next())), Status::Ok);
        }
        ASSERT_EQ(s.flushAll(), Status::Ok);
        // Post-commit one-sided writes (lock releases on the trailing
        // doorbell chain) stage into the next batch; drain them so the
        // comparison sees a quiesced device.
        be.flushReplication();
        EXPECT_TRUE(devicesIdentical(be.nvm(), m.device()))
            << "replica diverged after commit " << commit;
    }
}

// ---------------------------------------------------------------------
// Crash mid-batch: the mirror stays promotable
// ---------------------------------------------------------------------

TEST(ReplicationBatchTest, MirrorCrashMidBatchStaysPromotable)
{
    const BackendConfig cfg = testConfig();
    auto be = std::make_unique<BackendNode>(1, cfg);
    MirrorNode m(100, cfg.nvm_size);
    be->addMirror(&m);

    {
        FrontendSession s(SessionConfig::rcb(43, 1 << 20, 8));
        ASSERT_EQ(s.connect(be.get()), Status::Ok);
        HashTable ht;
        ASSERT_EQ(HashTable::create(s, 1, "t", 64, &ht), Status::Ok);
        for (uint64_t k = 1; k <= 20; ++k)
            ASSERT_EQ(ht.put(k, Value::ofU64(k * 3)), Status::Ok);
        ASSERT_EQ(s.flushAll(), Status::Ok);
        be->flushReplication();
    }

    // The next replication batch reaches the mirror only partially (the
    // back-end dies mid-transfer), and then the mirror itself loses
    // power before any persist fence: everything staged since the last
    // persisted batch must roll back to the committed image.
    const uint64_t junk = 0xDEADDEADDEADDEADull;
    m.stageWrite(1ull << 20, &junk, 8);
    m.stageWrite((1ull << 20) + 8, &junk, 8);
    m.crash();
    be.reset(); // the back-end is gone for good (Case 4)

    // Promote: the replica device simply becomes the new back-end.
    BackendNode promoted(1, cfg, m.releaseDevice());
    FrontendSession s2(SessionConfig::rcb(44, 1 << 20, 8));
    ASSERT_EQ(s2.connect(&promoted), Status::Ok);
    ASSERT_EQ(s2.recover(), Status::Ok);
    HashTable recovered;
    ASSERT_EQ(HashTable::open(s2, 1, "t", &recovered), Status::Ok);
    for (uint64_t k = 1; k <= 20; ++k) {
        Value v;
        ASSERT_EQ(recovered.get(k, &v), Status::Ok) << "key " << k;
        EXPECT_EQ(v.asU64(), k * 3);
    }
}

// ---------------------------------------------------------------------
// Replication retry: transient faults retry; storms detach, not wedge
// ---------------------------------------------------------------------

TEST(ReplicationBatchTest, TransientFaultRetriesInsteadOfWedging)
{
    BackendNode be(1, testConfig());
    MirrorNode m(100, testConfig().nvm_size);
    be.addMirror(&m);
    FaultConfig fc;
    fc.drop_rate = 0.3;
    m.faults().configure(fc, 1234);

    FrontendSession s(SessionConfig::rcb(45, 1 << 20, 8));
    ASSERT_EQ(s.connect(&be), Status::Ok);
    HashTable ht;
    ASSERT_EQ(HashTable::create(s, 1, "r", 64, &ht), Status::Ok);
    for (uint64_t k = 1; k <= 64; ++k) {
        ASSERT_EQ(ht.put(k, Value::ofU64(k)), Status::Ok)
            << "a faulted replication transfer must never fail a commit";
    }
    ASSERT_EQ(s.flushAll(), Status::Ok);

    const ReplicationStats &rs = be.replicationStats();
    EXPECT_GT(rs.retries, 0u) << "30% drop rate must trigger retries";
    EXPECT_GT(rs.backoff_ns, 0u);
    EXPECT_EQ(rs.mirrors_dropped, 0u)
        << "transient faults are absorbed, not treated as mirror death";

    m.faults().disarm();
    be.flushReplication();
    EXPECT_TRUE(devicesIdentical(be.nvm(), m.device()))
        << "retried batches must leave the replica byte-identical";
}

TEST(ReplicationBatchTest, RetryStormDetachesMirrorButCommitSucceeds)
{
    BackendNode be(1, testConfig());
    MirrorNode m(100, testConfig().nvm_size);
    be.addMirror(&m);
    FaultConfig fc;
    fc.drop_rate = 1.0;
    fc.drop_after_frac = 0.0;
    m.faults().configure(fc, 99);

    FrontendSession s(SessionConfig::rcb(46, 1 << 20, 4));
    ASSERT_EQ(s.connect(&be), Status::Ok);
    HashTable ht;
    ASSERT_EQ(HashTable::create(s, 1, "s", 64, &ht), Status::Ok);
    for (uint64_t k = 1; k <= 8; ++k)
        ASSERT_EQ(ht.put(k, Value::ofU64(k)), Status::Ok);
    ASSERT_EQ(s.flushAll(), Status::Ok)
        << "a replication storm detaches the mirror (Case 5); it must "
           "not wedge or fail the commit";

    EXPECT_EQ(be.replicationStats().mirrors_dropped, 1u);

    // Committing continues without the mirror.
    ASSERT_EQ(ht.put(100, Value::ofU64(100)), Status::Ok);
    ASSERT_EQ(s.flushAll(), Status::Ok);
    Value v;
    ASSERT_EQ(ht.get(100, &v), Status::Ok);
    EXPECT_EQ(v.asU64(), 100u);
}

} // namespace
} // namespace asymnvm
