/**
 * @file
 * Unit tests for the verbs layer: one-sided read/write/atomics, latency
 * charging, NIC reservation, failure injection (torn writes), and the
 * posted-write (async) path.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "nvm/nvm_device.h"
#include "rdma/verbs.h"
#include "sim/clock.h"
#include "sim/failure.h"
#include "sim/latency.h"
#include "sim/nic.h"

namespace asymnvm {
namespace {

class VerbsTest : public ::testing::Test
{
  protected:
    VerbsTest()
        : dev(1 << 20), nic(120), verbs(&clock, &lat)
    {
        verbs.attach(1, RdmaTarget{&dev, &nic, &fail});
    }

    NvmDevice dev;
    NicModel nic;
    FailureInjector fail;
    SimClock clock;
    LatencyModel lat;
    Verbs verbs;
};

TEST_F(VerbsTest, WriteThenReadRoundTrip)
{
    const char msg[] = "over the fabric";
    ASSERT_EQ(verbs.write(RemotePtr(1, 4096), msg, sizeof(msg)),
              Status::Ok);
    char buf[sizeof(msg)] = {};
    ASSERT_EQ(verbs.read(RemotePtr(1, 4096), buf, sizeof(buf)),
              Status::Ok);
    EXPECT_STREQ(buf, msg);
}

TEST_F(VerbsTest, WriteIsDurable)
{
    const uint64_t v = 99;
    verbs.write(RemotePtr(1, 64), &v, 8);
    dev.crash(); // RDMA write completed == persisted in NVM
    EXPECT_EQ(dev.read64(64), 99u);
}

TEST_F(VerbsTest, ReadChargesRoundTrip)
{
    uint64_t v;
    const uint64_t before = clock.now();
    verbs.read64(RemotePtr(1, 0), &v);
    EXPECT_GE(clock.now() - before, lat.rdma_atomic_rtt_ns);
}

TEST_F(VerbsTest, AsyncWriteChargesOnlyPostOverhead)
{
    const uint64_t v = 3;
    const uint64_t t0 = clock.now();
    verbs.writeAsync(RemotePtr(1, 128), &v, 8);
    const uint64_t async_cost = clock.now() - t0;
    const uint64_t t1 = clock.now();
    verbs.write(RemotePtr(1, 136), &v, 8);
    const uint64_t sync_cost = clock.now() - t1;
    EXPECT_LT(async_cost, sync_cost);
    EXPECT_LT(async_cost, lat.rdma_write_rtt_ns);
    // The payload still lands.
    EXPECT_EQ(dev.read64(128), 3u);
}

TEST_F(VerbsTest, UnknownTargetUnavailable)
{
    uint64_t v;
    EXPECT_EQ(verbs.read64(RemotePtr(9, 0), &v), Status::Unavailable);
}

TEST_F(VerbsTest, DetachMakesTargetUnavailable)
{
    verbs.detach(1);
    uint64_t v;
    EXPECT_EQ(verbs.read64(RemotePtr(1, 0), &v), Status::Unavailable);
}

TEST_F(VerbsTest, CasAndFetchAdd)
{
    verbs.write64(RemotePtr(1, 256), 10);
    uint64_t old = 0;
    ASSERT_EQ(verbs.compareAndSwap(RemotePtr(1, 256), 10, 20, &old),
              Status::Ok);
    EXPECT_EQ(old, 10u);
    ASSERT_EQ(verbs.compareAndSwap(RemotePtr(1, 256), 10, 30, &old),
              Status::Ok);
    EXPECT_EQ(old, 20u); // CAS failed, value unchanged
    ASSERT_EQ(verbs.fetchAdd(RemotePtr(1, 256), 5, &old), Status::Ok);
    EXPECT_EQ(old, 20u);
    uint64_t v;
    verbs.read64(RemotePtr(1, 256), &v);
    EXPECT_EQ(v, 25u);
}

TEST_F(VerbsTest, VerbAndByteCountersTrack)
{
    uint8_t buf[100] = {};
    verbs.write(RemotePtr(1, 512), buf, sizeof(buf));
    verbs.read(RemotePtr(1, 512), buf, sizeof(buf));
    EXPECT_EQ(verbs.verbsIssued(), 2u);
    EXPECT_EQ(verbs.bytesMoved(), 200u);
}

TEST_F(VerbsTest, CrashTearsInFlightWriteAtCacheLine)
{
    // Persist a base image first.
    std::vector<uint8_t> ones(512, 0x11);
    verbs.write(RemotePtr(1, 1024), ones.data(), ones.size());

    fail.armCrashAfterVerbs(0, /*seed=*/3);
    std::vector<uint8_t> twos(512, 0x22);
    EXPECT_EQ(verbs.write(RemotePtr(1, 1024), twos.data(), twos.size()),
              Status::BackendCrashed);

    // Some 64-byte-aligned prefix is new, the rest still old.
    std::vector<uint8_t> got(512);
    dev.read(1024, got.data(), got.size());
    size_t boundary = 0;
    while (boundary < 512 && got[boundary] == 0x22)
        ++boundary;
    EXPECT_EQ(boundary % 64, 0u);
    for (size_t i = boundary; i < 512; ++i)
        ASSERT_EQ(got[i], 0x11) << "byte " << i;
}

TEST_F(VerbsTest, VerbsAfterCrashFail)
{
    fail.armCrashAfterVerbs(0);
    uint64_t v;
    verbs.read64(RemotePtr(1, 0), &v);
    EXPECT_EQ(verbs.read64(RemotePtr(1, 0), &v), Status::BackendCrashed);
    EXPECT_EQ(verbs.write64(RemotePtr(1, 0), 1), Status::BackendCrashed);
}

TEST_F(VerbsTest, NicAccountsEveryVerb)
{
    SimClock clock2;
    Verbs verbs2(&clock2, &lat);
    verbs2.attach(1, RdmaTarget{&dev, &nic, &fail});

    uint64_t v;
    for (int i = 0; i < 50; ++i) {
        verbs.read64(RemotePtr(1, 0), &v);
        verbs2.read64(RemotePtr(1, 0), &v);
    }
    EXPECT_EQ(nic.verbCount(), 100u);
    EXPECT_EQ(nic.busyNs(), 100 * nic.serviceNs());
}

} // namespace
} // namespace asymnvm
