/**
 * @file
 * Multi-writer handoff tests for the SWMR model: writers from different
 * front-end sessions take turns under the exclusive writer lock
 * (Section 6.1). The correctness hazards are (a) the second writer
 * seeing the first writer's data (its shadows/caches may be stale) and
 * (b) the first writer re-acquiring the lock after the second wrote —
 * the writer-generation word must invalidate its cache.
 */

#include <gtest/gtest.h>

#include "backend/backend_node.h"
#include "ds/bptree.h"
#include "ds/hash_table.h"
#include "frontend/session.h"

namespace asymnvm {
namespace {

BackendConfig
testConfig()
{
    BackendConfig cfg;
    cfg.nvm_size = 32ull << 20;
    cfg.max_frontends = 4;
    cfg.max_names = 16;
    cfg.memlog_ring_size = 1ull << 20;
    cfg.oplog_ring_size = 1ull << 20;
    return cfg;
}

TEST(MultiWriterTest, AlternatingWritersSeeEachOthersData)
{
    BackendNode be(1, testConfig());
    DsOptions shared;
    shared.shared = true;

    FrontendSession sa(SessionConfig::rcb(1, 1 << 20, 8));
    FrontendSession sb(SessionConfig::rcb(2, 1 << 20, 8));
    ASSERT_EQ(sa.connect(&be), Status::Ok);
    ASSERT_EQ(sb.connect(&be), Status::Ok);

    HashTable a;
    ASSERT_EQ(HashTable::create(sa, 1, "turns", 64, &a, shared),
              Status::Ok);
    ASSERT_EQ(sa.flushAll(), Status::Ok);
    HashTable b;
    ASSERT_EQ(HashTable::open(sb, 1, "turns", &b, shared), Status::Ok);

    // Ten rounds of alternating ownership; each writer reads what the
    // other wrote in the previous round, then overwrites it.
    for (uint64_t round = 0; round < 10; ++round) {
        HashTable &writer = round % 2 == 0 ? a : b;
        FrontendSession &session = round % 2 == 0 ? sa : sb;
        if (round > 0) {
            Value v;
            ASSERT_EQ(writer.get(77, &v), Status::Ok);
            EXPECT_EQ(v.asU64(), round - 1)
                << "writer missed the previous owner's update";
        }
        ASSERT_EQ(writer.put(77, Value::ofU64(round)), Status::Ok);
        ASSERT_EQ(session.flushAll(), Status::Ok); // releases the lock
    }
}

TEST(MultiWriterTest, StaleWriterCacheInvalidatedByGeneration)
{
    BackendNode be(1, testConfig());
    DsOptions shared;
    shared.shared = true;

    FrontendSession sa(SessionConfig::rcb(1, 1 << 20, 8));
    FrontendSession sb(SessionConfig::rcb(2, 1 << 20, 8));
    ASSERT_EQ(sa.connect(&be), Status::Ok);
    ASSERT_EQ(sb.connect(&be), Status::Ok);

    BpTree a;
    ASSERT_EQ(BpTree::create(sa, 1, "gen", &a, shared), Status::Ok);
    // A populates and warms its cache with the whole tree.
    for (uint64_t k = 1; k <= 200; ++k)
        ASSERT_EQ(a.insert(k, Value::ofU64(k)), Status::Ok);
    ASSERT_EQ(sa.flushAll(), Status::Ok);
    Value v;
    for (uint64_t k = 1; k <= 200; ++k)
        ASSERT_EQ(a.find(k, &v), Status::Ok);

    // B takes the lock and rewrites everything.
    BpTree b;
    ASSERT_EQ(BpTree::open(sb, 1, "gen", &b, shared), Status::Ok);
    for (uint64_t k = 1; k <= 200; ++k)
        ASSERT_EQ(b.insert(k, Value::ofU64(k + 5000)), Status::Ok);
    ASSERT_EQ(sb.flushAll(), Status::Ok);

    // A becomes the writer again: its warm cache is entirely stale, and
    // the writer-generation check on lock acquisition must flush it.
    ASSERT_EQ(a.insert(1000, Value::ofU64(1)), Status::Ok);
    for (uint64_t k = 1; k <= 200; ++k) {
        ASSERT_EQ(a.find(k, &v), Status::Ok);
        EXPECT_EQ(v.asU64(), k + 5000)
            << "writer A served stale cached data for key " << k;
    }
    ASSERT_EQ(sa.flushAll(), Status::Ok);
}

TEST(MultiWriterTest, CrashedWriterDoesNotBlockSuccessor)
{
    BackendNode be(1, testConfig());
    DsOptions shared;
    shared.shared = true;

    FrontendSession sa(SessionConfig::rcb(1, 1 << 20, 64));
    FrontendSession sb(SessionConfig::rcb(2, 1 << 20, 64));
    ASSERT_EQ(sa.connect(&be), Status::Ok);
    ASSERT_EQ(sb.connect(&be), Status::Ok);

    HashTable a;
    ASSERT_EQ(HashTable::create(sa, 1, "orphan", 64, &a, shared),
              Status::Ok);
    ASSERT_EQ(sa.flushAll(), Status::Ok);
    // A acquires the lock (mid-batch) and dies.
    ASSERT_EQ(a.put(1, Value::ofU64(1)), Status::Ok);
    EXPECT_NE(be.namingEntry(a.id()).writer_lock, 0u);
    sa.simulateCrash();
    // A's recovery (Case 2) releases the orphaned lock...
    HashTable re;
    ASSERT_EQ(HashTable::open(sa, 1, "orphan", &re, shared), Status::Ok);
    ASSERT_EQ(sa.recover(), Status::Ok);
    // ...and B can immediately take over.
    HashTable b;
    ASSERT_EQ(HashTable::open(sb, 1, "orphan", &b, shared), Status::Ok);
    ASSERT_EQ(b.put(2, Value::ofU64(2)), Status::Ok);
    ASSERT_EQ(sb.flushAll(), Status::Ok);
    Value v;
    ASSERT_EQ(b.get(1, &v), Status::Ok)
        << "A's recovered op must be visible to B";
    ASSERT_EQ(b.get(2, &v), Status::Ok);
}

} // namespace
} // namespace asymnvm
