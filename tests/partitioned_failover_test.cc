/**
 * @file
 * Failure-aware Partitioned<DS> (DESIGN.md §12): per-shard health over a
 * transparent-failover cluster. Operations routed to a shard whose
 * back-end died fast-fail with Unavailable — no 10ms-class stall — while
 * the surviving k-1 shards keep serving; dead shards re-attach through
 * the session's non-blocking heal path once a promoted incarnation
 * serves; reads may be answered from a degraded source during the
 * outage; open() survives a dead coordinator back-end because the
 * coordinator entry is replicated into every back-end's namespace.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "cluster/cluster.h"
#include "ds/hash_table.h"
#include "ds/partitioned.h"
#include "frontend/session.h"

namespace asymnvm {
namespace {

constexpr uint32_t kBackends = 3;
constexpr uint32_t kParts = 3;

ClusterConfig
partClusterConfig()
{
    ClusterConfig cfg;
    cfg.num_backends = kBackends;
    cfg.mirrors_per_backend = 2;
    cfg.backend.nvm_size = 16ull << 20;
    cfg.backend.max_frontends = 4;
    cfg.backend.max_names = 16;
    cfg.backend.memlog_ring_size = 256ull << 10;
    cfg.backend.oplog_ring_size = 256ull << 10;
    cfg.transparent_failover = true;
    return cfg;
}

Partitioned<HashTable>::MakeFn
makeHash()
{
    return [](FrontendSession &sess, NodeId be, std::string_view name,
              HashTable *out) {
        return HashTable::create(sess, be, name, 64, out);
    };
}

Partitioned<HashTable>::MakeFn
openHash()
{
    return [](FrontendSession &sess, NodeId be, std::string_view name,
              HashTable *out) {
        return HashTable::open(sess, be, name, out);
    };
}

struct Fixture
{
    Cluster cluster{partClusterConfig()};
    std::unique_ptr<FrontendSession> s;
    Partitioned<HashTable> part;
    std::map<Key, uint64_t> shadow;

    Fixture()
    {
        s = cluster.makeSession(SessionConfig::rcb(1, 1 << 20, 16));
        EXPECT_NE(s, nullptr);
        const auto ids = cluster.backendIds();
        EXPECT_EQ(Partitioned<HashTable>::create(*s, ids, "pfo", kParts,
                                                 &part, makeHash()),
                  Status::Ok);
        for (Key k = 1; k <= 90; ++k) {
            EXPECT_EQ(part.insert(k, Value::ofU64(k * 11)), Status::Ok);
            shadow[k] = k * 11;
        }
        EXPECT_EQ(s->flushAll(), Status::Ok);
    }

    /** Keys owned by the shard homed on @p be / not homed on it. */
    Key keyOn(NodeId be) const
    {
        for (Key k = 1;; ++k) {
            if (part.shardBackend(part.shardForKey(k)) == be)
                return k;
        }
    }
    Key keyNotOn(NodeId be) const
    {
        for (Key k = 1;; ++k) {
            if (part.shardBackend(part.shardForKey(k)) != be)
                return k;
        }
    }

    void renewAll(bool include_primary2 = true)
    {
        const uint64_t now = s->clock().now();
        for (const NodeId id : cluster.backendIds()) {
            if (id != 2 || include_primary2)
                cluster.keepAlive().renew(id, now);
            for (MirrorNode *m : cluster.mirrorsOf(id))
                cluster.keepAlive().renew(m->id(), now);
        }
    }

    /** Jump virtual time past node 2's lease, keeping everyone else's
     *  keepalive current. */
    void jumpPastLeaseOf2()
    {
        const uint64_t lease = cluster.keepAlive().leaseNs();
        for (int step = 0; step < 3; ++step) {
            s->clock().advance(lease / 2 + 1);
            renewAll(/*include_primary2=*/false);
        }
    }
};

TEST(PartitionedFailoverTest, DeadShardFastFailsWhileSiblingsServe)
{
    Fixture f;
    f.renewAll();
    const Key dead_key = f.keyOn(2);
    const Key live_key = f.keyNotOn(2);
    f.cluster.condemnBackend(2);

    // First op on the dead shard discovers the failure (FailingOver);
    // the next op's probe confirms the back-end is down and the shard
    // settles Degraded — every op fast-fails, no failover stall.
    Value v;
    EXPECT_EQ(f.part.find(dead_key, &v), Status::Unavailable);
    const uint32_t dead_idx = f.part.shardForKey(dead_key);
    EXPECT_EQ(f.part.shardHealth(dead_idx), ShardHealth::FailingOver);

    const uint64_t t0 = f.s->clock().now();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(f.part.insert(dead_key, Value::ofU64(1)),
                  Status::Unavailable);
    EXPECT_EQ(f.part.shardHealth(dead_idx), ShardHealth::Degraded);
    EXPECT_LT(f.s->clock().now() - t0, f.cluster.keepAlive().leaseNs())
        << "a degraded shard must fast-fail, not ride the full "
           "failover wait";
    EXPECT_GE(f.part.unavailableOps(), 9u);

    // The surviving shards keep serving reads and writes throughout.
    ASSERT_EQ(f.part.find(live_key, &v), Status::Ok);
    EXPECT_EQ(v.asU64(), f.shadow[live_key]);
    EXPECT_EQ(f.part.insert(live_key, Value::ofU64(7)), Status::Ok);
    EXPECT_EQ(f.part.erase(live_key), Status::Ok);
    for (uint32_t i = 0; i < kParts; ++i) {
        if (i != dead_idx) {
            EXPECT_EQ(f.part.shardHealth(i), ShardHealth::Healthy);
        }
    }
}

TEST(PartitionedFailoverTest, DegradedShardReattachesAfterPromotion)
{
    Fixture f;
    f.renewAll();
    const Key dead_key = f.keyOn(2);
    f.cluster.condemnBackend(2);
    Value v;
    EXPECT_EQ(f.part.find(dead_key, &v), Status::Unavailable);

    // Lease lapses; the re-attach probes drive the promotion claim to
    // completion (claim on the first probe, complete on the next), then
    // the shard rejoins.
    f.jumpPastLeaseOf2();
    uint32_t serving = 0;
    for (int tick = 0; tick < 4 && serving < kParts; ++tick)
        serving = f.part.tickHealth();
    EXPECT_EQ(serving, kParts);
    EXPECT_EQ(f.cluster.slotEpoch(2), 2u) << "exactly one promotion";

    // The rejoined shard serves the data it held before the failure —
    // promotion recovered it from the mirror replica.
    for (const auto &[k, want] : f.shadow) {
        ASSERT_EQ(f.part.find(k, &v), Status::Ok) << "key " << k;
        EXPECT_EQ(v.asU64(), want);
    }
    EXPECT_EQ(f.part.insert(dead_key, Value::ofU64(123)), Status::Ok);
}

TEST(PartitionedFailoverTest, DegradedReadServesWhileShardIsDown)
{
    Fixture f;
    f.renewAll();
    const Key dead_key = f.keyOn(2);
    f.part.setDegradedRead([&f](uint32_t, Key k, Value *out) {
        const auto it = f.shadow.find(k);
        if (it == f.shadow.end())
            return Status::NotFound;
        *out = Value::ofU64(it->second);
        return Status::Ok;
    });
    f.cluster.condemnBackend(2);

    // Reads of the dead shard come from the degraded source; writes
    // still refuse (the degraded mode is read-only by construction).
    Value v;
    ASSERT_EQ(f.part.find(dead_key, &v), Status::Ok);
    EXPECT_EQ(v.asU64(), f.shadow[dead_key]);
    EXPECT_EQ(f.part.insert(dead_key, Value::ofU64(5)),
              Status::Unavailable);
}

TEST(PartitionedFailoverTest, DetachedShardStaysDetached)
{
    Fixture f;
    f.renewAll();
    const Key key = f.keyOn(3);
    const uint32_t idx = f.part.shardForKey(key);
    f.part.detachShard(idx);
    Value v;
    EXPECT_EQ(f.part.find(key, &v), Status::Unavailable);
    EXPECT_EQ(f.part.insert(key, Value::ofU64(1)), Status::Unavailable);
    // Health ticks never resurrect an administratively detached shard.
    EXPECT_EQ(f.part.tickHealth(), kParts - 1);
    EXPECT_EQ(f.part.shardHealth(idx), ShardHealth::Detached);
}

TEST(PartitionedFailoverTest, OpenSurvivesDeadCoordinatorBackend)
{
    Cluster cluster(partClusterConfig());
    auto writer = cluster.makeSession(SessionConfig::rcb(1, 1 << 20, 16));
    ASSERT_NE(writer, nullptr);
    const auto ids = cluster.backendIds();
    Partitioned<HashTable> created;
    ASSERT_EQ(Partitioned<HashTable>::create(*writer, ids, "pcoord",
                                             kParts, &created,
                                             makeHash()),
              Status::Ok);
    for (Key k = 1; k <= 30; ++k)
        ASSERT_EQ(created.insert(k, Value::ofU64(k)), Status::Ok);
    ASSERT_EQ(writer->flushAll(), Status::Ok);

    // Node 1 — the coordinator home in a non-replicated design — dies
    // for good. The entry's replicas on nodes 2 and 3 still serve it.
    const uint64_t now = writer->clock().now();
    for (const NodeId id : ids) {
        cluster.keepAlive().renew(id, now);
        for (MirrorNode *m : cluster.mirrorsOf(id))
            cluster.keepAlive().renew(m->id(), now);
    }
    cluster.condemnBackend(1);

    auto reader = cluster.makeSession(SessionConfig::rcb(1, 1 << 20, 16));
    ASSERT_NE(reader, nullptr);
    Partitioned<HashTable> reopened;
    ASSERT_EQ(Partitioned<HashTable>::open(*reader, ids, "pcoord",
                                           &reopened, openHash()),
              Status::Ok);
    ASSERT_EQ(reopened.partitionCount(), kParts);

    // Shards homed on the dead node opened degraded; the rest serve.
    uint32_t degraded = 0;
    for (uint32_t i = 0; i < kParts; ++i) {
        if (reopened.shardBackend(i) == 1) {
            EXPECT_EQ(reopened.shardHealth(i), ShardHealth::Degraded);
            ++degraded;
        } else {
            EXPECT_EQ(reopened.shardHealth(i), ShardHealth::Healthy);
        }
    }
    EXPECT_GE(degraded, 1u);
    for (Key k = 1; k <= 30; ++k) {
        const uint32_t idx = reopened.shardForKey(k);
        Value v;
        if (reopened.shardBackend(idx) == 1) {
            EXPECT_EQ(reopened.find(k, &v), Status::Unavailable);
        } else {
            ASSERT_EQ(reopened.find(k, &v), Status::Ok) << "key " << k;
            EXPECT_EQ(v.asU64(), k);
        }
    }
}

} // namespace
} // namespace asymnvm
