/**
 * @file
 * Read-side doorbell batching and traversal prefetch (DESIGN.md §9):
 * gather-verb cost shape at the verbs layer, speculative-entry semantics
 * in the page cache, the session-level doorbell budget of a B+tree
 * traversal with and without prefetch, and the virtual-time backoff of
 * the optimistic reader retry loop.
 */

#include <gtest/gtest.h>

#include "backend/backend_node.h"
#include "ds/bptree.h"
#include "ds/ds_common.h"
#include "frontend/cache.h"
#include "frontend/session.h"
#include "nvm/nvm_device.h"
#include "rdma/verbs.h"
#include "sim/clock.h"

namespace asymnvm {
namespace {

BackendConfig
testConfig()
{
    BackendConfig cfg;
    cfg.nvm_size = 32ull << 20;
    cfg.max_frontends = 4;
    cfg.max_names = 8;
    cfg.memlog_ring_size = 1ull << 20;
    cfg.oplog_ring_size = 512ull << 10;
    return cfg;
}

// ---------------------------------------------------------------------
// Verbs layer: N reads, one doorbell, one NIC arrival, one round trip.
// ---------------------------------------------------------------------

class ReadGatherVerbsTest : public ::testing::Test
{
  protected:
    ReadGatherVerbsTest() : dev(1 << 20), nic(120), verbs(&clock, &lat)
    {
        verbs.attach(1, RdmaTarget{&dev, &nic, &fail});
    }

    NvmDevice dev;
    NicModel nic;
    FailureInjector fail;
    SimClock clock;
    LatencyModel lat;
    Verbs verbs;
};

TEST_F(ReadGatherVerbsTest, GatherIsOneDoorbellOneArrival)
{
    constexpr uint64_t kN = 6;
    for (uint64_t i = 0; i < kN; ++i) {
        const uint64_t v = 0xa0 + i;
        ASSERT_EQ(verbs.write(RemotePtr(1, 128 + 64 * i), &v, 8),
                  Status::Ok);
    }
    const VerbCounters before = verbs.counters();
    uint64_t out[kN] = {};
    for (uint64_t i = 0; i < kN; ++i)
        ASSERT_EQ(verbs.postRead(RemotePtr(1, 128 + 64 * i), &out[i], 8),
                  Status::Ok);
    EXPECT_EQ(verbs.pendingReadWqes(), kN);
    ASSERT_EQ(verbs.readGather(), Status::Ok);
    EXPECT_EQ(verbs.pendingReadWqes(), 0u);
    for (uint64_t i = 0; i < kN; ++i)
        EXPECT_EQ(out[i], 0xa0 + i);
    const VerbCounters after = verbs.counters();
    EXPECT_EQ(after.doorbells - before.doorbells, 1u);
    EXPECT_EQ(after.read_gathers - before.read_gathers, 1u);
    EXPECT_EQ(after.reads - before.reads, kN);
    EXPECT_EQ(nic.gatherBatches(), 1u);
    EXPECT_EQ(nic.gatherWqes(), kN);
}

TEST_F(ReadGatherVerbsTest, GatherCostsOneRoundTripNotN)
{
    constexpr uint64_t kN = 8;
    for (uint64_t i = 0; i < kN; ++i) {
        const uint64_t v = i;
        ASSERT_EQ(verbs.write(RemotePtr(1, 4096 + 64 * i), &v, 8),
                  Status::Ok);
    }
    // Serial baseline: its own endpoint so NIC queueing states match.
    uint64_t serial_ns = 0;
    {
        NicModel snic(120);
        SimClock sclock;
        Verbs sv(&sclock, &lat);
        sv.attach(1, RdmaTarget{&dev, &snic, &fail});
        uint64_t out;
        const uint64_t t0 = sclock.now();
        for (uint64_t i = 0; i < kN; ++i)
            ASSERT_EQ(sv.read(RemotePtr(1, 4096 + 64 * i), &out, 8),
                      Status::Ok);
        serial_ns = sclock.now() - t0;
    }
    uint64_t gather_ns = 0;
    {
        NicModel gnic(120);
        SimClock gclock;
        Verbs gv(&gclock, &lat);
        gv.attach(1, RdmaTarget{&dev, &gnic, &fail});
        uint64_t out[kN];
        const uint64_t t0 = gclock.now();
        for (uint64_t i = 0; i < kN; ++i)
            ASSERT_EQ(gv.postRead(RemotePtr(1, 4096 + 64 * i), &out[i], 8),
                      Status::Ok);
        ASSERT_EQ(gv.readGather(), Status::Ok);
        gather_ns = gclock.now() - t0;
    }
    // One RTT + one posting overhead instead of N of each: the gather
    // must be well under half the serial cost at kN = 8.
    EXPECT_LT(gather_ns * 2, serial_ns);
}

// ---------------------------------------------------------------------
// Page cache: speculative-entry semantics.
// ---------------------------------------------------------------------

class SpecCacheTest : public ::testing::Test
{
  protected:
    SpecCacheTest() : cache(CachePolicy::Hybrid, 64 << 10, &clock, &lat)
    {}

    SimClock clock;
    LatencyModel lat;
    PageCache cache;
    uint8_t buf[64] = {};
};

TEST_F(SpecCacheTest, UpdateLengthMismatchInvalidates)
{
    const RemotePtr p(1, 256);
    for (uint32_t i = 0; i < 64; ++i)
        buf[i] = static_cast<uint8_t>(i);
    cache.insert(7, p, buf, 64);
    ASSERT_TRUE(cache.contains(p, 64));
    // A shorter write-through cannot patch a 64-byte entry: the entry
    // must drop rather than serve a half-patched object.
    cache.update(p, buf, 32);
    EXPECT_FALSE(cache.contains(p, 64));
    uint8_t out[64];
    EXPECT_FALSE(cache.lookup(p, out, 64));
}

TEST_F(SpecCacheTest, SpeculativePromotesOnFirstHit)
{
    const RemotePtr p(1, 512);
    cache.insertSpeculative(3, p, buf, 64, cache.epochNow());
    ASSERT_TRUE(cache.contains(p, 64));
    EXPECT_EQ(cache.prefetchHits(), 0u);
    uint8_t out[64];
    EXPECT_TRUE(cache.lookup(p, out, 64));
    EXPECT_EQ(cache.prefetchHits(), 1u);
    // Promoted: dropping it later is a normal eviction, not waste.
    cache.invalidate(p);
    EXPECT_EQ(cache.prefetchWasted(), 0u);
}

TEST_F(SpecCacheTest, SpeculativeDropCountsWasted)
{
    const RemotePtr p(1, 1024);
    cache.insertSpeculative(3, p, buf, 64, cache.epochNow());
    cache.invalidate(p); // never hit
    EXPECT_EQ(cache.prefetchWasted(), 1u);
    EXPECT_EQ(cache.prefetchHits(), 0u);
}

TEST_F(SpecCacheTest, InvalidateDsOutranksInFlightPrefetch)
{
    const RemotePtr p(1, 2048);
    // Epoch snapshot at gather ISSUE time; the gc-epoch bump lands while
    // the chain is in flight.
    const uint64_t issue_epoch = cache.epochNow();
    cache.invalidateDs(3);
    cache.insertSpeculative(3, p, buf, 64, issue_epoch);
    EXPECT_FALSE(cache.contains(p, 64));
    EXPECT_EQ(cache.prefetchWasted(), 1u);
    // A gather issued AFTER the bump inserts normally.
    cache.insertSpeculative(3, p, buf, 64, cache.epochNow());
    EXPECT_TRUE(cache.contains(p, 64));
}

TEST_F(SpecCacheTest, SpeculativeNeverDowngradesLiveEntry)
{
    const RemotePtr p(1, 4096);
    for (uint32_t i = 0; i < 64; ++i)
        buf[i] = 0x5a;
    cache.insert(3, p, buf, 64);
    uint8_t stale[64] = {};
    cache.insertSpeculative(3, p, stale, 64, cache.epochNow());
    uint8_t out[64] = {};
    ASSERT_TRUE(cache.lookup(p, out, 64));
    EXPECT_EQ(out[0], 0x5a); // demanded bytes survived
    EXPECT_EQ(cache.prefetchHits(), 0u);
}

// ---------------------------------------------------------------------
// Session + B+tree: traversal doorbell budget with and without prefetch.
// ---------------------------------------------------------------------

struct TraversalProbe
{
    std::unique_ptr<BackendNode> be;
    std::unique_ptr<FrontendSession> s;
    BpTree ds;

    explicit TraversalProbe(bool prefetch, uint64_t id, uint64_t nkeys)
    {
        be = std::make_unique<BackendNode>(1, testConfig());
        SessionConfig cfg = SessionConfig::rc(id, 256 << 10);
        cfg.read_prefetch = prefetch;
        s = std::make_unique<FrontendSession>(cfg);
        EXPECT_EQ(s->connect(be.get()), Status::Ok);
        EXPECT_EQ(BpTree::create(*s, 1, "t", &ds), Status::Ok);
        Value v{};
        for (uint64_t k = 0; k < nkeys; ++k) {
            v.bytes[0] = static_cast<uint8_t>(k);
            EXPECT_EQ(ds.insert(k, v), Status::Ok);
        }
        EXPECT_EQ(s->flushAll(), Status::Ok);
        s->cache().clear();
        s->resetStats();
    }

    uint64_t doorbells() const { return s->verbs().counters().doorbells; }
};

TEST(ReadGatherSessionTest, TraversalDoorbellBudget)
{
    constexpr uint64_t kKeys = 2000;
    TraversalProbe with(true, 81, kKeys);
    TraversalProbe without(false, 82, kKeys);

    // Cold first lookup: with the gather verb, prefetch candidates ride
    // the demanded read's doorbell, so a depth-d traversal stays within
    // the serial path's doorbell count (one per dependent level).
    Value v{};
    const uint64_t key = kKeys / 2;
    ASSERT_EQ(without.ds.find(key, &v), Status::Ok);
    const uint64_t serial_cold = without.doorbells();
    ASSERT_EQ(with.ds.find(key, &v), Status::Ok);
    const uint64_t gather_cold = with.doorbells();
    EXPECT_GE(serial_cold, 1u);
    EXPECT_LE(gather_cold, serial_cold);

    // Nearby lookups: the gathered siblings and value cells are cache
    // hits now — strictly fewer doorbells than the serial baseline.
    for (uint64_t k = key + 1; k <= key + 4; ++k) {
        ASSERT_EQ(without.ds.find(k, &v), Status::Ok);
        ASSERT_EQ(with.ds.find(k, &v), Status::Ok);
    }
    const uint64_t serial_warm = without.doorbells() - serial_cold;
    const uint64_t gather_warm = with.doorbells() - gather_cold;
    EXPECT_LT(gather_warm, serial_warm);
    EXPECT_GT(with.s->stats().prefetch.hits, 0u);
    EXPECT_EQ(without.s->stats().prefetch.issued, 0u);
}

TEST(ReadGatherSessionTest, ColdLookupLatencyImprovesWithPrefetch)
{
    constexpr uint64_t kKeys = 2000;
    constexpr uint64_t kLookups = 120;
    TraversalProbe with(true, 83, kKeys);
    TraversalProbe without(false, 84, kKeys);
    Value v{};
    // Range-local lookup stream over the cold tree: the access pattern
    // the sibling gather targets.
    uint64_t t0 = with.s->clock().now();
    for (uint64_t i = 0; i < kLookups; ++i)
        ASSERT_EQ(with.ds.find(400 + i, &v), Status::Ok);
    const uint64_t with_ns = with.s->clock().now() - t0;
    t0 = without.s->clock().now();
    for (uint64_t i = 0; i < kLookups; ++i)
        ASSERT_EQ(without.ds.find(400 + i, &v), Status::Ok);
    const uint64_t without_ns = without.s->clock().now() - t0;
    EXPECT_LT(with_ns, without_ns);
}

TEST(ReadGatherSessionTest, AblationFlagDisablesAllSpeculation)
{
    TraversalProbe off(false, 85, 500);
    Value v{};
    for (uint64_t k = 0; k < 50; ++k)
        ASSERT_EQ(off.ds.find(k, &v), Status::Ok);
    const SessionStats st = off.s->stats();
    EXPECT_EQ(st.prefetch.batches, 0u);
    EXPECT_EQ(st.prefetch.issued, 0u);
    EXPECT_EQ(st.verbs.read_gathers, 0u);
}

// ---------------------------------------------------------------------
// Optimistic reader retry: virtual-time backoff (no host yield).
// ---------------------------------------------------------------------

/** Minimal DsBase subclass exposing the optimistic-read protocol. */
class ProbeDs : public DsBase
{
  public:
    ProbeDs(FrontendSession &s, NodeId backend, DsId id,
            const DsOptions &opt)
        : DsBase(s, backend, "probe", id, opt)
    {}

    template <typename Fn>
    Status run(Fn &&body)
    {
        return optimisticRead(std::forward<Fn>(body));
    }
};

TEST(OptimisticReadBackoffTest, ConflictChargesVirtualTimeBackoff)
{
    BackendNode be(1, testConfig());
    FrontendSession writer(SessionConfig::r(91));
    FrontendSession reader(SessionConfig::r(92));
    ASSERT_EQ(writer.connect(&be), Status::Ok);
    ASSERT_EQ(reader.connect(&be), Status::Ok);
    DsId id = 0;
    ASSERT_EQ(writer.createDs(1, "probe", DsType::Bst, &id), Status::Ok);
    DsOptions opt;
    opt.shared = true;
    ProbeDs probe(reader, 1, id, opt);
    RemotePtr cell;
    ASSERT_EQ(writer.alloc(1, 64, &cell), Status::Ok);
    // One committed write in the writer's critical section: the replay
    // is what bumps the seqlock SN (Write_Begin/Write_End), so a bare
    // lock/unlock with nothing logged would not conflict readers.
    const auto writer_cs = [&] {
        const uint64_t v = 0xbeef;
        EXPECT_EQ(writer.writerLock(id, 1), Status::Ok);
        EXPECT_EQ(writer.logWrite(id, cell, &v, 8), Status::Ok);
        EXPECT_EQ(writer.writerUnlock(id, 1), Status::Ok);
    };

    // Warm-up, then a clean read: one attempt, no retry, no backoff.
    ASSERT_EQ(probe.run([] { return Status::Ok; }), Status::Ok);
    const uint64_t clean_t0 = reader.clock().now();
    ASSERT_EQ(probe.run([] { return Status::Ok; }), Status::Ok);
    const uint64_t clean_ns = reader.clock().now() - clean_t0;
    EXPECT_EQ(probe.readAttempts(), 2u);
    EXPECT_EQ(probe.readRetries(), 0u);

    // Conflicted read: a writer critical section overlaps the first
    // attempt, so validation fails once and the retry must charge the
    // configured virtual-time backoff (not a host yield).
    bool conflicted = false;
    const uint64_t t0 = reader.clock().now();
    ASSERT_EQ(probe.run([&]() -> Status {
        if (!conflicted) {
            conflicted = true;
            writer_cs();
        }
        return Status::Ok;
    }),
              Status::Ok);
    const uint64_t conflict_ns = reader.clock().now() - t0;
    EXPECT_EQ(probe.readAttempts(), 4u);
    EXPECT_EQ(probe.readRetries(), 1u);
    EXPECT_GT(probe.readFailRatio(), 0.0);
    EXPECT_GE(conflict_ns, clean_ns + opt.retry_backoff_ns);
}

TEST(OptimisticReadBackoffTest, BackoffDoublesToCap)
{
    BackendNode be(1, testConfig());
    FrontendSession writer(SessionConfig::r(93));
    FrontendSession reader(SessionConfig::r(94));
    ASSERT_EQ(writer.connect(&be), Status::Ok);
    ASSERT_EQ(reader.connect(&be), Status::Ok);
    DsId id = 0;
    ASSERT_EQ(writer.createDs(1, "probe2", DsType::Bst, &id), Status::Ok);
    DsOptions opt;
    opt.shared = true;
    opt.retry_backoff_ns = 100;
    opt.retry_backoff_cap_ns = 400;
    opt.max_read_retries = 8;
    ProbeDs probe(reader, 1, id, opt);
    RemotePtr cell;
    ASSERT_EQ(writer.alloc(1, 64, &cell), Status::Ok);

    // Conflict on every attempt (a committed logWrite bumps the SN)
    // until the retry budget is spent.
    const uint64_t t0 = reader.clock().now();
    uint64_t body_runs = 0;
    EXPECT_EQ(probe.run([&]() -> Status {
        ++body_runs;
        const uint64_t v = body_runs;
        EXPECT_EQ(writer.writerLock(id, 1), Status::Ok);
        EXPECT_EQ(writer.logWrite(id, cell, &v, 8), Status::Ok);
        EXPECT_EQ(writer.writerUnlock(id, 1), Status::Ok);
        return Status::Ok;
    }),
              Status::Conflict);
    EXPECT_EQ(body_runs, 8u);
    EXPECT_EQ(probe.readRetries(), 8u);
    // Charged backoff: 100 + 200 + 400 + 400 + ... (doubling to the cap)
    // = 100 + 200 + 6 * 400 = 2700 ns at minimum.
    EXPECT_GE(reader.clock().now() - t0, 2700u);
}

} // namespace
} // namespace asymnvm
