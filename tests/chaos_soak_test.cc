/**
 * @file
 * Chaos soak: many seeded runs of the mixed-workload chaos harness
 * (src/check/chaos.h) over the transparent-failover cluster. Every seed
 * must finish with zero durability / SWMR violations and zero
 * availability violations (no operation fails while a promotable mirror
 * or a restartable node exists).
 *
 * Seed count defaults to 200 and is overridable via ASYMNVM_CHAOS_SEEDS
 * (the `chaos_smoke` ctest target runs a short configuration).
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "check/chaos.h"

namespace asymnvm {
namespace {

uint32_t
seedCount()
{
    const char *env = std::getenv("ASYMNVM_CHAOS_SEEDS");
    if (env != nullptr) {
        const long v = std::atol(env);
        if (v > 0)
            return static_cast<uint32_t>(v);
    }
    return 200;
}

TEST(ChaosSoakTest, AllSeedsHoldDurabilityAndAvailability)
{
    const uint32_t seeds = seedCount();
    uint64_t failovers = 0;
    uint64_t transient = 0;
    uint64_t permanent = 0;
    uint64_t mirror_deaths = 0;
    uint64_t retries = 0;
    uint64_t resends = 0;
    uint64_t audits = 0;
    for (uint32_t seed = 1; seed <= seeds; ++seed) {
        ChaosConfig cfg;
        cfg.seed = seed;
        const ChaosResult r = runChaosSoak(cfg);
        ASSERT_TRUE(r.ok) << "seed " << seed << ": " << r.error;
        ASSERT_EQ(r.ops_done, cfg.num_ops)
            << "seed " << seed << " stopped early: " << r.error;
        failovers += r.failovers;
        transient += r.transient_crashes;
        permanent += r.permanent_failures;
        mirror_deaths += r.mirror_crashes;
        retries += r.verb_retries;
        resends += r.rpc_resends;
        audits += r.audits;
    }
    // The chaos must actually have exercised every failure class across
    // the seed set, or the soak proves nothing.
    EXPECT_GT(transient, 0u);
    EXPECT_GT(permanent, 0u);
    EXPECT_GT(mirror_deaths, 0u);
    EXPECT_GT(failovers, 0u);
    EXPECT_GT(retries, 0u);
    EXPECT_GT(audits, seeds) << "every run audits at least once at the end";
    std::printf("chaos soak: %u seeds, %llu failovers (%llu transient "
                "crashes, %llu permanent, %llu mirror deaths), %llu verb "
                "retries, %llu rpc resends, %llu audits\n",
                seeds, static_cast<unsigned long long>(failovers),
                static_cast<unsigned long long>(transient),
                static_cast<unsigned long long>(permanent),
                static_cast<unsigned long long>(mirror_deaths),
                static_cast<unsigned long long>(retries),
                static_cast<unsigned long long>(resends),
                static_cast<unsigned long long>(audits));
}

TEST(ChaosSoakTest, RunsAreDeterministicPerSeed)
{
    ChaosConfig cfg;
    cfg.seed = 17;
    const ChaosResult a = runChaosSoak(cfg);
    const ChaosResult b = runChaosSoak(cfg);
    ASSERT_TRUE(a.ok) << a.error;
    EXPECT_EQ(a.ops_done, b.ops_done);
    EXPECT_EQ(a.failovers, b.failovers);
    EXPECT_EQ(a.transient_crashes, b.transient_crashes);
    EXPECT_EQ(a.permanent_failures, b.permanent_failures);
    EXPECT_EQ(a.mirror_crashes, b.mirror_crashes);
    EXPECT_EQ(a.verb_retries, b.verb_retries);
    EXPECT_EQ(a.rpc_resends, b.rpc_resends);
}

} // namespace
} // namespace asymnvm
