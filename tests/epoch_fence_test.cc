/**
 * @file
 * Epoch-fenced mirror promotion (DESIGN.md §12): the per-slot failover
 * epoch turns condemn/promote into a distributed decision — exactly one
 * session wins the promotion claim, losers observe the race, zombie
 * sessions carrying a stale epoch are fenced to the new incarnation, and
 * the keepalive lease-epoch check keeps a condemned incarnation from
 * re-admitting itself while another session's promotion is in flight.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "ds/hash_table.h"
#include "frontend/session.h"

namespace asymnvm {
namespace {

ClusterConfig
fenceCluster(uint32_t mirrors = 2)
{
    ClusterConfig cfg;
    cfg.num_backends = 1;
    cfg.mirrors_per_backend = mirrors;
    cfg.backend.nvm_size = 20ull << 20;
    cfg.backend.max_frontends = 4;
    cfg.backend.max_names = 16;
    cfg.backend.memlog_ring_size = 256ull << 10;
    cfg.backend.oplog_ring_size = 256ull << 10;
    cfg.transparent_failover = true;
    return cfg;
}

/** Advance both sessions' clocks past the primary's lease in sub-lease
 *  steps, renewing the surviving mirrors along the way (their keepalive
 *  agents outlive the primary's silence). */
void
jumpPastLease(Cluster &cluster, FrontendSession &a, FrontendSession &b)
{
    const uint64_t lease = cluster.keepAlive().leaseNs();
    for (int step = 0; step < 3; ++step) {
        a.clock().advance(lease / 2 + 1);
        b.clock().advance(lease / 2 + 1000);
        const uint64_t t = std::max(a.clock().now(), b.clock().now());
        for (MirrorNode *m : cluster.mirrorsOf(1))
            cluster.keepAlive().renew(m->id(), t);
    }
}

TEST(KeepAliveFenceTest, StaleEpochIsNeverReadmitted)
{
    KeepAliveService ka;
    EXPECT_TRUE(ka.join(1, NodeRole::BackEnd, 0, /*has_nvm=*/true,
                        kInvalidNode, /*epoch=*/1));
    ka.fenceBelow(1, 2);
    ka.leave(1);
    // The fenced incarnation can never re-register...
    EXPECT_FALSE(ka.join(1, NodeRole::BackEnd, 0, true, kInvalidNode, 1));
    EXPECT_FALSE(ka.isAlive(1, 0));
    // ...while the promoted successor (fence epoch) can.
    EXPECT_TRUE(ka.join(1, NodeRole::BackEnd, 0, true, kInvalidNode, 2));
    EXPECT_TRUE(ka.isAlive(1, 0));
    // The fence only ratchets upward.
    ka.fenceBelow(1, 1);
    EXPECT_EQ(ka.fenceOf(1), 2u);
}

TEST(KeepAliveFenceTest, OutOfOrderRenewalsNeverShortenTheLease)
{
    // Heartbeats carry their senders' clocks, and session clocks
    // diverge: a renewal arriving "from the past" must not roll the
    // lease back, or the next current-clock renewal would judge the
    // node lapsed and evict it for good (this is exactly how a
    // surviving mirror used to be lost mid-promotion under k sessions).
    KeepAliveService ka;
    const uint64_t lease = ka.leaseNs();
    ASSERT_TRUE(ka.join(9, NodeRole::Mirror, 0, true, /*mirror_of=*/1));
    ASSERT_TRUE(ka.renew(9, lease));         // fresh clock: until 2*lease
    ASSERT_TRUE(ka.renew(9, lease / 4));     // stale clock: no rollback
    ASSERT_TRUE(ka.renew(9, 2 * lease - 1)); // must still be alive
    EXPECT_TRUE(ka.isAlive(9, 2 * lease));
    // A genuinely lapsed node still evicts and stays evicted.
    EXPECT_FALSE(ka.renew(9, 5 * lease));
    EXPECT_FALSE(ka.isAlive(9, 5 * lease));
    EXPECT_FALSE(ka.renew(9, 5 * lease + 1));
}

TEST(EpochFenceTest, ExactlyOneSessionWinsThePromotionClaim)
{
    Cluster cluster(fenceCluster());
    auto a = cluster.makeSession(SessionConfig::rcb(1, 1 << 20, 16));
    auto b = cluster.makeSession(SessionConfig::rcb(1, 1 << 20, 16));
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    ASSERT_NE(a->config().session_id, b->config().session_id);
    EXPECT_EQ(cluster.slotEpoch(1), 1u);

    cluster.keepAlive().renew(1, 0);
    cluster.condemnBackend(1);
    // The condemned incarnation's epoch is fenced out of the namespace
    // the moment the death sentence lands.
    EXPECT_FALSE(cluster.keepAlive().join(1, NodeRole::BackEnd, 0, true,
                                          kInvalidNode,
                                          cluster.slotEpoch(1)));

    jumpPastLease(cluster, *a, *b);

    // A's probe claims the promotion (phase 1 of the CAS): the slot is
    // not serving yet, but the claim is A's.
    EXPECT_EQ(a->tryHeal(1), Status::Unavailable);
    EXPECT_TRUE(cluster.failoverEpochs().promotionInFlight(1));
    EXPECT_EQ(cluster.failoverEpochs().claimWinner(1),
              a->config().session_id);
    // While the claim is in flight, the dead incarnation cannot sneak
    // back in through the restart path.
    EXPECT_EQ(cluster.restartBackend(1, a->clock().now()),
              Status::Unavailable);

    // B's probe loses the race and backs off.
    EXPECT_EQ(b->tryHeal(1), Status::Unavailable);
    EXPECT_EQ(b->promotionCounters().at(1).promotions_lost, 1u);

    // A's next probe completes the promotion: epoch 2 serves.
    EXPECT_EQ(a->tryHeal(1), Status::Ok);
    EXPECT_EQ(a->promotionCounters().at(1).promotions_won, 1u);
    EXPECT_EQ(cluster.slotEpoch(1), 2u);
    EXPECT_FALSE(cluster.failoverEpochs().promotionInFlight(1));

    // B re-resolves: the fence reports its observed epoch as stale and
    // re-points it at the promoted incarnation.
    EXPECT_EQ(b->tryHeal(1), Status::Ok);
    EXPECT_GE(b->promotionCounters().at(1).stale_epoch_fenced, 1u);
    EXPECT_EQ(b->backendEpoch(1), 2u);

    // Exactly one promotion record, won by A.
    const auto hist = cluster.failoverEpochs().history();
    ASSERT_EQ(hist.size(), 1u);
    EXPECT_EQ(hist[0].node, 1u);
    EXPECT_EQ(hist[0].epoch, 2u);
    EXPECT_EQ(hist[0].winner_session, a->config().session_id);
}

TEST(EpochFenceTest, ZombieSessionIsFencedOntoTheNewIncarnation)
{
    Cluster cluster(fenceCluster());
    auto a = cluster.makeSession(SessionConfig::rcb(1, 1 << 20, 16));
    auto b = cluster.makeSession(SessionConfig::rcb(1, 1 << 20, 16));
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    HashTable ha, hb;
    ASSERT_EQ(HashTable::create(*a, 1, "fence_a", 64, &ha), Status::Ok);
    ASSERT_EQ(HashTable::create(*b, 1, "fence_b", 64, &hb), Status::Ok);
    for (uint64_t k = 1; k <= 10; ++k) {
        ASSERT_EQ(ha.put(k, Value::ofU64(k)), Status::Ok);
        ASSERT_EQ(hb.put(k, Value::ofU64(k * 3)), Status::Ok);
    }
    ASSERT_EQ(a->flushAll(), Status::Ok);
    ASSERT_EQ(b->flushAll(), Status::Ok);

    cluster.keepAlive().renew(1, std::max(a->clock().now(),
                                          b->clock().now()));
    BackendNode *old = cluster.backend(1);
    cluster.condemnBackend(1);
    jumpPastLease(cluster, *a, *b);

    // A alone rides its next op through the full failover path: wait out
    // what's left of the lease, claim, complete — one promotion.
    ASSERT_EQ(ha.put(11, Value::ofU64(11)), Status::Ok);
    EXPECT_EQ(a->promotionCounters().at(1).promotions_won, 1u);
    EXPECT_NE(cluster.backend(1), old);
    EXPECT_EQ(cluster.slotEpoch(1), 2u);

    // B slept through all of it: its verbs still target the retired
    // incarnation, which is parked fail-stopped — the write fails, the
    // fence flags B's stale epoch, and B re-resolves transparently.
    ASSERT_EQ(hb.put(11, Value::ofU64(33)), Status::Ok);
    EXPECT_GE(b->stats().retry.stale_epoch_fenced, 1u);
    EXPECT_EQ(b->backendEpoch(1), 2u);

    // Both sessions' data survived the promotion intact.
    ASSERT_EQ(a->flushAll(), Status::Ok);
    ASSERT_EQ(b->flushAll(), Status::Ok);
    for (uint64_t k = 1; k <= 10; ++k) {
        Value va, vb;
        ASSERT_EQ(ha.get(k, &va), Status::Ok);
        EXPECT_EQ(va.asU64(), k);
        ASSERT_EQ(hb.get(k, &vb), Status::Ok);
        EXPECT_EQ(vb.asU64(), k * 3);
    }
}

TEST(EpochFenceTest, StalledClaimIsTakenOverNotStranded)
{
    Cluster cluster(fenceCluster());
    auto a = cluster.makeSession(SessionConfig::rcb(1, 1 << 20, 16));
    auto b = cluster.makeSession(SessionConfig::rcb(1, 1 << 20, 16));
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);

    cluster.keepAlive().renew(1, 0);
    cluster.condemnBackend(1);
    jumpPastLease(cluster, *a, *b);

    // A claims the promotion, then goes silent (never polls again).
    EXPECT_EQ(a->tryHeal(1), Status::Unavailable);
    EXPECT_EQ(cluster.failoverEpochs().claimWinner(1),
              a->config().session_id);

    // B keeps polling; after the takeover grace period it inherits the
    // claim and completes the promotion itself.
    Status st = Status::Unavailable;
    for (int poll = 0; poll < 16 && st != Status::Ok; ++poll)
        st = b->tryHeal(1);
    EXPECT_EQ(st, Status::Ok);
    EXPECT_EQ(cluster.slotEpoch(1), 2u);
    EXPECT_GE(cluster.failoverEpochs().stats(1).takeovers, 1u);
    EXPECT_EQ(b->promotionCounters().at(1).promotions_won, 1u);

    // Still exactly one promotion record for the epoch.
    const auto hist = cluster.failoverEpochs().history();
    ASSERT_EQ(hist.size(), 1u);
    EXPECT_EQ(hist[0].epoch, 2u);
    EXPECT_EQ(hist[0].winner_session, b->config().session_id);
}

TEST(EpochFenceTest, ManualPromotionSupersedesAnInFlightClaim)
{
    Cluster cluster(fenceCluster());
    auto a = cluster.makeSession(SessionConfig::rcb(1, 1 << 20, 16));
    auto b = cluster.makeSession(SessionConfig::rcb(1, 1 << 20, 16));
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);

    cluster.keepAlive().renew(1, 0);
    cluster.condemnBackend(1);
    jumpPastLease(cluster, *a, *b);

    ASSERT_EQ(a->tryHeal(1), Status::Unavailable); // A claims
    // The harness promotes by hand (the Section 7.2 orchestration path):
    // the pending claim is cleared, the epoch bumps once.
    ASSERT_EQ(cluster.failBackendPermanently(1, a->clock().now()),
              Status::Ok);
    EXPECT_EQ(cluster.slotEpoch(1), 2u);
    EXPECT_FALSE(cluster.failoverEpochs().promotionInFlight(1));

    // A's completion poll finds its claim gone; it re-resolves to the
    // served slot without double-promoting.
    EXPECT_EQ(a->tryHeal(1), Status::Ok);
    EXPECT_EQ(a->promotionCounters().at(1).promotions_won, 0u);
    EXPECT_EQ(cluster.slotEpoch(1), 2u);
    const auto hist = cluster.failoverEpochs().history();
    ASSERT_EQ(hist.size(), 1u);
    EXPECT_EQ(hist[0].winner_session, 0u) << "manual promotions record "
                                             "no winning session";
}

} // namespace
} // namespace asymnvm
