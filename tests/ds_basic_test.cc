/**
 * @file
 * Correctness tests for Stack, Queue and HashTable across all system
 * modes (Naive, R, RC, RCB, Symmetric): functional behaviour, op-log
 * annulment, read-your-writes inside batches, persistence across
 * re-open, and randomized differential tests against STL models.
 */

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <stack>

#include "backend/backend_node.h"
#include "common/rand.h"
#include "ds/hash_table.h"
#include "ds/queue.h"
#include "ds/stack.h"
#include "frontend/session.h"

namespace asymnvm {
namespace {

BackendConfig
testConfig()
{
    BackendConfig cfg;
    cfg.nvm_size = 32ull << 20;
    cfg.max_frontends = 4;
    cfg.max_names = 16;
    cfg.memlog_ring_size = 512ull << 10;
    cfg.oplog_ring_size = 512ull << 10;
    cfg.block_size = 1024;
    return cfg;
}

/** Test across the paper's system configurations. */
struct ModeParam
{
    const char *name;
    SessionConfig (*make)(uint64_t);
};

SessionConfig
makeNaive(uint64_t id)
{
    return SessionConfig::naive(id);
}
SessionConfig
makeR(uint64_t id)
{
    return SessionConfig::r(id);
}
SessionConfig
makeRc(uint64_t id)
{
    return SessionConfig::rc(id, 1 << 20);
}
SessionConfig
makeRcb(uint64_t id)
{
    return SessionConfig::rcb(id, 1 << 20, 32);
}
SessionConfig
makeSym(uint64_t id)
{
    return SessionConfig::symmetricBase(id, false);
}
SessionConfig
makeSymB(uint64_t id)
{
    return SessionConfig::symmetricBase(id, true);
}

class DsModeTest : public ::testing::TestWithParam<ModeParam>
{
  protected:
    DsModeTest() : be(1, testConfig()), session(GetParam().make(77))
    {
        EXPECT_EQ(session.connect(&be), Status::Ok);
    }

    BackendNode be;
    FrontendSession session;
};

TEST_P(DsModeTest, StackLifoSemantics)
{
    Stack stack;
    ASSERT_EQ(Stack::create(session, 1, "s", &stack), Status::Ok);
    for (uint64_t i = 0; i < 100; ++i)
        ASSERT_EQ(stack.push(Value::ofU64(i)), Status::Ok);
    EXPECT_EQ(stack.size(), 100u);
    for (uint64_t i = 100; i-- > 0;) {
        Value v;
        ASSERT_EQ(stack.pop(&v), Status::Ok);
        EXPECT_EQ(v.asU64(), i);
    }
    Value v;
    EXPECT_EQ(stack.pop(&v), Status::NotFound);
    EXPECT_EQ(stack.size(), 0u);
}

TEST_P(DsModeTest, QueueFifoSemantics)
{
    Queue q;
    ASSERT_EQ(Queue::create(session, 1, "q", &q), Status::Ok);
    for (uint64_t i = 0; i < 100; ++i)
        ASSERT_EQ(q.enqueue(Value::ofU64(i)), Status::Ok);
    EXPECT_EQ(q.size(), 100u);
    for (uint64_t i = 0; i < 100; ++i) {
        Value v;
        ASSERT_EQ(q.dequeue(&v), Status::Ok);
        EXPECT_EQ(v.asU64(), i) << "FIFO order broken at " << i;
    }
    Value v;
    EXPECT_EQ(q.dequeue(&v), Status::NotFound);
}

TEST_P(DsModeTest, QueueInterleavedFifoAcrossBatches)
{
    Queue q;
    ASSERT_EQ(Queue::create(session, 1, "q2", &q), Status::Ok);
    std::deque<uint64_t> model;
    Rng rng(11);
    uint64_t next = 0;
    for (int i = 0; i < 500; ++i) {
        if (rng.nextBool(0.6)) {
            ASSERT_EQ(q.enqueue(Value::ofU64(next)), Status::Ok);
            model.push_back(next++);
        } else {
            Value v;
            const Status st = q.dequeue(&v);
            if (model.empty()) {
                EXPECT_EQ(st, Status::NotFound);
            } else {
                ASSERT_EQ(st, Status::Ok);
                EXPECT_EQ(v.asU64(), model.front());
                model.pop_front();
            }
        }
        EXPECT_EQ(q.size(), model.size());
    }
}

TEST_P(DsModeTest, StackRandomizedAgainstModel)
{
    Stack stack;
    ASSERT_EQ(Stack::create(session, 1, "s2", &stack), Status::Ok);
    std::stack<uint64_t> model;
    Rng rng(13);
    for (int i = 0; i < 500; ++i) {
        if (rng.nextBool(0.55)) {
            const uint64_t k = rng.next();
            ASSERT_EQ(stack.push(Value::ofU64(k)), Status::Ok);
            model.push(k);
        } else {
            Value v;
            const Status st = stack.pop(&v);
            if (model.empty()) {
                EXPECT_EQ(st, Status::NotFound);
            } else {
                ASSERT_EQ(st, Status::Ok);
                EXPECT_EQ(v.asU64(), model.top());
                model.pop();
            }
        }
    }
}

TEST_P(DsModeTest, HashTablePutGetErase)
{
    HashTable ht;
    ASSERT_EQ(HashTable::create(session, 1, "h", 256, &ht), Status::Ok);
    for (uint64_t k = 1; k <= 200; ++k)
        ASSERT_EQ(ht.put(k, Value::ofU64(k * 7)), Status::Ok);
    EXPECT_EQ(ht.size(), 200u);
    for (uint64_t k = 1; k <= 200; ++k) {
        Value v;
        ASSERT_EQ(ht.get(k, &v), Status::Ok) << "key " << k;
        EXPECT_EQ(v.asU64(), k * 7);
    }
    Value v;
    EXPECT_EQ(ht.get(9999, &v), Status::NotFound);
    // Update in place.
    ASSERT_EQ(ht.put(5, Value::ofU64(555)), Status::Ok);
    ASSERT_EQ(ht.get(5, &v), Status::Ok);
    EXPECT_EQ(v.asU64(), 555u);
    EXPECT_EQ(ht.size(), 200u);
    // Erase half.
    for (uint64_t k = 1; k <= 200; k += 2)
        ASSERT_EQ(ht.erase(k), Status::Ok);
    EXPECT_EQ(ht.size(), 100u);
    for (uint64_t k = 1; k <= 200; ++k)
        EXPECT_EQ(ht.contains(k), k % 2 == 0) << "key " << k;
    EXPECT_EQ(ht.erase(1), Status::NotFound);
}

TEST_P(DsModeTest, HashTableRandomizedAgainstModel)
{
    HashTable ht;
    ASSERT_EQ(HashTable::create(session, 1, "h2", 64, &ht), Status::Ok);
    std::map<uint64_t, uint64_t> model;
    Rng rng(17);
    for (int i = 0; i < 800; ++i) {
        const uint64_t key = rng.nextBounded(100);
        const double dice = rng.nextDouble();
        if (dice < 0.5) {
            const uint64_t val = rng.next();
            ASSERT_EQ(ht.put(key, Value::ofU64(val)), Status::Ok);
            model[key] = val;
        } else if (dice < 0.75) {
            const Status st = ht.erase(key);
            EXPECT_EQ(st, model.count(key) ? Status::Ok
                                           : Status::NotFound);
            model.erase(key);
        } else {
            Value v;
            const Status st = ht.get(key, &v);
            if (model.count(key)) {
                ASSERT_EQ(st, Status::Ok);
                EXPECT_EQ(v.asU64(), model[key]);
            } else {
                EXPECT_EQ(st, Status::NotFound);
            }
        }
    }
    EXPECT_EQ(ht.size(), model.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, DsModeTest,
    ::testing::Values(ModeParam{"Naive", makeNaive}, ModeParam{"R", makeR},
                      ModeParam{"RC", makeRc}, ModeParam{"RCB", makeRcb},
                      ModeParam{"Symmetric", makeSym},
                      ModeParam{"SymmetricB", makeSymB}),
    [](const auto &info) { return info.param.name; });

// ---------------------------------------------------------------------
// Annulment and persistence specifics (RCB-only behaviours)
// ---------------------------------------------------------------------

class DsBasicTest : public ::testing::Test
{
  protected:
    DsBasicTest() : be(1, testConfig()) {}
    BackendNode be;
};

TEST_F(DsBasicTest, StackAnnulmentAvoidsDataAreaTraffic)
{
    FrontendSession s(SessionConfig::rcb(1, 1 << 20, 1024));
    ASSERT_EQ(s.connect(&be), Status::Ok);
    Stack stack;
    ASSERT_EQ(Stack::create(s, 1, "s", &stack), Status::Ok);
    const uint64_t entries_before = be.replayedEntries();

    // Push/pop pairs inside one batch annul each other completely.
    for (int i = 0; i < 100; ++i) {
        ASSERT_EQ(stack.push(Value::ofU64(i)), Status::Ok);
        Value v;
        ASSERT_EQ(stack.pop(&v), Status::Ok);
        EXPECT_EQ(v.asU64(), static_cast<uint64_t>(i));
    }
    ASSERT_EQ(s.flushAll(), Status::Ok);
    EXPECT_EQ(be.replayedEntries(), entries_before)
        << "annulled pairs must not generate memory logs";
}

TEST_F(DsBasicTest, QueueAnnulmentServesPendingInOrder)
{
    FrontendSession s(SessionConfig::rcb(1, 1 << 20, 1024));
    ASSERT_EQ(s.connect(&be), Status::Ok);
    Queue q;
    ASSERT_EQ(Queue::create(s, 1, "q", &q), Status::Ok);
    ASSERT_EQ(q.enqueue(Value::ofU64(1)), Status::Ok);
    ASSERT_EQ(q.enqueue(Value::ofU64(2)), Status::Ok);
    Value v;
    ASSERT_EQ(q.dequeue(&v), Status::Ok);
    EXPECT_EQ(v.asU64(), 1u) << "annulment must preserve FIFO order";
}

TEST_F(DsBasicTest, StackSurvivesReopenFromAnotherSession)
{
    {
        FrontendSession s(SessionConfig::rcb(1, 1 << 20, 16));
        ASSERT_EQ(s.connect(&be), Status::Ok);
        Stack stack;
        ASSERT_EQ(Stack::create(s, 1, "persist", &stack), Status::Ok);
        for (uint64_t i = 0; i < 50; ++i)
            ASSERT_EQ(stack.push(Value::ofU64(i)), Status::Ok);
        ASSERT_EQ(s.flushAll(), Status::Ok);
        s.disconnect(&be);
    }
    FrontendSession s2(SessionConfig::rcb(2, 1 << 20, 16));
    ASSERT_EQ(s2.connect(&be), Status::Ok);
    Stack stack;
    ASSERT_EQ(Stack::open(s2, 1, "persist", &stack), Status::Ok);
    EXPECT_EQ(stack.size(), 50u);
    for (uint64_t i = 50; i-- > 0;) {
        Value v;
        ASSERT_EQ(stack.pop(&v), Status::Ok);
        EXPECT_EQ(v.asU64(), i);
    }
}

TEST_F(DsBasicTest, HashTableSurvivesReopen)
{
    {
        FrontendSession s(SessionConfig::rcb(1, 1 << 20, 16));
        ASSERT_EQ(s.connect(&be), Status::Ok);
        HashTable ht;
        ASSERT_EQ(HashTable::create(s, 1, "ht", 128, &ht), Status::Ok);
        for (uint64_t k = 0; k < 300; ++k)
            ASSERT_EQ(ht.put(k, Value::ofU64(k * k)), Status::Ok);
        ASSERT_EQ(s.flushAll(), Status::Ok);
        s.disconnect(&be);
    }
    FrontendSession s2(SessionConfig::rc(2, 1 << 20));
    ASSERT_EQ(s2.connect(&be), Status::Ok);
    HashTable ht;
    ASSERT_EQ(HashTable::open(s2, 1, "ht", &ht), Status::Ok);
    EXPECT_EQ(ht.size(), 300u);
    for (uint64_t k = 0; k < 300; ++k) {
        Value v;
        ASSERT_EQ(ht.get(k, &v), Status::Ok);
        EXPECT_EQ(v.asU64(), k * k);
    }
}

TEST_F(DsBasicTest, OpenWrongTypeRejected)
{
    FrontendSession s(SessionConfig::rcb(1, 1 << 20, 16));
    ASSERT_EQ(s.connect(&be), Status::Ok);
    Stack stack;
    ASSERT_EQ(Stack::create(s, 1, "typed", &stack), Status::Ok);
    Queue q;
    EXPECT_EQ(Queue::open(s, 1, "typed", &q), Status::InvalidArgument);
    HashTable ht;
    EXPECT_EQ(HashTable::open(s, 1, "typed", &ht),
              Status::InvalidArgument);
}

TEST_F(DsBasicTest, SharedHashTableSeqlockReadersSeeConsistentData)
{
    FrontendSession writer(SessionConfig::rcb(1, 1 << 20, 1));
    ASSERT_EQ(writer.connect(&be), Status::Ok);
    DsOptions shared;
    shared.shared = true;
    HashTable wht;
    ASSERT_EQ(HashTable::create(writer, 1, "sh", 64, &wht, shared),
              Status::Ok);
    for (uint64_t k = 0; k < 64; ++k)
        ASSERT_EQ(wht.put(k, Value::ofU64(k)), Status::Ok);
    ASSERT_EQ(writer.flushAll(), Status::Ok);

    FrontendSession reader(SessionConfig::rc(2, 1 << 20));
    ASSERT_EQ(reader.connect(&be), Status::Ok);
    HashTable rht;
    ASSERT_EQ(HashTable::open(reader, 1, "sh", &rht, shared), Status::Ok);
    for (uint64_t k = 0; k < 64; ++k) {
        Value v;
        ASSERT_EQ(rht.get(k, &v), Status::Ok);
        EXPECT_EQ(v.asU64(), k);
    }
    // The writer updates; the reader (whose cache holds stale copies)
    // must converge to the new values via seqlock invalidation.
    for (uint64_t k = 0; k < 64; ++k)
        ASSERT_EQ(wht.put(k, Value::ofU64(k + 1000)), Status::Ok);
    ASSERT_EQ(writer.flushAll(), Status::Ok);
    for (uint64_t k = 0; k < 64; ++k) {
        Value v;
        ASSERT_EQ(rht.get(k, &v), Status::Ok);
        EXPECT_EQ(v.asU64(), k + 1000) << "stale read for key " << k;
    }
}

TEST_F(DsBasicTest, StackRecoversAfterFrontendCrashMidBatch)
{
    FrontendSession s(SessionConfig::rcb(1, 1 << 20, 1024));
    ASSERT_EQ(s.connect(&be), Status::Ok);
    {
        Stack stack;
        ASSERT_EQ(Stack::create(s, 1, "crashy", &stack), Status::Ok);
        for (uint64_t i = 0; i < 20; ++i)
            ASSERT_EQ(stack.push(Value::ofU64(i)), Status::Ok);
        // Crash with everything still pending (only op logs persisted).
    }
    s.simulateCrash();
    Stack stack;
    ASSERT_EQ(Stack::open(s, 1, "crashy", &stack), Status::Ok);
    ASSERT_EQ(s.recover(), Status::Ok);
    // Re-open to reload the recovered shadows.
    Stack again;
    ASSERT_EQ(Stack::open(s, 1, "crashy", &again), Status::Ok);
    EXPECT_EQ(again.size(), 20u);
    Value v;
    ASSERT_EQ(again.pop(&v), Status::Ok);
    EXPECT_EQ(v.asU64(), 19u);
}

} // namespace
} // namespace asymnvm
