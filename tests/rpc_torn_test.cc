/**
 * @file
 * Regression tests for RFP-RPC integrity and exactly-once semantics: the
 * request checksum (a torn request is rejected and never executed), the
 * volatile seq-based dedup (a resent request is served from the stored
 * response without re-executing), and fault-driven resends through the
 * full RfpRpc client path.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>

#include "backend/backend_node.h"
#include "rdma/rpc.h"
#include "rdma/verbs.h"
#include "sim/clock.h"

namespace asymnvm {
namespace {

BackendConfig
smallConfig()
{
    BackendConfig cfg;
    cfg.nvm_size = 8ull << 20;
    cfg.max_frontends = 2;
    cfg.max_names = 8;
    cfg.memlog_ring_size = 64ull << 10;
    cfg.oplog_ring_size = 64ull << 10;
    return cfg;
}

class RpcTornTest : public ::testing::Test
{
  protected:
    RpcTornTest() : be(1, smallConfig()), verbs(&clock, &lat)
    {
        verbs.attach(1, be.rdmaTarget());
        EXPECT_EQ(be.registerFrontend(7, &slot), Status::Ok);
    }

    /** Write a well-formed request (valid checksum) into the ring. */
    void putRequest(RpcOp op, uint64_t seq, uint64_t arg0)
    {
        RpcRequest req{};
        req.magic = kRpcReqMagic;
        req.op = static_cast<uint32_t>(op);
        req.seq = seq;
        req.args[0] = arg0;
        req.checksum = rpcRequestChecksum(req, {});
        be.nvm().write(be.layout().rpcReqRingOff(slot), &req, sizeof(req));
        be.nvm().persist();
    }

    RpcResponse response()
    {
        RpcResponse resp{};
        be.nvm().read(be.layout().rpcRespRingOff(slot), &resp,
                      sizeof(resp));
        return resp;
    }

    BackendNode be;
    SimClock clock;
    LatencyModel lat;
    Verbs verbs;
    uint32_t slot = 0;
};

TEST_F(RpcTornTest, TornRequestIsRejectedWithoutExecuting)
{
    putRequest(RpcOp::AllocBlocks, /*seq=*/1, /*nblocks=*/2);
    // Tear one payload byte of the landed request (a torn RDMA_Write).
    const uint64_t victim = be.layout().rpcReqRingOff(slot) +
                            offsetof(RpcRequest, args);
    const uint64_t bits = be.nvm().read64(victim) ^ 0xff;
    be.nvm().write(victim, &bits, sizeof(bits));
    be.nvm().persist();

    const uint64_t calls_before = be.rpcCalls();
    EXPECT_EQ(be.handleRpc(slot), Status::Corruption);
    EXPECT_EQ(be.rpcCalls(), calls_before)
        << "a torn request must not execute";

    // The client rewrites the same request; now it executes exactly once.
    putRequest(RpcOp::AllocBlocks, /*seq=*/1, /*nblocks=*/2);
    ASSERT_EQ(be.handleRpc(slot), Status::Ok);
    EXPECT_EQ(be.rpcCalls(), calls_before + 1);
    const RpcResponse resp = response();
    EXPECT_EQ(resp.seq, 1u);
    EXPECT_EQ(static_cast<Status>(resp.status), Status::Ok);
    EXPECT_TRUE(be.allocator().isAllocated(resp.rets[0]));
}

TEST_F(RpcTornTest, DuplicateSeqServedFromStoredResponse)
{
    putRequest(RpcOp::AllocBlocks, /*seq=*/5, /*nblocks=*/1);
    ASSERT_EQ(be.handleRpc(slot), Status::Ok);
    const RpcResponse first = response();
    ASSERT_EQ(static_cast<Status>(first.status), Status::Ok);

    // The response is "lost"; the client resends the same seq. The
    // back-end must answer from the stored response without allocating
    // a second region.
    const uint64_t calls_before = be.rpcCalls();
    putRequest(RpcOp::AllocBlocks, /*seq=*/5, /*nblocks=*/1);
    ASSERT_EQ(be.handleRpc(slot), Status::Ok);
    EXPECT_EQ(be.rpcCalls(), calls_before) << "dedup must not re-execute";
    const RpcResponse again = response();
    EXPECT_EQ(again.seq, first.seq);
    EXPECT_EQ(again.rets[0], first.rets[0])
        << "the repeat answer must be the original one";

    // A new seq executes normally again.
    putRequest(RpcOp::AllocBlocks, /*seq=*/6, /*nblocks=*/1);
    ASSERT_EQ(be.handleRpc(slot), Status::Ok);
    EXPECT_EQ(be.rpcCalls(), calls_before + 1);
    EXPECT_NE(response().rets[0], first.rets[0]);
}

TEST_F(RpcTornTest, ClientResendsUnderFaultsExactlyOnce)
{
    // Drive the full RfpRpc client against an injected drop storm. The
    // checksum + seq-dedup pair must keep every call exactly-once: the
    // number of allocations equals the number of Ok calls.
    RfpRpc rpc(&verbs, &be, slot);
    FaultConfig fc;
    fc.drop_rate = 0.25;
    fc.drop_after_frac = 1.0; // payload lands, completion lost -> resend
    be.faults().configure(fc, /*seed=*/31);

    uint64_t allocated = 0;
    for (int i = 0; i < 40; ++i) {
        uint64_t rets[4] = {};
        const uint64_t args[1] = {1};
        const Status st = rpc.call(RpcOp::AllocBlocks, args, {}, rets);
        ASSERT_EQ(st, Status::Ok) << "call " << i;
        ++allocated;
        EXPECT_TRUE(be.allocator().isAllocated(rets[0]));
    }
    be.faults().disarm();
    EXPECT_EQ(be.rpcCalls(), allocated)
        << "resends must never double-execute";
    EXPECT_GT(rpc.resends() + verbs.retryStats().totalRetries(), 0u)
        << "the storm should have forced recovery work";
}

TEST_F(RpcTornTest, OversizedPayloadLengthRejected)
{
    RpcRequest req{};
    req.magic = kRpcReqMagic;
    req.op = static_cast<uint32_t>(RpcOp::AllocBlocks);
    req.seq = 9;
    req.payload_len = 0x7fffffff; // torn length field
    req.checksum = rpcRequestChecksum(req, {});
    be.nvm().write(be.layout().rpcReqRingOff(slot), &req, sizeof(req));
    be.nvm().persist();
    EXPECT_EQ(be.handleRpc(slot), Status::Corruption)
        << "a length beyond the ring must not be trusted";
}

} // namespace
} // namespace asymnvm
