/**
 * @file
 * Unit tests for the common substrate: remote pointers, values, CRC32-C,
 * the PRNG, the Zipf sampler, and the statistics helpers.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/checksum.h"
#include "common/hash.h"
#include "common/rand.h"
#include "common/stats.h"
#include "common/types.h"
#include "common/zipf.h"

namespace asymnvm {
namespace {

TEST(RemotePtrTest, RawRoundTrip)
{
    const RemotePtr p(7, 0x123456789aULL);
    const RemotePtr q = RemotePtr::fromRaw(p.raw());
    EXPECT_EQ(q.backend, 7);
    EXPECT_EQ(q.offset, 0x123456789aULL);
    EXPECT_EQ(p, q);
}

TEST(RemotePtrTest, NullSemantics)
{
    EXPECT_TRUE(kNullPtr.isNull());
    EXPECT_TRUE(RemotePtr(3, 0).isNull());
    EXPECT_FALSE(RemotePtr(0, 8).isNull());
    EXPECT_EQ(RemotePtr::fromRaw(0), kNullPtr);
}

TEST(RemotePtrTest, ArithmeticKeepsBackend)
{
    const RemotePtr p(2, 100);
    const RemotePtr q = p + 28;
    EXPECT_EQ(q.backend, 2);
    EXPECT_EQ(q.offset, 128u);
}

TEST(RemotePtrTest, MaxOffsetSurvivesEncoding)
{
    const uint64_t max_off = (1ULL << 48) - 1;
    const RemotePtr p(0xffff, max_off);
    const RemotePtr q = RemotePtr::fromRaw(p.raw());
    EXPECT_EQ(q.backend, 0xffff);
    EXPECT_EQ(q.offset, max_off);
}

TEST(ValueTest, U64RoundTrip)
{
    const Value v = Value::ofU64(0xdeadbeefcafeULL);
    EXPECT_EQ(v.asU64(), 0xdeadbeefcafeULL);
}

TEST(ValueTest, StringRoundTrip)
{
    const Value v = Value::ofString("asymnvm");
    EXPECT_EQ(v.asString(), "asymnvm");
}

TEST(ValueTest, StringTruncatesTo64Bytes)
{
    const std::string long_str(100, 'x');
    const Value v = Value::ofString(long_str);
    EXPECT_EQ(v.asString(), std::string(64, 'x'));
}

TEST(ValueTest, EqualityComparesAllBytes)
{
    Value a = Value::ofU64(1);
    Value b = Value::ofU64(1);
    EXPECT_EQ(a, b);
    b.bytes[63] = 1;
    EXPECT_NE(a, b);
}

TEST(ChecksumTest, KnownVector)
{
    // CRC32-C("123456789") is the classic check value.
    EXPECT_EQ(crc32c("123456789", 9), 0xe3069283u);
}

TEST(ChecksumTest, EmptyInput)
{
    EXPECT_EQ(crc32c("", 0), 0u);
}

TEST(ChecksumTest, DetectsSingleBitFlip)
{
    uint8_t buf[64] = {};
    for (int i = 0; i < 64; ++i)
        buf[i] = static_cast<uint8_t>(i);
    const uint32_t base = crc32c(buf, sizeof(buf));
    for (int byte = 0; byte < 64; byte += 7) {
        buf[byte] ^= 0x10;
        EXPECT_NE(crc32c(buf, sizeof(buf)), base)
            << "flip at byte " << byte << " undetected";
        buf[byte] ^= 0x10;
    }
}

TEST(ChecksumTest, IncrementalMatchesOneShot)
{
    const std::string data = "the quick brown fox jumps over the lazy dog";
    const uint32_t whole = crc32c(data.data(), data.size());
    const uint32_t part1 = crc32c(data.data(), 10);
    const uint32_t part2 = crc32c(data.data() + 10, data.size() - 10,
                                  part1);
    EXPECT_EQ(whole, part2);
}

TEST(RngTest, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, BoundedStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(RngTest, DoubleInUnitInterval)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(ZipfTest, RanksInRange)
{
    ZipfGenerator zipf(1000, 0.99);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(zipf.next(), 1000u);
}

TEST(ZipfTest, SkewConcentratesMass)
{
    // At theta = 0.99, the hottest 10% of items should absorb well over
    // half the accesses; at theta = 0.5 much less so.
    auto hot_fraction = [](double theta) {
        ZipfGenerator zipf(1000, theta, 7);
        uint64_t hot = 0;
        const int n = 20000;
        for (int i = 0; i < n; ++i)
            hot += zipf.next() < 100 ? 1 : 0;
        return static_cast<double>(hot) / n;
    };
    const double skewed = hot_fraction(0.99);
    const double mild = hot_fraction(0.5);
    EXPECT_GT(skewed, 0.55);
    EXPECT_GT(skewed, mild + 0.15);
}

TEST(HashTest, Fnv1aNeverZeroAndStable)
{
    EXPECT_NE(fnv1a64(""), 0u);
    EXPECT_EQ(fnv1a64("asymnvm"), fnv1a64("asymnvm"));
    EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
}

TEST(HistogramTest, PercentilesOrdered)
{
    Histogram h;
    for (uint64_t i = 1; i <= 1000; ++i)
        h.record(i * 10);
    EXPECT_EQ(h.count(), 1000u);
    EXPECT_LE(h.percentile(50), h.percentile(99));
    EXPECT_LE(h.percentile(99), h.max());
    EXPECT_NEAR(h.mean(), 5005.0, 1.0);
}

TEST(HistogramTest, MergeAccumulates)
{
    Histogram a, b;
    a.record(100);
    b.record(200);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(a.max(), 200u);
}

TEST(HistogramTest, InterpolatedPercentilesAgainstKnownDistribution)
{
    // Uniform 1..10000, one sample each: percentile p should come out
    // near p% of the range. The log-bucket layout alone only resolves
    // powers of two; interpolation inside the containing bucket must do
    // substantially better than a bucket bound.
    Histogram h;
    for (uint64_t v = 1; v <= 10000; ++v)
        h.record(v);
    EXPECT_NEAR(static_cast<double>(h.percentileInterp(50)), 5000.0,
                900.0);
    EXPECT_NEAR(static_cast<double>(h.percentileInterp(99)), 9900.0,
                600.0);
    EXPECT_NEAR(static_cast<double>(h.percentileInterp(99.9)), 9990.0,
                600.0);
    // Ordering and clamping invariants.
    EXPECT_LE(h.percentileInterp(50), h.percentileInterp(99));
    EXPECT_LE(h.percentileInterp(99), h.percentileInterp(99.9));
    EXPECT_LE(h.percentileInterp(99.9), h.max());
    EXPECT_EQ(h.percentileInterp(100), h.max());
    // The bucket-bound percentile stays what existing tables print.
    EXPECT_EQ(h.percentile(50), (1ULL << 13) - 1);
    EXPECT_EQ(Histogram{}.percentileInterp(99), 0u);
}

TEST(HistogramTest, MergeEqualsRecordingUnion)
{
    // Merging two histograms must answer percentiles exactly as if every
    // sample had been recorded into one.
    Histogram a, b, all;
    for (uint64_t v = 1; v <= 3000; ++v) {
        ((v % 3 == 0) ? a : b).record(v * 7);
        all.record(v * 7);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_EQ(a.max(), all.max());
    EXPECT_DOUBLE_EQ(a.mean(), all.mean());
    for (const double p : {10.0, 50.0, 90.0, 99.0, 99.9}) {
        EXPECT_EQ(a.percentile(p), all.percentile(p)) << "p=" << p;
        EXPECT_EQ(a.percentileInterp(p), all.percentileInterp(p))
            << "p=" << p;
    }
}

TEST(ThroughputTest, KopsComputedAgainstVirtualTime)
{
    Throughput t{1000, 1000000}; // 1000 ops in 1 ms of virtual time
    EXPECT_DOUBLE_EQ(t.kops(), 1000.0);
    EXPECT_DOUBLE_EQ(t.mops(), 1.0);
    const Throughput zero{100, 0};
    EXPECT_DOUBLE_EQ(zero.kops(), 0.0);
}

} // namespace
} // namespace asymnvm
