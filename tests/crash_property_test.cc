/**
 * @file
 * Property-based crash-consistency tests: randomized workloads with
 * failures injected at randomized verb counts, followed by the full
 * recovery protocol and a durability audit.
 *
 * The invariant under test is the paper's durability contract:
 *  - every operation acknowledged at a group-commit boundary (a
 *    successful flushAll) MUST survive any combination of front-end
 *    crash, back-end crash (including torn in-flight writes), restart
 *    and mirror promotion;
 *  - operations issued after the last commit MAY survive (their op logs
 *    may have persisted), but whatever survives must be value-correct —
 *    no corruption, no phantom keys.
 */

#include <gtest/gtest.h>

#include <map>

#include "cluster/cluster.h"
#include "common/rand.h"
#include "ds/bptree.h"
#include "ds/hash_table.h"
#include "ds/skiplist.h"
#include "frontend/session.h"

namespace asymnvm {
namespace {

ClusterConfig
propCluster()
{
    ClusterConfig cfg;
    cfg.num_backends = 1;
    cfg.mirrors_per_backend = 1;
    cfg.backend.nvm_size = 32ull << 20;
    cfg.backend.max_frontends = 4;
    cfg.backend.max_names = 16;
    cfg.backend.memlog_ring_size = 512ull << 10;
    cfg.backend.oplog_ring_size = 512ull << 10;
    return cfg;
}

struct CrashParam
{
    uint64_t seed;
    uint32_t batch;
    bool promote; //!< recover via mirror promotion instead of restart
};

class CrashPropertyTest : public ::testing::TestWithParam<CrashParam>
{
};

template <typename DS>
Status
dsPutHelper(DS &ds, Key k, uint64_t val)
{
    if constexpr (requires(Value v) { ds.put(k, v); })
        return ds.put(k, Value::ofU64(val));
    else
        return ds.insert(k, Value::ofU64(val));
}

template <typename DS>
Status
dsGetHelper(DS &ds, Key k, Value *out)
{
    if constexpr (requires { ds.get(k, out); })
        return ds.get(k, out);
    else
        return ds.find(k, out);
}

/**
 * Drive a keyed structure with a random put/erase workload, crash the
 * back-end at a random verb, recover, and audit against the model.
 */
template <typename DS>
void
runCrashAudit(const CrashParam &param)
{
    Cluster cluster(propCluster());
    auto s = cluster.makeSession(
        SessionConfig::rcb(10 + param.seed, 256 << 10, param.batch));
    ASSERT_NE(s, nullptr);

    DS ds;
    Status st;
    if constexpr (std::is_same_v<DS, HashTable>)
        st = HashTable::create(*s, 1, "prop", 256, &ds);
    else
        st = DS::create(*s, 1, "prop", &ds);
    ASSERT_EQ(st, Status::Ok);

    Rng rng(param.seed);
    // Model of committed state (as of the last successful flush) and of
    // everything issued (upper bound on what may survive).
    std::map<Key, uint64_t> committed;
    std::map<Key, uint64_t> issued;
    auto apply = [](std::map<Key, uint64_t> &m, Key k, uint64_t val,
                    bool is_erase) {
        if (is_erase)
            m.erase(k);
        else
            m[k] = val;
    };

    // Arm the crash somewhere in the middle of the run.
    const uint64_t crash_after = 100 + rng.nextBounded(1200);
    cluster.backend(1)->failure().armCrashAfterVerbs(crash_after,
                                                     param.seed);

    bool crashed = false;
    // The operation in flight when the crash fires may or may not have
    // persisted its operation log: its effect is allowed either way.
    Key attempt_key = 0;
    uint64_t attempt_val = 0;
    bool attempt_erase = false;
    for (int i = 0; i < 20000 && !crashed; ++i) {
        const Key key = 1 + rng.nextBounded(300);
        const bool is_erase = rng.nextBool(0.2);
        const uint64_t val = rng.next();
        attempt_key = key;
        attempt_val = val;
        attempt_erase = is_erase;
        Status op_st;
        if (is_erase) {
            op_st = ds.erase(key);
            if (op_st == Status::NotFound)
                op_st = Status::Ok;
        } else {
            op_st = dsPutHelper(ds, key, val);
        }
        if (!ok(op_st)) {
            crashed = true;
            break;
        }
        apply(issued, key, val, is_erase);
        if (s->opsInBatch() == 0) {
            // A group commit just succeeded: everything issued is now
            // guaranteed durable.
            committed = issued;
        }
        if (i % 97 == 0) {
            const Status fst = s->flushAll();
            if (!ok(fst)) {
                crashed = true;
                break;
            }
            committed = issued;
        }
    }
    ASSERT_TRUE(crashed) << "crash never fired; raise the op budget";

    // Settle the device and recover: restart or mirror promotion.
    cluster.backend(1)->nvm().crash();
    if (param.promote) {
        ASSERT_EQ(cluster.failBackendPermanently(1, s->clock().now()),
                  Status::Ok);
    } else {
        ASSERT_EQ(cluster.restartBackend(1), Status::Ok);
    }
    s->simulateCrash();
    ASSERT_EQ(s->failover(1, cluster.backend(1)), Status::Ok);
    DS reopened;
    ASSERT_EQ(DS::open(*s, 1, "prop", &reopened), Status::Ok);
    ASSERT_EQ(s->recover(), Status::Ok);

    DS audit;
    ASSERT_EQ(DS::open(*s, 1, "prop", &audit), Status::Ok);
    // 1. Every committed key/value must be present and correct...
    for (const auto &[key, val] : committed) {
        Value v;
        const Status got = dsGetHelper(audit, key, &v);
        if (got == Status::NotFound) {
            // ...unless a post-commit (op-logged) erase replayed it away
            // or the in-flight erase landed.
            const bool erased_in_flight =
                attempt_erase && key == attempt_key;
            ASSERT_TRUE(issued.count(key) == 0 || erased_in_flight)
                << "committed key " << key << " lost (seed "
                << param.seed << ")";
            continue;
        }
        ASSERT_EQ(got, Status::Ok) << "audit read failed for " << key;
        // A post-commit op-log for the same key may have replayed over
        // the committed value (including the in-flight op); any of
        // those values is correct.
        const bool matches_committed = v.asU64() == val;
        const bool matches_issued =
            issued.count(key) && v.asU64() == issued.at(key);
        const bool matches_attempt = !attempt_erase &&
                                     key == attempt_key &&
                                     v.asU64() == attempt_val;
        ASSERT_TRUE(matches_committed || matches_issued ||
                    matches_attempt)
            << "key " << key << " corrupted (seed " << param.seed << ")";
    }
    // 2. No phantom keys: everything present was issued at some point.
    for (const auto &[key, val] : issued) {
        Value v;
        const Status got = dsGetHelper(audit, key, &v);
        if (got == Status::Ok && !(key == attempt_key)) {
            EXPECT_EQ(v.asU64(), val)
                << "surviving key " << key << " has a phantom value";
        }
    }
    // 3. The structure stays fully usable after recovery.
    ASSERT_EQ(dsPutHelper(audit, 9999, 4242), Status::Ok);
    ASSERT_EQ(s->flushAll(), Status::Ok);
    Value v;
    ASSERT_EQ(dsGetHelper(audit, 9999, &v), Status::Ok);
    EXPECT_EQ(v.asU64(), 4242u);
}

TEST_P(CrashPropertyTest, HashTableSurvivesRandomizedCrash)
{
    runCrashAudit<HashTable>(GetParam());
}

TEST_P(CrashPropertyTest, BpTreeSurvivesRandomizedCrash)
{
    runCrashAudit<BpTree>(GetParam());
}

TEST_P(CrashPropertyTest, SkipListSurvivesRandomizedCrash)
{
    runCrashAudit<SkipList>(GetParam());
}

/**
 * simulateCrash() models a front-end reboot: every piece of volatile
 * session state dies with the process, including the per-structure
 * seqlock SN shadow. A survivor there would make the reborn front-end
 * skip the cache invalidation a concurrent replay demands.
 */
TEST(FrontendCrashStateTest, SimulateCrashDropsSeqlockObservations)
{
    Cluster cl(propCluster());
    auto s = cl.makeSession(SessionConfig::rc(1, 256ull << 10));
    HashTable ht;
    ASSERT_EQ(HashTable::create(*s, 1, "sn", 16, &ht), Status::Ok);
    ASSERT_EQ(ht.put(1, Value::ofU64(42)), Status::Ok);

    uint64_t sn = 0;
    ASSERT_EQ(s->readerLock(ht.id(), 1, &sn), Status::Ok);
    ASSERT_TRUE(s->readerValidate(ht.id(), 1, sn));
    ASSERT_GT(s->seqlockObservations(), 0u);

    s->simulateCrash();
    EXPECT_EQ(s->seqlockObservations(), 0u);
}

/**
 * A group commit that fails mid-flight (back-end died under the
 * transaction write) must NOT act committed: the writer locks stay
 * held for the recovery protocol to account for, and the post-flush
 * publication hooks (the MV root swap) must not run — running them
 * would publish a root whose backing batch never became durable.
 */
TEST(FrontendCrashStateTest, FailedCommitKeepsLocksAndSkipsPublish)
{
    Cluster cl(propCluster());
    auto s = cl.makeSession(SessionConfig::rcb(1, 256ull << 10, 64));
    HashTable ht;
    DsOptions shared;
    shared.shared = true; // writer locks engage only on shared handles
    ASSERT_EQ(HashTable::create(*s, 1, "fc", 16, &ht, shared), Status::Ok);
    ASSERT_EQ(s->persistentFence(), Status::Ok);

    ASSERT_EQ(ht.put(7, Value::ofU64(7)), Status::Ok);
    ASSERT_TRUE(s->holdsWriterLock(ht.id(), 1));
    bool published = false;
    s->setPostFlushHook(ht.id(), 1, [&] { published = true; });

    cl.backend(1)->failure().armCrashAfterVerbs(0);
    EXPECT_NE(s->flushAll(), Status::Ok);
    EXPECT_FALSE(published);
    EXPECT_TRUE(s->holdsWriterLock(ht.id(), 1));
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, CrashPropertyTest,
    ::testing::Values(CrashParam{1, 1, false}, CrashParam{2, 16, false},
                      CrashParam{3, 64, false}, CrashParam{4, 256, false},
                      CrashParam{5, 16, true}, CrashParam{6, 64, true},
                      CrashParam{7, 1, true}, CrashParam{8, 128, false}),
    [](const auto &info) {
        return "seed" + std::to_string(info.param.seed) + "_batch" +
               std::to_string(info.param.batch) +
               (info.param.promote ? "_promote" : "_restart");
    });

} // namespace
} // namespace asymnvm
