/**
 * @file
 * Tests for the variable-size BlobStore (inline and out-of-line blobs,
 * end-to-end checksums, reuse of freed payloads, crash recovery) and
 * for the range-scan APIs of BpTree and SkipList.
 */

#include <gtest/gtest.h>

#include <map>

#include "backend/backend_node.h"
#include "common/rand.h"
#include "ds/blob_store.h"
#include "ds/bptree.h"
#include "ds/skiplist.h"
#include "frontend/session.h"

namespace asymnvm {
namespace {

BackendConfig
testConfig()
{
    BackendConfig cfg;
    cfg.nvm_size = 64ull << 20;
    cfg.max_frontends = 4;
    cfg.max_names = 16;
    cfg.memlog_ring_size = 2ull << 20;
    cfg.oplog_ring_size = 1ull << 20;
    return cfg;
}

class BlobStoreTest : public ::testing::Test
{
  protected:
    BlobStoreTest()
        : be(1, testConfig()), s(SessionConfig::rcb(1, 1 << 20, 16))
    {
        EXPECT_EQ(s.connect(&be), Status::Ok);
        EXPECT_EQ(BlobStore::create(s, 1, "blobs", 256, &store),
                  Status::Ok);
    }

    std::vector<uint8_t> makeBlob(uint32_t len, uint8_t seed)
    {
        std::vector<uint8_t> b(len);
        for (uint32_t i = 0; i < len; ++i)
            b[i] = static_cast<uint8_t>(seed + i * 7);
        return b;
    }

    BackendNode be;
    FrontendSession s;
    BlobStore store;
};

TEST_F(BlobStoreTest, SmallBlobInlineRoundTrip)
{
    ASSERT_EQ(store.put(1, "tiny payload"), Status::Ok);
    std::vector<uint8_t> out;
    ASSERT_EQ(store.get(1, &out), Status::Ok);
    EXPECT_EQ(std::string(out.begin(), out.end()), "tiny payload");
    uint32_t len = 0;
    ASSERT_EQ(store.length(1, &len), Status::Ok);
    EXPECT_EQ(len, 12u);
}

TEST_F(BlobStoreTest, LargeBlobRoundTrip)
{
    // The paper's industry traces carry values up to 8 KB.
    const auto blob = makeBlob(8192, 3);
    ASSERT_EQ(store.put(2, blob.data(), 8192), Status::Ok);
    ASSERT_EQ(s.flushAll(), Status::Ok);
    std::vector<uint8_t> out;
    ASSERT_EQ(store.get(2, &out), Status::Ok);
    EXPECT_EQ(out, blob);
}

TEST_F(BlobStoreTest, OverwriteFreesOldPayload)
{
    const auto big = makeBlob(4096, 1);
    ASSERT_EQ(store.put(3, big.data(), 4096), Status::Ok);
    const auto small = makeBlob(100, 2);
    ASSERT_EQ(store.put(3, small.data(), 100), Status::Ok);
    ASSERT_EQ(s.flushAll(), Status::Ok);
    std::vector<uint8_t> out;
    ASSERT_EQ(store.get(3, &out), Status::Ok);
    EXPECT_EQ(out, small);
}

TEST_F(BlobStoreTest, EraseFreesAndRemoves)
{
    const auto blob = makeBlob(2048, 9);
    ASSERT_EQ(store.put(4, blob.data(), 2048), Status::Ok);
    ASSERT_EQ(store.erase(4), Status::Ok);
    std::vector<uint8_t> out;
    EXPECT_EQ(store.get(4, &out), Status::NotFound);
    EXPECT_EQ(store.erase(4), Status::NotFound);
}

TEST_F(BlobStoreTest, ChecksumDetectsTornPayload)
{
    const auto blob = makeBlob(4096, 5);
    ASSERT_EQ(store.put(5, blob.data(), 4096), Status::Ok);
    ASSERT_EQ(s.flushAll(), Status::Ok);
    // Corrupt the out-of-line payload behind the framework's back
    // (simulating a torn large write the descriptor CRC must catch).
    Value v;
    ASSERT_EQ(store.index().get(5, &v), Status::Ok);
    uint64_t payload_raw;
    std::memcpy(&payload_raw, v.bytes.data(), 8);
    ASSERT_NE(payload_raw, 0u);
    const uint64_t off = RemotePtr::fromRaw(payload_raw).offset;
    uint8_t garbage = 0xff;
    be.nvm().write(off + 100, &garbage, 1);
    be.nvm().persist();
    s.cache().clear();
    std::vector<uint8_t> out;
    EXPECT_EQ(store.get(5, &out), Status::Corruption);
}

TEST_F(BlobStoreTest, RandomizedSizesAgainstModel)
{
    std::map<Key, std::vector<uint8_t>> model;
    Rng rng(11);
    for (int i = 0; i < 300; ++i) {
        const Key key = 1 + rng.nextBounded(40);
        const double dice = rng.nextDouble();
        if (dice < 0.6) {
            // Sizes spanning the paper's 64 B..8 KB range.
            const uint32_t len =
                static_cast<uint32_t>(16 + rng.nextBounded(8176));
            auto blob = makeBlob(len, static_cast<uint8_t>(rng.next()));
            ASSERT_EQ(store.put(key, blob.data(), len), Status::Ok);
            model[key] = std::move(blob);
        } else if (dice < 0.8) {
            const Status st = store.erase(key);
            EXPECT_EQ(st, model.count(key) ? Status::Ok
                                           : Status::NotFound);
            model.erase(key);
        } else {
            std::vector<uint8_t> out;
            const Status st = store.get(key, &out);
            if (model.count(key)) {
                ASSERT_EQ(st, Status::Ok);
                EXPECT_EQ(out, model[key]);
            } else {
                EXPECT_EQ(st, Status::NotFound);
            }
        }
    }
    ASSERT_EQ(s.flushAll(), Status::Ok);
    EXPECT_EQ(store.size(), model.size());
}

TEST_F(BlobStoreTest, SurvivesReopen)
{
    const auto blob = makeBlob(3000, 7);
    ASSERT_EQ(store.put(6, blob.data(), 3000), Status::Ok);
    ASSERT_EQ(store.put(7, "small"), Status::Ok);
    ASSERT_EQ(s.flushAll(), Status::Ok);
    s.disconnect(&be);

    FrontendSession s2(SessionConfig::rc(2, 1 << 20));
    ASSERT_EQ(s2.connect(&be), Status::Ok);
    BlobStore reopened;
    ASSERT_EQ(BlobStore::open(s2, 1, "blobs", &reopened), Status::Ok);
    std::vector<uint8_t> out;
    ASSERT_EQ(reopened.get(6, &out), Status::Ok);
    EXPECT_EQ(out, blob);
    ASSERT_EQ(reopened.get(7, &out), Status::Ok);
    EXPECT_EQ(std::string(out.begin(), out.end()), "small");
}

TEST_F(BlobStoreTest, OversizedBlobRejected)
{
    std::vector<uint8_t> too_big(BlobStore::kMaxBlobSize + 1);
    EXPECT_EQ(store.put(8, too_big.data(),
                        static_cast<uint32_t>(too_big.size())),
              Status::InvalidArgument);
}

// ---------------------------------------------------------------------
// Range scans
// ---------------------------------------------------------------------

template <typename DS>
class ScanTest : public ::testing::Test
{
  protected:
    ScanTest()
        : be(1, testConfig()), s(SessionConfig::rcb(1, 1 << 20, 16))
    {
        EXPECT_EQ(s.connect(&be), Status::Ok);
        EXPECT_EQ(DS::create(s, 1, "scan", &ds), Status::Ok);
    }

    BackendNode be;
    FrontendSession s;
    DS ds;
};

using ScanTypes = ::testing::Types<BpTree, SkipList>;
TYPED_TEST_SUITE(ScanTest, ScanTypes);

TYPED_TEST(ScanTest, ReturnsSortedRange)
{
    for (uint64_t k = 1; k <= 200; ++k)
        ASSERT_EQ(this->ds.insert(k * 10, Value::ofU64(k)), Status::Ok);
    ASSERT_EQ(this->s.flushAll(), Status::Ok);

    std::vector<std::pair<Key, Value>> out;
    ASSERT_EQ(this->ds.scan(505, 20, &out), Status::Ok);
    ASSERT_EQ(out.size(), 20u);
    EXPECT_EQ(out.front().first, 510u);
    for (size_t i = 1; i < out.size(); ++i)
        EXPECT_LT(out[i - 1].first, out[i].first) << "unsorted scan";
    EXPECT_EQ(out.back().first, 700u);
}

TYPED_TEST(ScanTest, ScanPastEndStopsCleanly)
{
    for (uint64_t k = 1; k <= 10; ++k)
        ASSERT_EQ(this->ds.insert(k, Value::ofU64(k)), Status::Ok);
    ASSERT_EQ(this->s.flushAll(), Status::Ok);
    std::vector<std::pair<Key, Value>> out;
    ASSERT_EQ(this->ds.scan(8, 100, &out), Status::Ok);
    ASSERT_EQ(out.size(), 3u);
    ASSERT_EQ(this->ds.scan(999, 100, &out), Status::Ok);
    EXPECT_TRUE(out.empty());
}

TYPED_TEST(ScanTest, EmptyStructureScans)
{
    std::vector<std::pair<Key, Value>> out;
    ASSERT_EQ(this->ds.scan(1, 10, &out), Status::Ok);
    EXPECT_TRUE(out.empty());
}

} // namespace
} // namespace asymnvm
