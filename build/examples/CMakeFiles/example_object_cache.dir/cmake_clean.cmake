file(REMOVE_RECURSE
  "CMakeFiles/example_object_cache.dir/object_cache.cpp.o"
  "CMakeFiles/example_object_cache.dir/object_cache.cpp.o.d"
  "example_object_cache"
  "example_object_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_object_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
