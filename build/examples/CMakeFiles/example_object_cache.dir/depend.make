# Empty dependencies file for example_object_cache.
# This may be replaced when dependencies are built.
