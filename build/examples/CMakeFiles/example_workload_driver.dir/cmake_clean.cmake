file(REMOVE_RECURSE
  "CMakeFiles/example_workload_driver.dir/workload_driver.cpp.o"
  "CMakeFiles/example_workload_driver.dir/workload_driver.cpp.o.d"
  "example_workload_driver"
  "example_workload_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_workload_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
