# Empty dependencies file for example_workload_driver.
# This may be replaced when dependencies are built.
