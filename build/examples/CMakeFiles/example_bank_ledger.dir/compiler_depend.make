# Empty compiler generated dependencies file for example_bank_ledger.
# This may be replaced when dependencies are built.
