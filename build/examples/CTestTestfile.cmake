# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_bank_ledger "/root/repo/build/examples/example_bank_ledger")
set_tests_properties(example_bank_ledger PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_crash_recovery "/root/repo/build/examples/example_crash_recovery")
set_tests_properties(example_crash_recovery PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_kv_store "/root/repo/build/examples/example_kv_store")
set_tests_properties(example_kv_store PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_object_cache "/root/repo/build/examples/example_object_cache")
set_tests_properties(example_object_cache PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_quickstart "/root/repo/build/examples/example_quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_workload_driver "/root/repo/build/examples/example_workload_driver")
set_tests_properties(example_workload_driver PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
