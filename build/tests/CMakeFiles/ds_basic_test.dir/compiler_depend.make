# Empty compiler generated dependencies file for ds_basic_test.
# This may be replaced when dependencies are built.
