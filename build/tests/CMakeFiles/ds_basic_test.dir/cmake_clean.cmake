file(REMOVE_RECURSE
  "CMakeFiles/ds_basic_test.dir/ds_basic_test.cc.o"
  "CMakeFiles/ds_basic_test.dir/ds_basic_test.cc.o.d"
  "ds_basic_test"
  "ds_basic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
