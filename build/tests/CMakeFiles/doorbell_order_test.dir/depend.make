# Empty dependencies file for doorbell_order_test.
# This may be replaced when dependencies are built.
