file(REMOVE_RECURSE
  "CMakeFiles/doorbell_order_test.dir/doorbell_order_test.cc.o"
  "CMakeFiles/doorbell_order_test.dir/doorbell_order_test.cc.o.d"
  "doorbell_order_test"
  "doorbell_order_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doorbell_order_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
