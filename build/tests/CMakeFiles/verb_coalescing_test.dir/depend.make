# Empty dependencies file for verb_coalescing_test.
# This may be replaced when dependencies are built.
