file(REMOVE_RECURSE
  "CMakeFiles/verb_coalescing_test.dir/verb_coalescing_test.cc.o"
  "CMakeFiles/verb_coalescing_test.dir/verb_coalescing_test.cc.o.d"
  "verb_coalescing_test"
  "verb_coalescing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verb_coalescing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
