# Empty dependencies file for blob_scan_test.
# This may be replaced when dependencies are built.
