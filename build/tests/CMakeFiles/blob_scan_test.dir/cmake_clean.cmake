file(REMOVE_RECURSE
  "CMakeFiles/blob_scan_test.dir/blob_scan_test.cc.o"
  "CMakeFiles/blob_scan_test.dir/blob_scan_test.cc.o.d"
  "blob_scan_test"
  "blob_scan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blob_scan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
