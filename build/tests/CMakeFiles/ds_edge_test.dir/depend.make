# Empty dependencies file for ds_edge_test.
# This may be replaced when dependencies are built.
