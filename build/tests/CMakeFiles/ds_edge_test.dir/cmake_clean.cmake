file(REMOVE_RECURSE
  "CMakeFiles/ds_edge_test.dir/ds_edge_test.cc.o"
  "CMakeFiles/ds_edge_test.dir/ds_edge_test.cc.o.d"
  "ds_edge_test"
  "ds_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
