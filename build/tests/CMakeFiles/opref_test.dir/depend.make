# Empty dependencies file for opref_test.
# This may be replaced when dependencies are built.
