file(REMOVE_RECURSE
  "CMakeFiles/opref_test.dir/opref_test.cc.o"
  "CMakeFiles/opref_test.dir/opref_test.cc.o.d"
  "opref_test"
  "opref_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opref_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
