file(REMOVE_RECURSE
  "CMakeFiles/verbs_edge_test.dir/verbs_edge_test.cc.o"
  "CMakeFiles/verbs_edge_test.dir/verbs_edge_test.cc.o.d"
  "verbs_edge_test"
  "verbs_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verbs_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
