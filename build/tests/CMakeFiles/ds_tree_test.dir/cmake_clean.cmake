file(REMOVE_RECURSE
  "CMakeFiles/ds_tree_test.dir/ds_tree_test.cc.o"
  "CMakeFiles/ds_tree_test.dir/ds_tree_test.cc.o.d"
  "ds_tree_test"
  "ds_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
