# Empty compiler generated dependencies file for ds_tree_test.
# This may be replaced when dependencies are built.
