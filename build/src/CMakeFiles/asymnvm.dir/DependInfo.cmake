
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/smallbank.cc" "src/CMakeFiles/asymnvm.dir/apps/smallbank.cc.o" "gcc" "src/CMakeFiles/asymnvm.dir/apps/smallbank.cc.o.d"
  "/root/repo/src/apps/tatp.cc" "src/CMakeFiles/asymnvm.dir/apps/tatp.cc.o" "gcc" "src/CMakeFiles/asymnvm.dir/apps/tatp.cc.o.d"
  "/root/repo/src/backend/allocator.cc" "src/CMakeFiles/asymnvm.dir/backend/allocator.cc.o" "gcc" "src/CMakeFiles/asymnvm.dir/backend/allocator.cc.o.d"
  "/root/repo/src/backend/backend_node.cc" "src/CMakeFiles/asymnvm.dir/backend/backend_node.cc.o" "gcc" "src/CMakeFiles/asymnvm.dir/backend/backend_node.cc.o.d"
  "/root/repo/src/backend/layout.cc" "src/CMakeFiles/asymnvm.dir/backend/layout.cc.o" "gcc" "src/CMakeFiles/asymnvm.dir/backend/layout.cc.o.d"
  "/root/repo/src/backend/log_format.cc" "src/CMakeFiles/asymnvm.dir/backend/log_format.cc.o" "gcc" "src/CMakeFiles/asymnvm.dir/backend/log_format.cc.o.d"
  "/root/repo/src/check/crash_explorer.cc" "src/CMakeFiles/asymnvm.dir/check/crash_explorer.cc.o" "gcc" "src/CMakeFiles/asymnvm.dir/check/crash_explorer.cc.o.d"
  "/root/repo/src/check/invariant_checker.cc" "src/CMakeFiles/asymnvm.dir/check/invariant_checker.cc.o" "gcc" "src/CMakeFiles/asymnvm.dir/check/invariant_checker.cc.o.d"
  "/root/repo/src/cluster/cluster.cc" "src/CMakeFiles/asymnvm.dir/cluster/cluster.cc.o" "gcc" "src/CMakeFiles/asymnvm.dir/cluster/cluster.cc.o.d"
  "/root/repo/src/cluster/keepalive.cc" "src/CMakeFiles/asymnvm.dir/cluster/keepalive.cc.o" "gcc" "src/CMakeFiles/asymnvm.dir/cluster/keepalive.cc.o.d"
  "/root/repo/src/common/checksum.cc" "src/CMakeFiles/asymnvm.dir/common/checksum.cc.o" "gcc" "src/CMakeFiles/asymnvm.dir/common/checksum.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/asymnvm.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/asymnvm.dir/common/stats.cc.o.d"
  "/root/repo/src/common/types.cc" "src/CMakeFiles/asymnvm.dir/common/types.cc.o" "gcc" "src/CMakeFiles/asymnvm.dir/common/types.cc.o.d"
  "/root/repo/src/common/zipf.cc" "src/CMakeFiles/asymnvm.dir/common/zipf.cc.o" "gcc" "src/CMakeFiles/asymnvm.dir/common/zipf.cc.o.d"
  "/root/repo/src/ds/blob_store.cc" "src/CMakeFiles/asymnvm.dir/ds/blob_store.cc.o" "gcc" "src/CMakeFiles/asymnvm.dir/ds/blob_store.cc.o.d"
  "/root/repo/src/ds/bptree.cc" "src/CMakeFiles/asymnvm.dir/ds/bptree.cc.o" "gcc" "src/CMakeFiles/asymnvm.dir/ds/bptree.cc.o.d"
  "/root/repo/src/ds/bst.cc" "src/CMakeFiles/asymnvm.dir/ds/bst.cc.o" "gcc" "src/CMakeFiles/asymnvm.dir/ds/bst.cc.o.d"
  "/root/repo/src/ds/hash_table.cc" "src/CMakeFiles/asymnvm.dir/ds/hash_table.cc.o" "gcc" "src/CMakeFiles/asymnvm.dir/ds/hash_table.cc.o.d"
  "/root/repo/src/ds/mv_bptree.cc" "src/CMakeFiles/asymnvm.dir/ds/mv_bptree.cc.o" "gcc" "src/CMakeFiles/asymnvm.dir/ds/mv_bptree.cc.o.d"
  "/root/repo/src/ds/mv_bst.cc" "src/CMakeFiles/asymnvm.dir/ds/mv_bst.cc.o" "gcc" "src/CMakeFiles/asymnvm.dir/ds/mv_bst.cc.o.d"
  "/root/repo/src/ds/queue.cc" "src/CMakeFiles/asymnvm.dir/ds/queue.cc.o" "gcc" "src/CMakeFiles/asymnvm.dir/ds/queue.cc.o.d"
  "/root/repo/src/ds/skiplist.cc" "src/CMakeFiles/asymnvm.dir/ds/skiplist.cc.o" "gcc" "src/CMakeFiles/asymnvm.dir/ds/skiplist.cc.o.d"
  "/root/repo/src/ds/stack.cc" "src/CMakeFiles/asymnvm.dir/ds/stack.cc.o" "gcc" "src/CMakeFiles/asymnvm.dir/ds/stack.cc.o.d"
  "/root/repo/src/frontend/allocator.cc" "src/CMakeFiles/asymnvm.dir/frontend/allocator.cc.o" "gcc" "src/CMakeFiles/asymnvm.dir/frontend/allocator.cc.o.d"
  "/root/repo/src/frontend/cache.cc" "src/CMakeFiles/asymnvm.dir/frontend/cache.cc.o" "gcc" "src/CMakeFiles/asymnvm.dir/frontend/cache.cc.o.d"
  "/root/repo/src/frontend/session.cc" "src/CMakeFiles/asymnvm.dir/frontend/session.cc.o" "gcc" "src/CMakeFiles/asymnvm.dir/frontend/session.cc.o.d"
  "/root/repo/src/nvm/nvm_device.cc" "src/CMakeFiles/asymnvm.dir/nvm/nvm_device.cc.o" "gcc" "src/CMakeFiles/asymnvm.dir/nvm/nvm_device.cc.o.d"
  "/root/repo/src/rdma/rpc.cc" "src/CMakeFiles/asymnvm.dir/rdma/rpc.cc.o" "gcc" "src/CMakeFiles/asymnvm.dir/rdma/rpc.cc.o.d"
  "/root/repo/src/rdma/verbs.cc" "src/CMakeFiles/asymnvm.dir/rdma/verbs.cc.o" "gcc" "src/CMakeFiles/asymnvm.dir/rdma/verbs.cc.o.d"
  "/root/repo/src/workload/workload.cc" "src/CMakeFiles/asymnvm.dir/workload/workload.cc.o" "gcc" "src/CMakeFiles/asymnvm.dir/workload/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
