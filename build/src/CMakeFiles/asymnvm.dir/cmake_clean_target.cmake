file(REMOVE_RECURSE
  "libasymnvm.a"
)
