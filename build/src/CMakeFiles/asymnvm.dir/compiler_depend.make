# Empty compiler generated dependencies file for asymnvm.
# This may be replaced when dependencies are built.
