# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench-build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke "/root/repo/build/bench/bench_table3_overall")
set_tests_properties(bench_smoke PROPERTIES  ENVIRONMENT "ASYMNVM_BENCH_TINY=1" WORKING_DIRECTORY "/root/repo/build/bench" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;13;add_test;/root/repo/bench/CMakeLists.txt;0;")
