file(REMOVE_RECURSE
  "../bench/bench_sec63_lock"
  "../bench/bench_sec63_lock.pdb"
  "CMakeFiles/bench_sec63_lock.dir/bench_sec63_lock.cc.o"
  "CMakeFiles/bench_sec63_lock.dir/bench_sec63_lock.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec63_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
