file(REMOVE_RECURSE
  "../bench/bench_fig10_partition"
  "../bench/bench_fig10_partition.pdb"
  "CMakeFiles/bench_fig10_partition.dir/bench_fig10_partition.cc.o"
  "CMakeFiles/bench_fig10_partition.dir/bench_fig10_partition.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
