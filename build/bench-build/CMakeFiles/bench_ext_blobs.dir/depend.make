# Empty dependencies file for bench_ext_blobs.
# This may be replaced when dependencies are built.
