file(REMOVE_RECURSE
  "../bench/bench_ext_blobs"
  "../bench/bench_ext_blobs.pdb"
  "CMakeFiles/bench_ext_blobs.dir/bench_ext_blobs.cc.o"
  "CMakeFiles/bench_ext_blobs.dir/bench_ext_blobs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_blobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
