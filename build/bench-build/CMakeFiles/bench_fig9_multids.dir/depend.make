# Empty dependencies file for bench_fig9_multids.
# This may be replaced when dependencies are built.
