file(REMOVE_RECURSE
  "../bench/bench_fig9_multids"
  "../bench/bench_fig9_multids.pdb"
  "CMakeFiles/bench_fig9_multids.dir/bench_fig9_multids.cc.o"
  "CMakeFiles/bench_fig9_multids.dir/bench_fig9_multids.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_multids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
