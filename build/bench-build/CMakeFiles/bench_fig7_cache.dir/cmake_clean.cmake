file(REMOVE_RECURSE
  "../bench/bench_fig7_cache"
  "../bench/bench_fig7_cache.pdb"
  "CMakeFiles/bench_fig7_cache.dir/bench_fig7_cache.cc.o"
  "CMakeFiles/bench_fig7_cache.dir/bench_fig7_cache.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
