file(REMOVE_RECURSE
  "../bench/bench_sec44_cachepolicy"
  "../bench/bench_sec44_cachepolicy.pdb"
  "CMakeFiles/bench_sec44_cachepolicy.dir/bench_sec44_cachepolicy.cc.o"
  "CMakeFiles/bench_sec44_cachepolicy.dir/bench_sec44_cachepolicy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec44_cachepolicy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
