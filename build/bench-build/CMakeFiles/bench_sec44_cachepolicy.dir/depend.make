# Empty dependencies file for bench_sec44_cachepolicy.
# This may be replaced when dependencies are built.
