file(REMOVE_RECURSE
  "../bench/bench_fig11_cpu"
  "../bench/bench_fig11_cpu.pdb"
  "CMakeFiles/bench_fig11_cpu.dir/bench_fig11_cpu.cc.o"
  "CMakeFiles/bench_fig11_cpu.dir/bench_fig11_cpu.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
