file(REMOVE_RECURSE
  "../bench/bench_ablation_logging"
  "../bench/bench_ablation_logging.pdb"
  "CMakeFiles/bench_ablation_logging.dir/bench_ablation_logging.cc.o"
  "CMakeFiles/bench_ablation_logging.dir/bench_ablation_logging.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_logging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
