file(REMOVE_RECURSE
  "../bench/bench_fig13_mixes"
  "../bench/bench_fig13_mixes.pdb"
  "CMakeFiles/bench_fig13_mixes.dir/bench_fig13_mixes.cc.o"
  "CMakeFiles/bench_fig13_mixes.dir/bench_fig13_mixes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_mixes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
