# Empty dependencies file for bench_table2_allocators.
# This may be replaced when dependencies are built.
