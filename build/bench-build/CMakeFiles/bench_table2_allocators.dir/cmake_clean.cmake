file(REMOVE_RECURSE
  "../bench/bench_table2_allocators"
  "../bench/bench_table2_allocators.pdb"
  "CMakeFiles/bench_table2_allocators.dir/bench_table2_allocators.cc.o"
  "CMakeFiles/bench_table2_allocators.dir/bench_table2_allocators.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_allocators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
