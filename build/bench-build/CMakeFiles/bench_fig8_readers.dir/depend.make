# Empty dependencies file for bench_fig8_readers.
# This may be replaced when dependencies are built.
