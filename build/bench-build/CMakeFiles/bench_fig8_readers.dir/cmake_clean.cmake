file(REMOVE_RECURSE
  "../bench/bench_fig8_readers"
  "../bench/bench_fig8_readers.pdb"
  "CMakeFiles/bench_fig8_readers.dir/bench_fig8_readers.cc.o"
  "CMakeFiles/bench_fig8_readers.dir/bench_fig8_readers.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_readers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
