# Empty compiler generated dependencies file for bench_fig12_zipf.
# This may be replaced when dependencies are built.
