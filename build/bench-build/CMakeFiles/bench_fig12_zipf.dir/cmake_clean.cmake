file(REMOVE_RECURSE
  "../bench/bench_fig12_zipf"
  "../bench/bench_fig12_zipf.pdb"
  "CMakeFiles/bench_fig12_zipf.dir/bench_fig12_zipf.cc.o"
  "CMakeFiles/bench_fig12_zipf.dir/bench_fig12_zipf.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_zipf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
