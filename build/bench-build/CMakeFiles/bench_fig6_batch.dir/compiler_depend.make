# Empty compiler generated dependencies file for bench_fig6_batch.
# This may be replaced when dependencies are built.
