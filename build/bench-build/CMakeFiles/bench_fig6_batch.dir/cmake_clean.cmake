file(REMOVE_RECURSE
  "../bench/bench_fig6_batch"
  "../bench/bench_fig6_batch.pdb"
  "CMakeFiles/bench_fig6_batch.dir/bench_fig6_batch.cc.o"
  "CMakeFiles/bench_fig6_batch.dir/bench_fig6_batch.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
