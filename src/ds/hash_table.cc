#include "ds/hash_table.h"

#include <algorithm>
#include <vector>

#include "common/hash.h"

namespace asymnvm {

namespace {

uint64_t
roundPow2(uint64_t v)
{
    uint64_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

constexpr uint32_t kMaxChainHops = 4096;

} // namespace

Status
HashTable::create(FrontendSession &s, NodeId backend,
                  std::string_view name, uint64_t nbuckets, HashTable *out,
                  const DsOptions &opt)
{
    if (nbuckets == 0)
        return Status::InvalidArgument;
    DsId id = 0;
    Status st = s.createDs(backend, name, DsType::HashTable, &id);
    if (!ok(st))
        return st;
    *out = HashTable(s, backend, std::string(name), id, opt);
    out->nbuckets_ = roundPow2(nbuckets);

    RemotePtr array;
    st = s.alloc(backend, out->nbuckets_ * 8, &array);
    if (!ok(st))
        return st;
    out->array_off_ = array.offset;

    // Blocks can be recycled: zero the bucket array explicitly.
    std::vector<uint8_t> zeros(4096, 0);
    for (uint64_t off = 0; off < out->nbuckets_ * 8; off += zeros.size()) {
        const uint32_t n = static_cast<uint32_t>(
            std::min<uint64_t>(zeros.size(), out->nbuckets_ * 8 - off));
        st = s.logWrite(id, array + off, zeros.data(), n);
        if (!ok(st))
            return st;
    }
    st = s.writeAux(id, backend, 0, out->array_off_);
    if (!ok(st))
        return st;
    st = s.writeAux(id, backend, 1, out->nbuckets_);
    if (!ok(st))
        return st;
    st = s.writeAux(id, backend, 2, 0);
    if (!ok(st))
        return st;
    st = s.flushAll();
    if (!ok(st))
        return st;
    out->install();
    return Status::Ok;
}

Status
HashTable::open(FrontendSession &s, NodeId backend, std::string_view name,
                HashTable *out, const DsOptions &opt)
{
    DsId id = 0;
    DsType type = DsType::None;
    Status st = s.openDs(backend, name, &id, &type);
    if (!ok(st))
        return st;
    if (type != DsType::HashTable)
        return Status::InvalidArgument;
    *out = HashTable(s, backend, std::string(name), id, opt);
    st = out->loadShadows();
    if (!ok(st))
        return st;
    out->install();
    return Status::Ok;
}

void
HashTable::install()
{
    // Transparent failover with a live handle: resync the count shadow to
    // the recovered NVM image before replay re-executes uncovered ops.
    s_->setFailoverHook(id_, backend_, [this] { return loadShadows(); });
    s_->setReplayer(id_, backend_, [this](const ParsedOpLog &op) {
        Value v;
        if (!op.value.empty())
            std::memcpy(v.bytes.data(), op.value.data(),
                        std::min(op.value.size(), Value::kSize));
        switch (op.op) {
          case OpType::Insert:
          case OpType::Update:
            return put(op.key, v);
          case OpType::Erase: {
            const Status st = erase(op.key);
            return st == Status::NotFound ? Status::Ok : st;
          }
          default:
            return Status::InvalidArgument;
        }
    });
}

Status
HashTable::loadShadows()
{
    Status st = s_->readAux(id_, backend_, 0, &array_off_);
    if (!ok(st))
        return st;
    st = s_->readAux(id_, backend_, 1, &nbuckets_);
    if (!ok(st))
        return st;
    return s_->readAux(id_, backend_, 2, &count_);
}

RemotePtr
HashTable::bucketPtr(Key key) const
{
    const uint64_t idx = mix64(key) & (nbuckets_ - 1);
    return RemotePtr(backend_, array_off_ + idx * 8);
}

Status
HashTable::readBucketHead(Key key, uint64_t *head_raw)
{
    ReadHint hint;
    hint.ds = id_;
    hint.cacheable = true; // hot buckets stay in front-end DRAM
    return s_->read(bucketPtr(key), head_raw, 8, hint);
}

Status
HashTable::put(Key key, const Value &v)
{
    const bool held = s_->holdsWriterLock(id_, backend_);
    Status st = lockForWrite();
    if (!ok(st))
        return st;
    if (opt_.shared && !held) {
        // Another writer may have run since we last held the lock.
        st = s_->readAux(id_, backend_, 2, &count_);
        if (!ok(st))
            return st;
    }
    st = s_->opBegin(id_, backend_, OpType::Insert, key, v.bytes.data(),
                     Value::kSize);
    if (!ok(st))
        return st;

    uint64_t head_raw = 0;
    st = readBucketHead(key, &head_raw);
    if (!ok(st))
        return st;
    uint64_t cur_raw = head_raw;
    uint32_t hops = 0;
    while (cur_raw != 0 && hops++ < kMaxChainHops) {
        const RemotePtr cur = RemotePtr::fromRaw(cur_raw);
        Node node;
        st = readNode(cur, &node, 0, false);
        if (!ok(st))
            return st;
        if (node.key == key) {
            node.value = v; // update in place (whole-node rewrite)
            st = writeNode(cur, node);
            if (!ok(st))
                return st;
            return s_->opEnd();
        }
        cur_raw = node.next_raw;
    }
    Node fresh{};
    fresh.key = key;
    fresh.next_raw = head_raw;
    fresh.value = v;
    RemotePtr p;
    st = allocNode(fresh, &p);
    if (!ok(st))
        return st;
    const uint64_t new_head = p.raw();
    st = s_->logWrite(id_, bucketPtr(key), &new_head, 8);
    if (!ok(st))
        return st;
    ++count_;
    st = s_->writeAux(id_, backend_, 2, count_);
    if (!ok(st))
        return st;
    return s_->opEnd();
}

OpTask
HashTable::putAsync(Key key, Value v)
{
    const bool held = s_->holdsWriterLock(id_, backend_);
    Status st = lockForWrite();
    if (!ok(st))
        co_return st;
    if (opt_.shared && !held) {
        st = s_->readAux(id_, backend_, 2, &count_);
        if (!ok(st))
            co_return st;
    }
    // Same-key ordering: a later op on this key parks until the earlier
    // one's local effects (overlay writes) have landed.
    FrontendSession::WindowGate gate(s_, id_, key);
    while (!gate.tryAcquire())
        co_await s_->pipelineYield();
    st = s_->opBegin(id_, backend_, OpType::Insert, key, v.bytes.data(),
                     Value::kSize);
    if (!ok(st))
        co_return st;
    // Sibling ops may opBegin while this walk is suspended; remember our
    // own op-log record so phase B's memory logs reference it.
    const FrontendSession::OpRef opref = s_->currentOpRef(backend_);

    // Phase A: put()'s chain walk with every read stamped so the set can
    // be validated against sibling window writes before we mutate.
    uint64_t head_raw = 0;
    uint64_t match_raw = 0;
    Node match{};
    std::vector<FrontendSession::ReadStamp> stamps;
    while (true) {
        stamps.clear();
        match_raw = 0;
        {
            ReadHint hint;
            hint.ds = id_;
            hint.cacheable = true; // hot buckets stay in front-end DRAM
            auto aw = s_->asyncRead(bucketPtr(key), &head_raw, 8, hint);
            const Status rst = co_await aw;
            if (!ok(rst))
                co_return rst;
            stamps.push_back({bucketPtr(key).raw(), aw.served_seq});
        }
        uint64_t cur_raw = head_raw;
        uint32_t hops = 0;
        while (cur_raw != 0 && hops++ < kMaxChainHops) {
            Node node;
            auto aw = readNodeAsync(RemotePtr::fromRaw(cur_raw), &node, 0,
                                    false, false);
            const Status rst = co_await aw;
            if (!ok(rst))
                co_return rst;
            stamps.push_back({cur_raw, aw.served_seq});
            if (node.key == key) {
                match_raw = cur_raw;
                match = node;
                break;
            }
            cur_raw = node.next_raw;
        }
        if (s_->pipelineReadSetClean(stamps))
            break;
        // A sibling relinked this chain while we were suspended; re-walk
        // against the now-hot local tiers.
        s_->notePipelineRestart();
    }

    // Phase B: put()'s serial tail, inline and unsuspended.
    s_->restoreOpRef(backend_, opref);
    if (match_raw != 0) {
        match.value = v; // update in place (whole-node rewrite)
        st = writeNode(RemotePtr::fromRaw(match_raw), match);
        if (!ok(st))
            co_return st;
        co_return s_->opEnd();
    }
    Node fresh{};
    fresh.key = key;
    fresh.next_raw = head_raw;
    fresh.value = v;
    RemotePtr p;
    st = allocNode(fresh, &p);
    if (!ok(st))
        co_return st;
    const uint64_t new_head = p.raw();
    st = s_->logWrite(id_, bucketPtr(key), &new_head, 8);
    if (!ok(st))
        co_return st;
    ++count_;
    st = s_->writeAux(id_, backend_, 2, count_);
    if (!ok(st))
        co_return st;
    co_return s_->opEnd();
}

Status
HashTable::putMany(std::span<const std::pair<Key, Value>> kvs,
                   Status *results)
{
    if (kvs.empty())
        return Status::Ok;
    if (!pipelineEligible()) {
        for (size_t i = 0; i < kvs.size(); ++i)
            results[i] = put(kvs[i].first, kvs[i].second);
        return Status::Ok;
    }
    std::vector<OpTask> ops;
    ops.reserve(kvs.size());
    for (const auto &[key, value] : kvs)
        ops.push_back(putAsync(key, value));
    s_->executePipelined(std::span<OpTask>(ops),
                         std::span<Status>(results, kvs.size()));
    return Status::Ok;
}

Status
HashTable::getLocked(Key key, Value *out)
{
    uint64_t cur_raw = 0;
    Status st = readBucketHead(key, &cur_raw);
    if (!ok(st))
        return st;
    // Chain nodes form a stable run behind their bucket: labeling the
    // walk with the bucket address lets a repeated lookup gather the
    // whole chain in one doorbell.
    const uint64_t chain_stream = bucketPtr(key).raw();
    uint32_t hops = 0;
    while (cur_raw != 0 && hops++ < kMaxChainHops) {
        Node node;
        st = readNode(RemotePtr::fromRaw(cur_raw), &node, 0, false, false,
                      {}, chain_stream);
        if (!ok(st))
            return st;
        if (node.key == key) {
            *out = node.value;
            return Status::Ok;
        }
        cur_raw = node.next_raw;
    }
    return hops >= kMaxChainHops ? Status::Conflict : Status::NotFound;
}

Status
HashTable::get(Key key, Value *out)
{
    return optimisticRead([&] { return getLocked(key, out); });
}

OpTask
HashTable::getAsync(Key key, Value *out)
{
    // Mirror of getLocked with every remote read co_awaited: a cache
    // miss suspends the walk and the session reactor gathers it with
    // the other in-flight lookups' misses.
    //
    // Read-your-writes: wait out a same-key write admitted earlier in
    // this window (it holds the (ds, key) gate until its local effects
    // land); readers hold nothing and never serialize on each other.
    while (s_->pipelineGateHeld(id_, key))
        co_await s_->pipelineYield();
    uint64_t cur_raw = 0;
    {
        ReadHint hint;
        hint.ds = id_;
        hint.cacheable = true; // hot buckets stay in front-end DRAM
        const Status st =
            co_await s_->asyncRead(bucketPtr(key), &cur_raw, 8, hint);
        if (!ok(st))
            co_return st;
    }
    const uint64_t chain_stream = bucketPtr(key).raw();
    uint32_t hops = 0;
    while (cur_raw != 0 && hops++ < kMaxChainHops) {
        Node node;
        const Status st = co_await readNodeAsync(
            RemotePtr::fromRaw(cur_raw), &node, 0, false, false, {},
            chain_stream);
        if (!ok(st))
            co_return st;
        if (node.key == key) {
            *out = node.value;
            co_return Status::Ok;
        }
        cur_raw = node.next_raw;
    }
    co_return hops >= kMaxChainHops ? Status::Conflict : Status::NotFound;
}

Status
HashTable::getMany(std::span<const Key> keys, Value *vals, Status *results)
{
    if (keys.empty())
        return Status::Ok;
    if (!pipelineEligible()) {
        for (size_t i = 0; i < keys.size(); ++i)
            results[i] = get(keys[i], &vals[i]);
        return Status::Ok;
    }
    std::vector<OpTask> ops;
    ops.reserve(keys.size());
    for (size_t i = 0; i < keys.size(); ++i)
        ops.push_back(getAsync(keys[i], &vals[i]));
    s_->executePipelined(std::span<OpTask>(ops),
                         std::span<Status>(results, keys.size()));
    return Status::Ok;
}

bool
HashTable::contains(Key key)
{
    Value v;
    return get(key, &v) == Status::Ok;
}

Status
HashTable::erase(Key key)
{
    const bool held = s_->holdsWriterLock(id_, backend_);
    Status st = lockForWrite();
    if (!ok(st))
        return st;
    if (opt_.shared && !held) {
        st = s_->readAux(id_, backend_, 2, &count_);
        if (!ok(st))
            return st;
    }
    st = s_->opBegin(id_, backend_, OpType::Erase, key, nullptr, 0);
    if (!ok(st))
        return st;

    uint64_t head_raw = 0;
    st = readBucketHead(key, &head_raw);
    if (!ok(st))
        return st;
    uint64_t prev_raw = 0;
    Node prev{};
    uint64_t cur_raw = head_raw;
    uint32_t hops = 0;
    while (cur_raw != 0 && hops++ < kMaxChainHops) {
        const RemotePtr cur = RemotePtr::fromRaw(cur_raw);
        Node node;
        st = readNode(cur, &node, 0, false);
        if (!ok(st))
            return st;
        if (node.key == key) {
            if (prev_raw == 0) {
                st = s_->logWrite(id_, bucketPtr(key), &node.next_raw, 8);
            } else {
                prev.next_raw = node.next_raw;
                st = writeNode(RemotePtr::fromRaw(prev_raw), prev);
            }
            if (!ok(st))
                return st;
            if (opt_.shared) {
                // Readers may still traverse the node: defer the reuse
                // past the lazy-GC window (Section 6.2).
                s_->retire(id_, cur, sizeof(Node));
            } else {
                st = s_->free(cur, sizeof(Node));
                if (!ok(st))
                    return st;
            }
            --count_;
            st = s_->writeAux(id_, backend_, 2, count_);
            if (!ok(st))
                return st;
            return s_->opEnd();
        }
        prev_raw = cur_raw;
        prev = node;
        cur_raw = node.next_raw;
    }
    st = s_->opEnd();
    return ok(st) ? Status::NotFound : st;
}

OpTask
HashTable::eraseAsync(Key key)
{
    const bool held = s_->holdsWriterLock(id_, backend_);
    Status st = lockForWrite();
    if (!ok(st))
        co_return st;
    if (opt_.shared && !held) {
        st = s_->readAux(id_, backend_, 2, &count_);
        if (!ok(st))
            co_return st;
    }
    FrontendSession::WindowGate gate(s_, id_, key);
    while (!gate.tryAcquire())
        co_await s_->pipelineYield();
    st = s_->opBegin(id_, backend_, OpType::Erase, key, nullptr, 0);
    if (!ok(st))
        co_return st;
    const FrontendSession::OpRef opref = s_->currentOpRef(backend_);

    // Phase A: erase()'s chain walk (tracking the predecessor copy),
    // stamped for validation.
    uint64_t match_raw = 0;
    Node match{};
    uint64_t prev_raw = 0;
    Node prev{};
    std::vector<FrontendSession::ReadStamp> stamps;
    while (true) {
        stamps.clear();
        match_raw = 0;
        prev_raw = 0;
        uint64_t head_raw = 0;
        {
            ReadHint hint;
            hint.ds = id_;
            hint.cacheable = true;
            auto aw = s_->asyncRead(bucketPtr(key), &head_raw, 8, hint);
            const Status rst = co_await aw;
            if (!ok(rst))
                co_return rst;
            stamps.push_back({bucketPtr(key).raw(), aw.served_seq});
        }
        uint64_t cur_raw = head_raw;
        uint32_t hops = 0;
        while (cur_raw != 0 && hops++ < kMaxChainHops) {
            Node node;
            auto aw = readNodeAsync(RemotePtr::fromRaw(cur_raw), &node, 0,
                                    false, false);
            const Status rst = co_await aw;
            if (!ok(rst))
                co_return rst;
            stamps.push_back({cur_raw, aw.served_seq});
            if (node.key == key) {
                match_raw = cur_raw;
                match = node;
                break;
            }
            prev_raw = cur_raw;
            prev = node;
            cur_raw = node.next_raw;
        }
        if (s_->pipelineReadSetClean(stamps))
            break;
        s_->notePipelineRestart();
    }
    if (match_raw == 0) {
        st = s_->opEnd();
        co_return ok(st) ? Status::NotFound : st;
    }

    // Phase B: unlink, free/retire, count update — inline.
    s_->restoreOpRef(backend_, opref);
    const RemotePtr cur = RemotePtr::fromRaw(match_raw);
    if (prev_raw == 0) {
        st = s_->logWrite(id_, bucketPtr(key), &match.next_raw, 8);
    } else {
        prev.next_raw = match.next_raw;
        st = writeNode(RemotePtr::fromRaw(prev_raw), prev);
    }
    if (!ok(st))
        co_return st;
    if (opt_.shared) {
        s_->retire(id_, cur, sizeof(Node));
    } else {
        st = s_->free(cur, sizeof(Node));
        if (!ok(st))
            co_return st;
    }
    --count_;
    st = s_->writeAux(id_, backend_, 2, count_);
    if (!ok(st))
        co_return st;
    co_return s_->opEnd();
}

Status
HashTable::eraseMany(std::span<const Key> keys, Status *results)
{
    if (keys.empty())
        return Status::Ok;
    if (!pipelineEligible()) {
        for (size_t i = 0; i < keys.size(); ++i)
            results[i] = erase(keys[i]);
        return Status::Ok;
    }
    std::vector<OpTask> ops;
    ops.reserve(keys.size());
    for (const Key key : keys)
        ops.push_back(eraseAsync(key));
    s_->executePipelined(std::span<OpTask>(ops),
                         std::span<Status>(results, keys.size()));
    return Status::Ok;
}

} // namespace asymnvm
