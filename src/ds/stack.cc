#include "ds/stack.h"

#include <algorithm>
#include <vector>

namespace asymnvm {

Status
Stack::create(FrontendSession &s, NodeId backend, std::string_view name,
              Stack *out, const DsOptions &opt)
{
    DsId id = 0;
    const Status st = s.createDs(backend, name, DsType::Stack, &id);
    if (!ok(st))
        return st;
    *out = Stack(s, backend, std::string(name), id, opt);
    out->install();
    return Status::Ok;
}

Status
Stack::open(FrontendSession &s, NodeId backend, std::string_view name,
            Stack *out, const DsOptions &opt)
{
    DsId id = 0;
    DsType type = DsType::None;
    Status st = s.openDs(backend, name, &id, &type);
    if (!ok(st))
        return st;
    if (type != DsType::Stack)
        return Status::InvalidArgument;
    *out = Stack(s, backend, std::string(name), id, opt);
    st = out->loadShadows();
    if (!ok(st))
        return st;
    out->install();
    return Status::Ok;
}

void
Stack::install()
{
    s_->setFlushHook(id_, backend_, [this] { materializePending(); });
    s_->setFailoverHook(id_, backend_, [this] {
        // Transparent failover with a live handle: drop pending pushes
        // (replay re-executes their ops) and resync to the recovered NVM.
        pending_.clear();
        return loadShadows();
    });
    s_->setReplayer(id_, backend_, [this](const ParsedOpLog &op) {
        if (op.op == OpType::Push) {
            Value v;
            std::memcpy(v.bytes.data(), op.value.data(),
                        std::min(op.value.size(), Value::kSize));
            return push(v);
        }
        if (op.op == OpType::Pop) {
            Value dummy;
            const Status st = pop(&dummy);
            return st == Status::NotFound ? Status::Ok : st;
        }
        return Status::InvalidArgument;
    });
}

Status
Stack::loadShadows()
{
    Status st = s_->readAux(id_, backend_, 0, &head_raw_);
    if (!ok(st))
        return st;
    return s_->readAux(id_, backend_, 1, &count_);
}

Status
Stack::materializeOne(const Value &v)
{
    Node node{};
    node.value = v;
    node.next_raw = head_raw_;
    RemotePtr p;
    Status st = allocNode(node, &p);
    if (!ok(st))
        return st;
    head_raw_ = p.raw();
    ++count_;
    return Status::Ok;
}

Status
Stack::materializePending()
{
    if (pending_.empty())
        return Status::Ok;
    for (const Value &v : pending_) {
        const Status st = materializeOne(v);
        if (!ok(st))
            return st;
    }
    pending_.clear();
    const uint64_t vals[2] = {head_raw_, count_};
    return s_->writeAuxRange(id_, backend_, 0, vals, 2);
}

Status
Stack::push(const Value &v)
{
    Status st = s_->opBegin(id_, backend_, OpType::Push, 0,
                            v.bytes.data(), Value::kSize);
    if (!ok(st))
        return st;
    if (deferWrites()) {
        pending_.push_back(v);
    } else {
        st = materializeOne(v);
        if (!ok(st))
            return st;
        const uint64_t vals[2] = {head_raw_, count_};
        st = s_->writeAuxRange(id_, backend_, 0, vals, 2);
        if (!ok(st))
            return st;
    }
    return s_->opEnd();
}

Status
Stack::popMaterialized(Value *out)
{
    const RemotePtr head = RemotePtr::fromRaw(head_raw_);
    Node node;
    // The head node is the hot spot; cache it (Section 8.1).
    Status st = readNode(head, &node, /*level=*/0,
                         /*use_admission=*/false);
    if (!ok(st))
        return st;
    *out = node.value;
    head_raw_ = node.next_raw;
    --count_;
    const uint64_t vals[2] = {head_raw_, count_};
    st = s_->writeAuxRange(id_, backend_, 0, vals, 2);
    if (!ok(st))
        return st;
    return s_->free(head, sizeof(Node));
}

Status
Stack::pop(Value *out)
{
    Status st = s_->opBegin(id_, backend_, OpType::Pop, 0, nullptr, 0);
    if (!ok(st))
        return st;
    if (!pending_.empty()) {
        // Annulment: serve the newest un-materialized push locally; its
        // memory logs are never generated (Section 8.1).
        *out = pending_.back();
        pending_.pop_back();
        return s_->opEnd();
    }
    if (head_raw_ == 0) {
        st = s_->opEnd();
        return ok(st) ? Status::NotFound : st;
    }
    st = popMaterialized(out);
    if (!ok(st))
        return st;
    return s_->opEnd();
}

OpTask
Stack::pushAsync(Value v)
{
    // Stacks are single-front-end (Section 9.5) and the head/count
    // shadows are member state, so window ops on one stack serialize on
    // a per-structure gate; the gate is taken before opBegin so op-log
    // order matches effect order.
    FrontendSession::WindowGate gate(s_, id_, 0);
    while (!gate.tryAcquire())
        co_await s_->pipelineYield();
    Status st = s_->opBegin(id_, backend_, OpType::Push, 0,
                            v.bytes.data(), Value::kSize);
    if (!ok(st))
        co_return st;
    if (deferWrites()) {
        pending_.push_back(v);
    } else {
        st = materializeOne(v);
        if (!ok(st))
            co_return st;
        const uint64_t vals[2] = {head_raw_, count_};
        st = s_->writeAuxRange(id_, backend_, 0, vals, 2);
        if (!ok(st))
            co_return st;
    }
    co_return s_->opEnd();
}

Status
Stack::pushMany(std::span<const Value> vals, Status *results)
{
    if (vals.empty())
        return Status::Ok;
    if (!pipelineEligible()) {
        for (size_t i = 0; i < vals.size(); ++i)
            results[i] = push(vals[i]);
        return Status::Ok;
    }
    std::vector<OpTask> ops;
    ops.reserve(vals.size());
    for (const Value &v : vals)
        ops.push_back(pushAsync(v));
    s_->executePipelined(std::span<OpTask>(ops),
                         std::span<Status>(results, vals.size()));
    return Status::Ok;
}

OpTask
Stack::popAsync(Value *out)
{
    FrontendSession::WindowGate gate(s_, id_, 0);
    while (!gate.tryAcquire())
        co_await s_->pipelineYield();
    Status st = s_->opBegin(id_, backend_, OpType::Pop, 0, nullptr, 0);
    if (!ok(st))
        co_return st;
    if (!pending_.empty()) {
        // Annulment works in pipelined windows too: the gate ordered us
        // after the push that populated pending_.
        *out = pending_.back();
        pending_.pop_back();
        co_return s_->opEnd();
    }
    if (head_raw_ == 0) {
        st = s_->opEnd();
        co_return ok(st) ? Status::NotFound : st;
    }
    // Phase A: the head-node read, suspendable so sibling ops on other
    // structures overlap this round trip. The gate already excludes
    // same-stack writers, but a validation pass keeps the discipline
    // uniform (e.g. the address could be recycled by another
    // structure's free while we were suspended).
    const RemotePtr head = RemotePtr::fromRaw(head_raw_);
    Node node;
    std::vector<FrontendSession::ReadStamp> stamps;
    while (true) {
        stamps.clear();
        auto aw = readNodeAsync(head, &node, /*level=*/0,
                                /*use_admission=*/false, /*pin=*/false);
        st = co_await aw;
        if (!ok(st))
            co_return st;
        stamps.push_back({head.raw(), aw.served_seq});
        if (s_->pipelineReadSetClean(stamps))
            break;
        s_->notePipelineRestart();
    }
    // Phase B: popMaterialized's tail, inline.
    *out = node.value;
    head_raw_ = node.next_raw;
    --count_;
    const uint64_t vals[2] = {head_raw_, count_};
    st = s_->writeAuxRange(id_, backend_, 0, vals, 2);
    if (!ok(st))
        co_return st;
    st = s_->free(head, sizeof(Node));
    if (!ok(st))
        co_return st;
    co_return s_->opEnd();
}

Status
Stack::popMany(std::span<Value> outs, Status *results)
{
    if (outs.empty())
        return Status::Ok;
    if (!pipelineEligible()) {
        for (size_t i = 0; i < outs.size(); ++i)
            results[i] = pop(&outs[i]);
        return Status::Ok;
    }
    std::vector<OpTask> ops;
    ops.reserve(outs.size());
    for (Value &v : outs)
        ops.push_back(popAsync(&v));
    s_->executePipelined(std::span<OpTask>(ops),
                         std::span<Status>(results, outs.size()));
    return Status::Ok;
}

Status
Stack::top(Value *out)
{
    if (!pending_.empty()) {
        *out = pending_.back();
        return Status::Ok;
    }
    if (head_raw_ == 0)
        return Status::NotFound;
    Node node;
    const Status st = readNode(RemotePtr::fromRaw(head_raw_), &node, 0,
                               false);
    if (!ok(st))
        return st;
    *out = node.value;
    return Status::Ok;
}

uint64_t
Stack::size() const
{
    return count_ + pending_.size();
}

} // namespace asymnvm
