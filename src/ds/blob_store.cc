#include "ds/blob_store.h"

#include <algorithm>
#include <cstring>

#include "common/checksum.h"

namespace asymnvm {

Status
BlobStore::create(FrontendSession &s, NodeId backend,
                  std::string_view name, uint64_t nbuckets, BlobStore *out,
                  const DsOptions &opt)
{
    return HashTable::create(s, backend,
                             std::string(name) + "/blobindex", nbuckets,
                             &out->index_, opt);
}

Status
BlobStore::open(FrontendSession &s, NodeId backend, std::string_view name,
                BlobStore *out, const DsOptions &opt)
{
    return HashTable::open(s, backend, std::string(name) + "/blobindex",
                           &out->index_, opt);
}

Status
BlobStore::put(Key key, const void *data, uint32_t len)
{
    if (len > kMaxBlobSize)
        return Status::InvalidArgument;
    FrontendSession &s = index_.session();
    const NodeId backend = index_.backend();

    // Free the previous payload (if any and out-of-line).
    Value old;
    if (index_.get(key, &old) == Status::Ok) {
        Descriptor d;
        std::memcpy(&d, old.bytes.data(), sizeof(d));
        if (d.payload_raw != 0) {
            const Status st = s.free(RemotePtr::fromRaw(d.payload_raw),
                                     d.len);
            if (!ok(st))
                return st;
        }
    }

    Descriptor desc{};
    desc.len = len;
    desc.crc = crc32c(data, len);
    if (len <= kInlineCapacity) {
        // Small blobs ride inside the descriptor: one index put, full
        // op-log recovery.
        std::memcpy(desc.inline_data, data, len);
        Value v;
        std::memcpy(v.bytes.data(), &desc, sizeof(desc));
        return index_.put(key, v);
    }

    RemotePtr payload;
    Status st = s.alloc(backend, len, &payload);
    if (!ok(st))
        return st;
    desc.payload_raw = payload.raw();
    // Payload streams through the memory-log pipeline in chunks so one
    // blob cannot blow the log buffer.
    const auto *p = static_cast<const uint8_t *>(data);
    constexpr uint32_t kChunk = 8 << 10;
    for (uint32_t off = 0; off < len; off += kChunk) {
        const uint32_t n = std::min(kChunk, len - off);
        st = s.logWrite(index_.id(), payload + off, p + off, n);
        if (!ok(st))
            return st;
    }
    Value v;
    std::memcpy(v.bytes.data(), &desc, sizeof(desc));
    return index_.put(key, v);
}

Status
BlobStore::get(Key key, std::vector<uint8_t> *out)
{
    Value v;
    Status st = index_.get(key, &v);
    if (!ok(st))
        return st;
    Descriptor d;
    std::memcpy(&d, v.bytes.data(), sizeof(d));
    out->resize(d.len);
    if (d.payload_raw == 0) {
        std::memcpy(out->data(), d.inline_data, d.len);
    } else {
        ReadHint hint;
        hint.ds = index_.id();
        hint.cacheable = d.len <= 1024; // keep big payloads out of the cache
        st = index_.session().read(RemotePtr::fromRaw(d.payload_raw),
                                   out->data(), d.len, hint);
        if (!ok(st))
            return st;
    }
    // End-to-end integrity: a large blob whose payload write raced a
    // crash fails here and the caller re-uploads.
    if (crc32c(out->data(), d.len) != d.crc)
        return Status::Corruption;
    return Status::Ok;
}

Status
BlobStore::erase(Key key)
{
    Value v;
    Status st = index_.get(key, &v);
    if (!ok(st))
        return st;
    Descriptor d;
    std::memcpy(&d, v.bytes.data(), sizeof(d));
    if (d.payload_raw != 0) {
        st = index_.session().free(RemotePtr::fromRaw(d.payload_raw),
                                   d.len);
        if (!ok(st))
            return st;
    }
    return index_.erase(key);
}

Status
BlobStore::length(Key key, uint32_t *len)
{
    Value v;
    const Status st = index_.get(key, &v);
    if (!ok(st))
        return st;
    Descriptor d;
    std::memcpy(&d, v.bytes.data(), sizeof(d));
    *len = d.len;
    return Status::Ok;
}

} // namespace asymnvm
