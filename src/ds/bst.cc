#include "ds/bst.h"

#include <algorithm>

namespace asymnvm {

namespace {
constexpr uint32_t kMaxDepth = 1u << 16;
} // namespace

Status
Bst::create(FrontendSession &s, NodeId backend, std::string_view name,
            Bst *out, const DsOptions &opt)
{
    DsId id = 0;
    const Status st = s.createDs(backend, name, DsType::Bst, &id);
    if (!ok(st))
        return st;
    *out = Bst(s, backend, std::string(name), id, opt);
    out->install();
    return Status::Ok;
}

Status
Bst::open(FrontendSession &s, NodeId backend, std::string_view name,
          Bst *out, const DsOptions &opt)
{
    DsId id = 0;
    DsType type = DsType::None;
    Status st = s.openDs(backend, name, &id, &type);
    if (!ok(st))
        return st;
    if (type != DsType::Bst)
        return Status::InvalidArgument;
    *out = Bst(s, backend, std::string(name), id, opt);
    st = s.readAux(id, backend, 1, &out->count_);
    if (!ok(st))
        return st;
    out->install();
    return Status::Ok;
}

void
Bst::install()
{
    s_->setReplayer(id_, backend_, [this](const ParsedOpLog &op) {
        Value v;
        if (!op.value.empty())
            std::memcpy(v.bytes.data(), op.value.data(),
                        std::min(op.value.size(), Value::kSize));
        switch (op.op) {
          case OpType::Insert:
          case OpType::Update:
            return insert(op.key, v);
          case OpType::Erase: {
            const Status st = erase(op.key);
            return st == Status::NotFound ? Status::Ok : st;
          }
          default:
            return Status::InvalidArgument;
        }
    });
}

Status
Bst::readRoot(uint64_t *root_raw, bool pin)
{
    ReadHint hint;
    hint.ds = id_;
    hint.cacheable = true;
    hint.level = 0;
    hint.pin = pin;
    return s_->read(s_->namingField(id_, backend_, naming_field::kRoot),
                    root_raw, 8, hint);
}

Status
Bst::writeRoot(uint64_t root_raw)
{
    return s_->logWrite(id_,
                        s_->namingField(id_, backend_, naming_field::kRoot),
                        &root_raw, 8);
}

Status
Bst::insertOne(Key key, const Value &v, bool pin)
{
    Status st = s_->opBegin(id_, backend_, OpType::Insert, key,
                            v.bytes.data(), Value::kSize);
    if (!ok(st))
        return st;
    uint64_t root_raw = 0;
    st = readRoot(&root_raw, pin);
    if (!ok(st))
        return st;

    uint64_t cur_raw = root_raw;
    uint64_t parent_raw = 0;
    Node parent{};
    bool go_left = false;
    uint32_t depth = 0;
    while (cur_raw != 0) {
        if (++depth > kMaxDepth)
            return Status::Conflict;
        const RemotePtr cur = RemotePtr::fromRaw(cur_raw);
        Node node;
        st = readNode(cur, &node, depth - 1, /*use_admission=*/true, pin);
        if (!ok(st))
            return st;
        if (node.key == key) {
            node.value = v;
            st = writeNode(cur, node);
            if (!ok(st))
                return st;
            return s_->opEnd();
        }
        parent_raw = cur_raw;
        parent = node;
        go_left = key < node.key;
        cur_raw = go_left ? node.left_raw : node.right_raw;
    }

    Node fresh{};
    fresh.key = key;
    fresh.value = v;
    RemotePtr p;
    st = allocNode(fresh, &p);
    if (!ok(st))
        return st;
    if (parent_raw == 0) {
        st = writeRoot(p.raw());
    } else {
        if (go_left)
            parent.left_raw = p.raw();
        else
            parent.right_raw = p.raw();
        st = writeNode(RemotePtr::fromRaw(parent_raw), parent);
    }
    if (!ok(st))
        return st;
    ++count_;
    st = s_->writeAux(id_, backend_, 1, count_);
    if (!ok(st))
        return st;
    return s_->opEnd();
}

Status
Bst::insert(Key key, const Value &v)
{
    const bool held = s_->holdsWriterLock(id_, backend_);
    Status st = lockForWrite();
    if (!ok(st))
        return st;
    if (opt_.shared && !held) {
        st = s_->readAux(id_, backend_, 1, &count_);
        if (!ok(st))
            return st;
    }
    return insertOne(key, v, /*pin=*/false);
}

Status
Bst::insertBatch(std::span<const std::pair<Key, Value>> kvs)
{
    Status st = lockForWrite();
    if (!ok(st))
        return st;
    // Algorithm 3: sorting lets consecutive inserts share path prefixes;
    // pinning serves the repeated path reads from DRAM.
    std::vector<std::pair<Key, Value>> sorted(kvs.begin(), kvs.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    for (const auto &[key, value] : sorted) {
        st = insertOne(key, value, /*pin=*/true);
        if (!ok(st))
            return st;
    }
    return Status::Ok;
}

Status
Bst::findLocked(Key key, Value *out, bool pin)
{
    uint64_t cur_raw = 0;
    Status st = readRoot(&cur_raw, pin);
    if (!ok(st))
        return st;
    uint32_t depth = 0;
    while (cur_raw != 0) {
        if (++depth > kMaxDepth)
            return Status::Conflict;
        Node node;
        st = readNode(RemotePtr::fromRaw(cur_raw), &node, depth - 1,
                      true, pin);
        if (!ok(st))
            return st;
        if (node.key == key) {
            *out = node.value;
            return Status::Ok;
        }
        cur_raw = key < node.key ? node.left_raw : node.right_raw;
    }
    return Status::NotFound;
}

Status
Bst::find(Key key, Value *out)
{
    return optimisticRead([&] { return findLocked(key, out, false); });
}

bool
Bst::contains(Key key)
{
    Value v;
    return find(key, &v) == Status::Ok;
}

Status
Bst::eraseLocked(Key key)
{
    Status st = s_->opBegin(id_, backend_, OpType::Erase, key, nullptr, 0);
    if (!ok(st))
        return st;
    uint64_t root_raw = 0;
    st = readRoot(&root_raw, false);
    if (!ok(st))
        return st;

    // Find the victim and its parent.
    uint64_t cur_raw = root_raw;
    uint64_t parent_raw = 0;
    Node parent{}, cur{};
    bool go_left = false;
    uint32_t depth = 0;
    while (cur_raw != 0) {
        if (++depth > kMaxDepth)
            return Status::Conflict;
        st = readNode(RemotePtr::fromRaw(cur_raw), &cur, depth - 1);
        if (!ok(st))
            return st;
        if (cur.key == key)
            break;
        parent_raw = cur_raw;
        parent = cur;
        go_left = key < cur.key;
        cur_raw = go_left ? cur.left_raw : cur.right_raw;
    }
    if (cur_raw == 0) {
        st = s_->opEnd();
        return ok(st) ? Status::NotFound : st;
    }

    auto replace_child = [&](uint64_t child_raw) -> Status {
        if (parent_raw == 0)
            return writeRoot(child_raw);
        if (go_left)
            parent.left_raw = child_raw;
        else
            parent.right_raw = child_raw;
        return writeNode(RemotePtr::fromRaw(parent_raw), parent);
    };

    if (cur.left_raw != 0 && cur.right_raw != 0) {
        // Two children: splice the successor (leftmost of the right
        // subtree) into the victim's position.
        uint64_t succ_parent_raw = cur_raw;
        Node succ_parent = cur;
        uint64_t succ_raw = cur.right_raw;
        Node succ;
        st = readNode(RemotePtr::fromRaw(succ_raw), &succ, depth);
        if (!ok(st))
            return st;
        uint32_t hops = 0;
        while (succ.left_raw != 0) {
            if (++hops > kMaxDepth)
                return Status::Conflict;
            succ_parent_raw = succ_raw;
            succ_parent = succ;
            succ_raw = succ.left_raw;
            st = readNode(RemotePtr::fromRaw(succ_raw), &succ, depth);
            if (!ok(st))
                return st;
        }
        // Move the successor's payload into the victim node.
        cur.key = succ.key;
        cur.value = succ.value;
        st = writeNode(RemotePtr::fromRaw(cur_raw), cur);
        if (!ok(st))
            return st;
        // Unlink the successor (it has no left child).
        if (succ_parent_raw == cur_raw) {
            cur.right_raw = succ.right_raw;
            st = writeNode(RemotePtr::fromRaw(cur_raw), cur);
        } else {
            succ_parent.left_raw = succ.right_raw;
            st = writeNode(RemotePtr::fromRaw(succ_parent_raw),
                           succ_parent);
        }
        if (!ok(st))
            return st;
        cur_raw = succ_raw; // the physically removed node
    } else {
        const uint64_t child =
            cur.left_raw != 0 ? cur.left_raw : cur.right_raw;
        st = replace_child(child);
        if (!ok(st))
            return st;
    }

    const RemotePtr victim = RemotePtr::fromRaw(cur_raw);
    if (opt_.shared)
        s_->retire(id_, victim, sizeof(Node));
    else {
        st = s_->free(victim, sizeof(Node));
        if (!ok(st))
            return st;
    }
    --count_;
    st = s_->writeAux(id_, backend_, 1, count_);
    if (!ok(st))
        return st;
    return s_->opEnd();
}

Status
Bst::erase(Key key)
{
    const bool held = s_->holdsWriterLock(id_, backend_);
    Status st = lockForWrite();
    if (!ok(st))
        return st;
    if (opt_.shared && !held) {
        st = s_->readAux(id_, backend_, 1, &count_);
        if (!ok(st))
            return st;
    }
    return eraseLocked(key);
}

} // namespace asymnvm
