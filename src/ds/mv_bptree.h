#ifndef ASYMNVM_DS_MV_BPTREE_H_
#define ASYMNVM_DS_MV_BPTREE_H_

/**
 * @file
 * Multi-version B+tree (Sections 6.2 and 8.3), in the style of
 * append-only/CouchDB B-trees the paper cites: every insert copies the
 * root-to-leaf path into fresh nodes and publishes the new version with
 * one atomic root swap. Value cells are immutable as well (an update
 * allocates a new cell). Leaf chaining is not maintained across versions
 * (scans traverse the tree), the usual trade-off of append-only B-trees.
 */

#include <span>
#include <vector>

#include "ds/mv_common.h"

namespace asymnvm {

/** A persistent multi-version (lock-free for readers) B+tree. */
class MvBpTree : public MvBase
{
  public:
    static constexpr uint32_t kFanout = 32;

    MvBpTree() = default; //!< unbound; use create()/open()

    static Status create(FrontendSession &s, NodeId backend,
                         std::string_view name, MvBpTree *out,
                         const DsOptions &opt = {});
    static Status open(FrontendSession &s, NodeId backend,
                       std::string_view name, MvBpTree *out,
                       const DsOptions &opt = {});

    Status insert(Key key, const Value &v);

    /**
     * Insert/update as a resumable pipeline op. Phase A descends with
     * suspendable reads; phase B replays insertRec's path-copy write-out
     * (retires, cell + node allocs, splits, root staging) inline after
     * read-set validation. Every MV write supersedes the whole root
     * path, so window writes to the same tree are ordered by one
     * per-structure WindowGate rather than per-key gates — sibling
     * *reads* and ops on other structures still overlap freely.
     */
    OpTask insertAsync(Key key, Value v);

    /** Pipelined multi-insert; results[i] receives kvs[i]'s status. */
    Status insertMany(std::span<const std::pair<Key, Value>> kvs,
                      Status *results);

    Status insertBatch(std::span<const std::pair<Key, Value>> kvs);
    Status find(Key key, Value *out);

    /**
     * Point lookup as a resumable pipeline op: the descent co_awaits
     * every remote node read so executePipelined can overlap several
     * lookups per round trip. The root fetch stays synchronous (for pure
     * readers it is an atomic meta verb, not a gatherable read); the
     * snapshot property is unchanged — each op traverses the root it
     * fetched. Mirrors find() step for step.
     */
    OpTask findAsync(Key key, Value *out);

    /** Pipelined multi-lookup; results[i] receives keys[i]'s status. */
    Status findMany(std::span<const Key> keys, Value *vals,
                    Status *results);
    Status erase(Key key);

    /**
     * Remove as a resumable pipeline op: suspendable descent, then
     * eraseRec's path-copy tail inline after validation. Same
     * per-structure write ordering as insertAsync.
     */
    OpTask eraseAsync(Key key);

    /** Pipelined multi-erase; results[i] receives keys[i]'s status. */
    Status eraseMany(std::span<const Key> keys, Status *results);

    bool contains(Key key);
    uint64_t size() const { return count_; }

  private:
    MvBpTree(FrontendSession &s, NodeId backend, std::string name,
             DsId id, const DsOptions &opt)
        : MvBase(s, backend, std::move(name), id, opt)
    {}

    struct Node
    {
        uint16_t is_leaf;
        uint16_t count;
        uint32_t pad;
        uint64_t unused; //!< no leaf chain across versions
        Key keys[kFanout];
        uint64_t children[kFanout];
    };
    static_assert(sizeof(Node) == 16 + 16 * kFanout);

    struct Split
    {
        bool happened = false;
        Key sep_key = 0;
        uint64_t right_raw = 0;
    };

    void install();
    Status insertOne(Key key, const Value &v, bool pin);
    Status insertRec(uint64_t node_raw, uint32_t depth, Key key,
                     const Value &v, bool pin, uint64_t *new_raw,
                     Split *split, bool *added);
    Status eraseRec(uint64_t node_raw, uint32_t depth, Key key,
                    uint64_t *new_raw, bool *removed);
    static uint32_t routeIndex(const Node &n, Key key);

    uint64_t count_ = 0; //!< aux1
};

} // namespace asymnvm

#endif // ASYMNVM_DS_MV_BPTREE_H_
