#include "ds/mv_bst.h"

#include <algorithm>

namespace asymnvm {

namespace {
constexpr uint32_t kMaxDepth = 1u << 16;
} // namespace

Status
MvBst::create(FrontendSession &s, NodeId backend, std::string_view name,
              MvBst *out, const DsOptions &opt)
{
    DsId id = 0;
    const Status st = s.createDs(backend, name, DsType::MvBst, &id);
    if (!ok(st))
        return st;
    *out = MvBst(s, backend, std::string(name), id, opt);
    out->install();
    return Status::Ok;
}

Status
MvBst::open(FrontendSession &s, NodeId backend, std::string_view name,
            MvBst *out, const DsOptions &opt)
{
    DsId id = 0;
    DsType type = DsType::None;
    Status st = s.openDs(backend, name, &id, &type);
    if (!ok(st))
        return st;
    if (type != DsType::MvBst)
        return Status::InvalidArgument;
    *out = MvBst(s, backend, std::string(name), id, opt);
    st = out->loadRoot();
    if (!ok(st))
        return st;
    st = s.readAux(id, backend, 1, &out->count_);
    if (!ok(st))
        return st;
    out->install();
    return Status::Ok;
}

void
MvBst::install()
{
    installMv();
    s_->setReplayer(id_, backend_, [this](const ParsedOpLog &op) {
        Value v;
        if (!op.value.empty())
            std::memcpy(v.bytes.data(), op.value.data(),
                        std::min(op.value.size(), Value::kSize));
        switch (op.op) {
          case OpType::Insert:
          case OpType::Update:
            return insert(op.key, v);
          case OpType::Erase: {
            const Status st = erase(op.key);
            return st == Status::NotFound ? Status::Ok : st;
          }
          default:
            return Status::InvalidArgument;
        }
    });
}

Status
MvBst::readNodeMv(uint64_t raw, Node *out, uint32_t depth, bool pin)
{
    return readNode(RemotePtr::fromRaw(raw), out, depth, true, pin);
}

Status
MvBst::copyPathUp(const std::vector<PathElem> &path,
                  uint64_t new_child_raw, uint64_t *new_root_raw)
{
    uint64_t child = new_child_raw;
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
        Node copy = it->node;
        if (it->went_left)
            copy.left_raw = child;
        else
            copy.right_raw = child;
        RemotePtr p;
        const Status st = allocNode(copy, &p);
        if (!ok(st))
            return st;
        // The original of this path node is superseded.
        s_->retire(id_, RemotePtr::fromRaw(it->raw), sizeof(Node));
        child = p.raw();
    }
    *new_root_raw = child;
    return Status::Ok;
}

Status
MvBst::insertOne(Key key, const Value &v, bool pin)
{
    Status st = s_->opBegin(id_, backend_, OpType::Insert, key,
                            v.bytes.data(), Value::kSize);
    if (!ok(st))
        return st;

    std::vector<PathElem> path;
    uint64_t cur_raw = workingRoot();
    bool found = false;
    Node found_node{};
    uint64_t found_raw = 0;
    uint32_t depth = 0;
    while (cur_raw != 0) {
        if (++depth > kMaxDepth)
            return Status::Conflict;
        Node node;
        st = readNodeMv(cur_raw, &node, depth - 1, pin);
        if (!ok(st))
            return st;
        if (node.key == key) {
            found = true;
            found_node = node;
            found_raw = cur_raw;
            break;
        }
        path.push_back({cur_raw, node, key < node.key});
        cur_raw = key < node.key ? node.left_raw : node.right_raw;
    }

    uint64_t new_child_raw = 0;
    if (found) {
        // Copy-on-write update: a fresh node with the new value keeps
        // the old subtrees.
        Node copy = found_node;
        copy.value = v;
        RemotePtr p;
        st = allocNode(copy, &p);
        if (!ok(st))
            return st;
        s_->retire(id_, RemotePtr::fromRaw(found_raw), sizeof(Node));
        new_child_raw = p.raw();
    } else {
        Node fresh{};
        fresh.key = key;
        fresh.value = v;
        RemotePtr p;
        st = allocNode(fresh, &p);
        if (!ok(st))
            return st;
        new_child_raw = p.raw();
        ++count_;
        st = s_->writeAux(id_, backend_, 1, count_);
        if (!ok(st))
            return st;
    }
    uint64_t new_root_raw = 0;
    st = copyPathUp(path, new_child_raw, &new_root_raw);
    if (!ok(st))
        return st;
    stageRoot(new_root_raw);
    return s_->opEnd();
}

Status
MvBst::insert(Key key, const Value &v)
{
    Status st = lockForWrite();
    if (!ok(st))
        return st;
    return insertOne(key, v, /*pin=*/false);
}

Status
MvBst::insertBatch(std::span<const std::pair<Key, Value>> kvs)
{
    Status st = lockForWrite();
    if (!ok(st))
        return st;
    std::vector<std::pair<Key, Value>> sorted(kvs.begin(), kvs.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    for (const auto &[key, value] : sorted) {
        st = insertOne(key, value, /*pin=*/true);
        if (!ok(st))
            return st;
    }
    return Status::Ok;
}

Status
MvBst::find(Key key, Value *out)
{
    uint64_t cur_raw = 0;
    Status st = readerRoot(&cur_raw);
    if (!ok(st))
        return st;
    uint32_t depth = 0;
    while (cur_raw != 0) {
        if (++depth > kMaxDepth)
            return Status::Corruption;
        Node node;
        st = readNodeMv(cur_raw, &node, depth - 1, false);
        if (!ok(st))
            return st;
        if (node.key == key) {
            *out = node.value;
            return Status::Ok;
        }
        cur_raw = key < node.key ? node.left_raw : node.right_raw;
    }
    return Status::NotFound;
}

bool
MvBst::contains(Key key)
{
    Value v;
    return find(key, &v) == Status::Ok;
}

Status
MvBst::erase(Key key)
{
    Status st = lockForWrite();
    if (!ok(st))
        return st;
    st = s_->opBegin(id_, backend_, OpType::Erase, key, nullptr, 0);
    if (!ok(st))
        return st;

    std::vector<PathElem> path;
    uint64_t cur_raw = workingRoot();
    Node victim{};
    uint64_t victim_raw = 0;
    uint32_t depth = 0;
    while (cur_raw != 0) {
        if (++depth > kMaxDepth)
            return Status::Conflict;
        Node node;
        st = readNodeMv(cur_raw, &node, depth - 1, false);
        if (!ok(st))
            return st;
        if (node.key == key) {
            victim = node;
            victim_raw = cur_raw;
            break;
        }
        path.push_back({cur_raw, node, key < node.key});
        cur_raw = key < node.key ? node.left_raw : node.right_raw;
    }
    if (victim_raw == 0) {
        st = s_->opEnd();
        return ok(st) ? Status::NotFound : st;
    }

    uint64_t replacement_raw = 0;
    if (victim.left_raw == 0 || victim.right_raw == 0) {
        replacement_raw =
            victim.left_raw != 0 ? victim.left_raw : victim.right_raw;
    } else {
        // Two children: rebuild the right subtree along the successor's
        // path with the successor spliced out, then make a fresh node
        // carrying the successor's payload.
        std::vector<PathElem> succ_path;
        uint64_t succ_raw = victim.right_raw;
        Node succ;
        st = readNodeMv(succ_raw, &succ, depth, false);
        if (!ok(st))
            return st;
        uint32_t hops = 0;
        while (succ.left_raw != 0) {
            if (++hops > kMaxDepth)
                return Status::Conflict;
            succ_path.push_back({succ_raw, succ, /*went_left=*/true});
            succ_raw = succ.left_raw;
            st = readNodeMv(succ_raw, &succ, depth, false);
            if (!ok(st))
                return st;
        }
        uint64_t new_right_raw = succ.right_raw;
        // Rebuild the successor path (all copies) bottom-up.
        for (auto it = succ_path.rbegin(); it != succ_path.rend(); ++it) {
            Node copy = it->node;
            copy.left_raw = new_right_raw;
            RemotePtr p;
            st = allocNode(copy, &p);
            if (!ok(st))
                return st;
            s_->retire(id_, RemotePtr::fromRaw(it->raw), sizeof(Node));
            new_right_raw = p.raw();
        }
        Node carrier{};
        carrier.key = succ.key;
        carrier.value = succ.value;
        carrier.left_raw = victim.left_raw;
        carrier.right_raw = new_right_raw;
        RemotePtr p;
        st = allocNode(carrier, &p);
        if (!ok(st))
            return st;
        s_->retire(id_, RemotePtr::fromRaw(succ_raw), sizeof(Node));
        replacement_raw = p.raw();
    }
    s_->retire(id_, RemotePtr::fromRaw(victim_raw), sizeof(Node));

    uint64_t new_root_raw = 0;
    st = copyPathUp(path, replacement_raw, &new_root_raw);
    if (!ok(st))
        return st;
    stageRoot(new_root_raw);
    --count_;
    st = s_->writeAux(id_, backend_, 1, count_);
    if (!ok(st))
        return st;
    return s_->opEnd();
}

} // namespace asymnvm
