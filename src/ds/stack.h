#ifndef ASYMNVM_DS_STACK_H_
#define ASYMNVM_DS_STACK_H_

/**
 * @file
 * Persistent stack (Section 8.1).
 *
 * A singly linked list whose head lives in the structure's naming entry.
 * The front-end caches the node pointed to by the head and, crucially,
 * exploits the operation log for *annulment*: pushes that have not yet
 * been materialized into memory logs can be served directly to later
 * pops, so a push/pop pair inside one batch touches the data area not at
 * all — "the effective pushes will be annulled by pops". Surviving
 * pending pushes materialize at the group commit (session flush hook).
 *
 * Stacks are not shared between front-ends (Section 9.5): the writer owns
 * head/count shadows locally under SWMR.
 */

#include <deque>

#include "ds/ds_common.h"

namespace asymnvm {

/** A persistent LIFO stack of 64-byte values. */
class Stack : public DsBase
{
  public:
    Stack() = default; //!< unbound; use create()/open()

    /** Create a new named stack on @p backend. */
    static Status create(FrontendSession &s, NodeId backend,
                         std::string_view name, Stack *out,
                         const DsOptions &opt = {});

    /** Open an existing stack (also the recovery path). */
    static Status open(FrontendSession &s, NodeId backend,
                       std::string_view name, Stack *out,
                       const DsOptions &opt = {});

    /** Push one value. Durable per the session's persistence mode. */
    Status push(const Value &v);

    /** Pop the newest value; NotFound when empty. */
    Status pop(Value *out);

    /**
     * Push as a resumable pipeline op. The body has no suspendable
     * remote reads (deferred pushes stay local; materialization writes
     * through the overlay), so the pipeline win is purely log-side: the
     * op-log append rides the window's doorbell-batched WQE chain and
     * the commit fence coalesces into the window drain. Ops on one stack
     * are ordered by a per-structure WindowGate (head/count shadows are
     * member state); ops on other structures overlap freely.
     */
    OpTask pushAsync(Value v);

    /** Pipelined multi-push; results[i] receives vals[i]'s status. */
    Status pushMany(std::span<const Value> vals, Status *results);

    /**
     * Pop as a resumable pipeline op. Annulment and the empty case
     * resolve locally; the materialized path co_awaits the head-node
     * read (phase A) and replays pop()'s shadow-update/free tail inline
     * after read-set validation (phase B). Same per-structure WindowGate
     * ordering as pushAsync.
     */
    OpTask popAsync(Value *out);

    /** Pipelined multi-pop; results[i] receives outs[i]'s status. */
    Status popMany(std::span<Value> outs, Status *results);

    /** Read the newest value without removing it. */
    Status top(Value *out);

    /** Total elements (materialized + pending). */
    uint64_t size() const;

  private:
    Stack(FrontendSession &s, NodeId backend, std::string name, DsId id,
          const DsOptions &opt)
        : DsBase(s, backend, std::move(name), id, opt)
    {}

    struct Node
    {
        Value value;
        uint64_t next_raw;
        uint64_t pad;
    };
    static_assert(sizeof(Node) == 80);

    void install();
    Status loadShadows();
    Status materializePending();
    Status materializeOne(const Value &v);
    Status popMaterialized(Value *out);
    bool deferWrites() const
    {
        return !s_->config().symmetric && s_->config().use_txlog;
    }

    uint64_t head_raw_ = 0;  //!< shadow of aux0
    uint64_t count_ = 0;     //!< shadow of aux1 (materialized elements)
    std::deque<Value> pending_; //!< pushes awaiting materialization
};

} // namespace asymnvm

#endif // ASYMNVM_DS_STACK_H_
