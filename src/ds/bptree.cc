#include "ds/bptree.h"

#include <algorithm>

namespace asymnvm {

namespace {
constexpr uint32_t kMaxHeight = 64;
} // namespace

Status
BpTree::create(FrontendSession &s, NodeId backend, std::string_view name,
               BpTree *out, const DsOptions &opt)
{
    DsId id = 0;
    const Status st = s.createDs(backend, name, DsType::BpTree, &id);
    if (!ok(st))
        return st;
    *out = BpTree(s, backend, std::string(name), id, opt);
    out->install();
    return Status::Ok;
}

Status
BpTree::open(FrontendSession &s, NodeId backend, std::string_view name,
             BpTree *out, const DsOptions &opt)
{
    DsId id = 0;
    DsType type = DsType::None;
    Status st = s.openDs(backend, name, &id, &type);
    if (!ok(st))
        return st;
    if (type != DsType::BpTree)
        return Status::InvalidArgument;
    *out = BpTree(s, backend, std::string(name), id, opt);
    st = s.readAux(id, backend, 1, &out->count_);
    if (!ok(st))
        return st;
    out->install();
    return Status::Ok;
}

void
BpTree::install()
{
    s_->setReplayer(id_, backend_, [this](const ParsedOpLog &op) {
        Value v;
        if (!op.value.empty())
            std::memcpy(v.bytes.data(), op.value.data(),
                        std::min(op.value.size(), Value::kSize));
        switch (op.op) {
          case OpType::Insert:
          case OpType::Update:
            return insert(op.key, v);
          case OpType::Erase: {
            const Status st = erase(op.key);
            return st == Status::NotFound ? Status::Ok : st;
          }
          default:
            return Status::InvalidArgument;
        }
    });
}

Status
BpTree::readRoot(uint64_t *root_raw, bool pin)
{
    ReadHint hint;
    hint.ds = id_;
    hint.cacheable = true;
    hint.level = 0;
    hint.pin = pin;
    return s_->read(s_->namingField(id_, backend_, naming_field::kRoot),
                    root_raw, 8, hint);
}

Status
BpTree::writeRoot(uint64_t root_raw)
{
    return s_->logWrite(id_,
                        s_->namingField(id_, backend_, naming_field::kRoot),
                        &root_raw, 8);
}

uint32_t
BpTree::routeIndex(const Node &n, Key key)
{
    // Largest i with keys[i] <= key; index 0 catches everything smaller.
    uint32_t lo = 0;
    for (uint32_t i = 1; i < n.count; ++i) {
        if (n.keys[i] <= key)
            lo = i;
        else
            break;
    }
    return lo;
}

Status
BpTree::insertRecurse(uint64_t node_raw, uint32_t depth, Key key,
                      const Value &v, bool pin, Split *split, bool *added)
{
    if (depth > kMaxHeight)
        return Status::Conflict;
    const RemotePtr node_ptr = RemotePtr::fromRaw(node_raw);
    Node node;
    Status st = readNode(node_ptr, &node, depth, true, pin);
    if (!ok(st))
        return st;
    if (node.count > kFanout)
        return Status::Corruption;

    if (node.is_leaf) {
        // Existing key: overwrite the value cell in place.
        for (uint32_t i = 0; i < node.count; ++i) {
            if (node.keys[i] == key) {
                return s_->logWriteFromOp(
                    id_, RemotePtr::fromRaw(node.children[i]),
                    v.bytes.data(), Value::kSize);
            }
        }
        // New value cell.
        RemotePtr cell;
        st = s_->alloc(backend_, Value::kSize, &cell);
        if (!ok(st))
            return st;
        st = s_->logWriteFromOp(id_, cell, v.bytes.data(), Value::kSize);
        if (!ok(st))
            return st;
        *added = true;

        if (node.count == kFanout) {
            // Split the leaf, then place the key in the proper half.
            Node right{};
            right.is_leaf = 1;
            right.count = kFanout / 2;
            for (uint32_t i = 0; i < kFanout / 2; ++i) {
                right.keys[i] = node.keys[kFanout / 2 + i];
                right.children[i] = node.children[kFanout / 2 + i];
            }
            right.next_raw = node.next_raw;
            RemotePtr right_ptr;
            st = s_->alloc(backend_, sizeof(Node), &right_ptr);
            if (!ok(st))
                return st;
            node.count = kFanout / 2;
            node.next_raw = right_ptr.raw();

            Node *target = key >= right.keys[0] ? &right : &node;
            uint32_t pos = 0;
            while (pos < target->count && target->keys[pos] < key)
                ++pos;
            for (uint32_t i = target->count; i > pos; --i) {
                target->keys[i] = target->keys[i - 1];
                target->children[i] = target->children[i - 1];
            }
            target->keys[pos] = key;
            target->children[pos] = cell.raw();
            ++target->count;

            st = writeNode(right_ptr, right);
            if (!ok(st))
                return st;
            st = writeNode(node_ptr, node);
            if (!ok(st))
                return st;
            split->happened = true;
            split->sep_key = right.keys[0];
            split->right_raw = right_ptr.raw();
            return Status::Ok;
        }
        uint32_t pos = 0;
        while (pos < node.count && node.keys[pos] < key)
            ++pos;
        for (uint32_t i = node.count; i > pos; --i) {
            node.keys[i] = node.keys[i - 1];
            node.children[i] = node.children[i - 1];
        }
        node.keys[pos] = key;
        node.children[pos] = cell.raw();
        ++node.count;
        return writeNode(node_ptr, node);
    }

    // Internal node: descend, then absorb a child split if any.
    const uint32_t idx = routeIndex(node, key);
    Split child_split;
    st = insertRecurse(node.children[idx], depth + 1, key, v, pin,
                       &child_split, added);
    if (!ok(st))
        return st;
    if (!child_split.happened)
        return Status::Ok;

    if (node.count == kFanout) {
        // Split this internal node first.
        Node right{};
        right.is_leaf = 0;
        right.count = kFanout / 2;
        for (uint32_t i = 0; i < kFanout / 2; ++i) {
            right.keys[i] = node.keys[kFanout / 2 + i];
            right.children[i] = node.children[kFanout / 2 + i];
        }
        RemotePtr right_ptr;
        st = s_->alloc(backend_, sizeof(Node), &right_ptr);
        if (!ok(st))
            return st;
        node.count = kFanout / 2;

        Node *target =
            child_split.sep_key >= right.keys[0] ? &right : &node;
        uint32_t pos = 0;
        while (pos < target->count &&
               target->keys[pos] < child_split.sep_key)
            ++pos;
        for (uint32_t i = target->count; i > pos; --i) {
            target->keys[i] = target->keys[i - 1];
            target->children[i] = target->children[i - 1];
        }
        target->keys[pos] = child_split.sep_key;
        target->children[pos] = child_split.right_raw;
        ++target->count;

        st = writeNode(right_ptr, right);
        if (!ok(st))
            return st;
        st = writeNode(node_ptr, node);
        if (!ok(st))
            return st;
        split->happened = true;
        split->sep_key = right.keys[0];
        split->right_raw = right_ptr.raw();
        return Status::Ok;
    }
    uint32_t pos = 0;
    while (pos < node.count && node.keys[pos] < child_split.sep_key)
        ++pos;
    for (uint32_t i = node.count; i > pos; --i) {
        node.keys[i] = node.keys[i - 1];
        node.children[i] = node.children[i - 1];
    }
    node.keys[pos] = child_split.sep_key;
    node.children[pos] = child_split.right_raw;
    ++node.count;
    return writeNode(node_ptr, node);
}

Status
BpTree::insertOne(Key key, const Value &v, bool pin)
{
    Status st = s_->opBegin(id_, backend_, OpType::Insert, key,
                            v.bytes.data(), Value::kSize);
    if (!ok(st))
        return st;
    uint64_t root_raw = 0;
    st = readRoot(&root_raw, pin);
    if (!ok(st))
        return st;

    bool added = false;
    if (root_raw == 0) {
        RemotePtr cell;
        st = s_->alloc(backend_, Value::kSize, &cell);
        if (!ok(st))
            return st;
        st = s_->logWriteFromOp(id_, cell, v.bytes.data(), Value::kSize);
        if (!ok(st))
            return st;
        Node leaf{};
        leaf.is_leaf = 1;
        leaf.count = 1;
        leaf.keys[0] = key;
        leaf.children[0] = cell.raw();
        RemotePtr leaf_ptr;
        st = allocNode(leaf, &leaf_ptr);
        if (!ok(st))
            return st;
        st = writeRoot(leaf_ptr.raw());
        if (!ok(st))
            return st;
        added = true;
    } else {
        Split split;
        st = insertRecurse(root_raw, 0, key, v, pin, &split, &added);
        if (!ok(st))
            return st;
        if (split.happened) {
            // Grow the tree: a new root with two entries. Entry 0's key
            // is a low sentinel (never compared at index 0).
            Node new_root{};
            new_root.is_leaf = 0;
            new_root.count = 2;
            new_root.keys[0] = 0;
            new_root.children[0] = root_raw;
            new_root.keys[1] = split.sep_key;
            new_root.children[1] = split.right_raw;
            RemotePtr root_ptr;
            st = allocNode(new_root, &root_ptr);
            if (!ok(st))
                return st;
            st = writeRoot(root_ptr.raw());
            if (!ok(st))
                return st;
        }
    }
    if (added) {
        ++count_;
        st = s_->writeAux(id_, backend_, 1, count_);
        if (!ok(st))
            return st;
    }
    return s_->opEnd();
}

Status
BpTree::insert(Key key, const Value &v)
{
    const bool held = s_->holdsWriterLock(id_, backend_);
    Status st = lockForWrite();
    if (!ok(st))
        return st;
    if (opt_.shared && !held) {
        st = s_->readAux(id_, backend_, 1, &count_);
        if (!ok(st))
            return st;
    }
    return insertOne(key, v, /*pin=*/false);
}

Status
BpTree::insertWriteout(std::vector<std::pair<uint64_t, Node>> &path,
                       Key key, const Value &v, bool *added)
{
    // Mirrors insertRecurse's side-effect sequence exactly, but against
    // the node copies captured by the validated descent: leaf step first
    // (existing-key overwrite or fresh cell), then the bottom-up unwind
    // where each level either absorbs the pending separator or splits
    // and propagates it, stopping at the first absorption.
    Node &leaf = path.back().second;
    for (uint32_t i = 0; i < leaf.count; ++i) {
        if (leaf.keys[i] == key) {
            return s_->logWriteFromOp(id_,
                                      RemotePtr::fromRaw(leaf.children[i]),
                                      v.bytes.data(), Value::kSize);
        }
    }
    RemotePtr cell;
    Status st = s_->alloc(backend_, Value::kSize, &cell);
    if (!ok(st))
        return st;
    st = s_->logWriteFromOp(id_, cell, v.bytes.data(), Value::kSize);
    if (!ok(st))
        return st;
    *added = true;

    Key ins_key = key;
    uint64_t ins_child = cell.raw();
    for (size_t lvl = path.size(); lvl-- > 0;) {
        Node &node = path[lvl].second;
        const RemotePtr node_ptr = RemotePtr::fromRaw(path[lvl].first);
        if (node.count == kFanout) {
            Node right{};
            right.is_leaf = node.is_leaf;
            right.count = kFanout / 2;
            for (uint32_t i = 0; i < kFanout / 2; ++i) {
                right.keys[i] = node.keys[kFanout / 2 + i];
                right.children[i] = node.children[kFanout / 2 + i];
            }
            if (node.is_leaf)
                right.next_raw = node.next_raw;
            RemotePtr right_ptr;
            st = s_->alloc(backend_, sizeof(Node), &right_ptr);
            if (!ok(st))
                return st;
            node.count = kFanout / 2;
            if (node.is_leaf)
                node.next_raw = right_ptr.raw();

            Node *target = ins_key >= right.keys[0] ? &right : &node;
            uint32_t pos = 0;
            while (pos < target->count && target->keys[pos] < ins_key)
                ++pos;
            for (uint32_t i = target->count; i > pos; --i) {
                target->keys[i] = target->keys[i - 1];
                target->children[i] = target->children[i - 1];
            }
            target->keys[pos] = ins_key;
            target->children[pos] = ins_child;
            ++target->count;

            st = writeNode(right_ptr, right);
            if (!ok(st))
                return st;
            st = writeNode(node_ptr, node);
            if (!ok(st))
                return st;
            ins_key = right.keys[0];
            ins_child = right_ptr.raw();
            continue; // propagate the split upward
        }
        uint32_t pos = 0;
        while (pos < node.count && node.keys[pos] < ins_key)
            ++pos;
        for (uint32_t i = node.count; i > pos; --i) {
            node.keys[i] = node.keys[i - 1];
            node.children[i] = node.children[i - 1];
        }
        node.keys[pos] = ins_key;
        node.children[pos] = ins_child;
        ++node.count;
        return writeNode(node_ptr, node); // absorbed: unwind stops here
    }
    // The split propagated past the root: grow the tree (same sentinel
    // layout as insertOne's root-growth branch).
    Node new_root{};
    new_root.is_leaf = 0;
    new_root.count = 2;
    new_root.keys[0] = 0;
    new_root.children[0] = path[0].first;
    new_root.keys[1] = ins_key;
    new_root.children[1] = ins_child;
    RemotePtr root_ptr;
    st = allocNode(new_root, &root_ptr);
    if (!ok(st))
        return st;
    return writeRoot(root_ptr.raw());
}

OpTask
BpTree::insertAsync(Key key, Value v)
{
    // Prologue: identical to insert() — lock, then shared-count reload.
    const bool held = s_->holdsWriterLock(id_, backend_);
    Status st = lockForWrite();
    if (!ok(st))
        co_return st;
    if (opt_.shared && !held) {
        st = s_->readAux(id_, backend_, 1, &count_);
        if (!ok(st))
            co_return st;
    }
    // Same-key ordering: a later op on this key parks until the earlier
    // one's local effects (overlay writes) have landed.
    FrontendSession::WindowGate gate(s_, id_, key);
    while (!gate.tryAcquire())
        co_await s_->pipelineYield();
    st = s_->opBegin(id_, backend_, OpType::Insert, key, v.bytes.data(),
                     Value::kSize);
    if (!ok(st))
        co_return st;
    // Sibling ops may opBegin while this descent is suspended; remember
    // our own op-log record so phase B's memory logs reference it.
    const FrontendSession::OpRef opref = s_->currentOpRef(backend_);

    std::vector<std::pair<uint64_t, Node>> path;
    std::vector<FrontendSession::ReadStamp> stamps;
    uint64_t root_raw = 0;
    while (true) {
        // Phase A: suspendable descent, reads only. Every read is
        // stamped with the write sequence it observed so the set can be
        // validated against sibling window writes before we mutate.
        path.clear();
        stamps.clear();
        root_raw = 0;
        {
            ReadHint hint;
            hint.ds = id_;
            hint.cacheable = true;
            hint.level = 0;
            const RemotePtr rp =
                s_->namingField(id_, backend_, naming_field::kRoot);
            auto aw = s_->asyncRead(rp, &root_raw, 8, hint);
            const Status rst = co_await aw;
            if (!ok(rst))
                co_return rst;
            stamps.push_back({rp.raw(), aw.served_seq});
        }
        if (root_raw != 0) {
            uint64_t cur_raw = root_raw;
            uint32_t d = 0;
            while (true) {
                if (d > kMaxHeight)
                    co_return Status::Conflict;
                Node node;
                auto aw = readNodeAsync(RemotePtr::fromRaw(cur_raw),
                                        &node, d, true, false);
                const Status rst = co_await aw;
                if (!ok(rst))
                    co_return rst;
                stamps.push_back({cur_raw, aw.served_seq});
                if (node.count > kFanout)
                    co_return Status::Corruption;
                path.emplace_back(cur_raw, node);
                if (node.is_leaf)
                    break;
                cur_raw = node.children[routeIndex(node, key)];
                ++d;
            }
        }
        if (s_->pipelineReadSetClean(stamps))
            break;
        // A sibling wrote under us while suspended; the descent re-runs
        // against the local tiers (its nodes are now overlay/cache-hot).
        s_->notePipelineRestart();
    }

    // Phase B: inline write-out — atomic with respect to sibling ops.
    s_->restoreOpRef(backend_, opref);
    bool added = false;
    if (root_raw == 0) {
        RemotePtr cell;
        st = s_->alloc(backend_, Value::kSize, &cell);
        if (!ok(st))
            co_return st;
        st = s_->logWriteFromOp(id_, cell, v.bytes.data(), Value::kSize);
        if (!ok(st))
            co_return st;
        Node leaf{};
        leaf.is_leaf = 1;
        leaf.count = 1;
        leaf.keys[0] = key;
        leaf.children[0] = cell.raw();
        RemotePtr leaf_ptr;
        st = allocNode(leaf, &leaf_ptr);
        if (!ok(st))
            co_return st;
        st = writeRoot(leaf_ptr.raw());
        if (!ok(st))
            co_return st;
        added = true;
    } else {
        st = insertWriteout(path, key, v, &added);
        if (!ok(st))
            co_return st;
    }
    if (added) {
        ++count_;
        st = s_->writeAux(id_, backend_, 1, count_);
        if (!ok(st))
            co_return st;
    }
    co_return s_->opEnd();
}

Status
BpTree::insertMany(std::span<const std::pair<Key, Value>> kvs,
                   Status *results)
{
    if (kvs.empty())
        return Status::Ok;
    if (!pipelineEligible()) {
        for (size_t i = 0; i < kvs.size(); ++i)
            results[i] = insert(kvs[i].first, kvs[i].second);
        return Status::Ok;
    }
    std::vector<OpTask> ops;
    ops.reserve(kvs.size());
    for (const auto &[key, value] : kvs)
        ops.push_back(insertAsync(key, value));
    s_->executePipelined(std::span<OpTask>(ops),
                         std::span<Status>(results, kvs.size()));
    return Status::Ok;
}

Status
BpTree::insertBatch(std::span<const std::pair<Key, Value>> kvs)
{
    Status st = lockForWrite();
    if (!ok(st))
        return st;
    std::vector<std::pair<Key, Value>> sorted(kvs.begin(), kvs.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    for (const auto &[key, value] : sorted) {
        st = insertOne(key, value, /*pin=*/true);
        if (!ok(st))
            return st;
    }
    return Status::Ok;
}

Status
BpTree::findLeaf(Key key, bool pin, uint64_t *leaf_raw, Node *leaf,
                 uint32_t *depth, bool prefetch)
{
    uint64_t cur_raw = 0;
    Status st = readRoot(&cur_raw, pin);
    if (!ok(st))
        return st;
    if (cur_raw == 0)
        return Status::NotFound;
    uint32_t d = 0;
    PrefetchCandidate neigh[8];
    size_t nn = 0;
    while (true) {
        if (d > kMaxHeight)
            return Status::Conflict;
        Node node;
        st = readNode(RemotePtr::fromRaw(cur_raw), &node, d, true, pin,
                      std::span<const PrefetchCandidate>(neigh, nn));
        if (!ok(st))
            return st;
        if (node.count > kFanout)
            return Status::Conflict; // torn view
        if (node.is_leaf) {
            *leaf_raw = cur_raw;
            *leaf = node;
            *depth = d;
            return Status::Ok;
        }
        if (node.count == 0)
            return Status::Conflict;
        const uint32_t r = routeIndex(node, key);
        cur_raw = node.children[r];
        nn = 0;
        if (prefetch) {
            // Nearest-first siblings of the child we descend into:
            // range-local workloads make them the likeliest next miss,
            // and their addresses are known before the child read — so
            // they can ride its doorbell.
            for (uint32_t dist = 1;
                 dist < node.count && nn < std::size(neigh); ++dist) {
                if (r + dist < node.count)
                    neigh[nn++] = PrefetchCandidate{
                        node.children[r + dist],
                        static_cast<uint32_t>(sizeof(Node))};
                if (dist <= r && nn < std::size(neigh))
                    neigh[nn++] = PrefetchCandidate{
                        node.children[r - dist],
                        static_cast<uint32_t>(sizeof(Node))};
            }
        }
        ++d;
    }
}

Status
BpTree::findLocked(Key key, Value *out, bool pin)
{
    uint64_t leaf_raw = 0;
    Node leaf;
    uint32_t depth = 0;
    Status st = findLeaf(key, pin, &leaf_raw, &leaf, &depth,
                         /*prefetch=*/true);
    if (!ok(st))
        return st;
    for (uint32_t i = 0; i < leaf.count; ++i) {
        if (leaf.keys[i] == key) {
            // Adjacent value cells ride the demanded cell's doorbell.
            PrefetchCandidate cells[4];
            size_t nc = 0;
            for (uint32_t dist = 1;
                 dist < leaf.count && nc < std::size(cells); ++dist) {
                if (i + dist < leaf.count)
                    cells[nc++] = PrefetchCandidate{
                        leaf.children[i + dist],
                        static_cast<uint32_t>(Value::kSize)};
                if (dist <= i && nc < std::size(cells))
                    cells[nc++] = PrefetchCandidate{
                        leaf.children[i - dist],
                        static_cast<uint32_t>(Value::kSize)};
            }
            ReadHint hint;
            hint.ds = id_;
            hint.cacheable = true;
            hint.level = depth + 1;
            hint.admission = &admission_;
            hint.pin = pin;
            hint.neighbors =
                std::span<const PrefetchCandidate>(cells, nc);
            return s_->read(RemotePtr::fromRaw(leaf.children[i]), out,
                            Value::kSize, hint);
        }
    }
    return Status::NotFound;
}

Status
BpTree::find(Key key, Value *out)
{
    return optimisticRead([&] { return findLocked(key, out, false); });
}

OpTask
BpTree::findAsync(Key key, Value *out)
{
    // Mirror of findLocked(key, out, /*pin=*/false): identical hints,
    // torn-view guards and gather candidates, but every remote read is
    // co_awaited so a cache miss suspends the traversal and the session
    // reactor batches it with the other in-flight lookups' misses. The
    // candidate arrays live in the coroutine frame, so the hint spans
    // stay valid across suspension.
    //
    // Read-your-writes: a same-key write admitted earlier in this
    // window holds the (ds, key) gate until its local effects land;
    // wait it out so this lookup observes them. Readers hold nothing,
    // so concurrent lookups never serialize on each other.
    while (s_->pipelineGateHeld(id_, key))
        co_await s_->pipelineYield();
    uint64_t cur_raw = 0;
    {
        ReadHint hint;
        hint.ds = id_;
        hint.cacheable = true;
        hint.level = 0;
        const Status st = co_await s_->asyncRead(
            s_->namingField(id_, backend_, naming_field::kRoot), &cur_raw,
            8, hint);
        if (!ok(st))
            co_return st;
    }
    if (cur_raw == 0)
        co_return Status::NotFound;
    uint32_t d = 0;
    Node node;
    PrefetchCandidate neigh[8];
    size_t nn = 0;
    while (true) {
        if (d > kMaxHeight)
            co_return Status::Conflict;
        const Status st = co_await readNodeAsync(
            RemotePtr::fromRaw(cur_raw), &node, d, true, false,
            std::span<const PrefetchCandidate>(neigh, nn));
        if (!ok(st))
            co_return st;
        if (node.count > kFanout)
            co_return Status::Conflict; // torn view
        if (node.is_leaf)
            break;
        if (node.count == 0)
            co_return Status::Conflict;
        const uint32_t r = routeIndex(node, key);
        cur_raw = node.children[r];
        nn = 0;
        for (uint32_t dist = 1;
             dist < node.count && nn < std::size(neigh); ++dist) {
            if (r + dist < node.count)
                neigh[nn++] = PrefetchCandidate{
                    node.children[r + dist],
                    static_cast<uint32_t>(sizeof(Node))};
            if (dist <= r && nn < std::size(neigh))
                neigh[nn++] = PrefetchCandidate{
                    node.children[r - dist],
                    static_cast<uint32_t>(sizeof(Node))};
        }
        ++d;
    }
    for (uint32_t i = 0; i < node.count; ++i) {
        if (node.keys[i] != key)
            continue;
        PrefetchCandidate cells[4];
        size_t nc = 0;
        for (uint32_t dist = 1;
             dist < node.count && nc < std::size(cells); ++dist) {
            if (i + dist < node.count)
                cells[nc++] = PrefetchCandidate{
                    node.children[i + dist],
                    static_cast<uint32_t>(Value::kSize)};
            if (dist <= i && nc < std::size(cells))
                cells[nc++] = PrefetchCandidate{
                    node.children[i - dist],
                    static_cast<uint32_t>(Value::kSize)};
        }
        ReadHint hint;
        hint.ds = id_;
        hint.cacheable = true;
        hint.level = d + 1;
        hint.admission = &admission_;
        hint.neighbors = std::span<const PrefetchCandidate>(cells, nc);
        co_return co_await s_->asyncRead(
            RemotePtr::fromRaw(node.children[i]), out, Value::kSize, hint);
    }
    co_return Status::NotFound;
}

Status
BpTree::findMany(std::span<const Key> keys, Value *vals, Status *results)
{
    if (keys.empty())
        return Status::Ok;
    if (!pipelineEligible()) {
        for (size_t i = 0; i < keys.size(); ++i)
            results[i] = find(keys[i], &vals[i]);
        return Status::Ok;
    }
    std::vector<OpTask> ops;
    ops.reserve(keys.size());
    for (size_t i = 0; i < keys.size(); ++i)
        ops.push_back(findAsync(keys[i], &vals[i]));
    s_->executePipelined(std::span<OpTask>(ops),
                         std::span<Status>(results, keys.size()));
    return Status::Ok;
}

Status
BpTree::scan(Key from, uint32_t limit,
             std::vector<std::pair<Key, Value>> *out)
{
    return optimisticRead([&]() -> Status {
        out->clear();
        uint64_t leaf_raw = 0;
        Node leaf;
        uint32_t depth = 0;
        Status st = findLeaf(from, false, &leaf_raw, &leaf, &depth,
                             /*prefetch=*/true);
        if (st == Status::NotFound)
            return Status::Ok; // empty tree
        if (!ok(st))
            return st;
        // Leaf-chain hops are labeled with the scan's anchor leaf so
        // repeated scans of the same range learn the chain as a run.
        const uint64_t scan_stream = leaf_raw;
        uint32_t laps = 0;
        while (out->size() < limit) {
            for (uint32_t i = 0; i < leaf.count && out->size() < limit;
                 ++i) {
                if (leaf.keys[i] < from)
                    continue;
                Value v;
                // The cells still ahead in this leaf are certain to be
                // demanded next: gather a few with the current one.
                PrefetchCandidate cells[4];
                size_t nc = 0;
                for (uint32_t j = i + 1;
                     j < leaf.count && nc < std::size(cells); ++j)
                    cells[nc++] = PrefetchCandidate{
                        leaf.children[j],
                        static_cast<uint32_t>(Value::kSize)};
                ReadHint hint;
                hint.ds = id_;
                hint.cacheable = true;
                hint.level = depth + 1;
                hint.neighbors =
                    std::span<const PrefetchCandidate>(cells, nc);
                st = s_->read(RemotePtr::fromRaw(leaf.children[i]), &v,
                              Value::kSize, hint);
                if (!ok(st))
                    return st;
                out->emplace_back(leaf.keys[i], v);
            }
            if (leaf.next_raw == 0)
                break;
            if (++laps > (1u << 20))
                return Status::Conflict;
            st = readNode(RemotePtr::fromRaw(leaf.next_raw), &leaf,
                          depth, true, false, {}, scan_stream);
            if (!ok(st))
                return st;
        }
        return Status::Ok;
    });
}

bool
BpTree::contains(Key key)
{
    Value v;
    return find(key, &v) == Status::Ok;
}

Status
BpTree::erase(Key key)
{
    const bool held = s_->holdsWriterLock(id_, backend_);
    Status st = lockForWrite();
    if (!ok(st))
        return st;
    if (opt_.shared && !held) {
        st = s_->readAux(id_, backend_, 1, &count_);
        if (!ok(st))
            return st;
    }
    st = s_->opBegin(id_, backend_, OpType::Erase, key, nullptr, 0);
    if (!ok(st))
        return st;
    uint64_t leaf_raw = 0;
    Node leaf;
    uint32_t depth = 0;
    st = findLeaf(key, false, &leaf_raw, &leaf, &depth);
    if (st == Status::NotFound) {
        st = s_->opEnd();
        return ok(st) ? Status::NotFound : st;
    }
    if (!ok(st))
        return st;
    for (uint32_t i = 0; i < leaf.count; ++i) {
        if (leaf.keys[i] != key)
            continue;
        const RemotePtr cell = RemotePtr::fromRaw(leaf.children[i]);
        // Lazy deletion: compact the leaf, never merge (documented).
        for (uint32_t j = i + 1; j < leaf.count; ++j) {
            leaf.keys[j - 1] = leaf.keys[j];
            leaf.children[j - 1] = leaf.children[j];
        }
        --leaf.count;
        st = writeNode(RemotePtr::fromRaw(leaf_raw), leaf);
        if (!ok(st))
            return st;
        if (opt_.shared)
            s_->retire(id_, cell, Value::kSize);
        else {
            st = s_->free(cell, Value::kSize);
            if (!ok(st))
                return st;
        }
        --count_;
        st = s_->writeAux(id_, backend_, 1, count_);
        if (!ok(st))
            return st;
        return s_->opEnd();
    }
    st = s_->opEnd();
    return ok(st) ? Status::NotFound : st;
}

OpTask
BpTree::eraseAsync(Key key)
{
    const bool held = s_->holdsWriterLock(id_, backend_);
    Status st = lockForWrite();
    if (!ok(st))
        co_return st;
    if (opt_.shared && !held) {
        st = s_->readAux(id_, backend_, 1, &count_);
        if (!ok(st))
            co_return st;
    }
    FrontendSession::WindowGate gate(s_, id_, key);
    while (!gate.tryAcquire())
        co_await s_->pipelineYield();
    st = s_->opBegin(id_, backend_, OpType::Erase, key, nullptr, 0);
    if (!ok(st))
        co_return st;
    const FrontendSession::OpRef opref = s_->currentOpRef(backend_);

    // Phase A: findLeaf's descent (no prefetch — write path), with every
    // read stamped for validation. `desc_st` carries findLeaf's verdict
    // (NotFound on empty tree, Conflict on a torn view).
    uint64_t leaf_raw = 0;
    Node leaf{};
    Status desc_st = Status::Ok;
    std::vector<FrontendSession::ReadStamp> stamps;
    while (true) {
        stamps.clear();
        desc_st = Status::Ok;
        uint64_t cur_raw = 0;
        {
            ReadHint hint;
            hint.ds = id_;
            hint.cacheable = true;
            hint.level = 0;
            const RemotePtr rp =
                s_->namingField(id_, backend_, naming_field::kRoot);
            auto aw = s_->asyncRead(rp, &cur_raw, 8, hint);
            const Status rst = co_await aw;
            if (!ok(rst))
                co_return rst;
            stamps.push_back({rp.raw(), aw.served_seq});
        }
        if (cur_raw == 0) {
            desc_st = Status::NotFound;
        } else {
            uint32_t d = 0;
            while (true) {
                if (d > kMaxHeight) {
                    desc_st = Status::Conflict;
                    break;
                }
                Node node;
                auto aw = readNodeAsync(RemotePtr::fromRaw(cur_raw),
                                        &node, d, true, false);
                const Status rst = co_await aw;
                if (!ok(rst))
                    co_return rst;
                stamps.push_back({cur_raw, aw.served_seq});
                if (node.count > kFanout) {
                    desc_st = Status::Conflict; // torn view
                    break;
                }
                if (node.is_leaf) {
                    leaf_raw = cur_raw;
                    leaf = node;
                    break;
                }
                if (node.count == 0) {
                    desc_st = Status::Conflict;
                    break;
                }
                cur_raw = node.children[routeIndex(node, key)];
                ++d;
            }
        }
        if (s_->pipelineReadSetClean(stamps))
            break;
        s_->notePipelineRestart();
    }
    if (desc_st == Status::NotFound) {
        st = s_->opEnd();
        co_return ok(st) ? Status::NotFound : st;
    }
    if (!ok(desc_st))
        co_return desc_st;

    // Phase B: erase()'s leaf compaction, inline.
    s_->restoreOpRef(backend_, opref);
    for (uint32_t i = 0; i < leaf.count; ++i) {
        if (leaf.keys[i] != key)
            continue;
        const RemotePtr cell = RemotePtr::fromRaw(leaf.children[i]);
        for (uint32_t j = i + 1; j < leaf.count; ++j) {
            leaf.keys[j - 1] = leaf.keys[j];
            leaf.children[j - 1] = leaf.children[j];
        }
        --leaf.count;
        st = writeNode(RemotePtr::fromRaw(leaf_raw), leaf);
        if (!ok(st))
            co_return st;
        if (opt_.shared)
            s_->retire(id_, cell, Value::kSize);
        else {
            st = s_->free(cell, Value::kSize);
            if (!ok(st))
                co_return st;
        }
        --count_;
        st = s_->writeAux(id_, backend_, 1, count_);
        if (!ok(st))
            co_return st;
        co_return s_->opEnd();
    }
    st = s_->opEnd();
    co_return ok(st) ? Status::NotFound : st;
}

Status
BpTree::eraseMany(std::span<const Key> keys, Status *results)
{
    if (keys.empty())
        return Status::Ok;
    if (!pipelineEligible()) {
        for (size_t i = 0; i < keys.size(); ++i)
            results[i] = erase(keys[i]);
        return Status::Ok;
    }
    std::vector<OpTask> ops;
    ops.reserve(keys.size());
    for (const Key key : keys)
        ops.push_back(eraseAsync(key));
    s_->executePipelined(std::span<OpTask>(ops),
                         std::span<Status>(results, keys.size()));
    return Status::Ok;
}

} // namespace asymnvm
