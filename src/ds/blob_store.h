#ifndef ASYMNVM_DS_BLOB_STORE_H_
#define ASYMNVM_DS_BLOB_STORE_H_

/**
 * @file
 * Variable-size value store.
 *
 * The industry workloads of Section 9.6 carry values from 64 bytes to
 * 8 KB; the fixed 64-byte Value of the index structures cannot hold
 * them. BlobStore composes the framework primitives into a var-size
 * key/value store: a HashTable index maps each key to a *descriptor*
 * (heap cell address + length + CRC) while the payload lives in its own
 * allocation. Payload writes go through the regular memory-log pipeline,
 * so blobs inherit the framework's durability, recovery and replication
 * guarantees; the descriptor CRC additionally end-to-end-checks payload
 * integrity after recovery.
 *
 * Blob payloads above the op-log value budget store out-of-band: the op
 * log records the descriptor write (for re-execution the payload bytes
 * are carried in the op value up to kMaxOpPayload; larger blobs are
 * re-written by the caller after recovery — the usual object-store
 * contract of "upload again on unclean shutdown", surfaced to callers
 * via Status::Corruption on a failed descriptor check).
 */

#include <string>
#include <vector>

#include "ds/hash_table.h"

namespace asymnvm {

/** A persistent map from 64-bit keys to variable-size byte strings. */
class BlobStore
{
  public:
    /** Blobs up to this size re-execute from their op log. */
    static constexpr uint32_t kMaxInlineRecovery = Value::kSize;

    /** Maximum blob size (one slab-allocator large allocation). */
    static constexpr uint32_t kMaxBlobSize = 1 << 20;

    BlobStore() = default;

    static Status create(FrontendSession &s, NodeId backend,
                         std::string_view name, uint64_t nbuckets,
                         BlobStore *out, const DsOptions &opt = {});
    static Status open(FrontendSession &s, NodeId backend,
                       std::string_view name, BlobStore *out,
                       const DsOptions &opt = {});

    /** Insert or replace the blob stored under @p key. */
    Status put(Key key, const void *data, uint32_t len);
    Status put(Key key, std::string_view data)
    {
        return put(key, data.data(), static_cast<uint32_t>(data.size()));
    }

    /**
     * Fetch the blob under @p key. Returns Corruption when the payload
     * fails its descriptor checksum (e.g. a large blob whose payload
     * write never completed before a crash).
     */
    Status get(Key key, std::vector<uint8_t> *out);

    /** Remove the blob and free its payload. */
    Status erase(Key key);

    /** Length of the stored blob, without fetching the payload. */
    Status length(Key key, uint32_t *len);

    uint64_t size() const { return index_.size(); }
    HashTable &index() { return index_; }

  private:
    /** Descriptor stored as the index value (fits a 64-byte Value). */
    struct Descriptor
    {
        uint64_t payload_raw; //!< RemotePtr::raw() of the payload
        uint32_t len;
        uint32_t crc;         //!< CRC32-C of the payload
        uint8_t inline_data[48]; //!< small blobs live in the descriptor
    };
    static_assert(sizeof(Descriptor) == Value::kSize);

    static constexpr uint32_t kInlineCapacity =
        sizeof(Descriptor::inline_data);

    HashTable index_;
};

} // namespace asymnvm

#endif // ASYMNVM_DS_BLOB_STORE_H_
