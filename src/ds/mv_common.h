#ifndef ASYMNVM_DS_MV_COMMON_H_
#define ASYMNVM_DS_MV_COMMON_H_

/**
 * @file
 * Shared plumbing for the multi-version (lock-free) structures of
 * Section 6.2: path-copying writers publish a whole new version with a
 * single atomic root swap; readers always traverse a consistent snapshot
 * and need no locks; superseded nodes are retired through the lazy-GC
 * protocol.
 *
 * Batching interplay (Section 4.3 + 6.2): inside a batch the writer
 * chains path copies against its *pending* root; the memory logs flush as
 * one transaction and only then does the post-flush hook CAS the root.
 * The transaction's covered-OPN is pinned at the OPN of the last
 * *published* batch, so a crash between the flush and the root swap still
 * re-executes the unpublished operations (their already-written nodes
 * merely leak until GC).
 */

#include "ds/ds_common.h"

namespace asymnvm {

/** Base for path-copying multi-version structures. */
class MvBase : public DsBase
{
  protected:
    MvBase() = default;
    MvBase(FrontendSession &s, NodeId backend, std::string name, DsId id,
           const DsOptions &opt)
        : DsBase(s, backend, std::move(name), id, opt)
    {}

    /** Register publish/coverage hooks; call from create()/open(). */
    void installMv()
    {
        s_->setFlushHook(id_, backend_, [this] {
            if (dirty_)
                s_->setGroupCoverage(id_, backend_, cov_opn_);
        });
        s_->setPostFlushHook(id_, backend_, [this] { publish(); });
    }

    /** Load the published root (and GC epoch) from the naming entry. */
    Status loadRoot()
    {
        DsMeta meta{};
        const Status st = s_->readDsMeta(id_, backend_, &meta);
        if (!ok(st))
            return st;
        published_root_ = meta.root_raw;
        pending_root_ = meta.root_raw;
        cov_opn_ = s_->currentOpn(backend_);
        return Status::Ok;
    }

    /** The version the writer extends (readers use the published one). */
    uint64_t workingRoot() const { return pending_root_; }

    /** Record the new version produced by one write operation. */
    void stageRoot(uint64_t new_root_raw)
    {
        pending_root_ = new_root_raw;
        dirty_ = true;
        is_writer_ = true;
    }

    /** Atomic root swap after the batch's logs are durable. */
    Status publish()
    {
        if (!dirty_ || pending_root_ == published_root_) {
            dirty_ = false;
            return Status::Ok;
        }
        uint64_t old_raw = 0;
        const Status st = s_->casRoot(id_, backend_, published_root_,
                                      pending_root_, &old_raw);
        if (!ok(st))
            return st;
        if (old_raw != published_root_)
            return Status::Conflict; // SWMR violation
        published_root_ = pending_root_;
        cov_opn_ = s_->currentOpn(backend_);
        dirty_ = false;
        return Status::Ok;
    }

    /**
     * Root used by read operations: the writer sees its own unpublished
     * version; pure readers fetch the published root (one verbs read
     * that also carries the GC epoch for cache invalidation).
     */
    Status readerRoot(uint64_t *root_raw)
    {
        if (is_writer_) {
            *root_raw = pending_root_; // writer reads its own version
            return Status::Ok;
        }
        DsMeta meta{};
        const Status st = s_->readDsMeta(id_, backend_, &meta);
        if (!ok(st))
            return st;
        *root_raw = meta.root_raw;
        return Status::Ok;
    }

    uint64_t published_root_ = 0;
    uint64_t pending_root_ = 0;
    uint64_t cov_opn_ = 0;
    bool dirty_ = false;
    bool is_writer_ = false;
};

} // namespace asymnvm

#endif // ASYMNVM_DS_MV_COMMON_H_
