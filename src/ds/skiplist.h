#ifndef ASYMNVM_DS_SKIPLIST_H_
#define ASYMNVM_DS_SKIPLIST_H_

/**
 * @file
 * Persistent skiplist (Section 8.4, and the paper's running example of
 * Figure 2).
 *
 * Towers up to 16 levels with p = 0.5 (Section 9.2). The writer first
 * creates the fully initialized new node (successor pointers set), then
 * links predecessors from the bottom level upward, the ordering that
 * keeps concurrent readers on a consistent view. High-level nodes are the
 * hot ones, so cache admission is keyed on tower height ("we cache the
 * nodes with higher degree").
 */

#include <span>
#include <vector>

#include "ds/ds_common.h"

namespace asymnvm {

/** A persistent ordered map implemented as a skiplist. */
class SkipList : public DsBase
{
  public:
    static constexpr uint32_t kMaxLevel = 16;

    SkipList() = default; //!< unbound; use create()/open()

    static Status create(FrontendSession &s, NodeId backend,
                         std::string_view name, SkipList *out,
                         const DsOptions &opt = {});
    static Status open(FrontendSession &s, NodeId backend,
                       std::string_view name, SkipList *out,
                       const DsOptions &opt = {});

    /** Insert or update (Figure 2's workflow). */
    Status insert(Key key, const Value &v);

    /**
     * Insert/update as a resumable pipeline op: the findPosition walk
     * co_awaits every remote read (phase A); once the walk's read set
     * validates against sibling window writes, the serial tail — update
     * in place, or fresh tower + bottom-up predecessor linking — runs
     * inline and unsuspended (phase B), so it is atomic with respect to
     * sibling ops and byte-identical to insert()'s write sequence.
     */
    OpTask insertAsync(Key key, Value v);

    /** Pipelined multi-insert; results[i] receives kvs[i]'s status. */
    Status insertMany(std::span<const std::pair<Key, Value>> kvs,
                      Status *results);

    /** Vector insertion (sorted batch with path pinning, Section 8.4). */
    Status insertBatch(std::span<const std::pair<Key, Value>> kvs);

    /** Point lookup. */
    Status find(Key key, Value *out);

    /**
     * Point lookup as a resumable pipeline op: the tower walk co_awaits
     * every remote read so executePipelined can overlap several lookups
     * per round trip. Mirrors find() step for step. Only valid where
     * pipelineEligible() holds.
     */
    OpTask findAsync(Key key, Value *out);

    /**
     * Pipelined multi-lookup; results[i] receives keys[i]'s status.
     * Shared handles without the writer lock fall back to serial find().
     */
    Status findMany(std::span<const Key> keys, Value *vals,
                    Status *results);

    /** Remove; NotFound when absent. */
    Status erase(Key key);

    /**
     * Remove as a resumable pipeline op: suspendable findPosition walk
     * (phase A), then erase()'s serial tail (victim read, top-down
     * unlink, free/retire) inline after read-set validation (phase B).
     */
    OpTask eraseAsync(Key key);

    /** Pipelined multi-erase; results[i] receives keys[i]'s status. */
    Status eraseMany(std::span<const Key> keys, Status *results);

    /** Range scan: up to @p limit pairs with key >= @p from. */
    Status scan(Key from, uint32_t limit,
                std::vector<std::pair<Key, Value>> *out);

    bool contains(Key key);
    uint64_t size() const { return count_; }

  private:
    SkipList(FrontendSession &s, NodeId backend, std::string name,
             DsId id, const DsOptions &opt)
        : DsBase(s, backend, std::move(name), id, opt),
          level_rng_(0x5eed + id)
    {}

    struct Node
    {
        Key key;
        uint32_t level;
        uint32_t pad;
        Value value;
        uint64_t next[kMaxLevel];
    };
    static_assert(sizeof(Node) == 208);

    void install();
    Status loadShadows();
    uint32_t randomLevel();

    /**
     * Locate the insert position: predecessors/successors per level
     * (the rnvm_read traversal of Figure 2 lines 2-13). With @p prefetch
     * (read-only operations), each horizontal step gathers the current
     * node's lower-level successors — the exact nodes the walk reads
     * next when the step overshoots and the search descends.
     */
    Status findPosition(Key key, uint64_t preds[kMaxLevel],
                        uint64_t succs[kMaxLevel], bool *found,
                        bool pin = false, bool prefetch = false);

    Status insertOne(Key key, const Value &v, bool pin);
    Status findLocked(Key key, Value *out);

    uint64_t head_raw_ = 0; //!< aux0: sentinel node
    uint64_t count_ = 0;    //!< aux1
    Rng level_rng_;
};

} // namespace asymnvm

#endif // ASYMNVM_DS_SKIPLIST_H_
