#ifndef ASYMNVM_DS_DS_COMMON_H_
#define ASYMNVM_DS_DS_COMMON_H_

/**
 * @file
 * Shared base for the persistent data structures of Section 8.
 *
 * Every structure is written purely against the FrontendSession API
 * (Table 1): reads through rnvm_read with caching hints, writes through
 * the op-log + memory-log pipeline, allocation through the two-tier
 * allocator, and (when shared) the writer lock / seqlock protocols.
 *
 * A structure instance is a *handle* bound to one session. The SWMR model
 * means at most one writer session operates on a structure at a time
 * (enforced by the writer lock when `shared` is set); any number of
 * sessions may hold read-only handles concurrently.
 */

#include <algorithm>
#include <cstring>
#include <span>
#include <string>

#include "backend/layout.h"
#include "common/stats.h"
#include "common/types.h"
#include "frontend/session.h"

namespace asymnvm {

/** Per-instance options for a data structure handle. */
struct DsOptions
{
    /**
     * True when multiple sessions access the structure concurrently:
     * write operations take the exclusive writer lock (Section 6.1) and
     * reads run under the retry-based reader lock (Section 6.3). The
     * paper's one-to-one benchmarks run unshared, where SWMR holds
     * trivially and the protocols are skipped.
     */
    bool shared = false;

    /** Retries of an optimistic read before giving up with Conflict. */
    uint32_t max_read_retries = 64;

    /**
     * Virtual-time backoff charged to the session clock after a failed
     * seqlock validation, doubling per retry up to the cap. Models the
     * cost of waiting out the writer's critical section instead of
     * leaking host scheduling (yield) into simulated latency.
     */
    uint64_t retry_backoff_ns = 500;
    uint64_t retry_backoff_cap_ns = 8000;
};

/** Base class wiring a structure handle to its session and naming entry. */
class DsBase
{
  public:
    DsId id() const { return id_; }
    NodeId backend() const { return backend_; }
    const std::string &name() const { return name_; }
    FrontendSession &session() { return *s_; }

  protected:
    /**
     * Unbound handle; factories assign a bound one over it. NOTE: once a
     * structure installs its session hooks (create/open), the handle must
     * stay at a fixed address — the hooks capture `this`.
     */
    DsBase() = default;

    DsBase(FrontendSession &s, NodeId backend, std::string name, DsId id,
           const DsOptions &opt)
        : s_(&s), backend_(backend), name_(std::move(name)), id_(id),
          opt_(opt)
    {}

    /**
     * Typed node read through the gather path. Read-only operations may
     * pass @p neighbors (structural candidates to gather with this read
     * in one doorbell) and/or a @p stream id labeling the pointer chain
     * being walked (learned-run prefetch); write paths leave both empty
     * so speculation never perturbs write-side verb budgets.
     */
    template <typename Node>
    Status readNode(RemotePtr p, Node *out, uint32_t level,
                    bool use_admission = true, bool pin = false,
                    std::span<const PrefetchCandidate> neighbors = {},
                    uint64_t stream = 0)
    {
        ReadHint hint;
        hint.ds = id_;
        hint.cacheable = true;
        hint.level = level;
        hint.admission = use_admission ? &admission_ : nullptr;
        hint.pin = pin;
        hint.neighbors = neighbors;
        hint.stream = stream;
        return s_->read(p, out, sizeof(Node), hint);
    }

    /**
     * Async twin of readNode for coroutine traversals: returns the
     * session read awaitable instead of completing the read. Under an
     * active pipeline the co_await suspends on a cache miss and the
     * session reactor gathers the miss with other in-flight ops' reads;
     * outside a pipeline (or at depth 1) the awaitable falls through to
     * the synchronous path, bit-identical to readNode. @p neighbors must
     * outlive the suspension — keep the candidate array in the coroutine
     * frame, never in a helper's stack frame.
     */
    template <typename Node>
    FrontendSession::ReadAwaitable
    readNodeAsync(RemotePtr p, Node *out, uint32_t level,
                  bool use_admission = true, bool pin = false,
                  std::span<const PrefetchCandidate> neighbors = {},
                  uint64_t stream = 0)
    {
        ReadHint hint;
        hint.ds = id_;
        hint.cacheable = true;
        hint.level = level;
        hint.admission = use_admission ? &admission_ : nullptr;
        hint.pin = pin;
        hint.neighbors = neighbors;
        hint.stream = stream;
        return s_->asyncRead(p, out, sizeof(Node), hint);
    }

    /**
     * True when this handle's reads may run as pipelined coroutines.
     * Shared handles under the seqlock protocol must not: readerLock /
     * readerValidate use session-global read-tracking state that
     * interleaved coroutines would trample, so multi-key entry points
     * fall back to serial protected reads (the lock-holding writer is
     * exempt — its reads are already unprotected).
     */
    bool pipelineEligible()
    {
        return !opt_.shared || s_->holdsWriterLock(id_, backend_);
    }

    /** Typed whole-node write through the log pipeline. */
    template <typename Node>
    Status writeNode(RemotePtr p, const Node &node)
    {
        return s_->logWrite(id_, p, &node, sizeof(Node));
    }

    /** Allocate + write a fresh node; returns its address. */
    template <typename Node>
    Status allocNode(const Node &node, RemotePtr *p)
    {
        const Status st = s_->alloc(backend_, sizeof(Node), p);
        if (!ok(st))
            return st;
        return writeNode(*p, node);
    }

    /** Acquire the writer lock when the structure is shared. */
    Status lockForWrite()
    {
        if (!opt_.shared)
            return Status::Ok;
        return s_->writerLock(id_, backend_);
    }

    /**
     * Run @p body under the optimistic reader protocol: retried until
     * the sequence number validates, up to the configured retry limit.
     * Unshared handles (or the lock-holding writer itself) run the body
     * once without the protocol.
     */
    template <typename Fn>
    Status optimisticRead(Fn &&body)
    {
        if (!opt_.shared || s_->holdsWriterLock(id_, backend_))
            return body();
        uint64_t backoff = opt_.retry_backoff_ns;
        for (uint32_t attempt = 0; attempt < opt_.max_read_retries;
             ++attempt) {
            uint64_t sn = 0;
            Status st = s_->readerLock(id_, backend_, &sn);
            if (!ok(st))
                return st;
            st = body();
            if (st == Status::BackendCrashed || st == Status::Unavailable)
                return st;
            const bool consistent = s_->readerValidate(id_, backend_, sn);
            ++read_stats_.attempts;
            if (consistent)
                return st;
            ++read_stats_.retries; // Section 6.3: inconsistent, refetch
            // Back off in *virtual* time before refetching: the conflict
            // means a writer's critical section overlapped this read, and
            // waiting it out is part of the modeled read latency (the
            // first attempt stays uncharged, so uncontended reads cost
            // exactly what they did without the protocol).
            s_->clock().advance(backoff);
            backoff = std::min(backoff * 2, opt_.retry_backoff_cap_ns);
        }
        return Status::Conflict;
    }

    FrontendSession *s_ = nullptr;
    NodeId backend_ = kInvalidNode;
    std::string name_;
    DsId id_ = 0;
    DsOptions opt_;
    LevelAdmission admission_;
    OptimisticReadStats read_stats_;

  public:
    /** Observed optimistic-read statistics (failed-read ratio, §6.3). */
    const OptimisticReadStats &readStats() const { return read_stats_; }
    uint64_t readAttempts() const { return read_stats_.attempts; }
    uint64_t readRetries() const { return read_stats_.retries; }
    double readFailRatio() const { return read_stats_.failRatio(); }
    const LevelAdmission &admission() const { return admission_; }
};

} // namespace asymnvm

#endif // ASYMNVM_DS_DS_COMMON_H_
