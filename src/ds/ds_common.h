#ifndef ASYMNVM_DS_DS_COMMON_H_
#define ASYMNVM_DS_DS_COMMON_H_

/**
 * @file
 * Shared base for the persistent data structures of Section 8.
 *
 * Every structure is written purely against the FrontendSession API
 * (Table 1): reads through rnvm_read with caching hints, writes through
 * the op-log + memory-log pipeline, allocation through the two-tier
 * allocator, and (when shared) the writer lock / seqlock protocols.
 *
 * A structure instance is a *handle* bound to one session. The SWMR model
 * means at most one writer session operates on a structure at a time
 * (enforced by the writer lock when `shared` is set); any number of
 * sessions may hold read-only handles concurrently.
 */

#include <cstring>
#include <string>
#include <thread>

#include "backend/layout.h"
#include "common/types.h"
#include "frontend/session.h"

namespace asymnvm {

/** Per-instance options for a data structure handle. */
struct DsOptions
{
    /**
     * True when multiple sessions access the structure concurrently:
     * write operations take the exclusive writer lock (Section 6.1) and
     * reads run under the retry-based reader lock (Section 6.3). The
     * paper's one-to-one benchmarks run unshared, where SWMR holds
     * trivially and the protocols are skipped.
     */
    bool shared = false;

    /** Retries of an optimistic read before giving up with Conflict. */
    uint32_t max_read_retries = 64;
};

/** Base class wiring a structure handle to its session and naming entry. */
class DsBase
{
  public:
    DsId id() const { return id_; }
    NodeId backend() const { return backend_; }
    const std::string &name() const { return name_; }
    FrontendSession &session() { return *s_; }

  protected:
    /**
     * Unbound handle; factories assign a bound one over it. NOTE: once a
     * structure installs its session hooks (create/open), the handle must
     * stay at a fixed address — the hooks capture `this`.
     */
    DsBase() = default;

    DsBase(FrontendSession &s, NodeId backend, std::string name, DsId id,
           const DsOptions &opt)
        : s_(&s), backend_(backend), name_(std::move(name)), id_(id),
          opt_(opt)
    {}

    /** Typed node read through the gather path. */
    template <typename Node>
    Status readNode(RemotePtr p, Node *out, uint32_t level,
                    bool use_admission = true, bool pin = false)
    {
        ReadHint hint;
        hint.ds = id_;
        hint.cacheable = true;
        hint.level = level;
        hint.admission = use_admission ? &admission_ : nullptr;
        hint.pin = pin;
        return s_->read(p, out, sizeof(Node), hint);
    }

    /** Typed whole-node write through the log pipeline. */
    template <typename Node>
    Status writeNode(RemotePtr p, const Node &node)
    {
        return s_->logWrite(id_, p, &node, sizeof(Node));
    }

    /** Allocate + write a fresh node; returns its address. */
    template <typename Node>
    Status allocNode(const Node &node, RemotePtr *p)
    {
        const Status st = s_->alloc(backend_, sizeof(Node), p);
        if (!ok(st))
            return st;
        return writeNode(*p, node);
    }

    /** Acquire the writer lock when the structure is shared. */
    Status lockForWrite()
    {
        if (!opt_.shared)
            return Status::Ok;
        return s_->writerLock(id_, backend_);
    }

    /**
     * Run @p body under the optimistic reader protocol: retried until
     * the sequence number validates, up to the configured retry limit.
     * Unshared handles (or the lock-holding writer itself) run the body
     * once without the protocol.
     */
    template <typename Fn>
    Status optimisticRead(Fn &&body)
    {
        if (!opt_.shared || s_->holdsWriterLock(id_, backend_))
            return body();
        for (uint32_t attempt = 0; attempt < opt_.max_read_retries;
             ++attempt) {
            uint64_t sn = 0;
            Status st = s_->readerLock(id_, backend_, &sn);
            if (!ok(st))
                return st;
            // Give concurrent writers a chance to interleave with the
            // critical section (single-core hosts would otherwise never
            // preempt a reader mid-read).
            std::this_thread::yield();
            st = body();
            if (st == Status::BackendCrashed || st == Status::Unavailable)
                return st;
            const bool consistent = s_->readerValidate(id_, backend_, sn);
            ++read_attempts_;
            if (consistent)
                return st;
            ++read_retries_; // Section 6.3: inconsistent view, refetch
        }
        return Status::Conflict;
    }

    FrontendSession *s_ = nullptr;
    NodeId backend_ = kInvalidNode;
    std::string name_;
    DsId id_ = 0;
    DsOptions opt_;
    LevelAdmission admission_;
    uint64_t read_attempts_ = 0;
    uint64_t read_retries_ = 0;

  public:
    /** Observed optimistic-read statistics (failed-read ratio, §6.3). */
    uint64_t readAttempts() const { return read_attempts_; }
    uint64_t readRetries() const { return read_retries_; }
    double readFailRatio() const
    {
        return read_attempts_ == 0
                   ? 0.0
                   : static_cast<double>(read_retries_) / read_attempts_;
    }
    const LevelAdmission &admission() const { return admission_; }
};

} // namespace asymnvm

#endif // ASYMNVM_DS_DS_COMMON_H_
