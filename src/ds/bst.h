#ifndef ASYMNVM_DS_BST_H_
#define ASYMNVM_DS_BST_H_

/**
 * @file
 * Persistent (unbalanced) binary search tree — the lock-based tree of
 * Sections 8.3 and 9.2.
 *
 * The root reference lives in the naming entry; nodes are 88-byte cells
 * in the data area. Caching follows the tree-structure rule: nodes nearer
 * the root are admitted with the adaptive level threshold N, lower nodes
 * are read directly from remote NVM. Sorted vector insertion (Algorithm
 * 3's Gather-Apply traversal sharing) is exposed as insertBatch.
 */

#include <span>
#include <vector>

#include "ds/ds_common.h"

namespace asymnvm {

/** A persistent ordered map implemented as a binary search tree. */
class Bst : public DsBase
{
  public:
    Bst() = default; //!< unbound; use create()/open()

    static Status create(FrontendSession &s, NodeId backend,
                         std::string_view name, Bst *out,
                         const DsOptions &opt = {});
    static Status open(FrontendSession &s, NodeId backend,
                       std::string_view name, Bst *out,
                       const DsOptions &opt = {});

    /** Insert or update. */
    Status insert(Key key, const Value &v);

    /**
     * Vector insertion (Algorithm 3): the batch is sorted and inserted
     * with batch-local pinning, so shared path nodes are read from
     * remote NVM once per batch instead of once per operation.
     */
    Status insertBatch(std::span<const std::pair<Key, Value>> kvs);

    /** Point lookup. */
    Status find(Key key, Value *out);

    /** Remove; NotFound when absent. */
    Status erase(Key key);

    bool contains(Key key);
    uint64_t size() const { return count_; }

  private:
    Bst(FrontendSession &s, NodeId backend, std::string name, DsId id,
        const DsOptions &opt)
        : DsBase(s, backend, std::move(name), id, opt)
    {}

    struct Node
    {
        Key key;
        uint64_t left_raw;
        uint64_t right_raw;
        Value value;
    };
    static_assert(sizeof(Node) == 88);

    void install();
    Status readRoot(uint64_t *root_raw, bool pin);
    Status writeRoot(uint64_t root_raw);
    Status insertOne(Key key, const Value &v, bool pin);
    Status findLocked(Key key, Value *out, bool pin);
    Status eraseLocked(Key key);

    uint64_t count_ = 0; //!< aux1
};

} // namespace asymnvm

#endif // ASYMNVM_DS_BST_H_
