#ifndef ASYMNVM_DS_MV_BST_H_
#define ASYMNVM_DS_MV_BST_H_

/**
 * @file
 * Multi-version binary search tree (Sections 6.2 and 8.3, Figure 5).
 *
 * Writers never modify nodes in place: an insert copies every node on
 * the path from the root to the insertion point ("path copying"), builds
 * the new version bottom-up, and publishes it with an atomic root swap.
 * Readers traverse whichever root they observed — always a consistent
 * snapshot — without locks or retries. Superseded nodes retire through
 * the lazy-GC protocol (n + l delay, gc_epoch cache invalidation).
 */

#include <span>
#include <vector>

#include "ds/mv_common.h"

namespace asymnvm {

/** A persistent multi-version (lock-free for readers) BST. */
class MvBst : public MvBase
{
  public:
    MvBst() = default; //!< unbound; use create()/open()

    static Status create(FrontendSession &s, NodeId backend,
                         std::string_view name, MvBst *out,
                         const DsOptions &opt = {});
    static Status open(FrontendSession &s, NodeId backend,
                       std::string_view name, MvBst *out,
                       const DsOptions &opt = {});

    /** Insert or update (copy-on-write path). */
    Status insert(Key key, const Value &v);

    /** Vector insertion (shared path copies coalesce, Section 8.3). */
    Status insertBatch(std::span<const std::pair<Key, Value>> kvs);

    /** Snapshot-consistent lookup; lock-free. */
    Status find(Key key, Value *out);

    /** Remove by path copying; NotFound when absent. */
    Status erase(Key key);

    bool contains(Key key);
    uint64_t size() const { return count_; }

  private:
    MvBst(FrontendSession &s, NodeId backend, std::string name, DsId id,
          const DsOptions &opt)
        : MvBase(s, backend, std::move(name), id, opt)
    {}

    struct Node
    {
        Key key;
        uint64_t left_raw;
        uint64_t right_raw;
        Value value;
    };
    static_assert(sizeof(Node) == 88);

    struct PathElem
    {
        uint64_t raw;
        Node node;
        bool went_left;
    };

    void install();
    Status insertOne(Key key, const Value &v, bool pin);
    Status readNodeMv(uint64_t raw, Node *out, uint32_t depth, bool pin);

    /** Rebuild the path above a replaced child, bottom-up (Figure 5). */
    Status copyPathUp(const std::vector<PathElem> &path,
                      uint64_t new_child_raw, uint64_t *new_root_raw);

    uint64_t count_ = 0; //!< aux1 (writer-maintained)
};

} // namespace asymnvm

#endif // ASYMNVM_DS_MV_BST_H_
