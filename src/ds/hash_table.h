#ifndef ASYMNVM_DS_HASH_TABLE_H_
#define ASYMNVM_DS_HASH_TABLE_H_

/**
 * @file
 * Persistent chained hash table (Section 8.2).
 *
 * A fixed bucket array in the back-end data area (its address and size in
 * the naming entry's auxiliary words) with per-bucket chains of key/value
 * nodes. Caching is item-granularity: bucket head words and chain nodes
 * are cached individually, favoring hot keys. Batching brings no benefit
 * to an O(1) structure (Table 3 leaves the RCB cell empty), but the hash
 * table still participates in the op-log/memory-log pipeline.
 */

#include "ds/ds_common.h"

namespace asymnvm {

/** A persistent hash map from 64-bit keys to 64-byte values. */
class HashTable : public DsBase
{
  public:
    HashTable() = default; //!< unbound; use create()/open()

    /**
     * Create a table with @p nbuckets chains (rounded up to a power of
     * two). The bucket array is allocated eagerly.
     */
    static Status create(FrontendSession &s, NodeId backend,
                         std::string_view name, uint64_t nbuckets,
                         HashTable *out, const DsOptions &opt = {});

    static Status open(FrontendSession &s, NodeId backend,
                       std::string_view name, HashTable *out,
                       const DsOptions &opt = {});

    /** Insert or update. */
    Status put(Key key, const Value &v);

    /**
     * Insert/update as a resumable pipeline op: the chain walk co_awaits
     * every remote read (phase A); after the read set validates against
     * sibling window writes, put()'s serial tail (in-place rewrite, or
     * fresh node + bucket-head relink) runs inline and unsuspended
     * (phase B). Same-key ops in one window are WindowGate-ordered.
     */
    OpTask putAsync(Key key, Value v);

    /** Pipelined multi-put; results[i] receives kvs[i]'s status. */
    Status putMany(std::span<const std::pair<Key, Value>> kvs,
                   Status *results);

    /** Point lookup. */
    Status get(Key key, Value *out);

    /**
     * Point lookup as a resumable pipeline op: the chain walk co_awaits
     * every remote read so executePipelined can overlap several lookups
     * per round trip. Mirrors get() step for step. Only valid where
     * pipelineEligible() holds.
     */
    OpTask getAsync(Key key, Value *out);

    /**
     * Pipelined multi-lookup; results[i] receives keys[i]'s status.
     * Shared handles without the writer lock fall back to serial get().
     */
    Status getMany(std::span<const Key> keys, Value *vals,
                   Status *results);

    /** Remove; NotFound when absent. */
    Status erase(Key key);

    /**
     * Remove as a resumable pipeline op: suspendable chain walk
     * (phase A), then erase()'s unlink/free tail inline after read-set
     * validation (phase B).
     */
    OpTask eraseAsync(Key key);

    /** Pipelined multi-erase; results[i] receives keys[i]'s status. */
    Status eraseMany(std::span<const Key> keys, Status *results);

    /** True when the key is present. */
    bool contains(Key key);

    uint64_t size() const { return count_; }
    uint64_t buckets() const { return nbuckets_; }

  private:
    HashTable(FrontendSession &s, NodeId backend, std::string name,
              DsId id, const DsOptions &opt)
        : DsBase(s, backend, std::move(name), id, opt)
    {}

    struct Node
    {
        Key key;
        uint64_t next_raw;
        Value value;
    };
    static_assert(sizeof(Node) == 80);

    void install();
    Status loadShadows();
    RemotePtr bucketPtr(Key key) const;
    Status readBucketHead(Key key, uint64_t *head_raw);
    Status getLocked(Key key, Value *out);

    uint64_t array_off_ = 0; //!< aux0: bucket array NVM offset
    uint64_t nbuckets_ = 0;  //!< aux1
    uint64_t count_ = 0;     //!< aux2 (maintained by the writer)
};

} // namespace asymnvm

#endif // ASYMNVM_DS_HASH_TABLE_H_
