#include "ds/skiplist.h"

#include <algorithm>
#include <unordered_map>

namespace asymnvm {

namespace {
constexpr uint32_t kMaxHops = 1u << 20;
} // namespace

Status
SkipList::create(FrontendSession &s, NodeId backend, std::string_view name,
                 SkipList *out, const DsOptions &opt)
{
    DsId id = 0;
    Status st = s.createDs(backend, name, DsType::SkipList, &id);
    if (!ok(st))
        return st;
    *out = SkipList(s, backend, std::string(name), id, opt);

    Node sentinel{};
    sentinel.key = 0;
    sentinel.level = kMaxLevel;
    RemotePtr p;
    st = out->allocNode(sentinel, &p);
    if (!ok(st))
        return st;
    out->head_raw_ = p.raw();
    st = s.writeAux(id, backend, 0, out->head_raw_);
    if (!ok(st))
        return st;
    st = s.writeAux(id, backend, 1, 0);
    if (!ok(st))
        return st;
    st = s.flushAll();
    if (!ok(st))
        return st;
    out->install();
    return Status::Ok;
}

Status
SkipList::open(FrontendSession &s, NodeId backend, std::string_view name,
               SkipList *out, const DsOptions &opt)
{
    DsId id = 0;
    DsType type = DsType::None;
    Status st = s.openDs(backend, name, &id, &type);
    if (!ok(st))
        return st;
    if (type != DsType::SkipList)
        return Status::InvalidArgument;
    *out = SkipList(s, backend, std::string(name), id, opt);
    st = out->loadShadows();
    if (!ok(st))
        return st;
    out->install();
    return Status::Ok;
}

void
SkipList::install()
{
    s_->setReplayer(id_, backend_, [this](const ParsedOpLog &op) {
        Value v;
        if (!op.value.empty())
            std::memcpy(v.bytes.data(), op.value.data(),
                        std::min(op.value.size(), Value::kSize));
        switch (op.op) {
          case OpType::Insert:
          case OpType::Update:
            return insert(op.key, v);
          case OpType::Erase: {
            const Status st = erase(op.key);
            return st == Status::NotFound ? Status::Ok : st;
          }
          default:
            return Status::InvalidArgument;
        }
    });
}

Status
SkipList::loadShadows()
{
    Status st = s_->readAux(id_, backend_, 0, &head_raw_);
    if (!ok(st))
        return st;
    return s_->readAux(id_, backend_, 1, &count_);
}

uint32_t
SkipList::randomLevel()
{
    uint32_t level = 1;
    while (level < kMaxLevel && level_rng_.nextBool(0.5))
        ++level;
    return level;
}

Status
SkipList::findPosition(Key key, uint64_t preds[kMaxLevel],
                       uint64_t succs[kMaxLevel], bool *found, bool pin,
                       bool prefetch)
{
    *found = false;
    uint64_t cur_raw = head_raw_;
    Node cur;
    // The sentinel is the hottest node of all.
    Status st = readNode(RemotePtr::fromRaw(cur_raw), &cur, 0, true, pin);
    if (!ok(st))
        return st;
    uint32_t hops = 0;
    for (int lvl = kMaxLevel - 1; lvl >= 0; --lvl) {
        while (cur.next[lvl] != 0) {
            if (++hops > kMaxHops)
                return Status::Conflict; // torn view; retry
            Node next;
            // The current node's lower-level successors are the nodes
            // this walk reads next if the horizontal step overshoots and
            // the search descends — gather a few with this read.
            PrefetchCandidate neigh[6];
            size_t nn = 0;
            if (prefetch) {
                for (int l = lvl - 1; l >= 0 && nn < std::size(neigh);
                     --l) {
                    const uint64_t nxt = cur.next[l];
                    if (nxt == 0 || nxt == cur.next[lvl])
                        continue;
                    bool dup = false;
                    for (size_t j = 0; j < nn; ++j)
                        if (neigh[j].addr_raw == nxt)
                            dup = true;
                    if (!dup)
                        neigh[nn++] = PrefetchCandidate{
                            nxt, static_cast<uint32_t>(sizeof(Node))};
                }
            }
            // Tower height correlates with traversal level: high levels
            // are hot, low levels cold (Section 8.4 caching rule).
            st = readNode(RemotePtr::fromRaw(cur.next[lvl]), &next,
                          kMaxLevel - 1 - lvl, true, pin,
                          std::span<const PrefetchCandidate>(neigh, nn));
            if (!ok(st))
                return st;
            if (next.key >= key || next.level == 0 ||
                next.level > kMaxLevel) {
                if (next.key == key && next.level >= 1 &&
                    next.level <= kMaxLevel)
                    *found = true;
                break;
            }
            cur_raw = cur.next[lvl];
            cur = next;
        }
        preds[lvl] = cur_raw;
        succs[lvl] = cur.next[lvl];
    }
    return Status::Ok;
}

Status
SkipList::insert(Key key, const Value &v)
{
    Status st = lockForWrite();
    if (!ok(st))
        return st;
    return insertOne(key, v, /*pin=*/false);
}

Status
SkipList::insertBatch(std::span<const std::pair<Key, Value>> kvs)
{
    Status st = lockForWrite();
    if (!ok(st))
        return st;
    std::vector<std::pair<Key, Value>> sorted(kvs.begin(), kvs.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    for (const auto &[key, value] : sorted) {
        st = insertOne(key, value, /*pin=*/true);
        if (!ok(st))
            return st;
    }
    return Status::Ok;
}

Status
SkipList::insertOne(Key key, const Value &v, bool pin)
{
    Status st = s_->opBegin(id_, backend_, OpType::Insert, key,
                            v.bytes.data(), Value::kSize);
    if (!ok(st))
        return st;

    uint64_t preds[kMaxLevel], succs[kMaxLevel];
    bool found = false;
    st = findPosition(key, preds, succs, &found, pin);
    if (!ok(st))
        return st;
    if (found) {
        // Update in place.
        const RemotePtr target = RemotePtr::fromRaw(succs[0]);
        Node node;
        st = readNode(target, &node, kMaxLevel - 1);
        if (!ok(st))
            return st;
        node.value = v;
        st = writeNode(target, node);
        if (!ok(st))
            return st;
        return s_->opEnd();
    }

    // Figure 2 line 14-19: allocate, log the op, set successors in the
    // new node, then link predecessors bottom-up.
    const uint32_t level = randomLevel();
    Node fresh{};
    fresh.key = key;
    fresh.level = level;
    fresh.value = v;
    for (uint32_t l = 0; l < level; ++l)
        fresh.next[l] = succs[l];
    RemotePtr p;
    st = allocNode(fresh, &p);
    if (!ok(st))
        return st;

    // Distinct predecessors may repeat across levels; keep one evolving
    // copy per node so whole-node rewrites stay consistent.
    std::unordered_map<uint64_t, Node> pred_copies;
    for (uint32_t l = 0; l < level; ++l) {
        auto it = pred_copies.find(preds[l]);
        if (it == pred_copies.end()) {
            Node copy;
            st = readNode(RemotePtr::fromRaw(preds[l]), &copy,
                          kMaxLevel - 1 - l, true, pin);
            if (!ok(st))
                return st;
            it = pred_copies.emplace(preds[l], copy).first;
        }
        it->second.next[l] = p.raw();
        st = writeNode(RemotePtr::fromRaw(preds[l]), it->second);
        if (!ok(st))
            return st;
    }
    ++count_;
    st = s_->writeAux(id_, backend_, 1, count_);
    if (!ok(st))
        return st;
    return s_->opEnd();
}

OpTask
SkipList::insertAsync(Key key, Value v)
{
    Status st = lockForWrite();
    if (!ok(st))
        co_return st;
    // Same-key ordering: a later op on this key parks until the earlier
    // one's local effects (overlay writes) have landed.
    FrontendSession::WindowGate gate(s_, id_, key);
    while (!gate.tryAcquire())
        co_await s_->pipelineYield();
    st = s_->opBegin(id_, backend_, OpType::Insert, key, v.bytes.data(),
                     Value::kSize);
    if (!ok(st))
        co_return st;
    // Sibling ops may opBegin while this walk is suspended; remember our
    // own op-log record so phase B's memory logs reference it.
    const FrontendSession::OpRef opref = s_->currentOpRef(backend_);

    // Phase A: the findPosition walk (write-path flavor: no prefetch,
    // no pin), every read stamped for validation against sibling window
    // writes. A dirty set means a sibling relinked under us — re-walk
    // against the now-hot local tiers.
    uint64_t preds[kMaxLevel], succs[kMaxLevel];
    bool found = false;
    std::vector<FrontendSession::ReadStamp> stamps;
    while (true) {
        stamps.clear();
        found = false;
        uint64_t cur_raw = head_raw_;
        Node cur;
        {
            auto aw = readNodeAsync(RemotePtr::fromRaw(cur_raw), &cur, 0,
                                    true, false);
            const Status rst = co_await aw;
            if (!ok(rst))
                co_return rst;
            stamps.push_back({cur_raw, aw.served_seq});
        }
        uint32_t hops = 0;
        bool torn = false;
        for (int lvl = kMaxLevel - 1; lvl >= 0 && !torn; --lvl) {
            while (cur.next[lvl] != 0) {
                if (++hops > kMaxHops) {
                    torn = true;
                    break;
                }
                Node next;
                auto aw = readNodeAsync(RemotePtr::fromRaw(cur.next[lvl]),
                                        &next, kMaxLevel - 1 - lvl, true,
                                        false);
                const Status rst = co_await aw;
                if (!ok(rst))
                    co_return rst;
                stamps.push_back({cur.next[lvl], aw.served_seq});
                if (next.key >= key || next.level == 0 ||
                    next.level > kMaxLevel) {
                    if (next.key == key && next.level >= 1 &&
                        next.level <= kMaxLevel)
                        found = true;
                    break;
                }
                cur_raw = cur.next[lvl];
                cur = next;
            }
            if (torn)
                break;
            preds[lvl] = cur_raw;
            succs[lvl] = cur.next[lvl];
        }
        if (s_->pipelineReadSetClean(stamps)) {
            if (torn)
                co_return Status::Conflict; // genuine torn view
            break;
        }
        s_->notePipelineRestart();
    }

    // Phase B: insertOne's serial tail, inline and unsuspended (its
    // reads run synchronously — they are local after the walk), so the
    // whole write-out is atomic with respect to sibling ops.
    s_->restoreOpRef(backend_, opref);
    if (found) {
        const RemotePtr target = RemotePtr::fromRaw(succs[0]);
        Node node;
        st = readNode(target, &node, kMaxLevel - 1);
        if (!ok(st))
            co_return st;
        node.value = v;
        st = writeNode(target, node);
        if (!ok(st))
            co_return st;
        co_return s_->opEnd();
    }
    const uint32_t level = randomLevel();
    Node fresh{};
    fresh.key = key;
    fresh.level = level;
    fresh.value = v;
    for (uint32_t l = 0; l < level; ++l)
        fresh.next[l] = succs[l];
    RemotePtr p;
    st = allocNode(fresh, &p);
    if (!ok(st))
        co_return st;
    std::unordered_map<uint64_t, Node> pred_copies;
    for (uint32_t l = 0; l < level; ++l) {
        auto it = pred_copies.find(preds[l]);
        if (it == pred_copies.end()) {
            Node copy;
            st = readNode(RemotePtr::fromRaw(preds[l]), &copy,
                          kMaxLevel - 1 - l, true, false);
            if (!ok(st))
                co_return st;
            it = pred_copies.emplace(preds[l], copy).first;
        }
        it->second.next[l] = p.raw();
        st = writeNode(RemotePtr::fromRaw(preds[l]), it->second);
        if (!ok(st))
            co_return st;
    }
    ++count_;
    st = s_->writeAux(id_, backend_, 1, count_);
    if (!ok(st))
        co_return st;
    co_return s_->opEnd();
}

Status
SkipList::insertMany(std::span<const std::pair<Key, Value>> kvs,
                     Status *results)
{
    if (kvs.empty())
        return Status::Ok;
    if (!pipelineEligible()) {
        for (size_t i = 0; i < kvs.size(); ++i)
            results[i] = insert(kvs[i].first, kvs[i].second);
        return Status::Ok;
    }
    std::vector<OpTask> ops;
    ops.reserve(kvs.size());
    for (const auto &[key, value] : kvs)
        ops.push_back(insertAsync(key, value));
    s_->executePipelined(std::span<OpTask>(ops),
                         std::span<Status>(results, kvs.size()));
    return Status::Ok;
}

Status
SkipList::findLocked(Key key, Value *out)
{
    uint64_t preds[kMaxLevel], succs[kMaxLevel];
    bool found = false;
    const Status st = findPosition(key, preds, succs, &found,
                                   /*pin=*/false, /*prefetch=*/true);
    if (!ok(st))
        return st;
    if (!found)
        return Status::NotFound;
    Node node;
    const Status rst =
        readNode(RemotePtr::fromRaw(succs[0]), &node, kMaxLevel - 1);
    if (!ok(rst))
        return rst;
    *out = node.value;
    return Status::Ok;
}

Status
SkipList::find(Key key, Value *out)
{
    return optimisticRead([&] { return findLocked(key, out); });
}

OpTask
SkipList::findAsync(Key key, Value *out)
{
    // Mirror of findLocked: the findPosition walk (prefetch on, pin off)
    // inlined so every readNode becomes a co_awaited readNodeAsync; a
    // cache miss suspends the walk and the session reactor gathers it
    // with the other in-flight lookups' misses. The candidate array
    // lives in the coroutine frame, valid across suspension.
    //
    // Read-your-writes: wait out a same-key write admitted earlier in
    // this window (it holds the (ds, key) gate until its local effects
    // land); readers hold nothing and never serialize on each other.
    while (s_->pipelineGateHeld(id_, key))
        co_await s_->pipelineYield();
    uint64_t cur_raw = head_raw_;
    Node cur;
    Status st = co_await readNodeAsync(RemotePtr::fromRaw(cur_raw), &cur,
                                       0, true, false);
    if (!ok(st))
        co_return st;
    bool found = false;
    uint64_t succ0 = 0;
    uint32_t hops = 0;
    PrefetchCandidate neigh[6];
    for (int lvl = kMaxLevel - 1; lvl >= 0; --lvl) {
        while (cur.next[lvl] != 0) {
            if (++hops > kMaxHops)
                co_return Status::Conflict; // torn view; retry
            Node next;
            size_t nn = 0;
            for (int l = lvl - 1; l >= 0 && nn < std::size(neigh); --l) {
                const uint64_t nxt = cur.next[l];
                if (nxt == 0 || nxt == cur.next[lvl])
                    continue;
                bool dup = false;
                for (size_t j = 0; j < nn; ++j)
                    if (neigh[j].addr_raw == nxt)
                        dup = true;
                if (!dup)
                    neigh[nn++] = PrefetchCandidate{
                        nxt, static_cast<uint32_t>(sizeof(Node))};
            }
            st = co_await readNodeAsync(
                RemotePtr::fromRaw(cur.next[lvl]), &next,
                kMaxLevel - 1 - lvl, true, false,
                std::span<const PrefetchCandidate>(neigh, nn));
            if (!ok(st))
                co_return st;
            if (next.key >= key || next.level == 0 ||
                next.level > kMaxLevel) {
                if (next.key == key && next.level >= 1 &&
                    next.level <= kMaxLevel)
                    found = true;
                break;
            }
            cur_raw = cur.next[lvl];
            cur = next;
        }
        if (lvl == 0)
            succ0 = cur.next[0];
    }
    if (!found)
        co_return Status::NotFound;
    Node node;
    st = co_await readNodeAsync(RemotePtr::fromRaw(succ0), &node,
                                kMaxLevel - 1);
    if (!ok(st))
        co_return st;
    *out = node.value;
    co_return Status::Ok;
}

Status
SkipList::findMany(std::span<const Key> keys, Value *vals, Status *results)
{
    if (keys.empty())
        return Status::Ok;
    if (!pipelineEligible()) {
        for (size_t i = 0; i < keys.size(); ++i)
            results[i] = find(keys[i], &vals[i]);
        return Status::Ok;
    }
    std::vector<OpTask> ops;
    ops.reserve(keys.size());
    for (size_t i = 0; i < keys.size(); ++i)
        ops.push_back(findAsync(keys[i], &vals[i]));
    s_->executePipelined(std::span<OpTask>(ops),
                         std::span<Status>(results, keys.size()));
    return Status::Ok;
}

Status
SkipList::scan(Key from, uint32_t limit,
               std::vector<std::pair<Key, Value>> *out)
{
    return optimisticRead([&]() -> Status {
        out->clear();
        uint64_t preds[kMaxLevel], succs[kMaxLevel];
        bool found = false;
        Status st = findPosition(from, preds, succs, &found,
                                 /*pin=*/false, /*prefetch=*/true);
        if (!ok(st))
            return st;
        // The bottom level is a sorted linked list; walk it forward.
        // Labeling the hops with the run's anchor lets repeated scans of
        // the same range learn and gather the whole bottom-level run.
        const uint64_t scan_stream = succs[0];
        uint64_t cur_raw = succs[0];
        uint32_t hops = 0;
        while (cur_raw != 0 && out->size() < limit) {
            if (++hops > kMaxHops)
                return Status::Conflict;
            Node node;
            st = readNode(RemotePtr::fromRaw(cur_raw), &node,
                          kMaxLevel - 1, true, false, {}, scan_stream);
            if (!ok(st))
                return st;
            if (node.level == 0 || node.level > kMaxLevel)
                return Status::Conflict; // torn view
            if (node.key >= from)
                out->emplace_back(node.key, node.value);
            cur_raw = node.next[0];
        }
        return Status::Ok;
    });
}

bool
SkipList::contains(Key key)
{
    Value v;
    return find(key, &v) == Status::Ok;
}

Status
SkipList::erase(Key key)
{
    Status st = lockForWrite();
    if (!ok(st))
        return st;
    st = s_->opBegin(id_, backend_, OpType::Erase, key, nullptr, 0);
    if (!ok(st))
        return st;

    uint64_t preds[kMaxLevel], succs[kMaxLevel];
    bool found = false;
    st = findPosition(key, preds, succs, &found);
    if (!ok(st))
        return st;
    if (!found) {
        st = s_->opEnd();
        return ok(st) ? Status::NotFound : st;
    }
    const RemotePtr target = RemotePtr::fromRaw(succs[0]);
    Node victim;
    st = readNode(target, &victim, kMaxLevel - 1);
    if (!ok(st))
        return st;

    // Unlink top-down: a crash mid-erase then leaves the victim still a
    // member of the bottom list (a benign shorter-tower state). The
    // reverse order would strand upper-level links routing through a
    // node already gone from level 0, silently swallowing any later
    // insert whose level-0 predecessor resolves to the dead node.
    std::unordered_map<uint64_t, Node> pred_copies;
    for (uint32_t l = victim.level; l-- > 0;) {
        if (succs[l] != target.raw())
            continue; // the tower does not reach this level's successor
        auto it = pred_copies.find(preds[l]);
        if (it == pred_copies.end()) {
            Node copy;
            st = readNode(RemotePtr::fromRaw(preds[l]), &copy,
                          kMaxLevel - 1 - l);
            if (!ok(st))
                return st;
            it = pred_copies.emplace(preds[l], copy).first;
        }
        it->second.next[l] = victim.next[l];
        st = writeNode(RemotePtr::fromRaw(preds[l]), it->second);
        if (!ok(st))
            return st;
    }
    if (opt_.shared)
        s_->retire(id_, target, sizeof(Node)); // readers may still visit
    else {
        st = s_->free(target, sizeof(Node));
        if (!ok(st))
            return st;
    }
    --count_;
    st = s_->writeAux(id_, backend_, 1, count_);
    if (!ok(st))
        return st;
    return s_->opEnd();
}

OpTask
SkipList::eraseAsync(Key key)
{
    Status st = lockForWrite();
    if (!ok(st))
        co_return st;
    FrontendSession::WindowGate gate(s_, id_, key);
    while (!gate.tryAcquire())
        co_await s_->pipelineYield();
    st = s_->opBegin(id_, backend_, OpType::Erase, key, nullptr, 0);
    if (!ok(st))
        co_return st;
    const FrontendSession::OpRef opref = s_->currentOpRef(backend_);

    // Phase A: suspendable findPosition walk, stamped (see insertAsync).
    uint64_t preds[kMaxLevel], succs[kMaxLevel];
    bool found = false;
    std::vector<FrontendSession::ReadStamp> stamps;
    while (true) {
        stamps.clear();
        found = false;
        uint64_t cur_raw = head_raw_;
        Node cur;
        {
            auto aw = readNodeAsync(RemotePtr::fromRaw(cur_raw), &cur, 0,
                                    true, false);
            const Status rst = co_await aw;
            if (!ok(rst))
                co_return rst;
            stamps.push_back({cur_raw, aw.served_seq});
        }
        uint32_t hops = 0;
        bool torn = false;
        for (int lvl = kMaxLevel - 1; lvl >= 0 && !torn; --lvl) {
            while (cur.next[lvl] != 0) {
                if (++hops > kMaxHops) {
                    torn = true;
                    break;
                }
                Node next;
                auto aw = readNodeAsync(RemotePtr::fromRaw(cur.next[lvl]),
                                        &next, kMaxLevel - 1 - lvl, true,
                                        false);
                const Status rst = co_await aw;
                if (!ok(rst))
                    co_return rst;
                stamps.push_back({cur.next[lvl], aw.served_seq});
                if (next.key >= key || next.level == 0 ||
                    next.level > kMaxLevel) {
                    if (next.key == key && next.level >= 1 &&
                        next.level <= kMaxLevel)
                        found = true;
                    break;
                }
                cur_raw = cur.next[lvl];
                cur = next;
            }
            if (torn)
                break;
            preds[lvl] = cur_raw;
            succs[lvl] = cur.next[lvl];
        }
        if (s_->pipelineReadSetClean(stamps)) {
            if (torn)
                co_return Status::Conflict;
            break;
        }
        s_->notePipelineRestart();
    }
    if (!found) {
        st = s_->opEnd();
        co_return ok(st) ? Status::NotFound : st;
    }

    // Phase B: erase()'s serial tail — victim read, top-down unlink,
    // free/retire — inline and unsuspended.
    s_->restoreOpRef(backend_, opref);
    const RemotePtr target = RemotePtr::fromRaw(succs[0]);
    Node victim;
    st = readNode(target, &victim, kMaxLevel - 1);
    if (!ok(st))
        co_return st;
    std::unordered_map<uint64_t, Node> pred_copies;
    for (uint32_t l = victim.level; l-- > 0;) {
        if (succs[l] != target.raw())
            continue;
        auto it = pred_copies.find(preds[l]);
        if (it == pred_copies.end()) {
            Node copy;
            st = readNode(RemotePtr::fromRaw(preds[l]), &copy,
                          kMaxLevel - 1 - l);
            if (!ok(st))
                co_return st;
            it = pred_copies.emplace(preds[l], copy).first;
        }
        it->second.next[l] = victim.next[l];
        st = writeNode(RemotePtr::fromRaw(preds[l]), it->second);
        if (!ok(st))
            co_return st;
    }
    if (opt_.shared)
        s_->retire(id_, target, sizeof(Node));
    else {
        st = s_->free(target, sizeof(Node));
        if (!ok(st))
            co_return st;
    }
    --count_;
    st = s_->writeAux(id_, backend_, 1, count_);
    if (!ok(st))
        co_return st;
    co_return s_->opEnd();
}

Status
SkipList::eraseMany(std::span<const Key> keys, Status *results)
{
    if (keys.empty())
        return Status::Ok;
    if (!pipelineEligible()) {
        for (size_t i = 0; i < keys.size(); ++i)
            results[i] = erase(keys[i]);
        return Status::Ok;
    }
    std::vector<OpTask> ops;
    ops.reserve(keys.size());
    for (const Key key : keys)
        ops.push_back(eraseAsync(key));
    s_->executePipelined(std::span<OpTask>(ops),
                         std::span<Status>(results, keys.size()));
    return Status::Ok;
}

} // namespace asymnvm
