#ifndef ASYMNVM_DS_QUEUE_H_
#define ASYMNVM_DS_QUEUE_H_

/**
 * @file
 * Persistent FIFO queue (Section 8.1).
 *
 * Linked list with head and tail references in the naming entry's
 * auxiliary words. Like Stack, the queue exploits operation-log
 * annulment: when no materialized element remains, dequeues are served
 * from the pending (un-materialized) enqueues of the current batch, and
 * the annulled pairs never produce memory logs. Queues are not shared
 * between front-ends (Section 9.5).
 */

#include <deque>

#include "ds/ds_common.h"

namespace asymnvm {

/** A persistent FIFO queue of 64-byte values. */
class Queue : public DsBase
{
  public:
    Queue() = default; //!< unbound; use create()/open()

    static Status create(FrontendSession &s, NodeId backend,
                         std::string_view name, Queue *out,
                         const DsOptions &opt = {});
    static Status open(FrontendSession &s, NodeId backend,
                       std::string_view name, Queue *out,
                       const DsOptions &opt = {});

    /** Append one value at the tail. */
    Status enqueue(const Value &v);

    /** Remove the oldest value; NotFound when empty. */
    Status dequeue(Value *out);

    /**
     * Enqueue as a resumable pipeline op. The deferred path is fully
     * local; the materialized path's old-tail read co_awaits (phase A)
     * before the link/shadow write-out runs inline (phase B). Ops on one
     * queue are ordered by a per-structure WindowGate (head/tail/count
     * shadows are member state); ops on other structures overlap freely.
     */
    OpTask enqueueAsync(Value v);

    /** Pipelined multi-enqueue; results[i] receives vals[i]'s status. */
    Status enqueueMany(std::span<const Value> vals, Status *results);

    /**
     * Dequeue as a resumable pipeline op. Annulment and the empty case
     * resolve locally; the materialized path co_awaits the head-node
     * read (phase A) and replays dequeue()'s shadow-update/free tail
     * inline after read-set validation (phase B). Same per-structure
     * WindowGate ordering as enqueueAsync.
     */
    OpTask dequeueAsync(Value *out);

    /** Pipelined multi-dequeue; results[i] receives outs[i]'s status. */
    Status dequeueMany(std::span<Value> outs, Status *results);

    /** Peek the oldest value. */
    Status front(Value *out);

    uint64_t size() const;

  private:
    Queue(FrontendSession &s, NodeId backend, std::string name, DsId id,
          const DsOptions &opt)
        : DsBase(s, backend, std::move(name), id, opt)
    {}

    struct Node
    {
        Value value;
        uint64_t next_raw;
        uint64_t pad;
    };
    static_assert(sizeof(Node) == 80);

    void install();
    Status loadShadows();
    Status materializePending();
    Status materializeOne(const Value &v);
    Status writeShadows();
    bool deferWrites() const
    {
        return !s_->config().symmetric && s_->config().use_txlog;
    }

    uint64_t head_raw_ = 0; //!< aux0
    uint64_t tail_raw_ = 0; //!< aux1
    uint64_t count_ = 0;    //!< aux2 (materialized)
    std::deque<Value> pending_;
};

} // namespace asymnvm

#endif // ASYMNVM_DS_QUEUE_H_
