#ifndef ASYMNVM_DS_BPTREE_H_
#define ASYMNVM_DS_BPTREE_H_

/**
 * @file
 * Persistent B+tree with fan-out 32 (Sections 8.3 and 9.2).
 *
 * Internal nodes route by separator keys; leaves hold pointers to 64-byte
 * value cells and are chained for range scans. Upper levels are cached
 * with the adaptive level threshold; leaves and value cells mostly read
 * remote. Deletion is by lazy leaf compaction (no merges), a common
 * simplification for NVM trees.
 */

#include <span>
#include <vector>

#include "ds/ds_common.h"

namespace asymnvm {

/** A persistent ordered map implemented as a B+tree. */
class BpTree : public DsBase
{
  public:
    static constexpr uint32_t kFanout = 32;

    BpTree() = default; //!< unbound; use create()/open()

    static Status create(FrontendSession &s, NodeId backend,
                         std::string_view name, BpTree *out,
                         const DsOptions &opt = {});
    static Status open(FrontendSession &s, NodeId backend,
                       std::string_view name, BpTree *out,
                       const DsOptions &opt = {});

    /** Insert or update. */
    Status insert(Key key, const Value &v);

    /**
     * Insert/update as a resumable pipeline op: the descent co_awaits
     * every remote read (phase A), then — once the read set validates
     * against sibling window writes — replays the serial write-out
     * inline (phase B: allocs, memory logs, splits, root growth, in
     * exactly insert()'s order). Same-key ops in one window are ordered
     * by a WindowGate; a sibling write under the descent restarts it
     * from the (now hot) local tiers. Depth 1 never suspends, so the
     * op is bit-identical to insert().
     */
    OpTask insertAsync(Key key, Value v);

    /**
     * Pipelined multi-insert: up to SessionConfig::pipeline_depth
     * insertAsync descents in flight; their traversal reads share the
     * per-round gather, their op-log appends ride one doorbell chain,
     * and all commit fences coalesce into one flushAll at drain.
     * Shared handles without the writer lock fall back to serial
     * insert() per pair.
     */
    Status insertMany(std::span<const std::pair<Key, Value>> kvs,
                      Status *results);

    /** Vector insertion (Algorithm 3; sorted, path-sharing). */
    Status insertBatch(std::span<const std::pair<Key, Value>> kvs);

    /** Point lookup. */
    Status find(Key key, Value *out);

    /**
     * Point lookup as a resumable pipeline op: the traversal co_awaits
     * every remote read, letting FrontendSession::executePipelined keep
     * several lookups' reads in flight per round trip. Mirrors find()
     * step for step (same hints, guards and sibling gather candidates).
     * Only valid on handles where pipelineEligible() holds.
     */
    OpTask findAsync(Key key, Value *out);

    /**
     * Pipelined multi-lookup: runs up to SessionConfig::pipeline_depth
     * findAsync traversals concurrently; results[i] receives the status
     * of keys[i]. Shared handles without the writer lock fall back to
     * serial find() per key (seqlock tracking is session-global).
     */
    Status findMany(std::span<const Key> keys, Value *vals,
                    Status *results);

    /** Range scan: up to @p limit pairs with key >= @p from. */
    Status scan(Key from, uint32_t limit,
                std::vector<std::pair<Key, Value>> *out);

    /** Remove; NotFound when absent. */
    Status erase(Key key);

    /**
     * Remove as a resumable pipeline op. Phase A descends to the leaf
     * with suspendable reads; phase B replays erase()'s compaction,
     * cell free/retire and aux update inline after read-set validation.
     * Same WindowGate / restart discipline as insertAsync.
     */
    OpTask eraseAsync(Key key);

    /** Pipelined multi-erase; results[i] receives keys[i]'s status. */
    Status eraseMany(std::span<const Key> keys, Status *results);

    bool contains(Key key);
    uint64_t size() const { return count_; }

  private:
    BpTree(FrontendSession &s, NodeId backend, std::string name, DsId id,
           const DsOptions &opt)
        : DsBase(s, backend, std::move(name), id, opt)
    {}

    struct Node
    {
        uint16_t is_leaf;
        uint16_t count;
        uint32_t pad;
        uint64_t next_raw; //!< leaf chain
        Key keys[kFanout];
        uint64_t children[kFanout];
    };
    static_assert(sizeof(Node) == 16 + 16 * kFanout);

    /** Result of a recursive insert: a split to propagate upward. */
    struct Split
    {
        bool happened = false;
        Key sep_key = 0;
        uint64_t right_raw = 0;
    };

    void install();
    Status readRoot(uint64_t *root_raw, bool pin);
    Status writeRoot(uint64_t root_raw);
    Status insertOne(Key key, const Value &v, bool pin);
    Status insertRecurse(uint64_t node_raw, uint32_t depth, Key key,
                         const Value &v, bool pin, Split *split,
                         bool *added);
    /**
     * Descend to the leaf covering @p key. With @p prefetch (read-only
     * operations), each child read carries the nearest sibling children
     * around the taken route as gather candidates — range locality makes
     * the next lookup likely to land in one of them.
     */
    Status findLeaf(Key key, bool pin, uint64_t *leaf_raw, Node *leaf,
                    uint32_t *depth, bool prefetch = false);
    Status findLocked(Key key, Value *out, bool pin);

    /**
     * Phase B of insertAsync: replay insert()'s exact write sequence
     * (value-cell alloc + memory log, leaf insert or split, bottom-up
     * split absorption, root growth) against the validated node copies
     * captured during the suspendable descent. Runs inline — no
     * suspension — so it is atomic with respect to sibling window ops.
     */
    Status insertWriteout(std::vector<std::pair<uint64_t, Node>> &path,
                          Key key, const Value &v, bool *added);

    /** Index of the child to descend into (internal nodes). */
    static uint32_t routeIndex(const Node &n, Key key);

    uint64_t count_ = 0; //!< aux1
};

} // namespace asymnvm

#endif // ASYMNVM_DS_BPTREE_H_
