#ifndef ASYMNVM_DS_PARTITIONED_H_
#define ASYMNVM_DS_PARTITIONED_H_

/**
 * @file
 * Key-hash partitioning (Section 8.3 "Data Structure Partition" and the
 * multi-back-end support of Section 4.3).
 *
 * A partitioned structure is k independent instances, each with its own
 * writer lock and index, spread round-robin across the available back-end
 * nodes. The front-end routes each operation by key hash; readers of one
 * partition never contend with the writer of another, which is what
 * removes the lock bottleneck in Figure 10. The partition count (the
 * "mapping table between key range and partition") is persisted in the
 * naming space of the first back-end for recovery.
 */

#include <deque>
#include <functional>
#include <span>
#include <vector>

#include "common/hash.h"
#include "ds/ds_common.h"

namespace asymnvm {

/** k-way key-hash partitioning over any keyed structure. */
template <typename DS>
class Partitioned
{
  public:
    /** Creates partition i of @p nparts on its assigned back-end. */
    using MakeFn = std::function<Status(FrontendSession &, NodeId,
                                        std::string_view, DS *)>;

    Partitioned() = default;

    /**
     * Create @p nparts partitions named "<name>/p<i>" spread over
     * @p backends, plus the persistent coordinator entry.
     */
    static Status create(FrontendSession &s,
                         std::span<const NodeId> backends,
                         std::string_view name, uint32_t nparts,
                         Partitioned *out, MakeFn make)
    {
        if (backends.empty() || nparts == 0)
            return Status::InvalidArgument;
        DsId coord = 0;
        Status st = s.createDs(backends[0], name, DsType::Raw, &coord);
        if (!ok(st))
            return st;
        st = s.writeAux(coord, backends[0], 0, nparts);
        if (!ok(st))
            return st;
        st = s.flushAll();
        if (!ok(st))
            return st;
        return buildParts(s, backends, name, nparts, out,
                          std::move(make));
    }

    /** Open an existing partitioned structure. */
    static Status open(FrontendSession &s,
                       std::span<const NodeId> backends,
                       std::string_view name, Partitioned *out,
                       MakeFn open_fn)
    {
        if (backends.empty())
            return Status::InvalidArgument;
        DsId coord = 0;
        DsType type = DsType::None;
        Status st = s.openDs(backends[0], name, &coord, &type);
        if (!ok(st))
            return st;
        if (type != DsType::Raw)
            return Status::InvalidArgument;
        uint64_t nparts = 0;
        st = s.readAux(coord, backends[0], 0, &nparts);
        if (!ok(st))
            return st;
        return buildParts(s, backends, name,
                          static_cast<uint32_t>(nparts), out,
                          std::move(open_fn));
    }

    /** The partition owning @p key. */
    DS &partitionFor(Key key)
    {
        return parts_[mix64(key) % parts_.size()];
    }

    uint32_t partitionCount() const
    {
        return static_cast<uint32_t>(parts_.size());
    }

    DS &partition(uint32_t i) { return parts_[i]; }

    /** Keyed insert routed by hash (put() or insert(), whichever DS has). */
    Status insert(Key key, const Value &v)
    {
        DS &p = partitionFor(key);
        if constexpr (requires { p.put(key, v); })
            return p.put(key, v);
        else
            return p.insert(key, v);
    }

    /** Keyed lookup routed by hash. */
    Status find(Key key, Value *out)
    {
        DS &p = partitionFor(key);
        if constexpr (requires { p.get(key, out); })
            return p.get(key, out);
        else
            return p.find(key, out);
    }

    /** Keyed removal routed by hash. */
    Status erase(Key key) { return partitionFor(key).erase(key); }

    uint64_t size() const
    {
        uint64_t n = 0;
        for (const DS &p : parts_)
            n += p.size();
        return n;
    }

  private:
    static Status buildParts(FrontendSession &s,
                             std::span<const NodeId> backends,
                             std::string_view name, uint32_t nparts,
                             Partitioned *out, MakeFn make)
    {
        out->parts_.clear();
        // deque: handles must not relocate (their hooks capture `this`).
        for (uint32_t i = 0; i < nparts; ++i)
            out->parts_.emplace_back();
        for (uint32_t i = 0; i < nparts; ++i) {
            const NodeId be = backends[i % backends.size()];
            const std::string pname =
                std::string(name) + "/p" + std::to_string(i);
            const Status st = make(s, be, pname, &out->parts_[i]);
            if (!ok(st))
                return st;
        }
        return Status::Ok;
    }

    std::deque<DS> parts_;
};

} // namespace asymnvm

#endif // ASYMNVM_DS_PARTITIONED_H_
