#ifndef ASYMNVM_DS_PARTITIONED_H_
#define ASYMNVM_DS_PARTITIONED_H_

/**
 * @file
 * Key-hash partitioning (Section 8.3 "Data Structure Partition" and the
 * multi-back-end support of Section 4.3), failure-aware.
 *
 * A partitioned structure is k independent instances, each with its own
 * writer lock and index, spread round-robin across the available back-end
 * nodes. The front-end routes each operation by key hash; readers of one
 * partition never contend with the writer of another, which is what
 * removes the lock bottleneck in Figure 10.
 *
 * Failure awareness: each shard carries a health state. An operation
 * routed to a shard whose back-end is down fast-fails with
 * Status::Unavailable instead of blocking the caller in the session's
 * full failover wait — the surviving k-1 shards keep serving at full
 * speed. Unavailable shards re-attach in the background (any later
 * operation, or an explicit tickHealth(), probes the back-end through
 * the session's non-blocking heal path and rejoins once a promoted or
 * restarted incarnation serves again). Reads may optionally be answered
 * from a caller-provided degraded source while a shard is down.
 *
 * The partition count (the "mapping table between key range and
 * partition") is persisted in the naming space of *every* back-end, so
 * open() survives the death of any single node.
 */

#include <deque>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/hash.h"
#include "ds/ds_common.h"

namespace asymnvm {

/** Health of one shard of a partitioned structure. */
enum class ShardHealth
{
    Healthy,     //!< serving normally
    FailingOver, //!< last op hit a back-end failure; re-probe pending
    Degraded,    //!< back-end confirmed down; ops fast-fail Unavailable
    Detached,    //!< administratively removed; never re-probed
};

/** k-way key-hash partitioning over any keyed structure. */
template <typename DS>
class Partitioned
{
  public:
    /** Creates (or opens) partition i of @p nparts on its back-end. */
    using MakeFn = std::function<Status(FrontendSession &, NodeId,
                                        std::string_view, DS *)>;

    /** Optional alternate read source while a shard is unavailable. */
    using DegradedReadFn =
        std::function<Status(uint32_t shard, Key key, Value *out)>;

    Partitioned() = default;

    /**
     * Create @p nparts partitions named "<name>/p<i>" spread over
     * @p backends. The coordinator entry (partition count) is replicated
     * into every back-end's naming space so a later open() does not
     * depend on any single node surviving.
     */
    static Status create(FrontendSession &s,
                         std::span<const NodeId> backends,
                         std::string_view name, uint32_t nparts,
                         Partitioned *out, MakeFn make)
    {
        if (backends.empty() || nparts == 0)
            return Status::InvalidArgument;
        for (const NodeId be : backends) {
            DsId coord = 0;
            Status st = s.createDs(be, name, DsType::Raw, &coord);
            if (!ok(st))
                return st;
            st = s.writeAux(coord, be, 0, nparts);
            if (!ok(st))
                return st;
        }
        Status st = s.flushAll();
        if (!ok(st))
            return st;
        return buildParts(s, backends, name, nparts, out,
                          std::move(make), /*allow_degraded=*/false);
    }

    /**
     * Open an existing partitioned structure. The coordinator entry is
     * read from the first back-end that answers (fast-fail probing, in
     * roster order); shards whose back-end is down open in Degraded
     * state — their k-1 siblings serve immediately, and the dead shards
     * re-attach lazily once their back-end comes back.
     */
    static Status open(FrontendSession &s,
                       std::span<const NodeId> backends,
                       std::string_view name, Partitioned *out,
                       MakeFn open_fn)
    {
        if (backends.empty())
            return Status::InvalidArgument;
        uint64_t nparts = 0;
        bool have_coord = false;
        for (const NodeId be : backends) {
            FastFailoverScope ff(s, kProbeAttempts);
            DsId coord = 0;
            DsType type = DsType::None;
            Status st = s.openDs(be, name, &coord, &type);
            if (isShardFailure(st))
                continue; // this replica of the entry is down; next
            if (!ok(st))
                return st;
            if (type != DsType::Raw)
                return Status::InvalidArgument;
            st = s.readAux(coord, be, 0, &nparts);
            if (isShardFailure(st))
                continue;
            if (!ok(st))
                return st;
            have_coord = true;
            break;
        }
        if (!have_coord)
            return Status::Unavailable;
        return buildParts(s, backends, name,
                          static_cast<uint32_t>(nparts), out,
                          std::move(open_fn), /*allow_degraded=*/true);
    }

    /** The shard index owning @p key. */
    uint32_t shardForKey(Key key) const
    {
        return static_cast<uint32_t>(mix64(key) % shards_.size());
    }

    /** The partition owning @p key (health-blind direct access). */
    DS &partitionFor(Key key) { return shards_[shardForKey(key)].ds; }

    uint32_t partitionCount() const
    {
        return static_cast<uint32_t>(shards_.size());
    }

    DS &partition(uint32_t i) { return shards_[i].ds; }

    NodeId shardBackend(uint32_t i) const { return shards_[i].backend; }

    ShardHealth shardHealth(uint32_t i) const
    {
        return shards_[i].health;
    }

    /** Administratively remove a shard; it is never probed again. */
    void detachShard(uint32_t i)
    {
        shards_[i].health = ShardHealth::Detached;
    }

    /** Serve reads for unavailable shards from @p fn (e.g. a local
     *  stale replica). Cleared by passing a default-constructed fn. */
    void setDegradedRead(DegradedReadFn fn)
    {
        degraded_read_ = std::move(fn);
    }

    /** Keyed insert routed by hash (put() or insert(), whichever DS has). */
    Status insert(Key key, const Value &v)
    {
        return routed(shardForKey(key), [&](DS &p) {
            if constexpr (requires { p.put(key, v); })
                return p.put(key, v);
            else
                return p.insert(key, v);
        });
    }

    /** Keyed lookup routed by hash; falls back to the degraded read
     *  source (when configured) if the owning shard is unavailable. */
    Status find(Key key, Value *out)
    {
        const uint32_t idx = shardForKey(key);
        const Status st = routed(idx, [&](DS &p) {
            if constexpr (requires { p.get(key, out); })
                return p.get(key, out);
            else
                return p.find(key, out);
        });
        if (st == Status::Unavailable && degraded_read_)
            return degraded_read_(idx, key, out);
        return st;
    }

    /** Keyed removal routed by hash. */
    Status erase(Key key)
    {
        return routed(shardForKey(key),
                      [&](DS &p) { return p.erase(key); });
    }

    /**
     * Probe every unhealthy shard once (background re-attach driver).
     * Returns the number of shards serving afterwards.
     */
    uint32_t tickHealth()
    {
        uint32_t serving = 0;
        for (uint32_t i = 0; i < shards_.size(); ++i) {
            Shard &sh = shards_[i];
            if (sh.health != ShardHealth::Healthy &&
                sh.health != ShardHealth::Detached)
                tryReattach(i);
            if (sh.health == ShardHealth::Healthy)
                ++serving;
        }
        return serving;
    }

    /** Ops that fast-failed Unavailable because their shard was down. */
    uint64_t unavailableOps() const { return unavailable_ops_; }

    /** Entries across the shards that are open (degraded shards that
     *  were never opened contribute nothing until they re-attach). */
    uint64_t size() const
    {
        uint64_t n = 0;
        for (const Shard &sh : shards_) {
            if (sh.opened)
                n += sh.ds.size();
        }
        return n;
    }

  private:
    struct Shard
    {
        DS ds;
        NodeId backend = 0;
        ShardHealth health = ShardHealth::Healthy;
        bool opened = false; //!< false: deferred by a degraded open()
    };

    /**
     * Shard operations must not block in the session's full failover
     * wait (max_attempts x wait_quantum of virtual time) — the whole
     * point of per-shard health is that a dead shard costs its callers
     * a fast Unavailable, not a stall. This scope temporarily swaps the
     * session to a short, zero-wait probe budget.
     */
    class FastFailoverScope
    {
      public:
        FastFailoverScope(FrontendSession &s, uint32_t attempts)
            : s_(s), saved_(s.failoverConfig())
        {
            FailoverConfig fast;
            fast.max_attempts = attempts;
            fast.wait_quantum_ns = 0;
            s_.setFailoverConfig(fast);
        }
        ~FastFailoverScope() { s_.setFailoverConfig(saved_); }
        FastFailoverScope(const FastFailoverScope &) = delete;
        FastFailoverScope &operator=(const FastFailoverScope &) = delete;

      private:
        FrontendSession &s_;
        FailoverConfig saved_;
    };

    /** Probe polls granted to a fast-failing shard op: enough to ride
     *  through an already-healed back-end, far short of a stall. */
    static constexpr uint32_t kProbeAttempts = 2;

    /** Failures that mean "this shard's back-end is down", as opposed
     *  to structure-level outcomes like NotFound. */
    static bool isShardFailure(Status st)
    {
        return st == Status::BackendCrashed || st == Status::Timeout ||
               st == Status::QpError || st == Status::Unavailable;
    }

    template <typename Fn>
    Status routed(uint32_t idx, Fn &&fn)
    {
        Shard &sh = shards_[idx];
        if (sh.health == ShardHealth::Detached) {
            ++unavailable_ops_;
            return Status::Unavailable;
        }
        if (sh.health != ShardHealth::Healthy) {
            tryReattach(idx);
            if (sh.health != ShardHealth::Healthy) {
                ++unavailable_ops_;
                return Status::Unavailable;
            }
        }
        Status st;
        {
            FastFailoverScope ff(*s_, kProbeAttempts);
            st = fn(sh.ds);
        }
        if (isShardFailure(st)) {
            sh.health = ShardHealth::FailingOver;
            ++unavailable_ops_;
            return Status::Unavailable;
        }
        return st;
    }

    /**
     * One non-blocking re-attach attempt: heal the session's view of
     * the shard's back-end (picks up a promoted or restarted
     * incarnation if one serves), lazily open the shard if a degraded
     * open() skipped it, and mark every opened sibling shard of the
     * same back-end healthy again.
     */
    void tryReattach(uint32_t idx)
    {
        Shard &sh = shards_[idx];
        if (sh.health == ShardHealth::Detached ||
            sh.health == ShardHealth::Healthy)
            return;
        if (!ok(s_->tryHeal(sh.backend))) {
            sh.health = ShardHealth::Degraded;
            return;
        }
        if (!sh.opened) {
            FastFailoverScope ff(*s_, kProbeAttempts);
            const std::string pname =
                name_ + "/p" + std::to_string(idx);
            if (!ok(reopen_(*s_, sh.backend, pname, &sh.ds))) {
                sh.health = ShardHealth::Degraded;
                return;
            }
            sh.opened = true;
        }
        sh.health = ShardHealth::Healthy;
        for (Shard &other : shards_) {
            if (&other != &sh && other.backend == sh.backend &&
                other.opened &&
                (other.health == ShardHealth::FailingOver ||
                 other.health == ShardHealth::Degraded))
                other.health = ShardHealth::Healthy;
        }
    }

    static Status buildParts(FrontendSession &s,
                             std::span<const NodeId> backends,
                             std::string_view name, uint32_t nparts,
                             Partitioned *out, MakeFn make,
                             bool allow_degraded)
    {
        if (nparts == 0)
            return Status::InvalidArgument;
        out->s_ = &s;
        out->name_ = std::string(name);
        out->shards_.clear();
        // deque: handles must not relocate (their hooks capture `this`).
        for (uint32_t i = 0; i < nparts; ++i) {
            out->shards_.emplace_back();
            out->shards_.back().backend = backends[i % backends.size()];
        }
        for (uint32_t i = 0; i < nparts; ++i) {
            Shard &sh = out->shards_[i];
            const std::string pname =
                std::string(name) + "/p" + std::to_string(i);
            Status st;
            if (allow_degraded) {
                FastFailoverScope ff(s, kProbeAttempts);
                st = make(s, sh.backend, pname, &sh.ds);
            } else {
                st = make(s, sh.backend, pname, &sh.ds);
            }
            if (ok(st)) {
                sh.opened = true;
                sh.health = ShardHealth::Healthy;
            } else if (allow_degraded && isShardFailure(st)) {
                // The back-end is down: serve the k-1 surviving shards
                // now, open this one lazily when it re-attaches.
                sh.opened = false;
                sh.health = ShardHealth::Degraded;
            } else {
                return st;
            }
        }
        out->reopen_ = std::move(make);
        return Status::Ok;
    }

    FrontendSession *s_ = nullptr;
    std::string name_;
    MakeFn reopen_;
    DegradedReadFn degraded_read_;
    std::deque<Shard> shards_;
    uint64_t unavailable_ops_ = 0;
};

} // namespace asymnvm

#endif // ASYMNVM_DS_PARTITIONED_H_
