#include "ds/queue.h"

#include <algorithm>
#include <vector>

namespace asymnvm {

Status
Queue::create(FrontendSession &s, NodeId backend, std::string_view name,
              Queue *out, const DsOptions &opt)
{
    DsId id = 0;
    const Status st = s.createDs(backend, name, DsType::Queue, &id);
    if (!ok(st))
        return st;
    *out = Queue(s, backend, std::string(name), id, opt);
    out->install();
    return Status::Ok;
}

Status
Queue::open(FrontendSession &s, NodeId backend, std::string_view name,
            Queue *out, const DsOptions &opt)
{
    DsId id = 0;
    DsType type = DsType::None;
    Status st = s.openDs(backend, name, &id, &type);
    if (!ok(st))
        return st;
    if (type != DsType::Queue)
        return Status::InvalidArgument;
    *out = Queue(s, backend, std::string(name), id, opt);
    st = out->loadShadows();
    if (!ok(st))
        return st;
    out->install();
    return Status::Ok;
}

void
Queue::install()
{
    s_->setFlushHook(id_, backend_, [this] { materializePending(); });
    s_->setReplayer(id_, backend_, [this](const ParsedOpLog &op) {
        if (op.op == OpType::Enqueue) {
            Value v;
            std::memcpy(v.bytes.data(), op.value.data(),
                        std::min(op.value.size(), Value::kSize));
            return enqueue(v);
        }
        if (op.op == OpType::Dequeue) {
            Value dummy;
            const Status st = dequeue(&dummy);
            return st == Status::NotFound ? Status::Ok : st;
        }
        return Status::InvalidArgument;
    });
}

Status
Queue::loadShadows()
{
    Status st = s_->readAux(id_, backend_, 0, &head_raw_);
    if (!ok(st))
        return st;
    st = s_->readAux(id_, backend_, 1, &tail_raw_);
    if (!ok(st))
        return st;
    return s_->readAux(id_, backend_, 2, &count_);
}

Status
Queue::writeShadows()
{
    // head/tail/count always change together: one log entry, and in the
    // naive mode one RDMA_Write instead of three.
    const uint64_t vals[3] = {head_raw_, tail_raw_, count_};
    return s_->writeAuxRange(id_, backend_, 0, vals, 3);
}

Status
Queue::materializeOne(const Value &v)
{
    Node node{};
    node.value = v;
    node.next_raw = 0;
    RemotePtr p;
    Status st = allocNode(node, &p);
    if (!ok(st))
        return st;
    if (tail_raw_ != 0) {
        // Link the old tail to the new node (whole-node rewrite keeps
        // the overlay/cache object-consistent).
        const RemotePtr tail = RemotePtr::fromRaw(tail_raw_);
        Node tail_node;
        st = readNode(tail, &tail_node, 0, false);
        if (!ok(st))
            return st;
        tail_node.next_raw = p.raw();
        st = writeNode(tail, tail_node);
        if (!ok(st))
            return st;
    } else {
        head_raw_ = p.raw();
    }
    tail_raw_ = p.raw();
    ++count_;
    return Status::Ok;
}

Status
Queue::materializePending()
{
    if (pending_.empty())
        return Status::Ok;
    for (const Value &v : pending_) {
        const Status st = materializeOne(v);
        if (!ok(st))
            return st;
    }
    pending_.clear();
    return writeShadows();
}

Status
Queue::enqueue(const Value &v)
{
    Status st = s_->opBegin(id_, backend_, OpType::Enqueue, 0,
                            v.bytes.data(), Value::kSize);
    if (!ok(st))
        return st;
    if (deferWrites()) {
        pending_.push_back(v);
    } else {
        st = materializeOne(v);
        if (!ok(st))
            return st;
        st = writeShadows();
        if (!ok(st))
            return st;
    }
    return s_->opEnd();
}

Status
Queue::dequeue(Value *out)
{
    Status st = s_->opBegin(id_, backend_, OpType::Dequeue, 0, nullptr, 0);
    if (!ok(st))
        return st;
    if (count_ > 0) {
        // FIFO: materialized elements are older than anything pending.
        const RemotePtr head = RemotePtr::fromRaw(head_raw_);
        Node node;
        st = readNode(head, &node, 0, false);
        if (!ok(st))
            return st;
        *out = node.value;
        head_raw_ = node.next_raw;
        if (head_raw_ == 0)
            tail_raw_ = 0;
        --count_;
        st = writeShadows();
        if (!ok(st))
            return st;
        st = s_->free(head, sizeof(Node));
        if (!ok(st))
            return st;
        return s_->opEnd();
    }
    if (!pending_.empty()) {
        // Annulment: the oldest pending enqueue is the queue's front.
        *out = pending_.front();
        pending_.pop_front();
        return s_->opEnd();
    }
    st = s_->opEnd();
    return ok(st) ? Status::NotFound : st;
}

OpTask
Queue::enqueueAsync(Value v)
{
    // Queues are single-front-end (Section 9.5) and the head/tail/count
    // shadows are member state, so window ops on one queue serialize on
    // a per-structure gate taken before opBegin (op-log order matches
    // effect order). The materialized path's old-tail read stays
    // synchronous inside the serial tail: it follows the new node's
    // alloc in enqueue(), so hoisting it into a suspendable phase A
    // would reorder it across a write. The pipeline win here is
    // log-side — batched appends and one coalesced fence per window.
    FrontendSession::WindowGate gate(s_, id_, 0);
    while (!gate.tryAcquire())
        co_await s_->pipelineYield();
    Status st = s_->opBegin(id_, backend_, OpType::Enqueue, 0,
                            v.bytes.data(), Value::kSize);
    if (!ok(st))
        co_return st;
    if (deferWrites()) {
        pending_.push_back(v);
    } else {
        st = materializeOne(v);
        if (!ok(st))
            co_return st;
        st = writeShadows();
        if (!ok(st))
            co_return st;
    }
    co_return s_->opEnd();
}

Status
Queue::enqueueMany(std::span<const Value> vals, Status *results)
{
    if (vals.empty())
        return Status::Ok;
    if (!pipelineEligible()) {
        for (size_t i = 0; i < vals.size(); ++i)
            results[i] = enqueue(vals[i]);
        return Status::Ok;
    }
    std::vector<OpTask> ops;
    ops.reserve(vals.size());
    for (const Value &v : vals)
        ops.push_back(enqueueAsync(v));
    s_->executePipelined(std::span<OpTask>(ops),
                         std::span<Status>(results, vals.size()));
    return Status::Ok;
}

OpTask
Queue::dequeueAsync(Value *out)
{
    FrontendSession::WindowGate gate(s_, id_, 0);
    while (!gate.tryAcquire())
        co_await s_->pipelineYield();
    Status st = s_->opBegin(id_, backend_, OpType::Dequeue, 0, nullptr, 0);
    if (!ok(st))
        co_return st;
    if (count_ > 0) {
        // Phase A: the head-node read is dequeue()'s first data access,
        // so it can suspend and share the window's read round trip. The
        // gate excludes same-queue writers; validation keeps the
        // discipline uniform (the address could be recycled by another
        // structure's free while we were suspended).
        const RemotePtr head = RemotePtr::fromRaw(head_raw_);
        Node node;
        std::vector<FrontendSession::ReadStamp> stamps;
        while (true) {
            stamps.clear();
            auto aw = readNodeAsync(head, &node, /*level=*/0,
                                    /*use_admission=*/false,
                                    /*pin=*/false);
            st = co_await aw;
            if (!ok(st))
                co_return st;
            stamps.push_back({head.raw(), aw.served_seq});
            if (s_->pipelineReadSetClean(stamps))
                break;
            s_->notePipelineRestart();
        }
        // Phase B: dequeue()'s shadow-update/free tail, inline.
        *out = node.value;
        head_raw_ = node.next_raw;
        if (head_raw_ == 0)
            tail_raw_ = 0;
        --count_;
        st = writeShadows();
        if (!ok(st))
            co_return st;
        st = s_->free(head, sizeof(Node));
        if (!ok(st))
            co_return st;
        co_return s_->opEnd();
    }
    if (!pending_.empty()) {
        // Annulment: the gate ordered us after the pending enqueue.
        *out = pending_.front();
        pending_.pop_front();
        co_return s_->opEnd();
    }
    st = s_->opEnd();
    co_return ok(st) ? Status::NotFound : st;
}

Status
Queue::dequeueMany(std::span<Value> outs, Status *results)
{
    if (outs.empty())
        return Status::Ok;
    if (!pipelineEligible()) {
        for (size_t i = 0; i < outs.size(); ++i)
            results[i] = dequeue(&outs[i]);
        return Status::Ok;
    }
    std::vector<OpTask> ops;
    ops.reserve(outs.size());
    for (Value &v : outs)
        ops.push_back(dequeueAsync(&v));
    s_->executePipelined(std::span<OpTask>(ops),
                         std::span<Status>(results, outs.size()));
    return Status::Ok;
}

Status
Queue::front(Value *out)
{
    if (count_ > 0) {
        Node node;
        const Status st =
            readNode(RemotePtr::fromRaw(head_raw_), &node, 0, false);
        if (!ok(st))
            return st;
        *out = node.value;
        return Status::Ok;
    }
    if (!pending_.empty()) {
        *out = pending_.front();
        return Status::Ok;
    }
    return Status::NotFound;
}

uint64_t
Queue::size() const
{
    return count_ + pending_.size();
}

} // namespace asymnvm
