#include "ds/mv_bptree.h"

#include <algorithm>

namespace asymnvm {

namespace {
constexpr uint32_t kMaxHeight = 64;
} // namespace

Status
MvBpTree::create(FrontendSession &s, NodeId backend, std::string_view name,
                 MvBpTree *out, const DsOptions &opt)
{
    DsId id = 0;
    const Status st = s.createDs(backend, name, DsType::MvBpTree, &id);
    if (!ok(st))
        return st;
    *out = MvBpTree(s, backend, std::string(name), id, opt);
    out->install();
    return Status::Ok;
}

Status
MvBpTree::open(FrontendSession &s, NodeId backend, std::string_view name,
               MvBpTree *out, const DsOptions &opt)
{
    DsId id = 0;
    DsType type = DsType::None;
    Status st = s.openDs(backend, name, &id, &type);
    if (!ok(st))
        return st;
    if (type != DsType::MvBpTree)
        return Status::InvalidArgument;
    *out = MvBpTree(s, backend, std::string(name), id, opt);
    st = out->loadRoot();
    if (!ok(st))
        return st;
    st = s.readAux(id, backend, 1, &out->count_);
    if (!ok(st))
        return st;
    out->install();
    return Status::Ok;
}

void
MvBpTree::install()
{
    installMv();
    s_->setReplayer(id_, backend_, [this](const ParsedOpLog &op) {
        Value v;
        if (!op.value.empty())
            std::memcpy(v.bytes.data(), op.value.data(),
                        std::min(op.value.size(), Value::kSize));
        switch (op.op) {
          case OpType::Insert:
          case OpType::Update:
            return insert(op.key, v);
          case OpType::Erase: {
            const Status st = erase(op.key);
            return st == Status::NotFound ? Status::Ok : st;
          }
          default:
            return Status::InvalidArgument;
        }
    });
}

uint32_t
MvBpTree::routeIndex(const Node &n, Key key)
{
    uint32_t lo = 0;
    for (uint32_t i = 1; i < n.count; ++i) {
        if (n.keys[i] <= key)
            lo = i;
        else
            break;
    }
    return lo;
}

Status
MvBpTree::insertRec(uint64_t node_raw, uint32_t depth, Key key,
                    const Value &v, bool pin, uint64_t *new_raw,
                    Split *split, bool *added)
{
    if (depth > kMaxHeight)
        return Status::Corruption;
    Node node;
    Status st = readNode(RemotePtr::fromRaw(node_raw), &node, depth,
                         true, pin);
    if (!ok(st))
        return st;
    if (node.count > kFanout)
        return Status::Corruption;
    // Every version change supersedes this node.
    s_->retire(id_, RemotePtr::fromRaw(node_raw), sizeof(Node));

    if (node.is_leaf) {
        for (uint32_t i = 0; i < node.count; ++i) {
            if (node.keys[i] == key) {
                // Immutable cells: new cell, new leaf copy.
                RemotePtr cell;
                st = s_->alloc(backend_, Value::kSize, &cell);
                if (!ok(st))
                    return st;
                st = s_->logWriteFromOp(id_, cell, v.bytes.data(), Value::kSize);
                if (!ok(st))
                    return st;
                s_->retire(id_, RemotePtr::fromRaw(node.children[i]),
                           Value::kSize);
                node.children[i] = cell.raw();
                RemotePtr p;
                st = allocNode(node, &p);
                if (!ok(st))
                    return st;
                *new_raw = p.raw();
                return Status::Ok;
            }
        }
        RemotePtr cell;
        st = s_->alloc(backend_, Value::kSize, &cell);
        if (!ok(st))
            return st;
        st = s_->logWriteFromOp(id_, cell, v.bytes.data(), Value::kSize);
        if (!ok(st))
            return st;
        *added = true;

        if (node.count == kFanout) {
            Node right{};
            right.is_leaf = 1;
            right.count = kFanout / 2;
            for (uint32_t i = 0; i < kFanout / 2; ++i) {
                right.keys[i] = node.keys[kFanout / 2 + i];
                right.children[i] = node.children[kFanout / 2 + i];
            }
            node.count = kFanout / 2;
            Node *target = key >= right.keys[0] ? &right : &node;
            uint32_t pos = 0;
            while (pos < target->count && target->keys[pos] < key)
                ++pos;
            for (uint32_t i = target->count; i > pos; --i) {
                target->keys[i] = target->keys[i - 1];
                target->children[i] = target->children[i - 1];
            }
            target->keys[pos] = key;
            target->children[pos] = cell.raw();
            ++target->count;

            RemotePtr left_ptr, right_ptr;
            st = allocNode(node, &left_ptr);
            if (!ok(st))
                return st;
            st = allocNode(right, &right_ptr);
            if (!ok(st))
                return st;
            *new_raw = left_ptr.raw();
            split->happened = true;
            split->sep_key = right.keys[0];
            split->right_raw = right_ptr.raw();
            return Status::Ok;
        }
        uint32_t pos = 0;
        while (pos < node.count && node.keys[pos] < key)
            ++pos;
        for (uint32_t i = node.count; i > pos; --i) {
            node.keys[i] = node.keys[i - 1];
            node.children[i] = node.children[i - 1];
        }
        node.keys[pos] = key;
        node.children[pos] = cell.raw();
        ++node.count;
        RemotePtr p;
        st = allocNode(node, &p);
        if (!ok(st))
            return st;
        *new_raw = p.raw();
        return Status::Ok;
    }

    const uint32_t idx = routeIndex(node, key);
    uint64_t new_child_raw = 0;
    Split child_split;
    st = insertRec(node.children[idx], depth + 1, key, v, pin,
                   &new_child_raw, &child_split, added);
    if (!ok(st))
        return st;
    node.children[idx] = new_child_raw;

    if (child_split.happened) {
        if (node.count == kFanout) {
            Node right{};
            right.is_leaf = 0;
            right.count = kFanout / 2;
            for (uint32_t i = 0; i < kFanout / 2; ++i) {
                right.keys[i] = node.keys[kFanout / 2 + i];
                right.children[i] = node.children[kFanout / 2 + i];
            }
            node.count = kFanout / 2;
            Node *target =
                child_split.sep_key >= right.keys[0] ? &right : &node;
            uint32_t pos = 0;
            while (pos < target->count &&
                   target->keys[pos] < child_split.sep_key)
                ++pos;
            for (uint32_t i = target->count; i > pos; --i) {
                target->keys[i] = target->keys[i - 1];
                target->children[i] = target->children[i - 1];
            }
            target->keys[pos] = child_split.sep_key;
            target->children[pos] = child_split.right_raw;
            ++target->count;

            RemotePtr left_ptr, right_ptr;
            st = allocNode(node, &left_ptr);
            if (!ok(st))
                return st;
            st = allocNode(right, &right_ptr);
            if (!ok(st))
                return st;
            *new_raw = left_ptr.raw();
            split->happened = true;
            split->sep_key = right.keys[0];
            split->right_raw = right_ptr.raw();
            return Status::Ok;
        }
        uint32_t pos = 0;
        while (pos < node.count && node.keys[pos] < child_split.sep_key)
            ++pos;
        for (uint32_t i = node.count; i > pos; --i) {
            node.keys[i] = node.keys[i - 1];
            node.children[i] = node.children[i - 1];
        }
        node.keys[pos] = child_split.sep_key;
        node.children[pos] = child_split.right_raw;
        ++node.count;
    }
    RemotePtr p;
    st = allocNode(node, &p);
    if (!ok(st))
        return st;
    *new_raw = p.raw();
    return Status::Ok;
}

Status
MvBpTree::insertOne(Key key, const Value &v, bool pin)
{
    Status st = s_->opBegin(id_, backend_, OpType::Insert, key,
                            v.bytes.data(), Value::kSize);
    if (!ok(st))
        return st;
    const uint64_t root_raw = workingRoot();
    bool added = false;
    uint64_t new_root_raw = 0;
    if (root_raw == 0) {
        RemotePtr cell;
        st = s_->alloc(backend_, Value::kSize, &cell);
        if (!ok(st))
            return st;
        st = s_->logWriteFromOp(id_, cell, v.bytes.data(), Value::kSize);
        if (!ok(st))
            return st;
        Node leaf{};
        leaf.is_leaf = 1;
        leaf.count = 1;
        leaf.keys[0] = key;
        leaf.children[0] = cell.raw();
        RemotePtr p;
        st = allocNode(leaf, &p);
        if (!ok(st))
            return st;
        new_root_raw = p.raw();
        added = true;
    } else {
        Split split;
        st = insertRec(root_raw, 0, key, v, pin, &new_root_raw, &split,
                       &added);
        if (!ok(st))
            return st;
        if (split.happened) {
            Node new_root{};
            new_root.is_leaf = 0;
            new_root.count = 2;
            new_root.keys[0] = 0;
            new_root.children[0] = new_root_raw;
            new_root.keys[1] = split.sep_key;
            new_root.children[1] = split.right_raw;
            RemotePtr p;
            st = allocNode(new_root, &p);
            if (!ok(st))
                return st;
            new_root_raw = p.raw();
        }
    }
    stageRoot(new_root_raw);
    if (added) {
        ++count_;
        st = s_->writeAux(id_, backend_, 1, count_);
        if (!ok(st))
            return st;
    }
    return s_->opEnd();
}

Status
MvBpTree::insert(Key key, const Value &v)
{
    Status st = lockForWrite();
    if (!ok(st))
        return st;
    return insertOne(key, v, /*pin=*/false);
}

OpTask
MvBpTree::insertAsync(Key key, Value v)
{
    Status st = lockForWrite();
    if (!ok(st))
        co_return st;
    // Per-structure gate (key 0): every MV write replaces the root path,
    // so two window writes to the same tree always collide — order them
    // outright instead of letting validation restart-thrash. The gate is
    // taken before workingRoot() so each op extends its predecessor's
    // staged version (read-your-writes across the window).
    FrontendSession::WindowGate gate(s_, id_, 0);
    while (!gate.tryAcquire())
        co_await s_->pipelineYield();
    st = s_->opBegin(id_, backend_, OpType::Insert, key, v.bytes.data(),
                     Value::kSize);
    if (!ok(st))
        co_return st;
    const FrontendSession::OpRef opref = s_->currentOpRef(backend_);
    const uint64_t root_raw = workingRoot();

    // Phase A: suspendable descent, reads only; the per-node retire()
    // calls of insertRec move to phase B so a validation restart cannot
    // retire the same node twice.
    struct PathEnt
    {
        uint64_t raw;
        Node node;
        uint32_t idx; //!< route taken (internal nodes)
    };
    std::vector<PathEnt> path;
    std::vector<FrontendSession::ReadStamp> stamps;
    if (root_raw != 0) {
        while (true) {
            path.clear();
            stamps.clear();
            uint64_t cur_raw = root_raw;
            uint32_t depth = 0;
            bool bad = false;
            while (true) {
                if (depth > kMaxHeight) {
                    bad = true;
                    break;
                }
                Node node;
                auto aw = readNodeAsync(RemotePtr::fromRaw(cur_raw),
                                        &node, depth, true, false);
                const Status rst = co_await aw;
                if (!ok(rst))
                    co_return rst;
                stamps.push_back({cur_raw, aw.served_seq});
                if (node.count > kFanout) {
                    bad = true;
                    break;
                }
                if (node.is_leaf) {
                    path.push_back({cur_raw, node, 0});
                    break;
                }
                const uint32_t idx = routeIndex(node, key);
                path.push_back({cur_raw, node, idx});
                cur_raw = node.children[idx];
                ++depth;
            }
            if (s_->pipelineReadSetClean(stamps)) {
                if (bad)
                    co_return Status::Corruption;
                break;
            }
            s_->notePipelineRestart();
        }
    }

    // Phase B: insertOne's write-out, inline and unsuspended.
    s_->restoreOpRef(backend_, opref);
    bool added = false;
    uint64_t new_root_raw = 0;
    if (root_raw == 0) {
        RemotePtr cell;
        st = s_->alloc(backend_, Value::kSize, &cell);
        if (!ok(st))
            co_return st;
        st = s_->logWriteFromOp(id_, cell, v.bytes.data(), Value::kSize);
        if (!ok(st))
            co_return st;
        Node leaf{};
        leaf.is_leaf = 1;
        leaf.count = 1;
        leaf.keys[0] = key;
        leaf.children[0] = cell.raw();
        RemotePtr p;
        st = allocNode(leaf, &p);
        if (!ok(st))
            co_return st;
        new_root_raw = p.raw();
        added = true;
    } else {
        // Every path node is superseded by this version (insertRec
        // retires each right after reading it).
        for (const PathEnt &ent : path)
            s_->retire(id_, RemotePtr::fromRaw(ent.raw), sizeof(Node));

        // Leaf step.
        Node &leaf = path.back().node;
        uint64_t new_child = 0;
        Split split;
        bool updated = false;
        for (uint32_t i = 0; i < leaf.count; ++i) {
            if (leaf.keys[i] != key)
                continue;
            RemotePtr cell;
            st = s_->alloc(backend_, Value::kSize, &cell);
            if (!ok(st))
                co_return st;
            st = s_->logWriteFromOp(id_, cell, v.bytes.data(),
                                    Value::kSize);
            if (!ok(st))
                co_return st;
            s_->retire(id_, RemotePtr::fromRaw(leaf.children[i]),
                       Value::kSize);
            leaf.children[i] = cell.raw();
            RemotePtr p;
            st = allocNode(leaf, &p);
            if (!ok(st))
                co_return st;
            new_child = p.raw();
            updated = true;
            break;
        }
        if (!updated) {
            RemotePtr cell;
            st = s_->alloc(backend_, Value::kSize, &cell);
            if (!ok(st))
                co_return st;
            st = s_->logWriteFromOp(id_, cell, v.bytes.data(),
                                    Value::kSize);
            if (!ok(st))
                co_return st;
            added = true;
            if (leaf.count == kFanout) {
                Node right{};
                right.is_leaf = 1;
                right.count = kFanout / 2;
                for (uint32_t i = 0; i < kFanout / 2; ++i) {
                    right.keys[i] = leaf.keys[kFanout / 2 + i];
                    right.children[i] = leaf.children[kFanout / 2 + i];
                }
                leaf.count = kFanout / 2;
                Node *target = key >= right.keys[0] ? &right : &leaf;
                uint32_t pos = 0;
                while (pos < target->count && target->keys[pos] < key)
                    ++pos;
                for (uint32_t i = target->count; i > pos; --i) {
                    target->keys[i] = target->keys[i - 1];
                    target->children[i] = target->children[i - 1];
                }
                target->keys[pos] = key;
                target->children[pos] = cell.raw();
                ++target->count;

                RemotePtr left_ptr, right_ptr;
                st = allocNode(leaf, &left_ptr);
                if (!ok(st))
                    co_return st;
                st = allocNode(right, &right_ptr);
                if (!ok(st))
                    co_return st;
                new_child = left_ptr.raw();
                split.happened = true;
                split.sep_key = right.keys[0];
                split.right_raw = right_ptr.raw();
            } else {
                uint32_t pos = 0;
                while (pos < leaf.count && leaf.keys[pos] < key)
                    ++pos;
                for (uint32_t i = leaf.count; i > pos; --i) {
                    leaf.keys[i] = leaf.keys[i - 1];
                    leaf.children[i] = leaf.children[i - 1];
                }
                leaf.keys[pos] = key;
                leaf.children[pos] = cell.raw();
                ++leaf.count;
                RemotePtr p;
                st = allocNode(leaf, &p);
                if (!ok(st))
                    co_return st;
                new_child = p.raw();
            }
        }

        // Unwind: each ancestor re-points at its copied child and
        // absorbs a pending split, exactly as insertRec's return path.
        for (size_t lvl = path.size() - 1; lvl-- > 0;) {
            Node &node = path[lvl].node;
            node.children[path[lvl].idx] = new_child;
            if (split.happened) {
                if (node.count == kFanout) {
                    Node right{};
                    right.is_leaf = 0;
                    right.count = kFanout / 2;
                    for (uint32_t i = 0; i < kFanout / 2; ++i) {
                        right.keys[i] = node.keys[kFanout / 2 + i];
                        right.children[i] = node.children[kFanout / 2 + i];
                    }
                    node.count = kFanout / 2;
                    Node *target =
                        split.sep_key >= right.keys[0] ? &right : &node;
                    uint32_t pos = 0;
                    while (pos < target->count &&
                           target->keys[pos] < split.sep_key)
                        ++pos;
                    for (uint32_t i = target->count; i > pos; --i) {
                        target->keys[i] = target->keys[i - 1];
                        target->children[i] = target->children[i - 1];
                    }
                    target->keys[pos] = split.sep_key;
                    target->children[pos] = split.right_raw;
                    ++target->count;

                    RemotePtr left_ptr, right_ptr;
                    st = allocNode(node, &left_ptr);
                    if (!ok(st))
                        co_return st;
                    st = allocNode(right, &right_ptr);
                    if (!ok(st))
                        co_return st;
                    new_child = left_ptr.raw();
                    split.sep_key = right.keys[0];
                    split.right_raw = right_ptr.raw();
                    continue; // split keeps propagating
                }
                uint32_t pos = 0;
                while (pos < node.count && node.keys[pos] < split.sep_key)
                    ++pos;
                for (uint32_t i = node.count; i > pos; --i) {
                    node.keys[i] = node.keys[i - 1];
                    node.children[i] = node.children[i - 1];
                }
                node.keys[pos] = split.sep_key;
                node.children[pos] = split.right_raw;
                ++node.count;
                split.happened = false;
            }
            RemotePtr p;
            st = allocNode(node, &p);
            if (!ok(st))
                co_return st;
            new_child = p.raw();
        }
        new_root_raw = new_child;
        if (split.happened) {
            Node new_root{};
            new_root.is_leaf = 0;
            new_root.count = 2;
            new_root.keys[0] = 0;
            new_root.children[0] = new_root_raw;
            new_root.keys[1] = split.sep_key;
            new_root.children[1] = split.right_raw;
            RemotePtr p;
            st = allocNode(new_root, &p);
            if (!ok(st))
                co_return st;
            new_root_raw = p.raw();
        }
    }
    stageRoot(new_root_raw);
    if (added) {
        ++count_;
        st = s_->writeAux(id_, backend_, 1, count_);
        if (!ok(st))
            co_return st;
    }
    co_return s_->opEnd();
}

Status
MvBpTree::insertMany(std::span<const std::pair<Key, Value>> kvs,
                     Status *results)
{
    if (kvs.empty())
        return Status::Ok;
    if (!pipelineEligible()) {
        for (size_t i = 0; i < kvs.size(); ++i)
            results[i] = insert(kvs[i].first, kvs[i].second);
        return Status::Ok;
    }
    std::vector<OpTask> ops;
    ops.reserve(kvs.size());
    for (const auto &[key, value] : kvs)
        ops.push_back(insertAsync(key, value));
    s_->executePipelined(std::span<OpTask>(ops),
                         std::span<Status>(results, kvs.size()));
    return Status::Ok;
}

Status
MvBpTree::insertBatch(std::span<const std::pair<Key, Value>> kvs)
{
    Status st = lockForWrite();
    if (!ok(st))
        return st;
    std::vector<std::pair<Key, Value>> sorted(kvs.begin(), kvs.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    for (const auto &[key, value] : sorted) {
        st = insertOne(key, value, /*pin=*/true);
        if (!ok(st))
            return st;
    }
    return Status::Ok;
}

Status
MvBpTree::find(Key key, Value *out)
{
    uint64_t cur_raw = 0;
    Status st = readerRoot(&cur_raw);
    if (!ok(st))
        return st;
    if (cur_raw == 0)
        return Status::NotFound;
    uint32_t depth = 0;
    PrefetchCandidate neigh[8];
    size_t nn = 0;
    while (true) {
        if (depth > kMaxHeight)
            return Status::Corruption;
        Node node;
        st = readNode(RemotePtr::fromRaw(cur_raw), &node, depth, true,
                      false, std::span<const PrefetchCandidate>(neigh, nn));
        if (!ok(st))
            return st;
        if (node.count > kFanout)
            return Status::Corruption;
        if (node.is_leaf) {
            for (uint32_t i = 0; i < node.count; ++i) {
                if (node.keys[i] == key) {
                    // Adjacent value cells ride this read's doorbell.
                    PrefetchCandidate cells[4];
                    size_t nc = 0;
                    for (uint32_t dist = 1;
                         dist < node.count && nc < std::size(cells);
                         ++dist) {
                        if (i + dist < node.count)
                            cells[nc++] = PrefetchCandidate{
                                node.children[i + dist],
                                static_cast<uint32_t>(Value::kSize)};
                        if (dist <= i && nc < std::size(cells))
                            cells[nc++] = PrefetchCandidate{
                                node.children[i - dist],
                                static_cast<uint32_t>(Value::kSize)};
                    }
                    ReadHint hint;
                    hint.ds = id_;
                    hint.cacheable = true;
                    hint.level = depth + 1;
                    hint.admission = &admission_;
                    hint.neighbors =
                        std::span<const PrefetchCandidate>(cells, nc);
                    return s_->read(RemotePtr::fromRaw(node.children[i]),
                                    out, Value::kSize, hint);
                }
            }
            return Status::NotFound;
        }
        if (node.count == 0)
            return Status::Corruption;
        // This is the read-only path (writers go through eraseRec /
        // insertRecurse), so the next child read may gather the nearest
        // siblings around the taken route.
        const uint32_t r = routeIndex(node, key);
        cur_raw = node.children[r];
        nn = 0;
        for (uint32_t dist = 1; dist < node.count && nn < std::size(neigh);
             ++dist) {
            if (r + dist < node.count)
                neigh[nn++] = PrefetchCandidate{
                    node.children[r + dist],
                    static_cast<uint32_t>(sizeof(Node))};
            if (dist <= r && nn < std::size(neigh))
                neigh[nn++] = PrefetchCandidate{
                    node.children[r - dist],
                    static_cast<uint32_t>(sizeof(Node))};
        }
        ++depth;
    }
}

OpTask
MvBpTree::findAsync(Key key, Value *out)
{
    // Mirror of find() with every node read co_awaited. The multi-version
    // snapshot guarantee carries over unchanged: this op's descent uses
    // the root it fetched here, whatever the other in-flight ops do.
    //
    // Read-your-writes: MV writers gate the whole structure (key 0);
    // wait out any writer admitted earlier in this window so the root
    // fetched below includes its published version. Readers hold
    // nothing, so snapshot reads still pipeline freely against each
    // other.
    while (s_->pipelineGateHeld(id_, 0))
        co_await s_->pipelineYield();
    uint64_t cur_raw = 0;
    Status st = readerRoot(&cur_raw);
    if (!ok(st))
        co_return st;
    if (cur_raw == 0)
        co_return Status::NotFound;
    uint32_t depth = 0;
    Node node;
    PrefetchCandidate neigh[8];
    size_t nn = 0;
    while (true) {
        if (depth > kMaxHeight)
            co_return Status::Corruption;
        st = co_await readNodeAsync(
            RemotePtr::fromRaw(cur_raw), &node, depth, true, false,
            std::span<const PrefetchCandidate>(neigh, nn));
        if (!ok(st))
            co_return st;
        if (node.count > kFanout)
            co_return Status::Corruption;
        if (node.is_leaf)
            break;
        if (node.count == 0)
            co_return Status::Corruption;
        const uint32_t r = routeIndex(node, key);
        cur_raw = node.children[r];
        nn = 0;
        for (uint32_t dist = 1;
             dist < node.count && nn < std::size(neigh); ++dist) {
            if (r + dist < node.count)
                neigh[nn++] = PrefetchCandidate{
                    node.children[r + dist],
                    static_cast<uint32_t>(sizeof(Node))};
            if (dist <= r && nn < std::size(neigh))
                neigh[nn++] = PrefetchCandidate{
                    node.children[r - dist],
                    static_cast<uint32_t>(sizeof(Node))};
        }
        ++depth;
    }
    for (uint32_t i = 0; i < node.count; ++i) {
        if (node.keys[i] != key)
            continue;
        PrefetchCandidate cells[4];
        size_t nc = 0;
        for (uint32_t dist = 1;
             dist < node.count && nc < std::size(cells); ++dist) {
            if (i + dist < node.count)
                cells[nc++] = PrefetchCandidate{
                    node.children[i + dist],
                    static_cast<uint32_t>(Value::kSize)};
            if (dist <= i && nc < std::size(cells))
                cells[nc++] = PrefetchCandidate{
                    node.children[i - dist],
                    static_cast<uint32_t>(Value::kSize)};
        }
        ReadHint hint;
        hint.ds = id_;
        hint.cacheable = true;
        hint.level = depth + 1;
        hint.admission = &admission_;
        hint.neighbors = std::span<const PrefetchCandidate>(cells, nc);
        co_return co_await s_->asyncRead(
            RemotePtr::fromRaw(node.children[i]), out, Value::kSize, hint);
    }
    co_return Status::NotFound;
}

Status
MvBpTree::findMany(std::span<const Key> keys, Value *vals, Status *results)
{
    // MV readers are lock-free (snapshot per op): no seqlock fallback is
    // needed, any handle may pipeline.
    if (keys.empty())
        return Status::Ok;
    std::vector<OpTask> ops;
    ops.reserve(keys.size());
    for (size_t i = 0; i < keys.size(); ++i)
        ops.push_back(findAsync(keys[i], &vals[i]));
    s_->executePipelined(std::span<OpTask>(ops),
                         std::span<Status>(results, keys.size()));
    return Status::Ok;
}

bool
MvBpTree::contains(Key key)
{
    Value v;
    return find(key, &v) == Status::Ok;
}

Status
MvBpTree::eraseRec(uint64_t node_raw, uint32_t depth, Key key,
                   uint64_t *new_raw, bool *removed)
{
    if (depth > kMaxHeight)
        return Status::Corruption;
    Node node;
    Status st = readNode(RemotePtr::fromRaw(node_raw), &node, depth);
    if (!ok(st))
        return st;
    if (node.is_leaf) {
        for (uint32_t i = 0; i < node.count; ++i) {
            if (node.keys[i] != key)
                continue;
            s_->retire(id_, RemotePtr::fromRaw(node.children[i]),
                       Value::kSize);
            for (uint32_t j = i + 1; j < node.count; ++j) {
                node.keys[j - 1] = node.keys[j];
                node.children[j - 1] = node.children[j];
            }
            --node.count;
            *removed = true;
            break;
        }
        if (!*removed) {
            *new_raw = node_raw; // untouched version
            return Status::Ok;
        }
        s_->retire(id_, RemotePtr::fromRaw(node_raw), sizeof(Node));
        RemotePtr p;
        st = allocNode(node, &p);
        if (!ok(st))
            return st;
        *new_raw = p.raw();
        return Status::Ok;
    }
    const uint32_t idx = routeIndex(node, key);
    uint64_t new_child_raw = 0;
    st = eraseRec(node.children[idx], depth + 1, key, &new_child_raw,
                  removed);
    if (!ok(st))
        return st;
    if (!*removed) {
        *new_raw = node_raw;
        return Status::Ok;
    }
    s_->retire(id_, RemotePtr::fromRaw(node_raw), sizeof(Node));
    node.children[idx] = new_child_raw;
    RemotePtr p;
    st = allocNode(node, &p);
    if (!ok(st))
        return st;
    *new_raw = p.raw();
    return Status::Ok;
}

Status
MvBpTree::erase(Key key)
{
    Status st = lockForWrite();
    if (!ok(st))
        return st;
    st = s_->opBegin(id_, backend_, OpType::Erase, key, nullptr, 0);
    if (!ok(st))
        return st;
    const uint64_t root_raw = workingRoot();
    if (root_raw == 0) {
        st = s_->opEnd();
        return ok(st) ? Status::NotFound : st;
    }
    bool removed = false;
    uint64_t new_root_raw = 0;
    st = eraseRec(root_raw, 0, key, &new_root_raw, &removed);
    if (!ok(st))
        return st;
    if (!removed) {
        st = s_->opEnd();
        return ok(st) ? Status::NotFound : st;
    }
    stageRoot(new_root_raw);
    --count_;
    st = s_->writeAux(id_, backend_, 1, count_);
    if (!ok(st))
        return st;
    return s_->opEnd();
}

OpTask
MvBpTree::eraseAsync(Key key)
{
    Status st = lockForWrite();
    if (!ok(st))
        co_return st;
    // Per-structure write ordering; see insertAsync.
    FrontendSession::WindowGate gate(s_, id_, 0);
    while (!gate.tryAcquire())
        co_await s_->pipelineYield();
    st = s_->opBegin(id_, backend_, OpType::Erase, key, nullptr, 0);
    if (!ok(st))
        co_return st;
    const FrontendSession::OpRef opref = s_->currentOpRef(backend_);
    const uint64_t root_raw = workingRoot();
    if (root_raw == 0) {
        st = s_->opEnd();
        co_return ok(st) ? Status::NotFound : st;
    }

    // Phase A: eraseRec's descent (reads only; its retires are deferred
    // to phase B), stamped for validation.
    struct PathEnt
    {
        uint64_t raw;
        Node node;
        uint32_t idx;
    };
    std::vector<PathEnt> path;
    std::vector<FrontendSession::ReadStamp> stamps;
    while (true) {
        path.clear();
        stamps.clear();
        uint64_t cur_raw = root_raw;
        uint32_t depth = 0;
        bool bad = false;
        while (true) {
            if (depth > kMaxHeight) {
                bad = true;
                break;
            }
            Node node;
            auto aw = readNodeAsync(RemotePtr::fromRaw(cur_raw), &node,
                                    depth, true, false);
            const Status rst = co_await aw;
            if (!ok(rst))
                co_return rst;
            stamps.push_back({cur_raw, aw.served_seq});
            if (node.is_leaf) {
                path.push_back({cur_raw, node, 0});
                break;
            }
            const uint32_t idx = routeIndex(node, key);
            path.push_back({cur_raw, node, idx});
            cur_raw = node.children[idx];
            ++depth;
        }
        if (s_->pipelineReadSetClean(stamps)) {
            if (bad)
                co_return Status::Corruption;
            break;
        }
        s_->notePipelineRestart();
    }

    Node &leaf = path.back().node;
    uint32_t match = leaf.count;
    for (uint32_t i = 0; i < leaf.count; ++i) {
        if (leaf.keys[i] == key) {
            match = i;
            break;
        }
    }
    if (match == leaf.count) {
        st = s_->opEnd();
        co_return ok(st) ? Status::NotFound : st;
    }

    // Phase B: eraseRec's path-copy tail, inline.
    s_->restoreOpRef(backend_, opref);
    s_->retire(id_, RemotePtr::fromRaw(leaf.children[match]),
               Value::kSize);
    for (uint32_t j = match + 1; j < leaf.count; ++j) {
        leaf.keys[j - 1] = leaf.keys[j];
        leaf.children[j - 1] = leaf.children[j];
    }
    --leaf.count;
    s_->retire(id_, RemotePtr::fromRaw(path.back().raw), sizeof(Node));
    RemotePtr p;
    st = allocNode(leaf, &p);
    if (!ok(st))
        co_return st;
    uint64_t new_child = p.raw();
    for (size_t lvl = path.size() - 1; lvl-- > 0;) {
        Node &node = path[lvl].node;
        s_->retire(id_, RemotePtr::fromRaw(path[lvl].raw), sizeof(Node));
        node.children[path[lvl].idx] = new_child;
        RemotePtr np;
        st = allocNode(node, &np);
        if (!ok(st))
            co_return st;
        new_child = np.raw();
    }
    stageRoot(new_child);
    --count_;
    st = s_->writeAux(id_, backend_, 1, count_);
    if (!ok(st))
        co_return st;
    co_return s_->opEnd();
}

Status
MvBpTree::eraseMany(std::span<const Key> keys, Status *results)
{
    if (keys.empty())
        return Status::Ok;
    if (!pipelineEligible()) {
        for (size_t i = 0; i < keys.size(); ++i)
            results[i] = erase(keys[i]);
        return Status::Ok;
    }
    std::vector<OpTask> ops;
    ops.reserve(keys.size());
    for (const Key key : keys)
        ops.push_back(eraseAsync(key));
    s_->executePipelined(std::span<OpTask>(ops),
                         std::span<Status>(results, keys.size()));
    return Status::Ok;
}

} // namespace asymnvm
