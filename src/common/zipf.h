#ifndef ASYMNVM_COMMON_ZIPF_H_
#define ASYMNVM_COMMON_ZIPF_H_

/**
 * @file
 * Zipf-distributed key sampler, matching the YCSB generator used in
 * Section 9.6 (Figure 12 evaluates skew parameters 0.5, 0.9 and 0.99) and
 * standing in for the power-law industry traces of Figure 13.
 */

#include <cstdint>

#include "common/rand.h"

namespace asymnvm {

/**
 * Samples ranks in [0, n) following a Zipfian distribution with exponent
 * theta, using the rejection-inversion style closed form from Gray et al.
 * ("Quickly generating billion-record synthetic databases") that YCSB's
 * ZipfianGenerator implements.
 */
class ZipfGenerator
{
  public:
    /**
     * @param n     Number of distinct items.
     * @param theta Skew (0 = uniform-ish; 0.99 = heavily skewed).
     * @param seed  PRNG seed for reproducibility.
     */
    ZipfGenerator(uint64_t n, double theta, uint64_t seed = 42);

    /** Next sampled rank in [0, n); rank 0 is the hottest item. */
    uint64_t next();

    uint64_t itemCount() const { return n_; }
    double theta() const { return theta_; }

  private:
    static double zeta(uint64_t n, double theta);

    uint64_t n_;
    double theta_;
    double alpha_;
    double zetan_;
    double eta_;
    Rng rng_;
};

} // namespace asymnvm

#endif // ASYMNVM_COMMON_ZIPF_H_
