#ifndef ASYMNVM_COMMON_CHECKSUM_H_
#define ASYMNVM_COMMON_CHECKSUM_H_

/**
 * @file
 * CRC32-C checksums used to validate transaction-log integrity.
 *
 * AsymNVM appends a checksum as the end mark of every transaction written
 * to the back-end log area (Section 4.2): a crash during a single
 * RDMA_Write may tear the log, and the checksum of the latest transaction
 * is used after restart to decide whether it committed.
 */

#include <cstddef>
#include <cstdint>

namespace asymnvm {

/**
 * Compute the CRC32-C (Castagnoli) checksum of a byte range.
 *
 * @param data Pointer to the first byte.
 * @param len  Number of bytes.
 * @param seed Initial CRC, allowing incremental computation over multiple
 *             buffers by threading the previous result through.
 * @return The CRC32-C value.
 */
uint32_t crc32c(const void *data, size_t len, uint32_t seed = 0);

} // namespace asymnvm

#endif // ASYMNVM_COMMON_CHECKSUM_H_
