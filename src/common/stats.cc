#include "common/stats.h"

#include <cstdio>

namespace asymnvm {

void
Histogram::merge(const Histogram &other)
{
    for (size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    sum_ += other.sum_;
    count_ += other.count_;
    max_ = std::max(max_, other.max_);
}

uint64_t
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0;
    const auto target = static_cast<uint64_t>(p / 100.0 * count_);
    uint64_t seen = 0;
    for (size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen >= target) {
            // Bucket upper bound, clamped to the true maximum.
            const uint64_t bound = i == 0 ? 0 : (1ULL << i) - 1;
            return std::min(bound, max_);
        }
    }
    return max_;
}

uint64_t
Histogram::percentileInterp(double p) const
{
    if (count_ == 0)
        return 0;
    // Rank of the target sample (1-based, clamped into range).
    const double want = p / 100.0 * static_cast<double>(count_);
    const auto target = std::min(
        count_, std::max<uint64_t>(1, static_cast<uint64_t>(want + 0.5)));
    uint64_t seen = 0;
    for (size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        if (seen + buckets_[i] < target) {
            seen += buckets_[i];
            continue;
        }
        // Target falls in bucket i, spanning [lo, hi]. Interpolate by
        // rank: samples are assumed uniform across the bucket's range.
        const uint64_t lo = i == 0 ? 0 : 1ULL << (i - 1);
        const uint64_t hi = std::min<uint64_t>(
            i == 0 ? 0 : (1ULL << i) - 1, max_);
        if (hi <= lo)
            return std::min(lo, max_);
        const double frac = static_cast<double>(target - seen) /
                            static_cast<double>(buckets_[i]);
        return std::min<uint64_t>(
            max_, lo + static_cast<uint64_t>(frac * (hi - lo) + 0.5));
    }
    return max_;
}

std::string
Histogram::summary() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "n=%llu mean=%.0fns p50=%lluns p99=%lluns max=%lluns",
                  static_cast<unsigned long long>(count_), mean(),
                  static_cast<unsigned long long>(percentile(50)),
                  static_cast<unsigned long long>(percentile(99)),
                  static_cast<unsigned long long>(max_));
    return buf;
}

} // namespace asymnvm
