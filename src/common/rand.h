#ifndef ASYMNVM_COMMON_RAND_H_
#define ASYMNVM_COMMON_RAND_H_

/**
 * @file
 * A small, fast, deterministic PRNG used by workload generators, cache
 * sampling (the hybrid LRU+RR policy of Section 4.4 samples random cache
 * entries), and skiplist level selection. xoshiro/xorshift-class generators
 * keep benchmark runs reproducible across platforms, unlike std::rand.
 */

#include <cstdint>

namespace asymnvm {

/** xorshift64* generator: tiny state, good quality for simulation use. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL)
        : state_(seed ? seed : 1)
    {}

    /** Next raw 64-bit value. */
    uint64_t next()
    {
        uint64_t x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545f4914f6cdd1dULL;
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    uint64_t nextBounded(uint64_t bound) { return next() % bound; }

    /** Uniform double in [0, 1). */
    double nextDouble()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli trial with probability @p p. */
    bool nextBool(double p = 0.5) { return nextDouble() < p; }

  private:
    uint64_t state_;
};

} // namespace asymnvm

#endif // ASYMNVM_COMMON_RAND_H_
