#include "common/zipf.h"

#include <cmath>

namespace asymnvm {

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed)
{
    zetan_ = zeta(n_, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    const double zeta2 = zeta(2, theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
}

double
ZipfGenerator::zeta(uint64_t n, double theta)
{
    double sum = 0;
    for (uint64_t i = 1; i <= n; ++i)
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
}

uint64_t
ZipfGenerator::next()
{
    const double u = rng_.nextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    const auto rank = static_cast<uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank >= n_ ? n_ - 1 : rank;
}

} // namespace asymnvm
