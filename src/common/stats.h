#ifndef ASYMNVM_COMMON_STATS_H_
#define ASYMNVM_COMMON_STATS_H_

/**
 * @file
 * Lightweight statistics helpers used by benchmarks and by the node
 * busy-time accounting behind Figure 11 (CPU utilization).
 */

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace asymnvm {

/** A monotonically increasing, thread-safe event counter. */
class Counter
{
  public:
    void add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
    uint64_t get() const { return v_.load(std::memory_order_relaxed); }
    void reset() { v_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> v_{0};
};

/**
 * Fixed-bucket log-scale latency histogram (nanoseconds). Not thread-safe;
 * each benchmark thread keeps its own and merges at the end.
 */
class Histogram
{
  public:
    Histogram() : buckets_(64, 0) {}

    /** Record one sample. */
    void record(uint64_t ns)
    {
        int b = ns == 0 ? 0 : 64 - __builtin_clzll(ns);
        if (b >= 64)
            b = 63;
        ++buckets_[b];
        sum_ += ns;
        ++count_;
        max_ = std::max(max_, ns);
    }

    /** Merge another histogram into this one. */
    void merge(const Histogram &other);

    uint64_t count() const { return count_; }
    uint64_t max() const { return max_; }
    double mean() const
    {
        return count_ ? static_cast<double>(sum_) / count_ : 0;
    }

    /** Approximate percentile (0..100) from the log-scale buckets. */
    uint64_t percentile(double p) const;

    /**
     * Percentile with rank interpolation inside the containing log
     * bucket — resolves tails (p99.9) a power-of-two bucket bound
     * cannot. percentile() is kept as-is (its values appear in the
     * established benchmark tables); sweeps that report p999 use this.
     */
    uint64_t percentileInterp(double p) const;

    /** Render a short human-readable summary line. */
    std::string summary() const;

  private:
    std::vector<uint64_t> buckets_;
    uint64_t sum_ = 0;
    uint64_t count_ = 0;
    uint64_t max_ = 0;
};

/**
 * Per-queue-pair burst/WQE accounting snapshot from the back-end NIC's
 * per-QP contention model (src/sim/nic.h). One entry per QP that rang a
 * doorbell since the last reset; benchmarks print these to show how the
 * arrival stream divides across sessions and background shippers.
 */
struct NicQpCounters
{
    uint64_t bursts = 0; //!< doorbell arrivals accounted to this QP
    uint64_t wqes = 0;   //!< WQEs those arrivals carried
};

/**
 * Per-verb-type traffic counters kept by an RDMA endpoint (src/rdma).
 *
 * Benchmarks print these next to throughput so a verb-count regression on
 * the critical path (the quantity the paper's optimizations attack) is
 * visible even when virtual-time KOPS still looks plausible. `wqes` counts
 * work-queue entries after scatter-gather merging, so `posted - wqes` is
 * the number of writes coalesced away, and `doorbells` counts NIC kicks
 * (every synchronous verb rings its own; a flushed post-list chain rings
 * one per target).
 */
struct VerbCounters
{
    uint64_t reads = 0;        //!< synchronous RDMA_Read round trips
    uint64_t read_bytes = 0;
    uint64_t writes = 0;       //!< synchronous RDMA_Write round trips
    uint64_t write_bytes = 0;
    uint64_t posted = 0;       //!< posted (asynchronous) writes
    uint64_t posted_bytes = 0;
    uint64_t atomics = 0;      //!< CAS / fetch-add / atomic 8-byte r/w
    uint64_t atomic_bytes = 0;
    uint64_t doorbells = 0;    //!< NIC doorbell (MMIO) rings
    uint64_t wqes = 0;         //!< posted WQEs after sge coalescing
    uint64_t read_gathers = 0; //!< doorbell-batched read chains launched

    uint64_t totalVerbs() const { return reads + writes + posted + atomics; }
    uint64_t totalBytes() const
    {
        return read_bytes + write_bytes + posted_bytes + atomic_bytes;
    }
};

/**
 * Retry / failover observability kept alongside VerbCounters.
 *
 * The verbs layer counts every transient-fault event it absorbed (lost
 * completions, injected delays, QP error transitions) and the work it
 * spent recovering (re-issued verbs by type, accumulated backoff time,
 * QP resets); the RPC and session layers add duplicate-response drops,
 * idempotent resends, and completed back-end failovers. Benchmarks print
 * these next to the verb counters so a fault-rate knob's cost — and a
 * silent retry storm — is visible in virtual-time profiles.
 */
struct RetryStats
{
    uint64_t retries_read = 0;    //!< re-issued synchronous reads
    uint64_t retries_write = 0;   //!< re-issued synchronous writes
    uint64_t retries_posted = 0;  //!< re-issued posted writes
    uint64_t retries_atomic = 0;  //!< re-issued atomics
    uint64_t timeouts = 0;        //!< completions lost (verb timeout paid)
    uint64_t delayed = 0;         //!< completions delayed by a fault
    uint64_t qp_errors = 0;       //!< QP error-state transitions observed
    uint64_t qp_resets = 0;       //!< QP reset/reconnect cycles performed
    uint64_t backoff_ns = 0;      //!< virtual time spent backing off
    uint64_t rpc_resends = 0;     //!< RPC requests re-written (same seq)
    uint64_t rpc_dup_responses = 0; //!< stale/duplicate responses dropped
    uint64_t failovers = 0;         //!< back-end failovers completed
    uint64_t failover_wait_ns = 0;  //!< virtual time waiting on promotion
    uint64_t promotions_won = 0;    //!< mirror promotions this session won
    uint64_t promotions_lost = 0;   //!< promotion races lost to a peer
    uint64_t stale_epoch_fenced = 0; //!< re-resolves forced by epoch fence

    uint64_t totalRetries() const
    {
        return retries_read + retries_write + retries_posted +
               retries_atomic;
    }

    /** Merge another layer's counters into this snapshot. */
    void merge(const RetryStats &o)
    {
        retries_read += o.retries_read;
        retries_write += o.retries_write;
        retries_posted += o.retries_posted;
        retries_atomic += o.retries_atomic;
        timeouts += o.timeouts;
        delayed += o.delayed;
        qp_errors += o.qp_errors;
        qp_resets += o.qp_resets;
        backoff_ns += o.backoff_ns;
        rpc_resends += o.rpc_resends;
        rpc_dup_responses += o.rpc_dup_responses;
        failovers += o.failovers;
        failover_wait_ns += o.failover_wait_ns;
        promotions_won += o.promotions_won;
        promotions_lost += o.promotions_lost;
        stale_epoch_fenced += o.stale_epoch_fenced;
    }
};

/**
 * Mirror-replication batching observability (Section 7.1).
 *
 * Replication ships one coalesced batch of byte ranges per committed
 * transaction (or group-commit batch) and issues one mirror persist per
 * batch — `persists / batches` therefore equals the mirror count, and
 * `raw_writes / ranges` is the coalescing factor. A retry is one
 * transient-faulted transfer re-shipped; a dropped mirror is one that
 * outlived the whole retry budget and was detached (Case 5) so the
 * commit could proceed.
 */
struct ReplicationStats
{
    uint64_t batches = 0;        //!< replication batches shipped
    uint64_t persists = 0;       //!< mirror persist fences issued
    uint64_t raw_writes = 0;     //!< mutation records before coalescing
    uint64_t ranges = 0;         //!< coalesced byte ranges shipped
    uint64_t bytes = 0;          //!< payload bytes per-mirror-shipped
    uint64_t retries = 0;        //!< transfers re-shipped after a fault
    uint64_t backoff_ns = 0;     //!< back-end time spent backing off
    uint64_t mirrors_dropped = 0; //!< mirrors detached (retry storm)
};

/**
 * Traversal-prefetch observability (read-side doorbell batching).
 *
 * `batches` counts readGather launches that carried speculation and
 * `issued` the speculative WQEs they added; the cache reports how many of
 * those speculative entries were later `hits` (promoted by a real lookup)
 * versus `wasted` (evicted or invalidated while still speculative, or
 * dropped in flight by a gc_epoch bump). A hit ratio near zero means the
 * prefetch policy fetches the wrong neighbors and only burns wire bytes.
 */
struct PrefetchStats
{
    uint64_t batches = 0; //!< gather batches carrying speculative WQEs
    uint64_t issued = 0;  //!< speculative read WQEs issued
    uint64_t hits = 0;    //!< speculative entries promoted by a real hit
    uint64_t wasted = 0;  //!< dropped/evicted before any hit

    double hitRatio() const
    {
        return issued == 0 ? 0.0
                           : static_cast<double>(hits) / issued;
    }
};

/**
 * Operation-pipelining observability (coroutine-overlapped round trips).
 *
 * The reactor behind FrontendSession::executePipelined admits up to
 * `pipeline_depth` operations, and every service `round` turns all
 * suspended ops' demanded reads into one doorbell-batched gather —
 * `batched_reads / rounds` is therefore the achieved overlap factor,
 * and `solo_rounds` counts rounds that had nothing to overlap with
 * (pipeline stalls: the window drained to one blocked op). `ops` counts
 * operations completed through the pipelined executor (depth > 1 only;
 * depth 1 runs the serial path and leaves all of this zero).
 */
struct PipelineStats
{
    uint64_t depth = 0;         //!< configured pipeline_depth
    uint64_t ops = 0;           //!< ops completed via the pipelined path
    uint64_t runs = 0;          //!< executePipelined invocations (depth>1)
    uint64_t rounds = 0;        //!< reactor service rounds (gather waves)
    uint64_t batched_reads = 0; //!< demanded reads served in shared rounds
    uint64_t solo_rounds = 0;   //!< rounds with <= 1 pending read (stalls)
    uint64_t max_in_flight = 0; //!< peak ops suspended concurrently
    uint64_t deferred_commits = 0; //!< commit fences coalesced to drain
    uint64_t batched_appends = 0;  //!< op-log appends posted onto a WQE
                                   //!< chain instead of fenced solo
    uint64_t coalesced_fences = 0; //!< per-op commit fences absorbed into
                                   //!< the single drain flushAll
    uint64_t dep_stalls = 0;       //!< same-key dependency waits + read-set
                                   //!< validation restarts inside windows

    double overlap() const
    {
        return rounds == 0
                   ? 0.0
                   : static_cast<double>(batched_reads) / rounds;
    }
};

/**
 * Optimistic-read protocol outcome (Section 6.3): attempts through the
 * retry-based reader lock and how many of them failed seqlock validation
 * (the paper's "failed read ratio"). Kept per data structure handle and
 * printed next to the verb retry counters so reader/writer contention is
 * visible in the same traffic profile as transient-fault retries.
 */
struct OptimisticReadStats
{
    uint64_t attempts = 0; //!< validated optimistic read attempts
    uint64_t retries = 0;  //!< attempts that failed validation

    double failRatio() const
    {
        return attempts == 0
                   ? 0.0
                   : static_cast<double>(retries) / attempts;
    }

    void merge(const OptimisticReadStats &o)
    {
        attempts += o.attempts;
        retries += o.retries;
    }
};

/**
 * Throughput computed against *virtual* time: the simulator measures
 * operations against the per-session SimClock rather than wall time, so
 * results reproduce the paper's shape deterministically.
 */
struct Throughput
{
    uint64_t ops = 0;
    uint64_t virtual_ns = 0;

    /** Thousand operations per second of virtual time. */
    double kops() const
    {
        return virtual_ns == 0 ? 0
                               : static_cast<double>(ops) * 1e6 / virtual_ns;
    }

    /** Million operations per second of virtual time. */
    double mops() const { return kops() / 1000.0; }
};

} // namespace asymnvm

#endif // ASYMNVM_COMMON_STATS_H_
