#ifndef ASYMNVM_COMMON_HASH_H_
#define ASYMNVM_COMMON_HASH_H_

/**
 * @file
 * Deterministic 64-bit hashing for names (global naming space keys) and
 * keys (hash-table bucket selection, partition routing). FNV-1a keeps the
 * values stable across runs and platforms, which matters because name
 * hashes are persisted in NVM and must match after recovery.
 */

#include <cstdint>
#include <string_view>

namespace asymnvm {

/** FNV-1a over a byte string. Never returns 0 (0 marks free slots). */
inline uint64_t
fnv1a64(std::string_view s)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : s) {
        h ^= static_cast<uint8_t>(c);
        h *= 0x100000001b3ULL;
    }
    return h == 0 ? 1 : h;
}

/** Mix a 64-bit integer (splitmix64 finalizer). */
inline uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace asymnvm

#endif // ASYMNVM_COMMON_HASH_H_
