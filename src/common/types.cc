#include "common/types.h"

namespace asymnvm {

const char *
statusName(Status s)
{
    switch (s) {
      case Status::Ok: return "Ok";
      case Status::NotFound: return "NotFound";
      case Status::Exists: return "Exists";
      case Status::OutOfMemory: return "OutOfMemory";
      case Status::Corruption: return "Corruption";
      case Status::BackendCrashed: return "BackendCrashed";
      case Status::Conflict: return "Conflict";
      case Status::InvalidArgument: return "InvalidArgument";
      case Status::Unavailable: return "Unavailable";
      case Status::Timeout: return "Timeout";
      case Status::QpError: return "QpError";
    }
    return "Unknown";
}

} // namespace asymnvm
