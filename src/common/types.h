#ifndef ASYMNVM_COMMON_TYPES_H_
#define ASYMNVM_COMMON_TYPES_H_

/**
 * @file
 * Fundamental value types shared by every AsymNVM module: remote pointers
 * into back-end NVM, the fixed-size key/value payloads used by the paper's
 * evaluation (8-byte keys, 64-byte values), and the status codes surfaced
 * by the framework API.
 */

#include <array>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <string_view>

namespace asymnvm {

/** Identifier of a node (front-end, back-end, or mirror) in the cluster. */
using NodeId = uint16_t;

/** Identifier of a registered data structure in the global naming space. */
using DsId = uint32_t;

/** 8-byte key type used throughout the evaluation (Section 9.2). */
using Key = uint64_t;

constexpr NodeId kInvalidNode = 0xffff;

/**
 * A pointer into the NVM address space of one back-end node.
 *
 * Encoded into a single 64-bit word so that in-NVM pointers stay 8 bytes
 * and can be swapped with a single RDMA compare-and-swap: the top 16 bits
 * hold the back-end id and the low 48 bits the byte offset. Offset zero is
 * reserved and acts as the null pointer on every back-end.
 */
struct RemotePtr
{
    NodeId backend = 0;
    uint64_t offset = 0;

    constexpr RemotePtr() = default;
    constexpr RemotePtr(NodeId b, uint64_t off) : backend(b), offset(off) {}

    /** True when this pointer refers to no object. */
    constexpr bool isNull() const { return offset == 0; }

    /** Pack into the 8-byte on-NVM representation. */
    constexpr uint64_t raw() const
    {
        return (static_cast<uint64_t>(backend) << 48) |
               (offset & 0xffffffffffffULL);
    }

    /** Unpack from the 8-byte on-NVM representation. */
    static constexpr RemotePtr fromRaw(uint64_t raw)
    {
        return RemotePtr(static_cast<NodeId>(raw >> 48),
                         raw & 0xffffffffffffULL);
    }

    constexpr RemotePtr operator+(uint64_t delta) const
    {
        return RemotePtr(backend, offset + delta);
    }

    friend constexpr bool operator==(const RemotePtr &a, const RemotePtr &b)
    {
        return a.backend == b.backend && a.offset == b.offset;
    }
    friend constexpr bool operator!=(const RemotePtr &a, const RemotePtr &b)
    {
        return !(a == b);
    }
};

/** The canonical null remote pointer. */
constexpr RemotePtr kNullPtr{};

/**
 * Fixed 64-byte value payload (Section 9.2 uses 64-byte values).
 *
 * Kept a trivially-copyable POD so that values can be memcpy'd in and out
 * of simulated NVM and carried inside log entries without serialization.
 */
struct Value
{
    static constexpr size_t kSize = 64;

    std::array<uint8_t, kSize> bytes{};

    Value() = default;

    /** Build a value whose first 8 bytes hold @p v (rest zero). */
    static Value ofU64(uint64_t v)
    {
        Value val;
        std::memcpy(val.bytes.data(), &v, sizeof(v));
        return val;
    }

    /** Build a value from a string, truncated/zero-padded to 64 bytes. */
    static Value ofString(std::string_view s)
    {
        Value val;
        std::memcpy(val.bytes.data(), s.data(),
                    std::min(s.size(), kSize));
        return val;
    }

    /** Read back the first 8 bytes as an integer. */
    uint64_t asU64() const
    {
        uint64_t v;
        std::memcpy(&v, bytes.data(), sizeof(v));
        return v;
    }

    /** Read back the bytes as a string up to the first NUL. */
    std::string asString() const
    {
        const char *p = reinterpret_cast<const char *>(bytes.data());
        size_t n = 0;
        while (n < kSize && p[n] != '\0')
            ++n;
        return std::string(p, n);
    }

    friend bool operator==(const Value &a, const Value &b)
    {
        return a.bytes == b.bytes;
    }
    friend bool operator!=(const Value &a, const Value &b)
    {
        return !(a == b);
    }
};

static_assert(sizeof(Value) == Value::kSize, "Value must stay a 64B POD");

/** Result codes surfaced by the framework API. */
enum class Status : uint8_t
{
    Ok = 0,
    NotFound,        //!< lookup key absent
    Exists,          //!< insert of a duplicate key
    OutOfMemory,     //!< back-end NVM exhausted
    Corruption,      //!< checksum mismatch in a persisted log
    BackendCrashed,  //!< the back-end failed mid-operation
    Conflict,        //!< optimistic read raced a writer and retries expired
    InvalidArgument,
    Unavailable,     //!< no live back-end serves the request
    Timeout,         //!< verb completion lost; retries exhausted
    QpError,         //!< queue pair in error state; reset did not help
};

/**
 * True for the transient verb-level failures the RDMA retry policy may
 * legally re-issue (dropped/duplicated completions, QP error states).
 * Everything else is either success, a logical error, or a fail-stop
 * condition handled by the recovery/failover layer above the verbs.
 */
inline bool isTransient(Status s)
{
    return s == Status::Timeout || s == Status::QpError;
}

/** Human-readable name of a status code (for logs and test output). */
const char *statusName(Status s);

/** True when the status represents success. */
inline bool ok(Status s) { return s == Status::Ok; }

} // namespace asymnvm

template <>
struct std::hash<asymnvm::RemotePtr>
{
    size_t operator()(const asymnvm::RemotePtr &p) const noexcept
    {
        return std::hash<uint64_t>{}(p.raw());
    }
};

#endif // ASYMNVM_COMMON_TYPES_H_
