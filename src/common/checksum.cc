#include "common/checksum.h"

#include <array>

namespace asymnvm {

namespace {

/** Build the CRC32-C lookup table at static-init time. */
std::array<uint32_t, 256>
makeTable()
{
    // Castagnoli polynomial, reflected form.
    constexpr uint32_t poly = 0x82f63b78u;
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t crc = i;
        for (int k = 0; k < 8; ++k)
            crc = (crc >> 1) ^ ((crc & 1) ? poly : 0);
        table[i] = crc;
    }
    return table;
}

const std::array<uint32_t, 256> crcTable = makeTable();

} // namespace

uint32_t
crc32c(const void *data, size_t len, uint32_t seed)
{
    const auto *p = static_cast<const uint8_t *>(data);
    uint32_t crc = ~seed;
    for (size_t i = 0; i < len; ++i)
        crc = (crc >> 8) ^ crcTable[(crc ^ p[i]) & 0xff];
    return ~crc;
}

} // namespace asymnvm
