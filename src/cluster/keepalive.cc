#include "cluster/keepalive.h"

namespace asymnvm {

void
KeepAliveService::join(NodeId node, NodeRole role, uint64_t now_ns,
                       bool has_nvm, NodeId mirror_of)
{
    members_[node] =
        Member{role, has_nvm, mirror_of, now_ns + lease_ns_, false};
}

void
KeepAliveService::leave(NodeId node)
{
    members_.erase(node);
}

bool
KeepAliveService::renew(NodeId node, uint64_t now_ns)
{
    auto it = members_.find(node);
    if (it == members_.end() || it->second.evicted)
        return false;
    if (now_ns > it->second.lease_until_ns) {
        // The lease lapsed; the group already considers the node dead
        // and a lapsed node must not resurrect silently.
        it->second.evicted = true;
        return false;
    }
    it->second.lease_until_ns = now_ns + lease_ns_;
    return true;
}

bool
KeepAliveService::isAlive(NodeId node, uint64_t now_ns) const
{
    auto it = members_.find(node);
    return it != members_.end() && !it->second.evicted &&
           now_ns <= it->second.lease_until_ns;
}

std::vector<NodeId>
KeepAliveService::expired(uint64_t now_ns) const
{
    std::vector<NodeId> out;
    for (const auto &[id, m] : members_) {
        if (m.evicted || now_ns > m.lease_until_ns)
            out.push_back(id);
    }
    return out;
}

std::optional<NodeId>
KeepAliveService::voteReplacement(NodeId dead_backend,
                                  uint64_t now_ns) const
{
    for (const auto &[id, m] : members_) {
        if (id == dead_backend)
            continue;
        if (m.role == NodeRole::Mirror && m.has_nvm &&
            m.mirror_of == dead_backend && isAlive(id, now_ns)) {
            return id;
        }
    }
    return std::nullopt;
}

} // namespace asymnvm
