#include "cluster/keepalive.h"

#include <algorithm>

namespace asymnvm {

bool
KeepAliveService::join(NodeId node, NodeRole role, uint64_t now_ns,
                       bool has_nvm, NodeId mirror_of, uint64_t epoch)
{
    const auto fit = join_fence_.find(node);
    if (fit != join_fence_.end() && epoch < fit->second)
        return false; // stale incarnation: fenced, never re-admitted
    members_[node] =
        Member{role, has_nvm, mirror_of, now_ns + lease_ns_, false};
    return true;
}

void
KeepAliveService::fenceBelow(NodeId node, uint64_t min_epoch)
{
    uint64_t &f = join_fence_[node];
    f = std::max(f, min_epoch);
}

uint64_t
KeepAliveService::fenceOf(NodeId node) const
{
    const auto it = join_fence_.find(node);
    return it == join_fence_.end() ? 0 : it->second;
}

void
KeepAliveService::leave(NodeId node)
{
    members_.erase(node);
}

bool
KeepAliveService::renew(NodeId node, uint64_t now_ns)
{
    auto it = members_.find(node);
    if (it == members_.end() || it->second.evicted)
        return false;
    if (now_ns > it->second.lease_until_ns) {
        // The lease lapsed; the group already considers the node dead
        // and a lapsed node must not resurrect silently.
        it->second.evicted = true;
        return false;
    }
    // Heartbeats are timestamped by their senders' clocks, which need
    // not agree: one arriving "from the past" (an observer whose clock
    // trails the latest renewer's) must not roll the lease back, or the
    // next current-clock observer would judge the node lapsed and evict
    // it. A renewal can only ever extend.
    it->second.lease_until_ns = std::max(it->second.lease_until_ns,
                                         now_ns + lease_ns_);
    return true;
}

bool
KeepAliveService::isAlive(NodeId node, uint64_t now_ns) const
{
    auto it = members_.find(node);
    return it != members_.end() && !it->second.evicted &&
           now_ns <= it->second.lease_until_ns;
}

std::vector<NodeId>
KeepAliveService::expired(uint64_t now_ns) const
{
    std::vector<NodeId> out;
    for (const auto &[id, m] : members_) {
        if (m.evicted || now_ns > m.lease_until_ns)
            out.push_back(id);
    }
    return out;
}

std::optional<NodeId>
KeepAliveService::voteReplacement(NodeId dead_backend,
                                  uint64_t now_ns) const
{
    for (const auto &[id, m] : members_) {
        if (id == dead_backend)
            continue;
        if (m.role == NodeRole::Mirror && m.has_nvm &&
            m.mirror_of == dead_backend && isAlive(id, now_ns)) {
            return id;
        }
    }
    return std::nullopt;
}

} // namespace asymnvm
