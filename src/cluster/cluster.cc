#include "cluster/cluster.h"

namespace asymnvm {

namespace {
constexpr NodeId kMirrorIdBase = 100;
} // namespace

Cluster::Cluster(const ClusterConfig &cfg) : cfg_(cfg)
{
    for (uint32_t b = 0; b < cfg_.num_backends; ++b) {
        const NodeId id = static_cast<NodeId>(b + 1);
        backends_[id] = std::make_unique<BackendNode>(id, cfg_.backend,
                                                      cfg_.latency);
        keepalive_.join(id, NodeRole::BackEnd, 0);
        auto &mirror_list = mirrors_[id];
        for (uint32_t m = 0; m < cfg_.mirrors_per_backend; ++m) {
            const NodeId mid = static_cast<NodeId>(
                kMirrorIdBase + b * cfg_.mirrors_per_backend + m);
            mirror_list.push_back(std::make_unique<MirrorNode>(
                mid, cfg_.backend.nvm_size, /*has_nvm=*/true));
            backends_[id]->addMirror(mirror_list.back().get());
            keepalive_.join(mid, NodeRole::Mirror, 0, /*has_nvm=*/true,
                            /*mirror_of=*/id);
        }
    }
}

std::vector<NodeId>
Cluster::backendIds() const
{
    std::vector<NodeId> out;
    for (const auto &[id, be] : backends_)
        out.push_back(id);
    return out;
}

BackendNode *
Cluster::backend(NodeId id)
{
    auto it = backends_.find(id);
    return it == backends_.end() ? nullptr : it->second.get();
}

std::vector<MirrorNode *>
Cluster::mirrorsOf(NodeId backend_id)
{
    std::vector<MirrorNode *> out;
    for (auto &m : mirrors_[backend_id])
        out.push_back(m.get());
    return out;
}

std::unique_ptr<FrontendSession>
Cluster::makeSession(SessionConfig scfg)
{
    if (scfg.session_id == 1)
        scfg.session_id = ++next_session_id_;
    auto s = std::make_unique<FrontendSession>(scfg, cfg_.latency);
    for (auto &[id, be] : backends_) {
        if (!ok(s->connect(be.get())))
            return nullptr;
    }
    if (cfg_.transparent_failover) {
        // Sessions are owned by the caller but never outlive the cluster
        // in this harness, so capturing `this` is safe.
        s->setBackendResolver([this](NodeId id, uint64_t now_ns) {
            return resolveBackend(id, now_ns);
        });
    }
    return s;
}

void
Cluster::crashBackendTransient(NodeId id)
{
    BackendNode *be = backend(id);
    if (be == nullptr)
        return;
    // Power failure: volatile state is lost and staged (non-durable)
    // media writes roll back; verbs start failing.
    be->failure().armCrashAfterVerbs(0);
    be->failure().onVerb(0);
    be->nvm().crash();
}

Status
Cluster::restartBackend(NodeId id, uint64_t now_ns)
{
    auto it = backends_.find(id);
    if (it == backends_.end())
        return Status::InvalidArgument;
    if (condemned_.count(id) != 0)
        return Status::Unavailable; // permanently dead; promotion only
    auto device = it->second->device();
    auto replacement = std::make_unique<BackendNode>(id, cfg_.backend,
                                                     device, cfg_.latency);
    // The reborn node resumes replication to the surviving mirrors.
    for (auto &m : mirrors_[id])
        replacement->addMirror(m.get());
    it->second = std::move(replacement);
    // A restarted node re-registers for a fresh lease.
    keepalive_.join(id, NodeRole::BackEnd, now_ns);
    return Status::Ok;
}

Status
Cluster::failBackendPermanently(NodeId id, uint64_t now_ns)
{
    auto it = backends_.find(id);
    if (it == backends_.end())
        return Status::InvalidArgument;
    const auto winner = keepalive_.voteReplacement(id, now_ns);
    if (!winner.has_value())
        return Status::Unavailable;
    // Find the voted mirror among this back-end's replicas.
    MirrorNode *promoted = nullptr;
    auto &mirror_list = mirrors_[id];
    for (auto &m : mirror_list) {
        if (m->id() == *winner) {
            promoted = m.get();
            break;
        }
    }
    if (promoted == nullptr)
        return Status::Unavailable;
    // The replica device becomes the new back-end, under the dead
    // node's id so persisted RemotePtrs remain valid.
    auto replacement = std::make_unique<BackendNode>(
        id, cfg_.backend, promoted->releaseDevice(), cfg_.latency);
    keepalive_.leave(promoted->id());
    // Remaining mirrors now replicate the new primary; the promoted
    // mirror's shell (its device was released) leaves the roster.
    for (auto it2 = mirror_list.begin(); it2 != mirror_list.end();) {
        if (it2->get() == promoted) {
            it2 = mirror_list.erase(it2);
        } else {
            replacement->addMirror(it2->get());
            ++it2;
        }
    }
    it->second = std::move(replacement);
    // The id is serving again: give it a fresh lease (the old incarnation
    // may have been evicted) and clear any death sentence.
    keepalive_.join(id, NodeRole::BackEnd, now_ns);
    condemned_.erase(id);
    return Status::Ok;
}

void
Cluster::condemnBackend(NodeId id)
{
    if (backend(id) == nullptr)
        return;
    condemned_.insert(id);
    crashBackendTransient(id);
}

BackendNode *
Cluster::resolveBackend(NodeId id, uint64_t now_ns)
{
    // Surviving mirrors are independent machines whose keepalive agents
    // renew regardless of the primary's fate; the single-threaded
    // simulation models that here, or every mirror lease would lapse in
    // lockstep with the primary's while a session waits out promotion.
    for (auto &m : mirrors_[id])
        keepalive_.renew(m->id(), now_ns);

    BackendNode *be = backend(id);
    if (be == nullptr)
        return nullptr;
    if (!be->failure().crashed())
        return be; // healthy, or another session already healed it
    if (condemned_.count(id) != 0) {
        // Permanently dead: promotion must wait out the lease so the
        // group's vote is unambiguous (a condemned node never renews).
        if (keepalive_.isAlive(id, now_ns))
            return nullptr;
        if (!ok(failBackendPermanently(id, now_ns)))
            return nullptr;
        return backend(id);
    }
    if (keepalive_.isAlive(id, now_ns)) {
        // Lease still current: the group treats this as a transient blip
        // (Case 3) and the node restarts from its own NVM.
        if (!ok(restartBackend(id, now_ns)))
            return nullptr;
        return backend(id);
    }
    // Lease lapsed: the group declared it dead (Case 4) — promote. When
    // no promotable mirror survives, slow detection must not strand a
    // restartable node: fall back to a Case 3 restart.
    if (ok(failBackendPermanently(id, now_ns)))
        return backend(id);
    if (!ok(restartBackend(id, now_ns)))
        return nullptr;
    return backend(id);
}

void
Cluster::crashMirror(NodeId backend_id, size_t mirror_index,
                     uint64_t now_ns)
{
    (void)now_ns;
    auto &mirror_list = mirrors_[backend_id];
    if (mirror_index >= mirror_list.size())
        return;
    keepalive_.leave(mirror_list[mirror_index]->id());
    if (BackendNode *be = backend(backend_id); be != nullptr)
        be->removeMirror(mirror_list[mirror_index].get());
    mirror_list.erase(mirror_list.begin() +
                      static_cast<ptrdiff_t>(mirror_index));
}

} // namespace asymnvm
