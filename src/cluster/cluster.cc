#include "cluster/cluster.h"

namespace asymnvm {

namespace {
constexpr NodeId kMirrorIdBase = 100;
/**
 * Polls a pending promotion claim may stall (its winner not completing)
 * before a waiting session takes the claim over. Generous enough that a
 * winner mid-wait-loop always completes first; small enough that a
 * winner that died between its claim and completion polls cannot strand
 * the slot past one failover wait budget.
 */
constexpr uint64_t kClaimTakeoverPolls = 8;
} // namespace

Cluster::Cluster(const ClusterConfig &cfg) : cfg_(cfg)
{
    for (uint32_t b = 0; b < cfg_.num_backends; ++b) {
        const NodeId id = static_cast<NodeId>(b + 1);
        backends_[id] = std::make_unique<BackendNode>(id, cfg_.backend,
                                                      cfg_.latency);
        keepalive_.join(id, NodeRole::BackEnd, 0, /*has_nvm=*/true,
                        kInvalidNode, epochs_.epoch(id));
        auto &mirror_list = mirrors_[id];
        for (uint32_t m = 0; m < cfg_.mirrors_per_backend; ++m) {
            const NodeId mid = static_cast<NodeId>(
                kMirrorIdBase + b * cfg_.mirrors_per_backend + m);
            mirror_list.push_back(std::make_unique<MirrorNode>(
                mid, cfg_.backend.nvm_size, /*has_nvm=*/true));
            backends_[id]->addMirror(mirror_list.back().get());
            keepalive_.join(mid, NodeRole::Mirror, 0, /*has_nvm=*/true,
                            /*mirror_of=*/id);
        }
    }
}

std::vector<NodeId>
Cluster::backendIds() const
{
    std::vector<NodeId> out;
    for (const auto &[id, be] : backends_)
        out.push_back(id);
    return out;
}

BackendNode *
Cluster::backend(NodeId id)
{
    auto it = backends_.find(id);
    return it == backends_.end() ? nullptr : it->second.get();
}

std::vector<MirrorNode *>
Cluster::mirrorsOf(NodeId backend_id)
{
    std::vector<MirrorNode *> out;
    for (auto &m : mirrors_[backend_id])
        out.push_back(m.get());
    return out;
}

std::unique_ptr<FrontendSession>
Cluster::makeSession(SessionConfig scfg)
{
    if (scfg.session_id == 1)
        scfg.session_id = ++next_session_id_;
    auto s = std::make_unique<FrontendSession>(scfg, cfg_.latency);
    for (auto &[id, be] : backends_) {
        if (!ok(s->connect(be.get())))
            return nullptr;
    }
    if (cfg_.transparent_failover) {
        // Sessions are owned by the caller but never outlive the cluster
        // in this harness, so capturing `this` is safe.
        s->setBackendResolver([this](const ResolveRequest &rq) {
            return resolveBackend(rq);
        });
        // Seed the observed epochs so the very first failover presents
        // the connect-time epoch instead of "never resolved".
        for (auto &[id, be] : backends_)
            s->noteBackendEpoch(id, epochs_.epoch(id));
    }
    return s;
}

void
Cluster::crashBackendTransient(NodeId id)
{
    BackendNode *be = backend(id);
    if (be == nullptr)
        return;
    // Power failure: volatile state is lost and staged (non-durable)
    // media writes roll back; verbs start failing.
    be->failure().armCrashAfterVerbs(0);
    be->failure().onVerb(0);
    be->nvm().crash();
}

void
Cluster::retireNode(std::unique_ptr<BackendNode> node)
{
    // A retired incarnation must fail-stop forever: zombie sessions that
    // slept through the failover still target it, and it shares its
    // device with the live incarnation after a restart — a serving
    // zombie would be the split brain the epoch fence exists to prevent.
    if (!node->failure().crashed()) {
        node->failure().armCrashAfterVerbs(0);
        node->failure().onVerb(0);
    }
    retired_.push_back(std::move(node));
}

Status
Cluster::restartBackend(NodeId id, uint64_t now_ns)
{
    auto it = backends_.find(id);
    if (it == backends_.end())
        return Status::InvalidArgument;
    if (condemned_.count(id) != 0)
        return Status::Unavailable; // permanently dead; promotion only
    // A claimed promotion of this slot is in flight: the group already
    // moved past this incarnation, and re-admitting it now would fork
    // the slot into two serving nodes once the claim completes.
    if (epochs_.promotionInFlight(id))
        return Status::Unavailable;
    // The naming service fences stale incarnations (lease-epoch check):
    // after a promotion bumped the slot epoch, the superseded incarnation
    // can never re-register, no matter who drives the restart.
    if (!keepalive_.join(id, NodeRole::BackEnd, now_ns, /*has_nvm=*/true,
                         kInvalidNode, epochs_.epoch(id)))
        return Status::Unavailable;
    auto device = it->second->device();
    auto replacement = std::make_unique<BackendNode>(id, cfg_.backend,
                                                     device, cfg_.latency);
    // The reborn node resumes replication to the surviving mirrors.
    for (auto &m : mirrors_[id])
        replacement->addMirror(m.get());
    retireNode(std::move(it->second));
    it->second = std::move(replacement);
    return Status::Ok;
}

Status
Cluster::promoteMirror(NodeId id, uint64_t now_ns, uint64_t new_epoch)
{
    auto it = backends_.find(id);
    if (it == backends_.end())
        return Status::InvalidArgument;
    const auto winner = keepalive_.voteReplacement(id, now_ns);
    if (!winner.has_value())
        return Status::Unavailable;
    // Find the voted mirror among this back-end's replicas.
    MirrorNode *promoted = nullptr;
    auto &mirror_list = mirrors_[id];
    for (auto &m : mirror_list) {
        if (m->id() == *winner) {
            promoted = m.get();
            break;
        }
    }
    if (promoted == nullptr)
        return Status::Unavailable;
    // The replica device becomes the new back-end, under the dead
    // node's id so persisted RemotePtrs remain valid.
    auto replacement = std::make_unique<BackendNode>(
        id, cfg_.backend, promoted->releaseDevice(), cfg_.latency);
    keepalive_.leave(promoted->id());
    // Remaining mirrors now replicate the new primary; the promoted
    // mirror's shell (its device was released) leaves the roster.
    for (auto it2 = mirror_list.begin(); it2 != mirror_list.end();) {
        if (it2->get() == promoted) {
            it2 = mirror_list.erase(it2);
        } else {
            replacement->addMirror(it2->get());
            ++it2;
        }
    }
    retireNode(std::move(it->second));
    it->second = std::move(replacement);
    // The id serves again under the successor epoch: register it, fence
    // the superseded epoch out of the namespace, lift the death sentence.
    keepalive_.join(id, NodeRole::BackEnd, now_ns, /*has_nvm=*/true,
                    kInvalidNode, new_epoch);
    keepalive_.fenceBelow(id, new_epoch);
    condemned_.erase(id);
    return Status::Ok;
}

Status
Cluster::failBackendPermanently(NodeId id, uint64_t now_ns)
{
    const Status st =
        promoteMirror(id, now_ns, epochs_.epoch(id) + 1);
    if (!ok(st))
        return st;
    // Manually orchestrated promotion (the Section 7.2 unit tests): the
    // epoch still bumps — and clears any pending claim, whose owner will
    // observe the new epoch and re-resolve instead of double-promoting.
    epochs_.recordManualPromotion(id);
    return Status::Ok;
}

void
Cluster::condemnBackend(NodeId id)
{
    if (backend(id) == nullptr)
        return;
    condemned_.insert(id);
    // Lease-epoch fence: the condemned incarnation (current epoch) can
    // never re-join the namespace; only the promoted successor (epoch+1)
    // can re-register the slot.
    keepalive_.fenceBelow(id, epochs_.epoch(id) + 1);
    crashBackendTransient(id);
}

ResolveOutcome
Cluster::resolveBackend(const ResolveRequest &rq)
{
    const NodeId id = rq.node;
    const uint64_t now_ns = rq.now_ns;
    // Surviving mirrors are independent machines whose keepalive agents
    // renew regardless of the primary's fate; the single-threaded
    // simulation models that here, or every mirror lease would lapse in
    // lockstep with the primary's while a session waits out promotion.
    for (auto &m : mirrors_[id])
        keepalive_.renew(m->id(), now_ns);

    ResolveOutcome out;
    out.epoch = epochs_.epoch(id);
    if (rq.observed_epoch != 0 && rq.observed_epoch < out.epoch) {
        // The session slept through a promotion: every verb it issued
        // since carried a stale epoch and fail-stopped against the
        // retired incarnation. Count the fence; handing back the current
        // epoch (and, below, the current node) is the forced
        // re-resolution.
        epochs_.noteStaleFence(id);
        out.stale_fenced = true;
    }
    BackendNode *be = backend(id);
    if (be == nullptr)
        return out;
    if (!be->failure().crashed()) {
        out.node = be; // healthy, or another session already healed it
        return out;
    }

    // Promotion CAS, phase 2: a pending claim resolves before any other
    // decision. The winner completes it; everyone else waits (and may
    // take over a claim whose winner stopped polling).
    if (epochs_.promotionInFlight(id)) {
        if (epochs_.claimWinner(id) == rq.session_id) {
            const uint64_t next = epochs_.epoch(id) + 1;
            if (ok(promoteMirror(id, now_ns, next))) {
                const uint64_t e =
                    epochs_.completeClaim(id, rq.session_id);
                if (e != 0) {
                    out.won_promotion = true;
                    out.epoch = e;
                } else {
                    // Superseded between polls (taken over / manual
                    // promotion): the slot serves, but the win is not
                    // ours to count.
                    out.epoch = epochs_.epoch(id);
                    out.lost_promotion = true;
                }
                out.node = backend(id);
            } else {
                // No promotable mirror survives. Abandon the claim; slow
                // detection must not strand a restartable node (Case 3).
                epochs_.abortClaim(id, rq.session_id);
                if (ok(restartBackend(id, now_ns)))
                    out.node = backend(id);
            }
            return out;
        }
        if (epochs_.noteClaimStall(id) >= kClaimTakeoverPolls &&
            epochs_.takeOverClaim(id, rq.session_id)) {
            // The original winner stopped polling; we own the claim now
            // and complete it on our next poll.
            return out;
        }
        out.lost_promotion = true;
        return out;
    }

    const bool lease_alive = keepalive_.isAlive(id, now_ns);
    if (condemned_.count(id) != 0) {
        // Permanently dead: promotion must wait out the lease so the
        // group's vote is unambiguous (a condemned node never renews).
        if (lease_alive)
            return out;
        if (epochs_.tryClaim(id, out.epoch, rq.session_id) !=
            FailoverEpochDirectory::Claim::Won)
            out.lost_promotion = true;
        // Won: promotion underway, completed on our next poll. Either
        // way the caller backs off one quantum and re-resolves.
        return out;
    }
    if (lease_alive) {
        // Lease still current: the group treats this as a transient blip
        // (Case 3) and the node restarts from its own NVM.
        if (ok(restartBackend(id, now_ns)))
            out.node = backend(id);
        return out;
    }
    // Lease lapsed: the group declared it dead (Case 4) — claim the
    // promotion. The winner completes (or falls back to a Case 3
    // restart) on its next poll.
    if (epochs_.tryClaim(id, out.epoch, rq.session_id) !=
        FailoverEpochDirectory::Claim::Won)
        out.lost_promotion = true;
    return out;
}

void
Cluster::crashMirror(NodeId backend_id, size_t mirror_index,
                     uint64_t now_ns)
{
    (void)now_ns;
    auto &mirror_list = mirrors_[backend_id];
    if (mirror_index >= mirror_list.size())
        return;
    keepalive_.leave(mirror_list[mirror_index]->id());
    if (BackendNode *be = backend(backend_id); be != nullptr)
        be->removeMirror(mirror_list[mirror_index].get());
    mirror_list.erase(mirror_list.begin() +
                      static_cast<ptrdiff_t>(mirror_index));
}

} // namespace asymnvm
