#ifndef ASYMNVM_CLUSTER_KEEPALIVE_H_
#define ASYMNVM_CLUSTER_KEEPALIVE_H_

/**
 * @file
 * Lease-based failure detection with consensus voting (Section 7.2).
 *
 * The paper uses a replicated ZooKeeper ensemble as "a consensus-based
 * voting system to detect machine failures": every node holds a lease and
 * renews it periodically; a node whose lease expires is considered
 * crashed, and on a permanent back-end failure the service votes one of
 * the NVM-equipped mirror nodes to become the new back-end. This module
 * reproduces those semantics against virtual time.
 */

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/types.h"

namespace asymnvm {

/** Roles a cluster node can take. */
enum class NodeRole : uint8_t
{
    FrontEnd,
    BackEnd,
    Mirror,
};

/** The keepAlive coordination service (simulated ZooKeeper ensemble). */
class KeepAliveService
{
  public:
    /** @param lease_ns Lease duration in virtual nanoseconds. */
    explicit KeepAliveService(uint64_t lease_ns = 10ull * 1000 * 1000)
        : lease_ns_(lease_ns)
    {}

    /**
     * Register a node; the lease starts at @p now_ns. Mirror nodes
     * declare which back-end they replicate via @p mirror_of.
     *
     * @p epoch is the joining incarnation's failover epoch. A back-end
     * slot that was condemned (or whose mirror promotion completed) is
     * *fenced* below the successor epoch — see fenceBelow() — and a
     * re-join presenting an older epoch is refused: an evicted
     * incarnation racing a different session's in-flight promotion must
     * not be re-admitted, or the slot would fork into two serving nodes.
     * Returns false when the fence refused the join (membership is left
     * untouched). Epoch 0 ("no epoch") is only accepted on unfenced
     * slots — mirrors and test harnesses predating the fence.
     */
    bool join(NodeId node, NodeRole role, uint64_t now_ns,
              bool has_nvm = true, NodeId mirror_of = kInvalidNode,
              uint64_t epoch = 0);

    /**
     * Lease-epoch fence: from now on, joins of @p node with an epoch
     * below @p min_epoch are refused. Installed when a back-end is
     * condemned and again when a promotion completes, so only the
     * promoted successor (carrying the bumped epoch) can re-register
     * under the slot's id. Fences only ratchet upward.
     */
    void fenceBelow(NodeId node, uint64_t min_epoch);

    /** Current join fence for @p node (0 = none). */
    uint64_t fenceOf(NodeId node) const;

    /** Remove a node from the group (Case 5 for mirrors). */
    void leave(NodeId node);

    /** Renew @p node's lease. Fails if the lease already expired. */
    bool renew(NodeId node, uint64_t now_ns);

    /** True while @p node's lease is current. */
    bool isAlive(NodeId node, uint64_t now_ns) const;

    /** Nodes whose leases have expired at @p now_ns. */
    std::vector<NodeId> expired(uint64_t now_ns) const;

    /**
     * Case 4 vote: pick the successor for a dead back-end — the live,
     * NVM-equipped mirror *of that back-end* with the lowest id
     * (deterministic majority decision). std::nullopt when no candidate
     * survives.
     */
    std::optional<NodeId> voteReplacement(NodeId dead_backend,
                                          uint64_t now_ns) const;

    uint64_t leaseNs() const { return lease_ns_; }
    size_t memberCount() const { return members_.size(); }

  private:
    struct Member
    {
        NodeRole role;
        bool has_nvm;
        NodeId mirror_of;
        uint64_t lease_until_ns;
        bool evicted;
    };

    uint64_t lease_ns_;
    std::map<NodeId, Member> members_;
    std::map<NodeId, uint64_t> join_fence_; //!< node -> min accepted epoch
};

} // namespace asymnvm

#endif // ASYMNVM_CLUSTER_KEEPALIVE_H_
