#ifndef ASYMNVM_CLUSTER_MIRROR_H_
#define ASYMNVM_CLUSTER_MIRROR_H_

/**
 * @file
 * Mirror node (Section 7.1).
 *
 * Each back-end replicates to at least one mirror node before committing
 * a transaction and acknowledging the front-end. Replication here ships
 * every durable back-end NVM mutation (log appends, replayed data, naming
 * and bitmap updates) at byte level, so a mirror equipped with NVM holds a
 * promotable replica: when the back-end fails permanently (Case 4), the
 * voting service promotes the mirror and its device simply becomes the
 * new back-end's device.
 *
 * Mirrors without NVM (SSD/disk class, per the paper) still hold the
 * replicated bytes but cannot be promoted directly; front-ends instead
 * reconstruct the structure onto a fresh back-end from the mirror's data
 * and logs.
 */

#include <memory>

#include "common/stats.h"
#include "common/types.h"
#include "nvm/nvm_device.h"
#include "sim/fault.h"

namespace asymnvm {

/** A replication target for one (or more) back-end nodes. */
class MirrorNode
{
  public:
    /**
     * @param id       Cluster node id.
     * @param nvm_size Device capacity; must match the back-end it mirrors.
     * @param has_nvm  True for NVM-equipped mirrors (promotable).
     */
    MirrorNode(NodeId id, uint64_t nvm_size, bool has_nvm = true)
        : id_(id), has_nvm_(has_nvm),
          device_(std::make_shared<NvmDevice>(nvm_size))
    {}

    NodeId id() const { return id_; }
    bool hasNvm() const { return has_nvm_; }

    /**
     * Apply one replicated write and persist it immediately. Used for the
     * full-image synchronization when a mirror attaches; the steady-state
     * path is the batched stageWrite/persistBatch pair below.
     */
    void applyWrite(uint64_t off, const void *src, size_t len)
    {
        device_->write(off, src, len);
        device_->persist();
        persists_.add();
        bytes_replicated_.add(len);
    }

    /**
     * Stage one range of a replication batch WITHOUT persisting: the
     * bytes sit in the replica device's durability journal until the
     * batch's single persistBatch() fence. A mirror power failure in
     * between rolls the whole partial batch back (see crash()), so the
     * replica always recovers to a transaction boundary — the property
     * that keeps a mid-batch crash promotable.
     */
    void stageWrite(uint64_t off, const void *src, size_t len)
    {
        device_->write(off, src, len);
        bytes_replicated_.add(len);
    }

    /** One persist fence covering every stageWrite since the last one. */
    void persistBatch()
    {
        device_->persist();
        persists_.add();
    }

    /**
     * Mirror power failure: staged (unpersisted) batch ranges roll back,
     * restoring the image as of the last persisted batch — a committed-
     * transaction boundary, so the replica stays promotable.
     */
    void crash() { device_->crash(); }

    /** Transient-fault source consulted per replication transfer. */
    FaultModel &faults() { return faults_; }

    /** Replica device (read-only use by recovery paths). */
    const NvmDevice &device() const { return *device_; }

    /**
     * Promotion (Case 4): hand the replica device to a new BackendNode.
     * Only valid for NVM-equipped mirrors.
     */
    std::shared_ptr<NvmDevice> releaseDevice() { return device_; }

    uint64_t bytesReplicated() const { return bytes_replicated_.get(); }

    /** Persist fences this replica has absorbed (O(1) per commit). */
    uint64_t persistCount() const { return persists_.get(); }

  private:
    NodeId id_;
    bool has_nvm_;
    std::shared_ptr<NvmDevice> device_;
    FaultModel faults_;
    Counter bytes_replicated_;
    Counter persists_;
};

} // namespace asymnvm

#endif // ASYMNVM_CLUSTER_MIRROR_H_
