#ifndef ASYMNVM_CLUSTER_EPOCH_H_
#define ASYMNVM_CLUSTER_EPOCH_H_

/**
 * @file
 * Failover-epoch directory: the naming-space side of epoch-fenced mirror
 * promotion (Section 7.2, Case 4, under *concurrent* sessions).
 *
 * Every back-end slot carries a monotonically increasing failover epoch,
 * persisted in the consensus service's namespace (the paper's ZooKeeper
 * ensemble — here the same durable home as the keepAlive leases). The
 * epoch advances exactly once per mirror promotion, and the promotion
 * itself is a distributed CAS on this directory:
 *
 *  1. A session that observes {condemned/evicted, lease lapsed} tries to
 *     *claim* the promotion for the epoch it read. The first claimant
 *     wins; every other session observes the claim in flight, backs off,
 *     and re-resolves — it can never run the vote a second time.
 *  2. The winner completes the claim on its next resolver poll: the vote
 *     runs, the mirror device is promoted under the dead node's id, and
 *     the slot epoch bumps to fence the old incarnation.
 *  3. A zombie session that slept through the promotion presents its
 *     stale epoch on the next resolve and is *fenced*: the directory
 *     counts the fence, the resolver hands back the new epoch, and the
 *     session re-attaches to the current incarnation before any of its
 *     verbs can reach NVM again (the condemned incarnation's endpoints
 *     are retired and fail-stop, so stale writes land nowhere).
 *
 * A claim whose winner stops polling (the claiming session died between
 * its claim and completion polls) would strand the slot, so waiters count
 * their stalled polls and may take the claim over after a grace period;
 * completion is still exactly-once because only the *current* winner's
 * completeClaim() bumps the epoch, and a superseded winner's completion
 * attempt is rejected.
 *
 * The directory is mutex-guarded: the simulation interleaves sessions on
 * one thread, but the promotion CAS is precisely the piece that must stay
 * correct when sessions are real threads (see epoch_race_test, which
 * hammers it under ASYMNVM_TSAN).
 */

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "common/types.h"

namespace asymnvm {

/** One completed promotion: slot, the epoch it installed, who won. */
struct PromotionRecord
{
    NodeId node = 0;
    uint64_t epoch = 0;          //!< slot epoch AFTER the promotion
    uint64_t winner_session = 0; //!< 0 = orchestrated outside a session
};

/** Aggregate fence/claim observability for one slot. */
struct SlotEpochStats
{
    uint64_t promotions = 0;   //!< epoch bumps (completed promotions)
    uint64_t claims_won = 0;   //!< successful tryClaim CASes
    uint64_t claims_lost = 0;  //!< claims denied (race already decided)
    uint64_t stale_fences = 0; //!< resolves that presented a stale epoch
    uint64_t takeovers = 0;    //!< claims reassigned to a stalled waiter
};

/** Per-slot failover epochs plus the promotion claim CAS. */
class FailoverEpochDirectory
{
  public:
    enum class Claim : uint8_t
    {
        Won,      //!< caller now owns the promotion; complete it next poll
        Lost,     //!< the epoch already moved past the caller's observation
        InFlight, //!< another session's claim is pending; wait + re-resolve
    };

    /** Current failover epoch of @p node's slot (slots start at 1). */
    uint64_t epoch(NodeId node) const
    {
        std::lock_guard<std::mutex> g(mu_);
        return slotOf(node).epoch;
    }

    /**
     * Promotion CAS: claim the right to promote @p node's mirror, valid
     * only while the slot still carries @p observed_epoch. Exactly one
     * concurrent caller wins per epoch.
     */
    Claim tryClaim(NodeId node, uint64_t observed_epoch, uint64_t session)
    {
        std::lock_guard<std::mutex> g(mu_);
        Slot &s = slotOf(node);
        if (s.claim_pending) {
            ++s.stats.claims_lost;
            return Claim::InFlight;
        }
        if (s.epoch != observed_epoch) {
            ++s.stats.claims_lost;
            return Claim::Lost;
        }
        s.claim_pending = true;
        s.claim_winner = session;
        s.claim_stalls = 0;
        ++s.stats.claims_won;
        return Claim::Won;
    }

    bool promotionInFlight(NodeId node) const
    {
        std::lock_guard<std::mutex> g(mu_);
        return slotOf(node).claim_pending;
    }

    /** Session holding the pending claim; 0 when none. */
    uint64_t claimWinner(NodeId node) const
    {
        std::lock_guard<std::mutex> g(mu_);
        const Slot &s = slotOf(node);
        return s.claim_pending ? s.claim_winner : 0;
    }

    /**
     * Winner finishes its promotion: bumps the slot epoch, records the
     * promotion, clears the claim. Returns the new epoch, or 0 when
     * @p session no longer owns the claim (it was taken over, or the
     * promotion already ran by other means) — the caller must re-resolve
     * instead of treating the slot as promoted by itself.
     */
    uint64_t completeClaim(NodeId node, uint64_t session)
    {
        std::lock_guard<std::mutex> g(mu_);
        Slot &s = slotOf(node);
        if (!s.claim_pending || s.claim_winner != session)
            return 0;
        s.claim_pending = false;
        s.claim_winner = 0;
        bumpLocked(node, s, session);
        return s.epoch;
    }

    /** Winner abandons a claim it could not complete (no mirror left). */
    void abortClaim(NodeId node, uint64_t session)
    {
        std::lock_guard<std::mutex> g(mu_);
        Slot &s = slotOf(node);
        if (s.claim_pending && s.claim_winner == session) {
            s.claim_pending = false;
            s.claim_winner = 0;
        }
    }

    /** A waiter polled while someone else's claim is pending. */
    uint64_t noteClaimStall(NodeId node)
    {
        std::lock_guard<std::mutex> g(mu_);
        Slot &s = slotOf(node);
        return s.claim_pending ? ++s.claim_stalls : 0;
    }

    /**
     * Reassign a stalled claim to @p session (the original winner stopped
     * polling). The new winner completes on its next poll; the old
     * winner's completeClaim() is rejected by the ownership check.
     */
    bool takeOverClaim(NodeId node, uint64_t session)
    {
        std::lock_guard<std::mutex> g(mu_);
        Slot &s = slotOf(node);
        if (!s.claim_pending || s.claim_winner == session)
            return false;
        s.claim_winner = session;
        s.claim_stalls = 0;
        ++s.stats.takeovers;
        return true;
    }

    /**
     * A promotion orchestrated outside the claim protocol (the manual
     * Cluster::failBackendPermanently used by the recovery unit tests)
     * still bumps the epoch and clears any pending claim — the claimant
     * will observe the new epoch and re-resolve.
     */
    uint64_t recordManualPromotion(NodeId node)
    {
        std::lock_guard<std::mutex> g(mu_);
        Slot &s = slotOf(node);
        s.claim_pending = false;
        s.claim_winner = 0;
        bumpLocked(node, s, /*winner=*/0);
        return s.epoch;
    }

    /** A resolve presented an epoch older than the slot's (zombie). */
    void noteStaleFence(NodeId node)
    {
        std::lock_guard<std::mutex> g(mu_);
        ++slotOf(node).stats.stale_fences;
    }

    /** Completed promotions in order; the multi-session chaos audit. */
    std::vector<PromotionRecord> history() const
    {
        std::lock_guard<std::mutex> g(mu_);
        return history_;
    }

    SlotEpochStats stats(NodeId node) const
    {
        std::lock_guard<std::mutex> g(mu_);
        return slotOf(node).stats;
    }

  private:
    struct Slot
    {
        uint64_t epoch = 1;
        bool claim_pending = false;
        uint64_t claim_winner = 0;
        uint64_t claim_stalls = 0;
        SlotEpochStats stats;
    };

    Slot &slotOf(NodeId node) { return slots_[node]; }
    const Slot &slotOf(NodeId node) const
    {
        // const access must not observe a torn insert; operator[] under
        // the caller's lock keeps slot creation race-free.
        return const_cast<FailoverEpochDirectory *>(this)->slots_[node];
    }

    void bumpLocked(NodeId node, Slot &s, uint64_t winner)
    {
        ++s.epoch;
        ++s.stats.promotions;
        history_.push_back(PromotionRecord{node, s.epoch, winner});
    }

    mutable std::mutex mu_;
    std::map<NodeId, Slot> slots_;
    std::vector<PromotionRecord> history_;
};

} // namespace asymnvm

#endif // ASYMNVM_CLUSTER_EPOCH_H_
