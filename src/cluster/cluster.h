#ifndef ASYMNVM_CLUSTER_CLUSTER_H_
#define ASYMNVM_CLUSTER_CLUSTER_H_

/**
 * @file
 * Cluster harness: wires back-end nodes, their mirror nodes, and the
 * keepAlive service into the deployment of Section 9.1 (front-ends +
 * back-ends + mirrors), and orchestrates the failure scenarios of
 * Section 7.2 — transient back-end restarts (Case 3, same device) and
 * permanent failures with mirror promotion by vote (Case 4).
 *
 * RemotePtr stability across failover: a promoted replacement keeps the
 * failed back-end's *node id*, the moral equivalent of the paper's
 * "mmap the virtual memory address to the previous NVM mapped regions"
 * — persisted pointers stay valid.
 */

#include <map>
#include <memory>
#include <vector>

#include "backend/backend_node.h"
#include "cluster/keepalive.h"
#include "cluster/mirror.h"
#include "frontend/session.h"

namespace asymnvm {

/** Static description of a simulated cluster. */
struct ClusterConfig
{
    uint32_t num_backends = 1;
    uint32_t mirrors_per_backend = 2;
    BackendConfig backend;
    LatencyModel latency;
};

/** A simulated AsymNVM deployment. */
class Cluster
{
  public:
    explicit Cluster(const ClusterConfig &cfg);

    /** Back-end node ids are 1..num_backends. */
    std::vector<NodeId> backendIds() const;

    /** Current serving node for a back-end id (tracks promotions). */
    BackendNode *backend(NodeId id);

    /** Mirrors attached to a back-end. */
    std::vector<MirrorNode *> mirrorsOf(NodeId backend_id);

    KeepAliveService &keepAlive() { return keepalive_; }
    const ClusterConfig &config() const { return cfg_; }

    /** Create a session connected to every back-end. */
    std::unique_ptr<FrontendSession> makeSession(SessionConfig scfg);

    // ------------------------------------------------------------------
    // Failure orchestration (Section 7.2)
    // ------------------------------------------------------------------

    /**
     * Case 3: transient back-end failure. The node stops serving (verbs
     * fail) until restartBackend() reconstructs it from its own NVM.
     */
    void crashBackendTransient(NodeId id);

    /** Restart after a transient failure (recovery constructor). */
    Status restartBackend(NodeId id);

    /**
     * Case 4: permanent back-end failure at virtual time @p now_ns. The
     * keepAlive service votes a live NVM mirror; its replica device is
     * promoted to a new BackendNode under the dead node's id. Returns
     * Unavailable when no promotable mirror survives.
     */
    Status failBackendPermanently(NodeId id, uint64_t now_ns);

    /** Case 5: a mirror crashes; it simply leaves the group. */
    void crashMirror(NodeId backend_id, size_t mirror_index,
                     uint64_t now_ns);

  private:
    ClusterConfig cfg_;
    KeepAliveService keepalive_;
    std::map<NodeId, std::unique_ptr<BackendNode>> backends_;
    std::map<NodeId, std::vector<std::unique_ptr<MirrorNode>>> mirrors_;
    uint64_t next_session_id_ = 1000;
};

} // namespace asymnvm

#endif // ASYMNVM_CLUSTER_CLUSTER_H_
