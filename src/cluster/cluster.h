#ifndef ASYMNVM_CLUSTER_CLUSTER_H_
#define ASYMNVM_CLUSTER_CLUSTER_H_

/**
 * @file
 * Cluster harness: wires back-end nodes, their mirror nodes, and the
 * keepAlive service into the deployment of Section 9.1 (front-ends +
 * back-ends + mirrors), and orchestrates the failure scenarios of
 * Section 7.2 — transient back-end restarts (Case 3, same device) and
 * permanent failures with mirror promotion by vote (Case 4).
 *
 * RemotePtr stability across failover: a promoted replacement keeps the
 * failed back-end's *node id*, the moral equivalent of the paper's
 * "mmap the virtual memory address to the previous NVM mapped regions"
 * — persisted pointers stay valid.
 */

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "backend/backend_node.h"
#include "cluster/keepalive.h"
#include "cluster/mirror.h"
#include "frontend/session.h"

namespace asymnvm {

/** Static description of a simulated cluster. */
struct ClusterConfig
{
    uint32_t num_backends = 1;
    uint32_t mirrors_per_backend = 2;
    BackendConfig backend;
    LatencyModel latency;

    /**
     * Wire every session made by makeSession() with a backend resolver so
     * that back-end failures heal transparently (Section 7.2 Cases 3/4)
     * instead of surfacing BackendCrashed to the caller. Off by default:
     * the recovery unit tests drive the failure cases by hand.
     */
    bool transparent_failover = false;
};

/** A simulated AsymNVM deployment. */
class Cluster
{
  public:
    explicit Cluster(const ClusterConfig &cfg);

    /** Back-end node ids are 1..num_backends. */
    std::vector<NodeId> backendIds() const;

    /** Current serving node for a back-end id (tracks promotions). */
    BackendNode *backend(NodeId id);

    /** Mirrors attached to a back-end. */
    std::vector<MirrorNode *> mirrorsOf(NodeId backend_id);

    KeepAliveService &keepAlive() { return keepalive_; }
    const ClusterConfig &config() const { return cfg_; }

    /** Create a session connected to every back-end. */
    std::unique_ptr<FrontendSession> makeSession(SessionConfig scfg);

    // ------------------------------------------------------------------
    // Failure orchestration (Section 7.2)
    // ------------------------------------------------------------------

    /**
     * Case 3: transient back-end failure. The node stops serving (verbs
     * fail) until restartBackend() reconstructs it from its own NVM.
     */
    void crashBackendTransient(NodeId id);

    /**
     * Restart after a transient failure (recovery constructor). The
     * reborn node re-registers with the keepAlive service at @p now_ns.
     */
    Status restartBackend(NodeId id, uint64_t now_ns = 0);

    /**
     * Case 4: permanent back-end failure at virtual time @p now_ns. The
     * keepAlive service votes a live NVM mirror; its replica device is
     * promoted to a new BackendNode under the dead node's id. Returns
     * Unavailable when no promotable mirror survives.
     */
    Status failBackendPermanently(NodeId id, uint64_t now_ns);

    /** Case 5: a mirror crashes; it simply leaves the group. */
    void crashMirror(NodeId backend_id, size_t mirror_index,
                     uint64_t now_ns);

    /**
     * Mark a crashed back-end as permanently dead: it will never restart,
     * so the only way forward is mirror promotion once the keepAlive
     * lease lapses (or immediately if it already has).
     */
    void condemnBackend(NodeId id);

    /**
     * Resolver consulted by sessions during transparent failover: returns
     * the serving node for @p id, healing it if necessary.
     *
     *  - not crashed            -> return it as-is (promotion already ran)
     *  - crashed + condemned    -> lease still alive? nullptr (the vote
     *                              cannot run until the lease lapses);
     *                              else promote a mirror (Case 4)
     *  - crashed + lease alive  -> transient blip: restart from its own
     *                              device (Case 3)
     *  - crashed + lease lapsed -> the group declared it dead: promote
     *                              (Case 4)
     *
     * Returns nullptr when the node cannot be healed *yet* (caller backs
     * off and retries) or at all (no promotable mirror survives).
     */
    BackendNode *resolveBackend(NodeId id, uint64_t now_ns);

  private:
    ClusterConfig cfg_;
    KeepAliveService keepalive_;
    std::map<NodeId, std::unique_ptr<BackendNode>> backends_;
    std::map<NodeId, std::vector<std::unique_ptr<MirrorNode>>> mirrors_;
    std::set<NodeId> condemned_;
    uint64_t next_session_id_ = 1000;
};

} // namespace asymnvm

#endif // ASYMNVM_CLUSTER_CLUSTER_H_
