#ifndef ASYMNVM_CLUSTER_CLUSTER_H_
#define ASYMNVM_CLUSTER_CLUSTER_H_

/**
 * @file
 * Cluster harness: wires back-end nodes, their mirror nodes, and the
 * keepAlive service into the deployment of Section 9.1 (front-ends +
 * back-ends + mirrors), and orchestrates the failure scenarios of
 * Section 7.2 — transient back-end restarts (Case 3, same device) and
 * permanent failures with mirror promotion by vote (Case 4).
 *
 * RemotePtr stability across failover: a promoted replacement keeps the
 * failed back-end's *node id*, the moral equivalent of the paper's
 * "mmap the virtual memory address to the previous NVM mapped regions"
 * — persisted pointers stay valid.
 */

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "backend/backend_node.h"
#include "cluster/epoch.h"
#include "cluster/keepalive.h"
#include "cluster/mirror.h"
#include "frontend/session.h"

namespace asymnvm {

/** Static description of a simulated cluster. */
struct ClusterConfig
{
    uint32_t num_backends = 1;
    uint32_t mirrors_per_backend = 2;
    BackendConfig backend;
    LatencyModel latency;

    /**
     * Wire every session made by makeSession() with a backend resolver so
     * that back-end failures heal transparently (Section 7.2 Cases 3/4)
     * instead of surfacing BackendCrashed to the caller. Off by default:
     * the recovery unit tests drive the failure cases by hand.
     */
    bool transparent_failover = false;
};

/** A simulated AsymNVM deployment. */
class Cluster
{
  public:
    explicit Cluster(const ClusterConfig &cfg);

    /** Back-end node ids are 1..num_backends. */
    std::vector<NodeId> backendIds() const;

    /** Current serving node for a back-end id (tracks promotions). */
    BackendNode *backend(NodeId id);

    /** Mirrors attached to a back-end. */
    std::vector<MirrorNode *> mirrorsOf(NodeId backend_id);

    KeepAliveService &keepAlive() { return keepalive_; }
    const ClusterConfig &config() const { return cfg_; }

    /** Create a session connected to every back-end. */
    std::unique_ptr<FrontendSession> makeSession(SessionConfig scfg);

    // ------------------------------------------------------------------
    // Failure orchestration (Section 7.2)
    // ------------------------------------------------------------------

    /**
     * Case 3: transient back-end failure. The node stops serving (verbs
     * fail) until restartBackend() reconstructs it from its own NVM.
     */
    void crashBackendTransient(NodeId id);

    /**
     * Restart after a transient failure (recovery constructor). The
     * reborn node re-registers with the keepAlive service at @p now_ns.
     */
    Status restartBackend(NodeId id, uint64_t now_ns = 0);

    /**
     * Case 4: permanent back-end failure at virtual time @p now_ns. The
     * keepAlive service votes a live NVM mirror; its replica device is
     * promoted to a new BackendNode under the dead node's id. Returns
     * Unavailable when no promotable mirror survives.
     */
    Status failBackendPermanently(NodeId id, uint64_t now_ns);

    /** Case 5: a mirror crashes; it simply leaves the group. */
    void crashMirror(NodeId backend_id, size_t mirror_index,
                     uint64_t now_ns);

    /**
     * Mark a crashed back-end as permanently dead: it will never restart,
     * so the only way forward is mirror promotion once the keepAlive
     * lease lapses (or immediately if it already has).
     */
    void condemnBackend(NodeId id);

    /**
     * Resolver consulted by sessions during transparent failover: the
     * epoch-fenced, multi-session-safe decision for @p rq.node.
     *
     *  - not crashed            -> return it as-is (promotion already ran;
     *                              a stale observed_epoch is fenced and
     *                              re-pointed at the current incarnation)
     *  - promotion in flight    -> the claim winner completes it on this
     *                              poll; every other session waits (a
     *                              stalled claim is taken over after a
     *                              grace period so the slot never strands)
     *  - crashed + condemned    -> lease still alive? wait (the vote
     *                              cannot run until the lease lapses);
     *                              else CLAIM the promotion — exactly one
     *                              session wins the CAS, losers observe
     *                              the race and re-resolve
     *  - crashed + lease alive  -> transient blip: restart from its own
     *                              device (Case 3)
     *  - crashed + lease lapsed -> the group declared it dead: claim the
     *                              promotion (Case 4); if no promotable
     *                              mirror survives, the winner falls back
     *                              to a Case 3 restart
     *
     * The outcome's node is nullptr when the slot cannot be healed *yet*
     * (caller backs off and retries) or at all (no mirror survives).
     */
    ResolveOutcome resolveBackend(const ResolveRequest &rq);

    /** Failover-epoch directory (promotion CAS + fence bookkeeping). */
    FailoverEpochDirectory &failoverEpochs() { return epochs_; }

    /** Current failover epoch of a back-end slot. */
    uint64_t slotEpoch(NodeId id) const { return epochs_.epoch(id); }

  private:
    /**
     * Promotion mechanics shared by the claim protocol and the manual
     * failBackendPermanently: vote a mirror, rebuild the node from its
     * replica device under @p new_epoch, fence older incarnations out of
     * the keepalive namespace. Directory bookkeeping (the epoch bump) is
     * the caller's: completeClaim or recordManualPromotion.
     */
    Status promoteMirror(NodeId id, uint64_t now_ns, uint64_t new_epoch);

    /**
     * Park a replaced BackendNode incarnation instead of destroying it:
     * sessions that slept through the failover still hold verbs
     * endpoints into it, and those zombie verbs must fail cleanly with
     * BackendCrashed (routing the session through the resolver's epoch
     * fence) — not dangle. Retired incarnations are crashed forever.
     */
    void retireNode(std::unique_ptr<BackendNode> node);

    ClusterConfig cfg_;
    KeepAliveService keepalive_;
    FailoverEpochDirectory epochs_;
    std::map<NodeId, std::unique_ptr<BackendNode>> backends_;
    std::map<NodeId, std::vector<std::unique_ptr<MirrorNode>>> mirrors_;
    /** Superseded incarnations, kept alive (and fail-stopped) for the
     *  cluster's lifetime so zombie sessions' endpoints stay valid. */
    std::vector<std::unique_ptr<BackendNode>> retired_;
    std::set<NodeId> condemned_;
    uint64_t next_session_id_ = 1000;
};

} // namespace asymnvm

#endif // ASYMNVM_CLUSTER_CLUSTER_H_
