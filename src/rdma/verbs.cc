#include "rdma/verbs.h"

#include <cassert>

namespace asymnvm {

void
Verbs::flushChain(NodeId id, PostChain &chain, bool own_doorbell)
{
    if (chain.wqes == 0)
        return;
    uint64_t cost = lat_->doorbell_batch_wqe_ns * chain.wqes;
    if (own_doorbell) {
        cost += lat_->post_overhead_ns;
        ++counters_.doorbells;
    }
    clock_->advance(cost);
    auto it = targets_.find(id);
    if (it != targets_.end() && it->second.nic != nullptr)
        clock_->advance(
            it->second.nic->reserveBatch(chain.wqes, clock_->now()));
    chain = PostChain{};
}

Status
Verbs::begin(NodeId id, uint64_t write_len, RdmaTarget **out)
{
    auto it = targets_.find(id);
    if (it == targets_.end())
        return Status::Unavailable;
    // Queue-pair ordering: this verb executes after every pending posted
    // write on the same target, so the chain's deferred cost is settled
    // here, riding this verb's doorbell.
    auto cit = chains_.find(id);
    if (cit != chains_.end()) {
        flushChain(id, cit->second, /*own_doorbell=*/false);
        assert(cit->second.wqes == 0 &&
               "posted chain must drain before a later verb completes");
    }
    RdmaTarget &t = it->second;
    if (t.fail != nullptr) {
        const auto partial = t.fail->onVerb(write_len);
        if (partial.has_value()) {
            // The back-end crashed under this verb. For a write, a torn
            // prefix may still land in NVM; the caller sees the failure
            // through the (simulated) RNIC completion error.
            partial_write_len_pending_ = *partial;
            *out = &t;
            return Status::BackendCrashed;
        }
    }
    if (t.nic != nullptr)
        clock_->advance(t.nic->reserve(clock_->now()));
    *out = &t;
    return Status::Ok;
}

void
Verbs::charge(uint64_t base_rtt, uint64_t payload)
{
    clock_->advance(base_rtt + lat_->wireBytes(payload));
    ++verbs_issued_;
    ++counters_.doorbells; // every synchronous verb kicks the NIC itself
    bytes_moved_ += payload;
}

Status
Verbs::read(RemotePtr src, void *dst, size_t len)
{
    RdmaTarget *t = nullptr;
    const Status st = begin(src.backend, 0, &t);
    charge(lat_->rdma_read_rtt_ns, len);
    ++counters_.reads;
    counters_.read_bytes += len;
    if (!ok(st))
        return st;
    if (src.offset + len > t->nvm->size())
        return Status::InvalidArgument; // RNIC access violation
    t->nvm->read(src.offset, dst, len);
    return Status::Ok;
}

Status
Verbs::write(RemotePtr dst, const void *src, size_t len)
{
    RdmaTarget *t = nullptr;
    const Status st = begin(dst.backend, len, &t);
    charge(lat_->rdma_write_rtt_ns, len);
    ++counters_.writes;
    counters_.write_bytes += len;
    if (t != nullptr && dst.offset + len > t->nvm->size())
        return Status::InvalidArgument;
    if (st == Status::BackendCrashed && t != nullptr) {
        // Apply the torn prefix through the device's journal, then leave
        // the device "down".
        t->nvm->applyTornWrite(dst.offset, src, len,
                               partial_write_len_pending_);
        return st;
    }
    if (!ok(st))
        return st;
    t->nvm->write(dst.offset, src, len);
    t->nvm->persist(); // DMA into the NVM DIMM is durable on completion
    return Status::Ok;
}

Status
Verbs::writeAsync(RemotePtr dst, const void *src, size_t len)
{
    RdmaTarget *t = nullptr;
    const Status st = begin(dst.backend, len, &t);
    clock_->advance(lat_->post_overhead_ns);
    ++verbs_issued_;
    bytes_moved_ += len;
    ++counters_.posted;
    counters_.posted_bytes += len;
    ++counters_.wqes;
    ++counters_.doorbells; // posted alone: its own doorbell kicks the NIC
    if (t != nullptr && dst.offset + len > t->nvm->size())
        return Status::InvalidArgument;
    if (st == Status::BackendCrashed && t != nullptr) {
        t->nvm->applyTornWrite(dst.offset, src, len,
                               partial_write_len_pending_);
        return st;
    }
    if (!ok(st))
        return st;
    t->nvm->write(dst.offset, src, len);
    t->nvm->persist();
    return Status::Ok;
}

Status
Verbs::postWrite(RemotePtr dst, const void *src, size_t len)
{
    auto it = targets_.find(dst.backend);
    if (it == targets_.end())
        return Status::Unavailable;
    RdmaTarget &t = it->second;
    // No NIC reservation and no doorbell here: the WQE only joins the
    // post list. Failure injection still sees one verb — a crash tears
    // this WQE and the rest of the chain never posts.
    std::optional<uint64_t> partial;
    if (t.fail != nullptr)
        partial = t.fail->onVerb(len);

    ++counters_.posted;
    counters_.posted_bytes += len;
    bytes_moved_ += len;

    if (dst.offset + len > t.nvm->size())
        return Status::InvalidArgument;
    if (partial.has_value()) {
        partial_write_len_pending_ = *partial;
        t.nvm->applyTornWrite(dst.offset, src, len, *partial);
        return Status::BackendCrashed;
    }

    PostChain &chain = chains_[dst.backend];
    if (!chain.has_tail || dst.offset != chain.next_off) {
        // A gap in the destination starts a new WQE; a continuation is
        // one more scatter-gather entry of the running one.
        ++chain.wqes;
        ++counters_.wqes;
        ++verbs_issued_;
    }
    chain.has_tail = true;
    chain.next_off = dst.offset + len;
    chain.bytes += len;

    // The payload lands in post order; durability is guaranteed no later
    // than the completion of the next flushed verb on this queue pair.
    t.nvm->write(dst.offset, src, len);
    t.nvm->persist();
    return Status::Ok;
}

Status
Verbs::ringDoorbell()
{
    for (auto &[id, chain] : chains_)
        flushChain(id, chain, /*own_doorbell=*/true);
    return Status::Ok;
}

uint64_t
Verbs::pendingWqes() const
{
    uint64_t n = 0;
    for (const auto &[id, chain] : chains_)
        n += chain.wqes;
    return n;
}

Status
Verbs::read64(RemotePtr src, uint64_t *out)
{
    RdmaTarget *t = nullptr;
    const Status st = begin(src.backend, 0, &t);
    charge(lat_->rdma_atomic_rtt_ns, sizeof(uint64_t));
    ++counters_.atomics;
    counters_.atomic_bytes += sizeof(uint64_t);
    if (!ok(st))
        return st;
    if (src.offset + 8 > t->nvm->size())
        return Status::InvalidArgument;
    *out = t->nvm->read64(src.offset);
    return Status::Ok;
}

Status
Verbs::write64(RemotePtr dst, uint64_t v)
{
    RdmaTarget *t = nullptr;
    const Status st = begin(dst.backend, sizeof(uint64_t), &t);
    charge(lat_->rdma_atomic_rtt_ns, sizeof(uint64_t));
    ++counters_.atomics;
    counters_.atomic_bytes += sizeof(uint64_t);
    if (!ok(st))
        return st;
    t->nvm->write64Atomic(dst.offset, v);
    return Status::Ok;
}

Status
Verbs::compareAndSwap(RemotePtr dst, uint64_t expected, uint64_t desired,
                      uint64_t *old)
{
    RdmaTarget *t = nullptr;
    const Status st = begin(dst.backend, sizeof(uint64_t), &t);
    charge(lat_->rdma_atomic_rtt_ns, sizeof(uint64_t));
    ++counters_.atomics;
    counters_.atomic_bytes += sizeof(uint64_t);
    if (!ok(st))
        return st;
    *old = t->nvm->compareAndSwap64(dst.offset, expected, desired);
    return Status::Ok;
}

Status
Verbs::fetchAdd(RemotePtr dst, uint64_t delta, uint64_t *old)
{
    RdmaTarget *t = nullptr;
    const Status st = begin(dst.backend, sizeof(uint64_t), &t);
    charge(lat_->rdma_atomic_rtt_ns, sizeof(uint64_t));
    ++counters_.atomics;
    counters_.atomic_bytes += sizeof(uint64_t);
    if (!ok(st))
        return st;
    *old = t->nvm->fetchAdd64(dst.offset, delta);
    return Status::Ok;
}

} // namespace asymnvm
