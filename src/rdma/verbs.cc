#include "rdma/verbs.h"

#include <algorithm>
#include <cassert>

namespace asymnvm {

void
Verbs::flushChain(NodeId id, PostChain &chain, bool own_doorbell)
{
    if (chain.wqes == 0)
        return;
    uint64_t cost = lat_->doorbell_batch_wqe_ns * chain.wqes;
    if (own_doorbell) {
        cost += lat_->post_overhead_ns;
        ++counters_.doorbells;
    }
    clock_->advance(cost);
    auto it = targets_.find(id);
    if (it != targets_.end() && it->second.nic != nullptr)
        clock_->advance(it->second.nic->reserveBatch(
            chain.wqes, clock_->now(), qp_id_, verb_class_));
    chain = PostChain{};
}

Status
Verbs::begin(NodeId id, VerbKind kind, uint64_t write_len, RdmaTarget **out)
{
    lost_completion_ = false;
    auto it = targets_.find(id);
    if (it == targets_.end())
        return Status::Unavailable;
    // Queue-pair ordering: this verb executes after every pending posted
    // write on the same target, so the chain's deferred cost is settled
    // here, riding this verb's doorbell.
    auto cit = chains_.find(id);
    if (cit != chains_.end()) {
        flushChain(id, cit->second, /*own_doorbell=*/false);
        assert(cit->second.wqes == 0 &&
               "posted chain must drain before a later verb completes");
    }
    RdmaTarget &t = it->second;
    if (t.fail != nullptr) {
        const auto partial = t.fail->onVerb(write_len);
        if (partial.has_value()) {
            // The back-end crashed under this verb. For a write, a torn
            // prefix may still land in NVM; the caller sees the failure
            // through the (simulated) RNIC completion error. Fail-stop
            // outranks any transient fault the model would have injected.
            partial_write_len_pending_ = *partial;
            *out = &t;
            return Status::BackendCrashed;
        }
    }
    *out = &t;
    if (qp_error_.count(id) != 0)
        return Status::QpError; // endpoint must reset the QP first
    if (t.faults != nullptr && t.faults->armed()) {
        const FaultVerb fv = kind == VerbKind::Read     ? FaultVerb::Read
                             : kind == VerbKind::Atomic ? FaultVerb::Atomic
                                                        : FaultVerb::Write;
        const FaultAction a = t.faults->onVerb(fv, clock_->now());
        if (a.slow_ns != 0)
            clock_->advance(a.slow_ns); // gray node: degraded service
        if (a.qp_error) {
            qp_error_.insert(id);
            ++retry_stats_.qp_errors;
            return Status::QpError;
        }
        if (a.drop) {
            // The issuing session waits the full verb timeout before it
            // declares the completion lost.
            clock_->advance(policy_.verb_timeout_ns);
            ++retry_stats_.timeouts;
            if (a.drop_after)
                lost_completion_ = true; // executes, then reports the loss
            else
                return Status::Timeout;
        }
        if (a.delay_ns != 0) {
            clock_->advance(a.delay_ns);
            ++retry_stats_.delayed;
        }
    }
    if (t.nic != nullptr)
        clock_->advance(
            t.nic->reserve(clock_->now(), qp_id_, verb_class_));
    return Status::Ok;
}

void
Verbs::charge(uint64_t base_rtt, uint64_t payload)
{
    clock_->advance(base_rtt + lat_->wireBytes(payload));
    ++verbs_issued_;
    ++counters_.doorbells; // every synchronous verb kicks the NIC itself
    bytes_moved_ += payload;
}

void
Verbs::resetQp(NodeId id)
{
    if (qp_error_.erase(id) == 0)
        return;
    clock_->advance(policy_.qp_reset_ns);
    ++retry_stats_.qp_resets;
}

bool
Verbs::nextAttempt(VerbKind kind, NodeId id, Status st, uint32_t *attempt,
                   uint64_t *backoff)
{
    if (!isTransient(st))
        return false; // fail-stop (or success) escapes to the caller
    if (++*attempt >= policy_.max_attempts)
        return false; // budget spent: the storm outlived every retry
    if (st == Status::QpError)
        resetQp(id); // RESET -> INIT -> RTR -> RTS before re-issuing
    switch (kind) {
      case VerbKind::Read: ++retry_stats_.retries_read; break;
      case VerbKind::Write: ++retry_stats_.retries_write; break;
      case VerbKind::Posted: ++retry_stats_.retries_posted; break;
      case VerbKind::Atomic: ++retry_stats_.retries_atomic; break;
    }
    // Capped exponential backoff with deterministic jitter, charged to
    // the virtual clock: delay in [d - d*j/2, d + d*j/2].
    uint64_t delay = *backoff;
    if (policy_.jitter > 0) {
        const uint64_t span = static_cast<uint64_t>(
            static_cast<double>(delay) * policy_.jitter);
        if (span > 0)
            delay = delay - span / 2 + rng_.nextBounded(span + 1);
    }
    clock_->advance(delay);
    retry_stats_.backoff_ns += delay;
    *backoff = std::min<uint64_t>(*backoff * 2, policy_.max_backoff_ns);
    return true;
}

Status
Verbs::read(RemotePtr src, void *dst, size_t len)
{
    uint32_t attempt = 0;
    uint64_t backoff = policy_.base_backoff_ns;
    for (;;) {
        const Status st = readOnce(src, dst, len);
        if (!nextAttempt(VerbKind::Read, src.backend, st, &attempt,
                         &backoff))
            return st;
    }
}

Status
Verbs::readOnce(RemotePtr src, void *dst, size_t len)
{
    RdmaTarget *t = nullptr;
    const Status st = begin(src.backend, VerbKind::Read, 0, &t);
    charge(lat_->rdma_read_rtt_ns, len);
    ++counters_.reads;
    counters_.read_bytes += len;
    if (!ok(st))
        return st;
    if (src.offset + len > t->nvm->size())
        return Status::InvalidArgument; // RNIC access violation
    t->nvm->read(src.offset, dst, len);
    return Status::Ok;
}

Status
Verbs::write(RemotePtr dst, const void *src, size_t len)
{
    uint32_t attempt = 0;
    uint64_t backoff = policy_.base_backoff_ns;
    for (;;) {
        const Status st = writeOnce(dst, src, len);
        if (!nextAttempt(VerbKind::Write, dst.backend, st, &attempt,
                         &backoff))
            return st;
    }
}

Status
Verbs::writeOnce(RemotePtr dst, const void *src, size_t len)
{
    RdmaTarget *t = nullptr;
    const Status st = begin(dst.backend, VerbKind::Write, len, &t);
    charge(lat_->rdma_write_rtt_ns, len);
    ++counters_.writes;
    counters_.write_bytes += len;
    if (t != nullptr && dst.offset + len > t->nvm->size())
        return Status::InvalidArgument;
    if (st == Status::BackendCrashed && t != nullptr) {
        // Apply the torn prefix through the device's journal, then leave
        // the device "down".
        t->nvm->applyTornWrite(dst.offset, src, len,
                               partial_write_len_pending_);
        return st;
    }
    if (!ok(st))
        return st;
    t->nvm->write(dst.offset, src, len);
    t->nvm->persist(); // DMA into the NVM DIMM is durable on completion
    if (t->on_write)
        t->on_write(dst.offset, len);
    if (lost_completion_) {
        // The payload landed but the completion dropped: the retry will
        // land the same (idempotent) bytes again.
        lost_completion_ = false;
        return Status::Timeout;
    }
    return Status::Ok;
}

Status
Verbs::writeAsync(RemotePtr dst, const void *src, size_t len)
{
    uint32_t attempt = 0;
    uint64_t backoff = policy_.base_backoff_ns;
    for (;;) {
        const Status st = writeAsyncOnce(dst, src, len);
        if (!nextAttempt(VerbKind::Posted, dst.backend, st, &attempt,
                         &backoff))
            return st;
    }
}

Status
Verbs::writeAsyncOnce(RemotePtr dst, const void *src, size_t len)
{
    RdmaTarget *t = nullptr;
    const Status st = begin(dst.backend, VerbKind::Posted, len, &t);
    clock_->advance(lat_->post_overhead_ns);
    ++verbs_issued_;
    bytes_moved_ += len;
    ++counters_.posted;
    counters_.posted_bytes += len;
    ++counters_.wqes;
    ++counters_.doorbells; // posted alone: its own doorbell kicks the NIC
    if (t != nullptr && dst.offset + len > t->nvm->size())
        return Status::InvalidArgument;
    if (st == Status::BackendCrashed && t != nullptr) {
        t->nvm->applyTornWrite(dst.offset, src, len,
                               partial_write_len_pending_);
        return st;
    }
    if (!ok(st))
        return st;
    t->nvm->write(dst.offset, src, len);
    t->nvm->persist();
    if (t->on_write)
        t->on_write(dst.offset, len);
    if (lost_completion_) {
        lost_completion_ = false;
        return Status::Timeout;
    }
    return Status::Ok;
}

Status
Verbs::postWrite(RemotePtr dst, const void *src, size_t len)
{
    uint32_t attempt = 0;
    uint64_t backoff = policy_.base_backoff_ns;
    for (;;) {
        const Status st = postWriteOnce(dst, src, len);
        if (!nextAttempt(VerbKind::Posted, dst.backend, st, &attempt,
                         &backoff))
            return st;
    }
}

Status
Verbs::postWriteOnce(RemotePtr dst, const void *src, size_t len)
{
    auto it = targets_.find(dst.backend);
    if (it == targets_.end())
        return Status::Unavailable;
    RdmaTarget &t = it->second;
    // No NIC reservation and no doorbell here: the WQE only joins the
    // post list. Failure injection still sees one verb — a crash tears
    // this WQE and the rest of the chain never posts.
    std::optional<uint64_t> partial;
    if (t.fail != nullptr)
        partial = t.fail->onVerb(len);

    ++counters_.posted;
    counters_.posted_bytes += len;
    bytes_moved_ += len;

    if (dst.offset + len > t.nvm->size())
        return Status::InvalidArgument;
    if (partial.has_value()) {
        partial_write_len_pending_ = *partial;
        t.nvm->applyTornWrite(dst.offset, src, len, *partial);
        return Status::BackendCrashed;
    }
    if (qp_error_.count(dst.backend) != 0)
        return Status::QpError;
    bool lost_after = false;
    if (t.faults != nullptr && t.faults->armed()) {
        const FaultAction a = t.faults->onVerb(FaultVerb::Write,
                                               clock_->now());
        if (a.slow_ns != 0)
            clock_->advance(a.slow_ns);
        if (a.qp_error) {
            qp_error_.insert(dst.backend);
            ++retry_stats_.qp_errors;
            return Status::QpError;
        }
        if (a.drop) {
            clock_->advance(policy_.verb_timeout_ns);
            ++retry_stats_.timeouts;
            if (!a.drop_after)
                return Status::Timeout;
            lost_after = true;
        }
        if (a.delay_ns != 0) {
            clock_->advance(a.delay_ns);
            ++retry_stats_.delayed;
        }
    }
    if (lost_after) {
        // The payload lands in post order, but the WQE is reported lost:
        // the retry posts the same bytes again, and only the retried WQE
        // joins the chain accounting.
        t.nvm->write(dst.offset, src, len);
        t.nvm->persist();
        if (t.on_write)
            t.on_write(dst.offset, len);
        return Status::Timeout;
    }

    PostChain &chain = chains_[dst.backend];
    if (!chain.has_tail || dst.offset != chain.next_off) {
        // A gap in the destination starts a new WQE; a continuation is
        // one more scatter-gather entry of the running one.
        ++chain.wqes;
        ++counters_.wqes;
        ++verbs_issued_;
    }
    chain.has_tail = true;
    chain.next_off = dst.offset + len;
    chain.bytes += len;

    // The payload lands in post order; durability is guaranteed no later
    // than the completion of the next flushed verb on this queue pair.
    t.nvm->write(dst.offset, src, len);
    t.nvm->persist();
    if (t.on_write)
        t.on_write(dst.offset, len);
    return Status::Ok;
}

Status
Verbs::ringDoorbell()
{
    for (auto &[id, chain] : chains_)
        flushChain(id, chain, /*own_doorbell=*/true);
    return Status::Ok;
}

Status
Verbs::ringDoorbellFanout()
{
    // Launch phase: the CPU posts each target's chain and rings its
    // doorbell back to back — that cost is inherently serial on one core.
    uint64_t max_wait = 0;
    for (auto &[id, chain] : chains_) {
        if (chain.wqes == 0)
            continue;
        clock_->advance(lat_->post_overhead_ns +
                        lat_->doorbell_batch_wqe_ns * chain.wqes);
        ++counters_.doorbells;
        // Await phase contribution: this target's completion arrives a
        // round trip plus its chain's wire time plus its NIC queueing
        // delay after the doorbell. All targets progress concurrently, so
        // the fence waits only for the slowest.
        uint64_t wait =
            lat_->rdma_write_rtt_ns + lat_->wireBytes(chain.bytes);
        auto it = targets_.find(id);
        if (it != targets_.end() && it->second.nic != nullptr)
            wait += it->second.nic->reserveBatch(
                chain.wqes, clock_->now(), qp_id_, verb_class_);
        max_wait = std::max(max_wait, wait);
        chain = PostChain{};
    }
    if (max_wait != 0) {
        clock_->advance(max_wait);
        ++verbs_issued_; // the fence consumes one completion wait
    }
    return Status::Ok;
}

uint64_t
Verbs::pendingWqes() const
{
    uint64_t n = 0;
    for (const auto &[id, chain] : chains_)
        n += chain.wqes;
    return n;
}

Status
Verbs::postRead(RemotePtr src, void *dst, uint32_t len)
{
    if (targets_.count(src.backend) == 0)
        return Status::Unavailable;
    read_chains_[src.backend].push_back(ReadWqe{src.offset, dst, len});
    return Status::Ok;
}

Status
Verbs::readGather()
{
    Status result = Status::Ok;
    for (auto &[id, wqes] : read_chains_) {
        if (wqes.empty())
            continue;
        uint32_t attempt = 0;
        uint64_t backoff = policy_.base_backoff_ns;
        Status st;
        for (;;) {
            st = readGatherOnce(id, wqes);
            if (!nextAttempt(VerbKind::Read, id, st, &attempt, &backoff))
                break;
        }
        if (!ok(st) && ok(result))
            result = st;
    }
    read_chains_.clear();
    next_gather_ops_ = 1; // the tag covers exactly one gather
    return result;
}

Status
Verbs::readGatherOnce(NodeId id, const std::vector<ReadWqe> &wqes)
{
    auto it = targets_.find(id);
    if (it == targets_.end())
        return Status::Unavailable;
    // Queue-pair ordering: pending posted writes drain first, riding this
    // gather's doorbell.
    auto cit = chains_.find(id);
    if (cit != chains_.end())
        flushChain(id, cit->second, /*own_doorbell=*/false);
    RdmaTarget &t = it->second;

    const uint64_t n = wqes.size();
    uint64_t total = 0;
    for (const ReadWqe &w : wqes)
        total += w.len;

    // Posting cost and per-attempt accounting: ONE doorbell launches the
    // whole chain, and every retry re-posts every WQE, so the counters
    // move in whole-batch increments (the all-or-nothing invariant shows
    // up as reads % chain-size == 0).
    clock_->advance(lat_->post_overhead_ns +
                    lat_->doorbell_batch_wqe_ns * n);
    ++counters_.doorbells;
    ++counters_.read_gathers;
    counters_.reads += n;
    counters_.read_bytes += total;
    verbs_issued_ += n;
    bytes_moved_ += total;

    if (t.fail != nullptr) {
        for (uint64_t i = 0; i < n; ++i)
            if (t.fail->onVerb(0).has_value())
                return Status::BackendCrashed; // reads deliver nothing
    }
    if (qp_error_.count(id) != 0)
        return Status::QpError;

    uint64_t max_delay = 0;
    if (t.faults != nullptr && t.faults->armed()) {
        for (uint64_t i = 0; i < n; ++i) {
            const FaultAction a =
                t.faults->onVerb(FaultVerb::Read, clock_->now());
            if (a.slow_ns != 0)
                clock_->advance(a.slow_ns);
            if (a.qp_error) {
                // Mid-chain QP error: the remaining WQEs flush with error
                // completions and NO destination buffer was written — the
                // retry re-posts the whole chain.
                qp_error_.insert(id);
                ++retry_stats_.qp_errors;
                return Status::QpError;
            }
            if (a.drop) {
                clock_->advance(policy_.verb_timeout_ns);
                ++retry_stats_.timeouts;
                if (!a.drop_after)
                    return Status::Timeout; // never a partial gather
            }
            if (a.delay_ns != 0) {
                max_delay = std::max<uint64_t>(max_delay, a.delay_ns);
                ++retry_stats_.delayed;
            }
        }
    }
    if (max_delay != 0)
        clock_->advance(max_delay); // WQEs complete together: worst delay

    // Validate the WHOLE chain before delivering any byte: a bad address
    // fails the batch, never a prefix of it.
    for (const ReadWqe &w : wqes)
        if (w.offset + w.len > t.nvm->size())
            return Status::InvalidArgument;

    if (t.nic != nullptr)
        clock_->advance(t.nic->reserveGather(
            n, clock_->now(), next_gather_ops_, qp_id_, verb_class_));
    // One completion wait: the chained WQEs travel back to back, so the
    // session pays a single round trip plus the combined wire time.
    clock_->advance(lat_->rdma_read_rtt_ns + lat_->wireBytes(total));
    for (const ReadWqe &w : wqes)
        t.nvm->read(w.offset, w.dst, w.len);
    return Status::Ok;
}

uint64_t
Verbs::pendingReadWqes() const
{
    uint64_t n = 0;
    for (const auto &[id, wqes] : read_chains_)
        n += wqes.size();
    return n;
}

Status
Verbs::read64(RemotePtr src, uint64_t *out)
{
    uint32_t attempt = 0;
    uint64_t backoff = policy_.base_backoff_ns;
    for (;;) {
        const Status st = read64Once(src, out);
        if (!nextAttempt(VerbKind::Atomic, src.backend, st, &attempt,
                         &backoff))
            return st;
    }
}

Status
Verbs::read64Once(RemotePtr src, uint64_t *out)
{
    RdmaTarget *t = nullptr;
    const Status st = begin(src.backend, VerbKind::Atomic, 0, &t);
    charge(lat_->rdma_atomic_rtt_ns, sizeof(uint64_t));
    ++counters_.atomics;
    counters_.atomic_bytes += sizeof(uint64_t);
    if (!ok(st))
        return st;
    if (src.offset + 8 > t->nvm->size())
        return Status::InvalidArgument;
    *out = t->nvm->read64(src.offset);
    return Status::Ok;
}

Status
Verbs::write64(RemotePtr dst, uint64_t v)
{
    uint32_t attempt = 0;
    uint64_t backoff = policy_.base_backoff_ns;
    for (;;) {
        const Status st = write64Once(dst, v);
        if (!nextAttempt(VerbKind::Atomic, dst.backend, st, &attempt,
                         &backoff))
            return st;
    }
}

Status
Verbs::write64Once(RemotePtr dst, uint64_t v)
{
    RdmaTarget *t = nullptr;
    const Status st = begin(dst.backend, VerbKind::Atomic,
                            sizeof(uint64_t), &t);
    charge(lat_->rdma_atomic_rtt_ns, sizeof(uint64_t));
    ++counters_.atomics;
    counters_.atomic_bytes += sizeof(uint64_t);
    if (!ok(st))
        return st;
    t->nvm->write64Atomic(dst.offset, v);
    if (t->on_write)
        t->on_write(dst.offset, sizeof(uint64_t));
    return Status::Ok;
}

Status
Verbs::compareAndSwap(RemotePtr dst, uint64_t expected, uint64_t desired,
                      uint64_t *old)
{
    uint32_t attempt = 0;
    uint64_t backoff = policy_.base_backoff_ns;
    for (;;) {
        const Status st = compareAndSwapOnce(dst, expected, desired, old);
        if (!nextAttempt(VerbKind::Atomic, dst.backend, st, &attempt,
                         &backoff))
            return st;
    }
}

Status
Verbs::compareAndSwapOnce(RemotePtr dst, uint64_t expected, uint64_t desired,
                          uint64_t *old)
{
    RdmaTarget *t = nullptr;
    const Status st = begin(dst.backend, VerbKind::Atomic,
                            sizeof(uint64_t), &t);
    charge(lat_->rdma_atomic_rtt_ns, sizeof(uint64_t));
    ++counters_.atomics;
    counters_.atomic_bytes += sizeof(uint64_t);
    if (!ok(st))
        return st;
    *old = t->nvm->compareAndSwap64(dst.offset, expected, desired);
    if (t->on_write)
        t->on_write(dst.offset, sizeof(uint64_t));
    return Status::Ok;
}

Status
Verbs::fetchAdd(RemotePtr dst, uint64_t delta, uint64_t *old)
{
    uint32_t attempt = 0;
    uint64_t backoff = policy_.base_backoff_ns;
    for (;;) {
        const Status st = fetchAddOnce(dst, delta, old);
        if (!nextAttempt(VerbKind::Atomic, dst.backend, st, &attempt,
                         &backoff))
            return st;
    }
}

Status
Verbs::fetchAddOnce(RemotePtr dst, uint64_t delta, uint64_t *old)
{
    RdmaTarget *t = nullptr;
    const Status st = begin(dst.backend, VerbKind::Atomic,
                            sizeof(uint64_t), &t);
    charge(lat_->rdma_atomic_rtt_ns, sizeof(uint64_t));
    ++counters_.atomics;
    counters_.atomic_bytes += sizeof(uint64_t);
    if (!ok(st))
        return st;
    *old = t->nvm->fetchAdd64(dst.offset, delta);
    if (t->on_write)
        t->on_write(dst.offset, sizeof(uint64_t));
    return Status::Ok;
}

} // namespace asymnvm
