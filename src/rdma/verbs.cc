#include "rdma/verbs.h"

namespace asymnvm {

Status
Verbs::begin(NodeId id, uint64_t write_len, RdmaTarget **out)
{
    auto it = targets_.find(id);
    if (it == targets_.end())
        return Status::Unavailable;
    RdmaTarget &t = it->second;
    if (t.fail != nullptr) {
        const auto partial = t.fail->onVerb(write_len);
        if (partial.has_value()) {
            // The back-end crashed under this verb. For a write, a torn
            // prefix may still land in NVM; the caller sees the failure
            // through the (simulated) RNIC completion error.
            partial_write_len_pending_ = *partial;
            *out = &t;
            return Status::BackendCrashed;
        }
    }
    if (t.nic != nullptr)
        clock_->advance(t.nic->reserve(clock_->now()));
    *out = &t;
    return Status::Ok;
}

void
Verbs::charge(uint64_t base_rtt, uint64_t payload)
{
    clock_->advance(base_rtt + lat_->wireBytes(payload));
    ++verbs_issued_;
    bytes_moved_ += payload;
}

Status
Verbs::read(RemotePtr src, void *dst, size_t len)
{
    RdmaTarget *t = nullptr;
    const Status st = begin(src.backend, 0, &t);
    charge(lat_->rdma_read_rtt_ns, len);
    if (!ok(st))
        return st;
    if (src.offset + len > t->nvm->size())
        return Status::InvalidArgument; // RNIC access violation
    t->nvm->read(src.offset, dst, len);
    return Status::Ok;
}

Status
Verbs::write(RemotePtr dst, const void *src, size_t len)
{
    RdmaTarget *t = nullptr;
    const Status st = begin(dst.backend, len, &t);
    charge(lat_->rdma_write_rtt_ns, len);
    if (t != nullptr && dst.offset + len > t->nvm->size())
        return Status::InvalidArgument;
    if (st == Status::BackendCrashed && t != nullptr) {
        // Apply the torn prefix through the device's journal, then leave
        // the device "down".
        t->nvm->applyTornWrite(dst.offset, src, len,
                               partial_write_len_pending_);
        return st;
    }
    if (!ok(st))
        return st;
    t->nvm->write(dst.offset, src, len);
    t->nvm->persist(); // DMA into the NVM DIMM is durable on completion
    return Status::Ok;
}

Status
Verbs::writeAsync(RemotePtr dst, const void *src, size_t len)
{
    RdmaTarget *t = nullptr;
    const Status st = begin(dst.backend, len, &t);
    clock_->advance(lat_->post_overhead_ns);
    ++verbs_issued_;
    bytes_moved_ += len;
    if (t != nullptr && dst.offset + len > t->nvm->size())
        return Status::InvalidArgument;
    if (st == Status::BackendCrashed && t != nullptr) {
        t->nvm->applyTornWrite(dst.offset, src, len,
                               partial_write_len_pending_);
        return st;
    }
    if (!ok(st))
        return st;
    t->nvm->write(dst.offset, src, len);
    t->nvm->persist();
    return Status::Ok;
}

Status
Verbs::read64(RemotePtr src, uint64_t *out)
{
    RdmaTarget *t = nullptr;
    const Status st = begin(src.backend, 0, &t);
    charge(lat_->rdma_atomic_rtt_ns, sizeof(uint64_t));
    if (!ok(st))
        return st;
    if (src.offset + 8 > t->nvm->size())
        return Status::InvalidArgument;
    *out = t->nvm->read64(src.offset);
    return Status::Ok;
}

Status
Verbs::write64(RemotePtr dst, uint64_t v)
{
    RdmaTarget *t = nullptr;
    const Status st = begin(dst.backend, sizeof(uint64_t), &t);
    charge(lat_->rdma_atomic_rtt_ns, sizeof(uint64_t));
    if (!ok(st))
        return st;
    t->nvm->write64Atomic(dst.offset, v);
    return Status::Ok;
}

Status
Verbs::compareAndSwap(RemotePtr dst, uint64_t expected, uint64_t desired,
                      uint64_t *old)
{
    RdmaTarget *t = nullptr;
    const Status st = begin(dst.backend, sizeof(uint64_t), &t);
    charge(lat_->rdma_atomic_rtt_ns, sizeof(uint64_t));
    if (!ok(st))
        return st;
    *old = t->nvm->compareAndSwap64(dst.offset, expected, desired);
    return Status::Ok;
}

Status
Verbs::fetchAdd(RemotePtr dst, uint64_t delta, uint64_t *old)
{
    RdmaTarget *t = nullptr;
    const Status st = begin(dst.backend, sizeof(uint64_t), &t);
    charge(lat_->rdma_atomic_rtt_ns, sizeof(uint64_t));
    if (!ok(st))
        return st;
    *old = t->nvm->fetchAdd64(dst.offset, delta);
    return Status::Ok;
}

} // namespace asymnvm
