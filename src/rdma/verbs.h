#ifndef ASYMNVM_RDMA_VERBS_H_
#define ASYMNVM_RDMA_VERBS_H_

/**
 * @file
 * One-sided RDMA verbs emulation.
 *
 * Substitutes for the Mellanox CX-3 InfiniBand fabric of Section 9.1.
 * Front-end sessions access back-end NVM exclusively through this layer:
 * RDMA_Read, RDMA_Write, and the atomic verbs (compare-and-swap,
 * fetch-and-add, atomic 8-byte read) the paper builds its locks and
 * metadata updates on (Sections 3.3 and 6).
 *
 * Every verb charges the issuing session's virtual clock the round-trip
 * latency plus payload wire time, and reserves service at the target
 * back-end's shared NIC model — reproducing exactly the cost structure the
 * paper's optimizations attack (verb count on the critical path) and the
 * IOPS ceiling behind the multi-front-end scaling figures.
 *
 * Failure injection hooks here: an armed crash tears the in-flight write
 * at a 64-byte boundary and makes subsequent verbs to that back-end fail
 * with Status::BackendCrashed, which the front-end observes "through the
 * feedback from RNIC" (Case 3, Section 7.2).
 */

#include <cstdint>
#include <map>
#include <unordered_map>

#include "common/stats.h"
#include "common/types.h"
#include "nvm/nvm_device.h"
#include "sim/clock.h"
#include "sim/failure.h"
#include "sim/latency.h"
#include "sim/nic.h"

namespace asymnvm {

/** Everything a front-end NIC needs to know about one reachable back-end. */
struct RdmaTarget
{
    NvmDevice *nvm = nullptr;
    NicModel *nic = nullptr;
    FailureInjector *fail = nullptr;
};

/** A front-end session's RDMA endpoint (queue pair set). */
class Verbs
{
  public:
    Verbs(SimClock *clock, const LatencyModel *lat)
        : clock_(clock), lat_(lat)
    {}

    /** Register a reachable back-end under its node id. */
    void attach(NodeId id, RdmaTarget target) { targets_[id] = target; }

    /** Drop a back-end (permanent failure / decommission). */
    void detach(NodeId id)
    {
        targets_.erase(id);
        chains_.erase(id); // pending WQEs die with the queue pair
    }

    bool isAttached(NodeId id) const { return targets_.count(id) != 0; }

    /** RDMA_Read of @p len bytes. */
    Status read(RemotePtr src, void *dst, size_t len);

    /** RDMA_Write of @p len bytes; durable in NVM once it returns Ok. */
    Status write(RemotePtr dst, const void *src, size_t len);

    /**
     * Posted (asynchronous) RDMA_Write: the caller is charged only the
     * posting overhead, not the round trip. Queue-pair ordering makes the
     * payload durable before any later synchronous verb on the same
     * endpoint completes — the mechanism behind decoupled memory-log
     * persistency (Section 4.2).
     */
    Status writeAsync(RemotePtr dst, const void *src, size_t len);

    /**
     * Append a write WQE to the target queue pair's post list WITHOUT
     * ringing the doorbell. A write whose destination continues exactly
     * where the previous posted write ended merges into the running WQE
     * as another scatter-gather entry (contiguous ring appends become one
     * RDMA_Write on the wire). The accumulated chain launches with a
     * single doorbell at the next ringDoorbell() — or rides the doorbell
     * of the next verb to the same target, which is also the queue-pair
     * ordering guarantee: every pending posted write is durable before a
     * later synchronous verb on the same target completes.
     */
    Status postWrite(RemotePtr dst, const void *src, size_t len);

    /**
     * Flush every pending post-list chain: one doorbell per target,
     * charging post_overhead_ns plus doorbell_batch_wqe_ns per WQE and
     * reserving the whole chain at the target NIC as a single arrival.
     */
    Status ringDoorbell();

    /** WQEs pending (posted, doorbell not yet rung) across all targets. */
    uint64_t pendingWqes() const;

    /**
     * Forget pending chains without charging (front-end crash: the WQEs
     * die with the process; their payloads already landed or never will).
     */
    void dropPosted() { chains_.clear(); }

    /** Atomic 8-byte read. */
    Status read64(RemotePtr src, uint64_t *out);

    /** Atomic 8-byte write. */
    Status write64(RemotePtr dst, uint64_t v);

    /** RDMA compare-and-swap; @p old receives the previous value. */
    Status compareAndSwap(RemotePtr dst, uint64_t expected, uint64_t desired,
                          uint64_t *old);

    /** RDMA fetch-and-add; @p old receives the previous value. */
    Status fetchAdd(RemotePtr dst, uint64_t delta, uint64_t *old);

    /** Verbs issued by this endpoint (round-trip count). */
    uint64_t verbsIssued() const { return verbs_issued_; }

    /** Payload bytes moved by this endpoint. */
    uint64_t bytesMoved() const { return bytes_moved_; }

    /** Per-verb-type traffic breakdown (reads/writes/posted/atomics). */
    const VerbCounters &counters() const { return counters_; }

    void resetStats()
    {
        verbs_issued_ = 0;
        bytes_moved_ = 0;
        counters_ = VerbCounters{};
    }

    SimClock *clock() { return clock_; }
    const LatencyModel &latency() const { return *lat_; }

  private:
    /**
     * One queue pair's pending post list. Only accounting lives here: the
     * payloads land in NVM eagerly at postWrite (the simulator's posted
     * writes are durable in post order, which is what queue-pair ordering
     * guarantees by the time any flush completes); the chain defers the
     * *cost* — per-WQE CPU time and the NIC reservation — to the doorbell.
     */
    struct PostChain
    {
        uint64_t wqes = 0;     //!< WQEs pending after sge merging
        uint64_t bytes = 0;
        uint64_t next_off = 0; //!< merge point: one past the last sge
        bool has_tail = false; //!< next_off is valid
    };

    /** Common preamble: resolve target, inject failure, charge NIC. */
    Status begin(NodeId id, uint64_t write_len, RdmaTarget **out);

    /** Charge one round trip of @p base_rtt plus @p payload bytes. */
    void charge(uint64_t base_rtt, uint64_t payload);

    /**
     * Charge @p chain's deferred cost. With @p own_doorbell the chain is
     * launched by an explicit doorbell (ringDoorbell); without, it rides
     * the doorbell of a following verb to the same target and only pays
     * the amortized per-WQE cost.
     */
    void flushChain(NodeId id, PostChain &chain, bool own_doorbell);

    SimClock *clock_;
    const LatencyModel *lat_;
    std::unordered_map<NodeId, RdmaTarget> targets_;
    std::map<NodeId, PostChain> chains_;
    VerbCounters counters_;
    uint64_t verbs_issued_ = 0;
    uint64_t bytes_moved_ = 0;
    uint64_t partial_write_len_pending_ = 0;
};

} // namespace asymnvm

#endif // ASYMNVM_RDMA_VERBS_H_
