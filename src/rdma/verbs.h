#ifndef ASYMNVM_RDMA_VERBS_H_
#define ASYMNVM_RDMA_VERBS_H_

/**
 * @file
 * One-sided RDMA verbs emulation.
 *
 * Substitutes for the Mellanox CX-3 InfiniBand fabric of Section 9.1.
 * Front-end sessions access back-end NVM exclusively through this layer:
 * RDMA_Read, RDMA_Write, and the atomic verbs (compare-and-swap,
 * fetch-and-add, atomic 8-byte read) the paper builds its locks and
 * metadata updates on (Sections 3.3 and 6).
 *
 * Every verb charges the issuing session's virtual clock the round-trip
 * latency plus payload wire time, and reserves service at the target
 * back-end's shared NIC model — reproducing exactly the cost structure the
 * paper's optimizations attack (verb count on the critical path) and the
 * IOPS ceiling behind the multi-front-end scaling figures.
 *
 * Failure injection hooks here at two severities. Fail-stop: an armed
 * crash (sim/failure.h) tears the in-flight write at a 64-byte boundary
 * and makes subsequent verbs to that back-end fail with
 * Status::BackendCrashed, which the front-end observes "through the
 * feedback from RNIC" (Case 3, Section 7.2). Transient: a FaultModel
 * (sim/fault.h) drops, delays or duplicates completions and flips queue
 * pairs into the error state — those this layer absorbs itself with a
 * RetryPolicy: per-verb timeouts, capped exponential backoff with
 * deterministic jitter charged to the virtual clock, and QP
 * reset/reconnect before re-issuing. Only fail-stop conditions (and
 * transient storms that outlive every retry) escape to the session.
 */

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/rand.h"
#include "common/stats.h"
#include "common/types.h"
#include "nvm/nvm_device.h"
#include "sim/clock.h"
#include "sim/failure.h"
#include "sim/fault.h"
#include "sim/latency.h"
#include "sim/nic.h"

namespace asymnvm {

/** Everything a front-end NIC needs to know about one reachable back-end. */
struct RdmaTarget
{
    NvmDevice *nvm = nullptr;
    NicModel *nic = nullptr;
    FailureInjector *fail = nullptr;
    FaultModel *faults = nullptr; //!< transient-fault source (may be null)
    /**
     * Invoked after any one-sided write or atomic lands bytes in the
     * target's NVM (offset, length). Back-ends hook this to stage the
     * range into their mirror-replication batch — without it, one-sided
     * mutations (lock words, ring pads, lock-ahead records) would bypass
     * replication and a promoted mirror could hold stale bytes where the
     * front-end wrote directly. Not called when the write tore under a
     * fail-stop crash (the node is dead; its mirror keeps the pre-crash
     * image).
     */
    std::function<void(uint64_t, size_t)> on_write;
};

/**
 * Transient-failure handling knobs of one RDMA endpoint. Defaults follow
 * the usual RNIC shape: detection (the verb timeout) costs an order of
 * magnitude more than the verb itself, backoff starts around one RTT and
 * doubles to a cap, and every delay is jittered to avoid retry lockstep
 * between sessions. All times are virtual nanoseconds.
 */
struct RetryPolicy
{
    uint32_t max_attempts = 8;        //!< total tries per verb (1 = none)
    uint64_t verb_timeout_ns = 12000; //!< wait before declaring a loss
    uint64_t base_backoff_ns = 2000;  //!< first retry delay (~1 RTT)
    uint64_t max_backoff_ns = 256000; //!< exponential backoff cap
    uint64_t qp_reset_ns = 6000;      //!< QP reset + reconnect handshake
    double jitter = 0.5;              //!< +-50% randomization of delays
    uint64_t seed = 0x5eed;           //!< jitter PRNG seed (determinism)
};

/** A front-end session's RDMA endpoint (queue pair set). */
class Verbs
{
  public:
    Verbs(SimClock *clock, const LatencyModel *lat)
        : clock_(clock), lat_(lat), rng_(policy_.seed)
    {}

    /**
     * Identity of this endpoint's queue pair at the shared back-end NIC.
     * Sessions set it from their session id so the NIC's per-QP
     * contention model can tell the arrival streams apart; 0 (the
     * default) is an anonymous QP, which the legacy scalar model — and
     * every single-session test — never needs to distinguish.
     */
    void setQpId(uint64_t qp) { qp_id_ = qp; }
    uint64_t qpId() const { return qp_id_; }

    /**
     * QoS class stamped on every verb this endpoint issues until
     * changed. Foreground by default; recovery replay and other
     * non-critical-path work run under a ClassScope.
     */
    void setVerbClass(VerbClass cls) { verb_class_ = cls; }
    VerbClass verbClass() const { return verb_class_; }

    /** RAII re-tag of the endpoint's verb class (e.g. recovery replay). */
    class ClassScope
    {
      public:
        ClassScope(Verbs &v, VerbClass cls)
            : v_(v), prev_(v.verbClass())
        {
            v_.setVerbClass(cls);
        }
        ~ClassScope() { v_.setVerbClass(prev_); }
        ClassScope(const ClassScope &) = delete;
        ClassScope &operator=(const ClassScope &) = delete;

      private:
        Verbs &v_;
        VerbClass prev_;
    };

    /** Register a reachable back-end under its node id. */
    void attach(NodeId id, RdmaTarget target) { targets_[id] = target; }

    /** Drop a back-end (permanent failure / decommission). */
    void detach(NodeId id)
    {
        targets_.erase(id);
        chains_.erase(id);      // pending WQEs die with the queue pair
        read_chains_.erase(id); // pending read gathers too
        qp_error_.erase(id);    // so does the error state
    }

    bool isAttached(NodeId id) const { return targets_.count(id) != 0; }

    /** RDMA_Read of @p len bytes. */
    Status read(RemotePtr src, void *dst, size_t len);

    /** RDMA_Write of @p len bytes; durable in NVM once it returns Ok. */
    Status write(RemotePtr dst, const void *src, size_t len);

    /**
     * Posted (asynchronous) RDMA_Write: the caller is charged only the
     * posting overhead, not the round trip. Queue-pair ordering makes the
     * payload durable before any later synchronous verb on the same
     * endpoint completes — the mechanism behind decoupled memory-log
     * persistency (Section 4.2).
     */
    Status writeAsync(RemotePtr dst, const void *src, size_t len);

    /**
     * Append a write WQE to the target queue pair's post list WITHOUT
     * ringing the doorbell. A write whose destination continues exactly
     * where the previous posted write ended merges into the running WQE
     * as another scatter-gather entry (contiguous ring appends become one
     * RDMA_Write on the wire). The accumulated chain launches with a
     * single doorbell at the next ringDoorbell() — or rides the doorbell
     * of the next verb to the same target, which is also the queue-pair
     * ordering guarantee: every pending posted write is durable before a
     * later synchronous verb on the same target completes.
     */
    Status postWrite(RemotePtr dst, const void *src, size_t len);

    /**
     * Flush every pending post-list chain: one doorbell per target,
     * charging post_overhead_ns plus doorbell_batch_wqe_ns per WQE and
     * reserving the whole chain at the target NIC as a single arrival.
     */
    Status ringDoorbell();

    /**
     * Parallel fan-out fence: launch every pending chain (one doorbell
     * per target, CPU posting cost paid serially as on a real core) and
     * then await ALL completions together. The session's clock advances
     * by the *maximum* per-target completion time — round trip, wire
     * bytes of that target's chain, and its NIC queueing delay — instead
     * of the sum, overlapping the k round trips of a multi-back-end
     * group commit (Section 4.3 / Figure 10). After it returns every
     * chained write is durable at its target.
     */
    Status ringDoorbellFanout();

    /**
     * Append a read WQE to the target queue pair's *read* post list
     * WITHOUT ringing the doorbell. Nothing lands in @p dst yet — unlike
     * posted writes (whose payload is durable in post order), a read has
     * no result until its completion, so the data transfer happens at
     * readGather(). The read-side twin of postWrite.
     */
    Status postRead(RemotePtr src, void *dst, uint32_t len);

    /**
     * Launch every pending read chain — one doorbell per target — and
     * await all completions together. N independent reads cost one
     * posting overhead + N per-WQE costs + ONE round trip (the WQEs
     * travel and complete back-to-back) + wire time of the combined
     * payload, with the whole chain entering the target NIC as a single
     * arrival (NicModel::reserveGather). The batch is all-or-nothing: a
     * mid-chain transient fault retries the WHOLE chain under the
     * RetryPolicy; no destination buffer is written unless every WQE in
     * the chain succeeded, so callers never observe a partial gather.
     */
    Status readGather();

    /**
     * Tag the NEXT readGather with the number of independent operations
     * whose demanded reads its chains multiplex. Pipelined sessions set
     * this to the round's in-flight op count so the target NIC can
     * account multi-op arrivals (NicModel::reserveGather's ops
     * parameter); the tag is consumed by the next readGather and resets
     * to 1 afterwards. Purely observational — no cost model change.
     */
    void tagGatherOps(uint64_t ops)
    {
        next_gather_ops_ = ops == 0 ? 1 : ops;
    }

    /** WQEs pending (posted, doorbell not yet rung) across all targets. */
    uint64_t pendingWqes() const;

    /** Read WQEs pending (postRead'ed, gather not yet launched). */
    uint64_t pendingReadWqes() const;

    /**
     * Forget pending chains without charging (front-end crash: the WQEs
     * die with the process; their payloads already landed or never will).
     */
    void dropPosted()
    {
        chains_.clear();
        read_chains_.clear();
    }

    /** Atomic 8-byte read. */
    Status read64(RemotePtr src, uint64_t *out);

    /** Atomic 8-byte write. */
    Status write64(RemotePtr dst, uint64_t v);

    /** RDMA compare-and-swap; @p old receives the previous value. */
    Status compareAndSwap(RemotePtr dst, uint64_t expected, uint64_t desired,
                          uint64_t *old);

    /** RDMA fetch-and-add; @p old receives the previous value. */
    Status fetchAdd(RemotePtr dst, uint64_t delta, uint64_t *old);

    /** Replace the retry policy (reseeds the jitter PRNG). */
    void setRetryPolicy(const RetryPolicy &p)
    {
        policy_ = p;
        rng_ = Rng(p.seed);
    }

    const RetryPolicy &retryPolicy() const { return policy_; }

    /**
     * Reset a queue pair out of the error state (RTS transition),
     * charging the reconnect handshake. No-op when the QP is healthy.
     */
    void resetQp(NodeId id);

    /** True while @p id's queue pair sits in the error state. */
    bool qpInError(NodeId id) const { return qp_error_.count(id) != 0; }

    /** Verbs issued by this endpoint (round-trip count). */
    uint64_t verbsIssued() const { return verbs_issued_; }

    /** Payload bytes moved by this endpoint. */
    uint64_t bytesMoved() const { return bytes_moved_; }

    /** Per-verb-type traffic breakdown (reads/writes/posted/atomics). */
    const VerbCounters &counters() const { return counters_; }

    /** Transient-fault absorption counters (retries, backoff, resets). */
    const RetryStats &retryStats() const { return retry_stats_; }

    void resetStats()
    {
        verbs_issued_ = 0;
        bytes_moved_ = 0;
        counters_ = VerbCounters{};
        retry_stats_ = RetryStats{};
    }

    SimClock *clock() { return clock_; }
    const LatencyModel &latency() const { return *lat_; }

  private:
    /** Verb classes for retry accounting. */
    enum class VerbKind : uint8_t
    {
        Read,
        Write,
        Posted,
        Atomic,
    };

    /**
     * One queue pair's pending post list. Only accounting lives here: the
     * payloads land in NVM eagerly at postWrite (the simulator's posted
     * writes are durable in post order, which is what queue-pair ordering
     * guarantees by the time any flush completes); the chain defers the
     * *cost* — per-WQE CPU time and the NIC reservation — to the doorbell.
     */
    struct PostChain
    {
        uint64_t wqes = 0;     //!< WQEs pending after sge merging
        uint64_t bytes = 0;
        uint64_t next_off = 0; //!< merge point: one past the last sge
        bool has_tail = false; //!< next_off is valid
    };

    /** One pending read WQE: where to fetch from and where to deliver. */
    struct ReadWqe
    {
        uint64_t offset = 0; //!< source offset within the target NVM
        void *dst = nullptr; //!< front-end destination buffer
        uint32_t len = 0;
    };

    /** Common preamble: resolve target, inject failure, charge NIC. */
    Status begin(NodeId id, VerbKind kind, uint64_t write_len,
                 RdmaTarget **out);

    /** Charge one round trip of @p base_rtt plus @p payload bytes. */
    void charge(uint64_t base_rtt, uint64_t payload);

    /**
     * Charge @p chain's deferred cost. With @p own_doorbell the chain is
     * launched by an explicit doorbell (ringDoorbell); without, it rides
     * the doorbell of a following verb to the same target and only pays
     * the amortized per-WQE cost.
     */
    void flushChain(NodeId id, PostChain &chain, bool own_doorbell);

    /**
     * Decide whether a failed verb attempt retries: true after charging
     * the jittered backoff (and resetting the QP on QpError); false when
     * the status is not transient or the attempt budget is spent.
     */
    bool nextAttempt(VerbKind kind, NodeId id, Status st, uint32_t *attempt,
                     uint64_t *backoff);

    // Single-attempt verb bodies wrapped by the public retry loops.
    Status readGatherOnce(NodeId id, const std::vector<ReadWqe> &wqes);
    Status readOnce(RemotePtr src, void *dst, size_t len);
    Status writeOnce(RemotePtr dst, const void *src, size_t len);
    Status writeAsyncOnce(RemotePtr dst, const void *src, size_t len);
    Status postWriteOnce(RemotePtr dst, const void *src, size_t len);
    Status read64Once(RemotePtr src, uint64_t *out);
    Status write64Once(RemotePtr dst, uint64_t v);
    Status compareAndSwapOnce(RemotePtr dst, uint64_t expected,
                              uint64_t desired, uint64_t *old);
    Status fetchAddOnce(RemotePtr dst, uint64_t delta, uint64_t *old);

    SimClock *clock_;
    const LatencyModel *lat_;
    std::unordered_map<NodeId, RdmaTarget> targets_;
    std::map<NodeId, PostChain> chains_;
    std::map<NodeId, std::vector<ReadWqe>> read_chains_;
    std::set<NodeId> qp_error_; //!< queue pairs in the error state
    RetryPolicy policy_;
    Rng rng_; //!< backoff jitter (seeded; deterministic)
    VerbCounters counters_;
    RetryStats retry_stats_;
    uint64_t verbs_issued_ = 0;
    uint64_t bytes_moved_ = 0;
    uint64_t qp_id_ = 0; //!< per-session QP identity at the shared NIC
    VerbClass verb_class_ = VerbClass::Foreground; //!< current QoS class
    uint64_t next_gather_ops_ = 1; //!< ops multiplexed by the next gather
    uint64_t partial_write_len_pending_ = 0;
    /** Set by begin() when this verb executes but its completion drops. */
    bool lost_completion_ = false;
};

} // namespace asymnvm

#endif // ASYMNVM_RDMA_VERBS_H_
