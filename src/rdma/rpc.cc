#include "rdma/rpc.h"

#include <cstring>

#include "backend/backend_node.h"
#include "common/checksum.h"
#include "rdma/verbs.h"

namespace asymnvm {

uint32_t
rpcRequestChecksum(RpcRequest req, std::span<const uint8_t> payload)
{
    req.checksum = 0;
    uint32_t c = crc32c(&req, sizeof(req));
    if (!payload.empty())
        c = crc32c(payload.data(), payload.size(), c);
    return c;
}

RfpRpc::RfpRpc(Verbs *verbs, BackendNode *backend, uint32_t slot)
    : verbs_(verbs), backend_(backend), slot_(slot)
{}

Status
RfpRpc::call(RpcOp op, std::span<const uint64_t> args,
             std::span<const uint8_t> payload, uint64_t rets[4])
{
    const Layout &lay = backend_->layout();
    const uint64_t req_off = lay.rpcReqRingOff(slot_);
    const uint64_t resp_off = lay.rpcRespRingOff(slot_);
    if (sizeof(RpcRequest) + payload.size() > lay.super.rpc_ring_size)
        return Status::InvalidArgument;

    RpcRequest req{};
    req.magic = kRpcReqMagic;
    req.op = static_cast<uint32_t>(op);
    req.seq = ++seq_;
    for (size_t i = 0; i < args.size() && i < 4; ++i)
        req.args[i] = args[i];
    req.payload_len = static_cast<uint32_t>(payload.size());
    req.checksum = rpcRequestChecksum(req, payload);

    scratch_.resize(sizeof(req) + payload.size());
    std::memcpy(scratch_.data(), &req, sizeof(req));
    if (!payload.empty())
        std::memcpy(scratch_.data() + sizeof(req), payload.data(),
                    payload.size());

    const RemotePtr req_ptr(backend_->id(), req_off);
    const RemotePtr resp_ptr(backend_->id(), resp_off);

    // Idempotent resend loop: every rewrite carries the same seq, so the
    // back-end's dedup executes the operation at most once and answers
    // repeats from its stored response.
    constexpr uint32_t kMaxTries = 8;
    bool in_ring = false; //!< request known intact in the request ring
    for (uint32_t attempt = 0; attempt < kMaxTries; ++attempt) {
        if (!in_ring) {
            const Status wst =
                verbs_->write(req_ptr, scratch_.data(), scratch_.size());
            if (!ok(wst))
                return wst;
            if (attempt > 0)
                ++resends_;
            in_ring = true;
        }

        // The passive back-end notices the doorbell and serves the
        // request — unless it finds the request torn, in which case it
        // refuses to execute and we rewrite it.
        if (backend_->handleRpc(slot_) == Status::Corruption) {
            in_ring = false;
            continue;
        }

        RpcResponse resp{};
        const Status rst = verbs_->read(resp_ptr, &resp, sizeof(resp));
        if (!ok(rst))
            return rst;
        if (resp.magic != kRpcRespMagic || resp.seq != req.seq) {
            // Stale response from an earlier call still in the ring (or
            // garbage): drop it and poke the back-end again.
            ++dup_dropped_;
            continue;
        }
        if (rets != nullptr) {
            for (int i = 0; i < 4; ++i)
                rets[i] = resp.rets[i];
        }
        return static_cast<Status>(resp.status);
    }
    return Status::Timeout; // resend budget spent without a valid answer
}

} // namespace asymnvm
