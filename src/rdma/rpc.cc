#include "rdma/rpc.h"

#include <cstring>

#include "backend/backend_node.h"
#include "rdma/verbs.h"

namespace asymnvm {

RfpRpc::RfpRpc(Verbs *verbs, BackendNode *backend, uint32_t slot)
    : verbs_(verbs), backend_(backend), slot_(slot)
{}

Status
RfpRpc::call(RpcOp op, std::span<const uint64_t> args,
             std::span<const uint8_t> payload, uint64_t rets[4])
{
    const Layout &lay = backend_->layout();
    const uint64_t req_off = lay.rpcReqRingOff(slot_);
    const uint64_t resp_off = lay.rpcRespRingOff(slot_);
    if (sizeof(RpcRequest) + payload.size() > lay.super.rpc_ring_size)
        return Status::InvalidArgument;

    RpcRequest req{};
    req.magic = kRpcReqMagic;
    req.op = static_cast<uint32_t>(op);
    req.seq = ++seq_;
    for (size_t i = 0; i < args.size() && i < 4; ++i)
        req.args[i] = args[i];
    req.payload_len = static_cast<uint32_t>(payload.size());

    scratch_.resize(sizeof(req) + payload.size());
    std::memcpy(scratch_.data(), &req, sizeof(req));
    if (!payload.empty())
        std::memcpy(scratch_.data() + sizeof(req), payload.data(),
                    payload.size());

    const RemotePtr req_ptr(backend_->id(), req_off);
    Status st = verbs_->write(req_ptr, scratch_.data(), scratch_.size());
    if (!ok(st))
        return st;

    // The passive back-end notices the doorbell and serves the request.
    backend_->handleRpc(slot_);

    RpcResponse resp{};
    const RemotePtr resp_ptr(backend_->id(), resp_off);
    st = verbs_->read(resp_ptr, &resp, sizeof(resp));
    if (!ok(st))
        return st;
    if (resp.magic != kRpcRespMagic || resp.seq != req.seq)
        return Status::Corruption;
    if (rets != nullptr) {
        for (int i = 0; i < 4; ++i)
            rets[i] = resp.rets[i];
    }
    return static_cast<Status>(resp.status);
}

} // namespace asymnvm
