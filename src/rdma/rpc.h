#ifndef ASYMNVM_RDMA_RPC_H_
#define ASYMNVM_RDMA_RPC_H_

/**
 * @file
 * RFP-style RPC over one-sided verbs (Section 5.1).
 *
 * The back-end is passive, so the RPC mechanism follows RFP [Su et al.,
 * EuroSys'17]: each front-end has a pair of circular buffers in back-end
 * NVM; it *writes* requests with RDMA_Write and *fetches* responses with
 * RDMA_Read, and the back-end never touches the network. This is how the
 * memory-management interface (rnvm_malloc / rnvm_free), naming, and
 * multi-version retirement reach the back-end.
 *
 * Requests are synchronous and one-at-a-time per session, so each request
 * simply occupies the start of its ring.
 *
 * Transient faults complicate the simple write/serve/read exchange: the
 * request write may land torn (detected by the header checksum — the
 * back-end refuses to execute and the client rewrites), or the response
 * may be read stale after a lost completion forced a resend. Both sides
 * lean on the sequence number: the client resends *the same seq*, and the
 * back-end serves each seq at most once, answering repeats from a stored
 * response (idempotent resend). RPCs therefore stay exactly-once as long
 * as the back-end does not lose its volatile dedup state — i.e. across
 * transient faults, though not across a back-end crash, where the
 * recovery protocol (Section 7.2) takes over anyway.
 */

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"

namespace asymnvm {

class Verbs;
class BackendNode;

/** Operations servable by the back-end RPC dispatcher. */
enum class RpcOp : uint32_t
{
    None = 0,
    AllocBlocks, //!< args: nblocks          -> rets: nvm offset
    FreeBlocks,  //!< args: off, nblocks
    CreateName,  //!< args: hash, type       -> rets: DsId
    LookupName,  //!< args: hash             -> rets: DsId, DsType
    Retire,      //!< args: ds, count, now; payload: {off,nblocks} pairs
};

/** Fixed request header written into the request ring. */
struct RpcRequest
{
    uint32_t magic;
    uint32_t op;
    uint64_t seq;     //!< matches request to response
    uint64_t args[4];
    uint32_t payload_len;
    /** CRC32-C over the header (this field zeroed) and the payload. */
    uint32_t checksum;
};

/** Checksum of @p req (its checksum field ignored) plus @p payload. */
uint32_t rpcRequestChecksum(RpcRequest req,
                            std::span<const uint8_t> payload);

/** Fixed response header written into the response ring. */
struct RpcResponse
{
    uint32_t magic;
    uint32_t status; //!< Status
    uint64_t seq;
    uint64_t rets[4];
};

constexpr uint32_t kRpcReqMagic = 0x52504351;  // "RPCQ"
constexpr uint32_t kRpcRespMagic = 0x52504352; // "RPCR"

/** Client side of the RFP RPC channel (one per session per back-end). */
class RfpRpc
{
  public:
    RfpRpc(Verbs *verbs, BackendNode *backend, uint32_t slot);

    /**
     * Issue one RPC: write the request, let the passive back-end consume
     * it, and fetch the response. Costs one RDMA_Write plus one RDMA_Read
     * round trip on the caller's virtual clock in the fault-free case; a
     * request the back-end rejects as torn is rewritten under the same
     * sequence number, and a stale response is dropped and re-polled,
     * bounded by a small budget before giving up with Timeout.
     */
    Status call(RpcOp op, std::span<const uint64_t> args,
                std::span<const uint8_t> payload, uint64_t rets[4]);

    uint64_t callsIssued() const { return seq_; }

    /** Requests rewritten (same seq) after a torn-request rejection. */
    uint64_t resends() const { return resends_; }

    /** Stale/duplicate responses dropped before the matching one. */
    uint64_t dupResponsesDropped() const { return dup_dropped_; }

  private:
    Verbs *verbs_;
    BackendNode *backend_;
    uint32_t slot_;
    uint64_t seq_ = 0;
    uint64_t resends_ = 0;
    uint64_t dup_dropped_ = 0;
    std::vector<uint8_t> scratch_;
};

} // namespace asymnvm

#endif // ASYMNVM_RDMA_RPC_H_
