#include "check/invariant_checker.h"

#include <sstream>

namespace asymnvm {

namespace {

/** Walk-length cap: detects linkage cycles in a corrupt image. */
constexpr uint64_t kMaxWalk = 1u << 20;

std::string
fmt(const char *what, DsId ds, const std::string &detail)
{
    std::ostringstream os;
    os << what << " (ds " << ds << "): " << detail;
    return os.str();
}

} // namespace

// The image structs must mirror the DS-private node layouts exactly; the
// DS headers static_assert the same sizes.
static_assert(sizeof(Value) == 64);

std::string
AuditReport::str() const
{
    std::ostringstream os;
    for (const auto &v : violations)
        os << "  - " << v << "\n";
    return os.str();
}

std::optional<NamingEntry>
InvariantChecker::entryOfType(DsId ds, DsType want, const char *what,
                              AuditReport *rep)
{
    // Read the authoritative NVM copy, not the back-end's volatile shadow:
    // front-ends update naming fields one-sided.
    NamingEntry e;
    node_->nvm().read(node_->layout().namingEntryOff(ds), &e, sizeof(e));
    if (e.name_hash == 0) {
        rep->add(fmt(what, ds, "naming entry is free"));
        return std::nullopt;
    }
    if (e.type != static_cast<uint32_t>(want)) {
        rep->add(fmt(what, ds,
                     "naming entry type " + std::to_string(e.type) +
                         " does not match the audited structure"));
        return std::nullopt;
    }
    return e;
}

bool
InvariantChecker::readNodeImage(uint64_t raw, void *image, size_t size,
                                const char *what, AuditReport *rep)
{
    const RemotePtr p = RemotePtr::fromRaw(raw);
    const Layout &lay = node_->layout();
    std::ostringstream at;
    at << what << " @ 0x" << std::hex << raw;
    if (p.backend != node_->id()) {
        rep->add(at.str() + ": points at a foreign back-end");
        return false;
    }
    if (p.offset < lay.dataOff() || p.offset + size > lay.dataEnd()) {
        rep->add(at.str() + ": outside the data area");
        return false;
    }
    // Blocks are aligned relative to dataOff() (itself only 256-aligned),
    // so derive block indices from data-area-relative offsets.
    const uint64_t bs = lay.super.block_size;
    const uint64_t first = (p.offset - lay.dataOff()) / bs;
    const uint64_t last = (p.offset + size - 1 - lay.dataOff()) / bs;
    for (uint64_t b = first; b <= last; ++b) {
        if (!node_->allocator().isAllocated(lay.dataOff() + b * bs)) {
            rep->add(at.str() + ": reachable node in an unallocated block");
            return false;
        }
    }
    node_->nvm().read(p.offset, image, size);
    return true;
}

void
InvariantChecker::checkQuiescent(DsId ds, AuditReport *rep)
{
    const uint64_t entry_off = node_->layout().namingEntryOff(ds);
    const uint64_t lock =
        node_->nvm().read64(entry_off + naming_field::kWriterLock);
    if (lock != 0)
        rep->add(fmt("quiescence", ds,
                     "writer lock still held by slot " +
                         std::to_string(lock - 1) + " after recovery"));
    const uint64_t sn =
        node_->nvm().read64(entry_off + naming_field::kSeqNum);
    if (sn % 2 != 0)
        rep->add(fmt("quiescence", ds,
                     "seqlock SN " + std::to_string(sn) +
                         " is odd (writer died in a critical section)"));
}

void
InvariantChecker::checkLogControl(uint32_t slot, AuditReport *rep)
{
    const LogControl ctl = node_->readControl(slot);
    const SuperBlock &sb = node_->layout().super;
    auto bad = [&](const std::string &d) {
        rep->add("log control (slot " + std::to_string(slot) + "): " + d);
    };
    if (ctl.covered_opn > ctl.opn)
        bad("covered_opn " + std::to_string(ctl.covered_opn) +
            " exceeds opn " + std::to_string(ctl.opn));
    if (ctl.memlog_applied > ctl.memlog_head)
        bad("memlog_applied ahead of memlog_head");
    if (ctl.oplog_tail > ctl.oplog_head)
        bad("oplog_tail ahead of oplog_head");
    if (ctl.oplog_head - ctl.oplog_tail > sb.oplog_ring_size)
        bad("uncovered op window wider than the op-log ring");
    if (ctl.lock_ahead != 0)
        bad("lock-ahead record not cleared by recovery");
    // Every record recovery would replay must decode; uncoveredOps()
    // silently skips undecodable ones, so a count mismatch means a
    // corrupt record sits inside the recovery window.
    const uint64_t window = node_->opWindowSize(slot);
    const size_t decodable = node_->uncoveredOps(slot).size();
    if (decodable != window)
        bad(std::to_string(window - decodable) +
            " op-window record(s) do not decode");
}

void
InvariantChecker::checkHeap(DsId ds, AuditReport *rep)
{
    NamingEntry e;
    node_->nvm().read(node_->layout().namingEntryOff(ds), &e, sizeof(e));
    switch (static_cast<DsType>(e.type)) {
    case DsType::Stack:
        stackContents(ds, rep);
        break;
    case DsType::Queue:
        queueContents(ds, rep);
        break;
    case DsType::HashTable:
        hashContents(ds, rep);
        break;
    case DsType::SkipList:
        skipContents(ds, rep);
        break;
    default:
        rep->add(fmt("heap audit", ds, "unsupported structure type"));
        break;
    }
}

std::optional<std::vector<uint64_t>>
InvariantChecker::stackContents(DsId ds, AuditReport *rep)
{
    const auto e = entryOfType(ds, DsType::Stack, "stack", rep);
    if (!e)
        return std::nullopt;
    std::vector<uint64_t> out;
    uint64_t cur = e->aux[0];
    while (cur != 0) {
        if (out.size() >= kMaxWalk) {
            rep->add(fmt("stack", ds, "cycle in the node chain"));
            return std::nullopt;
        }
        ListNodeImage n;
        if (!readNodeImage(cur, &n, sizeof(n), "stack node", rep))
            return std::nullopt;
        out.push_back(n.value.asU64());
        cur = n.next_raw;
    }
    if (strict_ && out.size() != e->aux[1])
        rep->add(fmt("stack", ds,
                     "chain length " + std::to_string(out.size()) +
                         " != persisted count " +
                         std::to_string(e->aux[1])));
    return out;
}

std::optional<std::vector<uint64_t>>
InvariantChecker::queueContents(DsId ds, AuditReport *rep)
{
    const auto e = entryOfType(ds, DsType::Queue, "queue", rep);
    if (!e)
        return std::nullopt;
    std::vector<uint64_t> out;
    uint64_t cur = e->aux[0];
    uint64_t last = 0;
    while (cur != 0) {
        if (out.size() >= kMaxWalk) {
            rep->add(fmt("queue", ds, "cycle in the node chain"));
            return std::nullopt;
        }
        ListNodeImage n;
        if (!readNodeImage(cur, &n, sizeof(n), "queue node", rep))
            return std::nullopt;
        out.push_back(n.value.asU64());
        last = cur;
        cur = n.next_raw;
    }
    if (strict_) {
        if (out.size() != e->aux[2])
            rep->add(fmt("queue", ds,
                         "chain length " + std::to_string(out.size()) +
                             " != persisted count " +
                             std::to_string(e->aux[2])));
        if (e->aux[0] == 0 && e->aux[1] != 0)
            rep->add(fmt("queue", ds, "empty queue with a stale tail"));
        if (e->aux[0] != 0 && e->aux[1] != last)
            rep->add(fmt("queue", ds,
                         "tail pointer does not reach the last node"));
    }
    return out;
}

std::optional<std::map<Key, uint64_t>>
InvariantChecker::hashContents(DsId ds, AuditReport *rep)
{
    const auto e = entryOfType(ds, DsType::HashTable, "hash table", rep);
    if (!e)
        return std::nullopt;
    const uint64_t array_off = e->aux[0];
    const uint64_t nbuckets = e->aux[1];
    const Layout &lay = node_->layout();
    if (nbuckets == 0 || (nbuckets & (nbuckets - 1)) != 0) {
        rep->add(fmt("hash table", ds, "bucket count is not a power of 2"));
        return std::nullopt;
    }
    if (array_off < lay.dataOff() ||
        array_off + nbuckets * 8 > lay.dataEnd()) {
        rep->add(fmt("hash table", ds, "bucket array outside data area"));
        return std::nullopt;
    }
    const uint64_t bs = lay.super.block_size;
    const uint64_t first = (array_off - lay.dataOff()) / bs;
    const uint64_t last =
        (array_off + nbuckets * 8 - 1 - lay.dataOff()) / bs;
    for (uint64_t b = first; b <= last; ++b) {
        if (!node_->allocator().isAllocated(lay.dataOff() + b * bs)) {
            rep->add(fmt("hash table", ds,
                         "bucket array in an unallocated block"));
            return std::nullopt;
        }
    }
    std::map<Key, uint64_t> out;
    uint64_t hops = 0;
    for (uint64_t b = 0; b < nbuckets; ++b) {
        uint64_t cur = node_->nvm().read64(array_off + b * 8);
        while (cur != 0) {
            if (++hops > kMaxWalk) {
                rep->add(fmt("hash table", ds, "cycle in a bucket chain"));
                return std::nullopt;
            }
            HashNodeImage n;
            if (!readNodeImage(cur, &n, sizeof(n), "hash node", rep))
                return std::nullopt;
            if (!out.emplace(n.key, n.value.asU64()).second) {
                rep->add(fmt("hash table", ds,
                             "duplicate key " + std::to_string(n.key)));
                return std::nullopt;
            }
            cur = n.next_raw;
        }
    }
    if (strict_ && out.size() != e->aux[2])
        rep->add(fmt("hash table", ds,
                     "reachable entries " + std::to_string(out.size()) +
                         " != persisted count " +
                         std::to_string(e->aux[2])));
    return out;
}

std::optional<std::map<Key, uint64_t>>
InvariantChecker::skipContents(DsId ds, AuditReport *rep)
{
    const auto e = entryOfType(ds, DsType::SkipList, "skiplist", rep);
    if (!e)
        return std::nullopt;
    SkipNodeImage sentinel;
    if (!readNodeImage(e->aux[0], &sentinel, sizeof(sentinel),
                       "skiplist sentinel", rep))
        return std::nullopt;
    constexpr uint32_t kMaxLevel = 16;
    if (sentinel.level != kMaxLevel) {
        rep->add(fmt("skiplist", ds, "sentinel tower height corrupt"));
        return std::nullopt;
    }

    // Bottom level: the authoritative sorted chain.
    std::map<Key, uint64_t> out;
    std::map<uint64_t, uint32_t> level0; // node raw -> tower height
    uint64_t cur = sentinel.next[0];
    bool have_prev = false;
    Key prev = 0;
    while (cur != 0) {
        if (out.size() >= kMaxWalk) {
            rep->add(fmt("skiplist", ds, "cycle in the bottom chain"));
            return std::nullopt;
        }
        SkipNodeImage n;
        if (!readNodeImage(cur, &n, sizeof(n), "skiplist node", rep))
            return std::nullopt;
        if (n.level < 1 || n.level > kMaxLevel) {
            rep->add(fmt("skiplist", ds,
                         "node tower height " + std::to_string(n.level) +
                             " out of range"));
            return std::nullopt;
        }
        if (have_prev && n.key <= prev) {
            rep->add(fmt("skiplist", ds, "bottom chain keys not ascending"));
            return std::nullopt;
        }
        prev = n.key;
        have_prev = true;
        out.emplace(n.key, n.value.asU64());
        level0.emplace(cur, n.level);
        cur = n.next[0];
    }
    if (strict_ && out.size() != e->aux[1])
        rep->add(fmt("skiplist", ds,
                     "bottom-chain length " + std::to_string(out.size()) +
                         " != persisted count " +
                         std::to_string(e->aux[1])));

    // Upper levels must stay sorted; in strict (logged) mode every node in
    // an express lane must also be on the bottom chain with a tall-enough
    // tower. Naive mode can legally crash half way through linking or
    // unlinking a tower, so only allocation and ordering are required.
    for (uint32_t l = 1; l < kMaxLevel; ++l) {
        cur = sentinel.next[l];
        have_prev = false;
        uint64_t hops = 0;
        while (cur != 0) {
            if (++hops > kMaxWalk) {
                rep->add(fmt("skiplist", ds,
                             "cycle at level " + std::to_string(l)));
                return std::nullopt;
            }
            SkipNodeImage n;
            if (!readNodeImage(cur, &n, sizeof(n), "skiplist node", rep))
                return std::nullopt;
            if (have_prev && n.key <= prev) {
                rep->add(fmt("skiplist", ds,
                             "level " + std::to_string(l) +
                                 " keys not ascending"));
                return std::nullopt;
            }
            prev = n.key;
            have_prev = true;
            if (strict_) {
                auto it = level0.find(cur);
                if (it == level0.end())
                    rep->add(fmt("skiplist", ds,
                                 "level " + std::to_string(l) +
                                     " links a node missing from the "
                                     "bottom chain"));
                else if (it->second <= l)
                    rep->add(fmt("skiplist", ds,
                                 "node linked above its tower height"));
            }
            cur = n.next[l];
        }
    }
    return out;
}

} // namespace asymnvm
