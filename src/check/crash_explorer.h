#ifndef ASYMNVM_CHECK_CRASH_EXPLORER_H_
#define ASYMNVM_CHECK_CRASH_EXPLORER_H_

/**
 * @file
 * Systematic crash-point exploration (the recovery matrix of Section 7).
 *
 * A scripted single-writer workload runs once cleanly while the back-end's
 * FailureInjector records every RDMA verb. The explorer then re-runs the
 * identical workload from a fresh cluster once per sampled verb index —
 * and, per index, once per sampled 64-byte tear prefix of the in-flight
 * write — crashes the back-end there, performs the full recovery protocol
 * (restart, FrontendSession::failover / recover, structure reopen), and
 * audits the durable image with InvariantChecker:
 *
 *  - durability: the recovered logical state equals the shadow model after
 *    some prefix of the script no shorter than the last acked persistence
 *    point (acked ops survive);
 *  - atomicity: the prefix boundary is op-granular for logged modes — no
 *    torn operations, no half-applied batches, and annulled stack/queue
 *    ops cannot resurrect (any of those breaks prefix equality);
 *  - locks: writer locks released, seqlocks quiescent, lock-ahead clear;
 *  - heap: every reachable node sits in allocated blocks;
 *  - service: one more scripted op succeeds after recovery.
 *
 * Tear prefixes other than "nothing landed" / "everything landed" are only
 * enumerated for logged sessions: AsymNVM-Naive makes no torn-write
 * promises (it has no checksums — that is what the logs are for).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "backend/layout.h"
#include "frontend/session.h"

namespace asymnvm {

enum class WorkloadKind
{
    Stack,
    Queue,
    HashTable,
    SkipList,
};

const char *workloadName(WorkloadKind kind);

/** A back-end sized for fast per-crash-point cluster construction. */
BackendConfig sweepBackendConfig();

struct ExplorerOptions
{
    WorkloadKind kind = WorkloadKind::Stack;
    SessionConfig session = SessionConfig::rcb(1, 256ull << 10, 13);
    BackendConfig backend = sweepBackendConfig();
    uint32_t ops = 60;         //!< script length
    uint32_t flush_every = 13; //!< explicit persistentFence cadence
    uint64_t seed = 1;         //!< script randomization
    /** Verb indices sampled (evenly spaced); 0 = every verb. */
    uint32_t max_points = 64;
    /** Extra tear prefixes per write verb beyond keep-0/keep-all. */
    uint32_t max_tears_per_point = 2;
};

struct ExplorerResult
{
    uint64_t workload_verbs = 0; //!< verbs in the clean recording run
    uint64_t points_run = 0;     //!< distinct (verb, tear) points executed
    uint64_t crashes_fired = 0;
    uint64_t recoveries = 0;     //!< recoveries that completed
    std::vector<std::string> violations;

    std::string violationText() const;
};

/** Run a full sweep; every violation is a recovery-invariant failure. */
ExplorerResult exploreCrashPoints(const ExplorerOptions &opt);

} // namespace asymnvm

#endif // ASYMNVM_CHECK_CRASH_EXPLORER_H_
